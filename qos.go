package rbpc

import (
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/subnet"
)

// QoS routing over subnets (the paper's first motivation for restoring
// shortest paths): families of shortest-path routes maintained per
// traffic class over restrictions of the network — all OC48 links, all
// links under a delay threshold, and so on — each restored within its
// own subnet by path concatenation.

// TrafficClasses manages one restoration family per traffic class.
type TrafficClasses = subnet.Manager

// ClassFamily is one class's subnet, base set and restorer.
type ClassFamily = subnet.Family

// Subnet is a restriction of the network to a subset of its links.
type Subnet = subnet.Subnet

// NewTrafficClasses returns an empty per-class manager over g.
func NewTrafficClasses(g *Graph) *TrafficClasses { return subnet.NewManager(g) }

// ExtractSubnet builds the subnet of g containing the edges keep accepts.
func ExtractSubnet(g *Graph, name string, keep func(Edge) bool) *Subnet {
	return subnet.Extract(g, name, keep)
}

// Label merging (multipoint-to-point LSPs): one label per (router,
// destination) instead of per-LSP state — the paper's Section-2 note on
// keeping ILM tables small. Merged trees compose with path concatenation
// exactly like point-to-point LSPs.

// MergedTree is an installed per-destination merged LSP.
type MergedTree = mpls.DestTree

// InstallMergedTree installs the merged LSP for dst on net following the
// next-hop map (typically a shortest-path tree toward dst).
func InstallMergedTree(net *MPLSNetwork, dst NodeID, nextHop map[NodeID]graph.Arc) (*MergedTree, error) {
	return net.InstallDestTree(dst, nextHop)
}

// NextHopsToward computes the next-hop map of the deterministic
// shortest-path tree toward dst — the input InstallMergedTree expects.
func NextHopsToward(g *Graph, dst NodeID) map[NodeID]graph.Arc {
	t := NewOracle(g).Tree(dst)
	next := make(map[NodeID]graph.Arc)
	for r := 0; r < g.Order(); r++ {
		rr := NodeID(r)
		if rr == dst || !t.Reached(rr) {
			continue
		}
		parent, edge := t.Parent(rr)
		next[rr] = graph.Arc{Edge: edge, To: parent}
	}
	return next
}
