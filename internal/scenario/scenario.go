// Package scenario runs scripted failure timelines against a hybrid RBPC
// deployment: a small line-oriented DSL schedules link/router failures,
// repairs, probes and table audits at simulated times, so experiments
// are reproducible text files instead of hand-written drivers.
//
// Script format, one operation per line ('#' comments allowed):
//
//	at 0    fail-link 3
//	at 12   probe 0 5
//	at 20   fail-router 7
//	at 30   audit
//	at 100  repair-router 7
//	at 120  repair-link 3
//	at 150  probe 0 5
//
// Times are milliseconds and must be non-decreasing.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rbpc/internal/graph"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/sim"
	"rbpc/internal/verify"
)

// OpKind enumerates script operations.
type OpKind int

const (
	OpFailLink OpKind = iota + 1
	OpRepairLink
	OpFailRouter
	OpRepairRouter
	OpProbe
	OpAudit
)

// Op is one scheduled operation.
type Op struct {
	At   sim.Time
	Kind OpKind
	// A and B are operands: link/router ID, or probe src/dst.
	A, B int
}

// Parse reads a script.
func Parse(r io.Reader) ([]Op, error) {
	sc := bufio.NewScanner(r)
	var ops []Op
	lineNo := 0
	last := sim.Time(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "at" {
			return nil, fmt.Errorf("scenario: line %d: want 'at <ms> <op> ...', got %q", lineNo, line)
		}
		ms, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("scenario: line %d: bad time %q", lineNo, fields[1])
		}
		at := sim.Time(ms)
		if at < last {
			return nil, fmt.Errorf("scenario: line %d: time %v before previous %v", lineNo, at, last)
		}
		last = at

		op := Op{At: at}
		oneArg := func() (int, error) {
			if len(fields) != 4 {
				return 0, fmt.Errorf("scenario: line %d: %s needs one argument", lineNo, fields[2])
			}
			return strconv.Atoi(fields[3])
		}
		switch fields[2] {
		case "fail-link":
			op.Kind = OpFailLink
			op.A, err = oneArg()
		case "repair-link":
			op.Kind = OpRepairLink
			op.A, err = oneArg()
		case "fail-router":
			op.Kind = OpFailRouter
			op.A, err = oneArg()
		case "repair-router":
			op.Kind = OpRepairRouter
			op.A, err = oneArg()
		case "probe":
			op.Kind = OpProbe
			if len(fields) != 5 {
				return nil, fmt.Errorf("scenario: line %d: probe needs src and dst", lineNo)
			}
			op.A, err = strconv.Atoi(fields[3])
			if err == nil {
				op.B, err = strconv.Atoi(fields[4])
			}
		case "audit":
			op.Kind = OpAudit
			if len(fields) != 3 {
				return nil, fmt.Errorf("scenario: line %d: audit takes no arguments", lineNo)
			}
		default:
			return nil, fmt.Errorf("scenario: line %d: unknown op %q", lineNo, fields[2])
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: line %d: %v", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return ops, nil
}

// Event is one logged outcome of a scripted operation.
type Event struct {
	At   sim.Time
	Line string
}

// Run executes the script against a hybrid deployment on its engine and
// returns the event log. The engine is run to completion afterwards (all
// floods drain).
func Run(h *rbpcint.Hybrid, eng *sim.Engine, ops []Op) ([]Event, error) {
	var log []Event
	var failErr error
	routerLinks := make(map[int][]graph.EdgeID)

	record := func(format string, args ...interface{}) {
		log = append(log, Event{At: eng.Now(), Line: fmt.Sprintf(format, args...)})
	}

	for _, op := range ops {
		op := op
		eng.At(op.At, func() {
			if failErr != nil {
				return
			}
			switch op.Kind {
			case OpFailLink:
				if err := h.FailLink(graph.EdgeID(op.A)); err != nil {
					failErr = fmt.Errorf("fail-link %d at %v: %w", op.A, op.At, err)
					return
				}
				record("fail-link %d", op.A)
			case OpRepairLink:
				if err := h.RepairLink(graph.EdgeID(op.A)); err != nil {
					failErr = fmt.Errorf("repair-link %d at %v: %w", op.A, op.At, err)
					return
				}
				record("repair-link %d", op.A)
			case OpFailRouter:
				links, err := h.FailRouter(graph.NodeID(op.A))
				if err != nil {
					failErr = fmt.Errorf("fail-router %d at %v: %w", op.A, op.At, err)
					return
				}
				routerLinks[op.A] = links
				record("fail-router %d (%d links down)", op.A, len(links))
			case OpRepairRouter:
				links, ok := routerLinks[op.A]
				if !ok {
					failErr = fmt.Errorf("repair-router %d at %v: router was not failed", op.A, op.At)
					return
				}
				delete(routerLinks, op.A)
				if err := h.RepairRouter(links); err != nil {
					failErr = fmt.Errorf("repair-router %d at %v: %w", op.A, op.At, err)
					return
				}
				record("repair-router %d", op.A)
			case OpProbe:
				pkt, err := h.System().Net().SendIP(graph.NodeID(op.A), graph.NodeID(op.B))
				if err != nil {
					record("probe %d->%d DROPPED (%v)", op.A, op.B, err)
				} else {
					record("probe %d->%d delivered in %d hops via %v", op.A, op.B, pkt.Hops, pkt.Trace)
				}
			case OpAudit:
				rep := verify.CheckAll(h.System().Net())
				record("audit: %v", rep)
			}
		})
	}
	eng.Run()
	return log, failErr
}
