package scenario

import (
	"strings"
	"testing"

	"rbpc/internal/ospf"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

func newHybrid(t *testing.T) (*rbpcint.Hybrid, *sim.Engine) {
	t.Helper()
	g := topology.Complete(5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	return rbpcint.NewHybrid(s, proto, eng, rbpcint.EdgeBypass), eng
}

func TestParseValid(t *testing.T) {
	script := `
# comment
at 0   fail-link 3
at 5.5 probe 0 4
at 20  fail-router 2
at 30  audit
at 40  repair-router 2
at 50  repair-link 3
`
	ops, err := Parse(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 {
		t.Fatalf("parsed %d ops", len(ops))
	}
	if ops[1].At != 5.5 || ops[1].Kind != OpProbe || ops[1].A != 0 || ops[1].B != 4 {
		t.Errorf("probe op = %+v", ops[1])
	}
	if ops[3].Kind != OpAudit {
		t.Errorf("audit op = %+v", ops[3])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"boom\n",
		"at x fail-link 1\n",
		"at -1 fail-link 1\n",
		"at 10 fail-link 1\nat 5 probe 0 1\n", // time regression
		"at 0 fail-link\n",
		"at 0 probe 1\n",
		"at 0 audit 3\n",
		"at 0 unknown-op 1\n",
		"at 0 probe a b\n",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestRunTimeline(t *testing.T) {
	h, eng := newHybrid(t)
	g := h.System().Graph()
	e, _ := g.FindEdge(0, 1)
	script := strings.NewReader(strings.ReplaceAll(`
at 0   fail-link EDGE
at 1   probe 0 1
at 15  probe 0 1
at 15  audit
at 40  repair-link EDGE
at 60  probe 0 1
`, "EDGE", itoa(int(e))))
	ops, err := Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Run(h, eng, ops)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, ev := range log {
		lines = append(lines, ev.Line)
	}
	joined := strings.Join(lines, "\n")
	// Probe at 1ms (before detection) drops; at 15ms it flows; after
	// repair it is back to 1 hop.
	if !strings.Contains(lines[1], "DROPPED") {
		t.Errorf("pre-detection probe should drop:\n%s", joined)
	}
	if !strings.Contains(lines[2], "delivered in 2 hops") {
		t.Errorf("post-detection probe should take the 2-hop detour:\n%s", joined)
	}
	if !strings.Contains(lines[3], "audit") || strings.Contains(lines[3], "loop") && !strings.Contains(lines[3], "loop=0") {
		t.Errorf("audit line: %s", lines[3])
	}
	if !strings.Contains(lines[len(lines)-1], "delivered in 1 hops") {
		t.Errorf("post-repair probe should be direct:\n%s", joined)
	}
}

func TestRunRouterLifecycle(t *testing.T) {
	h, eng := newHybrid(t)
	ops, err := Parse(strings.NewReader(`
at 0   fail-router 2
at 30  probe 0 1
at 50  repair-router 2
at 90  probe 0 2
`))
	if err != nil {
		t.Fatal(err)
	}
	log, err := Run(h, eng, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log[0].Line, "4 links down") {
		t.Errorf("router failure: %s", log[0].Line)
	}
	last := log[len(log)-1].Line
	if !strings.Contains(last, "delivered") {
		t.Errorf("post-repair probe to revived router: %s", last)
	}
}

func TestRunErrorsSurface(t *testing.T) {
	h, eng := newHybrid(t)
	ops, _ := Parse(strings.NewReader("at 0 repair-router 3\n"))
	if _, err := Run(h, eng, ops); err == nil {
		t.Error("repairing a never-failed router should error")
	}
	h2, eng2 := newHybrid(t)
	ops2, _ := Parse(strings.NewReader("at 0 fail-link 9999\n"))
	if _, err := Run(h2, eng2, ops2); err == nil {
		t.Error("failing an unknown link should error")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
