package shard

import (
	"fmt"
	"maps"
	"runtime"
	"sync"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/rbpc"
)

// Coordinator fronts N shard engines: it partitions the provisioned pair
// space by ring ownership, routes queries and submissions to owners,
// fans failure/repair bursts out to every shard, and merges per-shard
// state into consistent cross-shard views and stats. It is the thin
// layer — all serving and epoch building happens inside the shards; the
// coordinator holds no hot-path locks (the only mutex guards the epoch
// watermark table, touched once per published epoch).
type Coordinator struct {
	g     *graph.Graph
	ring  *Ring
	cfg   Config
	shard []*engine.Engine
	cold  *ColdTier

	mu sync.Mutex
	// watermarks holds the highest epoch each shard has published, fed by
	// the per-shard OnEpoch taps.
	watermarks []uint64 //rbpc:guardedby mu
}

// New partitions the provision across cfg.Shards engines and starts
// them. Each shard receives only the primaries and routes of the sources
// it owns (its engines run delta-row mode, so unowned — and unprovisioned
// cold — sources cost it nothing); graph, base set, and network are
// shared (each engine clones the network copy-on-write). p.Failed must be
// empty, as for engine.New.
func New(p rbpc.Provision, cfg Config) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: config needs Shards >= 1, got %d", cfg.Shards)
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes, cfg.RingSeed)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		g:          p.Graph,
		ring:       ring,
		cfg:        cfg,
		shard:      make([]*engine.Engine, cfg.Shards),
		watermarks: make([]uint64, cfg.Shards),
	}

	for i := 0; i < cfg.Shards; i++ {
		sp := SliceProvision(p, ring, i)

		ecfg := cfg.Engine
		ecfg.DeltaRows = true
		idx := i
		userTap := cfg.Engine.OnEpoch
		ecfg.OnEpoch = func(s *engine.Snapshot) {
			c.mu.Lock()
			if s.Epoch() > c.watermarks[idx] {
				c.watermarks[idx] = s.Epoch()
			}
			c.mu.Unlock()
			if userTap != nil {
				userTap(s)
			}
		}
		eng, err := engine.New(sp, ecfg)
		if err != nil {
			for _, sh := range c.shard[:i] {
				sh.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shard[i] = eng
	}

	c.cold = NewColdTier(p.Graph, p.Base, maps.Clone(p.LSPs), cfg.Cold, cfg.Engine.OnResult)
	return c, nil
}

// SliceProvision returns the provision slice shard i serves under the
// ring: only the primaries and routes of the sources i owns, with a
// private clone of the LSP registry (each shard engine signs on-demand
// LSPs into its own registry, and concurrent writers must not share a
// map). Graph, base set, and network stay shared. It is the single
// definition of the shard partition — the in-process coordinator and
// every remote worker process slice with it, so a worker rebuilt from
// the same provision serves exactly the rows its in-process twin would.
func SliceProvision(p rbpc.Provision, ring *Ring, i int) rbpc.Provision {
	prims := make(map[rbpc.Pair]*mpls.LSP)
	routes := make(map[rbpc.Pair][]*mpls.LSP)
	for pr, lsp := range p.Primaries {
		if ring.Owner(pr.Src) == i {
			prims[pr] = lsp
		}
	}
	for pr, lsps := range p.Routes {
		if ring.Owner(pr.Src) == i {
			routes[pr] = lsps
		}
	}
	sp := p
	sp.Primaries = prims
	sp.Routes = routes
	sp.LSPs = maps.Clone(p.LSPs)
	return sp
}

// Ring returns the routing ring (immutable; safe to share with remote
// routers).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Shards returns the number of shard engines.
func (c *Coordinator) Shards() int { return len(c.shard) }

// Fail fans a link failure out to every shard (each needs full failure
// knowledge to rebuild the rows it owns).
func (c *Coordinator) Fail(ed graph.EdgeID) {
	for i, sh := range c.shard {
		if c.cfg.Fault == FaultSkewShard && i == 0 {
			continue // injected defect: shard 0 never learns
		}
		sh.Fail(ed)
	}
}

// Repair fans a link repair out to every shard.
func (c *Coordinator) Repair(ed graph.EdgeID) {
	for i, sh := range c.shard {
		if c.cfg.Fault == FaultSkewShard && i == 0 {
			continue
		}
		sh.Repair(ed)
	}
}

// ApplyEvents fans a churn burst out to every shard; each shard's writer
// coalesces it independently.
func (c *Coordinator) ApplyEvents(evs []failure.Event) {
	for _, ev := range evs {
		if ev.Repair {
			c.Repair(ev.Edge)
		} else {
			c.Fail(ev.Edge)
		}
	}
}

// Flush blocks until every event sent before the call is reflected in
// every shard's published snapshot.
func (c *Coordinator) Flush() {
	for _, sh := range c.shard {
		sh.Flush()
	}
}

// Query answers synchronously, routed by ring ownership. Materialized
// sources are a lock-free row read in the owner shard; cold sources go
// through the admission-controlled on-demand tier against the owner's
// current snapshot.
//
//rbpc:hotpath
func (c *Coordinator) Query(src, dst graph.NodeID) engine.Result {
	sh := c.shard[c.ring.Owner(src)]
	s := sh.Snapshot()
	if !s.Materialized(src) {
		return c.cold.Query(src, dst, s) //rbpc:allow hotpath -- cold-pair divert is the deliberate slow path
	}
	return sh.Query(src, dst)
}

// Submit enqueues one async query with the owner shard (or the cold
// tier). Reports false when shed.
func (c *Coordinator) Submit(src, dst graph.NodeID) bool {
	sh := c.shard[c.ring.Owner(src)]
	if s := sh.Snapshot(); !s.Materialized(src) {
		return c.cold.Submit(src, dst, s)
	}
	return sh.Submit(src, dst)
}

// SubmitBatch splits a burst by ring ownership and hands each owner its
// sub-batch in one channel operation; pairs from non-materialized
// sources are diverted to the cold tier's admission queue. The
// coordinator takes ownership of pairs. Returns the number of queries
// accepted (each sub-batch is admitted or shed as a unit by its shard).
func (c *Coordinator) SubmitBatch(pairs []rbpc.Pair) int {
	if len(pairs) == 0 {
		return 0
	}
	buckets := make([][]rbpc.Pair, len(c.shard))
	accepted := 0
	for _, pr := range pairs {
		w := c.ring.Owner(pr.Src)
		snap := c.shard[w].Snapshot()
		if coldPair(snap, pr) {
			if c.cold.Submit(pr.Src, pr.Dst, snap) {
				accepted++
			}
			continue
		}
		buckets[w] = append(buckets[w], pr)
	}
	for i, b := range buckets {
		if len(b) > 0 {
			accepted += c.shard[i].SubmitBatch(b)
		}
	}
	return accepted
}

// Shard returns shard i's engine — the chaos harness inspects per-shard
// snapshots directly.
func (c *Coordinator) Shard(i int) *engine.Engine { return c.shard[i] }

// AffectedPairs returns the provisioned pairs whose canonical primary
// crosses the link. Each shard indexes only the sources it owns, so the
// deployment's answer is the union — disjoint by ring ownership, so no
// pair appears twice.
func (c *Coordinator) AffectedPairs(ed graph.EdgeID) []graph.NodePair {
	var out []graph.NodePair
	for _, sh := range c.shard {
		out = append(out, sh.AffectedPairs(ed)...)
	}
	return out
}

// RecordRestore records one observed time-to-restore on the shard owning
// the pair's source, so the merged Stats.Restore reflects it.
func (c *Coordinator) RecordRestore(src graph.NodeID, d time.Duration) {
	c.shard[c.ring.Owner(src)].RecordRestore(d)
}

// Watermark returns the low epoch watermark: every shard has published
// at least this epoch.
func (c *Coordinator) Watermark() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	low := c.watermarks[0]
	for _, w := range c.watermarks[1:] {
		if w < low {
			low = w
		}
	}
	return low
}

// View is a consistent cross-shard read: one snapshot per shard, all
// agreeing on the failed-set, so a caller walking pairs across shards
// never observes a torn epoch (shard A answering for failed-set X while
// shard B answers for Y).
//
//rbpc:immutable
//rbpc:epochscoped
type View struct {
	ring  *Ring
	snaps []*engine.Snapshot
}

// NewView assembles a view from per-shard snapshots routed by the ring.
// The caller is responsible for the agreement discipline (only un-torn,
// failed-set-agreeing snapshot sets make a consistent view) — the
// process-mode coordinator builds its views here from the replica
// snapshots its workers shipped over the wire.
func NewView(ring *Ring, snaps []*engine.Snapshot) View {
	return View{ring: ring, snaps: snaps}
}

// Shards returns the number of per-shard snapshots in the view.
func (v View) Shards() int { return len(v.snaps) }

// Snap returns the snapshot serving the source.
func (v View) Snap(src graph.NodeID) *engine.Snapshot { return v.snaps[v.ring.Owner(src)] }

// Shard returns shard i's snapshot.
func (v View) Shard(i int) *engine.Snapshot { return v.snaps[i] }

// Route answers a pair from the view (nil for unroutable or cold pairs).
func (v View) Route(src, dst graph.NodeID) *engine.Route {
	return v.Snap(src).Route(src, dst)
}

// View assembles a consistent cross-shard view. Between bursts (and
// always after Flush) the first attempt succeeds; under concurrent churn
// it retries while the shards' independently-coalesced epochs converge,
// and reports ok=false with the latest (possibly torn) snapshots if they
// fail to agree within the retry budget — which a correct deployment
// only hits mid-burst, and an injected skew fault hits forever.
func (c *Coordinator) View() (View, bool) {
	const retries = 128
	snaps := make([]*engine.Snapshot, len(c.shard))
	for attempt := 0; attempt < retries; attempt++ {
		for i, sh := range c.shard {
			snaps[i] = sh.Snapshot()
		}
		if failedSetsAgree(snaps) {
			return View{ring: c.ring, snaps: snaps}, true
		}
		runtime.Gosched()
	}
	return View{ring: c.ring, snaps: snaps}, false
}

func failedSetsAgree(snaps []*engine.Snapshot) bool {
	first := snaps[0].Failed()
	for _, s := range snaps[1:] {
		f := s.Failed()
		if len(f) != len(first) {
			return false
		}
		for i := range f {
			if f[i] != first[i] {
				return false
			}
		}
	}
	return true
}

// Drain blocks until every query submitted before the call has been
// served by its shard or the cold tier.
func (c *Coordinator) Drain() {
	for _, sh := range c.shard {
		sh.Drain()
	}
	c.cold.Drain()
}

// Close stops every shard and the cold tier.
func (c *Coordinator) Close() {
	for _, sh := range c.shard {
		sh.Close()
	}
	c.cold.Close()
}

// Stats merges the shard scrapes: counters sum, latency percentiles take
// the worst shard (per-shard histograms cannot be re-merged), RowBytes
// sums residents while DenseRowBytes stays the single-engine dense
// baseline the shards collectively replace.
func (c *Coordinator) Stats() Stats {
	perShard := make([]engine.Stats, len(c.shard))
	for i, sh := range c.shard {
		perShard[i] = sh.Stats()
	}
	return MergeStats(perShard, c.Watermark(), c.cold.Stats())
}

// MergeStats folds per-shard engine scrapes into the deployment view:
// counters sum, latency percentiles take the worst shard (per-shard
// histograms cannot be re-merged), RowBytes sums residents while
// DenseRowBytes stays the single-engine dense baseline the shards
// collectively replace. Shared by the in-process coordinator and the
// process-mode coordinator (internal/shardrpc), whose worker scrapes
// arrive over the wire.
func MergeStats(perShard []engine.Stats, epoch uint64, cold ColdStats) Stats {
	st := Stats{
		Shards:   len(perShard),
		Epoch:    epoch,
		Cold:     cold,
		PerShard: perShard,
	}
	for i := range perShard {
		es := perShard[i]
		st.Queries += es.Queries
		st.Unroutable += es.Unroutable
		st.Submitted += es.Submitted
		st.Dropped += es.Dropped
		st.QueueDepth += es.QueueDepth
		st.Epochs += es.Epochs
		st.PlanCacheHits += es.PlanCacheHits
		st.PlanCacheMiss += es.PlanCacheMiss
		st.OnDemandLSPs += es.OnDemandLSPs
		st.RowBytes += es.RowBytes
		if es.DenseRowBytes > st.DenseRowBytes {
			st.DenseRowBytes = es.DenseRowBytes
		}
		st.QueryLatency = maxSummary(st.QueryLatency, es.QueryLatency)
		st.EpochBuild = maxSummary(st.EpochBuild, es.EpochBuild)
		st.Incremental = sumIncremental(st.Incremental, es.Incremental)
		st.Scheme = es.Scheme
		st.Restore = maxSummary(st.Restore, es.Restore)
		st.LocalBuild = maxSummary(st.LocalBuild, es.LocalBuild)
		st.Stretch = mergeAcc(st.Stretch, es.Stretch)
		st.DetourHops = mergeAcc(st.DetourHops, es.DetourHops)
		st.LocalPairs += es.LocalPairs
		st.LocalUnrestorable += es.LocalUnrestorable
		st.Converged += es.Converged
		st.PendingTimers += es.PendingTimers
	}
	st.Queries += st.Cold.Queries - st.Cold.Shed
	st.Dropped += st.Cold.Shed
	return st
}

func maxSummary(a, b metrics.Summary) metrics.Summary {
	out := a
	out.Count = a.Count + b.Count
	if b.P50 > out.P50 {
		out.P50 = b.P50
	}
	if b.P90 > out.P90 {
		out.P90 = b.P90
	}
	if b.P99 > out.P99 {
		out.P99 = b.P99
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

// mergeAcc combines two accumulator digests: counts sum, means are
// count-weighted, maxima take the larger.
func mergeAcc(a, b metrics.AccSummary) metrics.AccSummary {
	out := metrics.AccSummary{Count: a.Count + b.Count, Max: a.Max}
	if out.Count > 0 {
		out.Mean = (a.Mean*float64(a.Count) + b.Mean*float64(b.Count)) / float64(out.Count)
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

func sumIncremental(a, b engine.IncrementalStats) engine.IncrementalStats {
	a.PairsReused += b.PairsReused
	a.PairsRecomputed += b.PairsRecomputed
	a.Entering += b.Entering
	a.Leaving += b.Leaving
	a.StaleRoutes += b.StaleRoutes
	a.RepairImproved += b.RepairImproved
	a.TreesAdopted += b.TreesAdopted
	a.FullRebuilds += b.FullRebuilds
	a.AffectedNanos += b.AffectedNanos
	a.SolveNanos += b.SolveNanos
	a.ResolveNanos += b.ResolveNanos
	a.AssembleNanos += b.AssembleNanos
	return a
}
