// Package shard partitions the pair space by source across N independent
// serving shards, each an internal/engine instance owning one slice of
// the sources — the scale-out layer that takes the single-writer engine
// to full-size topologies.
//
// The partition is by source because the incremental builder's
// affected-pair sets already split cleanly along that axis: a failure's
// affected pairs group by source, every serving row is per-source, and a
// shard can therefore run its own writer, plan cache, and epoch sequence
// over its slice without ever coordinating with its peers on the hot
// path. A consistent-hash ring (virtual nodes, deterministic seed — see
// Ring) routes queries and submissions to owners; the Coordinator fans
// coalesced failure/repair bursts out to every shard (each needs full
// failure knowledge to rebuild its rows), tracks per-shard epoch
// watermarks, and exposes a merged snapshot view (View) that never
// returns a torn cross-shard epoch.
//
// Shards run their engines in delta-row mode: snapshots share the
// canonical matrix and carry only per-source divergence rows, and
// sources outside the provisioned hot set are not materialized at all.
// Queries for those cold pairs fall through to an admission-controlled
// on-demand tier (see cold.go) that solves them straight from the base
// set — Corollary 4 guarantees an optimal-cost concatenation exists for
// any connected pair — and promotes answers that stay hot into a bounded
// cache.
//
// Everything is in-process here; the ring/coordinator split is the
// process boundary of a future multi-process deployment (the ring is a
// pure function of its parameters, so remote processes agree on
// ownership without coordination).
package shard

import (
	"fmt"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/graph"
)

// Fault injects a deliberate coordinator defect for the chaos harness's
// shard-level conformance proofs. Production leaves FaultNone.
type Fault int

const (
	// FaultNone is the production coordinator.
	FaultNone Fault = iota
	// FaultSkewShard drops every failure/repair event destined for shard
	// 0, skewing its epoch state behind its peers — the torn-view defect
	// the per-shard flush-agreement oracle must catch.
	FaultSkewShard
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSkewShard:
		return "skew-shard"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Faults lists every injectable coordinator fault.
func Faults() []Fault { return []Fault{FaultSkewShard} }

// ParseFault maps a Fault name back to its value.
func ParseFault(name string) (Fault, error) {
	for _, f := range append(Faults(), FaultNone) {
		if f.String() == name {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("shard: unknown fault %q", name)
}

// Config tunes the coordinator. The zero value of every field except
// Shards selects a default.
type Config struct {
	// Shards is the number of independent shard engines (required, >= 1).
	Shards int
	// VNodes is the ring's virtual-node count per shard (default
	// DefaultVNodes).
	VNodes int
	// RingSeed seeds the ring hash (default DefaultRingSeed). Part of the
	// routing contract — all processes of a deployment must agree.
	RingSeed uint64
	// Engine is the per-shard engine configuration template. DeltaRows is
	// forced on; OnEpoch is chained after the coordinator's watermark tap.
	Engine engine.Config
	// Cold tunes the on-demand tier for non-materialized sources.
	Cold ColdConfig
	// Fault injects a coordinator defect (chaos harness only).
	Fault Fault
}

// Stats is a point-in-time scrape of the coordinator: sums of the shard
// counters, the cold tier's counters, and the per-shard breakdown.
type Stats struct {
	Shards int
	// Epoch is the low watermark: the highest epoch every shard has
	// reached. Individual shards may be ahead.
	Epoch uint64

	Queries       int64
	Unroutable    int64
	Submitted     int64
	Dropped       int64
	QueueDepth    int
	Epochs        int64
	PlanCacheHits int64
	PlanCacheMiss int64
	OnDemandLSPs  int64

	// RowBytes sums resident routing-matrix bytes across shards;
	// DenseRowBytes is what ONE dense all-pairs engine would hold (the
	// shards partition a single pair space, so the baseline is not
	// summed). Their ratio is the delta-encoding + cold-pair saving.
	RowBytes      int64
	DenseRowBytes int64

	// QueryLatency/EpochBuild take the worst shard per percentile — the
	// conservative tail, since per-shard histograms cannot be re-merged.
	QueryLatency metrics.Summary
	EpochBuild   metrics.Summary

	// Scheme is the restoration scheme the shard template was configured
	// with (all shards share it); the fields below it follow the
	// engine.Stats fields of the same names. Restore/LocalBuild take the
	// worst shard per percentile like the latency summaries above;
	// Stretch/DetourHops are count-weighted across shards; the counters
	// sum.
	Scheme            engine.Scheme
	Restore           metrics.Summary
	LocalBuild        metrics.Summary
	Stretch           metrics.AccSummary
	DetourHops        metrics.AccSummary
	LocalPairs        int64
	LocalUnrestorable int64
	Converged         int64
	PendingTimers     int
	// Incremental sums the per-shard incremental builder counters.
	Incremental engine.IncrementalStats
	Cold        ColdStats
	PerShard    []engine.Stats
}

// Owner returns the shard owning the source — exported for the chaos
// harness, which partitions its reference checks the same way.
func (c *Coordinator) Owner(src graph.NodeID) int { return c.ring.Owner(src) }
