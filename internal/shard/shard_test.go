package shard

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"rbpc/internal/engine"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

func newCoordinator(t testing.TB, g *graph.Graph, rcfg rbpc.Config, cfg Config) *Coordinator {
	t.Helper()
	sys, err := rbpc.NewSystem(g, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(sys.Export(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestCoordinatorMatchesSingleEngine drives the same churn through a
// 3-shard coordinator and a single dense engine and demands bit-identical
// answers (Float64bits costs, same LSP sequences) for every pair at every
// quiescent point.
func TestCoordinatorMatchesSingleEngine(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 3)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	single, err := engine.New(sys.Export(), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	c := newCoordinator(t, g, rbpc.DefaultConfig(), Config{Shards: 3})

	rng := rand.New(rand.NewSource(7))
	edges := g.Edges()
	down := map[graph.EdgeID]bool{}
	compare := func(tag string) {
		t.Helper()
		single.Flush()
		c.Flush()
		v, ok := c.View()
		if !ok {
			t.Fatalf("%s: no consistent view after Flush", tag)
		}
		for s := 0; s < g.Order(); s++ {
			for d := 0; d < g.Order(); d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				want := single.Query(src, dst).Route
				got := v.Route(src, dst)
				if (got == nil) != (want == nil) {
					t.Fatalf("%s: %d->%d routable mismatch: sharded %v, single %v",
						tag, s, d, got != nil, want != nil)
				}
				if got == nil {
					continue
				}
				if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
					t.Fatalf("%s: %d->%d cost %v != %v", tag, s, d, got.Cost, want.Cost)
				}
				if len(got.LSPs) != len(want.LSPs) {
					t.Fatalf("%s: %d->%d %d components != %d", tag, s, d, len(got.LSPs), len(want.LSPs))
				}
				for i := range got.LSPs {
					if !got.LSPs[i].Path.Equal(want.LSPs[i].Path) {
						t.Fatalf("%s: %d->%d component %d path mismatch", tag, s, d, i)
					}
				}
			}
		}
	}

	compare("initial")
	for step := 0; step < 25; step++ {
		e := edges[rng.Intn(len(edges))].ID
		if down[e] {
			delete(down, e)
			single.Repair(e)
			c.Repair(e)
		} else if len(down) < 3 {
			down[e] = true
			single.Fail(e)
			c.Fail(e)
		}
		if step%5 == 4 {
			compare("churn")
		}
	}
	compare("final")
}

// TestColdPairMatchesMaterialized provisions only a third of the sources
// hot and checks that cold-pair answers (on-demand Corollary-4 solves)
// cost-match a fully materialized engine.
func TestColdPairMatchesMaterialized(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	hot := []graph.NodeID{0, 1, 2, 3}
	rcfg := rbpc.DefaultConfig()
	rcfg.Sources = hot
	c := newCoordinator(t, g, rcfg, Config{Shards: 2})

	fullSys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := engine.New(fullSys.Export(), engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	check := func(tag string) {
		t.Helper()
		for s := 0; s < g.Order(); s++ {
			for d := 0; d < g.Order(); d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				got := c.Query(src, dst).Route
				want := full.Query(src, dst).Route
				if (got == nil) != (want == nil) {
					t.Fatalf("%s: %d->%d routable mismatch: sharded %v, full %v",
						tag, s, d, got != nil, want != nil)
				}
				if got != nil && math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
					t.Fatalf("%s: %d->%d cost %v != %v", tag, s, d, got.Cost, want.Cost)
				}
			}
		}
	}

	check("initial")
	e := g.Edges()[0].ID
	c.Fail(e)
	full.Fail(e)
	c.Flush()
	full.Flush()
	check("one failure")
	c.Repair(e)
	full.Repair(e)
	c.Flush()
	full.Flush()
	check("repaired")

	st := c.Stats()
	if st.Cold.Queries == 0 || st.Cold.Solved == 0 {
		t.Fatalf("cold tier never exercised: %+v", st.Cold)
	}
	if st.RowBytes >= st.DenseRowBytes {
		t.Fatalf("hot-set sharding should shrink resident rows: resident %d, dense %d",
			st.RowBytes, st.DenseRowBytes)
	}
}

// TestColdPromotion drives one cold pair past PromoteAfter and checks the
// promoted cache starts serving it.
func TestColdPromotion(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 2)
	rcfg := rbpc.DefaultConfig()
	rcfg.Sources = []graph.NodeID{0}
	c := newCoordinator(t, g, rcfg, Config{Shards: 2, Cold: ColdConfig{PromoteAfter: 2}})

	src, dst := graph.NodeID(5), graph.NodeID(7)
	var first *engine.Route
	for i := 0; i < 6; i++ {
		rt := c.Query(src, dst).Route
		if rt == nil {
			t.Fatalf("query %d: cold pair unroutable on a connected graph", i)
		}
		if first == nil {
			first = rt
		} else if math.Float64bits(rt.Cost) != math.Float64bits(first.Cost) {
			t.Fatalf("query %d: cost drifted %v -> %v", i, first.Cost, rt.Cost)
		}
	}
	st := c.Stats().Cold
	if st.Promotions == 0 {
		t.Fatalf("no promotion after %d identical queries: %+v", 6, st)
	}
	if st.PromotedHits == 0 {
		t.Fatalf("promoted cache never hit: %+v", st)
	}
	if st.Solved >= st.Queries {
		t.Fatalf("every query solved — cache not serving: %+v", st)
	}
}

// TestCoordinatorSubmitBatchAndDrain checks async fan-out: every accepted
// query is answered through OnResult before Drain returns, including the
// cold diversions.
func TestCoordinatorSubmitBatchAndDrain(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	rcfg := rbpc.DefaultConfig()
	rcfg.Sources = []graph.NodeID{0, 1, 2, 3, 4, 5}
	var answered atomic.Int64
	cfg := Config{Shards: 3}
	cfg.Engine.OnResult = func(engine.Result) { answered.Add(1) }
	c := newCoordinator(t, g, rcfg, cfg)

	var pairs []rbpc.Pair
	for s := 0; s < g.Order(); s++ {
		for d := 0; d < g.Order(); d++ {
			if s != d {
				pairs = append(pairs, rbpc.Pair{Src: graph.NodeID(s), Dst: graph.NodeID(d)})
			}
		}
	}
	accepted := c.SubmitBatch(pairs)
	c.Drain()
	if got := answered.Load(); got != int64(accepted) {
		t.Fatalf("accepted %d queries but %d answers arrived before Drain returned", accepted, got)
	}
	if accepted < len(pairs)/2 {
		t.Fatalf("only %d of %d queries accepted", accepted, len(pairs))
	}
}

// TestWatermarkAdvances checks the low watermark tracks the slowest shard.
func TestWatermarkAdvances(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 6)
	c := newCoordinator(t, g, rbpc.DefaultConfig(), Config{Shards: 2})
	if w := c.Watermark(); w != 0 {
		t.Fatalf("fresh coordinator watermark %d, want 0", w)
	}
	e := g.Edges()[0].ID
	c.Fail(e)
	c.Flush()
	if w := c.Watermark(); w == 0 {
		t.Fatal("watermark did not advance after a flushed failure")
	}
}

// TestSkewFaultBreaksView checks the injected shard-skew defect is
// observable: shard 0 stops tracking failures, so consistent views become
// impossible while a failure is outstanding.
func TestSkewFaultBreaksView(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 6)
	c := newCoordinator(t, g, rbpc.DefaultConfig(), Config{Shards: 2, Fault: FaultSkewShard})
	c.Fail(g.Edges()[0].ID)
	c.Flush()
	if _, ok := c.View(); ok {
		t.Fatal("skewed shards produced a consistent view — fault not observable")
	}
}
