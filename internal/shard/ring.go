package shard

import (
	"fmt"
	"sort"

	"rbpc/internal/graph"
)

// DefaultVNodes is the virtual-node count per shard when Config leaves it
// zero. Arc-length variance shrinks as 1/sqrt(vnodes); 1024 points per
// shard keeps every shard's source share within 10% of even on the full
// AS graph, while the ring stays a few thousand points — built in
// microseconds, owner lookup a 13-deep binary search.
const DefaultVNodes = 1024

// DefaultRingSeed seeds the ring's hash when Config leaves it zero. The
// seed is part of the routing contract: every process of a deployment
// must build the ring from the same (shards, vnodes, seed) triple or
// they will disagree about ownership.
const DefaultRingSeed uint64 = 0x9e3779b97f4a7c15

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the shard that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	shard int32
}

// Ring is a consistent-hash ring over source routers: it maps every
// source to one of N shards via virtual nodes, so that shard counts can
// change without reshuffling the whole pair space (adding shard N moves
// only the sources whose successor point belongs to N). Rings are built
// once and never mutated — restarts with the same parameters rebuild the
// identical ring, which is what makes ownership a deployment-wide
// constant rather than per-process state.
//
//rbpc:immutable
type Ring struct {
	shards int
	vnodes int
	seed   uint64
	points []ringPoint // sorted by hash
}

// NewRing builds the ring for the (shards, vnodes, seed) triple. Virtual
// node j of shard i sits at splitmix64(seed, i, j); sources route to the
// first point clockwise of their own hash. Every shard process must build
// the identical ring from the triple, so construction is deterministic by
// contract.
//
//rbpc:ctor
//rbpc:deterministic
func NewRing(shards, vnodes int, seed uint64) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", shards)
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	if seed == 0 {
		seed = DefaultRingSeed
	}
	r := &Ring{
		shards: shards,
		vnodes: vnodes,
		seed:   seed,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := splitmix64(seed ^ mix64(uint64(s)<<32|uint64(v)))
			r.points = append(r.points, ringPoint{hash: h, shard: int32(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the sort —
		// and therefore ownership — is total and deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring routes across.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning the source: the shard of the first
// virtual node clockwise of the source's hash (wrapping at the top).
//
//rbpc:hotpath
func (r *Ring) Owner(src graph.NodeID) int {
	h := splitmix64(r.seed + uint64(src)*0x9e3779b97f4a7c15)
	pts := r.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0
	}
	return int(pts[lo].shard)
}

// Counts returns how many of the first n sources each shard owns —
// the balance diagnostic the ring tests assert on.
func (r *Ring) Counts(n int) []int {
	counts := make([]int, r.shards)
	for s := 0; s < n; s++ {
		counts[r.Owner(graph.NodeID(s))]++
	}
	return counts
}

// splitmix64 is the 64-bit finalizer of the SplitMix64 generator: a
// bijective mix whose output passes avalanche tests, which is all a
// consistent-hash ring needs from its point hash.
//
//rbpc:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix64 decorrelates the (shard, vnode) packing before it meets the seed.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	return x ^ (x >> 33)
}
