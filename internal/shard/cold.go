package shard

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/core"
	"rbpc/internal/engine"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
	"rbpc/internal/rbpc"
)

// ColdConfig tunes the on-demand tier answering pairs whose source has no
// materialized serving row.
type ColdConfig struct {
	// Workers is the solver-pool size (default 2). Each worker owns one
	// warm sparse solver, rebound when the failed-set changes under it.
	Workers int
	// Queue bounds the admission queue; submissions beyond it are shed
	// (default 1024). This is the admission control: cold solves are
	// orders of magnitude dearer than row lookups, and an unbounded
	// backlog would let a cold-heavy burst starve the solver pool forever.
	Queue int
	// PromoteAfter is how many times a pair must be answered under one
	// failed-set before its route is promoted into the answer cache
	// (default 3) — pairs that stay hot stop paying for solves.
	PromoteAfter int
	// CacheCap bounds the promoted-answer cache, CLOCK-evicted
	// (default 4096).
	CacheCap int
}

func (c ColdConfig) withDefaults() ColdConfig {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.Queue < 1 {
		c.Queue = 1024
	}
	if c.PromoteAfter < 1 {
		c.PromoteAfter = 3
	}
	if c.CacheCap < 1 {
		c.CacheCap = 4096
	}
	return c
}

// ColdStats is the cold tier's counter scrape.
type ColdStats struct {
	// Queries counts pairs routed to the tier; Shed counts those refused
	// by admission control; Solved counts base-set solves actually run;
	// PromotedHits counts answers served from the promoted cache;
	// Promotions counts routes promoted into it.
	Queries      int64
	Shed         int64
	Solved       int64
	PromotedHits int64
	Promotions   int64
}

// coldKey identifies a promoted answer: the pair plus the failed-set it
// was solved under (a cached route is only valid for its failed-set).
type coldKey struct {
	src, dst graph.NodeID
	failed   string
}

type coldEntry struct {
	key coldKey
	rt  *engine.Route
	ref bool
}

// coldReq is one queued cold-tier solve. It pins the querying shard's
// snapshot for the duration of the solve, so it is epoch-scoped: it may
// ride the admission queue but never rest anywhere longer-lived.
//
//rbpc:epochscoped
type coldReq struct {
	src, dst graph.NodeID
	snap     *engine.Snapshot
	reply    chan engine.Result // nil: async, answer goes to onResult
}

// ColdTier is the admission-controlled on-demand solver pool. Cold
// queries enter a bounded queue; workers answer them by a Corollary-4
// base-set solve against the querying shard's snapshot failure view. The
// base set is edge-complete under the provisioning defaults, so a solve
// yields the optimal-cost concatenation for every connected pair — the
// same answer a materialized row would hold. Answers carry no label
// stack: components missing from the registry are returned un-signaled
// (control-plane answer), because establishing LSPs from reader threads
// would race the shard writers' forwarding planes.
type ColdTier struct {
	g        *graph.Graph
	base     *paths.Explicit
	lspOf    map[string]*mpls.LSP // read-only after New; never written here
	cfg      ColdConfig
	onResult func(engine.Result)

	queue    chan coldReq
	done     chan struct{}
	wg       sync.WaitGroup
	inflight atomic.Int64

	queries      atomic.Int64
	shed         atomic.Int64
	solved       atomic.Int64
	promotedHits atomic.Int64
	promotions   atomic.Int64

	mu sync.Mutex
	// hits counts answers per (pair, failed-set) toward promotion; reset
	// wholesale when it outgrows the cache to bound memory (a crude decay
	// that at worst delays a promotion by PromoteAfter hits).
	hits map[coldKey]int //rbpc:guardedby mu
	// cache/ring/hand are the promoted-answer CLOCK cache.
	cache map[coldKey]*coldEntry //rbpc:guardedby mu
	ring  []*coldEntry           //rbpc:guardedby mu
	hand  int                    //rbpc:guardedby mu
}

// NewColdTier starts the solver pool. The registry must be a private
// clone (workers read it concurrently with nobody writing); onResult
// receives async answers (nil discards them).
func NewColdTier(g *graph.Graph, base *paths.Explicit, lspOf map[string]*mpls.LSP, cfg ColdConfig, onResult func(engine.Result)) *ColdTier {
	cfg = cfg.withDefaults()
	t := &ColdTier{
		g:        g,
		base:     base,
		lspOf:    lspOf,
		cfg:      cfg,
		onResult: onResult,
		queue:    make(chan coldReq, cfg.Queue),
		done:     make(chan struct{}),
		hits:     make(map[coldKey]int),
		cache:    make(map[coldKey]*coldEntry),
	}
	for w := 0; w < cfg.Workers; w++ {
		t.wg.Add(1)
		go t.worker()
	}
	return t
}

// Query answers a cold pair synchronously: admitted through the bounded
// queue, solved by the pool. A full queue sheds the query — the caller
// gets a nil route, exactly as an overloaded engine shard sheds a Submit.
func (t *ColdTier) Query(src, dst graph.NodeID, snap *engine.Snapshot) engine.Result {
	t.queries.Add(1)
	reply := make(chan engine.Result, 1)
	select {
	case t.queue <- coldReq{src: src, dst: dst, snap: snap, reply: reply}:
	default:
		t.shed.Add(1)
		return engine.Result{Src: src, Dst: dst, Snap: snap}
	}
	select {
	case res := <-reply:
		return res
	case <-t.done:
		return engine.Result{Src: src, Dst: dst, Snap: snap}
	}
}

// Submit enqueues a cold pair asynchronously; the answer goes to the
// coordinator's OnResult callback. Reports false when shed.
func (t *ColdTier) Submit(src, dst graph.NodeID, snap *engine.Snapshot) bool {
	t.queries.Add(1)
	select {
	case t.queue <- coldReq{src: src, dst: dst, snap: snap}:
		return true
	default:
		t.shed.Add(1)
		return false
	}
}

func (t *ColdTier) worker() {
	defer t.wg.Done()
	var solver *core.SparseSolver
	boundKey := "\x00unbound"
	for {
		select {
		case <-t.done:
			return
		case req := <-t.queue:
			t.inflight.Add(1)
			res := t.answer(&solver, &boundKey, req)
			if req.reply != nil {
				req.reply <- res
			} else if t.onResult != nil {
				t.onResult(res)
			}
			t.inflight.Add(-1)
		}
	}
}

func (t *ColdTier) answer(solver **core.SparseSolver, boundKey *string, req coldReq) engine.Result {
	key := coldKey{src: req.src, dst: req.dst, failed: failedSetKey(req.snap.Failed())}

	t.mu.Lock()
	if ent, ok := t.cache[key]; ok {
		ent.ref = true
		t.mu.Unlock()
		t.promotedHits.Add(1)
		return engine.Result{Src: req.src, Dst: req.dst, Route: ent.rt, Snap: req.snap}
	}
	t.mu.Unlock()

	// Rebind the worker's warm solver when the failed-set moved under it;
	// consecutive queries against one epoch reuse the dead-path mask.
	if *solver == nil {
		*solver = core.NewSparseSolver(t.base, req.snap.View())
	} else if *boundKey != key.failed {
		(*solver).Rebind(req.snap.View())
	}
	*boundKey = key.failed

	t.solved.Add(1)
	decs, oks := (*solver).From(req.src, []graph.NodeID{req.dst})
	if !oks[0] {
		return engine.Result{Src: req.src, Dst: req.dst, Snap: req.snap}
	}
	rt := t.routeFor(decs[0])
	t.promote(key, rt)
	return engine.Result{Src: req.src, Dst: req.dst, Route: rt, Snap: req.snap}
}

// routeFor maps a decomposition to a served Route without touching any
// shared mutable state: provisioned components resolve through the
// read-only registry, missing ones ride as un-signaled LSP values. The
// label stack is built only when every component is provisioned.
func (t *ColdTier) routeFor(dec core.Decomposition) *engine.Route {
	lsps := make([]*mpls.LSP, len(dec.Components))
	signaled := true
	for i, c := range dec.Components {
		if l, ok := t.lspOf[c.Path.Key()]; ok {
			lsps[i] = l
		} else {
			lsps[i] = &mpls.LSP{Path: c.Path}
			signaled = false
		}
	}
	rt := &engine.Route{LSPs: lsps, Cost: dec.Cost(t.g)}
	if signaled {
		if stack, err := mpls.SelfStack(lsps); err == nil {
			rt.Stack = stack
		}
	}
	return rt
}

// promote counts the answer toward promotion and caches it once the pair
// has proven it stays hot.
func (t *ColdTier) promote(key coldKey, rt *engine.Route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.hits) > 4*t.cfg.CacheCap {
		t.hits = make(map[coldKey]int)
	}
	t.hits[key]++
	if t.hits[key] < t.cfg.PromoteAfter {
		return
	}
	delete(t.hits, key)
	if _, ok := t.cache[key]; ok {
		return
	}
	ent := &coldEntry{key: key, rt: rt, ref: true}
	t.cache[key] = ent
	t.promotions.Add(1)
	if len(t.ring) < t.cfg.CacheCap {
		t.ring = append(t.ring, ent)
		return
	}
	for {
		victim := t.ring[t.hand]
		if victim.ref {
			victim.ref = false
			t.hand = (t.hand + 1) % len(t.ring)
			continue
		}
		delete(t.cache, victim.key)
		t.ring[t.hand] = ent
		t.hand = (t.hand + 1) % len(t.ring)
		return
	}
}

// Drain waits for the queue and all in-flight solves to finish. The
// idle condition must hold on two consecutive polls to cover the window
// between a worker dequeuing a request and marking itself in-flight.
func (t *ColdTier) Drain() {
	idle := 0
	for idle < 2 {
		select {
		case <-t.done:
			return
		default:
		}
		if len(t.queue) == 0 && t.inflight.Load() == 0 {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(time.Millisecond)
	}
}

func (t *ColdTier) Close() {
	close(t.done)
	t.wg.Wait()
}

func (t *ColdTier) Stats() ColdStats {
	return ColdStats{
		Queries:      t.queries.Load(),
		Shed:         t.shed.Load(),
		Solved:       t.solved.Load(),
		PromotedHits: t.promotedHits.Load(),
		Promotions:   t.promotions.Load(),
	}
}

// failedSetKey canonicalizes a sorted failed-set (the same encoding the
// engine's plan cache uses, rebuilt here because the engine's is
// unexported and the coupling is one line).
func failedSetKey(failed []graph.EdgeID) string {
	if len(failed) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*len(failed))
	for i, e := range failed {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(e), 10)
	}
	return string(b)
}

// coldPair reports whether the pair must go to the cold tier under the
// given snapshot.
func coldPair(snap *engine.Snapshot, pr rbpc.Pair) bool {
	return !snap.Materialized(pr.Src)
}
