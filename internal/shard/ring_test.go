package shard

import (
	"testing"

	"rbpc/internal/graph"
)

// fullASNodes is the paper's full-scale AS graph order (PaperAS at scale
// 1.0) — the source population the ring must balance over.
const fullASNodes = 4746

func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a, err := NewRing(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < fullASNodes; s++ {
		src := graph.NodeID(s)
		if a.Owner(src) != b.Owner(src) {
			t.Fatalf("source %d: owner %d on first build, %d on rebuild", s, a.Owner(src), b.Owner(src))
		}
	}
}

func TestRingRejectsZeroShards(t *testing.T) {
	if _, err := NewRing(0, 0, 0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
}

func TestRingSeedChangesOwnership(t *testing.T) {
	a, _ := NewRing(4, 0, 1)
	b, _ := NewRing(4, 0, 2)
	moved := 0
	for s := 0; s < fullASNodes; s++ {
		if a.Owner(graph.NodeID(s)) != b.Owner(graph.NodeID(s)) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("different seeds produced identical ownership — seed is not part of the hash")
	}
}

// TestRingBalanceFullAS asserts every shard's share of the full AS-graph
// source population stays within 10% of even.
func TestRingBalanceFullAS(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		r, err := NewRing(shards, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := r.Counts(fullASNodes)
		mean := float64(fullASNodes) / float64(shards)
		for i, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("shards=%d: shard %d owns %d sources, %.1f%% off the even share %.0f",
					shards, i, c, 100*dev, mean)
			}
		}
	}
}

// TestRingMinimalMovement asserts that growing the ring from N to N+1
// shards only moves sources onto the new shard: a source's owner either
// stays put or becomes N.
func TestRingMinimalMovement(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		old, err := NewRing(n, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(n+1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for s := 0; s < fullASNodes; s++ {
			src := graph.NodeID(s)
			was, now := old.Owner(src), grown.Owner(src)
			if was == now {
				continue
			}
			if now != n {
				t.Fatalf("n=%d: source %d moved from shard %d to existing shard %d — not minimal", n, s, was, now)
			}
			moved++
		}
		// The new shard should take roughly its fair slice, 1/(n+1).
		want := float64(fullASNodes) / float64(n+1)
		if f := float64(moved); f < 0.5*want || f > 1.5*want {
			t.Errorf("n=%d: %d sources moved to the new shard, expected about %.0f", n, moved, want)
		}
	}
}
