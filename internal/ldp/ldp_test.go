package ldp

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

func setup() (*graph.Graph, *mpls.Network, *sim.Engine, *Signaler) {
	g := topology.Line(5)
	net := mpls.NewNetwork(g)
	eng := &sim.Engine{}
	sig := NewSignaler(net, eng, DefaultConfig())
	return g, net, eng, sig
}

func linePath(g *graph.Graph, from, to int) graph.Path {
	p := graph.Path{Nodes: []graph.NodeID{graph.NodeID(from)}}
	for i := from; i < to; i++ {
		id, _ := g.FindEdge(graph.NodeID(i), graph.NodeID(i+1))
		p.Nodes = append(p.Nodes, graph.NodeID(i+1))
		p.Edges = append(p.Edges, id)
	}
	return p
}

func TestEstablishTiming(t *testing.T) {
	g, net, eng, sig := setup()
	path := linePath(g, 0, 3) // 3 hops
	msgs, latency := sig.EstablishCost(path)
	if msgs != 6 {
		t.Errorf("messages = %d, want 6", msgs)
	}
	if latency != 2*3*(1+0.5) {
		t.Errorf("latency = %v, want 9", latency)
	}
	var gotLSP *mpls.LSP
	var doneAt sim.Time
	sig.Establish(path, func(l *mpls.LSP, err error) {
		if err != nil {
			t.Errorf("Establish: %v", err)
		}
		gotLSP, doneAt = l, eng.Now()
	})
	if net.NumLSPs() != 0 {
		t.Error("LSP installed before signaling finished")
	}
	eng.Run()
	if gotLSP == nil {
		t.Fatal("done never called")
	}
	if doneAt != 9 {
		t.Errorf("completed at %v, want 9", doneAt)
	}
	if net.NumLSPs() != 1 {
		t.Error("LSP missing after signaling")
	}
	if st := sig.Stats(); st.Requests != 3 || st.Mappings != 3 || st.Total() != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTeardown(t *testing.T) {
	g, net, eng, sig := setup()
	lsp, err := net.EstablishLSP(linePath(g, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	called := false
	sig.Teardown(lsp, func(err error) {
		if err != nil {
			t.Errorf("Teardown: %v", err)
		}
		called = true
	})
	eng.Run()
	if !called || net.NumLSPs() != 0 {
		t.Errorf("teardown incomplete: called=%v LSPs=%d", called, net.NumLSPs())
	}
	if sig.Stats().Releases != 3 {
		t.Errorf("Releases = %d", sig.Stats().Releases)
	}
}

func TestEstablishTrivialErrors(t *testing.T) {
	_, _, eng, sig := setup()
	var gotErr error
	sig.Establish(graph.Trivial(0), func(l *mpls.LSP, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Error("trivial path accepted")
	}
}

func TestIndependentModeFaster(t *testing.T) {
	g := topology.Line(5)
	net := mpls.NewNetwork(g)
	eng := &sim.Engine{}
	cfg := DefaultConfig()
	cfg.ControlMode = Independent
	sig := NewSignaler(net, eng, cfg)
	path := linePath(g, 0, 4) // 4 hops
	msgs, lat := sig.EstablishCost(path)
	if msgs != 8 {
		t.Errorf("messages = %d, want 8 (same as ordered)", msgs)
	}
	ordered := NewSignaler(net, eng, DefaultConfig())
	_, latOrdered := ordered.EstablishCost(path)
	if !(lat < latOrdered) {
		t.Errorf("independent latency %v not below ordered %v", lat, latOrdered)
	}
	// Establishment still works end to end.
	done := false
	sig.Establish(path, func(l *mpls.LSP, err error) {
		if err != nil {
			t.Errorf("Establish: %v", err)
		}
		if eng.Now() != lat {
			t.Errorf("completed at %v, want %v", eng.Now(), lat)
		}
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("never completed")
	}
	if Ordered.String() != "ordered" || Independent.String() != "independent" || Mode(9).String() == "" {
		t.Error("Mode strings")
	}
}

func TestEstablishOverDeadLinkFails(t *testing.T) {
	g, net, eng, sig := setup()
	net.FailEdge(g.Edges()[0].ID)
	var gotErr error
	sig.Establish(linePath(g, 0, 2), func(l *mpls.LSP, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Error("establishment over dead link succeeded")
	}
}
