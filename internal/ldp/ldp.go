// Package ldp simulates ordered downstream-on-demand label distribution —
// the signaling protocol that conventional MPLS restoration must run to
// build a replacement LSP after a failure, and that RBPC eliminates.
//
// Establishment of an h-hop LSP sends a label request hop by hop from the
// ingress to the egress and a label mapping back (2h messages, round-trip
// latency); teardown sends h release messages. The Signaler executes these
// exchanges on a discrete-event engine and installs/removes the LSP in the
// MPLS network only when signaling completes — modeling the window during
// which traffic is blackholed, which the paper's scheme avoids entirely.
package ldp

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/sim"
)

// Mode selects the label-distribution control mode (RFC 3036 terms).
type Mode int

const (
	// Ordered: a router answers a label request only after its
	// downstream neighbor has answered, so the LSP goes live exactly
	// once the mapping returns to the ingress: 2h messages, round-trip
	// latency, no transient misrouting. This is what conventional MPLS
	// restoration pays per re-signaled LSP.
	Ordered Mode = iota + 1
	// Independent: every router answers immediately and installs its row
	// as soon as its own mapping is out: still 2h messages, but the LSP
	// is usable after roughly the one-way latency. Faster, at the cost
	// of a window where upstream rows exist before downstream ones.
	Independent
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Ordered:
		return "ordered"
	case Independent:
		return "independent"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config sets signaling timing.
type Config struct {
	// LinkDelay returns the one-way message delay over a link.
	LinkDelay func(graph.Edge) sim.Time
	// ProcDelay is the per-router message processing delay.
	ProcDelay sim.Time
	// ControlMode selects Ordered (default) or Independent distribution.
	ControlMode Mode
}

// DefaultConfig uses 1ms links and 0.5ms processing (label allocation and
// table writes are slower than LSA forwarding), ordered control.
func DefaultConfig() Config {
	return Config{
		LinkDelay:   func(graph.Edge) sim.Time { return 1 },
		ProcDelay:   0.5,
		ControlMode: Ordered,
	}
}

// Stats counts LDP messages.
type Stats struct {
	Requests int
	Mappings int
	Releases int
}

// Total returns all messages sent.
func (s Stats) Total() int { return s.Requests + s.Mappings + s.Releases }

// Signaler drives LDP exchanges over an MPLS network on a simulation
// engine.
type Signaler struct {
	net   *mpls.Network
	eng   *sim.Engine
	cfg   Config
	stats Stats
}

// NewSignaler returns a Signaler for net driven by eng.
func NewSignaler(net *mpls.Network, eng *sim.Engine, cfg Config) *Signaler {
	if cfg.LinkDelay == nil {
		cfg.LinkDelay = func(graph.Edge) sim.Time { return 1 }
	}
	return &Signaler{net: net, eng: eng, cfg: cfg}
}

// Stats returns the message counters.
func (s *Signaler) Stats() Stats { return s.stats }

// pathDelay returns the one-way signaling latency along path: per-hop link
// delay plus per-router processing at each receiving router.
func (s *Signaler) pathDelay(path graph.Path) sim.Time {
	var d sim.Time
	for _, e := range path.Edges {
		d += s.cfg.LinkDelay(s.net.Graph().Edge(e)) + s.cfg.ProcDelay
	}
	return d
}

// EstablishCost returns the message count and latency that establishing an
// LSP over path will incur, without performing it. Ordered control pays a
// full round trip; independent control goes live after the one-way
// request sweep plus one processing step for the ingress's own mapping.
func (s *Signaler) EstablishCost(path graph.Path) (messages int, latency sim.Time) {
	messages = 2 * path.Hops()
	switch s.cfg.ControlMode {
	case Independent:
		latency = s.pathDelay(path) + s.cfg.ProcDelay
	default:
		latency = 2 * s.pathDelay(path)
	}
	return messages, latency
}

// Establish runs the request/mapping exchange for path and installs the
// LSP when the mapping returns to the ingress. done receives the LSP or
// the establishment error.
func (s *Signaler) Establish(path graph.Path, done func(*mpls.LSP, error)) {
	if path.Hops() == 0 {
		done(nil, fmt.Errorf("ldp: trivial path"))
		return
	}
	h := path.Hops()
	s.stats.Requests += h
	s.stats.Mappings += h
	_, latency := s.EstablishCost(path)
	s.eng.After(latency, func() {
		done(s.net.EstablishLSP(path))
	})
}

// Teardown sends release messages along the LSP and removes it when they
// have propagated.
func (s *Signaler) Teardown(lsp *mpls.LSP, done func(error)) {
	h := lsp.Path.Hops()
	s.stats.Releases += h
	s.eng.After(s.pathDelay(lsp.Path), func() {
		done(s.net.TeardownLSP(lsp.ID))
	})
}
