package core

import (
	"errors"
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// ErrDisconnected is returned when no restoration path exists: the failure
// separated the source from the destination.
var ErrDisconnected = errors.New("core: no surviving path between the endpoints")

// Strategy selects how restoration paths are decomposed into base paths.
type Strategy int

const (
	// StrategyGreedy computes the post-failure shortest path and splits it
	// with DecomposeGreedy. Requires a subpath-closed base set.
	StrategyGreedy Strategy = iota + 1
	// StrategySparse runs Dijkstra directly on the base-path graph
	// (DecomposeSparse). Works with any base set.
	StrategySparse
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyGreedy:
		return "greedy"
	case StrategySparse:
		return "sparse"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan is a computed restoration for one source-destination pair under one
// failure set.
type Plan struct {
	Src, Dst graph.NodeID
	// Backup is the restoration path (a post-failure shortest path).
	Backup graph.Path
	// Decomp expresses Backup as a concatenation of base paths and edges.
	Decomp Decomposition
}

// PCLength returns the number of components — the paper's
// path-concatenation length metric.
func (p Plan) PCLength() int { return p.Decomp.Len() }

// Restorer computes restoration plans over a fixed original network and
// base set.
type Restorer struct {
	base     paths.Base
	strategy Strategy
}

// NewRestorer returns a Restorer using the given base set and strategy.
func NewRestorer(base paths.Base, strategy Strategy) *Restorer {
	return &Restorer{base: base, strategy: strategy}
}

// Base returns the restorer's base set.
func (r *Restorer) Base() paths.Base { return r.base }

// Restore computes a restoration plan for the pair (s, d) under the failure
// view fv. It returns ErrDisconnected if no surviving path exists.
//
// The backup path is always a true post-failure shortest path (for the
// greedy strategy, the deterministic canonical one; for the sparse
// strategy, the minimum-cost concatenation, whose cost equals the
// post-failure distance because bare edges are always available as
// components).
func (r *Restorer) Restore(fv *graph.FailureView, s, d graph.NodeID) (Plan, error) {
	switch r.strategy {
	case StrategySparse:
		dec, ok := DecomposeSparse(r.base, fv, s, d)
		if !ok {
			return Plan{}, fmt.Errorf("restore %d->%d: %w", s, d, ErrDisconnected)
		}
		plan := Plan{Src: s, Dst: d, Decomp: dec}
		if len(dec.Components) > 0 {
			plan.Backup = dec.Concat()
		} else {
			plan.Backup = graph.Trivial(s)
		}
		return plan, nil
	case StrategyGreedy:
		backup, ok := spath.Compute(fv, s).PathTo(d)
		if !ok {
			return Plan{}, fmt.Errorf("restore %d->%d: %w", s, d, ErrDisconnected)
		}
		dec := DecomposeGreedy(r.base, backup)
		return Plan{Src: s, Dst: d, Backup: backup, Decomp: dec}, nil
	default:
		return Plan{}, fmt.Errorf("restore %d->%d: unknown strategy %v", s, d, r.strategy)
	}
}

// RestoreBroken computes plans for every pair whose canonical base path is
// broken by the failures in fv, among the ordered pairs (s, d) with s in
// sources and any destination. This mirrors the paper's methodology: find
// the base LSPs using a failed element, then restore each.
//
// Pairs whose endpoints were themselves removed, and pairs left
// disconnected, are skipped; the number of disconnected pairs is returned
// alongside the plans.
func (r *Restorer) RestoreBroken(fv *graph.FailureView, sources []graph.NodeID) (plans []Plan, disconnected int) {
	n := r.base.View().Order()
	for _, s := range sources {
		if !fv.NodeUsable(s) {
			continue
		}
		for d := 0; d < n; d++ {
			dd := graph.NodeID(d)
			if dd == s || !fv.NodeUsable(dd) {
				continue
			}
			orig, ok := r.base.Between(s, dd)
			if !ok || paths.Survives(orig, fv) {
				continue
			}
			plan, err := r.Restore(fv, s, dd)
			if err != nil {
				disconnected++
				continue
			}
			plans = append(plans, plan)
		}
	}
	return plans, disconnected
}
