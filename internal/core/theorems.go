package core

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// TheoremReport is the outcome of checking one of the paper's theorem
// bounds on one (failure set, pair) instance.
type TheoremReport struct {
	K           int  // number of failed edges
	Reachable   bool // false if the failure disconnected the pair
	PathComps   int  // base-path components in the certified decomposition
	EdgeComps   int  // bare-edge components
	WithinBound bool
}

// CheckTheorem1 verifies the paper's Theorem 1 on a concrete instance: in
// an unweighted network, after the k edge failures in fv, the new shortest
// path from s to d decomposes into at most k+1 original shortest paths
// (and no bare edges).
//
// It uses the exact DP (MinPathComponents with zero allowed edge
// components) against the all-shortest-paths base set of the original
// graph, so a false WithinBound would be a genuine counterexample to the
// theorem (or a bug).
func CheckTheorem1(g *graph.Graph, fv *graph.FailureView, s, d graph.NodeID) (TheoremReport, error) {
	if !g.UnitWeights() {
		return TheoremReport{}, fmt.Errorf("core: Theorem 1 requires an unweighted graph")
	}
	k := len(fv.RemovedEdges())
	rep := TheoremReport{K: k}
	backup, ok := spath.Compute(fv, s).PathTo(d)
	if !ok {
		return rep, nil
	}
	rep.Reachable = true
	base := paths.NewAllShortest(g)
	min := MinPathComponents(base, backup, 0)
	if min < 0 {
		// Cannot happen on unweighted graphs: every edge is a shortest
		// path between its endpoints.
		return rep, fmt.Errorf("core: unweighted backup path not coverable by shortest paths")
	}
	rep.PathComps = min
	rep.WithinBound = min <= k+1
	return rep, nil
}

// CheckTheorem2 verifies Theorem 2 on a concrete instance: in a weighted
// network, after k edge failures the new shortest path decomposes into at
// most k+1 original shortest paths interleaved with at most k bare edges.
func CheckTheorem2(g *graph.Graph, fv *graph.FailureView, s, d graph.NodeID) (TheoremReport, error) {
	k := len(fv.RemovedEdges())
	rep := TheoremReport{K: k}
	backup, ok := spath.Compute(fv, s).PathTo(d)
	if !ok {
		return rep, nil
	}
	rep.Reachable = true
	base := paths.NewAllShortest(g)
	min := MinPathComponents(base, backup, k)
	if min < 0 {
		// The DP could not cover the path within k edge components; that
		// would contradict the theorem.
		rep.WithinBound = false
		rep.PathComps = -1
		return rep, nil
	}
	rep.PathComps = min
	rep.EdgeComps = k // upper bound allowed; DP minimized paths, not edges
	rep.WithinBound = min <= k+1
	return rep, nil
}

// CheckTheorem3 verifies Theorem 3 on a concrete instance: with the
// padded-unique base set (exactly one shortest path per pair), after k
// edge failures every still-connected pair is connected by a concatenation
// of at most k+1 base paths and at most k bare edges.
//
// Note the concatenation certified here is a shortest path of the padded
// graph (hence a true shortest path of g), exactly as in the paper's
// construction.
func CheckTheorem3(g *graph.Graph, base *paths.UniqueShortest, fv *graph.FailureView, s, d graph.NodeID) (TheoremReport, error) {
	k := len(fv.RemovedEdges())
	rep := TheoremReport{K: k}
	// Compute the padded post-failure shortest path: pad the failure view
	// with the same perturbation used by the base set so that subpaths of
	// the backup that survive are exactly base paths.
	pfv := spath.Padded(fv, spath.PaddingFor(g))
	backup, ok := spath.Compute(pfv, s).PathTo(d)
	if !ok {
		return rep, nil
	}
	rep.Reachable = true
	min := MinPathComponents(base, backup, k)
	if min < 0 {
		rep.WithinBound = false
		rep.PathComps = -1
		return rep, nil
	}
	rep.PathComps = min
	rep.EdgeComps = k
	rep.WithinBound = min <= k+1
	return rep, nil
}
