package core

// Corollary 4 and the directed-base-paths remark, exercised end to end.

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// weightedGadget builds the Figure-3 style graph where restoration is
// forced through a "dear" parallel edge that is not a shortest path:
// 0 -1- 1 ={2,3}= 2 -1- 3.
func weightedGadget() (*graph.Graph, graph.EdgeID) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	cheap := g.AddEdge(1, 2, 2)
	g.AddEdge(1, 2, 3) // dear twin
	g.AddEdge(2, 3, 1)
	return g, cheap
}

// TestCorollary4RemovesEdgeComponents: with the plain canonical base set
// the weighted restoration needs a bare-edge component; with the
// Corollary-4 extended set (edges appended to base paths) it needs only
// base paths — at most k+1 of them.
func TestCorollary4RemovesEdgeComponents(t *testing.T) {
	g, cheap := weightedGadget()
	fv := graph.FailEdges(g, cheap)

	// Plain canonical set: the dear edge is not a base path, so sparse
	// decomposition must spend a bare-edge component on it.
	plain := paths.FromSources(paths.NewAllShortest(g), []graph.NodeID{0, 1, 2, 3})
	decPlain, ok := DecomposeSparse(plain, fv, 0, 3)
	if !ok {
		t.Fatal("plain restoration failed")
	}
	if decPlain.NumEdges() == 0 {
		t.Fatalf("expected a bare-edge component with the plain set: %v", decPlain)
	}

	// Corollary-4 extension: paths with the dear edge appended become
	// base paths, so a pure base-path decomposition exists with at most
	// k+1 = 2 components.
	extended := paths.Corollary4Extend(plain, g)
	decExt, ok := DecomposeSparse(extended, fv, 0, 3)
	if !ok {
		t.Fatal("extended restoration failed")
	}
	if decExt.NumEdges() != 0 {
		t.Errorf("extended set still used %d bare edges: %v", decExt.NumEdges(), decExt)
	}
	if decExt.NumPaths() > 2 {
		t.Errorf("extended set used %d paths, want <= k+1 = 2: %v", decExt.NumPaths(), decExt)
	}
	// Both must realize the same (optimal) restoration cost.
	if decPlain.Cost(g) != decExt.Cost(g) {
		t.Errorf("costs differ: plain %v extended %v", decPlain.Cost(g), decExt.Cost(g))
	}
}

// TestCorollary4SizeBound: the extended set respects the paper's size
// bound n(n-1) + 2m(n-1) for directed base paths.
func TestCorollary4SizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(3)))
		}
		for i := 0; i < n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(3)))
			}
		}
		var all []graph.NodeID
		for i := 0; i < n; i++ {
			all = append(all, graph.NodeID(i))
		}
		base := paths.FromSources(paths.NewAllShortest(g), all)
		ext := paths.Corollary4Extend(base, g)
		m := g.Size()
		bound := n*(n-1) + 2*m*(n-1)
		if ext.Len() > bound {
			t.Fatalf("trial %d: extended size %d > bound %d (n=%d m=%d)", trial, ext.Len(), bound, n, m)
		}
	}
}

// TestDirectedBasePaths: the machinery runs on directed graphs (the
// paper's remark treats base paths as directed, one per ordered pair);
// restoration works, though the k+1 bound is not guaranteed (Figure 5).
func TestDirectedBasePaths(t *testing.T) {
	g := graph.NewDirected(4)
	e01 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 1, 1)
	g.AddEdge(2, 0, 1) // return arc so the graph is strongly connected-ish

	base := paths.NewAllShortest(g)
	p, ok := base.Between(0, 2)
	if !ok || p.Hops() != 2 {
		t.Fatalf("directed Between(0,2) = %v, %v", p, ok)
	}
	fv := graph.FailEdges(g, e01)
	backup, ok := spath.Compute(fv, 0).PathTo(2)
	if !ok {
		t.Fatal("no directed backup path")
	}
	dec := DecomposeGreedy(base, backup)
	if err := ValidateDecomposition(base, backup, dec); err != nil {
		t.Fatalf("directed decomposition invalid: %v", err)
	}
	// The backup 0-3-1-2 decomposes into directed shortest paths.
	if dec.Len() == 0 || dec.Len() > 3 {
		t.Errorf("directed decomposition = %v", dec)
	}
	// Reversed paths are NOT valid on directed views.
	if err := backup.Reverse().Validate(g); err == nil {
		t.Error("reversed directed path validated")
	}
}

// TestRestorerSuffixComponentsEnterMidstream: decomposition components
// after the first are suffixes that begin at intermediate nodes; check
// every non-first greedy component starts where the previous ended and
// is itself a canonical base path between its endpoints (the property
// that makes them free to enter in MPLS).
func TestRestorerSuffixComponentsEnterMidstream(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1)
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		base := paths.NewAllShortest(g)
		e := graph.EdgeID(rng.Intn(g.Size()))
		fv := graph.FailEdges(g, e)
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		backup, ok := spath.Compute(fv, s).PathTo(d)
		if !ok {
			continue
		}
		dec := DecomposeGreedy(base, backup)
		at := s
		for i, c := range dec.Components {
			if c.Path.Src() != at {
				t.Fatalf("trial %d: component %d starts at %d, want %d", trial, i, c.Path.Src(), at)
			}
			if c.Kind == KindBasePath && !base.Contains(c.Path) {
				t.Fatalf("trial %d: component %d not a base path", trial, i)
			}
			at = c.Path.Dst()
		}
		if at != d {
			t.Fatalf("trial %d: concatenation ends at %d, want %d", trial, at, d)
		}
	}
}
