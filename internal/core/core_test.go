package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

func square() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	return g
}

func randomConnected(rng *rand.Rand, n, extra, maxW int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(maxW)))
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(maxW)))
		}
	}
	return g
}

func TestGreedySquareSingleFailure(t *testing.T) {
	g := square()
	base := paths.NewAllShortest(g)
	fv := graph.FailEdges(g, 0) // fail 0-1
	backup, ok := spath.Compute(fv, 0).PathTo(1)
	if !ok || backup.Hops() != 3 {
		t.Fatalf("backup = %v, ok=%v", backup, ok)
	}
	dec := DecomposeGreedy(base, backup)
	if err := ValidateDecomposition(base, backup, dec); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
	if dec.Len() != 2 || dec.NumPaths() != 2 || dec.NumEdges() != 0 {
		t.Errorf("decomposition %v: len=%d paths=%d edges=%d, want 2 paths",
			dec, dec.Len(), dec.NumPaths(), dec.NumEdges())
	}
	// Theorem 1 with k=1: at most 2 components.
	rep, err := CheckTheorem1(g, fv, 0, 1)
	if err != nil || !rep.WithinBound || rep.PathComps != 2 {
		t.Errorf("CheckTheorem1 = %+v, %v", rep, err)
	}
}

func TestGreedyTrivialTarget(t *testing.T) {
	g := square()
	base := paths.NewAllShortest(g)
	dec := DecomposeGreedy(base, graph.Trivial(2))
	if dec.Len() != 0 {
		t.Errorf("trivial target decomposed into %d components", dec.Len())
	}
	if err := ValidateDecomposition(base, graph.Trivial(2), dec); err != nil {
		t.Errorf("ValidateDecomposition: %v", err)
	}
}

func TestGreedyEmitsEdgeComponent(t *testing.T) {
	// Triangle with a heavy edge: 0-2 costs 5 while 0-1-2 costs 2. After
	// failing both light edges... that disconnects. Instead: path 3-0,
	// 0-2 heavy, 2-4: restoring 3->4 after killing the light route forces
	// the heavy edge, which is not a shortest path, so it must appear as a
	// bare-edge component.
	g := graph.New(5)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5) // heavy
	g.AddEdge(3, 0, 1)
	g.AddEdge(2, 4, 1)
	base := paths.NewAllShortest(g)
	fv := graph.FailEdges(g, e01, e12)
	backup, ok := spath.Compute(fv, 3).PathTo(4)
	if !ok {
		t.Fatal("no backup path")
	}
	dec := DecomposeGreedy(base, backup)
	if err := ValidateDecomposition(base, backup, dec); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if dec.NumEdges() != 1 {
		t.Errorf("decomposition %v has %d edge components, want 1", dec, dec.NumEdges())
	}
	// Theorem 2, k=2: at most 3 base paths + 2 edges.
	rep, err := CheckTheorem2(g, fv, 3, 4)
	if err != nil || !rep.WithinBound {
		t.Errorf("CheckTheorem2 = %+v, %v", rep, err)
	}
}

func TestFourCycleExtraEdgeRemark(t *testing.T) {
	// The paper's remark: on C4 with one shortest path chosen per pair,
	// some single failure requires 3 components, and with no bare edges
	// allowed the minimum is 3 > k+1 = 2 base paths.
	g := square()
	base := paths.NewUniqueShortest(g)
	foundTight := false
	for _, e := range g.Edges() {
		fv := graph.FailEdges(g, e.ID)
		for s := 0; s < 4; s++ {
			for d := 0; d < 4; d++ {
				if s == d {
					continue
				}
				orig, ok := base.Between(graph.NodeID(s), graph.NodeID(d))
				if !ok || paths.Survives(orig, fv) {
					continue
				}
				pfv := spath.Padded(fv, spath.PaddingFor(g))
				backup, ok := spath.Compute(pfv, graph.NodeID(s)).PathTo(graph.NodeID(d))
				if !ok {
					continue
				}
				noEdges := MinPathComponents(base, backup, 0)
				withEdge := MinPathComponents(base, backup, 1)
				if withEdge < 0 || (noEdges >= 0 && noEdges > 3) {
					t.Fatalf("C4 restoration impossible: noEdges=%d withEdge=%d", noEdges, withEdge)
				}
				if noEdges < 0 || noEdges == 3 {
					foundTight = true
				}
			}
		}
	}
	if !foundTight {
		t.Error("no single failure on C4 required 3 pure-path components; remark not demonstrated")
	}
}

func TestMinPathComponentsUncoverable(t *testing.T) {
	// An explicit empty base set cannot cover anything without edges.
	g := square()
	empty := paths.NewExplicit(g)
	target := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}
	if got := MinPathComponents(empty, target, 0); got != -1 {
		t.Errorf("MinPathComponents with empty base = %d, want -1", got)
	}
	if got := MinPathComponents(empty, target, 1); got != 0 {
		t.Errorf("MinPathComponents with one edge allowed = %d, want 0", got)
	}
}

func TestSparseMatchesShortestCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(rng, 5+rng.Intn(15), rng.Intn(20), 4)
		base := paths.NewUniqueShortest(g)
		e := graph.EdgeID(rng.Intn(g.Size()))
		fv := graph.FailEdges(g, e)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			continue
		}
		want := spath.Compute(fv, s).Dist(d)
		dec, ok := DecomposeSparse(base, fv, s, d)
		if want == spath.Unreachable {
			if ok {
				t.Fatalf("trial %d: sparse found a path for disconnected pair", trial)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: sparse failed on connected pair", trial)
		}
		if got := dec.Cost(g); got != want {
			t.Fatalf("trial %d: sparse cost %v != shortest %v (dec %v)", trial, got, want, dec)
		}
		if len(dec.Components) > 0 {
			full := dec.Concat()
			if err := full.Validate(fv); err != nil {
				t.Fatalf("trial %d: sparse concatenation invalid in view: %v", trial, err)
			}
		}
	}
}

func TestSparseUnusableEndpoints(t *testing.T) {
	g := square()
	base := paths.NewUniqueShortest(g)
	fv := graph.FailNodes(g, 0)
	if _, ok := DecomposeSparse(base, fv, 0, 2); ok {
		t.Error("sparse succeeded from removed node")
	}
	if dec, ok := DecomposeSparse(base, fv, 2, 2); !ok || dec.Len() != 0 {
		t.Error("sparse s==d should be empty and ok")
	}
}

func TestRestorerGreedy(t *testing.T) {
	g := square()
	r := NewRestorer(paths.NewAllShortest(g), StrategyGreedy)
	fv := graph.FailEdges(g, 0)
	plan, err := r.Restore(fv, 0, 1)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if plan.PCLength() != 2 || plan.Backup.Hops() != 3 {
		t.Errorf("plan = %+v", plan)
	}
	if r.Base() == nil {
		t.Error("Base() nil")
	}
}

func TestRestorerSparse(t *testing.T) {
	g := square()
	r := NewRestorer(paths.NewUniqueShortest(g), StrategySparse)
	fv := graph.FailEdges(g, 0)
	plan, err := r.Restore(fv, 0, 1)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if plan.Backup.CostIn(g) != 3 {
		t.Errorf("backup cost = %v, want 3", plan.Backup.CostIn(g))
	}
}

func TestRestorerDisconnected(t *testing.T) {
	g := graph.New(2)
	e := g.AddEdge(0, 1, 1)
	fv := graph.FailEdges(g, e)
	for _, strat := range []Strategy{StrategyGreedy, StrategySparse} {
		r := NewRestorer(paths.NewAllShortest(g), strat)
		_, err := r.Restore(fv, 0, 1)
		if !errors.Is(err, ErrDisconnected) {
			t.Errorf("%v: err = %v, want ErrDisconnected", strat, err)
		}
	}
}

func TestRestorerUnknownStrategy(t *testing.T) {
	g := square()
	r := NewRestorer(paths.NewAllShortest(g), Strategy(99))
	if _, err := r.Restore(graph.FailEdges(g), 0, 1); err == nil {
		t.Error("unknown strategy did not error")
	}
	if Strategy(99).String() == "" || StrategyGreedy.String() != "greedy" || StrategySparse.String() != "sparse" {
		t.Error("Strategy.String wrong")
	}
}

func TestRestoreBroken(t *testing.T) {
	g := square()
	r := NewRestorer(paths.NewAllShortest(g), StrategyGreedy)
	fv := graph.FailEdges(g, 0) // breaks pairs whose canonical path used edge 0
	all := []graph.NodeID{0, 1, 2, 3}
	plans, disc := r.RestoreBroken(fv, all)
	if disc != 0 {
		t.Errorf("disconnected = %d, want 0", disc)
	}
	if len(plans) == 0 {
		t.Fatal("no plans for broken pairs")
	}
	for _, p := range plans {
		if err := ValidateDecomposition(r.Base(), p.Backup, p.Decomp); err != nil {
			t.Errorf("plan %d->%d invalid: %v", p.Src, p.Dst, err)
		}
		if p.Backup.HasEdge(0) {
			t.Errorf("plan %d->%d uses failed edge", p.Src, p.Dst)
		}
	}
}

func TestRestoreBrokenNodeFailure(t *testing.T) {
	g := square()
	r := NewRestorer(paths.NewAllShortest(g), StrategyGreedy)
	fv := graph.FailNodes(g, 1)
	plans, disc := r.RestoreBroken(fv, []graph.NodeID{0, 1, 2, 3})
	if disc != 0 {
		t.Errorf("disconnected = %d", disc)
	}
	for _, p := range plans {
		if p.Src == 1 || p.Dst == 1 {
			t.Errorf("plan involves failed router: %d->%d", p.Src, p.Dst)
		}
		if p.Backup.HasNode(1) {
			t.Errorf("backup path crosses failed router: %v", p.Backup)
		}
	}
}

func TestDecompositionAccessors(t *testing.T) {
	g := square()
	p01 := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}
	p12 := graph.Path{Nodes: []graph.NodeID{1, 2}, Edges: []graph.EdgeID{1}}
	d := Decomposition{Components: []Component{
		{Kind: KindBasePath, Path: p01},
		{Kind: KindEdge, Path: p12},
	}}
	if d.NumPaths() != 1 || d.NumEdges() != 1 || d.Len() != 2 {
		t.Errorf("accessors wrong: %d/%d/%d", d.NumPaths(), d.NumEdges(), d.Len())
	}
	if got := d.Concat(); got.Src() != 0 || got.Dst() != 2 || got.Hops() != 2 {
		t.Errorf("Concat = %v", got)
	}
	if d.Cost(g) != 2 {
		t.Errorf("Cost = %v", d.Cost(g))
	}
	if d.String() == "" || KindBasePath.String() != "base-path" || KindEdge.String() != "edge" || Kind(9).String() == "" {
		t.Error("String methods")
	}
}

func TestValidateDecompositionErrors(t *testing.T) {
	g := square()
	base := paths.NewAllShortest(g)
	target := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	longWay := graph.Path{Nodes: []graph.NodeID{0, 3, 2, 1}, Edges: []graph.EdgeID{3, 2, 1}}

	if err := ValidateDecomposition(base, target, Decomposition{}); err == nil {
		t.Error("empty decomposition accepted for nontrivial target")
	}
	if err := ValidateDecomposition(base, graph.Trivial(0), Decomposition{Components: []Component{{Kind: KindEdge, Path: target.SubPath(0, 1)}}}); err == nil {
		t.Error("nonempty decomposition accepted for trivial target")
	}
	bad := Decomposition{Components: []Component{{Kind: KindBasePath, Path: longWay}}}
	if err := ValidateDecomposition(base, longWay, bad); err == nil {
		t.Error("non-shortest component accepted as base path")
	}
	badEdge := Decomposition{Components: []Component{{Kind: KindEdge, Path: target}}}
	if err := ValidateDecomposition(base, target, badEdge); err == nil {
		t.Error("multi-hop edge component accepted")
	}
	badKind := Decomposition{Components: []Component{{Kind: Kind(0), Path: target}}}
	if err := ValidateDecomposition(base, target, badKind); err == nil {
		t.Error("invalid kind accepted")
	}
	wrongConcat := Decomposition{Components: []Component{{Kind: KindBasePath, Path: target.SubPath(0, 1)}}}
	if err := ValidateDecomposition(base, target, wrongConcat); err == nil {
		t.Error("partial cover accepted")
	}
}

// TestQuickTheorem1RandomGraphs: Theorem 1 holds on random unweighted
// graphs with random failure sets.
func TestQuickTheorem1RandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(14), rng.Intn(25), 1)
		k := 1 + rng.Intn(3)
		var failed []graph.EdgeID
		for i := 0; i < k; i++ {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			return true
		}
		rep, err := CheckTheorem1(g, fv, s, d)
		if err != nil {
			return false
		}
		return !rep.Reachable || rep.WithinBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTheorem2RandomGraphs: Theorem 2 holds on random weighted graphs.
func TestQuickTheorem2RandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(12), rng.Intn(20), 5)
		k := 1 + rng.Intn(3)
		var failed []graph.EdgeID
		for i := 0; i < k; i++ {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			return true
		}
		rep, err := CheckTheorem2(g, fv, s, d)
		if err != nil {
			return false
		}
		return !rep.Reachable || rep.WithinBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTheorem3RandomGraphs: the padded-unique base set achieves the
// k+1 paths + k edges bound.
func TestQuickTheorem3RandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(10), rng.Intn(15), 3)
		base := paths.NewUniqueShortest(g)
		k := 1 + rng.Intn(2)
		var failed []graph.EdgeID
		for i := 0; i < k; i++ {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			return true
		}
		rep, err := CheckTheorem3(g, base, fv, s, d)
		if err != nil {
			return false
		}
		return !rep.Reachable || rep.WithinBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedyWithinTheoremBounds: the production greedy decomposer
// stays within 2k+1 total components on subpath-closed bases.
func TestQuickGreedyWithinTheoremBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(12), rng.Intn(20), 4)
		base := paths.NewAllShortest(g)
		k := 1 + rng.Intn(3)
		var failed []graph.EdgeID
		for i := 0; i < k; i++ {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			return true
		}
		backup, ok := spath.Compute(fv, s).PathTo(d)
		if !ok {
			return true
		}
		dec := DecomposeGreedy(base, backup)
		if ValidateDecomposition(base, backup, dec) != nil {
			return false
		}
		// Greedy minimizes total components; the theorem guarantees a
		// decomposition with <= (k+1) + k components exists.
		return dec.Len() <= 2*k+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedyOptimal: on subpath-closed bases the greedy component
// count matches the DP optimum (with unlimited edge components).
func TestQuickGreedyOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(10), rng.Intn(15), 4)
		base := paths.NewAllShortest(g)
		e := graph.EdgeID(rng.Intn(g.Size()))
		fv := graph.FailEdges(g, e)
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			return true
		}
		backup, ok := spath.Compute(fv, s).PathTo(d)
		if !ok || backup.Hops() == 0 {
			return true
		}
		dec := DecomposeGreedy(base, backup)
		// DP minimizing paths with edge budget = hops (i.e. unconstrained)
		// gives a lower bound on total components when each edge counts 1:
		// compare against exhaustive minimum over edge budgets.
		best := -1
		for budget := 0; budget <= backup.Hops(); budget++ {
			if p := MinPathComponents(base, backup, budget); p >= 0 {
				total := p + budget // upper bound: budget may not all be used
				if best < 0 || total < best {
					best = total
				}
			}
		}
		return best < 0 || dec.Len() <= best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
