package core

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// trueDistances runs the CSR SSSP on fv from s and returns the full
// distance row, the bound input FromBounded expects.
func trueDistances(fv *graph.FailureView, s graph.NodeID) []float64 {
	sp := spath.NewSolver(fv.Order())
	sp.Solve(fv, s)
	bound := make([]float64, fv.Order())
	for v := range bound {
		bound[v] = sp.Dist(graph.NodeID(v))
	}
	return bound
}

func sameDecomposition(a, b Decomposition) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Components {
		if a.Components[i].Kind != b.Components[i].Kind ||
			!a.Components[i].Path.Equal(b.Components[i].Path) {
			return false
		}
	}
	return true
}

// TestFromBoundedBitIdenticalToFrom: on random graphs under random edge
// failures, a pooled solver with a cost index and true-distance bounds
// returns exactly the decompositions the plain unbounded solver does —
// same reachability and the same component sequences, not just costs.
// This is the property the incremental epoch builder's bit-identity claim
// rests on.
func TestFromBoundedBitIdenticalToFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(rng, 14, 14, 4)
		var sources []graph.NodeID
		for i := 0; i < g.Order(); i++ {
			sources = append(sources, graph.NodeID(i))
		}
		ex := paths.FromSources(paths.NewAllShortest(g), sources)
		if trial%2 == 0 {
			ex = paths.Corollary4Extend(ex, g)
		}
		ci := paths.NewCostIndex(ex)

		nfail := 1 + rng.Intn(3)
		var failed []graph.EdgeID
		for len(failed) < nfail {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)

		bounded := NewSparseSolver(ex, fv)
		bounded.SetCostIndex(ci)

		var dsts []graph.NodeID
		for d := 0; d < g.Order(); d++ {
			dsts = append(dsts, graph.NodeID(d))
		}
		for s := 0; s < g.Order(); s++ {
			src := graph.NodeID(s)
			wantDecs, wantOks := NewSparseSolver(ex, fv).From(src, dsts)
			bound := trueDistances(fv, src)
			gotDecs, gotOks := bounded.FromBounded(src, dsts, bound, spath.Unreachable)
			for i := range dsts {
				if gotOks[i] != wantOks[i] {
					t.Fatalf("trial %d s=%d d=%d: reachable %v (bounded) vs %v (plain)",
						trial, s, dsts[i], gotOks[i], wantOks[i])
				}
				if !sameDecomposition(gotDecs[i], wantDecs[i]) {
					t.Fatalf("trial %d s=%d d=%d: decomposition diverged:\n bounded: %v\n plain:   %v",
						trial, s, dsts[i], gotDecs[i], wantDecs[i])
				}
			}
		}
	}
}

// TestRebindMatchesFreshSolver: one solver rebound across a churn of
// failure views must agree with a fresh solver per view.
func TestRebindMatchesFreshSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 16, 18, 3)
	var sources []graph.NodeID
	for i := 0; i < g.Order(); i++ {
		sources = append(sources, graph.NodeID(i))
	}
	ex := paths.FromSources(paths.NewAllShortest(g), sources)
	ci := paths.NewCostIndex(ex)

	pooled := NewSparseSolver(ex, graph.FailEdges(g))
	pooled.SetCostIndex(ci)
	var dsts []graph.NodeID
	for d := 0; d < g.Order(); d++ {
		dsts = append(dsts, graph.NodeID(d))
	}
	for step := 0; step < 20; step++ {
		var failed []graph.EdgeID
		for len(failed) < 1+rng.Intn(4) {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		pooled.Rebind(fv)
		src := graph.NodeID(rng.Intn(g.Order()))
		bound := trueDistances(fv, src)
		gotDecs, gotOks := pooled.FromBounded(src, dsts, bound, spath.Unreachable)
		wantDecs, wantOks := NewSparseSolver(ex, fv).From(src, dsts)
		for i := range dsts {
			if gotOks[i] != wantOks[i] || !sameDecomposition(gotDecs[i], wantDecs[i]) {
				t.Fatalf("step %d s=%d d=%d: rebind diverged from fresh solver", step, src, dsts[i])
			}
		}
	}
}

// TestFromBoundedSkipsUnreachable: destinations the bound proves
// unreachable come back not-ok without being searched for.
func TestFromBoundedSkipsUnreachable(t *testing.T) {
	// Path 0-1-2: failing edge (1,2) strands node 2.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	cut := g.AddEdge(1, 2, 1)
	ex := paths.FromSources(paths.NewAllShortest(g), []graph.NodeID{0, 1, 2})
	fv := graph.FailEdges(g, cut)
	ss := NewSparseSolver(ex, fv)
	bound := trueDistances(fv, 0)
	decs, oks := ss.FromBounded(0, []graph.NodeID{0, 1, 2}, bound, spath.Unreachable)
	if !oks[0] || !oks[1] || oks[2] {
		t.Fatalf("oks = %v, want [true true false]", oks)
	}
	if decs[1].Len() != 1 {
		t.Fatalf("0->1 decomposition has %d components, want 1", decs[1].Len())
	}
}
