package core

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// TestSparseFromMatchesSingle drives the batched decomposer against the
// single-destination one on random graphs under random multi-failures:
// same reachability, same cost, same component count, and every returned
// decomposition validates against the base set.
func TestSparseFromMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(rng, 16, 12, 4)
		base := paths.NewAllShortest(g)
		nfail := 1 + rng.Intn(3)
		var failed []graph.EdgeID
		for len(failed) < nfail {
			failed = append(failed, graph.EdgeID(rng.Intn(g.Size())))
		}
		fv := graph.FailEdges(g, failed...)
		s := graph.NodeID(rng.Intn(g.Order()))

		dsts := make([]graph.NodeID, 0, g.Order())
		for d := 0; d < g.Order(); d++ {
			dsts = append(dsts, graph.NodeID(d)) // includes d == s on purpose
		}
		decs, oks := DecomposeSparseFrom(base, fv, s, dsts)
		if len(decs) != len(dsts) || len(oks) != len(dsts) {
			t.Fatalf("trial %d: result length %d/%d, want %d", trial, len(decs), len(oks), len(dsts))
		}
		for i, d := range dsts {
			one, ok1 := DecomposeSparse(base, fv, s, d)
			if oks[i] != ok1 {
				t.Fatalf("trial %d s=%d d=%d: reachable %v (batched) vs %v (single)",
					trial, s, d, oks[i], ok1)
			}
			if !oks[i] || d == s {
				continue
			}
			if got, want := decs[i].Cost(g), one.Cost(g); got != want {
				t.Fatalf("trial %d s=%d d=%d: cost %v (batched) vs %v (single)", trial, s, d, got, want)
			}
			if got, want := decs[i].Len(), one.Len(); got != want {
				t.Fatalf("trial %d s=%d d=%d: %d components (batched) vs %d (single)", trial, s, d, got, want)
			}
			restored := decs[i].Concat()
			if err := ValidateDecomposition(base, restored, decs[i]); err != nil {
				t.Fatalf("trial %d s=%d d=%d: invalid decomposition: %v", trial, s, d, err)
			}
		}
	}
}

func TestSparseFromEmptyAndUnusable(t *testing.T) {
	g := square()
	base := paths.NewAllShortest(g)
	fv := graph.FailEdges(g)

	decs, oks := DecomposeSparseFrom(base, fv, 0, nil)
	if len(decs) != 0 || len(oks) != 0 {
		t.Fatalf("empty dsts: got %d/%d results", len(decs), len(oks))
	}

	// A failed source makes everything unreachable.
	down := graph.Fail(g, nil, []graph.NodeID{0})
	_, oks = DecomposeSparseFrom(base, down, 0, []graph.NodeID{1, 2})
	for i, ok := range oks {
		if ok {
			t.Fatalf("dst %d reported reachable from failed source", i)
		}
	}

	// A failed destination is unreachable; others are unaffected.
	down = graph.Fail(g, nil, []graph.NodeID{2})
	_, oks = DecomposeSparseFrom(base, down, 0, []graph.NodeID{1, 2, 3})
	if !oks[0] || oks[1] || !oks[2] {
		t.Fatalf("oks = %v, want [true false true]", oks)
	}
}

// BenchmarkSparseFanout compares n independent single-destination runs
// against one batched run over the same destination set.
func BenchmarkSparseFanout(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(rng, 64, 64, 4)
	base := paths.NewAllShortest(g)
	fv := graph.FailEdges(g, 0, 1, 2)
	var dsts []graph.NodeID
	for d := 1; d < g.Order(); d++ {
		dsts = append(dsts, graph.NodeID(d))
	}
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range dsts {
				DecomposeSparse(base, fv, 0, d)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DecomposeSparseFrom(base, fv, 0, dsts)
		}
	})
}
