package core

// Table-driven tightness suite: every lower-bound construction from the
// paper's figures, checked against the exact decomposition DP
// (MinPathComponents). Each row pins the minimum number of base-path
// components to the figure's exact value — not just "within bound" — so a
// regression in either direction (a too-loose decomposer or a too-strong
// base set) fails the table.
//
// internal/topology owns the constructions and their structural tests;
// this file owns the core-side bound arithmetic.

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// tightnessRow is one figure instance: a base set, the post-failure
// restoration path, the edge-component allowance, and the exact minimum
// component count the figure proves.
type tightnessRow struct {
	name string
	// setup returns the base set, the restoration path to decompose, and
	// the number of bare-edge components the theorem allows.
	setup func(t *testing.T) (base paths.Base, backup graph.Path, maxEdges int)
	// wantComps is the exact DP minimum (-1 = no decomposition exists).
	wantComps int
}

// combRow builds the Figure-2 comb for k failures: Theorem 1 tight at
// exactly k+1 shortest-path components, zero bare edges.
func combRow(k int) tightnessRow {
	return tightnessRow{
		name: "comb-fig2-k" + string(rune('0'+k)),
		setup: func(t *testing.T) (paths.Base, graph.Path, int) {
			gd := topology.Comb(k)
			fv := graph.Fail(gd.G, gd.FailedEdges, nil)
			backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
			if !ok {
				t.Fatal("comb disconnected")
			}
			return paths.NewAllShortest(gd.G), backup, 0
		},
		wantComps: k + 1,
	}
}

// weightedRow builds the Figure-3 weighted construction: Theorem 2 tight
// at exactly k+1 shortest paths when k bare edges are allowed. With
// allowance e < k the decomposition must not exist at all (wantComps -1),
// which is what makes the k of the bound necessary.
func weightedRow(k, allowance, want int) tightnessRow {
	suffix := ""
	if allowance < k {
		suffix = "-starved"
	}
	return tightnessRow{
		name: "weighted-fig3-k" + string(rune('0'+k)) + suffix,
		setup: func(t *testing.T) (paths.Base, graph.Path, int) {
			gd := topology.WeightedTight(k)
			fv := graph.Fail(gd.G, gd.FailedEdges, nil)
			backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
			if !ok {
				t.Fatal("weighted gadget disconnected")
			}
			return paths.NewAllShortest(gd.G), backup, allowance
		},
		wantComps: want,
	}
}

// starRow builds the Figure-4 star-of-pairs: one router failure forces
// exactly ceil(m/2) components — the Theta(n) node-failure pathology.
func starRow(m int) tightnessRow {
	return tightnessRow{
		name: "star-of-pairs-fig4",
		setup: func(t *testing.T) (paths.Base, graph.Path, int) {
			gd, hub := topology.StarOfPairs(m)
			fv := graph.FailNodes(gd.G, hub)
			backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
			if !ok {
				t.Fatal("line disconnected")
			}
			if backup.Hops() != m {
				t.Fatalf("backup = %d hops, want the full %d-hop line", backup.Hops(), m)
			}
			return paths.NewAllShortest(gd.G), backup, 0
		},
		wantComps: (m + 1) / 2,
	}
}

// directedRow builds the Figure-5 directed counterexample: one failure,
// exactly ceil(m/3) components — far beyond k+1 = 2, so Theorem 1 does
// not extend to directed graphs.
func directedRow(m int) tightnessRow {
	return tightnessRow{
		name: "directed-fig5",
		setup: func(t *testing.T) (paths.Base, graph.Path, int) {
			gd := topology.DirectedCounterexample(m)
			fv := graph.Fail(gd.G, gd.FailedEdges, nil)
			backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
			if !ok {
				t.Fatal("chain disconnected")
			}
			return paths.NewAllShortest(gd.G), backup, 0
		},
		wantComps: (m + 2) / 3,
	}
}

// fourCycleBadEdge finds the edge of C4 that lies on both padded-unique
// canonical paths between opposite corners. Whatever the tiebreak, the
// two chosen 2-hop paths share exactly one edge; failing it leaves a
// 3-hop restoration whose interior 2-hop subpaths are both non-canonical.
func fourCycleBadEdge(t *testing.T, g *graph.Graph, unique *paths.UniqueShortest) (graph.EdgeID, graph.Path) {
	t.Helper()
	for _, e := range g.Edges() {
		fv := graph.FailEdges(g, e.ID)
		pfv := spath.Padded(fv, spath.PaddingFor(g))
		backup, ok := spath.Compute(pfv, e.U).PathTo(e.V)
		if !ok || backup.Hops() != 3 {
			continue
		}
		if MinPathComponents(unique, backup, 0) == 3 {
			return e.ID, backup
		}
	}
	t.Fatal("no C4 edge forces a 3-component restoration — the unique base set is too strong")
	return 0, graph.Path{}
}

func TestTightnessTable(t *testing.T) {
	fourCycle := topology.FourCycle()
	unique := paths.NewUniqueShortest(fourCycle)

	rows := []tightnessRow{
		combRow(1), combRow(2), combRow(3),
		weightedRow(1, 1, 2), weightedRow(2, 2, 3), weightedRow(3, 3, 4),
		// With only k-1 bare edges the Figure-3 decomposition is impossible.
		weightedRow(2, 1, -1), weightedRow(3, 2, -1),
		starRow(10),
		directedRow(9),
		// The 4-cycle, the paper's minimal one-path-per-pair example: with
		// the unique base set some single failure needs 3 total components
		// (= 2k+1, Theorem 3 tight): 3 base paths with no bare edge, or 2
		// base paths once the one allowed bare edge is spent.
		{
			name: "four-cycle-no-bare-edges",
			setup: func(t *testing.T) (paths.Base, graph.Path, int) {
				_, backup := fourCycleBadEdge(t, fourCycle, unique)
				return unique, backup, 0
			},
			wantComps: 3,
		},
		{
			name: "four-cycle-one-bare-edge",
			setup: func(t *testing.T) (paths.Base, graph.Path, int) {
				_, backup := fourCycleBadEdge(t, fourCycle, unique)
				return unique, backup, 1
			},
			wantComps: 2,
		},
	}

	for _, row := range rows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			base, backup, maxEdges := row.setup(t)
			if got := MinPathComponents(base, backup, maxEdges); got != row.wantComps {
				t.Errorf("MinPathComponents = %d, want exactly %d (path %v, <= %d bare edges)",
					got, row.wantComps, backup, maxEdges)
			}
		})
	}
}

// TestTightnessTheoremReports cross-checks the same figures through the
// end-to-end theorem verifiers: the bounds hold, and the reported
// component counts equal the figures' exact values.
func TestTightnessTheoremReports(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		gd := topology.Comb(k)
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		rep, err := CheckTheorem1(gd.G, fv, gd.S, gd.T)
		if err != nil {
			t.Fatalf("comb k=%d: %v", k, err)
		}
		if !rep.Reachable || !rep.WithinBound || rep.PathComps != k+1 {
			t.Errorf("comb k=%d: %+v, want reachable within-bound with exactly %d components", k, rep, k+1)
		}

		wd := topology.WeightedTight(k)
		wfv := graph.Fail(wd.G, wd.FailedEdges, nil)
		wrep, err := CheckTheorem2(wd.G, wfv, wd.S, wd.T)
		if err != nil {
			t.Fatalf("weighted k=%d: %v", k, err)
		}
		if !wrep.Reachable || !wrep.WithinBound || wrep.PathComps != k+1 {
			t.Errorf("weighted k=%d: %+v, want reachable within-bound with exactly %d components", k, wrep, k+1)
		}
	}
}
