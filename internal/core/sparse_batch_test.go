package core

import (
	"math"
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// TestBatchedSolveBitIdenticalToPairSolves is the bit-identity property the
// source-batched recompute fan-out rests on: one bounded multi-target
// search per source — sharing a single frontier, arena, and visited
// generation across all of that source's targets — returns exactly what N
// independent single-target solves return, over random graphs and random
// fail/repair bursts applied through a persistent LiveIndex. Costs are
// compared via Float64bits (no epsilon) and restoration paths component by
// component, because the engine's delta assembly reuses cached rows only
// when recomputed rows are bit-for-bit reproducible.
func TestBatchedSolveBitIdenticalToPairSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		g := randomConnected(rng, 14, 14, 4)
		var sources []graph.NodeID
		for i := 0; i < g.Order(); i++ {
			sources = append(sources, graph.NodeID(i))
		}
		ex := paths.FromSources(paths.NewAllShortest(g), sources)
		// Mirror EdgeLSPs provisioning (a 1-hop path per link, both
		// orientations) so the live index attests edge-completeness and
		// the batched solver takes its raw-edge-scan-skipping fast path.
		for _, e := range g.Edges() {
			ex.Add(paths.EdgePath(g, e.ID, e.U))
			ex.Add(paths.EdgePath(g, e.ID, e.V))
		}
		ci := paths.NewCostIndex(ex)
		li := paths.NewLiveIndex(ex, ci)
		if !li.EdgeComplete() {
			t.Fatalf("trial %d: edge-LSP augmented base set not attested edge-complete", trial)
		}

		var dsts []graph.NodeID
		for d := 0; d < g.Order(); d++ {
			dsts = append(dsts, graph.NodeID(d))
		}

		down := make(map[graph.EdgeID]bool)
		for burst := 0; burst < 4; burst++ {
			// Random delta: fail up to two up edges, repair up to one down
			// edge, keeping the live index in lockstep with the view.
			var newlyDown, repaired []graph.EdgeID
			for n := 1 + rng.Intn(2); n > 0; n-- {
				e := graph.EdgeID(rng.Intn(g.Size()))
				if !down[e] {
					down[e] = true
					newlyDown = append(newlyDown, e)
				}
			}
			if burst > 0 && rng.Intn(2) == 0 {
				for e := range down {
					down[e] = false
					delete(down, e)
					repaired = append(repaired, e)
					break
				}
			}
			li.Update(newlyDown, repaired)

			var failed []graph.EdgeID
			for e := range down {
				failed = append(failed, e)
			}
			fv := graph.FailEdges(g, failed...)

			batched := NewSparseSolver(ex, fv)
			batched.SetCostIndex(ci)
			batched.SetLiveIndex(li)

			for s := 0; s < g.Order(); s++ {
				src := graph.NodeID(s)
				bound := trueDistances(fv, src)
				gotDecs, gotOks := batched.FromBounded(src, dsts, bound, spath.Unreachable)
				for i, d := range dsts {
					single := NewSparseSolver(ex, fv)
					single.SetCostIndex(ci)
					single.SetLiveIndex(li)
					wantDecs, wantOks := single.FromBounded(src, []graph.NodeID{d}, bound, spath.Unreachable)
					if gotOks[i] != wantOks[0] {
						t.Fatalf("trial %d burst %d s=%d d=%d: reachable %v (batched) vs %v (pair)",
							trial, burst, s, d, gotOks[i], wantOks[0])
					}
					if !gotOks[i] {
						continue
					}
					gc := math.Float64bits(gotDecs[i].Cost(g))
					wc := math.Float64bits(wantDecs[0].Cost(g))
					if gc != wc {
						t.Fatalf("trial %d burst %d s=%d d=%d: cost bits %x (batched) vs %x (pair)",
							trial, burst, s, d, gc, wc)
					}
					if !sameDecomposition(gotDecs[i], wantDecs[0]) {
						t.Fatalf("trial %d burst %d s=%d d=%d: decomposition %v (batched) vs %v (pair)",
							trial, burst, s, d, gotDecs[i], wantDecs[0])
					}
				}

				// Ellipse form: a small random target subset (so the
				// two-sided prune actually bites — against the full
				// destination set every node is its own nearest target and
				// nothing prunes), with the reverse row assembled the way
				// the engine does: min over the subset's reachable targets
				// of that target's own distance row (undirected view, so
				// dist(v,d) = dist(d,v)). Results must stay bit-identical
				// to the plain bounded batch.
				sub := make([]graph.NodeID, 0, 3)
				for n := 1 + rng.Intn(3); n > 0; n-- {
					sub = append(sub, dsts[rng.Intn(len(dsts))])
				}
				rev := make([]float64, g.Order())
				for v := range rev {
					rev[v] = spath.Unreachable
				}
				live := false
				for _, d := range sub {
					if d == src || bound[d] >= spath.Unreachable {
						continue
					}
					live = true
					for v, dv := range trueDistances(fv, d) {
						if dv < rev[v] {
							rev[v] = dv
						}
					}
				}
				if !live {
					continue
				}
				ell := NewSparseSolver(ex, fv)
				ell.SetCostIndex(ci)
				ell.SetLiveIndex(li)
				eDecs, eOks := ell.FromBoundedEllipse(src, sub, bound, rev, spath.Unreachable)
				for j, d := range sub {
					i := int(d) // dsts enumerates every node in ID order
					if eOks[j] != gotOks[i] {
						t.Fatalf("trial %d burst %d s=%d d=%d: reachable %v (ellipse) vs %v (batched)",
							trial, burst, s, d, eOks[j], gotOks[i])
					}
					if !eOks[j] {
						continue
					}
					ec := math.Float64bits(eDecs[j].Cost(g))
					gc := math.Float64bits(gotDecs[i].Cost(g))
					if ec != gc {
						t.Fatalf("trial %d burst %d s=%d d=%d: cost bits %x (ellipse) vs %x (batched)",
							trial, burst, s, d, ec, gc)
					}
					if !sameDecomposition(eDecs[j], gotDecs[i]) {
						t.Fatalf("trial %d burst %d s=%d d=%d: decomposition %v (ellipse) vs %v (batched)",
							trial, burst, s, d, eDecs[j], gotDecs[i])
					}
				}
			}
		}
	}
}
