package core

import (
	"math"
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// fuzzGraph builds a small connected unit-weight graph from the fuzz
// inputs: a random spanning tree plus extra random edges, all driven by
// one seeded rng so every byte pattern maps to a reproducible topology.
func fuzzGraph(seed int64, nRaw, extraRaw uint8) *graph.Graph {
	n := 4 + int(nRaw%8) // 4..11 nodes
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1)
	}
	for extra := int(extraRaw % 16); extra > 0; extra-- {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, 1)
		}
	}
	return g
}

// FuzzRestorePlanDecomposition fuzzes the full restoration pipeline on
// random small graphs and failure sets and asserts, for every
// still-connected pair:
//
//   - path validity: the plan's concatenation runs src -> dst entirely on
//     surviving links, with every multi-hop component a base-set member;
//   - optimality: the plan's cost equals the true post-failure shortest
//     distance (independent spath computation on the failure view);
//   - the interleaving bound: at most k+1 base-path components and at
//     most k bare-edge components (Theorem 2), hence at most 2k+1 total;
//   - the Theorem 1 bound on unweighted graphs via the exact DP.
func FuzzRestorePlanDecomposition(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint16(0x0b))
	f.Add(int64(7), uint8(0), uint8(0), uint16(0x01))
	f.Add(int64(42), uint8(7), uint8(15), uint16(0xffff))
	f.Add(int64(-3), uint8(2), uint8(9), uint16(0x1234))

	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw uint8, failRaw uint16) {
		g := fuzzGraph(seed, nRaw, extraRaw)

		// Up to 4 distinct failed edges chosen by failRaw.
		frng := rand.New(rand.NewSource(int64(failRaw)))
		k := 1 + int(failRaw%4)
		failedSet := make(map[graph.EdgeID]bool, k)
		for len(failedSet) < k && len(failedSet) < g.Size() {
			failedSet[graph.EdgeID(frng.Intn(g.Size()))] = true
		}
		failed := make([]graph.EdgeID, 0, len(failedSet))
		for e := range failedSet {
			failed = append(failed, e)
		}
		k = len(failed)
		fv := graph.Fail(g, failed, nil)

		base := paths.NewAllShortest(g)
		n := g.Order()
		for s := 0; s < n; s++ {
			sp := spath.Compute(fv, graph.NodeID(s))
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				want, connected := sp.PathTo(dst)

				dec, ok := DecomposeSparse(base, fv, src, dst)
				if ok != connected {
					t.Fatalf("%d->%d: restorable = %v, reference connectivity = %v (failed %v)", s, d, ok, connected, failed)
				}
				if !connected {
					continue
				}

				// Path validity.
				full := dec.Concat()
				if full.Src() != src || full.Dst() != dst {
					t.Fatalf("%d->%d: plan runs %d->%d", s, d, full.Src(), full.Dst())
				}
				if err := full.Validate(fv); err != nil {
					t.Fatalf("%d->%d: plan invalid on the failed graph: %v (plan %v)", s, d, err, dec)
				}
				if err := ValidateDecomposition(base, full, dec); err != nil {
					t.Fatalf("%d->%d: decomposition inconsistent: %v", s, d, err)
				}

				// Optimality against the independent shortest-path run.
				if got := dec.Cost(g); math.Abs(got-want.CostIn(fv)) > 1e-9 {
					t.Fatalf("%d->%d: plan cost %v, true post-failure distance %v (failed %v)", s, d, got, want.CostIn(fv), failed)
				}

				// Interleaving bound, served form: the solver guarantees at
				// most 2k+1 total components (k+1 base paths interleaved
				// with k bare edges) and never more than k bare edges. It
				// does not promise the component-minimal answer among
				// equal-cost routes, so k+1 is asserted via the DP below,
				// not on the served component count.
				if dec.Len() > 2*k+1 || dec.NumEdges() > k {
					t.Fatalf("%d->%d: decomposition has %d components (%d bare edges) for k=%d (bounds %d and %d): %v",
						s, d, dec.Len(), dec.NumEdges(), k, 2*k+1, k, dec)
				}

				// Theorem 1 on the unweighted graph, via the exact DP: the
				// served path itself must split into at most k+1 original
				// shortest paths with no bare edges.
				if min := MinPathComponents(base, full, 0); min < 0 || min > k+1 {
					t.Fatalf("%d->%d: Theorem 1 DP needs %d components, bound %d (path %v)", s, d, min, k+1, full)
				}
			}
		}
	})
}
