package core

import (
	"container/heap"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// AllBetween is an optional interface a base set may implement to expose
// every stored path per ordered pair (not just the canonical one). The
// sparse decomposer uses it to consider all alternatives — important for
// Corollary-4 extended sets where several base paths share endpoints.
type AllBetween interface {
	AllBetween(s, d graph.NodeID) []graph.Path
}

// DecomposeSparse finds a minimum-cost restoration path from s to d in the
// failure view fv expressed directly as a concatenation of surviving base
// paths and surviving bare edges, by running Dijkstra on the "base-path
// graph" (the paper's fallback when the greedy does not apply: "Dijkstra's
// algorithm can be run on the graph in which the surviving base paths are
// edges").
//
// Among minimum-cost concatenations it returns one minimizing the number of
// components. The second result is false if d is unreachable from s in fv.
//
// Because every surviving raw edge is always a candidate component, the
// returned concatenation always achieves the true post-failure shortest
// distance, for any base set.
func DecomposeSparse(base paths.Base, fv *graph.FailureView, s, d graph.NodeID) (Decomposition, bool) {
	if !fv.NodeUsable(s) || !fv.NodeUsable(d) {
		return Decomposition{}, false
	}
	if s == d {
		return Decomposition{}, true
	}
	n := fv.Order()
	const unset = -1

	dist := make([]float64, n)
	comps := make([]int32, n)
	prev := make([]int32, n)         // predecessor node
	prevComp := make([]Component, n) // component used to reach the node
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = -1 // -1 == infinity marker
		prev[i] = unset
	}

	pq := &sparseHeap{}
	dist[s] = 0
	heap.Push(pq, sparseItem{node: s, cost: 0, comps: 0})

	relax := func(u, v graph.NodeID, cost float64, nc int32, comp Component) {
		total := dist[u] + cost
		tc := comps[u] + nc
		if dist[v] < 0 || total < dist[v] || (total == dist[v] && tc < comps[v]) {
			dist[v] = total
			comps[v] = tc
			prev[v] = int32(u)
			prevComp[v] = comp
			heap.Push(pq, sparseItem{node: v, cost: total, comps: tc})
		}
	}

	ab, hasAll := base.(AllBetween)
	orig := base.View()

	for pq.Len() > 0 {
		it := heap.Pop(pq).(sparseItem)
		u := it.node
		if settled[u] || it.cost != dist[u] || it.comps != comps[u] {
			continue
		}
		settled[u] = true
		if u == d {
			break
		}
		// Candidate 1: surviving base paths out of u. Considered before
		// raw edges so that at equal (cost, components) a pre-provisioned
		// base path wins over a bare edge — a bare-edge component would
		// need a fresh 1-hop LSP.
		for v := 0; v < n; v++ {
			vv := graph.NodeID(v)
			if vv == u || !fv.NodeUsable(vv) {
				continue
			}
			if hasAll {
				for _, p := range ab.AllBetween(u, vv) {
					if paths.Survives(p, fv) {
						relax(u, vv, p.CostIn(orig), 1, Component{Kind: KindBasePath, Path: p})
					}
				}
			} else if p, ok := base.Between(u, vv); ok && paths.Survives(p, fv) {
				relax(u, vv, p.CostIn(orig), 1, Component{Kind: KindBasePath, Path: p})
			}
		}
		// Candidate 2: surviving raw edges out of u.
		fv.VisitArcs(u, func(a graph.Arc) bool {
			e := fv.Edge(a.Edge)
			comp := Component{Kind: KindEdge, Path: graph.Path{
				Nodes: []graph.NodeID{u, a.To},
				Edges: []graph.EdgeID{a.Edge},
			}}
			relax(u, a.To, e.W, 1, comp)
			return true
		})
	}

	if dist[d] < 0 {
		return Decomposition{}, false
	}
	// Reconstruct components back from d.
	var rev []Component
	for at := d; at != s; at = graph.NodeID(prev[at]) {
		rev = append(rev, prevComp[at])
	}
	dec := Decomposition{Components: make([]Component, len(rev))}
	for i := range rev {
		dec.Components[i] = rev[len(rev)-1-i]
	}
	return dec, true
}

// sparseItem orders Dijkstra's frontier by (cost, component count, node ID).
type sparseItem struct {
	node  graph.NodeID
	cost  float64
	comps int32
}

type sparseHeap []sparseItem

func (h sparseHeap) Len() int { return len(h) }
func (h sparseHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].comps != h[j].comps {
		return h[i].comps < h[j].comps
	}
	return h[i].node < h[j].node
}
func (h sparseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sparseHeap) Push(x interface{}) { *h = append(*h, x.(sparseItem)) }
func (h *sparseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
