package core

import (
	"math"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// boundSlack is the comparison slack FromBounded allows when testing an
// offer against a distance bound: the bound comes from a CSR SSSP whose
// additions may associate differently than the base-path-graph sums, so a
// strict comparison could misjudge an exact tie by a few ulps. The slack is
// relative (≈1e-9·bound) — far above accumulated rounding, far below any
// genuine cost difference on the weight scales in use — and only ever
// retains extra transient offers, never changing final labels.
func boundSlack(b float64) float64 { return 1e-9 * (b + 1) }

// AllBetween is an optional interface a base set may implement to expose
// every stored path per ordered pair (not just the canonical one). The
// sparse decomposer uses it to consider all alternatives — important for
// Corollary-4 extended sets where several base paths share endpoints.
type AllBetween interface {
	AllBetween(s, d graph.NodeID) []graph.Path
}

// BySource is an optional interface exposing every stored path out of a
// node along with its precomputed base-view cost. When available, the
// sparse decomposer iterates a node's outgoing paths directly instead of
// probing all n possible endpoints through per-pair lookups — the
// difference between an allocation-heavy O(n) map scan and a flat slice
// walk per settled node.
type BySource interface {
	FromSource(s graph.NodeID) []paths.SourcePath
}

// DeadIndexed extends BySource with a per-failure-view dead-path mask (see
// paths.Explicit.DeadUnder): survival of a candidate becomes one bit load
// instead of an edge scan.
type DeadIndexed interface {
	BySource
	DeadUnder(fv *graph.FailureView) []bool
}

// DeadIndexedInto extends DeadIndexed with the scratch-reusing mask builder
// (see paths.Explicit.DeadUnderInto), letting a pooled solver rebuild its
// dead mask on Rebind without a per-epoch allocation.
type DeadIndexedInto interface {
	DeadIndexed
	DeadUnderInto(fv *graph.FailureView, dead []bool) []bool
}

// ByCost is an optional candidate source ordered by ascending (cost,
// insertion index) — see paths.CostIndex. With a ByCost source installed
// (SetCostIndex), bounded searches scan each settled node's candidates
// cheapest-first and stop at the first candidate that cannot reach any
// pending destination within its distance bound.
type ByCost interface {
	FromSourceByCost(u graph.NodeID) []paths.SourcePath
}

// ByCostColumns is an optional extension of ByCost exposing the index's
// flat structure-of-arrays layout (see paths.CostIndex.Columns). When
// available, the solver's candidate scan reads only the three rejection
// columns — cost, destination, dead-mask index — and fetches the path
// value solely for candidates it actually relaxes.
type ByCostColumns interface {
	ByCost
	Columns() (off []int32, costs []float64, dsts []int32, idx []int32)
	PathAt(k int32) graph.Path
}

// SparseSolver runs minimum-cost restoration-path searches on the
// "base-path graph" (surviving base paths and surviving bare edges as
// arcs) for one failure view, amortizing across calls everything that
// depends only on (base, fv): the dead-path mask and the Dijkstra scratch
// arrays. The online engine keeps one solver per build worker per epoch.
//
// A SparseSolver is not safe for concurrent use.
type SparseSolver struct {
	base paths.Base
	fv   *graph.FailureView
	orig graph.View

	bs     BySource
	hasSrc bool
	ab     AllBetween
	hasAll bool
	ci     ByCost // nil unless installed with SetCostIndex
	cc     ByCostColumns
	ciOff  []int32 // SoA hot columns when ci implements ByCostColumns
	ciCost []float64
	ciDst  []int32
	ciIdx  []int32
	dead   []bool // nil unless base implements DeadIndexed

	dist     []float64
	comps    []int32
	prev     []int32
	prevComp []Component
	settled  []bool
	isTarget []bool
	boundAdj []float64 // bound[v]+boundSlack(bound[v]), filled per bounded search
	pq       sparseHeap
}

// NewSparseSolver builds a solver for repeated decompositions against fv.
func NewSparseSolver(base paths.Base, fv *graph.FailureView) *SparseSolver {
	n := fv.Order()
	ss := &SparseSolver{
		base:     base,
		fv:       fv,
		orig:     base.View(),
		dist:     make([]float64, n),
		comps:    make([]int32, n),
		prev:     make([]int32, n),
		prevComp: make([]Component, n),
		settled:  make([]bool, n),
		isTarget: make([]bool, n),
	}
	ss.bs, ss.hasSrc = base.(BySource)
	ss.ab, ss.hasAll = base.(AllBetween)
	if di, ok := base.(DeadIndexed); ok {
		ss.dead = di.DeadUnder(fv)
	}
	return ss
}

// Rebind points an existing solver at a new failure view over the same
// base set, reusing every scratch allocation (the Dijkstra arrays, the
// heap, and — when the base supports DeadUnderInto — the dead-path mask).
// The online engine's worker pool holds one solver per worker across
// epochs and rebinds instead of rebuilding.
func (ss *SparseSolver) Rebind(fv *graph.FailureView) {
	if n := fv.Order(); n != len(ss.dist) {
		ss.dist = make([]float64, n)
		ss.comps = make([]int32, n)
		ss.prev = make([]int32, n)
		ss.prevComp = make([]Component, n)
		ss.settled = make([]bool, n)
		ss.isTarget = make([]bool, n)
	}
	ss.fv = fv
	switch di := ss.base.(type) {
	case DeadIndexedInto:
		ss.dead = di.DeadUnderInto(fv, ss.dead)
	case DeadIndexed:
		ss.dead = di.DeadUnder(fv)
	}
}

// SetCostIndex installs a cost-sorted candidate source built over the same
// base set (paths.CostIndex). Searches then iterate each settled node's
// candidates cheapest-first — results are identical to insertion-order
// iteration (the Dijkstra labels are path properties and the (Cost, Index)
// sort preserves the first-best-offer tie-break) — and bounded searches
// additionally stop a node's scan at the first candidate whose cost already
// exceeds the remaining budget.
func (ss *SparseSolver) SetCostIndex(ci ByCost) {
	ss.ci = ci
	if cc, ok := ci.(ByCostColumns); ok {
		ss.cc = cc
		ss.ciOff, ss.ciCost, ss.ciDst, ss.ciIdx = cc.Columns()
	} else {
		ss.cc = nil
		ss.ciOff, ss.ciCost, ss.ciDst, ss.ciIdx = nil, nil, nil, nil
	}
}

// DecomposeSparse finds a minimum-cost restoration path from s to d in the
// failure view fv expressed directly as a concatenation of surviving base
// paths and surviving bare edges, by running Dijkstra on the "base-path
// graph" (the paper's fallback when the greedy does not apply: "Dijkstra's
// algorithm can be run on the graph in which the surviving base paths are
// edges").
//
// Among minimum-cost concatenations it returns one minimizing the number of
// components. The second result is false if d is unreachable from s in fv.
//
// Because every surviving raw edge is always a candidate component, the
// returned concatenation always achieves the true post-failure shortest
// distance, for any base set.
func DecomposeSparse(base paths.Base, fv *graph.FailureView, s, d graph.NodeID) (Decomposition, bool) {
	decs, oks := NewSparseSolver(base, fv).From(s, []graph.NodeID{d})
	return decs[0], oks[0]
}

// DecomposeSparseFrom solves the base-path shortest path problem for one
// source against many destinations with a single Dijkstra run, stopping as
// soon as every requested destination is settled. It returns one
// decomposition per entry of dsts (aligned), with oks[i] false when
// dsts[i] is unreachable from s in fv.
//
// This is the batched form the online engine uses: after a failure burst,
// all affected pairs sharing a source are decomposed in one search instead
// of |dsts| independent ones. Callers making repeated calls against the
// same view should hold a SparseSolver and call From directly.
func DecomposeSparseFrom(base paths.Base, fv *graph.FailureView, s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	return NewSparseSolver(base, fv).From(s, dsts)
}

// From runs one multi-destination search. See DecomposeSparseFrom.
func (ss *SparseSolver) From(s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	return ss.search(s, dsts, nil, 0)
}

// FromBounded is From pruned by known true distances: bound[v] must be the
// post-failure shortest distance from s to v in the solver's failure view
// (values ≥ inf meaning unreachable), as produced by a CSR SSSP over the
// same view. Because the base-path graph always contains every surviving
// bare edge, its shortest distances coincide with the view's, so offers
// that exceed a node's bound are transient labels Dijkstra would overwrite
// anyway — pruning them (plus skipping provably-unreachable destinations
// and, with a cost index installed, cutting each candidate scan at the
// remaining budget) changes nothing in the returned decompositions, which
// stay bit-identical to From. A small relative slack absorbs float
// association noise between the two cost sums.
//
// This is the online engine's incremental-rebuild kernel: the true
// distances come nearly free from the epoch's oracle trees, and turn the
// dominant per-source scan from O(all candidates) into O(candidates within
// the affected radius).
func (ss *SparseSolver) FromBounded(s graph.NodeID, dsts []graph.NodeID, bound []float64, inf float64) ([]Decomposition, []bool) {
	if len(bound) < ss.fv.Order() {
		return ss.search(s, dsts, nil, 0) // malformed bound: fall back to exact unbounded search
	}
	return ss.search(s, dsts, bound, inf)
}

// search is the shared multi-destination Dijkstra over the base-path
// graph. bound == nil runs it unbounded (From); otherwise offers beyond
// bound[v] are pruned (FromBounded).
func (ss *SparseSolver) search(s graph.NodeID, dsts []graph.NodeID, bound []float64, inf float64) ([]Decomposition, []bool) {
	decs := make([]Decomposition, len(dsts))
	oks := make([]bool, len(dsts))
	if len(dsts) == 0 {
		return decs, oks
	}
	fv := ss.fv
	n := fv.Order()
	if !fv.NodeUsable(s) {
		return decs, oks
	}

	// Reset scratch.
	const unset = -1
	for i := 0; i < n; i++ {
		ss.dist[i] = -1 // -1 == infinity marker
		ss.prev[i] = unset
		ss.settled[i] = false
		ss.isTarget[i] = false
	}
	ss.pq = ss.pq[:0]
	if bound != nil {
		// Hoist the slack adjustment out of the candidate scan: the inner
		// loops compare against bound[v]+boundSlack(bound[v]) once per
		// candidate, and the scan visits each node many times.
		if len(ss.boundAdj) < n {
			ss.boundAdj = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			b := bound[i]
			ss.boundAdj[i] = b + boundSlack(b)
		}
	}

	// Pending destinations still to settle; s==d pairs are trivially done,
	// and destinations the bound proves unreachable need no settling.
	pending := 0
	maxBound := 0.0
	for i, d := range dsts {
		if d == s {
			oks[i] = true
			continue
		}
		if !fv.NodeUsable(d) {
			continue
		}
		if bound != nil && bound[d] >= inf {
			continue
		}
		if !ss.isTarget[d] {
			ss.isTarget[d] = true
			pending++
		}
		if bound != nil && bound[d] > maxBound {
			maxBound = bound[d]
		}
	}
	if pending == 0 {
		return decs, oks
	}
	// Every node on an optimal concatenation to a pending destination sits
	// within maxTotal of s; offers beyond it cannot influence any result.
	maxTotal := math.Inf(1)
	if bound != nil {
		maxTotal = maxBound + boundSlack(maxBound)
	}

	pq := &ss.pq
	ss.dist[s] = 0
	ss.comps[s] = 0
	pq.push(sparseItem{node: s, cost: 0, comps: 0})

	for len(*pq) > 0 {
		it := pq.pop()
		u := it.node
		if ss.settled[u] || it.cost != ss.dist[u] || it.comps != ss.comps[u] {
			continue
		}
		ss.settled[u] = true
		if ss.isTarget[u] {
			pending--
			if pending == 0 {
				break
			}
		}
		du := ss.dist[u]
		// Candidate 1: surviving base paths out of u. Considered before
		// raw edges so that at equal (cost, components) a pre-provisioned
		// base path wins over a bare edge — a bare-edge component would
		// need a fresh 1-hop LSP.
		switch {
		case ss.ciOff != nil && ss.dead != nil:
			// Hottest path: structure-of-arrays scan over the cost index's
			// rejection columns. Identical candidate order and identical
			// accept/reject decisions as the SourcePath walk below — only
			// the memory traffic per rejected candidate changes.
			end := ss.ciOff[u+1]
			for k := ss.ciOff[u]; k < end; k++ {
				c := ss.ciCost[k]
				if du+c > maxTotal {
					break // cheapest-first: every later candidate is dearer
				}
				if ss.dead[ss.ciIdx[k]] {
					continue
				}
				v := graph.NodeID(ss.ciDst[k])
				if bound != nil && du+c > ss.boundAdj[v] {
					continue
				}
				ss.relax(u, v, c, 1, Component{Kind: KindBasePath, Path: ss.cc.PathAt(k)})
			}
		case ss.ci != nil && ss.dead != nil:
			for _, sp := range ss.ci.FromSourceByCost(u) {
				if du+sp.Cost > maxTotal {
					break // cheapest-first: every later candidate is dearer
				}
				if ss.dead[sp.Index] {
					continue
				}
				v := sp.Path.Dst()
				if bound != nil && du+sp.Cost > bound[v]+boundSlack(bound[v]) {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.ci != nil:
			for _, sp := range ss.ci.FromSourceByCost(u) {
				if du+sp.Cost > maxTotal {
					break
				}
				v := sp.Path.Dst()
				if !fv.NodeUsable(v) || !paths.Survives(sp.Path, fv) {
					continue
				}
				if bound != nil && du+sp.Cost > bound[v]+boundSlack(bound[v]) {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.hasSrc && ss.dead != nil:
			for _, sp := range ss.bs.FromSource(u) {
				if ss.dead[sp.Index] {
					continue
				}
				v := sp.Path.Dst()
				if bound != nil && (du+sp.Cost > maxTotal || du+sp.Cost > bound[v]+boundSlack(bound[v])) {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.hasSrc:
			for _, sp := range ss.bs.FromSource(u) {
				vv := sp.Path.Dst()
				if !fv.NodeUsable(vv) {
					continue
				}
				if bound != nil && (du+sp.Cost > maxTotal || du+sp.Cost > bound[vv]+boundSlack(bound[vv])) {
					continue
				}
				if paths.Survives(sp.Path, fv) {
					ss.relax(u, vv, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
				}
			}
		case ss.hasAll:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				for _, p := range ss.ab.AllBetween(u, vv) {
					if paths.Survives(p, fv) {
						ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
					}
				}
			}
		default:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				if p, ok := ss.base.Between(u, vv); ok && paths.Survives(p, fv) {
					ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
				}
			}
		}
		// Candidate 2: surviving raw edges out of u.
		fv.VisitArcs(u, func(a graph.Arc) bool {
			e := fv.Edge(a.Edge)
			if bound != nil && (du+e.W > maxTotal || du+e.W > ss.boundAdj[a.To]) {
				return true
			}
			comp := Component{Kind: KindEdge, Path: graph.Path{
				Nodes: []graph.NodeID{u, a.To},
				Edges: []graph.EdgeID{a.Edge},
			}}
			ss.relax(u, a.To, e.W, 1, comp)
			return true
		})
	}

	for i, d := range dsts {
		if d == s || !fv.NodeUsable(d) || ss.dist[d] < 0 || !ss.settled[d] {
			continue
		}
		// Reconstruct components back from d.
		var rev []Component
		for at := d; at != s; at = graph.NodeID(ss.prev[at]) {
			rev = append(rev, ss.prevComp[at])
		}
		dec := Decomposition{Components: make([]Component, len(rev))}
		for j := range rev {
			dec.Components[j] = rev[len(rev)-1-j]
		}
		decs[i], oks[i] = dec, true
	}
	return decs, oks
}

func (ss *SparseSolver) relax(u, v graph.NodeID, cost float64, nc int32, comp Component) {
	total := ss.dist[u] + cost
	tc := ss.comps[u] + nc
	if ss.dist[v] < 0 || total < ss.dist[v] || (total == ss.dist[v] && tc < ss.comps[v]) {
		ss.dist[v] = total
		ss.comps[v] = tc
		ss.prev[v] = int32(u)
		ss.prevComp[v] = comp
		ss.pq.push(sparseItem{node: v, cost: total, comps: tc})
	}
}

// sparseItem orders Dijkstra's frontier by (cost, component count, node ID).
type sparseItem struct {
	node  graph.NodeID
	cost  float64
	comps int32
}

// sparseHeap is a concrete binary min-heap over sparseItem. It replaces
// container/heap on the solver's hottest loop: the interface-based API
// boxes every pushed item onto the heap (one allocation per relaxation).
// The (cost, comps, node) key is a total order and relax never pushes the
// same triple twice, so the pop sequence is uniquely determined by the
// item set — any conforming heap, this one included, is observationally
// identical to the previous implementation.
type sparseHeap []sparseItem

func sparseLess(a, b sparseItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.comps != b.comps {
		return a.comps < b.comps
	}
	return a.node < b.node
}

func (h *sparseHeap) push(it sparseItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !sparseLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *sparseHeap) pop() sparseItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		m := i
		if l := 2*i + 1; l < len(s) && sparseLess(s[l], s[m]) {
			m = l
		}
		if r := 2*i + 2; r < len(s) && sparseLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
