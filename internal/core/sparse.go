package core

import (
	"math"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// boundSlack is the comparison slack FromBounded allows when testing an
// offer against a distance bound: the bound comes from a CSR SSSP whose
// additions may associate differently than the base-path-graph sums, so a
// strict comparison could misjudge an exact tie by a few ulps. The slack is
// relative (≈1e-9·bound) — far above accumulated rounding, far below any
// genuine cost difference on the weight scales in use — and only ever
// retains extra transient offers, never changing final labels.
func boundSlack(b float64) float64 { return 1e-9 * (b + 1) }

// AllBetween is an optional interface a base set may implement to expose
// every stored path per ordered pair (not just the canonical one). The
// sparse decomposer uses it to consider all alternatives — important for
// Corollary-4 extended sets where several base paths share endpoints.
type AllBetween interface {
	AllBetween(s, d graph.NodeID) []graph.Path
}

// BySource is an optional interface exposing every stored path out of a
// node along with its precomputed base-view cost. When available, the
// sparse decomposer iterates a node's outgoing paths directly instead of
// probing all n possible endpoints through per-pair lookups — the
// difference between an allocation-heavy O(n) map scan and a flat slice
// walk per settled node.
type BySource interface {
	FromSource(s graph.NodeID) []paths.SourcePath
}

// DeadIndexed extends BySource with a per-failure-view dead-path mask (see
// paths.Explicit.DeadUnder): survival of a candidate becomes one bit load
// instead of an edge scan.
type DeadIndexed interface {
	BySource
	DeadUnder(fv *graph.FailureView) []bool
}

// DeadIndexedInto extends DeadIndexed with the scratch-reusing mask builder
// (see paths.Explicit.DeadUnderInto), letting a pooled solver rebuild its
// dead mask on Rebind without a per-epoch allocation.
type DeadIndexedInto interface {
	DeadIndexed
	DeadUnderInto(fv *graph.FailureView, dead []bool) []bool
}

// ByCost is an optional candidate source ordered by ascending (cost,
// insertion index) — see paths.CostIndex. With a ByCost source installed
// (SetCostIndex), bounded searches scan each settled node's candidates
// cheapest-first and stop at the first candidate that cannot reach any
// pending destination within its distance bound.
type ByCost interface {
	FromSourceByCost(u graph.NodeID) []paths.SourcePath
}

// ByCostColumns is an optional extension of ByCost exposing the index's
// flat structure-of-arrays layout (see paths.CostIndex.Columns). When
// available, the solver's candidate scan reads only the three rejection
// columns — cost, destination, dead-mask index — and fetches the path
// value solely for candidates it actually relaxes.
type ByCostColumns interface {
	ByCost
	Columns() (off []int32, costs []float64, dsts []int32, idx []int32)
	PathAt(k int32) graph.Path
}

// LiveColumns is a pre-filtered candidate source (see paths.LiveIndex):
// per source, the cost-sorted columns already restricted to paths that
// survive the solver's failure view. With one installed (SetLiveIndex) the
// scan needs no per-candidate liveness test at all — the filtering was
// paid once per epoch, only for sources the failure delta touched. The
// caller owns the contract that the index's failure state matches the
// solver's view.
type LiveColumns interface {
	LiveFromSource(u graph.NodeID) (costs []float64, dsts []int32, keys []int32)
	PathAt(k int32) graph.Path
}

// SparseSolver runs minimum-cost restoration-path searches on the
// "base-path graph" (surviving base paths and surviving bare edges as
// arcs) for one failure view, amortizing across calls everything that
// depends only on (base, fv): the dead-path mask and the Dijkstra scratch
// arrays. The online engine keeps one solver per build worker per epoch.
//
// A SparseSolver is not safe for concurrent use.
type SparseSolver struct {
	base paths.Base
	fv   *graph.FailureView
	orig graph.View

	bs     BySource
	hasSrc bool
	ab     AllBetween
	hasAll bool
	ci     ByCost // nil unless installed with SetCostIndex
	cc     ByCostColumns
	ciOff  []int32 // SoA hot columns when ci implements ByCostColumns
	ciCost []float64
	ciDst  []int32
	ciIdx  []int32
	lc     LiveColumns // nil unless installed with SetLiveIndex
	// lcShadowsArcs records that the live index attests edge-completeness:
	// every usable arc is preceded in the candidate scan by a live 1-hop
	// base path of identical cost, so the raw-edge scan can only produce
	// offers that lose the first-offer-wins tie and is skipped wholesale.
	lcShadowsArcs bool
	dead          []bool // nil unless base implements DeadIndexed

	// kern is the compiled flat form of fv (CSR + removal bitsets); when
	// available the raw-edge scan iterates it directly instead of paying a
	// visitor closure call per arc.
	kern    graph.Kernel
	hasKern bool

	// Dijkstra scratch, validity-stamped by generation: a lab entry is
	// meaningful only where its gen matches curGen. Starting a search is
	// one counter increment instead of an O(n) clear — the per-source setup
	// cost of a batched multi-target solve is the nodes it actually visits.
	// prevComp lives apart from lab: a Component is several words and is
	// written once per committed offer, while lab is read on every scanned
	// candidate and wants the densest possible packing.
	lab      []sparseLabel
	curGen   uint32
	prevComp []Component
	pq       sparseHeap
}

// sparseLabel packs one node's Dijkstra scratch — distance label, component
// count, predecessor, generation stamp, flags, and the search's
// slack-adjusted bound for the node — into 32 bytes so the hot candidate
// test (bound rejection + offer) touches a single cache line where parallel
// arrays cost several misses per scanned candidate.
//
// bnd sits outside the generation-stamp contract: a bounded search fills it
// for every node up front (sequentially, before the frontier runs), and the
// stamp/offer resets preserve it.
type sparseLabel struct {
	dist     float64
	bnd      float64
	gen      uint32
	prev     int32
	comps    int32
	settled  bool
	isTarget bool
}

// NewSparseSolver builds a solver for repeated decompositions against fv.
func NewSparseSolver(base paths.Base, fv *graph.FailureView) *SparseSolver {
	n := fv.Order()
	ss := &SparseSolver{
		base:     base,
		fv:       fv,
		orig:     base.View(),
		lab:      make([]sparseLabel, n),
		prevComp: make([]Component, n),
	}
	ss.bs, ss.hasSrc = base.(BySource)
	ss.ab, ss.hasAll = base.(AllBetween)
	if di, ok := base.(DeadIndexed); ok {
		ss.dead = di.DeadUnder(fv)
	}
	ss.kern, ss.hasKern = graph.CompileView(fv)
	return ss
}

// Rebind points an existing solver at a new failure view over the same
// base set, reusing every scratch allocation (the Dijkstra arrays, the
// heap, and — when the base supports DeadUnderInto — the dead-path mask).
// The online engine's worker pool holds one solver per worker across
// epochs and rebinds instead of rebuilding.
func (ss *SparseSolver) Rebind(fv *graph.FailureView) {
	if n := fv.Order(); n != len(ss.lab) {
		ss.lab = make([]sparseLabel, n)
		ss.curGen = 0
		ss.prevComp = make([]Component, n)
	}
	ss.fv = fv
	// With a live index installed the dead mask is never consulted, and
	// rebuilding it would be the exact O(paths) per-epoch cost the live
	// index exists to avoid.
	if ss.lc == nil {
		switch di := ss.base.(type) {
		case DeadIndexedInto:
			ss.dead = di.DeadUnderInto(fv, ss.dead)
		case DeadIndexed:
			ss.dead = di.DeadUnder(fv)
		}
	}
	ss.kern, ss.hasKern = graph.CompileView(fv)
}

// SetCostIndex installs a cost-sorted candidate source built over the same
// base set (paths.CostIndex). Searches then iterate each settled node's
// candidates cheapest-first — results are identical to insertion-order
// iteration (the Dijkstra labels are path properties and the (Cost, Index)
// sort preserves the first-best-offer tie-break) — and bounded searches
// additionally stop a node's scan at the first candidate whose cost already
// exceeds the remaining budget.
func (ss *SparseSolver) SetCostIndex(ci ByCost) {
	ss.ci = ci
	if cc, ok := ci.(ByCostColumns); ok {
		ss.cc = cc
		ss.ciOff, ss.ciCost, ss.ciDst, ss.ciIdx = cc.Columns()
	} else {
		ss.cc = nil
		ss.ciOff, ss.ciCost, ss.ciDst, ss.ciIdx = nil, nil, nil, nil
	}
}

// SetLiveIndex installs a pre-filtered candidate source whose failure state
// the caller keeps in sync with the solver's view (see paths.LiveIndex).
// It takes precedence over a cost index: the candidate scan walks the live
// columns with no per-candidate dead test. Results are identical to the
// dead-mask scan — filtering removes exactly the candidates the mask would
// reject, preserving the (cost, insertion index) order of the rest.
// Passing nil uninstalls it and restores the dead mask from the current
// view.
func (ss *SparseSolver) SetLiveIndex(lc LiveColumns) {
	ss.lc = lc
	ss.lcShadowsArcs = false
	if ec, ok := lc.(interface{ EdgeComplete() bool }); ok {
		ss.lcShadowsArcs = ec.EdgeComplete()
	}
	if lc == nil {
		switch di := ss.base.(type) {
		case DeadIndexedInto:
			ss.dead = di.DeadUnderInto(ss.fv, ss.dead)
		case DeadIndexed:
			ss.dead = di.DeadUnder(ss.fv)
		}
	}
}

// DecomposeSparse finds a minimum-cost restoration path from s to d in the
// failure view fv expressed directly as a concatenation of surviving base
// paths and surviving bare edges, by running Dijkstra on the "base-path
// graph" (the paper's fallback when the greedy does not apply: "Dijkstra's
// algorithm can be run on the graph in which the surviving base paths are
// edges").
//
// Among minimum-cost concatenations it returns one minimizing the number of
// components. The second result is false if d is unreachable from s in fv.
//
// Because every surviving raw edge is always a candidate component, the
// returned concatenation always achieves the true post-failure shortest
// distance, for any base set.
func DecomposeSparse(base paths.Base, fv *graph.FailureView, s, d graph.NodeID) (Decomposition, bool) {
	decs, oks := NewSparseSolver(base, fv).From(s, []graph.NodeID{d})
	return decs[0], oks[0]
}

// DecomposeSparseFrom solves the base-path shortest path problem for one
// source against many destinations with a single Dijkstra run, stopping as
// soon as every requested destination is settled. It returns one
// decomposition per entry of dsts (aligned), with oks[i] false when
// dsts[i] is unreachable from s in fv.
//
// This is the batched form the online engine uses: after a failure burst,
// all affected pairs sharing a source are decomposed in one search instead
// of |dsts| independent ones. Callers making repeated calls against the
// same view should hold a SparseSolver and call From directly.
func DecomposeSparseFrom(base paths.Base, fv *graph.FailureView, s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	return NewSparseSolver(base, fv).From(s, dsts)
}

// From runs one multi-destination search. See DecomposeSparseFrom.
func (ss *SparseSolver) From(s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	return ss.search(s, dsts, nil, nil, 0)
}

// FromBounded is From pruned by known true distances: bound[v] must be the
// post-failure shortest distance from s to v in the solver's failure view
// (values ≥ inf meaning unreachable), as produced by a CSR SSSP over the
// same view. Because the base-path graph always contains every surviving
// bare edge, its shortest distances coincide with the view's, so offers
// that exceed a node's bound are transient labels Dijkstra would overwrite
// anyway — pruning them (plus skipping provably-unreachable destinations
// and, with a cost index installed, cutting each candidate scan at the
// remaining budget) changes nothing in the returned decompositions, which
// stay bit-identical to From. A small relative slack absorbs float
// association noise between the two cost sums.
//
// This is the online engine's incremental-rebuild kernel: the true
// distances come nearly free from the epoch's oracle trees, and turn the
// dominant per-source scan from O(all candidates) into O(candidates within
// the affected radius).
func (ss *SparseSolver) FromBounded(s graph.NodeID, dsts []graph.NodeID, bound []float64, inf float64) ([]Decomposition, []bool) {
	if len(bound) < ss.fv.Order() {
		return ss.search(s, dsts, nil, nil, 0) // malformed bound: fall back to exact unbounded search
	}
	return ss.search(s, dsts, bound, nil, inf)
}

// FromBoundedEllipse is FromBounded additionally armed with reverse
// distances toward the destination set: rev[v] must be a lower bound on
// (in practice, exactly) the post-failure shortest distance from v to the
// nearest requested destination that is reachable from s and distinct
// from it — for an undirected view, min over those d of Tree(d).Dist(v).
//
// Forward and reverse distances together confine the search to the
// "ellipse" of nodes that can lie on some optimal concatenation: any v
// with bound[v] + rev[v] beyond the farthest destination's bound is
// useless, and every offer into it is dropped by writing a -Inf bound
// into its label at fill time — zero extra work in the candidate scans.
// The prune is closed under optimal offers (a node able to make an
// optimal-cost or within-slack offer into a useful node is, by the
// triangle inequality, itself useful, with a 2x slack margin absorbing
// the float association noise between the two SSSP runs), so the label
// evolution on surviving nodes — values, tie-breaks, pop order — is
// identical to FromBounded and the returned decompositions stay
// bit-identical. Dijkstra stops settling the whole forward ball of the
// farthest destination and settles only the optimal-path band.
func (ss *SparseSolver) FromBoundedEllipse(s graph.NodeID, dsts []graph.NodeID, bound, rev []float64, inf float64) ([]Decomposition, []bool) {
	n := ss.fv.Order()
	if len(bound) < n {
		return ss.search(s, dsts, nil, nil, 0) // malformed bound: fall back to exact unbounded search
	}
	if len(rev) < n {
		return ss.search(s, dsts, bound, nil, inf) // malformed rev: plain bounded search
	}
	return ss.search(s, dsts, bound, rev, inf)
}

// search is the shared multi-destination Dijkstra over the base-path
// graph. bound == nil runs it unbounded (From); otherwise offers beyond
// bound[v] are pruned (FromBounded), and with rev also set, nodes off
// every optimal path are pruned entirely (FromBoundedEllipse).
func (ss *SparseSolver) search(s graph.NodeID, dsts []graph.NodeID, bound, rev []float64, inf float64) ([]Decomposition, []bool) {
	decs := make([]Decomposition, len(dsts))
	oks := make([]bool, len(dsts))
	if len(dsts) == 0 {
		return decs, oks
	}
	fv := ss.fv
	n := fv.Order()
	if !fv.NodeUsable(s) {
		return decs, oks
	}

	// Reset scratch by advancing the search generation: entries stamped
	// with an older generation are treated as untouched. On the rare
	// uint32 wrap, invalidate every stamp explicitly.
	ss.curGen++
	if ss.curGen == 0 {
		clear(ss.lab)
		ss.curGen = 1
	}
	ss.pq = ss.pq[:0]

	// Pending destinations still to settle; s==d pairs are trivially done,
	// and destinations the bound proves unreachable need no settling.
	pending := 0
	maxBound := 0.0
	for i, d := range dsts {
		if d == s {
			oks[i] = true
			continue
		}
		if !fv.NodeUsable(d) {
			continue
		}
		if bound != nil && bound[d] >= inf {
			continue
		}
		ss.stamp(d)
		if !ss.lab[d].isTarget {
			ss.lab[d].isTarget = true
			pending++
		}
		if bound != nil && bound[d] > maxBound {
			maxBound = bound[d]
		}
	}
	if pending == 0 {
		return decs, oks
	}
	// Every node on an optimal concatenation to a pending destination sits
	// within maxTotal of s; offers beyond it cannot influence any result.
	maxTotal := math.Inf(1)
	bounded := bound != nil
	if bounded {
		maxTotal = maxBound + boundSlack(maxBound)
		// Materialize each node's slack-adjusted bound once, into the label
		// itself: the candidate scans test it per candidate, the fill is one
		// FMA per node versus one per scanned candidate (the same float
		// expression, so every accept/reject decision is unchanged), and
		// co-locating it with the label halves the random loads per
		// surviving candidate.
		if rev != nil {
			// Ellipse prune (see FromBoundedEllipse): a node whose forward
			// plus reverse distance exceeds the farthest pending bound by
			// more than twice the slack cannot sit on any optimal
			// concatenation, nor feed one even a within-slack transient
			// offer; a -Inf bound makes every scan reject it for free.
			cut := maxTotal + boundSlack(maxBound)
			ninf := math.Inf(-1)
			for v, b := range bound[:n] {
				if b+rev[v] > cut {
					ss.lab[v].bnd = ninf
				} else {
					ss.lab[v].bnd = b + boundSlack(b)
				}
			}
		} else {
			for v, b := range bound[:n] {
				ss.lab[v].bnd = b + boundSlack(b)
			}
		}
	}

	pq := &ss.pq
	ss.stamp(s)
	ss.lab[s].dist = 0
	ss.lab[s].comps = 0
	pq.push(sparseItem{node: s, cost: 0, comps: 0})

	for len(*pq) > 0 {
		it := pq.pop()
		u := it.node
		lu := &ss.lab[u]
		if lu.settled || it.cost != lu.dist || it.comps != lu.comps {
			continue
		}
		lu.settled = true
		if lu.isTarget {
			pending--
			if pending == 0 {
				break
			}
		}
		du := lu.dist
		cu := lu.comps
		// Candidate 1: surviving base paths out of u. Considered before
		// raw edges so that at equal (cost, components) a pre-provisioned
		// base path wins over a bare edge — a bare-edge component would
		// need a fresh 1-hop LSP.
		switch {
		case ss.lc != nil:
			// Hottest path: the live index's columns hold only surviving
			// candidates, so the scan is pure cost/bound rejection — no
			// liveness test, and the path value is fetched only for offers
			// that actually improve a label.
			lcCosts, lcDsts, lcKeys := ss.lc.LiveFromSource(u)
			if bounded {
				for j, c := range lcCosts {
					total := du + c
					if total > maxTotal {
						break // cheapest-first: every later candidate is dearer
					}
					v := graph.NodeID(lcDsts[j])
					l := &ss.lab[v]
					if total > l.bnd {
						continue
					}
					if tc := cu + 1; offerLab(l, ss.curGen, total, tc) {
						l.dist = total
						l.comps = tc
						l.prev = int32(u)
						ss.prevComp[v] = Component{Kind: KindBasePath, Path: ss.lc.PathAt(lcKeys[j])}
						pq.push(sparseItem{node: v, cost: total, comps: tc})
					}
				}
				break
			}
			for j, c := range lcCosts {
				v := graph.NodeID(lcDsts[j])
				if total, tc := du+c, cu+1; ss.offer(v, total, tc) {
					ss.commit(u, v, total, tc, Component{Kind: KindBasePath, Path: ss.lc.PathAt(lcKeys[j])})
				}
			}
		case ss.ciOff != nil && ss.dead != nil:
			// Structure-of-arrays scan over the cost index's rejection
			// columns. Identical candidate order and identical
			// accept/reject decisions as the SourcePath walk below — only
			// the memory traffic per rejected candidate changes.
			end := ss.ciOff[u+1]
			for k := ss.ciOff[u]; k < end; k++ {
				c := ss.ciCost[k]
				if du+c > maxTotal {
					break // cheapest-first: every later candidate is dearer
				}
				if ss.dead[ss.ciIdx[k]] {
					continue
				}
				v := graph.NodeID(ss.ciDst[k])
				if bounded && du+c > ss.lab[v].bnd {
					continue
				}
				if total, tc := du+c, cu+1; ss.offer(v, total, tc) {
					ss.commit(u, v, total, tc, Component{Kind: KindBasePath, Path: ss.cc.PathAt(k)})
				}
			}
		case ss.ci != nil && ss.dead != nil:
			for _, sp := range ss.ci.FromSourceByCost(u) {
				if du+sp.Cost > maxTotal {
					break // cheapest-first: every later candidate is dearer
				}
				if ss.dead[sp.Index] {
					continue
				}
				v := sp.Path.Dst()
				if bounded && du+sp.Cost > ss.lab[v].bnd {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.ci != nil:
			for _, sp := range ss.ci.FromSourceByCost(u) {
				if du+sp.Cost > maxTotal {
					break
				}
				v := sp.Path.Dst()
				if !fv.NodeUsable(v) || !paths.Survives(sp.Path, fv) {
					continue
				}
				if bounded && du+sp.Cost > ss.lab[v].bnd {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.hasSrc && ss.dead != nil:
			for _, sp := range ss.bs.FromSource(u) {
				if ss.dead[sp.Index] {
					continue
				}
				v := sp.Path.Dst()
				if bounded && (du+sp.Cost > maxTotal || du+sp.Cost > ss.lab[v].bnd) {
					continue
				}
				ss.relax(u, v, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.hasSrc:
			for _, sp := range ss.bs.FromSource(u) {
				vv := sp.Path.Dst()
				if !fv.NodeUsable(vv) {
					continue
				}
				if bounded && (du+sp.Cost > maxTotal || du+sp.Cost > ss.lab[vv].bnd) {
					continue
				}
				if paths.Survives(sp.Path, fv) {
					ss.relax(u, vv, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
				}
			}
		case ss.hasAll:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				for _, p := range ss.ab.AllBetween(u, vv) {
					if paths.Survives(p, fv) {
						ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
					}
				}
			}
		default:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				if p, ok := ss.base.Between(u, vv); ok && paths.Survives(p, fv) {
					ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
				}
			}
		}
		// Candidate 2: surviving raw edges out of u. The compiled kernel
		// iterates the flat CSR adjacency with bitset removal tests — same
		// arcs in the same order as the visitor interface, minus a closure
		// call per arc; the 2-node component is built only for accepted
		// offers. With an edge-complete live index installed the whole scan
		// is skipped: every usable arc's offer was already made (and won or
		// lost) by its same-cost 1-hop base path in Candidate 1, so the arc
		// offer can only tie and lose first-offer-wins.
		if ss.lcShadowsArcs {
			continue
		}
		if ss.hasKern {
			for _, a := range ss.kern.CSR.Arcs(u) {
				if !ss.kern.ArcUsable(a) {
					continue
				}
				total := du + a.W
				if bounded && (total > maxTotal || total > ss.lab[a.To].bnd) {
					continue
				}
				if tc := cu + 1; ss.offer(a.To, total, tc) {
					ss.commit(u, a.To, total, tc, Component{Kind: KindEdge, Path: graph.Path{
						Nodes: []graph.NodeID{u, a.To},
						Edges: []graph.EdgeID{a.Edge},
					}})
				}
			}
		} else {
			fv.VisitArcs(u, func(a graph.Arc) bool {
				e := fv.Edge(a.Edge)
				if bounded && (du+e.W > maxTotal || du+e.W > ss.lab[a.To].bnd) {
					return true
				}
				comp := Component{Kind: KindEdge, Path: graph.Path{
					Nodes: []graph.NodeID{u, a.To},
					Edges: []graph.EdgeID{a.Edge},
				}}
				ss.relax(u, a.To, e.W, 1, comp)
				return true
			})
		}
	}

	for i, d := range dsts {
		if d == s || !fv.NodeUsable(d) {
			continue
		}
		if l := &ss.lab[d]; l.gen != ss.curGen || l.dist < 0 || !l.settled {
			continue
		}
		// Reconstruct components back from d.
		var rev []Component
		for at := d; at != s; at = graph.NodeID(ss.lab[at].prev) {
			rev = append(rev, ss.prevComp[at])
		}
		dec := Decomposition{Components: make([]Component, len(rev))}
		for j := range rev {
			dec.Components[j] = rev[len(rev)-1-j]
		}
		decs[i], oks[i] = dec, true
	}
	return decs, oks
}

// stamp brings v's scratch entries into the current search generation,
// resetting them to the untouched state if they carry an older stamp.
//
//rbpc:hotpath
func (ss *SparseSolver) stamp(v graph.NodeID) {
	l := &ss.lab[v]
	if l.gen != ss.curGen {
		l.gen = ss.curGen
		l.dist = -1 // -1 == infinity marker
		l.prev = -1
		l.settled = false
		l.isTarget = false
		// l.bnd is deliberately preserved: it is per-search fill state
		// outside the generation contract.
	}
}

// offerLab reports whether a label of (total, tc) improves l — the Dijkstra
// acceptance test, shared by every candidate scan so the tie-break stays
// identical across them. A node first touched this search always accepts
// (its label is infinity), without re-reading the marker it just wrote.
//
//rbpc:hotpath
func offerLab(l *sparseLabel, curGen uint32, total float64, tc int32) bool {
	if l.gen != curGen {
		l.gen = curGen
		l.dist = -1
		l.prev = -1
		l.settled = false
		l.isTarget = false
		return true
	}
	return l.dist < 0 || total < l.dist || (total == l.dist && tc < l.comps)
}

// offer is offerLab addressed by node ID, for the scans that have not
// already loaded the label.
//
//rbpc:hotpath
func (ss *SparseSolver) offer(v graph.NodeID, total float64, tc int32) bool {
	return offerLab(&ss.lab[v], ss.curGen, total, tc)
}

// commit installs an accepted offer on v and pushes it on the frontier.
func (ss *SparseSolver) commit(u, v graph.NodeID, total float64, tc int32, comp Component) {
	l := &ss.lab[v]
	l.dist = total
	l.comps = tc
	l.prev = int32(u)
	ss.prevComp[v] = comp
	ss.pq.push(sparseItem{node: v, cost: total, comps: tc})
}

func (ss *SparseSolver) relax(u, v graph.NodeID, cost float64, nc int32, comp Component) {
	total := ss.lab[u].dist + cost
	tc := ss.lab[u].comps + nc
	if ss.offer(v, total, tc) {
		ss.commit(u, v, total, tc, comp)
	}
}

// sparseItem orders Dijkstra's frontier by (cost, component count, node ID).
type sparseItem struct {
	node  graph.NodeID
	cost  float64
	comps int32
}

// sparseHeap is a concrete binary min-heap over sparseItem. It replaces
// container/heap on the solver's hottest loop: the interface-based API
// boxes every pushed item onto the heap (one allocation per relaxation).
// The (cost, comps, node) key is a total order and relax never pushes the
// same triple twice, so the pop sequence is uniquely determined by the
// item set — any conforming heap, this one included, is observationally
// identical to the previous implementation.
type sparseHeap []sparseItem

func sparseLess(a, b sparseItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.comps != b.comps {
		return a.comps < b.comps
	}
	return a.node < b.node
}

func (h *sparseHeap) push(it sparseItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !sparseLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *sparseHeap) pop() sparseItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		m := i
		if l := 2*i + 1; l < len(s) && sparseLess(s[l], s[m]) {
			m = l
		}
		if r := 2*i + 2; r < len(s) && sparseLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
