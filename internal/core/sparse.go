package core

import (
	"container/heap"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// AllBetween is an optional interface a base set may implement to expose
// every stored path per ordered pair (not just the canonical one). The
// sparse decomposer uses it to consider all alternatives — important for
// Corollary-4 extended sets where several base paths share endpoints.
type AllBetween interface {
	AllBetween(s, d graph.NodeID) []graph.Path
}

// BySource is an optional interface exposing every stored path out of a
// node along with its precomputed base-view cost. When available, the
// sparse decomposer iterates a node's outgoing paths directly instead of
// probing all n possible endpoints through per-pair lookups — the
// difference between an allocation-heavy O(n) map scan and a flat slice
// walk per settled node.
type BySource interface {
	FromSource(s graph.NodeID) []paths.SourcePath
}

// DeadIndexed extends BySource with a per-failure-view dead-path mask (see
// paths.Explicit.DeadUnder): survival of a candidate becomes one bit load
// instead of an edge scan.
type DeadIndexed interface {
	BySource
	DeadUnder(fv *graph.FailureView) []bool
}

// SparseSolver runs minimum-cost restoration-path searches on the
// "base-path graph" (surviving base paths and surviving bare edges as
// arcs) for one failure view, amortizing across calls everything that
// depends only on (base, fv): the dead-path mask and the Dijkstra scratch
// arrays. The online engine keeps one solver per build worker per epoch.
//
// A SparseSolver is not safe for concurrent use.
type SparseSolver struct {
	base paths.Base
	fv   *graph.FailureView
	orig graph.View

	bs     BySource
	hasSrc bool
	ab     AllBetween
	hasAll bool
	dead   []bool // nil unless base implements DeadIndexed

	dist     []float64
	comps    []int32
	prev     []int32
	prevComp []Component
	settled  []bool
	isTarget []bool
	pq       sparseHeap
}

// NewSparseSolver builds a solver for repeated decompositions against fv.
func NewSparseSolver(base paths.Base, fv *graph.FailureView) *SparseSolver {
	n := fv.Order()
	ss := &SparseSolver{
		base:     base,
		fv:       fv,
		orig:     base.View(),
		dist:     make([]float64, n),
		comps:    make([]int32, n),
		prev:     make([]int32, n),
		prevComp: make([]Component, n),
		settled:  make([]bool, n),
		isTarget: make([]bool, n),
	}
	ss.bs, ss.hasSrc = base.(BySource)
	ss.ab, ss.hasAll = base.(AllBetween)
	if di, ok := base.(DeadIndexed); ok {
		ss.dead = di.DeadUnder(fv)
	}
	return ss
}

// DecomposeSparse finds a minimum-cost restoration path from s to d in the
// failure view fv expressed directly as a concatenation of surviving base
// paths and surviving bare edges, by running Dijkstra on the "base-path
// graph" (the paper's fallback when the greedy does not apply: "Dijkstra's
// algorithm can be run on the graph in which the surviving base paths are
// edges").
//
// Among minimum-cost concatenations it returns one minimizing the number of
// components. The second result is false if d is unreachable from s in fv.
//
// Because every surviving raw edge is always a candidate component, the
// returned concatenation always achieves the true post-failure shortest
// distance, for any base set.
func DecomposeSparse(base paths.Base, fv *graph.FailureView, s, d graph.NodeID) (Decomposition, bool) {
	decs, oks := NewSparseSolver(base, fv).From(s, []graph.NodeID{d})
	return decs[0], oks[0]
}

// DecomposeSparseFrom solves the base-path shortest path problem for one
// source against many destinations with a single Dijkstra run, stopping as
// soon as every requested destination is settled. It returns one
// decomposition per entry of dsts (aligned), with oks[i] false when
// dsts[i] is unreachable from s in fv.
//
// This is the batched form the online engine uses: after a failure burst,
// all affected pairs sharing a source are decomposed in one search instead
// of |dsts| independent ones. Callers making repeated calls against the
// same view should hold a SparseSolver and call From directly.
func DecomposeSparseFrom(base paths.Base, fv *graph.FailureView, s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	return NewSparseSolver(base, fv).From(s, dsts)
}

// From runs one multi-destination search. See DecomposeSparseFrom.
func (ss *SparseSolver) From(s graph.NodeID, dsts []graph.NodeID) ([]Decomposition, []bool) {
	decs := make([]Decomposition, len(dsts))
	oks := make([]bool, len(dsts))
	if len(dsts) == 0 {
		return decs, oks
	}
	fv := ss.fv
	n := fv.Order()
	if !fv.NodeUsable(s) {
		return decs, oks
	}

	// Reset scratch.
	const unset = -1
	for i := 0; i < n; i++ {
		ss.dist[i] = -1 // -1 == infinity marker
		ss.prev[i] = unset
		ss.settled[i] = false
		ss.isTarget[i] = false
	}
	ss.pq = ss.pq[:0]

	// Pending destinations still to settle; s==d pairs are trivially done.
	pending := 0
	for i, d := range dsts {
		if d == s {
			oks[i] = true
			continue
		}
		if fv.NodeUsable(d) && !ss.isTarget[d] {
			ss.isTarget[d] = true
			pending++
		}
	}
	if pending == 0 {
		return decs, oks
	}

	pq := &ss.pq
	ss.dist[s] = 0
	ss.comps[s] = 0
	heap.Push(pq, sparseItem{node: s, cost: 0, comps: 0})

	for pq.Len() > 0 {
		it := heap.Pop(pq).(sparseItem)
		u := it.node
		if ss.settled[u] || it.cost != ss.dist[u] || it.comps != ss.comps[u] {
			continue
		}
		ss.settled[u] = true
		if ss.isTarget[u] {
			pending--
			if pending == 0 {
				break
			}
		}
		// Candidate 1: surviving base paths out of u. Considered before
		// raw edges so that at equal (cost, components) a pre-provisioned
		// base path wins over a bare edge — a bare-edge component would
		// need a fresh 1-hop LSP.
		switch {
		case ss.hasSrc && ss.dead != nil:
			for _, sp := range ss.bs.FromSource(u) {
				if ss.dead[sp.Index] {
					continue
				}
				ss.relax(u, sp.Path.Dst(), sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
			}
		case ss.hasSrc:
			for _, sp := range ss.bs.FromSource(u) {
				vv := sp.Path.Dst()
				if !fv.NodeUsable(vv) {
					continue
				}
				if paths.Survives(sp.Path, fv) {
					ss.relax(u, vv, sp.Cost, 1, Component{Kind: KindBasePath, Path: sp.Path})
				}
			}
		case ss.hasAll:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				for _, p := range ss.ab.AllBetween(u, vv) {
					if paths.Survives(p, fv) {
						ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
					}
				}
			}
		default:
			for v := 0; v < n; v++ {
				vv := graph.NodeID(v)
				if vv == u || !fv.NodeUsable(vv) {
					continue
				}
				if p, ok := ss.base.Between(u, vv); ok && paths.Survives(p, fv) {
					ss.relax(u, vv, p.CostIn(ss.orig), 1, Component{Kind: KindBasePath, Path: p})
				}
			}
		}
		// Candidate 2: surviving raw edges out of u.
		fv.VisitArcs(u, func(a graph.Arc) bool {
			e := fv.Edge(a.Edge)
			comp := Component{Kind: KindEdge, Path: graph.Path{
				Nodes: []graph.NodeID{u, a.To},
				Edges: []graph.EdgeID{a.Edge},
			}}
			ss.relax(u, a.To, e.W, 1, comp)
			return true
		})
	}

	for i, d := range dsts {
		if d == s || !fv.NodeUsable(d) || ss.dist[d] < 0 || !ss.settled[d] {
			continue
		}
		// Reconstruct components back from d.
		var rev []Component
		for at := d; at != s; at = graph.NodeID(ss.prev[at]) {
			rev = append(rev, ss.prevComp[at])
		}
		dec := Decomposition{Components: make([]Component, len(rev))}
		for j := range rev {
			dec.Components[j] = rev[len(rev)-1-j]
		}
		decs[i], oks[i] = dec, true
	}
	return decs, oks
}

func (ss *SparseSolver) relax(u, v graph.NodeID, cost float64, nc int32, comp Component) {
	total := ss.dist[u] + cost
	tc := ss.comps[u] + nc
	if ss.dist[v] < 0 || total < ss.dist[v] || (total == ss.dist[v] && tc < ss.comps[v]) {
		ss.dist[v] = total
		ss.comps[v] = tc
		ss.prev[v] = int32(u)
		ss.prevComp[v] = comp
		heap.Push(&ss.pq, sparseItem{node: v, cost: total, comps: tc})
	}
}

// sparseItem orders Dijkstra's frontier by (cost, component count, node ID).
type sparseItem struct {
	node  graph.NodeID
	cost  float64
	comps int32
}

type sparseHeap []sparseItem

func (h sparseHeap) Len() int { return len(h) }
func (h sparseHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].comps != h[j].comps {
		return h[i].comps < h[j].comps
	}
	return h[i].node < h[j].node
}
func (h sparseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sparseHeap) Push(x interface{}) { *h = append(*h, x.(sparseItem)) }
func (h *sparseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
