// Package core implements the paper's primary contribution: representing a
// post-failure shortest path as a concatenation of pre-provisioned base
// paths (plus, in the weighted case, at most k bare edges), and planning
// restorations that realize the concatenation.
//
// Two decomposition strategies are provided, matching Section 4.1 of the
// paper:
//
//   - Greedy largest-prefix decomposition (with binary search on prefix
//     length), valid whenever the base set is subpath-closed — in
//     particular for the all-shortest-paths set and the padded-unique set.
//     Greedy minimizes the total number of components.
//   - Sparse decomposition via Dijkstra over the "base-path graph" whose
//     edges are the surviving base paths plus the surviving raw edges,
//     valid for any base set (Theorems 2/3).
package core

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// Kind distinguishes the two component types of Theorem 2.
type Kind int

const (
	// KindBasePath is a component drawn from the base set.
	KindBasePath Kind = iota + 1
	// KindEdge is a bare-edge component (one of the "k edges" of the
	// weighted-case theorem); the edge is not a base path.
	KindEdge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBasePath:
		return "base-path"
	case KindEdge:
		return "edge"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Component is one piece of a concatenation.
type Component struct {
	Kind Kind
	Path graph.Path
}

// Decomposition is a restoration path expressed as a concatenation of
// components.
type Decomposition struct {
	Components []Component
}

// NumPaths returns the number of base-path components.
func (d Decomposition) NumPaths() int {
	n := 0
	for _, c := range d.Components {
		if c.Kind == KindBasePath {
			n++
		}
	}
	return n
}

// NumEdges returns the number of bare-edge components.
func (d Decomposition) NumEdges() int { return len(d.Components) - d.NumPaths() }

// Len returns the total number of components — the paper's "PC length".
func (d Decomposition) Len() int { return len(d.Components) }

// Concat reassembles the full path from the components. It panics on an
// empty decomposition.
func (d Decomposition) Concat() graph.Path {
	if len(d.Components) == 0 {
		panic("core: Concat of empty decomposition")
	}
	p := d.Components[0].Path
	for _, c := range d.Components[1:] {
		p = p.Concat(c.Path)
	}
	return p
}

// Cost returns the total cost of the decomposition under view v.
func (d Decomposition) Cost(v graph.View) float64 {
	var c float64
	for _, comp := range d.Components {
		c += comp.Path.CostIn(v)
	}
	return c
}

// String renders the decomposition compactly, e.g.
// "[base-path 0-(e1)-3 | edge 3-(e9)-4]".
func (d Decomposition) String() string {
	s := "["
	for i, c := range d.Components {
		if i > 0 {
			s += " | "
		}
		s += c.Kind.String() + " " + c.Path.String()
	}
	return s + "]"
}

// DecomposeGreedy splits target into the minimum number of components,
// each of which is either a base path or a bare edge, scanning left to
// right and always taking the longest base-path prefix (located by binary
// search, as suggested in the paper). If at some node not even the next
// single edge is a base path, that edge becomes a KindEdge component.
//
// Correctness requires the base set to be subpath-closed (true for
// paths.AllShortest and paths.UniqueShortest): then "prefix of length j is
// a base path" is monotone in j, the binary search is sound, and the
// classic exchange argument makes the greedy optimal in total component
// count.
//
// A trivial target decomposes into zero components.
func DecomposeGreedy(base paths.Base, target graph.Path) Decomposition {
	var d Decomposition
	h := target.Hops()
	at := 0
	for at < h {
		// Largest j in (at, h] such that target[at..j] is a base path.
		lo, hi := at+1, h // candidate range for j
		best := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if base.Contains(target.SubPath(at, mid)) {
				best = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if best == -1 {
			// Not even one edge: emit a bare-edge component.
			d.Components = append(d.Components, Component{
				Kind: KindEdge,
				Path: target.SubPath(at, at+1),
			})
			at++
			continue
		}
		d.Components = append(d.Components, Component{
			Kind: KindBasePath,
			Path: target.SubPath(at, best),
		})
		at = best
	}
	return d
}

// MinPathComponents computes, by dynamic programming over the target path,
// the minimum number of base-path components in any decomposition of
// target that uses at most maxEdgeComps bare-edge components. It returns
// (-1) if no such decomposition exists (possible only if some edge of the
// target is neither a base path nor allowed as an edge component).
//
// This is the exact existence check behind the theorem verifiers: Theorem 2
// asserts MinPathComponents(base, p, k) <= k+1 for every new shortest path
// p after k edge failures.
//
// Unlike DecomposeGreedy it does not require subpath closure.
func MinPathComponents(base paths.Base, target graph.Path, maxEdgeComps int) int {
	h := target.Hops()
	if h == 0 {
		return 0
	}
	const inf = int(^uint(0) >> 2)
	// dp[i][e] = min base-path components covering target[0..i] using
	// exactly <= e edge components.
	dp := make([][]int, h+1)
	for i := range dp {
		dp[i] = make([]int, maxEdgeComps+1)
		for e := range dp[i] {
			dp[i][e] = inf
		}
	}
	for e := 0; e <= maxEdgeComps; e++ {
		dp[0][e] = 0
	}
	for i := 0; i < h; i++ {
		for e := 0; e <= maxEdgeComps; e++ {
			if dp[i][e] == inf {
				continue
			}
			// Extend with an edge component.
			if e+1 <= maxEdgeComps && dp[i][e] < dp[i+1][e+1] {
				dp[i+1][e+1] = dp[i][e]
			}
			// Extend with a base-path component to any j > i.
			for j := i + 1; j <= h; j++ {
				if base.Contains(target.SubPath(i, j)) && dp[i][e]+1 < dp[j][e] {
					dp[j][e] = dp[i][e] + 1
				}
			}
		}
	}
	best := inf
	for e := 0; e <= maxEdgeComps; e++ {
		if dp[h][e] < best {
			best = dp[h][e]
		}
	}
	if best == inf {
		return -1
	}
	return best
}

// ValidateDecomposition checks that d reassembles exactly into target and
// that every component is of the declared kind: base-path components are in
// base; edge components are single hops.
func ValidateDecomposition(base paths.Base, target graph.Path, d Decomposition) error {
	if target.Hops() == 0 {
		if len(d.Components) != 0 {
			return fmt.Errorf("core: trivial target with %d components", len(d.Components))
		}
		return nil
	}
	if len(d.Components) == 0 {
		return fmt.Errorf("core: empty decomposition for %d-hop target", target.Hops())
	}
	for i, c := range d.Components {
		switch c.Kind {
		case KindBasePath:
			if !base.Contains(c.Path) {
				return fmt.Errorf("core: component %d (%v) not in base set", i, c.Path)
			}
		case KindEdge:
			if c.Path.Hops() != 1 {
				return fmt.Errorf("core: edge component %d has %d hops", i, c.Path.Hops())
			}
		default:
			return fmt.Errorf("core: component %d has invalid kind %v", i, c.Kind)
		}
	}
	if got := d.Concat(); !got.Equal(target) {
		return fmt.Errorf("core: concatenation %v != target %v", got, target)
	}
	return nil
}
