package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list text format, one record per line:
//
//	# comment
//	nodes <n>
//	directed            (optional; default undirected)
//	<u> <v> <weight>    one line per edge
//
// Node IDs must be in [0, n). The format round-trips through Write and Read.

// Write serializes g in edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.Order())
	if g.Directed() {
		fmt.Fprintln(bw, "directed")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// Read parses a graph in edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	directed := false
	lineNo := 0
	var pendingEdges [][3]string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "nodes":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: nodes header needs one count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
		case fields[0] == "directed":
			if len(pendingEdges) > 0 {
				return nil, fmt.Errorf("graph: line %d: directed must precede edges", lineNo)
			}
			directed = true
		default:
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs 'u v w', got %q", lineNo, line)
			}
			pendingEdges = append(pendingEdges, [3]string{fields[0], fields[1], fields[2]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing 'nodes <n>' header")
	}
	if directed {
		g.directed = true
	}
	for i, f := range pendingEdges {
		u, err1 := strconv.Atoi(f[0])
		v, err2 := strconv.Atoi(f[1])
		w, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: edge %d: parse %v", i, f)
		}
		if u < 0 || u >= g.Order() || v < 0 || v >= g.Order() {
			return nil, fmt.Errorf("graph: edge %d: endpoint out of range: %v", i, f)
		}
		if u == v {
			return nil, fmt.Errorf("graph: edge %d: self-loop at %d", i, u)
		}
		if w <= 0 {
			return nil, fmt.Errorf("graph: edge %d: non-positive weight %v", i, w)
		}
		g.AddEdge(NodeID(u), NodeID(v), w)
	}
	return g, nil
}
