package graph

import "sort"

// Connected reports whether every usable node of v is reachable from every
// other via usable arcs. For views with removed nodes, only the surviving
// nodes are required to be mutually reachable. A view with fewer than two
// usable nodes is connected. Directed views are checked for weak
// connectivity only if the view is undirected; directed views use plain
// reachability from the first usable node, which is what the repository's
// generators need.
func Connected(v View) bool {
	n := v.Order()
	start := NodeID(-1)
	usable := 0
	for u := 0; u < n; u++ {
		if nodeUsable(v, NodeID(u)) {
			usable++
			if start < 0 {
				start = NodeID(u)
			}
		}
	}
	if usable <= 1 {
		return true
	}
	return len(ReachableFrom(v, start)) == usable
}

// ReachableFrom returns the set of nodes reachable from src in v (including
// src), in BFS discovery order.
func ReachableFrom(v View, src NodeID) []NodeID {
	if !nodeUsable(v, src) {
		return nil
	}
	seen := newBitset(v.Order())
	seen.set(int(src))
	queue := []NodeID{src}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		v.VisitArcs(u, func(a Arc) bool {
			if !seen.get(int(a.To)) {
				seen.set(int(a.To))
				queue = append(queue, a.To)
			}
			return true
		})
	}
	return queue
}

// Components returns the connected components of v as slices of node IDs.
// Removed nodes appear in no component. Components are ordered by their
// smallest node ID, and nodes within a component are in BFS order.
func Components(v View) [][]NodeID {
	n := v.Order()
	assigned := newBitset(n)
	var comps [][]NodeID
	for u := 0; u < n; u++ {
		if assigned.get(u) || !nodeUsable(v, NodeID(u)) {
			continue
		}
		comp := ReachableFrom(v, NodeID(u))
		for _, w := range comp {
			assigned.set(int(w))
		}
		comps = append(comps, comp)
	}
	return comps
}

// nodeUsable reports whether u participates in view v. Whole graphs have no
// removed nodes; failure views expose NodeUsable.
func nodeUsable(v View, u NodeID) bool {
	if fv, ok := v.(*FailureView); ok {
		return fv.NodeUsable(u)
	}
	return true
}

// Stats summarizes a topology the way the paper's Table 1 does.
type Stats struct {
	Nodes     int
	Links     int
	AvgDegree float64
	MinDegree int
	MaxDegree int
	// DegreeP50 and DegreeP90 are degree percentiles, useful for checking
	// that generated topologies match the heavy-tailed shape of the
	// paper's measured graphs.
	DegreeP50 int
	DegreeP90 int
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	s := Stats{Nodes: g.Order(), Links: g.Size(), AvgDegree: g.AvgDegree()}
	if g.Order() == 0 {
		return s
	}
	degs := make([]int, g.Order())
	for u := range degs {
		degs[u] = g.Degree(NodeID(u))
	}
	sort.Ints(degs)
	s.MinDegree = degs[0]
	s.MaxDegree = degs[len(degs)-1]
	s.DegreeP50 = degs[len(degs)/2]
	s.DegreeP90 = degs[len(degs)*9/10]
	return s
}

// BridgeEdges returns the IDs of all bridges of g (edges whose removal
// disconnects their component), using an iterative Tarjan lowpoint scan.
// Parallel edges are never bridges. The result is sorted by edge ID.
//
// Bridges matter to RBPC: a base path crossing a bridge cannot be restored
// after that bridge fails, so evaluation harnesses skip those cases exactly
// as the paper's methodology does (it only reports cases where an alternate
// path exists).
func BridgeEdges(g *Graph) []EdgeID {
	n := g.Order()
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []EdgeID
	var timer int32

	type frame struct {
		node    NodeID
		parentE EdgeID // edge used to enter node, -1 at roots
		arcIdx  int
	}
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		stack := []frame{{node: NodeID(root), parentE: -1}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			arcs := g.Arcs(f.node)
			if f.arcIdx < len(arcs) {
				a := arcs[f.arcIdx]
				f.arcIdx++
				if a.Edge == f.parentE {
					continue
				}
				if disc[a.To] == -1 {
					disc[a.To] = timer
					low[a.To] = timer
					timer++
					stack = append(stack, frame{node: a.To, parentE: a.Edge})
				} else if disc[a.To] < low[f.node] {
					low[f.node] = disc[a.To]
				}
				continue
			}
			// Post-order: propagate lowpoint to parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.node] < low[p.node] {
				low[p.node] = low[f.node]
			}
			if low[f.node] > disc[p.node] {
				bridges = append(bridges, f.parentE)
			}
		}
	}
	sort.Slice(bridges, func(i, j int) bool { return bridges[i] < bridges[j] })
	return bridges
}
