package graph

// FailureView presents a graph with a set of edges and/or nodes removed,
// without copying the graph. It is the G' = (V, E - E_k) of the paper's
// theorems.
//
// A FailureView is immutable after construction and safe for concurrent use.
//
//rbpc:immutable
type FailureView struct {
	g            *Graph
	edgeRemoved  bitset
	nodeRemoved  bitset
	removedEdges []EdgeID
	removedNodes []NodeID
	unit         bool
}

// Fail returns a view of g with the given edges and nodes removed. Removing
// a node implicitly removes all of its incident edges from traversal (their
// IDs are not listed in RemovedEdges). Duplicate IDs are tolerated.
//
//rbpc:ctor
func Fail(g *Graph, edges []EdgeID, nodes []NodeID) *FailureView {
	v := &FailureView{
		g:           g,
		edgeRemoved: newBitset(g.Size()),
		nodeRemoved: newBitset(g.Order()),
		unit:        g.UnitWeights(),
	}
	for _, e := range edges {
		if !v.edgeRemoved.get(int(e)) {
			v.edgeRemoved.set(int(e))
			v.removedEdges = append(v.removedEdges, e)
		}
	}
	for _, n := range nodes {
		if !v.nodeRemoved.get(int(n)) {
			v.nodeRemoved.set(int(n))
			v.removedNodes = append(v.removedNodes, n)
		}
	}
	return v
}

// FailEdges returns a view of g with the given edges removed.
func FailEdges(g *Graph, edges ...EdgeID) *FailureView {
	return Fail(g, edges, nil)
}

// FailNodes returns a view of g with the given nodes removed.
func FailNodes(g *Graph, nodes ...NodeID) *FailureView {
	return Fail(g, nil, nodes)
}

// Base returns the underlying unfailed graph.
func (v *FailureView) Base() *Graph { return v.g }

// RemovedEdges returns the explicitly removed edge IDs (deduplicated, in
// first-seen order). Edges incident to removed nodes are not included.
func (v *FailureView) RemovedEdges() []EdgeID { return v.removedEdges }

// RemovedNodes returns the removed node IDs (deduplicated, first-seen order).
func (v *FailureView) RemovedNodes() []NodeID { return v.removedNodes }

// EdgeUsable reports whether edge id survives in this view: neither the edge
// nor either endpoint is removed.
func (v *FailureView) EdgeUsable(id EdgeID) bool {
	if v.edgeRemoved.get(int(id)) {
		return false
	}
	e := v.g.Edge(id)
	return !v.nodeRemoved.get(int(e.U)) && !v.nodeRemoved.get(int(e.V))
}

// NodeUsable reports whether node id survives in this view.
func (v *FailureView) NodeUsable(id NodeID) bool {
	return !v.nodeRemoved.get(int(id))
}

// Order implements View.
func (v *FailureView) Order() int { return v.g.Order() }

// Directed implements View.
func (v *FailureView) Directed() bool { return v.g.Directed() }

// Edge implements View.
func (v *FailureView) Edge(id EdgeID) Edge { return v.g.Edge(id) }

// UnitWeights implements View.
func (v *FailureView) UnitWeights() bool { return v.unit }

// VisitArcs implements View, skipping removed edges and edges leading to or
// from removed nodes.
func (v *FailureView) VisitArcs(u NodeID, visit func(Arc) bool) {
	if v.nodeRemoved.get(int(u)) {
		return
	}
	for _, a := range v.g.Arcs(u) {
		if v.edgeRemoved.get(int(a.Edge)) || v.nodeRemoved.get(int(a.To)) {
			continue
		}
		if !visit(a) {
			return
		}
	}
}

var _ View = (*FailureView)(nil)

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
