// Package graph implements the network model used throughout the RBPC
// reproduction: an undirected (optionally directed) weighted multigraph with
// dense integer vertex IDs, plus lightweight failure overlays that present a
// subgraph with edges or nodes removed without copying the graph.
//
// Parallel edges are first-class (each edge has its own ID) because the
// paper's Theorem-3 discussion relies on graphs with two parallel edges
// between consecutive nodes.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a vertex. IDs are dense: a graph with n nodes uses IDs
// 0..n-1.
type NodeID = int32

// EdgeID identifies an edge. IDs are dense: a graph with m edges uses IDs
// 0..m-1. Parallel edges have distinct IDs.
type EdgeID = int32

// Edge is an edge of the graph. For undirected graphs U < V is not
// guaranteed; U and V are stored in insertion order.
type Edge struct {
	ID EdgeID
	U  NodeID
	V  NodeID
	// W is the edge weight (its OSPF-like cost). Weights must be positive.
	W float64
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d (%d,%d)", x, e.ID, e.U, e.V))
}

// Arc is an adjacency-list entry: the edge to traverse and the node it leads
// to.
type Arc struct {
	Edge EdgeID
	To   NodeID
}

// Graph is a weighted multigraph. The zero value is an empty undirected
// graph ready for use. Graphs are append-only: nodes and edges can be added
// but not removed; removal is modeled by overlays (see View and the
// Fail* functions in this package).
//
// Graph is not safe for concurrent mutation; concurrent reads are safe once
// construction is complete.
type Graph struct {
	directed bool
	edges    []Edge
	adj      [][]Arc // outgoing arcs per node (both directions if undirected)
	names    []string
	unit     bool     // true while every edge has weight exactly 1
	csr      csrCache // lazily compiled flat adjacency (see CSR)
}

// New returns an empty undirected graph with n nodes (IDs 0..n-1).
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n), unit: true}
}

// NewDirected returns an empty directed graph with n nodes. Directed graphs
// exist in this repository only to demonstrate the paper's directed
// counterexample (Figure 5); all RBPC machinery operates on undirected
// graphs.
func NewDirected(n int) *Graph {
	g := New(n)
	g.directed = true
	return g
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Order returns the number of nodes.
func (g *Graph) Order() int { return len(g.adj) }

// Size returns the number of edges.
func (g *Graph) Size() int { return len(g.edges) }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.csr.invalidate()
	g.adj = append(g.adj, nil)
	if g.names != nil {
		g.names = append(g.names, "")
	}
	return NodeID(len(g.adj) - 1)
}

// AddEdge appends an edge between u and v with weight w and returns its ID.
// It panics if either endpoint is out of range, if w is not positive and
// finite, or if u == v (self-loops never participate in shortest paths).
func (g *Graph) AddEdge(u, v NodeID, w float64) EdgeID {
	if int(u) >= len(g.adj) || u < 0 || int(v) >= len(g.adj) || v < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with %d nodes", u, v, len(g.adj)))
	}
	if u == v {
		panic(fmt.Sprintf("graph: AddEdge self-loop at node %d", u))
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: AddEdge weight %v must be positive and finite", w))
	}
	g.csr.invalidate()
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Arc{Edge: id, To: v})
	if !g.directed {
		g.adj[v] = append(g.adj[v], Arc{Edge: id, To: u})
	}
	if w != 1 {
		g.unit = false
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns the backing slice of all edges. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Arcs returns the adjacency list of u. Callers must not modify it.
func (g *Graph) Arcs(u NodeID) []Arc { return g.adj[u] }

// Degree returns the number of arcs incident to u (out-degree if directed).
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// UnitWeights reports whether every edge has weight exactly 1, i.e. the
// graph is effectively unweighted and hop count equals cost.
func (g *Graph) UnitWeights() bool { return g.unit }

// SetName assigns a human-readable name to node u.
func (g *Graph) SetName(u NodeID, name string) {
	if g.names == nil {
		g.names = make([]string, len(g.adj))
	}
	g.names[u] = name
}

// Name returns the name of node u, or "v<ID>" if none was assigned.
func (g *Graph) Name(u NodeID) string {
	if g.names != nil && g.names[u] != "" {
		return g.names[u]
	}
	return fmt.Sprintf("v%d", u)
}

// AvgDegree returns the average node degree, counting each undirected edge
// at both endpoints (the convention used by the paper's Table 1).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	factor := 2.0
	if g.directed {
		factor = 1.0
	}
	return factor * float64(len(g.edges)) / float64(len(g.adj))
}

// FindEdge returns the ID of the minimum-weight edge between u and v, and
// whether one exists.
func (g *Graph) FindEdge(u, v NodeID) (EdgeID, bool) {
	best := EdgeID(-1)
	bestW := math.Inf(1)
	for _, a := range g.adj[u] {
		if a.To == v && g.edges[a.Edge].W < bestW {
			best, bestW = a.Edge, g.edges[a.Edge].W
		}
	}
	return best, best >= 0
}

// View is a read-only subgraph interface accepted by the shortest-path
// engine. A *Graph is itself a View of the whole network; failure overlays
// provide Views with elements removed.
type View interface {
	// Order returns the number of nodes of the underlying graph. Removed
	// nodes keep their IDs; they simply have no usable arcs.
	Order() int
	// Directed reports whether arcs may only be traversed from U to V.
	Directed() bool
	// Edge returns the edge record for id.
	Edge(id EdgeID) Edge
	// VisitArcs calls visit for every usable arc out of u until visit
	// returns false. If u itself is removed, no arcs are visited.
	VisitArcs(u NodeID, visit func(Arc) bool)
	// UnitWeights reports whether all usable edges have weight 1.
	UnitWeights() bool
}

// VisitArcs implements View for the whole graph.
func (g *Graph) VisitArcs(u NodeID, visit func(Arc) bool) {
	for _, a := range g.adj[u] {
		if !visit(a) {
			return
		}
	}
}

var _ View = (*Graph)(nil)
