package graph

// NodePair is an ordered source-destination pair, the unit of the
// edge-usage indexes the online restoration engine maintains over the
// canonical shortest-path forest.
type NodePair struct {
	Src, Dst NodeID
}

// PairIndex is a compact CSR-packed edge → pair-list index: for each edge
// ID, the ordered pairs whose indexed path traverses it. It is the static
// half of the engine's affected-set machinery — built once over the
// canonical primary forest (primaries never change), it answers "which
// pairs does failing edge e touch?" as one contiguous slice, with the
// whole index living in two flat arrays instead of a map of slices.
//
// A PairIndex is immutable after construction and safe for concurrent use.
//
//rbpc:immutable
type PairIndex struct {
	off   []int32 // off[e]..off[e+1] bounds e's pairs in flat
	flat  []NodePair
	edges int
}

// BuildPairIndex packs per-edge pair lists into a PairIndex. edges is the
// number of edge IDs the index must answer for (IDs ≥ edges return an
// empty slice); lists maps edge ID → pairs and may omit edges no pair
// uses. The pairs of each edge are stored in the order given — callers
// wanting deterministic iteration sort before building.
//
//rbpc:ctor
func BuildPairIndex(edges int, lists map[EdgeID][]NodePair) *PairIndex {
	ix := &PairIndex{off: make([]int32, edges+1), edges: edges}
	total := 0
	for e, prs := range lists {
		if int(e) < edges {
			total += len(prs)
		}
	}
	ix.flat = make([]NodePair, 0, total)
	for e := 0; e < edges; e++ {
		ix.flat = append(ix.flat, lists[EdgeID(e)]...)
		ix.off[e+1] = int32(len(ix.flat))
	}
	return ix
}

// Pairs returns the pairs indexed under edge e. The returned slice is
// shared index state: callers must not modify it.
//
//rbpc:hotpath
func (ix *PairIndex) Pairs(e EdgeID) []NodePair {
	if int(e) >= ix.edges {
		return nil
	}
	return ix.flat[ix.off[e]:ix.off[e+1]]
}

// Len returns the total number of (edge, pair) entries.
func (ix *PairIndex) Len() int { return len(ix.flat) }
