package graph

import (
	"fmt"
	"strings"
)

// Path is a walk through a graph: a sequence of nodes and the explicit edges
// connecting them. Edges are explicit because multigraphs can have several
// edges between the same endpoints. A path with a single node and no edges
// is the trivial path at that node.
//
// Invariant: len(Nodes) == len(Edges)+1, and Edges[i] joins Nodes[i] and
// Nodes[i+1] (in either orientation for undirected graphs). Use Validate to
// check a path against a particular graph view.
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
}

// Trivial returns the zero-length path at node u.
func Trivial(u NodeID) Path {
	return Path{Nodes: []NodeID{u}}
}

// Src returns the first node of the path.
func (p Path) Src() NodeID { return p.Nodes[0] }

// Dst returns the last node of the path.
func (p Path) Dst() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Hops returns the number of edges.
func (p Path) Hops() int { return len(p.Edges) }

// IsTrivial reports whether the path has no edges.
func (p Path) IsTrivial() bool { return len(p.Edges) == 0 }

// CostIn returns the total weight of the path under view v. The trivial
// path costs 0.
func (p Path) CostIn(v View) float64 {
	var c float64
	for _, e := range p.Edges {
		c += v.Edge(e).W
	}
	return c
}

// Validate checks the structural invariant and that every edge (1) exists in
// v, (2) is usable (not failed), and (3) joins consecutive nodes with the
// right orientation for directed views.
func (p Path) Validate(v View) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("graph: path has %d nodes and %d edges", len(p.Nodes), len(p.Edges))
	}
	for i, id := range p.Edges {
		u, w := p.Nodes[i], p.Nodes[i+1]
		e := v.Edge(id)
		if v.Directed() {
			if e.U != u || e.V != w {
				return fmt.Errorf("graph: edge %d is (%d->%d), path uses it as (%d->%d)", id, e.U, e.V, u, w)
			}
		} else if !(e.U == u && e.V == w) && !(e.U == w && e.V == u) {
			return fmt.Errorf("graph: edge %d is (%d,%d), path step %d is (%d,%d)", id, e.U, e.V, i, u, w)
		}
		// The edge must be traversable in the view: confirm it appears as
		// an arc out of u.
		usable := false
		v.VisitArcs(u, func(a Arc) bool {
			if a.Edge == id && a.To == w {
				usable = true
				return false
			}
			return true
		})
		if !usable {
			return fmt.Errorf("graph: edge %d (%d,%d) not usable at step %d", id, u, w, i)
		}
	}
	return nil
}

// IsSimple reports whether no node repeats.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}

// HasEdge reports whether the path traverses edge id.
func (p Path) HasEdge(id EdgeID) bool {
	for _, e := range p.Edges {
		if e == id {
			return true
		}
	}
	return false
}

// HasNode reports whether the path visits node id.
func (p Path) HasNode(id NodeID) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// HasInteriorNode reports whether the path visits node id strictly between
// its endpoints. Router-failure restoration uses this: a base path is broken
// by a router failure only if the router is interior (an endpoint failing
// means there is no traffic to restore).
func (p Path) HasInteriorNode(id NodeID) bool {
	for i := 1; i < len(p.Nodes)-1; i++ {
		if p.Nodes[i] == id {
			return true
		}
	}
	return false
}

// SubPath returns the path restricted to node positions [i, j] (inclusive).
// SubPath(0, Hops()) is the whole path; SubPath(i, i) is trivial.
func (p Path) SubPath(i, j int) Path {
	if i < 0 || j > p.Hops() || i > j {
		panic(fmt.Sprintf("graph: SubPath(%d,%d) of %d-hop path", i, j, p.Hops()))
	}
	return Path{
		Nodes: p.Nodes[i : j+1],
		Edges: p.Edges[i:j],
	}
}

// Concat returns p followed by q. It panics unless p ends where q starts.
// The result shares no backing arrays with p or q.
func (p Path) Concat(q Path) Path {
	if p.Dst() != q.Src() {
		panic(fmt.Sprintf("graph: Concat of path ending at %d with path starting at %d", p.Dst(), q.Src()))
	}
	r := Path{
		Nodes: make([]NodeID, 0, len(p.Nodes)+len(q.Nodes)-1),
		Edges: make([]EdgeID, 0, len(p.Edges)+len(q.Edges)),
	}
	r.Nodes = append(r.Nodes, p.Nodes...)
	r.Nodes = append(r.Nodes, q.Nodes[1:]...)
	r.Edges = append(r.Edges, p.Edges...)
	r.Edges = append(r.Edges, q.Edges...)
	return r
}

// Reverse returns the path traversed backwards. Reversal of a directed
// path is generally not a valid path in a directed view.
func (p Path) Reverse() Path {
	r := Path{
		Nodes: make([]NodeID, len(p.Nodes)),
		Edges: make([]EdgeID, len(p.Edges)),
	}
	for i, n := range p.Nodes {
		r.Nodes[len(p.Nodes)-1-i] = n
	}
	for i, e := range p.Edges {
		r.Edges[len(p.Edges)-1-i] = e
	}
	return r
}

// Clone returns a deep copy of p.
func (p Path) Clone() Path {
	return Path{
		Nodes: append([]NodeID(nil), p.Nodes...),
		Edges: append([]EdgeID(nil), p.Edges...),
	}
}

// Equal reports whether p and q traverse exactly the same nodes and edges.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// String renders the path as "0-(e3)-4-(e7)-2".
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d", p.Nodes[0])
	for i, e := range p.Edges {
		fmt.Fprintf(&b, "-(e%d)-%d", e, p.Nodes[i+1])
	}
	return b.String()
}

// Key returns a compact string identifying the path's edge sequence plus its
// endpoints, suitable as a map key (e.g. for deduplicating base paths).
func (p Path) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", p.Nodes[0])
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "%d,", e)
	}
	fmt.Fprintf(&b, ":%d", p.Dst())
	return b.String()
}
