package graph

import "sort"

// ArticulationPoints returns the cut vertices of g (nodes whose removal
// disconnects their component), sorted by ID, via an iterative Tarjan
// lowpoint scan.
//
// They are the router-failure analog of bridges: a pair separated by an
// articulation point cannot be restored after that router fails, so
// evaluation harnesses must treat those cases as genuine partitions (the
// paper's methodology skips them the same way).
func ArticulationPoints(g *Graph) []NodeID {
	n := g.Order()
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	isCut := make([]bool, n)
	var timer int32

	type frame struct {
		node     NodeID
		parent   NodeID // -1 at roots
		arcIdx   int
		children int
	}
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		stack := []frame{{node: NodeID(root), parent: -1}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			arcs := g.Arcs(f.node)
			if f.arcIdx < len(arcs) {
				a := arcs[f.arcIdx]
				f.arcIdx++
				if a.To == f.parent {
					// Skip edges back to the parent. Unlike the bridge
					// scan, parallel edges to the parent are irrelevant
					// here: node removal takes all incident edges with
					// it, so extra multiplicity never prevents a cut.
					continue
				}
				if disc[a.To] == -1 {
					f.children++
					disc[a.To] = timer
					low[a.To] = timer
					timer++
					stack = append(stack, frame{node: a.To, parent: f.node})
				} else if disc[a.To] < low[f.node] {
					low[f.node] = disc[a.To]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				// f was a root: cut vertex iff it has >= 2 DFS children.
				if f.children >= 2 {
					isCut[f.node] = true
				}
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.node] < low[p.node] {
				low[p.node] = low[f.node]
			}
			if p.parent != -1 && low[f.node] >= disc[p.node] {
				isCut[p.node] = true
			}
		}
	}
	var cuts []NodeID
	for i, c := range isCut {
		if c {
			cuts = append(cuts, NodeID(i))
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	return cuts
}
