package graph

import (
	"strings"
	"testing"
)

func pathFixture() (*Graph, Path) {
	g := New(4)
	g.AddEdge(0, 1, 1) // e0
	g.AddEdge(1, 2, 2) // e1
	g.AddEdge(2, 3, 3) // e2
	return g, Path{Nodes: []NodeID{0, 1, 2, 3}, Edges: []EdgeID{0, 1, 2}}
}

func TestPathBasics(t *testing.T) {
	g, p := pathFixture()
	if p.Src() != 0 || p.Dst() != 3 || p.Hops() != 3 || p.IsTrivial() {
		t.Errorf("basics wrong: %v", p)
	}
	if p.CostIn(g) != 6 {
		t.Errorf("CostIn = %v, want 6", p.CostIn(g))
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
	triv := Trivial(2)
	if !triv.IsTrivial() || triv.Src() != 2 || triv.Dst() != 2 || triv.CostIn(g) != 0 {
		t.Errorf("Trivial wrong: %v", triv)
	}
	if err := triv.Validate(g); err != nil {
		t.Errorf("trivial Validate: %v", err)
	}
}

func TestPathPredicates(t *testing.T) {
	_, p := pathFixture()
	if !p.IsSimple() {
		t.Error("simple path not simple")
	}
	loopy := Path{Nodes: []NodeID{0, 1, 0}, Edges: []EdgeID{0, 0}}
	if loopy.IsSimple() {
		t.Error("repeated node called simple")
	}
	if !p.HasEdge(1) || p.HasEdge(9) {
		t.Error("HasEdge")
	}
	if !p.HasNode(2) || p.HasNode(9) {
		t.Error("HasNode")
	}
	if !p.HasInteriorNode(1) || p.HasInteriorNode(0) || p.HasInteriorNode(3) {
		t.Error("HasInteriorNode")
	}
}

func TestPathValidateErrors(t *testing.T) {
	g, p := pathFixture()
	cases := map[string]Path{
		"empty":        {},
		"arity":        {Nodes: []NodeID{0, 1}, Edges: nil},
		"wrong edge":   {Nodes: []NodeID{0, 2}, Edges: []EdgeID{0}},
		"disconnected": {Nodes: []NodeID{0, 3}, Edges: []EdgeID{2}},
	}
	for name, bad := range cases {
		if err := bad.Validate(g); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// A failed edge invalidates the path in the failure view.
	fv := FailEdges(g, 1)
	if err := p.Validate(fv); err == nil {
		t.Error("path over failed edge validated")
	}
}

func TestPathValidateDirected(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1, 1)
	fwd := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{0}}
	rev := Path{Nodes: []NodeID{1, 0}, Edges: []EdgeID{0}}
	if err := fwd.Validate(g); err != nil {
		t.Errorf("forward: %v", err)
	}
	if err := rev.Validate(g); err == nil {
		t.Error("reverse direction validated on directed graph")
	}
}

func TestPathSubConcatReverseClone(t *testing.T) {
	g, p := pathFixture()
	sub := p.SubPath(1, 3)
	if sub.Src() != 1 || sub.Dst() != 3 || sub.Hops() != 2 {
		t.Errorf("SubPath = %v", sub)
	}
	whole := p.SubPath(0, 1).Concat(p.SubPath(1, 3))
	if !whole.Equal(p) {
		t.Error("split+concat != original")
	}
	rev := p.Reverse()
	if rev.Src() != 3 || rev.Dst() != 0 || rev.CostIn(g) != p.CostIn(g) {
		t.Errorf("Reverse = %v", rev)
	}
	cl := p.Clone()
	cl.Nodes[0] = 9
	if p.Nodes[0] == 9 {
		t.Error("Clone shares backing array")
	}
	if p.Equal(Path{Nodes: []NodeID{0}}) || p.Equal(rev) {
		t.Error("Equal false positives")
	}
}

func TestPathPanics(t *testing.T) {
	_, p := pathFixture()
	for name, f := range map[string]func(){
		"SubPath range":  func() { p.SubPath(2, 1) },
		"SubPath bounds": func() { p.SubPath(0, 9) },
		"Concat gap":     func() { p.Concat(Trivial(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPathStringAndKey(t *testing.T) {
	_, p := pathFixture()
	s := p.String()
	if !strings.Contains(s, "(e1)") || !strings.HasPrefix(s, "0") {
		t.Errorf("String = %q", s)
	}
	if (Path{}).String() != "<empty>" {
		t.Error("empty String")
	}
	if p.Key() == p.SubPath(0, 2).Key() {
		t.Error("distinct paths share a key")
	}
	if p.Key() != p.Clone().Key() {
		t.Error("clone key differs")
	}
	// Trivial paths at different nodes must have distinct keys.
	if Trivial(1).Key() == Trivial(2).Key() {
		t.Error("trivial keys collide")
	}
}

func TestFailViewAccessors(t *testing.T) {
	g, _ := pathFixture()
	fv := FailEdges(g, 0)
	if fv.Directed() || fv.Edge(1).W != 2 {
		t.Error("view accessors")
	}
	if fv.UnitWeights() {
		t.Error("weighted view claims unit")
	}
	u := New(2)
	u.AddEdge(0, 1, 1)
	if !FailEdges(u).UnitWeights() {
		t.Error("unit view lost flag")
	}
}
