package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArticulationLine(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	got := ArticulationPoints(g)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("line cuts = %v, want [1 2]", got)
	}
}

func TestArticulationCycleHasNone(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%5), 1)
	}
	if got := ArticulationPoints(g); len(got) != 0 {
		t.Errorf("cycle cuts = %v, want none", got)
	}
}

func TestArticulationTwoTriangles(t *testing.T) {
	// Two triangles sharing node 2: node 2 is the only cut vertex.
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 2, 1)
	got := ArticulationPoints(g)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("cuts = %v, want [2]", got)
	}
}

func TestArticulationStar(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	got := ArticulationPoints(g)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("star cuts = %v, want [0]", got)
	}
}

func TestArticulationParallelEdges(t *testing.T) {
	// 0 =2= 1 - 2: node 1 is a cut despite the doubled edge 0-1.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	got := ArticulationPoints(g)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("cuts = %v, want [1]", got)
	}
}

func TestArticulationDisconnected(t *testing.T) {
	g := New(6) // two separate paths
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	got := ArticulationPoints(g)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("cuts = %v, want [1 4]", got)
	}
}

// TestQuickArticulationMatchesDefinition: a node is a cut vertex iff its
// removal increases the number of components among surviving nodes.
func TestQuickArticulationMatchesDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		isCut := make(map[NodeID]bool)
		for _, c := range ArticulationPoints(g) {
			isCut[c] = true
		}
		base := Components(g)
		// Count components that contain more than just the candidate.
		for v := 0; v < n; v++ {
			vv := NodeID(v)
			// Removing v: count components among remaining nodes, and
			// compare against base where v's own membership is adjusted:
			// v is a cut vertex iff #components(G - v) > #components(G)
			// - (1 if v was isolated... handle: v isolated can't be cut).
			after := len(Components(FailNodes(g, vv)))
			// Removing v removes one node: if v was an isolated node, the
			// count drops by one; otherwise equal count means no cut.
			wasIsolated := g.Degree(vv) == 0
			var want bool
			if wasIsolated {
				want = false
			} else {
				want = after > len(base)
			}
			if isCut[vv] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
