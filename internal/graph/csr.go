package graph

import (
	"sync"
	"sync/atomic"
)

// CSRArc is one entry of the compiled flat adjacency (see CSR): the node an
// arc leads to, the edge it traverses, and that edge's weight inlined so the
// shortest-path relaxation loop needs no second memory load through the edge
// table.
type CSRArc struct {
	To   NodeID
	Edge EdgeID
	W    float64
}

// CSR is the compressed-sparse-row form of a graph's adjacency: all arcs in
// one flat slice, node u's arcs at Arcs(u). It is the read-only kernel the
// shortest-path engine iterates instead of calling a visitor closure per
// arc. Arc order within a node matches the insertion-ordered adjacency
// list, so algorithms that tie-break on iteration order behave identically
// on either representation.
//
// A CSR is immutable after construction and safe for concurrent use.
//
//rbpc:immutable
type CSR struct {
	off  []int32 // len n+1; arcs of node u are arcs[off[u]:off[u+1]]
	arcs []CSRArc
}

// Arcs returns the flat adjacency slice of u. Callers must not modify it.
//
//rbpc:hotpath
func (c *CSR) Arcs(u NodeID) []CSRArc { return c.arcs[c.off[u]:c.off[u+1]] }

// NumArcs returns the total number of arcs (2m for an undirected graph).
//
//rbpc:hotpath
func (c *CSR) NumArcs() int { return len(c.arcs) }

// Order returns the number of nodes the CSR was built for.
//
//rbpc:hotpath
func (c *CSR) Order() int { return len(c.off) - 1 }

// buildCSR compiles the graph's slice-of-slices adjacency into flat form.
func buildCSR(g *Graph) *CSR {
	n := g.Order()
	c := &CSR{off: make([]int32, n+1)}
	total := 0
	for u := 0; u < n; u++ {
		total += len(g.adj[u])
	}
	c.arcs = make([]CSRArc, 0, total)
	for u := 0; u < n; u++ {
		c.off[u] = int32(len(c.arcs))
		for _, a := range g.adj[u] {
			c.arcs = append(c.arcs, CSRArc{To: a.To, Edge: a.Edge, W: g.edges[a.Edge].W})
		}
	}
	c.off[n] = int32(len(c.arcs))
	return c
}

// csrCache holds the lazily compiled CSR of a Graph. Mutations (AddNode,
// AddEdge) invalidate it; the next CSR() call recompiles. Reads go through
// an atomic pointer so the hot path is lock-free; the double-checked mutex
// only serializes the build, keeping concurrent readers from compiling the
// 40k-node Internet graph more than once.
type csrCache struct {
	mu sync.Mutex
	p  atomic.Pointer[CSR]
}

// invalidate drops the compiled form after a mutation.
func (c *csrCache) invalidate() { c.p.Store(nil) }

// CSR returns the compiled flat adjacency of g, building and caching it on
// first use. Like all Graph reads it is safe for concurrent use once
// construction is complete; a graph still being mutated must not call it
// concurrently (the cache is invalidated by AddNode/AddEdge).
func (g *Graph) CSR() *CSR {
	if c := g.csr.p.Load(); c != nil {
		return c
	}
	g.csr.mu.Lock()
	defer g.csr.mu.Unlock()
	if c := g.csr.p.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.p.Store(c)
	return c
}

// Kernel is the flat, branch-cheap description of a View that the
// shortest-path engine's inner loops run on: the base graph's CSR plus the
// failure overlay's removal bitsets (nil when nothing of that kind is
// removed). A zero EdgeOff/NodeOff word test replaces the per-arc visitor
// closure of the View interface.
//
//rbpc:immutable
type Kernel struct {
	CSR     *CSR
	EdgeOff []uint64 // removed-edge bitset, nil if no edges removed
	NodeOff []uint64 // removed-node bitset, nil if no nodes removed
}

// EdgeRemoved reports whether edge id is masked off.
//
//rbpc:hotpath
func (k *Kernel) EdgeRemoved(id EdgeID) bool {
	return k.EdgeOff != nil && k.EdgeOff[uint32(id)>>6]&(1<<(uint32(id)&63)) != 0
}

// NodeRemoved reports whether node id is masked off.
//
//rbpc:hotpath
func (k *Kernel) NodeRemoved(id NodeID) bool {
	return k.NodeOff != nil && k.NodeOff[uint32(id)>>6]&(1<<(uint32(id)&63)) != 0
}

// ArcUsable reports whether a survives the overlay: neither its edge nor its
// head node is removed. (The tail node is the responsibility of the caller,
// which never expands a removed node.)
//
//rbpc:hotpath
func (k *Kernel) ArcUsable(a CSRArc) bool {
	return !k.EdgeRemoved(a.Edge) && !k.NodeRemoved(a.To)
}

// CompileView lowers a View to its Kernel. It succeeds for the two concrete
// view types this package defines — a whole *Graph and a *FailureView —
// and reports false for anything else, in which case callers fall back to
// the generic VisitArcs interface.
func CompileView(v View) (Kernel, bool) {
	switch t := v.(type) {
	case *Graph:
		return Kernel{CSR: t.CSR()}, true
	case *FailureView:
		k := Kernel{CSR: t.g.CSR()}
		if len(t.removedEdges) > 0 {
			k.EdgeOff = t.edgeRemoved
		}
		if len(t.removedNodes) > 0 {
			k.NodeOff = t.nodeRemoved
		}
		return k, true
	}
	return Kernel{}, false
}
