package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 0.25)
	g.AddEdge(0, 1, 3) // parallel

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Order() != g.Order() || got.Size() != g.Size() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.Order(), got.Size(), g.Order(), g.Size())
	}
	for i, e := range g.Edges() {
		ge := got.Edge(EdgeID(i))
		if ge.U != e.U || ge.V != e.V || ge.W != e.W {
			t.Errorf("edge %d: got %+v want %+v", i, ge, e)
		}
	}
}

func TestRoundTripDirected(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Directed() {
		t.Error("directed flag lost in round trip")
	}
	if got.Degree(1) != 0 {
		t.Error("directed adjacency not respected after Read")
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := "# topology\n\nnodes 3\n0 1 1\n# middle comment\n1 2 2.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.Order() != 3 || g.Size() != 2 {
		t.Errorf("got %d nodes %d edges", g.Order(), g.Size())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", "0 1 1\n"},
		{"dup header", "nodes 2\nnodes 3\n"},
		{"bad count", "nodes x\n"},
		{"neg count", "nodes -1\n"},
		{"header arity", "nodes 2 3\n"},
		{"bad edge arity", "nodes 2\n0 1\n"},
		{"bad edge field", "nodes 2\n0 x 1\n"},
		{"endpoint range", "nodes 2\n0 5 1\n"},
		{"self loop", "nodes 2\n1 1 1\n"},
		{"bad weight", "nodes 2\n0 1 -3\n"},
		{"empty", ""},
		{"directed after edges", "nodes 2\n0 1 1\ndirected\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Errorf("Read(%q) succeeded, want error", tc.in)
			}
		})
	}
}
