package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 0, 3)
	return g
}

func TestBasicConstruction(t *testing.T) {
	g := buildTriangle(t)
	if g.Order() != 3 {
		t.Errorf("Order() = %d, want 3", g.Order())
	}
	if g.Size() != 3 {
		t.Errorf("Size() = %d, want 3", g.Size())
	}
	if g.Directed() {
		t.Error("Directed() = true for undirected graph")
	}
	if g.UnitWeights() {
		t.Error("UnitWeights() = true with weight-2 edge present")
	}
	if got := g.AvgDegree(); got != 2 {
		t.Errorf("AvgDegree() = %v, want 2", got)
	}
	e := g.Edge(1)
	if e.U != 1 || e.V != 2 || e.W != 2 {
		t.Errorf("Edge(1) = %+v, want {1 1 2 2}", e)
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Error("Other() wrong endpoint")
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.Order() != 3 {
		t.Fatalf("AddNode() = %d (order %d), want 2 (order 3)", id, g.Order())
	}
	g.SetName(0, "core")
	if g.Name(0) != "core" || g.Name(2) != "v2" {
		t.Errorf("names = %q, %q", g.Name(0), g.Name(2))
	}
	id2 := g.AddNode() // after names allocated
	if g.Name(id2) != "v3" {
		t.Errorf("Name(new) = %q, want v3", g.Name(id2))
	}
}

func TestUndirectedAdjacencyBothWays(t *testing.T) {
	g := buildTriangle(t)
	for _, e := range g.Edges() {
		found := 0
		g.VisitArcs(e.U, func(a Arc) bool {
			if a.Edge == e.ID && a.To == e.V {
				found++
			}
			return true
		})
		g.VisitArcs(e.V, func(a Arc) bool {
			if a.Edge == e.ID && a.To == e.U {
				found++
			}
			return true
		})
		if found != 2 {
			t.Errorf("edge %d visible %d times, want 2", e.ID, found)
		}
	}
}

func TestDirectedAdjacencyOneWay(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1, 1)
	if g.Degree(0) != 1 || g.Degree(1) != 0 {
		t.Errorf("degrees = %d,%d, want 1,0", g.Degree(0), g.Degree(1))
	}
	if got := g.AvgDegree(); got != 0.5 {
		t.Errorf("AvgDegree() = %v, want 0.5", got)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1, 5)
	b := g.AddEdge(0, 1, 2)
	if a == b {
		t.Fatal("parallel edges share an ID")
	}
	id, ok := g.FindEdge(0, 1)
	if !ok || id != b {
		t.Errorf("FindEdge picked %d, want min-weight %d", id, b)
	}
	if _, ok := g.FindEdge(1, 1); ok {
		t.Error("FindEdge(1,1) found a self-loop")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Graph)
	}{
		{"out of range", func(g *Graph) { g.AddEdge(0, 9, 1) }},
		{"negative node", func(g *Graph) { g.AddEdge(-1, 0, 1) }},
		{"self loop", func(g *Graph) { g.AddEdge(1, 1, 1) }},
		{"zero weight", func(g *Graph) { g.AddEdge(0, 1, 0) }},
		{"negative weight", func(g *Graph) { g.AddEdge(0, 1, -2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f(New(3))
		})
	}
}

func TestOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e := Edge{ID: 0, U: 1, V: 2}
	e.Other(3)
}

func TestFailureViewEdges(t *testing.T) {
	g := buildTriangle(t)
	v := FailEdges(g, 0)
	if v.EdgeUsable(0) {
		t.Error("removed edge usable")
	}
	if !v.EdgeUsable(1) || !v.EdgeUsable(2) {
		t.Error("surviving edges unusable")
	}
	// Arc 0<->1 must be gone in both directions.
	for _, u := range []NodeID{0, 1} {
		v.VisitArcs(u, func(a Arc) bool {
			if a.Edge == 0 {
				t.Errorf("removed edge visited from %d", u)
			}
			return true
		})
	}
	if len(v.RemovedEdges()) != 1 || v.RemovedEdges()[0] != 0 {
		t.Errorf("RemovedEdges() = %v", v.RemovedEdges())
	}
	if v.Base() != g {
		t.Error("Base() != g")
	}
}

func TestFailureViewNodes(t *testing.T) {
	g := buildTriangle(t)
	v := FailNodes(g, 2)
	if v.NodeUsable(2) {
		t.Error("removed node usable")
	}
	if v.EdgeUsable(1) || v.EdgeUsable(2) {
		t.Error("edges incident to removed node usable")
	}
	if !v.EdgeUsable(0) {
		t.Error("edge 0 should survive")
	}
	count := 0
	v.VisitArcs(2, func(Arc) bool { count++; return true })
	if count != 0 {
		t.Errorf("arcs visited from removed node: %d", count)
	}
	v.VisitArcs(0, func(a Arc) bool {
		if a.To == 2 {
			t.Error("arc to removed node visited")
		}
		return true
	})
}

func TestFailDeduplicates(t *testing.T) {
	g := buildTriangle(t)
	v := Fail(g, []EdgeID{1, 1, 1}, []NodeID{0, 0})
	if len(v.RemovedEdges()) != 1 || len(v.RemovedNodes()) != 1 {
		t.Errorf("dedup failed: edges %v nodes %v", v.RemovedEdges(), v.RemovedNodes())
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	if Connected(g) {
		t.Error("disconnected graph reported connected")
	}
	comps := Components(g)
	if len(comps) != 2 {
		t.Fatalf("Components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes %d,%d want 3,2", len(comps[0]), len(comps[1]))
	}
	g.AddEdge(2, 3, 1)
	if !Connected(g) {
		t.Error("connected graph reported disconnected")
	}
}

func TestConnectedAfterFailure(t *testing.T) {
	g := buildTriangle(t)
	if !Connected(FailEdges(g, 0)) {
		t.Error("triangle minus one edge should stay connected")
	}
	if Connected(FailEdges(g, 0, 1)) {
		t.Error("triangle minus two edges should disconnect")
	}
	// Removing a node from a triangle leaves an edge: still connected.
	if !Connected(FailNodes(g, 0)) {
		t.Error("triangle minus a node should stay connected")
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !Connected(New(0)) || !Connected(New(1)) {
		t.Error("empty/singleton graphs must be connected")
	}
	g := New(3)
	g.AddEdge(0, 1, 1)
	if !Connected(FailNodes(g, 2)) {
		t.Error("isolated node removed: remaining pair is connected")
	}
}

func TestSummarize(t *testing.T) {
	g := New(4) // star around 0
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	s := Summarize(g)
	if s.Nodes != 4 || s.Links != 3 {
		t.Errorf("Nodes/Links = %d/%d", s.Nodes, s.Links)
	}
	if s.MinDegree != 1 || s.MaxDegree != 3 {
		t.Errorf("degree range = %d..%d, want 1..3", s.MinDegree, s.MaxDegree)
	}
	if s.AvgDegree != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", s.AvgDegree)
	}
	if got := Summarize(New(0)); got.Nodes != 0 {
		t.Errorf("Summarize(empty) = %+v", got)
	}
}

func TestBridges(t *testing.T) {
	// Two triangles joined by a bridge (edge 6: 2-3).
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	bridge := g.AddEdge(2, 3, 1)
	got := BridgeEdges(g)
	if len(got) != 1 || got[0] != bridge {
		t.Errorf("BridgeEdges = %v, want [%d]", got, bridge)
	}
}

func TestBridgesParallelNotBridge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	if got := BridgeEdges(g); len(got) != 0 {
		t.Errorf("parallel edges reported as bridges: %v", got)
	}
}

func TestBridgesPath(t *testing.T) {
	g := New(4)
	ids := []EdgeID{g.AddEdge(0, 1, 1), g.AddEdge(1, 2, 1), g.AddEdge(2, 3, 1)}
	got := BridgeEdges(g)
	if len(got) != len(ids) {
		t.Fatalf("path bridges = %v, want all %v", got, ids)
	}
}

// TestQuickBridgesMatchDefinition cross-checks the Tarjan scan against the
// definition: an edge is a bridge iff removing it increases the number of
// connected components.
func TestQuickBridgesMatchDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		g := New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		isBridge := make(map[EdgeID]bool)
		for _, id := range BridgeEdges(g) {
			isBridge[id] = true
		}
		base := len(Components(g))
		for _, e := range g.Edges() {
			want := len(Components(FailEdges(g, e.ID))) > base
			if isBridge[e.ID] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFailureViewConsistency checks that a failure view never yields an
// arc whose edge or endpoints are removed.
func TestQuickFailureViewConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64())
			}
		}
		if g.Size() == 0 {
			return true
		}
		var re []EdgeID
		var rn []NodeID
		for i := 0; i < 1+rng.Intn(4); i++ {
			re = append(re, EdgeID(rng.Intn(g.Size())))
		}
		for i := 0; i < rng.Intn(3); i++ {
			rn = append(rn, NodeID(rng.Intn(n)))
		}
		fv := Fail(g, re, rn)
		removedE := make(map[EdgeID]bool)
		for _, id := range re {
			removedE[id] = true
		}
		removedN := make(map[NodeID]bool)
		for _, id := range rn {
			removedN[id] = true
		}
		ok := true
		for u := 0; u < n; u++ {
			fv.VisitArcs(NodeID(u), func(a Arc) bool {
				e := g.Edge(a.Edge)
				if removedE[a.Edge] || removedN[e.U] || removedN[e.V] || removedN[NodeID(u)] {
					ok = false
					return false
				}
				return true
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestVisitArcsEarlyStop(t *testing.T) {
	g := buildTriangle(t)
	count := 0
	g.VisitArcs(0, func(Arc) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d arcs, want 1", count)
	}
	fv := FailEdges(g)
	count = 0
	fv.VisitArcs(0, func(Arc) bool { count++; return false })
	if count != 1 {
		t.Errorf("failure view early stop visited %d arcs, want 1", count)
	}
}
