package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: arbitrary input must never panic the parser, and anything it
// accepts must round-trip exactly through Write/Read.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\n0 1 1\n1 2 2.5\n")
	f.Add("nodes 2\ndirected\n0 1 1\n")
	f.Add("# comment\n\nnodes 1\n")
	f.Add("nodes 0\n")
	f.Add("nodes 2\n0 1 1e-3\n0 1 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\noutput:\n%s", err, buf.String())
		}
		if g2.Order() != g.Order() || g2.Size() != g.Size() || g2.Directed() != g.Directed() {
			t.Fatalf("round trip changed shape: %d/%d/%v vs %d/%d/%v",
				g.Order(), g.Size(), g.Directed(), g2.Order(), g2.Size(), g2.Directed())
		}
		for i := 0; i < g.Size(); i++ {
			a, b := g.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
			if a.U != b.U || a.V != b.V || a.W != b.W {
				t.Fatalf("edge %d changed: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzPathOps: random node/edge index soups must never corrupt Path
// operations that are defined on them.
func FuzzPathOps(f *testing.F) {
	f.Add(5, 3, uint(2), uint(3))
	f.Fuzz(func(t *testing.T, n, hops int, i, j uint) {
		if n < 2 || n > 50 || hops < 0 || hops > 40 {
			return
		}
		g := New(n)
		// A path along a line with wraparound edges.
		p := Path{Nodes: []NodeID{0}}
		for h := 0; h < hops; h++ {
			u := p.Nodes[len(p.Nodes)-1]
			v := NodeID((int(u) + 1) % n)
			id := g.AddEdge(u, v, 1)
			p.Nodes = append(p.Nodes, v)
			p.Edges = append(p.Edges, id)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("constructed path invalid: %v", err)
		}
		ii, jj := int(i%uint(hops+1)), int(j%uint(hops+1))
		if ii > jj {
			ii, jj = jj, ii
		}
		sub := p.SubPath(ii, jj)
		if err := sub.Validate(g); err != nil {
			t.Fatalf("subpath invalid: %v", err)
		}
		if sub.Hops() != jj-ii {
			t.Fatalf("subpath hops = %d, want %d", sub.Hops(), jj-ii)
		}
		rev := p.Reverse()
		if err := rev.Validate(g); err != nil {
			t.Fatalf("reverse invalid on undirected graph: %v", err)
		}
		if !rev.Reverse().Equal(p) {
			t.Fatal("double reverse != original")
		}
		cl := p.Clone()
		if !cl.Equal(p) {
			t.Fatal("clone differs")
		}
		if p.Hops() > 0 {
			head := p.SubPath(0, 1)
			tail := p.SubPath(1, p.Hops())
			if !head.Concat(tail).Equal(p) {
				t.Fatal("split+concat != original")
			}
		}
	})
}
