package graph

import (
	"sync"
	"testing"
)

// TestCSRMatchesAdjacency: the flat kernel enumerates exactly the arcs of
// the adjacency lists, in the same order, with the right inlined weights.
func TestCSRMatchesAdjacency(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 7) // parallel edge
	c := g.CSR()
	if c.Order() != 5 {
		t.Fatalf("Order = %d, want 5", c.Order())
	}
	if c.NumArcs() != 2*g.Size() {
		t.Fatalf("NumArcs = %d, want %d", c.NumArcs(), 2*g.Size())
	}
	for u := 0; u < g.Order(); u++ {
		adj := g.Arcs(NodeID(u))
		flat := c.Arcs(NodeID(u))
		if len(adj) != len(flat) {
			t.Fatalf("node %d: %d flat arcs, want %d", u, len(flat), len(adj))
		}
		for i, a := range adj {
			f := flat[i]
			if f.To != a.To || f.Edge != a.Edge || f.W != g.Edge(a.Edge).W {
				t.Errorf("node %d arc %d: flat %+v, adjacency %+v (w=%v)", u, i, f, a, g.Edge(a.Edge).W)
			}
		}
	}
}

func TestCSRDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1)
	c := g.CSR()
	if c.NumArcs() != 2 {
		t.Fatalf("directed NumArcs = %d, want 2", c.NumArcs())
	}
	if len(c.Arcs(1)) != 0 {
		t.Error("directed CSR gave node 1 outgoing arcs")
	}
}

// TestCSRInvalidation: mutating the graph drops the compiled kernel, and
// the next CSR() sees the new topology.
func TestCSRInvalidation(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	c1 := g.CSR()
	if c1.NumArcs() != 2 {
		t.Fatalf("NumArcs = %d, want 2", c1.NumArcs())
	}
	if g.CSR() != c1 {
		t.Error("CSR not cached between reads")
	}
	g.AddEdge(0, 1, 2)
	c2 := g.CSR()
	if c2 == c1 {
		t.Error("CSR not invalidated by AddEdge")
	}
	if c2.NumArcs() != 4 {
		t.Fatalf("NumArcs after AddEdge = %d, want 4", c2.NumArcs())
	}
	g.AddNode()
	c3 := g.CSR()
	if c3 == c2 || c3.Order() != 3 {
		t.Errorf("CSR not invalidated by AddNode: order %d", c3.Order())
	}
}

// TestCSRConcurrentBuild: many goroutines asking for the kernel of a
// freshly built graph race on the lazy build; run under -race this proves
// the double-checked cache.
func TestCSRConcurrentBuild(t *testing.T) {
	g := New(100)
	for i := 0; i < 99; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	var wg sync.WaitGroup
	got := make([]*CSR, 16)
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = g.CSR()
		}(w)
	}
	wg.Wait()
	for _, c := range got[1:] {
		if c != got[0] {
			t.Fatal("concurrent CSR() returned different kernels")
		}
	}
}

func TestCompileView(t *testing.T) {
	g := New(4)
	e01 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)

	k, ok := CompileView(g)
	if !ok || k.CSR == nil || k.EdgeOff != nil || k.NodeOff != nil {
		t.Fatalf("CompileView(graph) = %+v, %v", k, ok)
	}
	if k.EdgeRemoved(e01) || k.NodeRemoved(0) {
		t.Error("bare graph kernel reports removals")
	}

	fv := FailEdges(g, e01)
	k, ok = CompileView(fv)
	if !ok || k.EdgeOff == nil || k.NodeOff != nil {
		t.Fatalf("CompileView(failed edges) = %+v, %v", k, ok)
	}
	if !k.EdgeRemoved(e01) || k.EdgeRemoved(1) {
		t.Error("edge mask wrong")
	}
	if k.ArcUsable(CSRArc{To: 1, Edge: e01, W: 1}) {
		t.Error("removed edge's arc usable")
	}
	if !k.ArcUsable(CSRArc{To: 2, Edge: 1, W: 1}) {
		t.Error("surviving arc not usable")
	}

	nv := FailNodes(g, 2)
	k, ok = CompileView(nv)
	if !ok || k.NodeOff == nil || k.EdgeOff != nil {
		t.Fatalf("CompileView(failed nodes) = %+v, %v", k, ok)
	}
	if !k.NodeRemoved(2) || k.NodeRemoved(1) {
		t.Error("node mask wrong")
	}

	// Non-kernel views fall through.
	if _, ok := CompileView(otherView{g}); ok {
		t.Error("CompileView compiled an unknown view type")
	}
}

type otherView struct{ View }
