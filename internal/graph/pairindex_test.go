package graph

import "testing"

func TestPairIndexPacksLists(t *testing.T) {
	lists := map[EdgeID][]NodePair{
		0: {{1, 2}, {3, 4}},
		2: {{5, 6}},
		9: {{7, 8}}, // beyond edges: must be ignored
	}
	ix := BuildPairIndex(3, lists)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	if got := ix.Pairs(0); len(got) != 2 || got[0] != (NodePair{1, 2}) || got[1] != (NodePair{3, 4}) {
		t.Errorf("Pairs(0) = %v", got)
	}
	if got := ix.Pairs(1); len(got) != 0 {
		t.Errorf("Pairs(1) = %v, want empty", got)
	}
	if got := ix.Pairs(2); len(got) != 1 || got[0] != (NodePair{5, 6}) {
		t.Errorf("Pairs(2) = %v", got)
	}
	if got := ix.Pairs(9); got != nil {
		t.Errorf("Pairs(9) = %v, want nil for out-of-range edge", got)
	}
}

func TestPairIndexEmpty(t *testing.T) {
	ix := BuildPairIndex(0, nil)
	if ix.Len() != 0 {
		t.Errorf("Len = %d, want 0", ix.Len())
	}
	if got := ix.Pairs(0); got != nil {
		t.Errorf("Pairs(0) = %v, want nil", got)
	}
}
