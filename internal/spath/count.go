package spath

import (
	"math"
	"sort"

	"rbpc/internal/graph"
)

// CountPaths returns, for every node v, the number of distinct shortest
// paths from src to v in the view, saturating at math.MaxUint64. Nodes that
// are unreachable have count 0; the source has count 1 (the trivial path).
//
// This implements the paper's "redundancy" denominator: the number of
// distinct shortest paths between a pair indicates how much ILM space a
// scheme would need to store every one of them.
//
// Counting relaxes the shortest-path DAG in distance order: an edge (u,v)
// is a DAG edge iff dist(u) + w(u,v) == dist(v). Weights should be exactly
// representable (integers) for the equality to be reliable; all topology
// generators in this repository emit integral weights.
func CountPaths(v graph.View, src graph.NodeID) []uint64 {
	t := Compute(v, src)
	n := v.Order()
	counts := make([]uint64, n)
	counts[src] = 1

	// Process nodes in increasing distance; among equal distances the order
	// is irrelevant because DAG edges strictly increase distance (weights
	// are positive).
	order := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		if t.Reached(graph.NodeID(i)) {
			order = append(order, graph.NodeID(i))
		}
	}
	sort.Slice(order, func(i, j int) bool { return t.Dist(order[i]) < t.Dist(order[j]) })

	for _, u := range order {
		cu := counts[u]
		if cu == 0 {
			continue
		}
		du := t.Dist(u)
		v.VisitArcs(u, func(a graph.Arc) bool {
			if du+v.Edge(a.Edge).W == t.Dist(a.To) {
				counts[a.To] = satAdd(counts[a.To], cu)
			}
			return true
		})
	}
	return counts
}

func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// MaxShortestPathMultiplicity returns the largest number of distinct
// shortest paths between any pair with source in sources, saturating. The
// paper's Table 2 reports this as "(max)" in the redundancy column.
func MaxShortestPathMultiplicity(v graph.View, sources []graph.NodeID) uint64 {
	var maxC uint64
	for _, s := range sources {
		for _, c := range CountPaths(v, s) {
			if c > maxC {
				maxC = c
			}
		}
	}
	return maxC
}
