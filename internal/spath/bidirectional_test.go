package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
)

// TestQuickBidiMatchesDijkstra: bidirectional distances equal tree
// distances on random undirected graphs, including with failures.
func TestQuickBidiMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.New(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(6)))
			}
		}
		var view graph.View = g
		if g.Size() > 0 && rng.Intn(2) == 0 {
			view = graph.FailEdges(g, graph.EdgeID(rng.Intn(g.Size())))
		}
		for trial := 0; trial < 15; trial++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			want := Compute(view, s).Dist(d)
			got, ok := BidiDist(view, s, d)
			if want == Unreachable {
				if ok {
					return false
				}
				continue
			}
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBidiTrivial(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 3)
	if d, ok := BidiDist(g, 0, 0); !ok || d != 0 {
		t.Errorf("BidiDist(s,s) = %v, %v", d, ok)
	}
	if d, ok := BidiDist(g, 0, 1); !ok || d != 3 {
		t.Errorf("BidiDist = %v, %v", d, ok)
	}
}

func TestBidiDirectedPanics(t *testing.T) {
	g := graph.NewDirected(2)
	g.AddEdge(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on directed view")
		}
	}()
	BidiDist(g, 0, 1)
}

func TestMatrixMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(4)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(4)))
		}
	}
	m, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if m.Dist(graph.NodeID(s), graph.NodeID(d)) != o.Dist(graph.NodeID(s), graph.NodeID(d)) {
				t.Fatalf("matrix/oracle mismatch at %d,%d", s, d)
			}
		}
	}
	if m.Order() != n {
		t.Errorf("Order = %d", m.Order())
	}
}

func TestMatrixDiameter(t *testing.T) {
	g := graph.New(5) // line: diameter 4
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	m, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Diameter(); got != 4 {
		t.Errorf("Diameter = %v, want 4", got)
	}
	ecc, ok := m.Eccentricity(2)
	if !ok || ecc != 2 {
		t.Errorf("Eccentricity(2) = %v, %v", ecc, ok)
	}
}

func TestMatrixDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	m, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 2) != Unreachable {
		t.Error("unreachable pair has finite distance")
	}
	if _, ok := m.Eccentricity(2); ok {
		t.Error("isolated node has eccentricity")
	}
	if m.Diameter() != 1 {
		t.Errorf("Diameter = %v", m.Diameter())
	}
}

func TestMatrixSizeGuard(t *testing.T) {
	if _, err := AllPairs(graph.New(maxMatrixNodes + 1)); err == nil {
		t.Error("oversized matrix accepted")
	}
}

func BenchmarkBidiVsTree(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 3000
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(8)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(8)))
		}
	}
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BidiDist(g, graph.NodeID(i%n), graph.NodeID((i*31+7)%n))
		}
	})
	b.Run("full-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Compute(g, graph.NodeID(i%n)).Dist(graph.NodeID((i*31 + 7) % n))
		}
	})
}
