package spath

import (
	"sync"

	"rbpc/internal/graph"
	"rbpc/internal/pqueue"
)

// Solver is a reusable single-source shortest-path engine. It owns the
// dist/hops/parent scratch a run needs, so repeated runs — the shape of
// every experiment in this repository: thousands of SSSPs over overlays of
// one base graph — allocate nothing and reset in O(touched nodes), not
// O(n):
//
//   - Labels are generation-stamped: bumping the generation counter
//     invalidates every label of the previous run in O(1), and a lazily
//     (re)initialized "touched" list records exactly the nodes the current
//     run labeled.
//   - Views whose concrete type the engine knows (*graph.Graph,
//     *graph.FailureView, and PaddedView over either) are lowered to the
//     graph's compiled CSR kernel, replacing the per-arc visitor closure
//     and the Edge(id).W indirection with a flat slice walk. Any other
//     View still works through the generic interface.
//
// Results are read from the Solver itself (Dist, Hops, Parent, PathTo) and
// remain valid until the next Solve; Tree materializes a standalone
// snapshot. The deterministic lexicographic tie-breaking is bit-for-bit
// identical to Compute's documented behavior.
//
// A Solver is not safe for concurrent use; use one per goroutine
// (AcquireSolver/ReleaseSolver pool them).
type Solver struct {
	n   int // order of the view of the current run
	src graph.NodeID

	dist    []float64
	hops    []int32
	parent  []graph.NodeID
	parentE []graph.EdgeID

	gen     []uint32       // gen[v] == cur: v is labeled in the current run
	mark    []uint32       // mark[v] == cur: secondary flag (settled in BidiDist)
	cur     uint32         // current generation
	touched []graph.NodeID // nodes labeled in the current run

	queue []graph.NodeID // BFS frontier
	heap  *pqueue.IndexedMinHeap
}

// NewSolver returns a Solver with scratch sized for views of order n. The
// scratch grows automatically if a later Solve sees a larger view.
func NewSolver(n int) *Solver {
	s := &Solver{}
	s.grow(n)
	return s
}

// grow (re)allocates every scratch array for order n. Fresh arrays are
// zeroed, so resetting cur restarts generation stamping cleanly.
func (s *Solver) grow(n int) {
	s.dist = make([]float64, n)
	s.hops = make([]int32, n)
	s.parent = make([]graph.NodeID, n)
	s.parentE = make([]graph.EdgeID, n)
	s.gen = make([]uint32, n)
	s.mark = make([]uint32, n)
	s.cur = 0
	s.heap = pqueue.New(n)
	if cap(s.queue) < n {
		s.queue = make([]graph.NodeID, 0, n)
	}
}

// begin starts a new run: adapts the scratch to order n, invalidates every
// label of the previous run in O(1), and records the source.
func (s *Solver) begin(n int, src graph.NodeID) {
	if n > len(s.dist) {
		s.grow(n)
	}
	s.n = n
	s.src = src
	s.cur++
	if s.cur == 0 { // generation counter wrapped: hard-reset the stamps
		clear(s.gen)
		clear(s.mark)
		s.cur = 1
	}
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]
	if s.heap.Len() > 0 { // an early-exit query left entries behind
		s.heap.Reset()
	}
}

// label makes v a labeled node of the current run with the "unreached"
// defaults, returning false if it already was labeled.
func (s *Solver) label(v graph.NodeID) bool {
	if s.gen[v] == s.cur {
		return false
	}
	s.gen[v] = s.cur
	s.dist[v] = Unreachable
	s.hops[v] = 0
	s.parent[v] = -1
	s.parentE[v] = -1
	s.touched = append(s.touched, v)
	return true
}

func (s *Solver) labeled(v graph.NodeID) bool { return s.gen[v] == s.cur }

func (s *Solver) setMark(v graph.NodeID) { s.mark[v] = s.cur }
func (s *Solver) marked(v graph.NodeID) bool {
	return s.mark[v] == s.cur
}

// Source returns the source of the last Solve.
func (s *Solver) Source() graph.NodeID { return s.src }

// Order returns the order of the view of the last Solve.
func (s *Solver) Order() int { return s.n }

// Dist returns the distance from the source to v, or Unreachable.
//
//rbpc:hotpath
func (s *Solver) Dist(v graph.NodeID) float64 {
	if s.gen[v] != s.cur {
		return Unreachable
	}
	return s.dist[v]
}

// Hops returns the hop count of the tree path to v; meaningful only if
// Reached(v).
func (s *Solver) Hops(v graph.NodeID) int {
	if s.gen[v] != s.cur {
		return 0
	}
	return int(s.hops[v])
}

// Reached reports whether v was reached by the last Solve.
//
//rbpc:hotpath
func (s *Solver) Reached(v graph.NodeID) bool {
	return s.gen[v] == s.cur && s.dist[v] != Unreachable
}

// Parent returns the tree predecessor of v and the connecting edge, or
// (-1, -1) at the source or an unreached node.
func (s *Solver) Parent(v graph.NodeID) (graph.NodeID, graph.EdgeID) {
	if s.gen[v] != s.cur {
		return -1, -1
	}
	return s.parent[v], s.parentE[v]
}

// PathTo reconstructs the tree path from the source to v. The second
// result is false if v is unreachable. The returned path is freshly
// allocated and stays valid after the next Solve.
func (s *Solver) PathTo(v graph.NodeID) (graph.Path, bool) {
	if !s.Reached(v) {
		return graph.Path{}, false
	}
	n := int(s.hops[v])
	p := graph.Path{
		Nodes: make([]graph.NodeID, n+1),
		Edges: make([]graph.EdgeID, n),
	}
	at := v
	for i := n; i > 0; i-- {
		p.Nodes[i] = at
		p.Edges[i-1] = s.parentE[at]
		at = s.parent[at]
	}
	p.Nodes[0] = at
	return p, true
}

// Tree materializes the last Solve's result as a standalone shortest-path
// tree, detached from the solver's scratch.
//
//rbpc:ctor
func (s *Solver) Tree() *Tree {
	t := newTree(s.n, s.src)
	for _, v := range s.touched {
		t.dist[v] = s.dist[v]
		t.hops[v] = s.hops[v]
		t.parent[v] = s.parent[v]
		t.parentE[v] = s.parentE[v]
	}
	return t
}

// compileView lowers a view to the flat CSR kernel plus the padding
// magnitude to apply per edge (0 for unpadded views). It reports false for
// view types the kernel cannot represent, in which case the solver runs the
// generic VisitArcs path.
func compileView(v graph.View) (graph.Kernel, float64, bool) {
	if p, ok := v.(*PaddedView); ok {
		if k, ok := graph.CompileView(p.under); ok {
			return k, p.eps, true
		}
		return graph.Kernel{}, 0, false
	}
	k, ok := graph.CompileView(v)
	return k, 0, ok
}

// Solve runs SSSP on v from src: BFS when all usable weights are 1,
// Dijkstra otherwise — the same dispatch as Compute.
func (s *Solver) Solve(v graph.View, src graph.NodeID) {
	if v.UnitWeights() {
		s.solveBFS(v, src)
		return
	}
	s.solveDijkstra(v, src)
}

func (s *Solver) solveBFS(v graph.View, src graph.NodeID) {
	s.begin(v.Order(), src)
	s.label(src)
	s.dist[src] = 0
	if k, _, ok := compileView(v); ok {
		s.bfsKernel(&k, src)
		return
	}
	s.bfsGeneric(v, src)
}

func (s *Solver) solveDijkstra(v graph.View, src graph.NodeID) {
	s.begin(v.Order(), src)
	s.label(src)
	s.dist[src] = 0
	if k, eps, ok := compileView(v); ok {
		s.dijkstraKernel(&k, eps, src)
		return
	}
	s.dijkstraGeneric(v, src)
}

// bfsKernel is the flat-adjacency BFS. The branch structure mirrors the
// generic version exactly so tie-breaking is identical. Scratch fields are
// hoisted into locals so the inner loop indexes slices directly instead of
// re-loading them through the receiver per relaxation.
//
//rbpc:hotpath
func (s *Solver) bfsKernel(k *graph.Kernel, src graph.NodeID) {
	if k.NodeRemoved(src) {
		return // removed source: only itself, at distance 0
	}
	eoff, noff := k.EdgeOff, k.NodeOff
	masked := eoff != nil || noff != nil
	dist, hops, parent, parentE := s.dist, s.hops, s.parent, s.parentE
	gen, cur, touched := s.gen, s.cur, s.touched
	queue := append(s.queue, src) //rbpc:allow hotpath -- scratch presized to the view's order by grow
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		hu := hops[u]
		for _, a := range k.CSR.Arcs(u) {
			to := a.To
			if masked {
				if eoff != nil && eoff[uint32(a.Edge)>>6]&(1<<(uint32(a.Edge)&63)) != 0 {
					continue
				}
				if noff != nil && noff[uint32(to)>>6]&(1<<(uint32(to)&63)) != 0 {
					continue
				}
			}
			switch {
			case gen[to] != cur: // undiscovered
				gen[to] = cur
				dist[to] = du + 1
				hops[to] = hu + 1
				parent[to] = u
				parentE[to] = a.Edge
				touched = append(touched, to) //rbpc:allow hotpath -- amortized: reaches high-water capacity and is reused
				queue = append(queue, to)     //rbpc:allow hotpath -- scratch presized to the view's order by grow
			case dist[to] == du+1:
				// Same level: keep the lexicographically least parent so
				// trees are deterministic.
				if betterParent(hu+1, u, a.Edge, hops[to], parent[to], parentE[to]) {
					parent[to] = u
					parentE[to] = a.Edge
				}
			}
		}
	}
	s.touched = touched
	s.queue = queue[:0]
}

func (s *Solver) bfsGeneric(v graph.View, src graph.NodeID) {
	queue := append(s.queue, src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := s.dist[u]
		hu := s.hops[u]
		v.VisitArcs(u, func(a graph.Arc) bool {
			to := a.To
			switch {
			case s.gen[to] != s.cur:
				s.gen[to] = s.cur
				s.dist[to] = du + 1
				s.hops[to] = hu + 1
				s.parent[to] = u
				s.parentE[to] = a.Edge
				s.touched = append(s.touched, to)
				queue = append(queue, to)
			case s.dist[to] == du+1:
				if betterParent(hu+1, u, a.Edge, s.hops[to], s.parent[to], s.parentE[to]) {
					s.parent[to] = u
					s.parentE[to] = a.Edge
				}
			}
			return true
		})
	}
	s.queue = queue[:0]
}

// dijkstraKernel is the flat-adjacency Dijkstra with inlined weights and
// optional padding. eps != 0 applies the PaddedView perturbation using the
// same expression as PaddedView.Edge, so padded runs are bit-identical.
//
//rbpc:hotpath
func (s *Solver) dijkstraKernel(k *graph.Kernel, eps float64, src graph.NodeID) {
	if k.NodeRemoved(src) {
		return
	}
	eoff, noff := k.EdgeOff, k.NodeOff
	masked := eoff != nil || noff != nil
	dist, hops, parent, parentE := s.dist, s.hops, s.parent, s.parentE
	gen, cur, touched := s.gen, s.cur, s.touched
	h := s.heap
	h.Push(int(src), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > dist[u] {
			continue // stale entry (we push fresh entries instead of decrease-key on revisit)
		}
		hu := hops[u]
		for _, a := range k.CSR.Arcs(u) {
			to := a.To
			if masked {
				if eoff != nil && eoff[uint32(a.Edge)>>6]&(1<<(uint32(a.Edge)&63)) != 0 {
					continue
				}
				if noff != nil && noff[uint32(to)>>6]&(1<<(uint32(to)&63)) != 0 {
					continue
				}
			}
			w := a.W
			if eps != 0 {
				w += eps * unitHash(uint64(a.Edge))
			}
			nd := du + w
			if gen[to] != cur {
				gen[to] = cur
				dist[to] = Unreachable
				hops[to] = 0
				parent[to] = -1
				parentE[to] = -1
				touched = append(touched, to) //rbpc:allow hotpath -- amortized: reaches high-water capacity and is reused
			}
			switch {
			case nd < dist[to]:
				dist[to] = nd
				hops[to] = hu + 1
				parent[to] = u
				parentE[to] = a.Edge
				h.PushOrDecrease(int(to), nd)
			case nd == dist[to]:
				if betterParent(hu+1, u, a.Edge, hops[to], parent[to], parentE[to]) {
					hops[to] = hu + 1
					parent[to] = u
					parentE[to] = a.Edge
				}
			}
		}
	}
	s.touched = touched
}

func (s *Solver) dijkstraGeneric(v graph.View, src graph.NodeID) {
	h := s.heap
	h.Push(int(src), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > s.dist[u] {
			continue
		}
		hu := s.hops[u]
		v.VisitArcs(u, func(a graph.Arc) bool {
			to := a.To
			nd := du + v.Edge(a.Edge).W
			if s.gen[to] != s.cur {
				s.label(to)
			}
			switch {
			case nd < s.dist[to]:
				s.dist[to] = nd
				s.hops[to] = hu + 1
				s.parent[to] = u
				s.parentE[to] = a.Edge
				h.PushOrDecrease(int(to), nd)
			case nd == s.dist[to]:
				if betterParent(hu+1, u, a.Edge, s.hops[to], s.parent[to], s.parentE[to]) {
					s.hops[to] = hu + 1
					s.parent[to] = u
					s.parentE[to] = a.Edge
				}
			}
			return true
		})
	}
}

// solverPool recycles Solvers across Compute/DistTo/BidiDist calls, so the
// steady-state hot path of the evaluation allocates only the result values
// it returns.
var solverPool = sync.Pool{New: func() any { return NewSolver(0) }}

// AcquireSolver returns a pooled Solver ready for views of order n. Pass it
// to ReleaseSolver when done; results read from it are invalid afterwards.
func AcquireSolver(n int) *Solver {
	s := solverPool.Get().(*Solver)
	if n > len(s.dist) {
		s.grow(n)
	}
	return s
}

// ReleaseSolver returns s to the pool.
func ReleaseSolver(s *Solver) { solverPool.Put(s) }
