package spath

// The tests in this file pin the CSR/solver rewrite to the previous
// implementation: referenceCompute/referenceDistTo below are the
// slice-of-slices, closure-based algorithms the engine shipped with,
// copied verbatim. The property tests require the new kernel to reproduce
// their trees bit-for-bit — distances, hop counts, parents and parent
// edges — on random graphs, random failure overlays, padded views, and
// every topology generator.

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
	"rbpc/internal/pqueue"
	"rbpc/internal/topology"
)

func referenceCompute(v graph.View, src graph.NodeID) *Tree {
	if v.UnitWeights() {
		return referenceBFS(v, src)
	}
	return referenceDijkstra(v, src)
}

//rbpc:ctor
func referenceBFS(v graph.View, src graph.NodeID) *Tree {
	t := newTree(v.Order(), src)
	t.dist[src] = 0
	queue := make([]graph.NodeID, 0, 64)
	queue = append(queue, src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := t.dist[u]
		v.VisitArcs(u, func(a graph.Arc) bool {
			switch {
			case t.dist[a.To] == Unreachable:
				t.dist[a.To] = du + 1
				t.hops[a.To] = t.hops[u] + 1
				t.parent[a.To] = u
				t.parentE[a.To] = a.Edge
				queue = append(queue, a.To)
			case t.dist[a.To] == du+1:
				if betterParent(t.hops[u]+1, u, a.Edge, t.hops[a.To], t.parent[a.To], t.parentE[a.To]) {
					t.parent[a.To] = u
					t.parentE[a.To] = a.Edge
				}
			}
			return true
		})
	}
	return t
}

//rbpc:ctor
func referenceDijkstra(v graph.View, src graph.NodeID) *Tree {
	n := v.Order()
	t := newTree(n, src)
	t.dist[src] = 0
	h := pqueue.New(n)
	h.Push(int(src), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > t.dist[u] {
			continue
		}
		v.VisitArcs(u, func(a graph.Arc) bool {
			w := v.Edge(a.Edge).W
			nd := du + w
			switch {
			case nd < t.dist[a.To]:
				t.dist[a.To] = nd
				t.hops[a.To] = t.hops[u] + 1
				t.parent[a.To] = u
				t.parentE[a.To] = a.Edge
				h.PushOrDecrease(int(a.To), nd)
			case nd == t.dist[a.To]:
				if betterParent(t.hops[u]+1, u, a.Edge, t.hops[a.To], t.parent[a.To], t.parentE[a.To]) {
					t.hops[a.To] = t.hops[u] + 1
					t.parent[a.To] = u
					t.parentE[a.To] = a.Edge
				}
			}
			return true
		})
	}
	return t
}

func referenceDistTo(v graph.View, s, t graph.NodeID) (float64, int, bool) {
	if s == t {
		return 0, 0, true
	}
	if v.UnitWeights() {
		n := v.Order()
		distv := make([]int32, n)
		for i := range distv {
			distv[i] = -1
		}
		distv[s] = 0
		queue := []graph.NodeID{s}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			found := false
			v.VisitArcs(u, func(a graph.Arc) bool {
				if distv[a.To] == -1 {
					distv[a.To] = distv[u] + 1
					if a.To == t {
						found = true
						return false
					}
					queue = append(queue, a.To)
				}
				return true
			})
			if found {
				return float64(distv[t]), int(distv[t]), true
			}
		}
		return Unreachable, 0, false
	}
	n := v.Order()
	dist := make([]float64, n)
	hops := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	h := pqueue.New(n)
	h.Push(int(s), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > dist[u] {
			continue
		}
		if u == t {
			return dist[t], int(hops[t]), true
		}
		v.VisitArcs(u, func(a graph.Arc) bool {
			nd := du + v.Edge(a.Edge).W
			switch {
			case nd < dist[a.To]:
				dist[a.To] = nd
				hops[a.To] = hops[u] + 1
				h.PushOrDecrease(int(a.To), nd)
			case nd == dist[a.To] && hops[u]+1 < hops[a.To]:
				hops[a.To] = hops[u] + 1
			}
			return true
		})
	}
	return Unreachable, 0, false
}

// sameTree reports whether two trees agree exactly on every node.
func sameTree(t *testing.T, got, want *Tree, n int, context string) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("%s: source %d != %d", context, got.Source, want.Source)
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if got.Dist(id) != want.Dist(id) {
			t.Fatalf("%s: dist[%d] = %v, want %v", context, v, got.Dist(id), want.Dist(id))
		}
		if got.Hops(id) != want.Hops(id) {
			t.Fatalf("%s: hops[%d] = %d, want %d", context, v, got.Hops(id), want.Hops(id))
		}
		gp, ge := got.Parent(id)
		wp, we := want.Parent(id)
		if gp != wp || ge != we {
			t.Fatalf("%s: parent[%d] = (%d,%d), want (%d,%d)", context, v, gp, ge, wp, we)
		}
	}
}

// randomView wraps a random graph in a random overlay: sometimes bare,
// sometimes a FailureView with random removed edges and nodes, sometimes
// padded on top.
func randomView(rng *rand.Rand, g *graph.Graph) graph.View {
	var v graph.View = g
	if rng.Intn(2) == 0 {
		var edges []graph.EdgeID
		var nodes []graph.NodeID
		for i := 0; i < g.Size(); i++ {
			if rng.Intn(8) == 0 {
				edges = append(edges, graph.EdgeID(i))
			}
		}
		for i := 0; i < g.Order(); i++ {
			if rng.Intn(12) == 0 {
				nodes = append(nodes, graph.NodeID(i))
			}
		}
		v = graph.Fail(g, edges, nodes)
	}
	if rng.Intn(3) == 0 {
		v = Padded(v, PaddingFor(g))
	}
	return v
}

// TestQuickKernelMatchesReference is the old-vs-new equivalence property:
// the CSR/solver Compute must reproduce the reference trees exactly on
// random graphs under random failure overlays and padding, and DistTo and
// BidiDist must agree with their references too.
func TestQuickKernelMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		weights := intWeights(rng, 5)
		if rng.Intn(2) == 0 {
			weights = func() float64 { return 1 } // exercise the BFS path too
		}
		g := randomConnected(rng, n, rng.Intn(2*n), weights)
		v := randomView(rng, g)
		for trial := 0; trial < 4; trial++ {
			src := graph.NodeID(rng.Intn(n))
			got := Compute(v, src)
			want := referenceCompute(v, src)
			sameTree(t, got, want, n, "compute")

			dst := graph.NodeID(rng.Intn(n))
			gd, gh, gok := DistTo(v, src, dst)
			wd, wh, wok := referenceDistTo(v, src, dst)
			if gd != wd || gh != wh || gok != wok {
				t.Fatalf("DistTo(%d,%d) = (%v,%d,%v), want (%v,%d,%v)", src, dst, gd, gh, gok, wd, wh, wok)
			}
			// Skip padded views for the BidiDist cross-check: integer
			// weights sum exactly in float64 so the bidirectional meeting
			// sum equals the forward tree distance, but padded
			// perturbations accumulate in a different order on the
			// backward frontier and may differ in the last ulp.
			if _, padded := v.(*PaddedView); !padded {
				bd, bok := BidiDist(v, src, dst)
				if bok != wok || (bok && bd != want.Dist(dst)) {
					t.Fatalf("BidiDist(%d,%d) = (%v,%v), want (%v,%v)", src, dst, bd, bok, want.Dist(dst), wok)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKernelMatchesReferenceOnGenerators runs the same equivalence over
// every topology generator in internal/topology, bare and under a failure
// overlay.
func TestKernelMatchesReferenceOnGenerators(t *testing.T) {
	gens := []struct {
		name string
		g    *graph.Graph
	}{
		{"Line", topology.Line(12)},
		{"Ring", topology.Ring(9)},
		{"Grid", topology.Grid(4, 5)},
		{"Complete", topology.Complete(7)},
		{"RandomTree", topology.RandomTree(30, 3)},
		{"Waxman", topology.Waxman(40, 0.7, 0.4, 3)},
		{"BarabasiAlbert", topology.BarabasiAlbert(40, 2, 3)},
		{"PowerLawExtra", topology.PowerLawExtra(40, 2, 100, 3)},
		{"ISP", topology.ISP(topology.DefaultISP(), 3)},
		{"ISPUnit", topology.UnitWeightCopy(topology.ISP(topology.DefaultISP(), 3))},
		{"ISPAsym", topology.AsymmetricCopy(topology.ISP(topology.DefaultISP(), 3), 3, 2)},
		{"PaperAS", topology.PaperAS(3, 0.05)},
		{"PaperInternet", topology.PaperInternet(3, 0.01)},
		{"Comb", topology.Comb(3).G},
		{"WeightedTight", topology.WeightedTight(3).G},
		{"ParallelChain", topology.ParallelChain(4)},
		{"DirectedCounterexample", topology.DirectedCounterexample(3).G},
	}
	for _, tc := range gens {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			rng := rand.New(rand.NewSource(42))
			views := []struct {
				name string
				v    graph.View
			}{
				{"bare", g},
				{"failed", graph.Fail(g,
					[]graph.EdgeID{0, graph.EdgeID(g.Size() / 2)},
					[]graph.NodeID{graph.NodeID(g.Order() - 1)})},
			}
			if !g.Directed() {
				views = append(views, struct {
					name string
					v    graph.View
				}{"padded", Padded(g, PaddingFor(g))})
			}
			for _, vc := range views {
				for trial := 0; trial < 4; trial++ {
					src := graph.NodeID(rng.Intn(g.Order()))
					got := Compute(vc.v, src)
					want := referenceCompute(vc.v, src)
					sameTree(t, got, want, g.Order(), tc.name+"/"+vc.name)
				}
			}
		})
	}
}

// TestSolverReuseAcrossViews reuses a single solver across views of
// different graphs and sizes, interleaved, checking against references.
func TestSolverReuseAcrossViews(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSolver(0)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		g := randomConnected(rng, n, rng.Intn(2*n), intWeights(rng, 4))
		v := randomView(rng, g)
		src := graph.NodeID(rng.Intn(n))
		s.Solve(v, src)
		want := referenceCompute(v, src)
		sameTree(t, s.Tree(), want, n, "reused solver")
		// Spot-check the accessor views against the materialized tree.
		probe := graph.NodeID(rng.Intn(n))
		if s.Dist(probe) != want.Dist(probe) || s.Hops(probe) != want.Hops(probe) {
			t.Fatalf("solver accessors diverge at %d", probe)
		}
		sp, se := s.Parent(probe)
		wp, we := want.Parent(probe)
		if sp != wp || se != we {
			t.Fatalf("solver Parent(%d) = (%d,%d), want (%d,%d)", probe, sp, se, wp, we)
		}
		gp, gok := s.PathTo(probe)
		pp, pok := want.PathTo(probe)
		if gok != pok || (gok && !gp.Equal(pp)) {
			t.Fatalf("solver PathTo(%d) = %v,%v want %v,%v", probe, gp, gok, pp, pok)
		}
	}
}

// TestSolverGenerationWraparound forces the generation counter over the
// uint32 boundary and checks stale labels do not leak through.
func TestSolverGenerationWraparound(t *testing.T) {
	g := lineGraph(5)
	s := NewSolver(g.Order())
	s.Solve(g, 0)
	s.cur = ^uint32(0) - 1 // two solves away from wrapping
	for i := 0; i < 4; i++ {
		src := graph.NodeID(i % g.Order())
		s.Solve(g, src)
		sameTree(t, s.Tree(), referenceCompute(g, src), g.Order(), "wraparound")
	}
}

// TestSolverRemovedSource matches the reference on a failure view whose
// source or target is itself removed.
func TestSolverRemovedSource(t *testing.T) {
	g := lineGraph(4)
	fv := graph.FailNodes(g, 1)
	for src := 0; src < 4; src++ {
		got := Compute(fv, graph.NodeID(src))
		want := referenceCompute(fv, graph.NodeID(src))
		sameTree(t, got, want, 4, "removed source")
	}
	if _, _, ok := DistTo(fv, 1, 3); ok {
		t.Error("DistTo from removed source should fail")
	}
	if _, ok := BidiDist(fv, 0, 1); ok {
		t.Error("BidiDist to removed target should fail")
	}
	if d, ok := BidiDist(fv, 1, 1); !ok || d != 0 {
		t.Errorf("BidiDist(removed, same) = %v,%v; want 0,true", d, ok)
	}
}

// fallbackView hides the concrete type of a view so CompileView fails and
// the solver exercises its generic path.
type fallbackView struct{ graph.View }

func TestSolverGenericFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		unit := rng.Intn(2) == 0
		w := intWeights(rng, 5)
		if unit {
			w = func() float64 { return 1 }
		}
		g := randomConnected(rng, n, rng.Intn(n), w)
		v := fallbackView{g}
		if _, _, ok := compileView(v); ok {
			t.Fatal("fallbackView unexpectedly compiled")
		}
		src := graph.NodeID(rng.Intn(n))
		sameTree(t, Compute(v, src), referenceCompute(g, src), n, "generic fallback")
		dst := graph.NodeID(rng.Intn(n))
		gd, gh, gok := DistTo(v, src, dst)
		wd, wh, wok := referenceDistTo(g, src, dst)
		if gd != wd || gh != wh || gok != wok {
			t.Fatalf("generic DistTo = (%v,%d,%v), want (%v,%d,%v)", gd, gh, gok, wd, wh, wok)
		}
		bd, bok := BidiDist(v, src, dst)
		if bok != wok || (bok && bd != wd) {
			t.Fatalf("generic BidiDist = (%v,%v), want (%v,%v)", bd, bok, wd, wok)
		}
	}
}

// TestOracleClockEviction: under a cap, repeatedly hit trees keep their
// reference bits set and survive the sweep; cold trees are evicted first.
func TestOracleClockEviction(t *testing.T) {
	g := lineGraph(10)
	o := NewOracle(g)
	o.SetCap(3)
	o.Tree(0)
	o.Tree(1)
	o.Tree(2)
	// Make 0 hot: its ref bit is set by the extra hit.
	o.Tree(0)
	// Inserting 3 must evict someone; the clock clears 0's bit but spares
	// it, evicting the first cold entry (1).
	o.Tree(3)
	if o.CachedTrees() != 3 {
		t.Fatalf("CachedTrees = %d, want 3", o.CachedTrees())
	}
	o.mu.RLock()
	_, has0 := o.trees[0]
	_, has1 := o.trees[1]
	o.mu.RUnlock()
	if !has0 {
		t.Error("hot tree 0 was evicted before cold trees")
	}
	if has1 {
		t.Error("cold tree 1 survived while the cache is full")
	}
}

func TestOracleSetCapShrinks(t *testing.T) {
	g := lineGraph(12)
	o := NewOracle(g)
	for s := 0; s < 8; s++ {
		o.Tree(graph.NodeID(s))
	}
	o.SetCap(3)
	if got := o.CachedTrees(); got != 3 {
		t.Fatalf("CachedTrees after shrink = %d, want 3", got)
	}
	// The cap keeps holding on subsequent inserts.
	o.Tree(9)
	o.Tree(10)
	if got := o.CachedTrees(); got != 3 {
		t.Fatalf("CachedTrees after inserts = %d, want 3", got)
	}
}

// TestOracleConcurrentSetCap hammers Tree, SetCap and Precompute from many
// goroutines; run under -race this is the cache's thread-safety proof.
func TestOracleConcurrentSetCap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomConnected(rng, 50, 70, intWeights(rng, 3))
	o := NewOracle(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch {
				case i%17 == 0:
					o.SetCap(1 + (i+w)%7)
				case i%23 == 0:
					o.Precompute([]graph.NodeID{graph.NodeID(i % 50), graph.NodeID((i + w) % 50)}, 2)
				default:
					s := graph.NodeID((i * 13) % 50)
					d := graph.NodeID((i*7 + w) % 50)
					if o.Dist(s, d) == Unreachable {
						t.Error("unreachable in connected graph")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if cached, cap := o.CachedTrees(), 7; cached > cap {
		t.Errorf("cache exceeded cap: %d > %d", cached, cap)
	}
}

func TestOraclePrecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(rng, 40, 60, intWeights(rng, 4))
	o := NewOracle(g)
	sources := []graph.NodeID{0, 1, 2, 3, 3, 2} // duplicates tolerated
	if n := o.Precompute(sources, 4); n != 4 {
		t.Errorf("Precompute computed %d trees, want 4", n)
	}
	if o.CachedTrees() != 4 {
		t.Errorf("CachedTrees = %d, want 4", o.CachedTrees())
	}
	if n := o.Precompute(sources, 4); n != 0 {
		t.Errorf("second Precompute recomputed %d trees, want 0", n)
	}
	// Warmed trees match direct computation.
	for _, s := range sources {
		sameTree(t, o.Tree(s), referenceCompute(g, s), g.Order(), "precomputed")
	}
	// A capped oracle only warms up to its cap.
	o2 := NewOracle(g)
	o2.SetCap(2)
	if n := o2.Precompute([]graph.NodeID{0, 1, 2, 3}, 2); n != 2 {
		t.Errorf("capped Precompute computed %d trees, want 2", n)
	}
	if o2.CachedTrees() != 2 {
		t.Errorf("capped CachedTrees = %d, want 2", o2.CachedTrees())
	}
}
