package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
)

// lineGraph builds 0-1-2-...-n-1 with unit weights.
func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return g
}

// randomConnected builds a connected random graph: a random spanning tree
// plus extra random edges, with weights drawn from weightFn.
func randomConnected(rng *rand.Rand, n, extra int, weightFn func() float64) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := graph.NodeID(perm[i])
		v := graph.NodeID(perm[rng.Intn(i)])
		g.AddEdge(u, v, weightFn())
	}
	for i := 0; i < extra; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, weightFn())
		}
	}
	return g
}

func intWeights(rng *rand.Rand, max int) func() float64 {
	return func() float64 { return float64(1 + rng.Intn(max)) }
}

func TestLineDistances(t *testing.T) {
	g := lineGraph(5)
	tr := Compute(g, 0)
	for i := 0; i < 5; i++ {
		if got := tr.Dist(graph.NodeID(i)); got != float64(i) {
			t.Errorf("Dist(%d) = %v, want %d", i, got, i)
		}
	}
	p, ok := tr.PathTo(4)
	if !ok || p.Hops() != 4 || p.Src() != 0 || p.Dst() != 4 {
		t.Fatalf("PathTo(4) = %v, %v", p, ok)
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	tr := Compute(g, 0)
	if tr.Reached(2) {
		t.Error("node 2 should be unreachable")
	}
	if _, ok := tr.PathTo(2); ok {
		t.Error("PathTo(unreachable) returned a path")
	}
	if tr.Dist(2) != Unreachable {
		t.Errorf("Dist(2) = %v", tr.Dist(2))
	}
	if p, pe := tr.Parent(2); p != -1 || pe != -1 {
		t.Errorf("Parent(unreached) = %d,%d", p, pe)
	}
}

func TestTrivialPathToSource(t *testing.T) {
	g := lineGraph(3)
	tr := Compute(g, 1)
	p, ok := tr.PathTo(1)
	if !ok || !p.IsTrivial() || p.Src() != 1 {
		t.Fatalf("PathTo(source) = %v, %v", p, ok)
	}
}

func TestWeightedShortcut(t *testing.T) {
	// 0-1-2 each weight 1; direct 0-2 weight 3. Shortest 0->2 is via 1.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 3)
	tr := Compute(g, 0)
	if tr.Dist(2) != 2 {
		t.Errorf("Dist(2) = %v, want 2", tr.Dist(2))
	}
	p, _ := tr.PathTo(2)
	if p.Hops() != 2 {
		t.Errorf("path = %v, want 2 hops via node 1", p)
	}
}

func TestParallelEdgePicksCheaper(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	cheap := g.AddEdge(0, 1, 2)
	tr := Compute(g, 0)
	if tr.Dist(1) != 2 {
		t.Errorf("Dist = %v, want 2", tr.Dist(1))
	}
	p, _ := tr.PathTo(1)
	if p.Edges[0] != cheap {
		t.Errorf("path used edge %d, want %d", p.Edges[0], cheap)
	}
}

func TestDirectedRespectsOrientation(t *testing.T) {
	g := graph.NewDirected(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 1, 1)
	tr := Compute(g, 0)
	if tr.Reached(2) {
		t.Error("directed: 2 reachable from 0 against arc direction")
	}
	if !tr.Reached(1) {
		t.Error("directed: 1 should be reachable")
	}
}

func TestFailureViewChangesPath(t *testing.T) {
	// Square 0-1-2-3-0; fail edge 0-1; path 0->1 becomes 0-3-2-1.
	g := graph.New(4)
	e01 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	fv := graph.FailEdges(g, e01)
	tr := Compute(fv, 0)
	if tr.Dist(1) != 3 {
		t.Errorf("Dist(1) after failure = %v, want 3", tr.Dist(1))
	}
	p, _ := tr.PathTo(1)
	if err := p.Validate(fv); err != nil {
		t.Errorf("restored path invalid in view: %v", err)
	}
	if p.HasEdge(e01) {
		t.Error("restored path uses failed edge")
	}
}

func TestBFSAndDijkstraAgreeOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randomConnected(rng, n, rng.Intn(2*n), func() float64 { return 1 })
		if !g.UnitWeights() {
			t.Fatal("expected unit weights")
		}
		src := graph.NodeID(rng.Intn(n))
		bt := bfs(g, src)
		dt := dijkstra(g, src)
		for v := 0; v < n; v++ {
			if bt.Dist(graph.NodeID(v)) != dt.Dist(graph.NodeID(v)) {
				t.Fatalf("trial %d: dist mismatch at %d: bfs %v dijkstra %v",
					trial, v, bt.Dist(graph.NodeID(v)), dt.Dist(graph.NodeID(v)))
			}
		}
	}
}

func TestDeterministicTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 30, 40, intWeights(rng, 4))
	a := Compute(g, 5)
	b := Compute(g, 5)
	for v := 0; v < g.Order(); v++ {
		pa, _ := a.PathTo(graph.NodeID(v))
		pb, _ := b.PathTo(graph.NodeID(v))
		if !pa.Equal(pb) {
			t.Fatalf("nondeterministic tree path to %d: %v vs %v", v, pa, pb)
		}
	}
}

// TestQuickTreePathsAreShortest: every tree path's cost equals the reported
// distance, the path validates, and subpaths of shortest paths are shortest
// (the suffix-closure property RBPC relies on).
func TestQuickTreePathsAreShortest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomConnected(rng, n, rng.Intn(2*n), intWeights(rng, 5))
		src := graph.NodeID(rng.Intn(n))
		tr := Compute(g, src)
		o := NewOracle(g)
		for v := 0; v < n; v++ {
			p, ok := tr.PathTo(graph.NodeID(v))
			if !ok {
				return false // connected graph: everything reachable
			}
			if p.Validate(g) != nil || p.CostIn(g) != tr.Dist(graph.NodeID(v)) {
				return false
			}
			if !p.IsSimple() {
				return false
			}
			// Subpath closure: every contiguous subpath of a shortest path
			// is itself a shortest path between its endpoints.
			for i := 0; i <= p.Hops(); i++ {
				for j := i; j <= p.Hops(); j++ {
					sub := p.SubPath(i, j)
					if sub.CostIn(g) != o.Dist(sub.Src(), sub.Dst()) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTriangleInequality: oracle distances satisfy the triangle
// inequality d(s,t) <= d(s,m) + d(m,t) on undirected graphs.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := randomConnected(rng, n, rng.Intn(2*n), intWeights(rng, 6))
		o := NewOracle(g)
		for trial := 0; trial < 30; trial++ {
			s := graph.NodeID(rng.Intn(n))
			m := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			if o.Dist(s, d) > o.Dist(s, m)+o.Dist(m, d) {
				return false
			}
			// Undirected symmetry.
			if o.Dist(s, d) != o.Dist(d, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOracleMemoizes(t *testing.T) {
	g := lineGraph(6)
	o := NewOracle(g)
	t1 := o.Tree(0)
	t2 := o.Tree(0)
	if t1 != t2 {
		t.Error("oracle recomputed tree for same source")
	}
	if o.CachedTrees() != 1 {
		t.Errorf("CachedTrees = %d, want 1", o.CachedTrees())
	}
	o.Tree(3)
	if o.CachedTrees() != 2 {
		t.Errorf("CachedTrees = %d, want 2", o.CachedTrees())
	}
}

func TestOracleConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnected(rng, 60, 80, intWeights(rng, 3))
	o := NewOracle(g)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				s := graph.NodeID(i % g.Order())
				d := graph.NodeID((i * 7) % g.Order())
				if o.Dist(s, d) == Unreachable {
					t.Error("unreachable in connected graph")
					return
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestIsShortest(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	long := g.AddEdge(0, 2, 5)
	o := NewOracle(g)
	sp, _ := o.Path(0, 2)
	if !o.IsShortest(sp) {
		t.Error("shortest path not recognized")
	}
	direct := graph.Path{Nodes: []graph.NodeID{0, 2}, Edges: []graph.EdgeID{long}}
	if o.IsShortest(direct) {
		t.Error("long direct edge recognized as shortest")
	}
}

func TestCountPathsGrid(t *testing.T) {
	// 2x2 grid: 0-1, 0-2, 1-3, 2-3. Two shortest paths 0->3.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	counts := CountPaths(g, 0)
	want := []uint64{1, 1, 1, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], w)
		}
	}
	if got := MaxShortestPathMultiplicity(g, []graph.NodeID{0, 1, 2, 3}); got != 2 {
		t.Errorf("MaxShortestPathMultiplicity = %d, want 2", got)
	}
}

func TestCountPathsUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	counts := CountPaths(g, 0)
	if counts[2] != 0 {
		t.Errorf("counts[unreachable] = %d, want 0", counts[2])
	}
}

func TestCountPathsParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	if counts := CountPaths(g, 0); counts[1] != 2 {
		t.Errorf("parallel shortest edges counted as %d, want 2", counts[1])
	}
}

func TestSatAdd(t *testing.T) {
	const max = ^uint64(0)
	if got := satAdd(max-1, 5); got != max {
		t.Errorf("satAdd overflow = %d, want saturation", got)
	}
	if got := satAdd(3, 4); got != 7 {
		t.Errorf("satAdd(3,4) = %d", got)
	}
}

func TestPaddedUniquePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		g := randomConnected(rng, n, n, func() float64 { return 1 })
		pv := Padded(g, PaddingFor(g))
		for s := 0; s < n; s++ {
			for _, c := range CountPaths(pv, graph.NodeID(s)) {
				if c > 1 {
					t.Fatalf("trial %d: padded view has %d shortest paths to some node", trial, c)
				}
			}
		}
	}
}

func TestPaddedPreservesOrder(t *testing.T) {
	// The padded shortest path must still be an unpadded shortest path.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		g := randomConnected(rng, n, n, intWeights(rng, 4))
		pv := Padded(g, PaddingFor(g))
		o := NewOracle(g)
		s := graph.NodeID(rng.Intn(n))
		pt := Compute(pv, s)
		for v := 0; v < n; v++ {
			p, ok := pt.PathTo(graph.NodeID(v))
			if !ok {
				t.Fatal("unreachable in connected graph")
			}
			if p.CostIn(g) != o.Dist(s, graph.NodeID(v)) {
				t.Fatalf("padded path cost %v != true distance %v", p.CostIn(g), o.Dist(s, graph.NodeID(v)))
			}
		}
	}
}

func TestPaddedViewBasics(t *testing.T) {
	g := lineGraph(3)
	pv := Padded(g, 0.01)
	if pv.UnitWeights() {
		t.Error("padded view claims unit weights")
	}
	if pv.Order() != 3 || pv.Directed() {
		t.Error("padded view basics wrong")
	}
	e := pv.Edge(0)
	if e.W <= 1 || e.W >= 1.01 {
		t.Errorf("padded weight %v outside (1, 1.01)", e.W)
	}
	if pv.Edge(0).W != e.W {
		t.Error("padding not deterministic")
	}
	if PaddingFor(graph.New(0)) != 0 {
		t.Error("PaddingFor(empty) != 0")
	}
}

func TestShortestPathConvenience(t *testing.T) {
	g := lineGraph(4)
	p, ok := ShortestPath(g, 0, 3)
	if !ok || p.Hops() != 3 {
		t.Fatalf("ShortestPath = %v, %v", p, ok)
	}
}

func BenchmarkDijkstraMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 2000, 4000, intWeights(rng, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, graph.NodeID(i%g.Order()))
	}
}

func BenchmarkBFSMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 2000, 4000, func() float64 { return 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, graph.NodeID(i%g.Order()))
	}
}
