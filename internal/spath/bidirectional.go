package spath

import (
	"rbpc/internal/graph"
	"rbpc/internal/pqueue"
)

// BidiDist returns the shortest-path distance from s to t on an
// UNDIRECTED view using bidirectional Dijkstra: two frontiers grow from s
// and t and the search stops when their radii together exceed the best
// meeting point. On large sparse graphs point queries explore roughly the
// square root of the nodes a unidirectional search settles, which is why
// it backs the interactive tooling; the evaluation keeps full trees (it
// needs the whole distance vector anyway).
//
// Kernel-compilable views (graphs, failure overlays, padded wrappers) run
// on a pair of pooled Solvers over the flat CSR adjacency; other views run
// the generic implementation.
//
// The boolean result is false if t is unreachable. Directed views are
// rejected by panic: the reverse frontier would need reverse adjacency,
// which undirected RBPC never requires.
func BidiDist(v graph.View, s, t graph.NodeID) (float64, bool) {
	if v.Directed() {
		panic("spath: BidiDist requires an undirected view")
	}
	if s == t {
		return 0, true
	}
	k, eps, ok := compileView(v)
	if !ok {
		return bidiGeneric(v, s, t)
	}
	if k.NodeRemoved(s) || k.NodeRemoved(t) {
		return Unreachable, false
	}
	n := v.Order()
	f := AcquireSolver(n)
	b := AcquireSolver(n)
	defer ReleaseSolver(f)
	defer ReleaseSolver(b)
	f.begin(n, s)
	b.begin(n, t)
	f.label(s)
	f.dist[s] = 0
	b.label(t)
	b.dist[t] = 0
	f.heap.Push(int(s), 0)
	b.heap.Push(int(t), 0)

	best := Unreachable
	radiusF, radiusB := 0.0, 0.0
	for f.heap.Len() > 0 && b.heap.Len() > 0 {
		// Alternate by smaller frontier radius.
		_, pf := f.heap.Peek()
		_, pb := b.heap.Peek()
		if pf <= pb {
			radiusF = f.bidiExpand(&k, eps, b, &best)
		} else {
			radiusB = b.bidiExpand(&k, eps, f, &best)
		}
		if radiusF+radiusB >= best {
			return best, true
		}
	}
	// One side exhausted: finish with whatever meeting point was found.
	if best != Unreachable {
		return best, true
	}
	return Unreachable, false
}

// bidiExpand settles one node of s's frontier against the opposite
// frontier o, updating *best with any meeting point found, and returns the
// settled radius. The solver's mark stamps play the settled-flag role.
func (s *Solver) bidiExpand(k *graph.Kernel, eps float64, o *Solver, best *float64) float64 {
	ui, du := s.heap.Pop()
	u := graph.NodeID(ui)
	if s.marked(u) {
		return du
	}
	s.setMark(u)
	eoff, noff := k.EdgeOff, k.NodeOff
	for _, a := range k.CSR.Arcs(u) {
		if eoff != nil && eoff[uint32(a.Edge)>>6]&(1<<(uint32(a.Edge)&63)) != 0 {
			continue
		}
		to := a.To
		if noff != nil && noff[uint32(to)>>6]&(1<<(uint32(to)&63)) != 0 {
			continue
		}
		w := a.W
		if eps != 0 {
			w += eps * unitHash(uint64(a.Edge))
		}
		nd := du + w
		if s.gen[to] != s.cur {
			s.label(to)
		}
		if nd < s.dist[to] {
			s.dist[to] = nd
			s.heap.PushOrDecrease(int(to), nd)
		}
		// Meeting point: a settled-or-labeled node on the other side.
		if o.labeled(to) && o.dist[to] != Unreachable && nd+o.dist[to] < *best {
			*best = nd + o.dist[to]
		}
	}
	if o.labeled(u) && o.dist[u] != Unreachable && du+o.dist[u] < *best {
		*best = du + o.dist[u]
	}
	return du
}

// bidiGeneric is the interface-based implementation for views without a
// compiled kernel.
func bidiGeneric(v graph.View, s, t graph.NodeID) (float64, bool) {
	n := v.Order()
	distF := make([]float64, n)
	distB := make([]float64, n)
	for i := range distF {
		distF[i] = Unreachable
		distB[i] = Unreachable
	}
	distF[s] = 0
	distB[t] = 0
	hf := pqueue.New(n)
	hb := pqueue.New(n)
	hf.Push(int(s), 0)
	hb.Push(int(t), 0)
	settledF := make([]bool, n)
	settledB := make([]bool, n)

	best := Unreachable
	radiusF, radiusB := 0.0, 0.0

	expand := func(h *pqueue.IndexedMinHeap, dist, other []float64, settled []bool) float64 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if settled[u] {
			return du
		}
		settled[u] = true
		v.VisitArcs(u, func(a graph.Arc) bool {
			w := v.Edge(a.Edge).W
			nd := du + w
			if nd < dist[a.To] {
				dist[a.To] = nd
				h.PushOrDecrease(int(a.To), nd)
			}
			// Meeting point: a settled-or-labeled node on the other side.
			if other[a.To] != Unreachable && nd+other[a.To] < best {
				best = nd + other[a.To]
			}
			return true
		})
		if du+other[u] < best && other[u] != Unreachable {
			best = du + other[u]
		}
		return du
	}

	for hf.Len() > 0 && hb.Len() > 0 {
		if _, pf := hf.Peek(); true {
			if _, pb := hb.Peek(); pf <= pb {
				radiusF = expand(hf, distF, distB, settledF)
			} else {
				radiusB = expand(hb, distB, distF, settledB)
			}
		}
		if radiusF+radiusB >= best {
			return best, true
		}
	}
	if best != Unreachable {
		return best, true
	}
	return Unreachable, false
}
