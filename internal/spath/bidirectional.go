package spath

import (
	"rbpc/internal/graph"
	"rbpc/internal/pqueue"
)

// BidiDist returns the shortest-path distance from s to t on an
// UNDIRECTED view using bidirectional Dijkstra: two frontiers grow from s
// and t and the search stops when their radii together exceed the best
// meeting point. On large sparse graphs point queries explore roughly the
// square root of the nodes a unidirectional search settles, which is why
// it backs the interactive tooling; the evaluation keeps full trees (it
// needs the whole distance vector anyway).
//
// The boolean result is false if t is unreachable. Directed views are
// rejected by panic: the reverse frontier would need reverse adjacency,
// which undirected RBPC never requires.
func BidiDist(v graph.View, s, t graph.NodeID) (float64, bool) {
	if v.Directed() {
		panic("spath: BidiDist requires an undirected view")
	}
	if s == t {
		return 0, true
	}
	n := v.Order()
	distF := make([]float64, n)
	distB := make([]float64, n)
	for i := range distF {
		distF[i] = Unreachable
		distB[i] = Unreachable
	}
	distF[s] = 0
	distB[t] = 0
	hf := pqueue.New(n)
	hb := pqueue.New(n)
	hf.Push(int(s), 0)
	hb.Push(int(t), 0)
	settledF := make([]bool, n)
	settledB := make([]bool, n)

	best := Unreachable
	radiusF, radiusB := 0.0, 0.0

	expand := func(h *pqueue.IndexedMinHeap, dist, other []float64, settled, otherSettled []bool) float64 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if settled[u] {
			return du
		}
		settled[u] = true
		v.VisitArcs(u, func(a graph.Arc) bool {
			w := v.Edge(a.Edge).W
			nd := du + w
			if nd < dist[a.To] {
				dist[a.To] = nd
				h.PushOrDecrease(int(a.To), nd)
			}
			// Meeting point: a settled-or-labeled node on the other side.
			if other[a.To] != Unreachable && nd+other[a.To] < best {
				best = nd + other[a.To]
			}
			return true
		})
		if du+other[u] < best && other[u] != Unreachable {
			best = du + other[u]
		}
		return du
	}

	for hf.Len() > 0 && hb.Len() > 0 {
		// Alternate by smaller frontier radius.
		if _, pf := hf.Peek(); true {
			if _, pb := hb.Peek(); pf <= pb {
				radiusF = expand(hf, distF, distB, settledF, settledB)
			} else {
				radiusB = expand(hb, distB, distF, settledB, settledF)
			}
		}
		if radiusF+radiusB >= best {
			return best, true
		}
	}
	// One side exhausted: finish with whatever meeting point was found.
	if best != Unreachable {
		return best, true
	}
	return Unreachable, false
}
