package spath

import (
	"fmt"

	"rbpc/internal/graph"
)

// Matrix is a dense all-pairs shortest-path table: O(1) distance queries
// at O(n^2) memory. It is the right trade for topologies up to a couple
// thousand nodes (the ISP and scaled stand-ins); the memoized Oracle
// covers the paper's 40k-node graph, where a dense table would need
// 13 GB. BenchmarkAblationOracle quantifies the crossover.
type Matrix struct {
	n    int
	dist []float64
	hops []int32
}

// maxMatrixNodes guards against accidentally materializing gigabytes.
const maxMatrixNodes = 5000

// AllPairs computes the dense table by running SSSP from every node.
func AllPairs(v graph.View) (*Matrix, error) {
	n := v.Order()
	if n > maxMatrixNodes {
		return nil, fmt.Errorf("spath: AllPairs on %d nodes would need %d MB; use an Oracle",
			n, (n*n*12)>>20)
	}
	m := &Matrix{
		n:    n,
		dist: make([]float64, n*n),
		hops: make([]int32, n*n),
	}
	for s := 0; s < n; s++ {
		t := Compute(v, graph.NodeID(s))
		row := s * n
		for d := 0; d < n; d++ {
			m.dist[row+d] = t.Dist(graph.NodeID(d))
			m.hops[row+d] = int32(t.Hops(graph.NodeID(d)))
		}
	}
	return m, nil
}

// Dist returns the shortest-path distance, or Unreachable.
func (m *Matrix) Dist(s, d graph.NodeID) float64 { return m.dist[int(s)*m.n+int(d)] }

// Hops returns the hop count of the canonical shortest path; meaningful
// only when Dist != Unreachable.
func (m *Matrix) Hops(s, d graph.NodeID) int { return int(m.hops[int(s)*m.n+int(d)]) }

// Order returns the node count.
func (m *Matrix) Order() int { return m.n }

// Eccentricity returns the greatest finite distance from s, and whether s
// reaches anything.
func (m *Matrix) Eccentricity(s graph.NodeID) (float64, bool) {
	var ecc float64
	seen := false
	row := int(s) * m.n
	for d := 0; d < m.n; d++ {
		if graph.NodeID(d) == s {
			continue
		}
		dd := m.dist[row+d]
		if dd == Unreachable {
			continue
		}
		seen = true
		if dd > ecc {
			ecc = dd
		}
	}
	return ecc, seen
}

// Diameter returns the largest finite pairwise distance.
func (m *Matrix) Diameter() float64 {
	var dia float64
	for s := 0; s < m.n; s++ {
		if e, ok := m.Eccentricity(graph.NodeID(s)); ok && e > dia {
			dia = e
		}
	}
	return dia
}
