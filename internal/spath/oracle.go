package spath

import (
	"sync"

	"rbpc/internal/graph"
)

// Oracle memoizes shortest-path trees per source over a fixed view. It is
// the component that keeps the 40k-node Internet topology tractable: the
// paper's methodology samples source-destination pairs, so only the sampled
// sources' trees are ever computed, instead of a quadratic all-pairs matrix.
//
// Oracle is safe for concurrent use.
type Oracle struct {
	view graph.View

	mu    sync.RWMutex
	trees map[graph.NodeID]*Tree
	cap   int
}

// NewOracle returns an Oracle over v. The view must not change afterwards
// (build a new Oracle per failure view).
func NewOracle(v graph.View) *Oracle {
	return &Oracle{view: v, trees: make(map[graph.NodeID]*Tree)}
}

// View returns the view the oracle answers for.
func (o *Oracle) View() graph.View { return o.view }

// Tree returns the (memoized) shortest-path tree rooted at s.
func (o *Oracle) Tree(s graph.NodeID) *Tree {
	o.mu.RLock()
	t := o.trees[s]
	o.mu.RUnlock()
	if t != nil {
		return t
	}
	t = Compute(o.view, s)
	o.mu.Lock()
	// Another goroutine may have raced us; keep the first stored tree so
	// callers always observe one consistent tree per source.
	if prev, ok := o.trees[s]; ok {
		t = prev
	} else {
		if o.cap > 0 && len(o.trees) >= o.cap {
			// Evict an arbitrary tree: memoization is a cache, and on the
			// 40k-node Internet topology unbounded retention would hold
			// hundreds of megabytes.
			for k := range o.trees {
				delete(o.trees, k)
				break
			}
		}
		o.trees[s] = t
	}
	o.mu.Unlock()
	return t
}

// SetCap bounds the number of memoized trees (0 = unbounded). When full,
// an arbitrary tree is evicted to admit a new one.
func (o *Oracle) SetCap(n int) {
	o.mu.Lock()
	o.cap = n
	o.mu.Unlock()
}

// Dist returns the shortest-path distance from s to d, or Unreachable.
func (o *Oracle) Dist(s, d graph.NodeID) float64 {
	return o.Tree(s).Dist(d)
}

// Path returns the canonical shortest path from s to d.
func (o *Oracle) Path(s, d graph.NodeID) (graph.Path, bool) {
	return o.Tree(s).PathTo(d)
}

// IsShortest reports whether p is a shortest path between its endpoints
// under the oracle's view, i.e. whether its cost equals the shortest-path
// distance. Costs are compared exactly; views with padded weights remain
// consistent because both sides are computed from the same perturbed
// weights.
func (o *Oracle) IsShortest(p graph.Path) bool {
	return p.CostIn(o.view) == o.Dist(p.Src(), p.Dst())
}

// CachedTrees reports how many source trees are currently memoized.
func (o *Oracle) CachedTrees() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.trees)
}
