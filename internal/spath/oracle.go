package spath

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rbpc/internal/graph"
)

// oracleEntry is one cached tree plus its CLOCK reference bit. The bit is
// set on every hit (outside the oracle lock) and cleared by the sweeping
// hand, giving recently used trees a second chance before eviction.
type oracleEntry struct {
	tree *Tree
	ref  atomic.Bool
}

// Oracle memoizes shortest-path trees per source over a fixed view. It is
// the component that keeps the 40k-node Internet topology tractable: the
// paper's methodology samples source-destination pairs, so only the sampled
// sources' trees are ever computed, instead of a quadratic all-pairs matrix.
//
// When capped (SetCap), eviction is CLOCK second-chance over insertion
// order: the hand sweeps the ring, clears reference bits of recently hit
// trees, and evicts the first tree not hit since the last sweep. This keeps
// hot trees (sampled sources queried repeatedly) resident, unlike the
// previous arbitrary-map-key eviction, and is deterministic given the same
// access sequence.
//
// Oracle is safe for concurrent use.
type Oracle struct {
	view graph.View

	mu    sync.RWMutex
	trees map[graph.NodeID]*oracleEntry //rbpc:guardedby mu
	// ring holds the cached sources in insertion order (the clock ring);
	// hand is the next ring position the clock hand examines.
	ring []graph.NodeID //rbpc:guardedby mu
	hand int            //rbpc:guardedby mu
	cap  int            //rbpc:guardedby mu
}

// NewOracle returns an Oracle over v. The view must not change afterwards
// (build a new Oracle per failure view).
func NewOracle(v graph.View) *Oracle {
	return &Oracle{view: v, trees: make(map[graph.NodeID]*oracleEntry)}
}

// View returns the view the oracle answers for.
func (o *Oracle) View() graph.View { return o.view }

// Tree returns the (memoized) shortest-path tree rooted at s.
func (o *Oracle) Tree(s graph.NodeID) *Tree {
	o.mu.RLock()
	e := o.trees[s]
	o.mu.RUnlock()
	if e != nil {
		e.ref.Store(true)
		return e.tree
	}
	t := Compute(o.view, s)
	o.mu.Lock()
	// Another goroutine may have raced us; keep the first stored tree so
	// callers always observe one consistent tree per source.
	if prev, ok := o.trees[s]; ok {
		o.mu.Unlock()
		prev.ref.Store(true)
		return prev.tree
	}
	if o.cap > 0 {
		for len(o.trees) >= o.cap {
			o.evictOneLocked()
		}
	}
	o.trees[s] = &oracleEntry{tree: t}
	o.ring = append(o.ring, s)
	o.mu.Unlock()
	return t
}

// evictOneLocked advances the clock hand until it finds a tree whose
// reference bit is clear, clearing bits as it passes, and evicts it. Must
// be called with o.mu held and len(o.trees) > 0.
//
//rbpc:locked
func (o *Oracle) evictOneLocked() {
	for {
		if o.hand >= len(o.ring) {
			o.hand = 0
		}
		s := o.ring[o.hand]
		e := o.trees[s]
		if e.ref.CompareAndSwap(true, false) {
			o.hand++ // second chance: recently hit, spare it this sweep
			continue
		}
		delete(o.trees, s)
		o.ring = append(o.ring[:o.hand], o.ring[o.hand+1:]...)
		return
	}
}

// SetCap bounds the number of memoized trees (0 = unbounded). Shrinking
// below the current population immediately evicts down to the new cap via
// the clock sweep, so the cache never exceeds the cap once SetCap returns.
func (o *Oracle) SetCap(n int) {
	o.mu.Lock()
	o.cap = n
	if n > 0 {
		for len(o.trees) > n {
			o.evictOneLocked()
		}
	}
	o.mu.Unlock()
}

// Precompute warms the cache with the trees of the given sources in
// parallel, using the given number of workers (<= 0 means GOMAXPROCS).
// Duplicate and already-cached sources are skipped; when the oracle is
// capped, only the first cap sources are warmed (warming more would evict
// the earlier ones before they are ever read). It returns the number of
// trees computed.
//
// Evaluation drivers call this before fanning scenario workers out, so the
// workers hit a warm cache instead of racing to compute the same trees.
func (o *Oracle) Precompute(sources []graph.NodeID, workers int) int {
	o.mu.RLock()
	capLeft := -1 // unbounded
	if o.cap > 0 {
		capLeft = o.cap - len(o.trees)
	}
	todo := make([]graph.NodeID, 0, len(sources))
	seen := make(map[graph.NodeID]bool, len(sources))
	for _, s := range sources {
		if seen[s] || o.trees[s] != nil {
			continue
		}
		if capLeft == 0 {
			break
		}
		if capLeft > 0 {
			capLeft--
		}
		seen[s] = true
		todo = append(todo, s)
	}
	o.mu.RUnlock()
	if len(todo) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, s := range todo {
			o.Tree(s)
		}
		return len(todo)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(todo) {
					return
				}
				o.Tree(todo[i])
			}
		}()
	}
	wg.Wait()
	return len(todo)
}

// adoptSlack scales the float-noise margin AdoptFrom allows when deciding
// whether a restored edge could tie an existing distance: near-ties are
// conservatively treated as disturbances and the tree is recomputed.
const adoptSlack = 1e-9

// AdoptFrom seeds o with every cached tree of prev that provably remains
// the canonical shortest-path tree under o's view, which must differ from
// prev's exactly by failing the `removed` edges and restoring the
// `repaired` ones (weights and endpoints as in the underlying graph). A
// tree carries over when it uses no removed edge (so its paths — and
// therefore all distances — survive) and no repaired edge improves or
// ties a distance at its endpoints (so no new parent candidate appears
// anywhere, by induction over the restored edges). Trees failing either
// test are simply not adopted; the oracle recomputes them on demand.
//
// It returns the number of trees adopted. This is what makes incremental
// epoch builds cheap for the distance oracle: across a small failure
// burst almost every cached tree is reusable as-is.
func (o *Oracle) AdoptFrom(prev *Oracle, removed []graph.EdgeID, repaired []graph.Edge) int {
	if prev == nil {
		return 0
	}
	down := make(map[graph.EdgeID]bool, len(removed))
	for _, e := range removed {
		down[e] = true
	}
	prev.mu.RLock()
	cands := make([]*Tree, 0, len(prev.trees))
	for _, e := range prev.trees {
		cands = append(cands, e.tree)
	}
	prev.mu.RUnlock()

	keep := cands[:0]
	for _, t := range cands {
		if t.UsesAny(down) {
			continue
		}
		ok := true
		for _, e := range repaired {
			if t.DisturbedBy(e, adoptSlack*(1+e.W)) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, t)
		}
	}

	adopted := 0
	o.mu.Lock()
	for _, t := range keep {
		if _, dup := o.trees[t.Source]; dup {
			continue
		}
		if o.cap > 0 {
			for len(o.trees) >= o.cap {
				o.evictOneLocked()
			}
		}
		o.trees[t.Source] = &oracleEntry{tree: t}
		o.ring = append(o.ring, t.Source)
		adopted++
	}
	o.mu.Unlock()
	return adopted
}

// Dist returns the shortest-path distance from s to d, or Unreachable.
func (o *Oracle) Dist(s, d graph.NodeID) float64 {
	return o.Tree(s).Dist(d)
}

// Path returns the canonical shortest path from s to d.
func (o *Oracle) Path(s, d graph.NodeID) (graph.Path, bool) {
	return o.Tree(s).PathTo(d)
}

// IsShortest reports whether p is a shortest path between its endpoints
// under the oracle's view, i.e. whether its cost equals the shortest-path
// distance. Costs are compared exactly; views with padded weights remain
// consistent because both sides are computed from the same perturbed
// weights.
func (o *Oracle) IsShortest(p graph.Path) bool {
	return p.CostIn(o.view) == o.Dist(p.Src(), p.Dst())
}

// CachedTrees reports how many source trees are currently memoized.
func (o *Oracle) CachedTrees() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.trees)
}
