package spath

import (
	"rbpc/internal/graph"
)

// PaddedView perturbs every edge weight of an underlying view by a tiny,
// deterministic, pseudo-random amount. This realizes the paper's
// "infinitesimal padding" (Theorem 3): with distinct perturbations, shortest
// paths become unique (with overwhelming probability), so "the" shortest
// path per pair is well defined and one path per pair suffices as a base
// set.
//
// The perturbation of edge e is eps * u(e) where u(e) in (0,1) is a
// splitmix64 hash of the edge ID, so views over the same graph always agree.
// Choose eps small enough that the total perturbation along any path (at
// most n*eps) cannot reorder genuinely different path costs; PaddingFor
// computes a safe value for integral-weight graphs.
type PaddedView struct {
	under graph.View
	eps   float64
}

// Padded wraps v with perturbed weights.
func Padded(v graph.View, eps float64) *PaddedView {
	return &PaddedView{under: v, eps: eps}
}

// PaddingFor returns a safe padding magnitude for a graph with integral
// weights: distinct unpadded path costs differ by at least 1, and any path
// accumulates less than n*eps of padding, so any eps < 1/(2n) preserves the
// cost order. We use 1/(4n).
func PaddingFor(g *graph.Graph) float64 {
	n := g.Order()
	if n == 0 {
		return 0
	}
	return 1 / (4 * float64(n))
}

// Order implements graph.View.
func (p *PaddedView) Order() int { return p.under.Order() }

// Directed implements graph.View.
func (p *PaddedView) Directed() bool { return p.under.Directed() }

// UnitWeights implements graph.View; padded weights are never unit, which
// forces Dijkstra (BFS would ignore the perturbations).
func (p *PaddedView) UnitWeights() bool { return false }

// Edge implements graph.View, returning the edge with its perturbed weight.
func (p *PaddedView) Edge(id graph.EdgeID) graph.Edge {
	e := p.under.Edge(id)
	e.W += p.eps * unitHash(uint64(id))
	return e
}

// VisitArcs implements graph.View.
func (p *PaddedView) VisitArcs(u graph.NodeID, visit func(graph.Arc) bool) {
	p.under.VisitArcs(u, visit)
}

var _ graph.View = (*PaddedView)(nil)

// unitHash maps x to a deterministic value in (0, 1) via splitmix64.
//
//rbpc:hotpath
func unitHash(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	// 53 significant bits into (0,1); add 1 ulp to avoid exactly 0.
	return (float64(x>>11) + 0.5) / (1 << 53)
}
