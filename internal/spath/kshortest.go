package spath

import (
	"container/heap"

	"rbpc/internal/graph"
)

// KShortest returns up to k loopless (simple) shortest paths from s to d
// in ascending cost order, using Yen's algorithm. It is the engine behind
// the k-backup restoration baseline: the classic alternative to RBPC that
// pre-provisions a few alternate paths per pair and hopes one survives.
//
// Ties are broken deterministically (by the underlying deterministic
// shortest-path trees and lexicographic candidate ordering). Returns nil
// if d is unreachable.
func KShortest(g *graph.Graph, s, d graph.NodeID, k int) []graph.Path {
	if k <= 0 {
		return nil
	}
	first, ok := ShortestPath(g, s, d)
	if !ok {
		return nil
	}
	result := []graph.Path{first}
	seen := map[string]bool{first.Key(): true}
	var cands candHeap

	for len(result) < k {
		prev := result[len(result)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < prev.Hops(); i++ {
			spurNode := prev.Nodes[i]
			rootPath := prev.SubPath(0, i)

			// Remove edges that would recreate an already-found path
			// sharing this root, and remove root nodes (except the spur)
			// to keep paths simple.
			var removedEdges []graph.EdgeID
			for _, p := range result {
				if p.Hops() > i && rootPath.Equal(p.SubPath(0, i)) {
					removedEdges = append(removedEdges, p.Edges[i])
				}
			}
			removedNodes := make([]graph.NodeID, 0, i)
			for _, n := range rootPath.Nodes {
				if n != spurNode {
					removedNodes = append(removedNodes, n)
				}
			}
			fv := graph.Fail(g, removedEdges, removedNodes)
			spur, ok := Compute(fv, spurNode).PathTo(d)
			if !ok {
				continue
			}
			cand := rootPath.Concat(spur)
			key := cand.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			heap.Push(&cands, candidate{cost: cand.CostIn(g), hops: cand.Hops(), key: key, path: cand})
		}
		if cands.Len() == 0 {
			break
		}
		best := heap.Pop(&cands).(candidate)
		result = append(result, best.path)
	}
	return result
}

type candidate struct {
	cost float64
	hops int
	key  string
	path graph.Path
}

type candHeap []candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	return h[i].key < h[j].key
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}
