package spath_test

// BenchmarkSSSPKernel measures the SSSP hot path on the paper's evaluation
// topologies, in two flavors per topology:
//
//   - compute: the public spath.Compute entry point, which returns a fresh
//     standalone *Tree per call (what the Oracle memoizes).
//   - solver:  a reused spath.Solver, the zero-allocation kernel that the
//     evaluation workers and the Oracle's Precompute run on.
//
// ns/edge is reported so numbers are comparable across topologies of
// different sizes; allocs/op is the headline regression guard (the solver
// flavor must stay at 0 steady-state allocations).
import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

func kernelTopologies(b *testing.B) []struct {
	name string
	g    *graph.Graph
} {
	b.Helper()
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"ISP", topology.PaperISP(1)},
		{"AS", topology.PaperAS(1, 0.1)},
		{"Internet", topology.PaperInternet(1, 0.02)},
	}
}

// arcCount is the number of directed arcs traversed per SSSP (2m undirected).
func arcCount(g *graph.Graph) int {
	if g.Directed() {
		return g.Size()
	}
	return 2 * g.Size()
}

func BenchmarkSSSPKernel(b *testing.B) {
	for _, tc := range kernelTopologies(b) {
		arcs := float64(arcCount(tc.g))
		b.Run(tc.name+"/compute", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spath.Compute(tc.g, graph.NodeID(i%tc.g.Order()))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arcs, "ns/edge")
		})
		b.Run(tc.name+"/solver", func(b *testing.B) {
			s := spath.NewSolver(tc.g.Order())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Solve(tc.g, graph.NodeID(i%tc.g.Order()))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arcs, "ns/edge")
		})
	}
}

// BenchmarkSSSPKernelFailure is the Table-2 shape of the hot path: SSSP on a
// failure overlay of the AS graph (bitset-masked CSR).
func BenchmarkSSSPKernelFailure(b *testing.B) {
	g := topology.PaperAS(1, 0.1)
	fv := graph.FailEdges(g, 0, 1, 2)
	arcs := float64(arcCount(g))
	b.Run("compute", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spath.Compute(fv, graph.NodeID(i%g.Order()))
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arcs, "ns/edge")
	})
	b.Run("solver", func(b *testing.B) {
		s := spath.NewSolver(g.Order())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Solve(fv, graph.NodeID(i%g.Order()))
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/arcs, "ns/edge")
	})
}
