package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
)

// TestQuickDistToMatchesCompute: the early-stopping point query agrees
// with the full tree on distance, and on hop count for unit weights
// (for weighted graphs the min-cost path's hop count is tie-broken
// identically by both implementations).
func TestQuickDistToMatchesCompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		unit := rng.Intn(2) == 0
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			w := 1.0
			if !unit {
				w = float64(1 + rng.Intn(5))
			}
			g.AddEdge(u, v, w)
		}
		for trial := 0; trial < 12; trial++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			tr := Compute(g, s)
			dist, hops, ok := DistTo(g, s, d)
			if !tr.Reached(d) {
				if ok {
					return false
				}
				continue
			}
			if !ok || dist != tr.Dist(d) {
				return false
			}
			if s == d && (dist != 0 || hops != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDistToHopsOnRing(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6), 1)
	}
	dist, hops, ok := DistTo(g, 0, 3)
	if !ok || dist != 3 || hops != 3 {
		t.Errorf("DistTo(0,3) = %v,%v,%v", dist, hops, ok)
	}
	// Weighted: min-cost route with fewer hops.
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(1, 2, 1)
	g2.AddEdge(0, 2, 5)
	dist, hops, ok = DistTo(g2, 0, 2)
	if !ok || dist != 2 || hops != 2 {
		t.Errorf("weighted DistTo = %v,%v,%v", dist, hops, ok)
	}
}

func TestDistToUnreachableAndFailureViews(t *testing.T) {
	g := graph.New(3)
	e := g.AddEdge(0, 1, 1)
	if _, _, ok := DistTo(g, 0, 2); ok {
		t.Error("unreachable reported reachable")
	}
	if _, _, ok := DistTo(graph.FailEdges(g, e), 0, 1); ok {
		t.Error("failed edge still usable")
	}
}

func TestMatrixHops(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	m, err := AllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hops(0, 2) != 2 || m.Hops(0, 1) != 1 || m.Hops(1, 1) != 0 {
		t.Errorf("Hops wrong: %d %d %d", m.Hops(0, 2), m.Hops(0, 1), m.Hops(1, 1))
	}
}

func TestOracleViewAndCap(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	o := NewOracle(g)
	if o.View() != graph.View(g) {
		t.Error("View mismatch")
	}
	o.SetCap(2)
	o.Tree(0)
	o.Tree(1)
	o.Tree(2) // evicts one
	if got := o.CachedTrees(); got != 2 {
		t.Errorf("CachedTrees = %d, want cap 2", got)
	}
	// Evicted trees recompute transparently and stay correct.
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			want := Compute(g, graph.NodeID(s)).Dist(graph.NodeID(d))
			if got := o.Dist(graph.NodeID(s), graph.NodeID(d)); got != want {
				t.Fatalf("Dist(%d,%d) = %v, want %v", s, d, got, want)
			}
		}
	}
}
