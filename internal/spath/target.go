package spath

import (
	"rbpc/internal/graph"
	"rbpc/internal/pqueue"
)

// DistTo returns the shortest-path distance and hop count from s to t in
// v, terminating the search as soon as t is settled. It exists for
// workloads like the paper's Table 3 (the bypass length of every edge),
// where the target is typically a couple of hops away and a full SSSP per
// query would be wasteful.
//
// The boolean result is false if t is unreachable.
func DistTo(v graph.View, s, t graph.NodeID) (dist float64, hops int, ok bool) {
	if s == t {
		return 0, 0, true
	}
	if v.UnitWeights() {
		return bfsTo(v, s, t)
	}
	return dijkstraTo(v, s, t)
}

func bfsTo(v graph.View, s, t graph.NodeID) (float64, int, bool) {
	n := v.Order()
	distv := make([]int32, n)
	for i := range distv {
		distv[i] = -1
	}
	distv[s] = 0
	queue := []graph.NodeID{s}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		found := false
		v.VisitArcs(u, func(a graph.Arc) bool {
			if distv[a.To] == -1 {
				distv[a.To] = distv[u] + 1
				if a.To == t {
					found = true
					return false
				}
				queue = append(queue, a.To)
			}
			return true
		})
		if found {
			return float64(distv[t]), int(distv[t]), true
		}
	}
	return Unreachable, 0, false
}

func dijkstraTo(v graph.View, s, t graph.NodeID) (float64, int, bool) {
	n := v.Order()
	dist := make([]float64, n)
	hops := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	h := pqueue.New(n)
	h.Push(int(s), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > dist[u] {
			continue
		}
		if u == t {
			return dist[t], int(hops[t]), true
		}
		v.VisitArcs(u, func(a graph.Arc) bool {
			nd := du + v.Edge(a.Edge).W
			switch {
			case nd < dist[a.To]:
				dist[a.To] = nd
				hops[a.To] = hops[u] + 1
				h.PushOrDecrease(int(a.To), nd)
			case nd == dist[a.To] && hops[u]+1 < hops[a.To]:
				hops[a.To] = hops[u] + 1
			}
			return true
		})
	}
	return Unreachable, 0, false
}
