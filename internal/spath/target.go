package spath

import (
	"rbpc/internal/graph"
)

// DistTo returns the shortest-path distance and hop count from s to t in
// v, terminating the search as soon as t is settled. It exists for
// workloads like the paper's Table 3 (the bypass length of every edge),
// where the target is typically a couple of hops away and a full SSSP per
// query would be wasteful. It runs on a pooled Solver, so repeated queries
// allocate nothing and reset in O(nodes touched by the previous query).
//
// The boolean result is false if t is unreachable.
func DistTo(v graph.View, s, t graph.NodeID) (dist float64, hops int, ok bool) {
	if s == t {
		return 0, 0, true
	}
	sv := AcquireSolver(v.Order())
	defer ReleaseSolver(sv)
	if v.UnitWeights() {
		return sv.bfsTo(v, s, t)
	}
	return sv.dijkstraTo(v, s, t)
}

// bfsTo is an early-terminating BFS level search; it labels distances only
// (no parents) and stops as soon as t is discovered.
func (s *Solver) bfsTo(v graph.View, src, tgt graph.NodeID) (float64, int, bool) {
	s.begin(v.Order(), src)
	s.label(src)
	s.dist[src] = 0
	if k, _, ok := compileView(v); ok {
		return s.bfsToKernel(&k, src, tgt)
	}
	return s.bfsToGeneric(v, src, tgt)
}

func (s *Solver) bfsToKernel(k *graph.Kernel, src, tgt graph.NodeID) (float64, int, bool) {
	if k.NodeRemoved(src) {
		return Unreachable, 0, false
	}
	eoff, noff := k.EdgeOff, k.NodeOff
	queue := append(s.queue, src)
	defer func() { s.queue = queue[:0] }()
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := s.dist[u]
		for _, a := range k.CSR.Arcs(u) {
			if eoff != nil && eoff[uint32(a.Edge)>>6]&(1<<(uint32(a.Edge)&63)) != 0 {
				continue
			}
			to := a.To
			if noff != nil && noff[uint32(to)>>6]&(1<<(uint32(to)&63)) != 0 {
				continue
			}
			if s.gen[to] == s.cur {
				continue
			}
			s.gen[to] = s.cur
			s.dist[to] = du + 1
			s.touched = append(s.touched, to)
			if to == tgt {
				return du + 1, int(du) + 1, true
			}
			queue = append(queue, to)
		}
	}
	return Unreachable, 0, false
}

func (s *Solver) bfsToGeneric(v graph.View, src, tgt graph.NodeID) (float64, int, bool) {
	queue := append(s.queue, src)
	defer func() { s.queue = queue[:0] }()
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := s.dist[u]
		found := false
		v.VisitArcs(u, func(a graph.Arc) bool {
			to := a.To
			if s.gen[to] == s.cur {
				return true
			}
			s.gen[to] = s.cur
			s.dist[to] = du + 1
			s.touched = append(s.touched, to)
			if to == tgt {
				found = true
				return false
			}
			queue = append(queue, to)
			return true
		})
		if found {
			return du + 1, int(du) + 1, true
		}
	}
	return Unreachable, 0, false
}

// dijkstraTo is an early-terminating Dijkstra: it returns as soon as tgt is
// settled. Among equal-cost paths it reports the minimum hop count, the
// same tie-break the previous implementation used.
func (s *Solver) dijkstraTo(v graph.View, src, tgt graph.NodeID) (float64, int, bool) {
	s.begin(v.Order(), src)
	s.label(src)
	s.dist[src] = 0
	if k, eps, ok := compileView(v); ok {
		return s.dijkstraToKernel(&k, eps, src, tgt)
	}
	return s.dijkstraToGeneric(v, src, tgt)
}

func (s *Solver) dijkstraToKernel(k *graph.Kernel, eps float64, src, tgt graph.NodeID) (float64, int, bool) {
	if k.NodeRemoved(src) {
		return Unreachable, 0, false
	}
	eoff, noff := k.EdgeOff, k.NodeOff
	h := s.heap
	h.Push(int(src), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > s.dist[u] {
			continue
		}
		if u == tgt {
			return s.dist[u], int(s.hops[u]), true
		}
		hu := s.hops[u]
		for _, a := range k.CSR.Arcs(u) {
			if eoff != nil && eoff[uint32(a.Edge)>>6]&(1<<(uint32(a.Edge)&63)) != 0 {
				continue
			}
			to := a.To
			if noff != nil && noff[uint32(to)>>6]&(1<<(uint32(to)&63)) != 0 {
				continue
			}
			w := a.W
			if eps != 0 {
				w += eps * unitHash(uint64(a.Edge))
			}
			nd := du + w
			if s.gen[to] != s.cur {
				s.label(to)
			}
			switch {
			case nd < s.dist[to]:
				s.dist[to] = nd
				s.hops[to] = hu + 1
				h.PushOrDecrease(int(to), nd)
			case nd == s.dist[to] && hu+1 < s.hops[to]:
				s.hops[to] = hu + 1
			}
		}
	}
	return Unreachable, 0, false
}

func (s *Solver) dijkstraToGeneric(v graph.View, src, tgt graph.NodeID) (float64, int, bool) {
	h := s.heap
	h.Push(int(src), 0)
	for h.Len() > 0 {
		ui, du := h.Pop()
		u := graph.NodeID(ui)
		if du > s.dist[u] {
			continue
		}
		if u == tgt {
			return s.dist[u], int(s.hops[u]), true
		}
		hu := s.hops[u]
		v.VisitArcs(u, func(a graph.Arc) bool {
			to := a.To
			nd := du + v.Edge(a.Edge).W
			if s.gen[to] != s.cur {
				s.label(to)
			}
			switch {
			case nd < s.dist[to]:
				s.dist[to] = nd
				s.hops[to] = hu + 1
				h.PushOrDecrease(int(to), nd)
			case nd == s.dist[to] && hu+1 < s.hops[to]:
				s.hops[to] = hu + 1
			}
			return true
		})
	}
	return Unreachable, 0, false
}
