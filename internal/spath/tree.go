// Package spath is the shortest-path engine of the RBPC reproduction.
//
// It provides single-source shortest paths (BFS on unit-weight views,
// Dijkstra otherwise) with deterministic lexicographic tie-breaking, a
// memoizing distance oracle, shortest-path counting (the paper's redundancy
// metric), and "infinitesimal padding" views that make shortest paths unique
// (the construction behind the paper's Theorem 3).
package spath

import (
	"math"

	"rbpc/internal/graph"
)

// Unreachable is the distance reported for nodes not reachable from the
// source.
const Unreachable = math.MaxFloat64

// Tree is a single-source shortest-path tree. Among equally short paths the
// tree holds the lexicographically least one by (hop count, parent node ID,
// parent edge ID), evaluated bottom-up, so trees are deterministic for a
// given view regardless of iteration order.
//
//rbpc:immutable
type Tree struct {
	Source graph.NodeID

	dist    []float64
	hops    []int32
	parent  []graph.NodeID // parent[v] is the predecessor of v; -1 at source/unreached
	parentE []graph.EdgeID // parentE[v] is the edge from parent[v] to v
}

// Dist returns the distance from the source to v, or Unreachable.
//
//rbpc:hotpath
func (t *Tree) Dist(v graph.NodeID) float64 { return t.dist[v] }

// Dists returns the tree's full distance row, indexed by node ID, with
// Unreachable at unreached nodes. The slice aliases the tree's internal
// storage — callers must not modify it. It exists so bulk consumers (the
// incremental epoch builder feeds these rows to bounded solvers as pruning
// bounds) avoid a per-node accessor call and a defensive copy.
//
//rbpc:hotpath
func (t *Tree) Dists() []float64 { return t.dist }

// Hops returns the hop count of the tree path to v. It is meaningful only
// if Reached(v).
//
//rbpc:hotpath
func (t *Tree) Hops(v graph.NodeID) int { return int(t.hops[v]) }

// Reached reports whether v is reachable from the source.
//
//rbpc:hotpath
func (t *Tree) Reached(v graph.NodeID) bool { return t.dist[v] != Unreachable }

// Parent returns the tree predecessor of v and the connecting edge.
// At the source or an unreached node it returns (-1, -1).
//
//rbpc:hotpath
func (t *Tree) Parent(v graph.NodeID) (graph.NodeID, graph.EdgeID) {
	return t.parent[v], t.parentE[v]
}

// PathTo reconstructs the tree path from the source to v. The second result
// is false if v is unreachable.
func (t *Tree) PathTo(v graph.NodeID) (graph.Path, bool) {
	if !t.Reached(v) {
		return graph.Path{}, false
	}
	n := int(t.hops[v])
	p := graph.Path{
		Nodes: make([]graph.NodeID, n+1),
		Edges: make([]graph.EdgeID, n),
	}
	at := v
	for i := n; i > 0; i-- {
		p.Nodes[i] = at
		p.Edges[i-1] = t.parentE[at]
		at = t.parent[at]
	}
	p.Nodes[0] = at
	return p, true
}

// Compute runs the appropriate SSSP algorithm on v from src: BFS when all
// usable weights are 1, Dijkstra otherwise.
//
// Each call materializes a standalone *Tree. Hot loops that only need the
// distances and parents of the latest run should hold a Solver (or use
// AcquireSolver) and skip the materialization.
func Compute(v graph.View, src graph.NodeID) *Tree {
	s := AcquireSolver(v.Order())
	s.Solve(v, src)
	t := s.Tree()
	ReleaseSolver(s)
	return t
}

func newTree(n int, src graph.NodeID) *Tree {
	t := &Tree{
		Source:  src,
		dist:    make([]float64, n),
		hops:    make([]int32, n),
		parent:  make([]graph.NodeID, n),
		parentE: make([]graph.EdgeID, n),
	}
	for i := 0; i < n; i++ {
		t.dist[i] = Unreachable
		t.parent[i] = -1
		t.parentE[i] = -1
	}
	return t
}

// UsesAny reports whether any edge of the set is a tree edge — the scan
// behind incremental tree adoption: a shortest-path tree that avoids every
// newly-failed edge keeps all its distances when those edges go down
// (removal only deletes losing candidates, and the surviving tree paths
// already achieve the old minima).
func (t *Tree) UsesAny(removed map[graph.EdgeID]bool) bool {
	for v := range t.parentE {
		if e := t.parentE[v]; e >= 0 && removed[e] {
			return true
		}
	}
	return false
}

// DisturbedBy reports whether restoring edge e could alter the canonical
// tree: true when, against the tree's distances, the edge improves or ties
// the label at either endpoint (within slack, to absorb float noise — a
// near-tie conservatively counts as disturbed). If no restored edge
// disturbs a tree and no failed edge is a tree edge, a fresh solve over
// the new view reproduces the tree bit-for-bit: distances are unchanged by
// induction over the added edges, and a strictly-worse edge is never a
// parent candidate under the deterministic tie-break.
func (t *Tree) DisturbedBy(e graph.Edge, slack float64) bool {
	dx, dy := t.dist[e.U], t.dist[e.V]
	if dx == Unreachable && dy == Unreachable {
		// One edge cannot connect the source to a fully unreached component.
		return false
	}
	return dx+e.W <= dy+slack || dy+e.W <= dx+slack
}

// betterParent reports whether candidate (hops, parent node, parent edge)
// precedes the incumbent lexicographically.
//
//rbpc:hotpath
func betterParent(h int32, p graph.NodeID, e graph.EdgeID, ch int32, cp graph.NodeID, ce graph.EdgeID) bool {
	if h != ch {
		return h < ch
	}
	if p != cp {
		return p < cp
	}
	return e < ce
}

// bfs and dijkstra force one algorithm regardless of UnitWeights; they back
// Compute's dispatch tests and the unit-weight cross-checks.
func bfs(v graph.View, src graph.NodeID) *Tree {
	s := AcquireSolver(v.Order())
	s.solveBFS(v, src)
	t := s.Tree()
	ReleaseSolver(s)
	return t
}

func dijkstra(v graph.View, src graph.NodeID) *Tree {
	s := AcquireSolver(v.Order())
	s.solveDijkstra(v, src)
	t := s.Tree()
	ReleaseSolver(s)
	return t
}

// ShortestPath returns a shortest path from s to d in v, or false if d is
// unreachable. The path is the deterministic tree path (see Tree).
func ShortestPath(v graph.View, s, d graph.NodeID) (graph.Path, bool) {
	return Compute(v, s).PathTo(d)
}
