package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
)

func TestKShortestSquare(t *testing.T) {
	// C4: two 2-hop paths between opposite corners, then two 4-hop... no,
	// simple paths only: exactly two simple paths 0->2.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	got := KShortest(g, 0, 2, 5)
	if len(got) != 2 {
		t.Fatalf("found %d paths, want 2: %v", len(got), got)
	}
	for _, p := range got {
		if p.Hops() != 2 || !p.IsSimple() {
			t.Errorf("bad path %v", p)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("invalid: %v", err)
		}
	}
	if got[0].Equal(got[1]) {
		t.Error("duplicate paths")
	}
}

func TestKShortestOrdering(t *testing.T) {
	// Diamond with distinct costs: 0-1-3 (cost 2), 0-2-3 (cost 4),
	// 0-3 direct (cost 5).
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 5)
	got := KShortest(g, 0, 3, 3)
	if len(got) != 3 {
		t.Fatalf("found %d paths", len(got))
	}
	costs := []float64{got[0].CostIn(g), got[1].CostIn(g), got[2].CostIn(g)}
	if costs[0] != 2 || costs[1] != 4 || costs[2] != 5 {
		t.Errorf("costs = %v, want [2 4 5]", costs)
	}
}

func TestKShortestEdgeCases(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if got := KShortest(g, 0, 2, 3); got != nil {
		t.Error("paths to unreachable node")
	}
	if got := KShortest(g, 0, 1, 0); got != nil {
		t.Error("k=0 returned paths")
	}
	if got := KShortest(g, 0, 1, 10); len(got) != 1 {
		t.Errorf("single-path graph returned %d", len(got))
	}
	// s == d: the trivial path.
	if got := KShortest(g, 0, 0, 2); len(got) != 1 || !got[0].IsTrivial() {
		t.Errorf("KShortest(s,s) = %v", got)
	}
}

// TestQuickKShortestProperties: on random graphs, the result is sorted by
// cost, all paths are simple, valid, distinct, and the first equals the
// shortest-path distance.
func TestQuickKShortestProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(4)))
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(4)))
			}
		}
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d {
			return true
		}
		k := 1 + rng.Intn(6)
		got := KShortest(g, s, d, k)
		if len(got) == 0 || len(got) > k {
			return false
		}
		o := NewOracle(g)
		if got[0].CostIn(g) != o.Dist(s, d) {
			return false
		}
		keys := make(map[string]bool)
		prev := -1.0
		for _, p := range got {
			if p.Validate(g) != nil || !p.IsSimple() || p.Src() != s || p.Dst() != d {
				return false
			}
			c := p.CostIn(g)
			if c < prev {
				return false
			}
			prev = c
			if keys[p.Key()] {
				return false
			}
			keys[p.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickKShortestComplete: K_n between any pair has (n-2) choose
// lengths... simpler exact check: on K4 with unit weights there are
// 1 direct + 2 two-hop + 2 three-hop = 5 simple paths between any pair.
func TestKShortestCompleteK4(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	got := KShortest(g, 0, 3, 10)
	if len(got) != 5 {
		t.Fatalf("K4 simple paths = %d, want 5", len(got))
	}
	wantHops := []int{1, 2, 2, 3, 3}
	for i, p := range got {
		if p.Hops() != wantHops[i] {
			t.Errorf("path %d hops = %d, want %d", i, p.Hops(), wantHops[i])
		}
	}
}

func BenchmarkKShortest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(5)))
	}
	for i := 0; i < 3*n; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(5)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KShortest(g, graph.NodeID(i%n), graph.NodeID((i+37)%n), 4)
	}
}
