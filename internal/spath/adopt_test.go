package spath

import (
	"math"
	"math/rand"
	"testing"

	"rbpc/internal/graph"
)

func treesEqualBits(a, b *Tree) bool {
	if a.Source != b.Source || len(a.dist) != len(b.dist) {
		return false
	}
	for v := range a.dist {
		if math.Float64bits(a.dist[v]) != math.Float64bits(b.dist[v]) ||
			a.hops[v] != b.hops[v] || a.parent[v] != b.parent[v] || a.parentE[v] != b.parentE[v] {
			return false
		}
	}
	return true
}

// TestAdoptFromBitIdentical: across random failed-set transitions, every
// tree AdoptFrom carries over is bit-for-bit the tree a fresh solve on the
// new view produces — distances, hops, parents, and parent edges.
func TestAdoptFromBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := []func() float64{
		func() float64 { return 1 },
		func() float64 { return float64(1 + rng.Intn(4)) },
	}
	adoptedTotal := 0
	for trial := 0; trial < 40; trial++ {
		g := randomConnected(rng, 20, 25, weights[trial%2])
		pick := func(k int) []graph.EdgeID {
			seen := map[graph.EdgeID]bool{}
			for len(seen) < k {
				seen[graph.EdgeID(rng.Intn(g.Size()))] = true
			}
			out := make([]graph.EdgeID, 0, k)
			for e := range seen {
				out = append(out, e)
			}
			return out
		}
		prevFailed := pick(1 + rng.Intn(3))
		newFailed := pick(1 + rng.Intn(3))

		prevO := NewOracle(graph.FailEdges(g, prevFailed...))
		for s := 0; s < g.Order(); s++ {
			prevO.Tree(graph.NodeID(s))
		}

		inPrev := map[graph.EdgeID]bool{}
		for _, e := range prevFailed {
			inPrev[e] = true
		}
		inNew := map[graph.EdgeID]bool{}
		for _, e := range newFailed {
			inNew[e] = true
		}
		var removed []graph.EdgeID
		var repaired []graph.Edge
		for _, e := range newFailed {
			if !inPrev[e] {
				removed = append(removed, e)
			}
		}
		for _, e := range prevFailed {
			if !inNew[e] {
				repaired = append(repaired, g.Edge(e))
			}
		}

		newView := graph.FailEdges(g, newFailed...)
		newO := NewOracle(newView)
		n := newO.AdoptFrom(prevO, removed, repaired)
		adoptedTotal += n
		if got := newO.CachedTrees(); got != n {
			t.Fatalf("trial %d: adopted %d but cached %d", trial, n, got)
		}
		for s := 0; s < g.Order(); s++ {
			src := graph.NodeID(s)
			newO.mu.RLock()
			e := newO.trees[src]
			newO.mu.RUnlock()
			if e == nil {
				continue // not adopted: recomputed on demand, nothing to verify
			}
			if fresh := Compute(newView, src); !treesEqualBits(e.tree, fresh) {
				t.Fatalf("trial %d source %d: adopted tree differs from fresh solve", trial, s)
			}
		}
	}
	if adoptedTotal == 0 {
		t.Fatal("no tree adopted across any trial: the check is vacuous")
	}
}

// TestAdoptFromRejectsBrokenAndImproved: a tree using a removed edge, or
// one a repaired edge shortcuts, must not carry over.
func TestAdoptFromRejectsBrokenAndImproved(t *testing.T) {
	// Line 0-1-2-3 plus a chord (0,3) of weight 1.
	g := lineGraph(4)
	chord := g.AddEdge(0, 3, 1)

	// Previous epoch: chord failed. Tree from 0 runs down the line.
	prevO := NewOracle(graph.FailEdges(g, chord))
	for s := 0; s < g.Order(); s++ {
		prevO.Tree(graph.NodeID(s))
	}

	// Repairing the chord improves d(0,3) from 3 to 1 and ties the middle
	// sources' distances to the far endpoint (1+1 == 2 from source 1), so
	// every tree must be recomputed: improvements change distances,
	// ties could change the deterministic parent choice.
	newO := NewOracle(graph.FailEdges(g))
	adopted := newO.AdoptFrom(prevO, nil, []graph.Edge{g.Edge(chord)})
	if adopted != 0 {
		t.Fatalf("adopted %d trees, want 0 (chord improves or ties every source)", adopted)
	}
	if newO.Tree(0).Dist(3) != 1 || newO.Tree(3).Dist(0) != 1 {
		t.Fatal("recomputed tree kept the pre-repair distance")
	}

	// A strictly useless repair (heavy chord) disturbs nothing: every tree
	// carries over.
	h := lineGraph(4)
	heavy := h.AddEdge(0, 3, 5)
	prevH := NewOracle(graph.FailEdges(h, heavy))
	for s := 0; s < h.Order(); s++ {
		prevH.Tree(graph.NodeID(s))
	}
	newH := NewOracle(graph.FailEdges(h))
	if got := newH.AdoptFrom(prevH, nil, []graph.Edge{h.Edge(heavy)}); got != 4 {
		t.Fatalf("adopted %d trees, want all 4 (heavy chord helps nobody)", got)
	}

	// Now fail a line edge: the line trees use it, only source-side trees
	// that avoid it could survive; tree rooted at 0 in the all-up view uses
	// edge (1,2)? 0's tree: 0-1 (line), 0-3 (chord), 3-2? d(2)=2 via 1 or
	// via 3; tie broken deterministically — just assert the invariant
	// instead: no adopted tree uses the removed edge.
	upO := NewOracle(graph.FailEdges(g))
	for s := 0; s < g.Order(); s++ {
		upO.Tree(graph.NodeID(s))
	}
	cut := graph.EdgeID(1) // edge (1,2)
	downO := NewOracle(graph.FailEdges(g, cut))
	downO.AdoptFrom(upO, []graph.EdgeID{cut}, nil)
	for s := 0; s < g.Order(); s++ {
		src := graph.NodeID(s)
		downO.mu.RLock()
		e := downO.trees[src]
		downO.mu.RUnlock()
		if e != nil && e.tree.UsesAny(map[graph.EdgeID]bool{cut: true}) {
			t.Fatalf("source %d: adopted a tree that uses the removed edge", s)
		}
	}
}

// TestAdoptFromRespectsCap: adoption never overfills a capped oracle.
func TestAdoptFromRespectsCap(t *testing.T) {
	g := lineGraph(8)
	prevO := NewOracle(graph.FailEdges(g))
	for s := 0; s < g.Order(); s++ {
		prevO.Tree(graph.NodeID(s))
	}
	newO := NewOracle(graph.FailEdges(g))
	newO.SetCap(3)
	newO.AdoptFrom(prevO, nil, nil)
	if got := newO.CachedTrees(); got > 3 {
		t.Fatalf("capped oracle holds %d trees, cap 3", got)
	}
}
