// Package verify statically checks an MPLS network's forwarding tables:
// it walks every FEC entry through the ILM rows symbolically, with an
// exact visited-state loop detector instead of the data plane's TTL
// heuristic, and classifies each route as delivered, looping,
// blackholed, down, or misdelivered.
//
// The paper claims RBPC "is guaranteed not to introduce loops in the
// paths created"; this package is the auditor for that claim. It
// deliberately re-implements the label semantics independently of
// internal/mpls's forwarder, so a bug in one is caught by the other.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
)

// Outcome classifies one FEC entry's walk.
type Outcome int

const (
	// Delivered: the walk pops out exactly at the FEC's destination.
	Delivered Outcome = iota + 1
	// Loop: the walk revisits a (router, stack) state — a true forwarding
	// loop that TTL would only truncate.
	Loop
	// Blackhole: a label with no matching ILM row.
	Blackhole
	// LinkDown: the walk hits a failed link (expected mid-restoration).
	LinkDown
	// Misdelivered: the stack empties at the wrong router.
	Misdelivered
	// Stuck: local label operations exceed any sane bound at one router.
	Stuck
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Loop:
		return "loop"
	case Blackhole:
		return "blackhole"
	case LinkDown:
		return "link-down"
	case Misdelivered:
		return "misdelivered"
	case Stuck:
		return "stuck"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Finding is one FEC entry's verification result.
type Finding struct {
	Src, Dst graph.NodeID
	Outcome  Outcome
	// At is where the walk ended (delivery point, loop entry, blackhole).
	At graph.NodeID
	// Hops is the number of links walked before the outcome.
	Hops int
}

// Report aggregates a whole-network check.
type Report struct {
	Checked  int
	ByKind   map[Outcome]int
	Findings []Finding // every non-Delivered finding
}

// Clean reports whether every checked route delivered.
func (r Report) Clean() bool { return r.ByKind[Delivered] == r.Checked }

// LoopFree reports whether no route loops (blackholes/link-down allowed:
// they are legitimate transient states during restoration).
func (r Report) LoopFree() bool { return r.ByKind[Loop] == 0 && r.ByKind[Stuck] == 0 }

// String renders a summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checked %d routes:", r.Checked)
	kinds := make([]Outcome, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, r.ByKind[k])
	}
	return b.String()
}

// maxLocalOps mirrors the forwarder's bound on consecutive label
// operations at one router.
const maxLocalOps = 16

// CheckFEC walks the route installed for (src, dst).
func CheckFEC(net *mpls.Network, src, dst graph.NodeID) Finding {
	f := Finding{Src: src, Dst: dst}
	fe, ok := net.Router(src).FECEntryFor(dst)
	if !ok {
		f.Outcome = Blackhole
		f.At = src
		return f
	}
	type state struct {
		at    graph.NodeID
		stack string
	}
	seen := make(map[state]bool)

	at := src
	stack := append([]mpls.Label(nil), fe.Stack...)
	g := net.Graph()

	transmit := func(e graph.EdgeID) Outcome {
		if !net.EdgeUp(e) {
			return LinkDown
		}
		edge := g.Edge(e)
		if edge.U != at && edge.V != at {
			return Stuck // table forwards over a non-incident link
		}
		at = edge.Other(at)
		f.Hops++
		return 0
	}

	if fe.OutEdge != mpls.LocalProcess {
		if out := transmit(fe.OutEdge); out != 0 {
			f.Outcome = out
			f.At = at
			return f
		}
	}

	for {
		if len(stack) == 0 {
			f.At = at
			if at == dst {
				f.Outcome = Delivered
			} else {
				f.Outcome = Misdelivered
			}
			return f
		}
		st := state{at: at, stack: stackKey(stack)}
		if seen[st] {
			f.Outcome = Loop
			f.At = at
			return f
		}
		seen[st] = true

		ops := 0
		for {
			top := stack[len(stack)-1]
			entry, ok := net.Router(at).ILMEntryFor(top)
			if !ok {
				f.Outcome = Blackhole
				f.At = at
				return f
			}
			stack = stack[:len(stack)-1]
			stack = append(stack, entry.Out...)
			if entry.OutEdge != mpls.LocalProcess {
				if out := transmit(entry.OutEdge); out != 0 {
					f.Outcome = out
					f.At = at
					return f
				}
				break
			}
			if len(stack) == 0 {
				f.At = at
				if at == dst {
					f.Outcome = Delivered
				} else {
					f.Outcome = Misdelivered
				}
				return f
			}
			ops++
			if ops > maxLocalOps {
				f.Outcome = Stuck
				f.At = at
				return f
			}
		}
	}
}

// CheckAll walks every FEC entry of every router.
func CheckAll(net *mpls.Network) Report {
	rep := Report{ByKind: make(map[Outcome]int)}
	n := net.Graph().Order()
	for r := 0; r < n; r++ {
		router := net.Router(graph.NodeID(r))
		dests := router.FECDests()
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		for _, d := range dests {
			f := CheckFEC(net, graph.NodeID(r), d)
			rep.Checked++
			rep.ByKind[f.Outcome]++
			if f.Outcome != Delivered {
				rep.Findings = append(rep.Findings, f)
			}
		}
	}
	return rep
}

func stackKey(stack []mpls.Label) string {
	var b strings.Builder
	for _, l := range stack {
		fmt.Fprintf(&b, "%d,", l)
	}
	return b.String()
}
