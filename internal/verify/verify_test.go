package verify

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

func TestCleanDeployment(t *testing.T) {
	s, err := rbpcint.NewSystem(topology.Ring(6), rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckAll(s.Net())
	if !rep.Clean() {
		t.Fatalf("fresh deployment not clean: %v\nfindings: %+v", rep, rep.Findings)
	}
	if rep.Checked != 6*5 {
		t.Errorf("checked %d routes, want 30", rep.Checked)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestRestorationStaysClean(t *testing.T) {
	g := topology.Complete(5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	s.FailLink(e)
	rep := CheckAll(s.Net())
	if !rep.Clean() {
		t.Fatalf("post-restoration tables not clean: %v\n%+v", rep, rep.Findings)
	}
}

func TestDetectsLinkDownBeforeRestoration(t *testing.T) {
	g := topology.Ring(5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	s.FailDataPlane(e) // no control-plane reaction yet
	rep := CheckAll(s.Net())
	if rep.Clean() {
		t.Fatal("verifier missed routes over a dead link")
	}
	if rep.ByKind[LinkDown] == 0 {
		t.Errorf("no LinkDown findings: %v", rep)
	}
	if !rep.LoopFree() {
		t.Errorf("spurious loops: %v", rep)
	}
	// After restoration the tables are clean again.
	s.NoteFailure(e)
	s.UpdateAllSources(e)
	if rep := CheckAll(s.Net()); !rep.Clean() {
		t.Errorf("still dirty after restoration: %v %+v", rep, rep.Findings)
	}
}

func TestDetectsLoop(t *testing.T) {
	// Hand-build a two-router label ping-pong and verify the exact loop
	// detector (not TTL) flags it.
	g := graph.New(2)
	e := g.AddEdge(0, 1, 1)
	net := mpls.NewNetwork(g)
	lsp, err := net.EstablishLSP(graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{e}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewire the egress pop into a bounce back to the ingress self-row.
	in, _ := lsp.IncomingLabelAt(1)
	if _, err := net.ReplaceILM(1, in, mpls.ILMEntry{Out: []mpls.Label{lsp.SelfLabel()}, OutEdge: e}); err != nil {
		t.Fatal(err)
	}
	net.SetFEC(0, 1, mpls.FECEntry{Stack: []mpls.Label{lsp.SelfLabel()}, OutEdge: mpls.LocalProcess})
	f := CheckFEC(net, 0, 1)
	if f.Outcome != Loop {
		t.Fatalf("outcome = %v, want Loop", f.Outcome)
	}
	rep := CheckAll(net)
	if rep.LoopFree() {
		t.Error("report claims loop-free")
	}
}

func TestDetectsBlackholeAndMisdelivery(t *testing.T) {
	g := topology.Line(3)
	net := mpls.NewNetwork(g)
	// FEC pushing a label nobody installed.
	net.SetFEC(0, 2, mpls.FECEntry{Stack: []mpls.Label{999}, OutEdge: mpls.LocalProcess})
	if f := CheckFEC(net, 0, 2); f.Outcome != Blackhole {
		t.Errorf("outcome = %v, want Blackhole", f.Outcome)
	}
	// Missing FEC row entirely.
	if f := CheckFEC(net, 1, 2); f.Outcome != Blackhole {
		t.Errorf("missing FEC = %v, want Blackhole", f.Outcome)
	}
	// LSP to the wrong place: FEC for dst 2 but LSP ends at 1.
	e01, _ := g.FindEdge(0, 1)
	lsp, err := net.EstablishLSP(graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{e01}})
	if err != nil {
		t.Fatal(err)
	}
	net.SetFEC(0, 2, mpls.FECEntry{Stack: []mpls.Label{lsp.SelfLabel()}, OutEdge: mpls.LocalProcess})
	if f := CheckFEC(net, 0, 2); f.Outcome != Misdelivered {
		t.Errorf("outcome = %v, want Misdelivered", f.Outcome)
	}
}

func TestDetectsLocalStuck(t *testing.T) {
	g := topology.Line(2)
	net := mpls.NewNetwork(g)
	// A self-replacing local row: infinite local ops.
	lsp, _ := net.EstablishLSP(graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}})
	self := lsp.SelfLabel()
	if _, err := net.ReplaceILM(0, self, mpls.ILMEntry{Out: []mpls.Label{self}, OutEdge: mpls.LocalProcess}); err != nil {
		t.Fatal(err)
	}
	net.SetFEC(0, 1, mpls.FECEntry{Stack: []mpls.Label{self}, OutEdge: mpls.LocalProcess})
	if f := CheckFEC(net, 0, 1); f.Outcome != Stuck && f.Outcome != Loop {
		t.Errorf("outcome = %v, want Stuck or Loop", f.Outcome)
	}
}

// TestVerifierAgreesWithForwarder: on a deployment under churn, the
// static verdict must match the dynamic one for every pair.
func TestVerifierAgreesWithForwarder(t *testing.T) {
	g := topology.Waxman(12, 0.7, 0.4, 5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.FailLink(0)
	s.FailLink(1)
	for src := 0; src < g.Order(); src++ {
		for dst := 0; dst < g.Order(); dst++ {
			if src == dst {
				continue
			}
			f := CheckFEC(s.Net(), graph.NodeID(src), graph.NodeID(dst))
			_, err := s.Net().SendIP(graph.NodeID(src), graph.NodeID(dst))
			if (f.Outcome == Delivered) != (err == nil) {
				t.Fatalf("%d->%d: static %v, dynamic err=%v", src, dst, f.Outcome, err)
			}
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Delivered, Loop, Blackhole, LinkDown, Misdelivered, Stuck, Outcome(42)} {
		if o.String() == "" {
			t.Error("empty outcome string")
		}
	}
}
