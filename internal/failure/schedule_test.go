package failure

import (
	"math/rand"
	"strings"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestChaosScheduleInvariants(t *testing.T) {
	g := topology.Waxman(18, 0.8, 0.5, 11)
	for _, seed := range []int64{1, 2, 3, 40} {
		rng := rand.New(rand.NewSource(seed))
		s := ChaosSchedule(g, 80, 3, rng)
		if s.Churn() < 80 {
			t.Fatalf("seed %d: %d churn steps, want >= 80", seed, s.Churn())
		}
		if s.Queries() == 0 {
			t.Fatalf("seed %d: no query steps", seed)
		}
		down := map[graph.EdgeID]bool{}
		for i, st := range s {
			switch st.Kind {
			case StepFail:
				if down[st.Edge] {
					t.Fatalf("seed %d: step %d fails already-down edge %d", seed, i, st.Edge)
				}
				down[st.Edge] = true
				if len(down) > 3 {
					t.Fatalf("seed %d: step %d exceeds maxDown", seed, i)
				}
			case StepRepair:
				if !down[st.Edge] {
					t.Fatalf("seed %d: step %d repairs up edge %d", seed, i, st.Edge)
				}
				delete(down, st.Edge)
			case StepQuery:
				if st.Src == st.Dst {
					t.Fatalf("seed %d: step %d queries self-pair", seed, i)
				}
			}
		}
		if len(down) != 0 {
			t.Fatalf("seed %d: schedule does not drain: %v still down", seed, down)
		}
		if s[len(s)-1].Kind != StepQuery {
			t.Fatalf("seed %d: schedule should end with a query burst", seed)
		}
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 5)
	a := ChaosSchedule(g, 50, 2, rand.New(rand.NewSource(9)))
	b := ChaosSchedule(g, 50, 2, rand.New(rand.NewSource(9)))
	if a.String() != b.String() {
		t.Fatal("same seed produced different schedules")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	g := topology.Waxman(10, 0.8, 0.5, 2)
	s := ChaosSchedule(g, 30, 2, rand.New(rand.NewSource(4)))
	enc := s.String()
	dec, err := DecodeSchedule(strings.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(dec), len(s))
	}
	for i := range s {
		if dec[i] != s[i] {
			t.Fatalf("step %d round-tripped to %+v, want %+v", i, dec[i], s[i])
		}
	}
	// Comments and blank lines are tolerated.
	dec2, err := DecodeSchedule(strings.NewReader("# header\n\n" + enc))
	if err != nil || len(dec2) != len(s) {
		t.Fatalf("decode with comments: %v (%d steps)", err, len(dec2))
	}
}

func TestSettleRoundTrip(t *testing.T) {
	s := Schedule{
		{Kind: StepFail, Edge: 2},
		{Kind: StepSettle},
		{Kind: StepQuery, Src: 0, Dst: 1},
	}
	dec, err := DecodeSchedule(strings.NewReader(s.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[1].Kind != StepSettle {
		t.Fatalf("settle round-tripped to %+v", dec)
	}
	if got := StepSettle.String(); got != "settle" {
		t.Fatalf("StepSettle.String() = %q", got)
	}
}

func TestDecodeScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"explode 3",
		"fail",
		"fail x",
		"query 1",
		"flush now",
		"settle 5",
		"repair 1 2",
	} {
		if _, err := DecodeSchedule(strings.NewReader(bad)); err == nil {
			t.Errorf("decoded %q without error", bad)
		}
	}
}
