package failure

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// FuzzChurnScheduleDeterminism drives ChurnSchedule with fuzzer-chosen
// topology seeds, schedule lengths, concurrency caps, and RNG seeds, and
// checks the two properties the engine's replay machinery depends on:
//
//  1. Determinism — two runs from identically-seeded RNGs produce
//     byte-identical schedules (the serving benchmarks and the epoch replay
//     tests both assume a seed pins the whole failure trace).
//  2. The documented invariants — at most maxDown links concurrently down,
//     no link fails while down or is repaired while up, every edge in
//     range, and the schedule drains back to pristine.
func FuzzChurnScheduleDeterminism(f *testing.F) {
	f.Add(int64(1), int64(7), 50, 3)
	f.Add(int64(2), int64(0), 1, 1)
	f.Add(int64(9), int64(-4), 200, 8)
	f.Add(int64(42), int64(1<<40), 17, 0)

	f.Fuzz(func(t *testing.T, topoSeed, rngSeed int64, steps, maxDown int) {
		// Bound the work per input: small graphs, short schedules.
		if steps < 0 {
			steps = -steps
		}
		steps %= 256
		if maxDown < 0 {
			maxDown = -maxDown
		}
		maxDown %= 16
		g := topology.Waxman(12+int(uint64(topoSeed)%8), 0.8, 0.5, topoSeed)

		a := ChurnSchedule(g, steps, maxDown, rand.New(rand.NewSource(rngSeed)))
		b := ChurnSchedule(g, steps, maxDown, rand.New(rand.NewSource(rngSeed)))
		if len(a) != len(b) {
			t.Fatalf("non-deterministic: lengths %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-deterministic: event %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}

		if steps > 0 && len(a) < steps {
			t.Fatalf("%d events, want >= %d", len(a), steps)
		}
		cap := maxDown
		if cap < 1 {
			cap = 1 // ChurnSchedule clamps maxDown to at least one.
		}
		down := make(map[graph.EdgeID]bool)
		for i, ev := range a {
			if ev.Repair {
				if !down[ev.Edge] {
					t.Fatalf("event %d: repair of up link %d", i, ev.Edge)
				}
				delete(down, ev.Edge)
				continue
			}
			if ev.Edge < 0 || int(ev.Edge) >= g.Size() {
				t.Fatalf("event %d: edge %d out of range [0,%d)", i, ev.Edge, g.Size())
			}
			if down[ev.Edge] {
				t.Fatalf("event %d: failure of down link %d", i, ev.Edge)
			}
			down[ev.Edge] = true
			if len(down) > cap {
				t.Fatalf("event %d: %d concurrent failures, cap %d", i, len(down), cap)
			}
		}
		if len(down) != 0 {
			t.Fatalf("%d links still down after full schedule", len(down))
		}
	})
}
