package failure

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestChurnScheduleInvariants(t *testing.T) {
	g := topology.Waxman(30, 0.8, 0.5, 1)
	for _, maxDown := range []int{1, 3, 8} {
		rng := rand.New(rand.NewSource(int64(maxDown)))
		events := ChurnSchedule(g, 200, maxDown, rng)
		if len(events) < 200 {
			t.Fatalf("maxDown=%d: %d events, want >= 200", maxDown, len(events))
		}
		down := make(map[graph.EdgeID]bool)
		peak := 0
		for i, ev := range events {
			if ev.Repair {
				if !down[ev.Edge] {
					t.Fatalf("maxDown=%d event %d: repair of up link %d", maxDown, i, ev.Edge)
				}
				delete(down, ev.Edge)
			} else {
				if down[ev.Edge] {
					t.Fatalf("maxDown=%d event %d: failure of down link %d", maxDown, i, ev.Edge)
				}
				if ev.Edge < 0 || int(ev.Edge) >= g.Size() {
					t.Fatalf("maxDown=%d event %d: edge %d out of range", maxDown, i, ev.Edge)
				}
				down[ev.Edge] = true
			}
			if len(down) > peak {
				peak = len(down)
			}
		}
		if peak > maxDown {
			t.Fatalf("maxDown=%d: peak concurrent failures %d", maxDown, peak)
		}
		if maxDown > 1 && peak < 2 {
			t.Errorf("maxDown=%d: schedule never overlapped failures (peak %d)", maxDown, peak)
		}
		if len(down) != 0 {
			t.Fatalf("maxDown=%d: %d links still down after full schedule", maxDown, len(down))
		}
	}
}

func TestChurnScheduleDeterministic(t *testing.T) {
	g := topology.Waxman(20, 0.8, 0.5, 2)
	a := ChurnSchedule(g, 100, 4, rand.New(rand.NewSource(7)))
	b := ChurnSchedule(g, 100, 4, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnScheduleEdgeCases(t *testing.T) {
	g := topology.Ring(5)
	if ev := ChurnSchedule(g, 0, 3, rand.New(rand.NewSource(1))); ev != nil {
		t.Fatalf("steps=0: got %d events", len(ev))
	}
	// maxDown below 1 is clamped, not a panic.
	ev := ChurnSchedule(g, 10, 0, rand.New(rand.NewSource(1)))
	down := 0
	for _, e := range ev {
		if e.Repair {
			down--
		} else {
			down++
		}
		if down > 1 {
			t.Fatalf("maxDown=0 clamp failed: %d concurrent failures", down)
		}
	}
}
