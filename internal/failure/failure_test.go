package failure

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

func sampleOn(t *testing.T, g *graph.Graph, kind Kind, trials int) []Scenario {
	t.Helper()
	o := spath.NewOracle(g)
	return Sample(g, o, kind, trials, rand.New(rand.NewSource(1)))
}

func TestSingleLinkScenarios(t *testing.T) {
	g := topology.Ring(8)
	scens := sampleOn(t, g, SingleLink, 10)
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	for _, s := range scens {
		if len(s.Edges) != 1 || len(s.Nodes) != 0 {
			t.Fatalf("scenario %+v not single-link", s)
		}
		if s.K() != 1 {
			t.Errorf("K = %d", s.K())
		}
		// The failed link must lie on the primary path at PathIndex.
		if s.PathIndex < 0 || s.PathIndex >= s.Primary.Hops() {
			t.Fatalf("PathIndex %d out of range", s.PathIndex)
		}
		if s.Primary.Edges[s.PathIndex] != s.Edges[0] {
			t.Error("PathIndex does not locate the failed link")
		}
		if s.Primary.Src() != s.Src || s.Primary.Dst() != s.Dst {
			t.Error("primary endpoints mismatch")
		}
		fv := s.View(g)
		if fv.EdgeUsable(s.Edges[0]) {
			t.Error("View does not remove the failed link")
		}
	}
}

func TestDoubleLinkScenarios(t *testing.T) {
	g := topology.Grid(4, 4)
	scens := sampleOn(t, g, DoubleLink, 10)
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	for _, s := range scens {
		if len(s.Edges) != 2 {
			t.Fatalf("%d failed links", len(s.Edges))
		}
		if s.Edges[0] == s.Edges[1] {
			t.Error("duplicate failed link")
		}
		if !s.Primary.HasEdge(s.Edges[0]) {
			t.Error("first failed link not on primary")
		}
	}
}

func TestSingleRouterScenarios(t *testing.T) {
	g := topology.Grid(4, 4)
	scens := sampleOn(t, g, SingleRouter, 20)
	if len(scens) == 0 {
		t.Fatal("no scenarios (grid paths have interiors)")
	}
	for _, s := range scens {
		if len(s.Nodes) != 1 || s.PathIndex != -1 {
			t.Fatalf("bad scenario %+v", s)
		}
		r := s.Nodes[0]
		if r == s.Src || r == s.Dst {
			t.Error("failed router is an endpoint")
		}
		if !s.Primary.HasInteriorNode(r) {
			t.Error("failed router not interior to primary")
		}
	}
}

func TestDoubleRouterScenarios(t *testing.T) {
	g := topology.Grid(4, 4)
	scens := sampleOn(t, g, DoubleRouter, 20)
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	for _, s := range scens {
		if len(s.Nodes) != 2 {
			t.Fatalf("%d failed routers", len(s.Nodes))
		}
		if s.Nodes[0] == s.Nodes[1] {
			t.Error("duplicate router")
		}
		for _, r := range s.Nodes {
			if r == s.Src || r == s.Dst {
				t.Error("endpoint failed")
			}
		}
	}
}

func TestAdjacentPairsGiveNoRouterScenarios(t *testing.T) {
	g := topology.Complete(4) // every pair adjacent: no interior routers
	scens := sampleOn(t, g, SingleRouter, 20)
	if len(scens) != 0 {
		t.Errorf("complete graph produced %d router scenarios", len(scens))
	}
}

func TestDeterministicSampling(t *testing.T) {
	g := topology.Grid(3, 5)
	o := spath.NewOracle(g)
	a := Sample(g, o, SingleLink, 5, rand.New(rand.NewSource(7)))
	b := Sample(g, o, SingleLink, 5, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("sampling not deterministic")
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].Edges[0] != b[i].Edges[0] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{SingleLink, DoubleLink, SingleRouter, DoubleRouter} {
		if k.String() == "" {
			t.Error("empty Kind string")
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestEnumerateSingleLink(t *testing.T) {
	g := topology.Ring(4)
	o := spath.NewOracle(g)
	scens := EnumerateSingleLink(g, o)
	// 12 ordered pairs; opposite pairs have 2-hop primaries (4 pairs),
	// adjacent pairs 1-hop (8 pairs): 8*1 + 4*2 = 16 scenarios.
	if len(scens) != 16 {
		t.Fatalf("enumerated %d scenarios, want 16", len(scens))
	}
	seen := make(map[string]bool)
	for _, sc := range scens {
		key := string(rune(sc.Src)) + "/" + string(rune(sc.Dst)) + "/" + string(rune(sc.Edges[0]))
		if seen[key] {
			t.Fatalf("duplicate scenario %+v", sc)
		}
		seen[key] = true
		if sc.Primary.Edges[sc.PathIndex] != sc.Edges[0] {
			t.Fatal("PathIndex mismatch")
		}
	}
}

func TestEnumerateCoversSampled(t *testing.T) {
	// Every sampled scenario must appear in the exhaustive enumeration.
	g := topology.Grid(3, 3)
	o := spath.NewOracle(g)
	all := make(map[[3]int32]bool)
	for _, sc := range EnumerateSingleLink(g, o) {
		all[[3]int32{int32(sc.Src), int32(sc.Dst), int32(sc.Edges[0])}] = true
	}
	for _, sc := range Sample(g, o, SingleLink, 10, rand.New(rand.NewSource(2))) {
		if !all[[3]int32{int32(sc.Src), int32(sc.Dst), int32(sc.Edges[0])}] {
			t.Fatalf("sampled scenario missing from enumeration: %+v", sc)
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	if got := Sample(graph.New(1), spath.NewOracle(graph.New(1)), SingleLink, 5, rand.New(rand.NewSource(1))); got != nil {
		t.Error("singleton graph produced scenarios")
	}
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	// Single link on a 2-node graph works; double cannot find a second.
	if got := sampleOn(t, g, DoubleLink, 5); len(got) != 0 {
		t.Error("double-link scenario on a single-edge graph")
	}
}
