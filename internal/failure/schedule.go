package failure

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"rbpc/internal/graph"
)

// StepKind enumerates the operations of a chaos schedule — the input
// language of the fault-injection conformance harness (internal/chaos).
// Where Event is the engine's raw churn stream, a Step also carries the
// observation points (queries) and synchronization points (flushes) that
// make a failing run reproducible and shrinkable.
type StepKind int

const (
	// StepFail takes Edge down.
	StepFail StepKind = iota + 1
	// StepRepair brings Edge back up.
	StepRepair
	// StepQuery asks the engine for the pair (Src, Dst) and checks the
	// answer against the harness oracles.
	StepQuery
	// StepFlush blocks until every prior event is reflected in the
	// published snapshot, then checks the snapshot agrees with the
	// reference model.
	StepFlush
	// StepSettle waits (in real time) until the published snapshot's
	// restoration state is time-invariant — under the engine's hybrid
	// scheme, until every reachable router's flood horizon has passed and
	// the sources serve their final answers. A no-op for the other
	// schemes, whose snapshots never change after publish.
	StepSettle
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepFail:
		return "fail"
	case StepRepair:
		return "repair"
	case StepQuery:
		return "query"
	case StepFlush:
		return "flush"
	case StepSettle:
		return "settle"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one operation of a chaos schedule.
type Step struct {
	Kind StepKind
	// Edge is the operand of StepFail/StepRepair.
	Edge graph.EdgeID
	// Src, Dst are the operands of StepQuery.
	Src, Dst graph.NodeID
}

// Event converts a churn step to the engine's event type. It panics on
// query/flush steps, which have no event equivalent.
func (s Step) Event() Event {
	switch s.Kind {
	case StepFail:
		return Event{Edge: s.Edge}
	case StepRepair:
		return Event{Repair: true, Edge: s.Edge}
	default:
		panic(fmt.Sprintf("failure: Step %v has no Event form", s.Kind))
	}
}

// Schedule is an ordered chaos schedule. The zero value is empty.
type Schedule []Step

// Churn counts the fail/repair steps.
func (s Schedule) Churn() int {
	n := 0
	for _, st := range s {
		if st.Kind == StepFail || st.Kind == StepRepair {
			n++
		}
	}
	return n
}

// Queries counts the query steps.
func (s Schedule) Queries() int {
	n := 0
	for _, st := range s {
		if st.Kind == StepQuery {
			n++
		}
	}
	return n
}

// Encode writes the schedule in its line-oriented text form, one step per
// line: "fail <edge>", "repair <edge>", "query <src> <dst>", "flush".
// The format is the corpus format replayed by cmd/rbpc-chaos; encoding
// must be byte-stable so corpus files diff cleanly across runs.
//
//rbpc:deterministic
func (s Schedule) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range s {
		var err error
		switch st.Kind {
		case StepFail, StepRepair:
			_, err = fmt.Fprintf(bw, "%s %d\n", st.Kind, st.Edge)
		case StepQuery:
			_, err = fmt.Fprintf(bw, "query %d %d\n", st.Src, st.Dst)
		case StepFlush:
			_, err = fmt.Fprintln(bw, "flush")
		case StepSettle:
			_, err = fmt.Fprintln(bw, "settle")
		default:
			err = fmt.Errorf("failure: encoding unknown step kind %v", st.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the schedule as its Encode form.
func (s Schedule) String() string {
	var b strings.Builder
	_ = s.Encode(&b)
	return b.String()
}

// DecodeSchedule parses the Encode format. Blank lines and '#' comments
// are ignored.
//
//rbpc:deterministic
func DecodeSchedule(r io.Reader) (Schedule, error) {
	sc := bufio.NewScanner(r)
	var s Schedule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		atoi := func(i int) (int, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("missing operand")
			}
			return strconv.Atoi(fields[i])
		}
		var st Step
		var err error
		switch fields[0] {
		case "fail", "repair":
			if len(fields) != 2 {
				return nil, fmt.Errorf("failure: line %d: %s takes one edge operand", lineNo, fields[0])
			}
			var e int
			e, err = atoi(1)
			st = Step{Kind: StepFail, Edge: graph.EdgeID(e)}
			if fields[0] == "repair" {
				st.Kind = StepRepair
			}
		case "query":
			if len(fields) != 3 {
				return nil, fmt.Errorf("failure: line %d: query takes src and dst", lineNo)
			}
			var a, b int
			a, err = atoi(1)
			if err == nil {
				b, err = atoi(2)
			}
			st = Step{Kind: StepQuery, Src: graph.NodeID(a), Dst: graph.NodeID(b)}
		case "flush":
			if len(fields) != 1 {
				return nil, fmt.Errorf("failure: line %d: flush takes no operands", lineNo)
			}
			st = Step{Kind: StepFlush}
		case "settle":
			if len(fields) != 1 {
				return nil, fmt.Errorf("failure: line %d: settle takes no operands", lineNo)
			}
			st = Step{Kind: StepSettle}
		default:
			return nil, fmt.Errorf("failure: line %d: unknown step %q", lineNo, fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: %v", lineNo, err)
		}
		s = append(s, st)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("failure: %w", err)
	}
	return s, nil
}

// ChaosSchedule generates a reproducible chaos schedule over g's links:
// the fail/repair walk of ChurnSchedule (at most maxDown links down at any
// prefix, no double-fail/double-repair), interleaved with query steps on
// random connected-candidate pairs and periodic flush barriers, each flush
// followed by a burst of queries so that every epoch transition is
// deterministically observed. The schedule ends with a drain back to the
// pristine network, a final flush, and a final query burst.
//
// steps counts the churn events; the returned schedule is longer (queries,
// flushes, drain). Same (g, steps, maxDown, rng seed) -> identical
// schedule.
//
//rbpc:deterministic
func ChaosSchedule(g *graph.Graph, steps, maxDown int, rng *rand.Rand) Schedule {
	if maxDown < 1 {
		maxDown = 1
	}
	m := g.Size()
	n := g.Order()
	if m == 0 || n < 2 || steps <= 0 {
		return nil
	}

	sched := make(Schedule, 0, 4*steps)
	down := make([]graph.EdgeID, 0, maxDown)
	isDown := make(map[graph.EdgeID]bool, maxDown)

	query := func() Step {
		for {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			if s != d {
				return Step{Kind: StepQuery, Src: s, Dst: d}
			}
		}
	}
	queryBurst := func(k int) {
		for i := 0; i < k; i++ {
			sched = append(sched, query())
		}
	}

	churn := 0
	for churn < steps {
		repair := len(down) > 0 &&
			(len(down) >= maxDown || rng.Intn(maxDown+1) < len(down))
		if repair {
			i := rng.Intn(len(down))
			e := down[i]
			down[i] = down[len(down)-1]
			down = down[:len(down)-1]
			delete(isDown, e)
			sched = append(sched, Step{Kind: StepRepair, Edge: e})
		} else {
			var e graph.EdgeID
			for {
				e = graph.EdgeID(rng.Intn(m))
				if !isDown[e] {
					break
				}
			}
			down = append(down, e)
			isDown[e] = true
			sched = append(sched, Step{Kind: StepFail, Edge: e})
		}
		churn++

		// Racing queries: land while the writer may still be rebuilding.
		if rng.Intn(2) == 0 {
			queryBurst(1 + rng.Intn(2))
		}
		// Synchronization point: flush, then observe deterministically.
		if rng.Intn(3) == 0 {
			sched = append(sched, Step{Kind: StepFlush})
			queryBurst(2 + rng.Intn(3))
		}
	}

	// Drain to pristine so every run covers the full repair direction.
	rng.Shuffle(len(down), func(i, j int) { down[i], down[j] = down[j], down[i] })
	for _, e := range down {
		sched = append(sched, Step{Kind: StepRepair, Edge: e})
	}
	sched = append(sched, Step{Kind: StepFlush})
	queryBurst(4)
	return sched
}
