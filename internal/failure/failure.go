// Package failure generates the failure scenarios of the paper's
// methodology (Section 5): sample a source-destination pair, take its
// basic LSP, and fail each element along it — each link for link-failure
// studies, each interior router for router-failure studies, and each
// unordered pair of on-path elements for the double-failure studies.
package failure

import (
	"fmt"
	"math/rand"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// Kind is a failure class, one per block of the paper's Table 2.
type Kind int

const (
	SingleLink Kind = iota + 1
	DoubleLink
	SingleRouter
	DoubleRouter
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SingleLink:
		return "one link failure"
	case DoubleLink:
		return "two link failures"
	case SingleRouter:
		return "one router failure"
	case DoubleRouter:
		return "two router failures"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scenario is one failure instance to restore: the sampled pair, its
// primary (basic) path, and the failed elements.
type Scenario struct {
	Src, Dst graph.NodeID
	// Primary is the pair's basic LSP in the original network.
	Primary graph.Path
	// Edges are the failed links; Nodes the failed routers.
	Edges []graph.EdgeID
	Nodes []graph.NodeID
	// PathIndex is, for link scenarios, the index within Primary.Edges of
	// the on-path failed link (the first of Edges); -1 for router
	// scenarios.
	PathIndex int
}

// View returns the failure view of g for this scenario.
func (s Scenario) View(g *graph.Graph) *graph.FailureView {
	return graph.Fail(g, s.Edges, s.Nodes)
}

// K returns the failure count (the k of the theorems).
func (s Scenario) K() int { return len(s.Edges) + len(s.Nodes) }

// Sample draws scenarios per the paper's methodology: trials random
// connected pairs; for each pair, one scenario per on-path element of the
// given kind — each link (or interior router) for the single-failure
// kinds, each unordered pair of on-path links (or interior routers) for
// the double-failure kinds. The oracle must answer for the original graph.
func Sample(g *graph.Graph, o *spath.Oracle, kind Kind, trials int, rng *rand.Rand) []Scenario {
	n := g.Order()
	if n < 2 {
		return nil
	}
	var out []Scenario
	for t := 0; t < trials; t++ {
		src, dst, primary, ok := samplePair(g, o, rng)
		if !ok {
			continue
		}
		switch kind {
		case SingleLink:
			for i, e := range primary.Edges {
				out = append(out, Scenario{
					Src: src, Dst: dst, Primary: primary,
					Edges:     []graph.EdgeID{e},
					PathIndex: i,
				})
			}
		case DoubleLink:
			for i := 0; i < primary.Hops(); i++ {
				for j := i + 1; j < primary.Hops(); j++ {
					out = append(out, Scenario{
						Src: src, Dst: dst, Primary: primary,
						Edges:     []graph.EdgeID{primary.Edges[i], primary.Edges[j]},
						PathIndex: i,
					})
				}
			}
		case SingleRouter:
			for _, r := range interiorNodes(primary) {
				out = append(out, Scenario{
					Src: src, Dst: dst, Primary: primary,
					Nodes:     []graph.NodeID{r},
					PathIndex: -1,
				})
			}
		case DoubleRouter:
			interior := interiorNodes(primary)
			for i := 0; i < len(interior); i++ {
				for j := i + 1; j < len(interior); j++ {
					out = append(out, Scenario{
						Src: src, Dst: dst, Primary: primary,
						Nodes:     []graph.NodeID{interior[i], interior[j]},
						PathIndex: -1,
					})
				}
			}
		default:
			panic(fmt.Sprintf("failure: unknown kind %v", kind))
		}
	}
	return out
}

// EnumerateSingleLink generates the exhaustive single-link study: one
// scenario per (ordered pair, on-path link) over EVERY connected pair —
// the paper's methodology without sampling. Quadratic in nodes; meant
// for small graphs and exactness tests (the sampled Sample estimates
// converge to these numbers).
func EnumerateSingleLink(g *graph.Graph, o *spath.Oracle) []Scenario {
	n := g.Order()
	var out []Scenario
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			primary, ok := o.Path(graph.NodeID(s), graph.NodeID(d))
			if !ok || primary.Hops() == 0 {
				continue
			}
			for i, e := range primary.Edges {
				out = append(out, Scenario{
					Src: graph.NodeID(s), Dst: graph.NodeID(d), Primary: primary,
					Edges:     []graph.EdgeID{e},
					PathIndex: i,
				})
			}
		}
	}
	return out
}

// samplePair draws a random connected ordered pair and its primary path.
func samplePair(g *graph.Graph, o *spath.Oracle, rng *rand.Rand) (graph.NodeID, graph.NodeID, graph.Path, bool) {
	n := g.Order()
	for attempt := 0; attempt < 64; attempt++ {
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		p, ok := o.Path(src, dst)
		if !ok || p.Hops() == 0 {
			continue
		}
		return src, dst, p, true
	}
	return 0, 0, graph.Path{}, false
}

func interiorNodes(p graph.Path) []graph.NodeID {
	if len(p.Nodes) <= 2 {
		return nil
	}
	return p.Nodes[1 : len(p.Nodes)-1]
}
