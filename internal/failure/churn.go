package failure

import (
	"math/rand"

	"rbpc/internal/graph"
)

// Event is one step of a churn sequence: a single link goes down or comes
// back up. Churn is the input stream of the online restoration engine
// (internal/engine), which coalesces bursts of events into epochs.
type Event struct {
	// Repair is false for a failure, true for a repair.
	Repair bool
	Edge   graph.EdgeID
}

// ChurnSchedule generates a reproducible sequence of steps fail/repair
// events over g's links such that at every prefix of the sequence:
//
//   - at most maxDown links are down at once,
//   - no link fails while already down, and no link is repaired while up.
//
// Failures and repairs are interleaved at random, biased so the number of
// concurrently-down links random-walks below maxDown rather than pinning
// to it. The schedule ends with repairs for every link still down, so a
// consumer that applies the whole schedule lands back on the pristine
// network; the returned slice therefore has length >= steps (steps chosen
// events plus the final drain).
//
//rbpc:deterministic
func ChurnSchedule(g *graph.Graph, steps, maxDown int, rng *rand.Rand) []Event {
	if maxDown < 1 {
		maxDown = 1
	}
	m := g.Size()
	if m == 0 || steps <= 0 {
		return nil
	}

	events := make([]Event, 0, steps+maxDown)
	down := make([]graph.EdgeID, 0, maxDown) // links currently down
	isDown := make(map[graph.EdgeID]bool, maxDown)

	for len(events) < steps {
		// Repair with probability proportional to how full the down-set is,
		// so the walk hovers in the middle of [0, maxDown].
		repair := len(down) > 0 &&
			(len(down) >= maxDown || rng.Intn(maxDown+1) < len(down))
		if repair {
			i := rng.Intn(len(down))
			e := down[i]
			down[i] = down[len(down)-1]
			down = down[:len(down)-1]
			delete(isDown, e)
			events = append(events, Event{Repair: true, Edge: e})
			continue
		}
		// Pick an up link to fail. Rejection-sample; with maxDown << m this
		// terminates quickly.
		var e graph.EdgeID
		for {
			e = graph.EdgeID(rng.Intn(m))
			if !isDown[e] {
				break
			}
		}
		down = append(down, e)
		isDown[e] = true
		events = append(events, Event{Repair: false, Edge: e})
	}

	// Drain: repair everything still down, in random order.
	rng.Shuffle(len(down), func(i, j int) { down[i], down[j] = down[j], down[i] })
	for _, e := range down {
		events = append(events, Event{Repair: true, Edge: e})
	}
	return events
}
