// Package pqueue provides an indexed min-heap priority queue specialized for
// graph algorithms: items are dense non-negative integer IDs (vertex IDs) and
// priorities are float64 keys (tentative distances).
//
// The queue supports DecreaseKey in O(log n), which makes it suitable as the
// workhorse of Dijkstra's algorithm, and it is allocation-free after
// construction when reused via Reset.
package pqueue

import "fmt"

// notInHeap marks an item that is currently not resident in the heap.
const notInHeap = -1

// panicf raises a formatted panic. Keeping the fmt call out of line keeps
// the heap operations that can panic (Push, Key, DecreaseKey) within the
// compiler's inlining budget — they sit in the Dijkstra inner loop, and
// the panic branches are never taken on valid input.
//
//go:noinline
//rbpc:hotpath
func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //rbpc:allow hotpath -- cold panic path, unreachable on valid input
}

// IndexedMinHeap is a binary min-heap over the item IDs 0..n-1 keyed by
// float64 priorities. The zero value is not usable; construct with New.
//
// IndexedMinHeap is not safe for concurrent use.
type IndexedMinHeap struct {
	// heap[i] is the item stored at heap position i.
	heap []int32
	// pos[item] is the heap position of item, or notInHeap.
	pos []int32
	// key[item] is the priority of item; meaningful only while the item is
	// in the heap.
	key []float64
}

// New returns an empty heap able to hold items with IDs in [0, n).
func New(n int) *IndexedMinHeap {
	h := &IndexedMinHeap{
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
		key:  make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = notInHeap
	}
	return h
}

// Len reports the number of items currently in the heap.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Len() int { return len(h.heap) }

// Cap reports the maximum item ID the heap can hold plus one.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Cap() int { return len(h.pos) }

// Contains reports whether item is currently in the heap.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Contains(item int) bool {
	return item >= 0 && item < len(h.pos) && h.pos[item] != notInHeap
}

// Key returns the current priority of item. It panics if the item is not in
// the heap.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Key(item int) float64 {
	if !h.Contains(item) {
		panicf("pqueue: Key of item %d not in heap", item)
	}
	return h.key[item]
}

// Push inserts item with the given priority. It panics if the item is already
// in the heap or out of range.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Push(item int, priority float64) {
	if item < 0 || item >= len(h.pos) {
		panicf("pqueue: Push item %d out of range [0,%d)", item, len(h.pos))
	}
	if h.pos[item] != notInHeap {
		panicf("pqueue: Push of item %d already in heap", item)
	}
	h.key[item] = priority
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item)) //rbpc:allow hotpath -- backing array presized to capacity n in New
	h.siftUp(len(h.heap) - 1)
}

// Pop removes and returns the item with the minimum priority and that
// priority. It panics on an empty heap.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Pop() (item int, priority float64) {
	if len(h.heap) == 0 {
		panic("pqueue: Pop from empty heap")
	}
	top := h.heap[0]
	pri := h.key[top]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = notInHeap
	if last > 0 {
		h.siftDown(0)
	}
	return int(top), pri
}

// Peek returns the minimum item and its priority without removing it. It
// panics on an empty heap.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Peek() (item int, priority float64) {
	if len(h.heap) == 0 {
		panic("pqueue: Peek of empty heap")
	}
	return int(h.heap[0]), h.key[h.heap[0]]
}

// DecreaseKey lowers the priority of an item already in the heap. It panics
// if the item is absent or if the new priority is greater than the current
// one.
//
//rbpc:hotpath
func (h *IndexedMinHeap) DecreaseKey(item int, priority float64) {
	if !h.Contains(item) {
		panicf("pqueue: DecreaseKey of item %d not in heap", item)
	}
	if priority > h.key[item] {
		panicf("pqueue: DecreaseKey of item %d from %v to larger %v", item, h.key[item], priority)
	}
	h.key[item] = priority
	h.siftUp(int(h.pos[item]))
}

// PushOrDecrease inserts the item if absent, lowers its key if the new
// priority improves on the current one, and otherwise does nothing. It
// reports whether the heap changed.
//
//rbpc:hotpath
func (h *IndexedMinHeap) PushOrDecrease(item int, priority float64) bool {
	if !h.Contains(item) {
		h.Push(item, priority)
		return true
	}
	if priority < h.key[item] {
		h.DecreaseKey(item, priority)
		return true
	}
	return false
}

// Reset empties the heap, retaining capacity, so it can be reused without
// reallocating.
//
//rbpc:hotpath
func (h *IndexedMinHeap) Reset() {
	for _, it := range h.heap {
		h.pos[it] = notInHeap
	}
	h.heap = h.heap[:0]
}

//rbpc:hotpath
func (h *IndexedMinHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

//rbpc:hotpath
func (h *IndexedMinHeap) less(i, j int) bool {
	ki, kj := h.key[h.heap[i]], h.key[h.heap[j]]
	if ki != kj {
		return ki < kj
	}
	// Tie-break on item ID for determinism across runs.
	return h.heap[i] < h.heap[j]
}

//rbpc:hotpath
func (h *IndexedMinHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

//rbpc:hotpath
func (h *IndexedMinHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
