package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New(10)
	if got := h.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
	if h.Contains(3) {
		t.Fatal("Contains(3) = true on empty heap")
	}
	if got := h.Cap(); got != 10 {
		t.Fatalf("Cap() = %d, want 10", got)
	}
}

func TestPushPopOrdering(t *testing.T) {
	h := New(8)
	input := map[int]float64{0: 5, 1: 3, 2: 8, 3: 1, 4: 9, 5: 2, 6: 7, 7: 4}
	for item, pri := range input {
		h.Push(item, pri)
	}
	var got []float64
	for h.Len() > 0 {
		_, pri := h.Pop()
		got = append(got, pri)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("Pop sequence not sorted: %v", got)
	}
	if len(got) != len(input) {
		t.Errorf("popped %d items, want %d", len(got), len(input))
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if item, pri := h.Peek(); item != 2 || pri != 5 {
		t.Fatalf("Peek() = (%d, %v), want (2, 5)", item, pri)
	}
	if got := h.Key(2); got != 5 {
		t.Fatalf("Key(2) = %v, want 5", got)
	}
}

func TestPushOrDecrease(t *testing.T) {
	h := New(4)
	if !h.PushOrDecrease(1, 7) {
		t.Fatal("first PushOrDecrease should report change")
	}
	if h.PushOrDecrease(1, 9) {
		t.Fatal("PushOrDecrease with larger key should report no change")
	}
	if !h.PushOrDecrease(1, 3) {
		t.Fatal("PushOrDecrease with smaller key should report change")
	}
	if item, pri := h.Pop(); item != 1 || pri != 3 {
		t.Fatalf("Pop() = (%d, %v), want (1, 3)", item, pri)
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(5-i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len() after Reset = %d, want 0", h.Len())
	}
	for i := 0; i < 5; i++ {
		if h.Contains(i) {
			t.Fatalf("Contains(%d) = true after Reset", i)
		}
	}
	// Heap must be reusable after Reset.
	h.Push(3, 1)
	h.Push(2, 0)
	if item, _ := h.Pop(); item != 2 {
		t.Fatalf("Pop() after reuse = %d, want 2", item)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	h := New(6)
	for _, it := range []int{5, 2, 4, 0, 3, 1} {
		h.Push(it, 1.0)
	}
	var got []int
	for h.Len() > 0 {
		it, _ := h.Pop()
		got = append(got, it)
	}
	for i, it := range got {
		if it != i {
			t.Fatalf("equal-key pops = %v, want ascending IDs", got)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	h := New(3)
	mustPanic("Pop empty", func() { h.Pop() })
	mustPanic("Peek empty", func() { h.Peek() })
	mustPanic("Push out of range", func() { h.Push(3, 1) })
	mustPanic("Push negative", func() { h.Push(-1, 1) })
	h.Push(1, 5)
	mustPanic("double Push", func() { h.Push(1, 6) })
	mustPanic("DecreaseKey absent", func() { h.DecreaseKey(0, 1) })
	mustPanic("DecreaseKey larger", func() { h.DecreaseKey(1, 9) })
	mustPanic("Key absent", func() { h.Key(0) })
}

// TestPanicMessages pins the formatted panic values: the panics are raised
// through the out-of-line panicf helper (which keeps the fmt machinery off
// the inlinable fast paths), and this guards the messages against that
// indirection losing their diagnostic detail.
func TestPanicMessages(t *testing.T) {
	panicValue := func(f func()) (v any) {
		defer func() { v = recover() }()
		f()
		return nil
	}
	h := New(3)
	h.Push(1, 5)
	cases := []struct {
		name string
		f    func()
		want string
	}{
		{"Push out of range", func() { h.Push(3, 1) }, "pqueue: Push item 3 out of range [0,3)"},
		{"double Push", func() { h.Push(1, 6) }, "pqueue: Push of item 1 already in heap"},
		{"Key absent", func() { h.Key(0) }, "pqueue: Key of item 0 not in heap"},
		{"DecreaseKey absent", func() { h.DecreaseKey(0, 1) }, "pqueue: DecreaseKey of item 0 not in heap"},
		{"DecreaseKey larger", func() { h.DecreaseKey(1, 9) }, "pqueue: DecreaseKey of item 1 from 5 to larger 9"},
	}
	for _, tc := range cases {
		if got := panicValue(tc.f); got != tc.want {
			t.Errorf("%s: panic value = %v, want %q", tc.name, got, tc.want)
		}
	}
}

// TestQuickHeapSort is a property test: popping all elements after pushing a
// random priority assignment yields the priorities in sorted order, and
// items are each popped exactly once.
func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := New(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = rng.Float64() * 100
			h.Push(i, want[i])
		}
		seen := make([]bool, n)
		var got []float64
		for h.Len() > 0 {
			it, pri := h.Pop()
			if seen[it] {
				return false
			}
			seen[it] = true
			got = append(got, pri)
		}
		if len(got) != n || !sort.Float64sAreSorted(got) {
			return false
		}
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDecreaseKeyInvariant randomly interleaves pushes, pops and
// decrease-keys and checks the heap never pops a key smaller than one popped
// before it while the heap content only shrank.
func TestQuickDecreaseKeyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		h := New(n)
		for op := 0; op < 500; op++ {
			item := rng.Intn(n)
			switch {
			case !h.Contains(item):
				h.Push(item, rng.Float64()*50)
			case rng.Intn(2) == 0:
				h.DecreaseKey(item, h.Key(item)*rng.Float64())
			default:
				prevItem, prevKey := h.Peek()
				it, k := h.Pop()
				if it != prevItem || k != prevKey {
					return false
				}
				// Every remaining key must be >= the popped key.
				if h.Len() > 0 {
					if _, next := h.Peek(); next < k {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	const n = 1024
	h := New(n)
	rng := rand.New(rand.NewSource(1))
	pris := make([]float64, n)
	for i := range pris {
		pris[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for j := 0; j < n; j++ {
			h.Push(j, pris[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
