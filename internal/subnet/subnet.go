// Package subnet maintains families of shortest paths over restrictions
// of the network, the deployment style the paper's introduction motivates:
//
//	"Leading designs of QoS routing and traffic engineering in MPLS
//	clouds suggest employing shortest path routing over subnets of the
//	original network. Such restrictions might be the subnetwork that
//	consists of all the OC48 links, all the links with available
//	capacity over some timescale, or all the links with delay below an
//	appropriate threshold."
//
// A Manager holds one restoration family per traffic class: the
// restricted topology, its base set, and a restorer. A failure in the
// parent network maps into each subnet and is restored *within* that
// subnet, so a gold-class path never falls back onto copper links. The
// theorems apply per subnet: a restriction of the network is just a
// network.
package subnet

import (
	"fmt"
	"sort"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
)

// Subnet is a restriction of a parent graph to the edges accepted by a
// predicate. Node IDs are shared with the parent; edge IDs are remapped
// (the subnet is its own dense graph) with translations kept both ways.
type Subnet struct {
	Name string
	// G is the restricted topology.
	G *graph.Graph

	toSub   map[graph.EdgeID]graph.EdgeID
	fromSub []graph.EdgeID
}

// Extract builds the subnet of parent containing exactly the edges for
// which keep returns true.
func Extract(parent *graph.Graph, name string, keep func(graph.Edge) bool) *Subnet {
	s := &Subnet{
		Name:  name,
		G:     graph.New(parent.Order()),
		toSub: make(map[graph.EdgeID]graph.EdgeID),
	}
	for _, e := range parent.Edges() {
		if !keep(e) {
			continue
		}
		sub := s.G.AddEdge(e.U, e.V, e.W)
		s.toSub[e.ID] = sub
		s.fromSub = append(s.fromSub, e.ID)
	}
	return s
}

// Contains reports whether the parent edge survives into the subnet.
func (s *Subnet) Contains(parentEdge graph.EdgeID) bool {
	_, ok := s.toSub[parentEdge]
	return ok
}

// ToParent translates a subnet edge ID back to the parent's.
func (s *Subnet) ToParent(subEdge graph.EdgeID) graph.EdgeID {
	return s.fromSub[subEdge]
}

// MapFailures translates parent-edge failures into the subnet, dropping
// failures of edges the subnet does not carry.
func (s *Subnet) MapFailures(parentEdges []graph.EdgeID) []graph.EdgeID {
	var out []graph.EdgeID
	for _, e := range parentEdges {
		if sub, ok := s.toSub[e]; ok {
			out = append(out, sub)
		}
	}
	return out
}

// PathToParent translates a path through the subnet into the parent's
// edge IDs (nodes are shared).
func (s *Subnet) PathToParent(p graph.Path) graph.Path {
	out := graph.Path{
		Nodes: append([]graph.NodeID(nil), p.Nodes...),
		Edges: make([]graph.EdgeID, len(p.Edges)),
	}
	for i, e := range p.Edges {
		out.Edges[i] = s.fromSub[e]
	}
	return out
}

// Family is one traffic class: a subnet with its base set and restorer.
type Family struct {
	Subnet   *Subnet
	Base     paths.Base
	Restorer *core.Restorer
}

// Manager routes and restores per traffic class over a shared parent
// topology.
type Manager struct {
	parent   *graph.Graph
	families map[string]*Family
	order    []string
}

// NewManager returns a Manager over the parent topology with no classes.
func NewManager(parent *graph.Graph) *Manager {
	return &Manager{parent: parent, families: make(map[string]*Family)}
}

// AddClass registers a traffic class whose routes are shortest paths of
// the subnet selected by keep. Strategy selects the decomposition (greedy
// needs the subpath-closed all-shortest base it gets here).
func (m *Manager) AddClass(name string, keep func(graph.Edge) bool, strategy core.Strategy) (*Family, error) {
	if _, dup := m.families[name]; dup {
		return nil, fmt.Errorf("subnet: duplicate class %q", name)
	}
	sub := Extract(m.parent, name, keep)
	if sub.G.Size() == 0 {
		return nil, fmt.Errorf("subnet: class %q selects no edges", name)
	}
	var base paths.Base
	switch strategy {
	case core.StrategyGreedy:
		base = paths.NewAllShortest(sub.G)
	case core.StrategySparse:
		base = paths.NewUniqueShortest(sub.G)
	default:
		return nil, fmt.Errorf("subnet: class %q: unknown strategy %v", name, strategy)
	}
	f := &Family{Subnet: sub, Base: base, Restorer: core.NewRestorer(base, strategy)}
	m.families[name] = f
	m.order = append(m.order, name)
	return f, nil
}

// Class returns a registered family.
func (m *Manager) Class(name string) (*Family, bool) {
	f, ok := m.families[name]
	return f, ok
}

// Classes returns the registered class names in registration order.
func (m *Manager) Classes() []string {
	return append([]string(nil), m.order...)
}

// Route returns the class's current route between s and d over the
// unfailed subnet, in parent edge IDs.
func (m *Manager) Route(class string, s, d graph.NodeID) (graph.Path, bool) {
	f, ok := m.families[class]
	if !ok {
		return graph.Path{}, false
	}
	p, ok := f.Base.Between(s, d)
	if !ok {
		return graph.Path{}, false
	}
	return f.Subnet.PathToParent(p), true
}

// Restore computes a restoration for the pair within the class's subnet,
// after the given parent-edge failures. The returned plan's paths are in
// parent edge IDs. Failures of edges outside the subnet do not affect
// the class (its routes never used them).
func (m *Manager) Restore(class string, failedParentEdges []graph.EdgeID, s, d graph.NodeID) (core.Plan, error) {
	f, ok := m.families[class]
	if !ok {
		return core.Plan{}, fmt.Errorf("subnet: unknown class %q", class)
	}
	subFailed := f.Subnet.MapFailures(failedParentEdges)
	fv := graph.FailEdges(f.Subnet.G, subFailed...)
	plan, err := f.Restorer.Restore(fv, s, d)
	if err != nil {
		return core.Plan{}, fmt.Errorf("subnet: class %q: %w", class, err)
	}
	// Translate to parent IDs.
	plan.Backup = f.Subnet.PathToParent(plan.Backup)
	for i := range plan.Decomp.Components {
		plan.Decomp.Components[i].Path = f.Subnet.PathToParent(plan.Decomp.Components[i].Path)
	}
	return plan, nil
}

// AffectedClasses returns the names of classes that carry the failed
// parent edge (sorted), i.e. whose families must react.
func (m *Manager) AffectedClasses(parentEdge graph.EdgeID) []string {
	var out []string
	for name, f := range m.families {
		if f.Subnet.Contains(parentEdge) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
