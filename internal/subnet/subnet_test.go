package subnet

import (
	"math/rand"
	"testing"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// tieredGraph builds a graph with fast (weight 1) and slow (weight 5)
// links: a fast 6-ring plus slow chords.
func tieredGraph() *graph.Graph {
	g := topology.Ring(6) // edges 0..5, weight 1 = "fast"
	g.AddEdge(0, 3, 5)    // slow chords
	g.AddEdge(1, 4, 5)
	g.AddEdge(2, 5, 5)
	return g
}

func fast(e graph.Edge) bool { return e.W == 1 }
func slow(e graph.Edge) bool { return e.W > 1 }

func TestExtract(t *testing.T) {
	g := tieredGraph()
	sub := Extract(g, "fast", fast)
	if sub.G.Size() != 6 || sub.G.Order() != g.Order() {
		t.Fatalf("fast subnet: %d edges, %d nodes", sub.G.Size(), sub.G.Order())
	}
	// Mapping round-trips.
	for subID := 0; subID < sub.G.Size(); subID++ {
		parent := sub.ToParent(graph.EdgeID(subID))
		if !sub.Contains(parent) {
			t.Errorf("Contains(%d) false for mapped edge", parent)
		}
		pe, se := g.Edge(parent), sub.G.Edge(graph.EdgeID(subID))
		if pe.U != se.U || pe.V != se.V || pe.W != se.W {
			t.Errorf("edge mismatch: parent %+v subnet %+v", pe, se)
		}
	}
	// Slow edges are not contained.
	for _, e := range g.Edges() {
		if slow(e) && sub.Contains(e.ID) {
			t.Errorf("slow edge %d in fast subnet", e.ID)
		}
	}
}

func TestMapFailures(t *testing.T) {
	g := tieredGraph()
	sub := Extract(g, "fast", fast)
	slowEdge := graph.EdgeID(6) // the 0-3 chord
	fastEdge := graph.EdgeID(0)
	mapped := sub.MapFailures([]graph.EdgeID{slowEdge, fastEdge})
	if len(mapped) != 1 {
		t.Fatalf("mapped = %v, want only the fast edge", mapped)
	}
	if sub.ToParent(mapped[0]) != fastEdge {
		t.Errorf("wrong mapping")
	}
}

func TestManagerRouteAndRestore(t *testing.T) {
	g := tieredGraph()
	m := NewManager(g)
	if _, err := m.AddClass("gold", fast, core.StrategyGreedy); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddClass("any", func(graph.Edge) bool { return true }, core.StrategyGreedy); err != nil {
		t.Fatal(err)
	}

	// Gold route 0->3 must stay on fast links: around the ring (3 hops),
	// never the weight-5 chord even though it is 1 hop.
	p, ok := m.Route("gold", 0, 3)
	if !ok {
		t.Fatal("no gold route")
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("parent-translated route invalid: %v", err)
	}
	for _, e := range p.Edges {
		if slow(g.Edge(e)) {
			t.Errorf("gold route uses slow edge %d", e)
		}
	}

	// Fail a fast link on that route; the gold restoration must stay
	// within the fast subnet.
	failed := p.Edges[0]
	plan, err := m.Restore("gold", []graph.EdgeID{failed}, 0, 3)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := plan.Backup.Validate(g); err != nil {
		t.Fatalf("backup invalid in parent: %v", err)
	}
	for _, e := range plan.Backup.Edges {
		if slow(g.Edge(e)) {
			t.Errorf("gold restoration left the fast subnet: edge %d", e)
		}
		if e == failed {
			t.Error("restoration uses the failed edge")
		}
	}
	// Theorem 1 within the subnet: one failure -> at most 2 components.
	if plan.PCLength() > 2 {
		t.Errorf("gold restoration used %d components", plan.PCLength())
	}

	// The "any" class may use slow links and restores too.
	plan2, err := m.Restore("any", []graph.EdgeID{failed}, 0, 3)
	if err != nil {
		t.Fatalf("any-class restore: %v", err)
	}
	if plan2.Backup.Hops() == 0 {
		t.Error("empty any-class backup")
	}
}

func TestManagerErrors(t *testing.T) {
	g := tieredGraph()
	m := NewManager(g)
	if _, err := m.AddClass("x", fast, core.StrategyGreedy); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddClass("x", fast, core.StrategyGreedy); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := m.AddClass("empty", func(graph.Edge) bool { return false }, core.StrategyGreedy); err == nil {
		t.Error("empty class accepted")
	}
	if _, err := m.AddClass("bad", fast, core.Strategy(9)); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := m.Restore("ghost", nil, 0, 1); err == nil {
		t.Error("unknown class accepted")
	}
	if _, ok := m.Route("ghost", 0, 1); ok {
		t.Error("route on unknown class")
	}
	if _, ok := m.Class("x"); !ok {
		t.Error("Class lookup failed")
	}
	if got := m.Classes(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Classes = %v", got)
	}
}

func TestRestoreDisconnectedWithinClass(t *testing.T) {
	// The fast subnet of the tiered graph is a ring: failing two fast
	// links partitions it even though the parent stays connected via the
	// slow chords. The gold class must report disconnection, NOT spill
	// onto slow links.
	g := tieredGraph()
	m := NewManager(g)
	if _, err := m.AddClass("gold", fast, core.StrategyGreedy); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Restore("gold", []graph.EdgeID{0, 3}, 0, 1); err == nil {
		t.Error("gold class restored across a class partition")
	}
	// Sanity: the parent itself is still connected.
	if !graph.Connected(graph.FailEdges(g, 0, 3)) {
		t.Fatal("test setup: parent should stay connected")
	}
}

func TestAffectedClasses(t *testing.T) {
	g := tieredGraph()
	m := NewManager(g)
	m.AddClass("gold", fast, core.StrategyGreedy)
	m.AddClass("bulk", slow, core.StrategySparse)
	m.AddClass("any", func(graph.Edge) bool { return true }, core.StrategyGreedy)

	got := m.AffectedClasses(0) // fast edge
	if len(got) != 2 || got[0] != "any" || got[1] != "gold" {
		t.Errorf("AffectedClasses(fast) = %v", got)
	}
	got = m.AffectedClasses(6) // slow chord
	if len(got) != 2 || got[0] != "any" || got[1] != "bulk" {
		t.Errorf("AffectedClasses(slow) = %v", got)
	}
}

func TestSparseClassOnISP(t *testing.T) {
	// Realistic use: core-only class on the ISP topology with the
	// padded-unique base and sparse restoration.
	g := topology.PaperISP(3)
	m := NewManager(g)
	coreOnly := func(e graph.Edge) bool { return e.W <= 3 } // core tier weights
	f, err := m.AddClass("core", coreOnly, core.StrategySparse)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Connected(f.Subnet.G) {
		// Core+agg tiers are connected by construction; if this fires the
		// generator changed shape.
		comps := graph.Components(f.Subnet.G)
		biggest := 0
		for _, c := range comps {
			if len(c) > biggest {
				biggest = len(c)
			}
		}
		t.Logf("core subnet has %d components (largest %d)", len(comps), biggest)
	}
	// Restore a few random core-subnet pairs after a subnet link failure.
	rng := rand.New(rand.NewSource(4))
	o := spath.NewOracle(f.Subnet.G)
	restored := 0
	for try := 0; try < 50 && restored < 5; try++ {
		s := graph.NodeID(rng.Intn(g.Order()))
		d := graph.NodeID(rng.Intn(g.Order()))
		if s == d {
			continue
		}
		p, ok := o.Path(s, d)
		if !ok || p.Hops() == 0 {
			continue
		}
		parentEdge := f.Subnet.ToParent(p.Edges[0])
		plan, err := m.Restore("core", []graph.EdgeID{parentEdge}, s, d)
		if err != nil {
			continue // partitioned within the class; fine
		}
		if err := plan.Backup.Validate(g); err != nil {
			t.Fatalf("backup invalid: %v", err)
		}
		if plan.Backup.HasEdge(parentEdge) {
			t.Fatal("backup uses failed edge")
		}
		restored++
	}
	if restored == 0 {
		t.Error("no successful class restorations")
	}
}
