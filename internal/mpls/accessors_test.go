package mpls

import (
	"testing"

	"rbpc/internal/graph"
)

func TestNetworkAccessors(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	if n.Graph() != g {
		t.Error("Graph()")
	}
	if !n.EdgeUp(0) {
		t.Error("fresh link down")
	}
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2))
	got, ok := n.LSPByID(lsp.ID)
	if !ok || got != lsp {
		t.Error("LSPByID")
	}
	if _, ok := n.LSPByID(999); ok {
		t.Error("LSPByID(bogus)")
	}
	if l, ok := lsp.HopLabel(0); !ok || l != lsp.FirstHopLabel() {
		t.Error("HopLabel(0)")
	}
	if _, ok := lsp.HopLabel(5); ok {
		t.Error("HopLabel out of range")
	}
	if _, ok := lsp.HopLabel(-1); ok {
		t.Error("HopLabel(-1)")
	}
}

func TestHopLabelPHP(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, err := n.EstablishLSPPHP(pathOf(g, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lsp.HopLabel(1); ok {
		t.Error("PHP last hop has a label")
	}
	if _, ok := lsp.HopLabel(0); !ok {
		t.Error("PHP first hop missing label")
	}
}

func TestSelfStackDirect(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	a, _ := n.EstablishLSP(pathOf(g, 0, 1, 2))
	b, _ := n.EstablishLSP(pathOf(g, 2, 3))
	stack, err := SelfStack([]*LSP{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 2 || stack[1] != a.SelfLabel() || stack[0] != b.SelfLabel() {
		t.Errorf("SelfStack = %v", stack)
	}
	if _, err := SelfStack(nil); err == nil {
		t.Error("empty SelfStack accepted")
	}
	if _, err := SelfStack([]*LSP{b, a}); err == nil {
		t.Error("non-chaining SelfStack accepted")
	}
	php, _ := n.EstablishLSPPHP(pathOf(g, 0, 1, 2))
	if _, err := SelfStack([]*LSP{php, b}); err == nil {
		t.Error("PHP non-final accepted")
	}
}

func TestClearFECAndDests(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	n.SetFEC(0, 3, FECEntry{Stack: []Label{1}, OutEdge: 0})
	n.SetFEC(0, 4, FECEntry{Stack: []Label{2}, OutEdge: 0})
	dests := n.Router(0).FECDests()
	if len(dests) != 2 {
		t.Errorf("FECDests = %v", dests)
	}
	n.ClearFEC(0, 3)
	if n.Router(0).FECSize() != 1 {
		t.Error("ClearFEC")
	}
	updates := n.Stats().FECUpdates
	n.ClearFEC(0, 3) // idempotent, no counter bump
	if n.Stats().FECUpdates != updates {
		t.Error("ClearFEC of absent row counted")
	}
}

func TestSyncNewEdges(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	id := g.AddEdge(0, 4, 1)
	n.SyncNewEdges()
	if !n.EdgeUp(id) {
		t.Error("new edge not up")
	}
	// The new link is usable for LSPs immediately.
	p := graph.Path{Nodes: []graph.NodeID{0, 4}, Edges: []graph.EdgeID{id}}
	if _, err := n.EstablishLSP(p); err != nil {
		t.Errorf("EstablishLSP over new link: %v", err)
	}
}
