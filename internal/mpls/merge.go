package mpls

import (
	"fmt"

	"rbpc/internal/graph"
)

// Label merging (Section 2 of the paper): "various methods to reduce the
// number of labels necessary have been considered, e.g., merging LSPs,
// which means using the same label for all the packets with the same
// destination even if they arrive from different ports."
//
// A DestTree is the merged form: one multipoint-to-point LSP per
// destination, following a next-hop tree. Every router holds exactly one
// ILM row per destination — n-1 rows per router for full coverage,
// against the hop-proportional footprint of point-to-point LSPs.
//
// Merged labels compose with path concatenation exactly like LSP
// self-labels: to route via intermediate M to destination D, push M's
// label for D beneath the stack that reaches M; M's pop exposes it and
// the merged tree carries the packet on.

// DestTree is an installed merged LSP toward one destination.
type DestTree struct {
	Dst graph.NodeID
	// labels[r] is the label router r expects on packets bound for Dst
	// (the row it holds in its ILM). The destination itself pops.
	labels map[graph.NodeID]Label
}

// LabelAt returns the merged label router r uses for this destination —
// the label to push so that a packet currently at r continues to Dst.
func (t *DestTree) LabelAt(r graph.NodeID) (Label, bool) {
	l, ok := t.labels[r]
	return l, ok
}

// Size returns the number of routers holding a row for this tree.
func (t *DestTree) Size() int { return len(t.labels) }

// InstallDestTree installs the merged LSP for dst along the given
// next-hop map: nextHop[r] is the arc router r forwards dst-bound traffic
// on. Every router with a next hop gets one ILM row; dst gets a pop row.
// The next-hop map must be loop-free and lead to dst (a shortest-path
// tree oriented toward dst); Validate-style checks reject arcs that do
// not originate at their router.
//
// It costs one signaling message per participating router (label
// distribution is per destination, as in LDP's default mode).
func (n *Network) InstallDestTree(dst graph.NodeID, nextHop map[graph.NodeID]graph.Arc) (*DestTree, error) {
	// First pass: validate and allocate labels.
	tree := &DestTree{Dst: dst, labels: make(map[graph.NodeID]Label, len(nextHop)+1)}
	for r, arc := range nextHop {
		if r == dst {
			return nil, fmt.Errorf("mpls: InstallDestTree: destination %d has a next hop", dst)
		}
		e := n.g.Edge(arc.Edge)
		if e.U != r && e.V != r {
			return nil, fmt.Errorf("mpls: InstallDestTree: router %d next hop over non-incident link %d", r, arc.Edge)
		}
		if e.Other(r) != arc.To {
			return nil, fmt.Errorf("mpls: InstallDestTree: router %d arc to %d over link %d mismatch", r, arc.To, arc.Edge)
		}
	}
	for r := range nextHop {
		tree.labels[r] = n.routers[r].allocLabel()
	}
	tree.labels[dst] = n.routers[dst].allocLabel()

	// Second pass: install rows. Router r swaps its label for the next
	// hop's label; the destination pops.
	for r, arc := range nextHop {
		next, ok := tree.labels[arc.To]
		if !ok {
			// A next hop that has no next hop itself and is not dst would
			// strand packets.
			n.uninstallPartial(tree)
			return nil, fmt.Errorf("mpls: InstallDestTree: router %d forwards to %d which has no row", r, arc.To)
		}
		n.routers[r].writableILM()[tree.labels[r]] = ILMEntry{Out: []Label{next}, OutEdge: arc.Edge}
	}
	n.routers[dst].writableILM()[tree.labels[dst]] = ILMEntry{Out: nil, OutEdge: LocalProcess}
	n.stats.signalingMsgs.Add(int64(len(tree.labels)))
	return tree, nil
}

func (n *Network) uninstallPartial(tree *DestTree) {
	for r := range tree.labels {
		n.routers[r].freeLabel(tree.labels[r])
	}
}

// RemoveDestTree uninstalls the tree's rows and frees its labels.
func (n *Network) RemoveDestTree(tree *DestTree) {
	for r, l := range tree.labels {
		n.routers[r].freeLabel(l)
	}
	n.stats.signalingMsgs.Add(int64(len(tree.labels)))
}

// SendMerged injects a packet at src carrying the merged label toward the
// tree's destination.
func (n *Network) SendMerged(src graph.NodeID, tree *DestTree) (*Packet, error) {
	l, ok := tree.LabelAt(src)
	if !ok {
		return nil, fmt.Errorf("mpls: router %d not on the tree for %d: %w", src, tree.Dst, ErrNoRoute)
	}
	pkt := &Packet{
		Src: src, Dst: tree.Dst,
		Stack: []Label{l},
		At:    src,
		TTL:   DefaultTTL,
		Trace: []graph.NodeID{src},
	}
	return pkt, n.Forward(pkt)
}

// MergedConcatStack builds the bottom-first stack that rides the given
// trees in order: the packet follows trees[0] from src to trees[0].Dst,
// whose pop exposes trees[1]'s label there, and so on. Each tree's
// destination must carry a label for the next tree.
func MergedConcatStack(src graph.NodeID, trees []*DestTree) ([]Label, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("mpls: empty merged concatenation")
	}
	at := src
	stack := make([]Label, len(trees))
	for i, tr := range trees {
		l, ok := tr.LabelAt(at)
		if !ok {
			return nil, fmt.Errorf("mpls: router %d has no label on the tree for %d", at, tr.Dst)
		}
		// Bottom-first: the i-th tree's label sits at depth len-1-i.
		stack[len(trees)-1-i] = l
		at = tr.Dst
	}
	return stack, nil
}

// SendMergedVia injects a packet at src that follows the concatenation
// of merged trees (restoration by path concatenation over merged LSPs).
func (n *Network) SendMergedVia(src graph.NodeID, trees []*DestTree) (*Packet, error) {
	stack, err := MergedConcatStack(src, trees)
	if err != nil {
		return nil, err
	}
	pkt := &Packet{
		Src: src, Dst: trees[len(trees)-1].Dst,
		Stack: stack,
		At:    src,
		TTL:   DefaultTTL,
		Trace: []graph.NodeID{src},
	}
	return pkt, n.Forward(pkt)
}
