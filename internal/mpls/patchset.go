package mpls

import "rbpc/internal/graph"

// PatchSet records a batch of ILM row replacements so they can be undone
// later — the bookkeeping behind locally-restored forwarding state. The
// engine's writer patches failure-adjacent routers when a link goes down
// (Section 4.2's local schemes) and must restore the canonical rows on
// the next transition before computing fresh patches for the new
// failed-set; a PatchSet is that record.
//
// Apply and RevertAll may run against different Networks: the engine's
// net lineage is copy-on-write and linear, so a row replaced on epoch
// N's clone is present (by cloning) on epoch N+1's clone, where RevertAll
// restores the saved entry. A PatchSet is writer-owned state — it is not
// safe for concurrent use.
type PatchSet struct {
	applied []ilmPatch
}

type ilmPatch struct {
	router graph.NodeID
	label  Label
	prev   ILMEntry
}

// Apply replaces the ILM row for label at router with entry, recording
// the displaced row for RevertAll. It fails if the router has no row for
// the label (patches only ever replace live forwarding state).
func (ps *PatchSet) Apply(n *Network, router graph.NodeID, label Label, entry ILMEntry) error {
	prev, err := n.ReplaceILM(router, label, entry)
	if err != nil {
		return err
	}
	ps.applied = append(ps.applied, ilmPatch{router: router, label: label, prev: prev})
	return nil
}

// RevertAll restores every recorded row on n, most recent first, and
// clears the set. It panics if a patched row has vanished — the engine's
// linear net lineage guarantees it cannot, so a miss is a lifecycle bug,
// not a recoverable condition.
func (ps *PatchSet) RevertAll(n *Network) {
	for i := len(ps.applied) - 1; i >= 0; i-- {
		p := ps.applied[i]
		if _, err := n.ReplaceILM(p.router, p.label, p.prev); err != nil {
			panic("mpls: reverting ILM patch: " + err.Error())
		}
	}
	ps.applied = ps.applied[:0]
}

// Len returns the number of live (unreverted) patches.
func (ps *PatchSet) Len() int { return len(ps.applied) }
