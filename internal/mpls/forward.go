package mpls

import (
	"errors"
	"fmt"

	"rbpc/internal/graph"
)

// DefaultTTL bounds the number of links a packet may traverse; it doubles
// as the loop detector, exactly as the IP/MPLS TTL does.
const DefaultTTL = 255

// maxLocalOps bounds consecutive label operations at a single router, so a
// misconfigured ILM cannot spin the forwarder.
const maxLocalOps = 16

// Forwarding errors.
var (
	ErrTTLExpired   = errors.New("mpls: TTL expired (forwarding loop?)")
	ErrLinkDown     = errors.New("mpls: packet dropped on failed link")
	ErrNoRoute      = errors.New("mpls: no matching table entry")
	ErrLabelLoop    = errors.New("mpls: too many label operations at one router")
	ErrNotDelivered = errors.New("mpls: packet stopped before its destination")
)

// Packet is a labeled packet traversing the network.
type Packet struct {
	Src, Dst graph.NodeID
	// Stack holds the label stack, bottom first (the top of stack is the
	// last element).
	Stack []Label
	// At is the router currently holding the packet.
	At graph.NodeID
	// TTL is decremented per link; the packet is dropped at zero.
	TTL int
	// Hops counts traversed links.
	Hops int
	// Trace records the routers visited, starting with Src.
	Trace []graph.NodeID
}

// Top returns the top label.
//
//rbpc:hotpath
func (p *Packet) Top() (Label, bool) {
	if len(p.Stack) == 0 {
		return 0, false
	}
	return p.Stack[len(p.Stack)-1], true
}

// SendIP injects an unlabeled packet for dst at router src: the ingress
// consults its FEC table, pushes the configured stack and forwards. This
// is how traffic enters the MPLS cloud.
func (n *Network) SendIP(src, dst graph.NodeID) (*Packet, error) {
	fe, ok := n.routers[src].FECEntryFor(dst)
	if !ok {
		return nil, fmt.Errorf("router %d, dst %d: %w", src, dst, ErrNoRoute)
	}
	pkt := &Packet{
		Src: src, Dst: dst,
		Stack: append([]Label(nil), fe.Stack...),
		At:    src,
		TTL:   DefaultTTL,
		Trace: []graph.NodeID{src},
	}
	if fe.OutEdge != LocalProcess {
		if err := n.transmit(pkt, fe.OutEdge); err != nil {
			return pkt, err
		}
	}
	return pkt, n.Forward(pkt)
}

// SendOnLSPs injects a packet at the ingress of the first LSP and carries
// it across the concatenation of the given LSPs.
func (n *Network) SendOnLSPs(dst graph.NodeID, lsps []*LSP) (*Packet, error) {
	stack, first, err := ConcatStack(lsps)
	if err != nil {
		return nil, err
	}
	src := lsps[0].Ingress()
	pkt := &Packet{
		Src: src, Dst: dst,
		Stack: stack,
		At:    src,
		TTL:   DefaultTTL,
		Trace: []graph.NodeID{src},
	}
	if err := n.transmit(pkt, first); err != nil {
		return pkt, err
	}
	return pkt, n.Forward(pkt)
}

// Forward runs the label-switching loop until the packet is delivered (at
// a router with an empty stack) or dropped. On success the packet rests at
// its final router with Stack empty.
func (n *Network) Forward(pkt *Packet) error {
	for {
		top, ok := pkt.Top()
		if !ok {
			// Stack empty: the packet has left the MPLS cloud at pkt.At.
			if pkt.At != pkt.Dst {
				return fmt.Errorf("popped out at router %d, want %d: %w", pkt.At, pkt.Dst, ErrNotDelivered)
			}
			n.stats.packetsForwarded.Add(1)
			return nil
		}
		ops := 0
		for {
			r := n.routers[pkt.At]
			entry, ok := r.ilm[top]
			if !ok {
				n.stats.packetsDropped.Add(1)
				return fmt.Errorf("router %d, label %d: %w", pkt.At, top, ErrNoRoute)
			}
			// Label operation: replace top with entry.Out.
			pkt.Stack = pkt.Stack[:len(pkt.Stack)-1]
			pkt.Stack = append(pkt.Stack, entry.Out...)
			if entry.OutEdge != LocalProcess {
				if err := n.transmit(pkt, entry.OutEdge); err != nil {
					return err
				}
				break // continue outer loop at the new router
			}
			// Local processing: re-examine the (new) top, or deliver.
			top, ok = pkt.Top()
			if !ok {
				if pkt.At != pkt.Dst {
					return fmt.Errorf("popped out at router %d, want %d: %w", pkt.At, pkt.Dst, ErrNotDelivered)
				}
				n.stats.packetsForwarded.Add(1)
				return nil
			}
			ops++
			if ops > maxLocalOps {
				n.stats.packetsDropped.Add(1)
				return fmt.Errorf("router %d: %w", pkt.At, ErrLabelLoop)
			}
		}
	}
}

// transmit moves the packet across a link, enforcing link state and TTL.
func (n *Network) transmit(pkt *Packet, e graph.EdgeID) error {
	if !n.edgeUp[e] {
		n.stats.packetsDropped.Add(1)
		return fmt.Errorf("link %d at router %d: %w", e, pkt.At, ErrLinkDown)
	}
	edge := n.g.Edge(e)
	if edge.U != pkt.At && edge.V != pkt.At {
		n.stats.packetsDropped.Add(1)
		return fmt.Errorf("mpls: router %d asked to transmit on non-incident link %d", pkt.At, e)
	}
	if pkt.TTL <= 0 {
		n.stats.packetsDropped.Add(1)
		return fmt.Errorf("at router %d: %w", pkt.At, ErrTTLExpired)
	}
	pkt.TTL--
	pkt.Hops++
	pkt.At = edge.Other(pkt.At)
	pkt.Trace = append(pkt.Trace, pkt.At)
	return nil
}
