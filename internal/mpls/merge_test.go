package mpls

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// treeToward builds the next-hop map of the shortest-path tree toward dst
// on an undirected graph: every other reachable node forwards along its
// tree parent path... i.e., the next hop of r is r's parent in the tree
// rooted at dst (undirected symmetry).
func treeToward(g *graph.Graph, dst graph.NodeID) map[graph.NodeID]graph.Arc {
	t := spath.Compute(g, dst)
	next := make(map[graph.NodeID]graph.Arc)
	for r := 0; r < g.Order(); r++ {
		rr := graph.NodeID(r)
		if rr == dst || !t.Reached(rr) {
			continue
		}
		parent, edge := t.Parent(rr)
		next[rr] = graph.Arc{Edge: edge, To: parent}
	}
	return next
}

func ring6() *graph.Graph {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%6), 1)
	}
	return g
}

func TestInstallDestTreeAndForward(t *testing.T) {
	g := ring6()
	n := NewNetwork(g)
	tree, err := n.InstallDestTree(0, treeToward(g, 0))
	if err != nil {
		t.Fatalf("InstallDestTree: %v", err)
	}
	if tree.Size() != 6 {
		t.Errorf("tree size = %d, want 6", tree.Size())
	}
	for src := 1; src < 6; src++ {
		pkt, err := n.SendMerged(graph.NodeID(src), tree)
		if err != nil {
			t.Fatalf("SendMerged(%d): %v", src, err)
		}
		if pkt.At != 0 {
			t.Errorf("from %d delivered at %d", src, pkt.At)
		}
		if pkt.Hops > 3 {
			t.Errorf("from %d took %d hops on a 6-ring", src, pkt.Hops)
		}
	}
}

func TestMergedILMFootprint(t *testing.T) {
	// The point of merging: full all-destination coverage with one row
	// per (router, destination), vs hop-proportional point-to-point LSPs.
	g := ring6()

	merged := NewNetwork(g)
	for d := 0; d < 6; d++ {
		if _, err := merged.InstallDestTree(graph.NodeID(d), treeToward(g, graph.NodeID(d))); err != nil {
			t.Fatal(err)
		}
	}
	mergedTotal, mergedMax := merged.TotalILM()

	p2p := NewNetwork(g)
	o := spath.NewOracle(g)
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if s == d {
				continue
			}
			p, _ := o.Path(graph.NodeID(s), graph.NodeID(d))
			if _, err := p2p.EstablishLSP(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	p2pTotal, p2pMax := p2p.TotalILM()

	// Merged: 6 trees x 6 rows = 36. Point-to-point: 30 LSPs x (hops+1).
	if mergedTotal != 36 {
		t.Errorf("merged total = %d, want 36", mergedTotal)
	}
	if mergedTotal >= p2pTotal {
		t.Errorf("merging did not shrink ILM: %d vs %d", mergedTotal, p2pTotal)
	}
	if mergedMax >= p2pMax {
		t.Errorf("merging did not shrink the largest table: %d vs %d", mergedMax, p2pMax)
	}
}

func TestMergedConcatenation(t *testing.T) {
	// Restoration by concatenation over merged LSPs: ride the tree for M,
	// then the tree for D.
	g := ring6()
	n := NewNetwork(g)
	treeTo3, err := n.InstallDestTree(3, treeToward(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	treeTo5, err := n.InstallDestTree(5, treeToward(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := n.SendMergedVia(1, []*DestTree{treeTo3, treeTo5})
	if err != nil {
		t.Fatalf("SendMergedVia: %v", err)
	}
	if pkt.At != 5 {
		t.Errorf("delivered at %d, want 5", pkt.At)
	}
	// Must have passed through 3 (the splice point).
	via := false
	for _, r := range pkt.Trace {
		if r == 3 {
			via = true
		}
	}
	if !via {
		t.Errorf("trace %v skipped the splice point", pkt.Trace)
	}
}

func TestMergedErrors(t *testing.T) {
	g := ring6()
	n := NewNetwork(g)
	tree, err := n.InstallDestTree(0, treeToward(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendMerged(0, tree); err != nil {
		// The destination has a label (its pop row), so sending from the
		// destination trivially delivers.
		t.Errorf("SendMerged from destination: %v", err)
	}
	if _, err := MergedConcatStack(1, nil); err == nil {
		t.Error("empty merged concat accepted")
	}

	// Destination with a next hop.
	bad := treeToward(g, 0)
	bad[0] = graph.Arc{Edge: 0, To: 1}
	if _, err := n.InstallDestTree(0, bad); err == nil {
		t.Error("destination with next hop accepted")
	}

	// Non-incident arc.
	bad2 := treeToward(g, 0)
	bad2[3] = graph.Arc{Edge: 0, To: 1} // edge 0 is 0-1, not incident to 3
	if _, err := n.InstallDestTree(0, bad2); err == nil {
		t.Error("non-incident next hop accepted")
	}

	// Stranding next hop: router forwards to a node with no row.
	g2 := graph.New(3)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(1, 2, 1)
	n2 := NewNetwork(g2)
	strand := map[graph.NodeID]graph.Arc{
		2: {Edge: 1, To: 1}, // 2 -> 1, but 1 has no row and is not dst 0
	}
	if _, err := n2.InstallDestTree(0, strand); err == nil {
		t.Error("stranding tree accepted")
	}
}

func TestRemoveDestTree(t *testing.T) {
	g := ring6()
	n := NewNetwork(g)
	tree, _ := n.InstallDestTree(0, treeToward(g, 0))
	total, _ := n.TotalILM()
	if total == 0 {
		t.Fatal("nothing installed")
	}
	n.RemoveDestTree(tree)
	total, _ = n.TotalILM()
	if total != 0 {
		t.Errorf("rows remain after removal: %d", total)
	}
	if _, err := n.SendMerged(2, tree); err == nil {
		t.Error("forwarding on removed tree succeeded")
	}
}

func TestMergedWithFailureAndPatch(t *testing.T) {
	// A merged tree is patched like any row: fail the link 1-0 used by
	// the tree toward 0 and replace router 1's row to detour the long
	// way; traffic from 1 and 2 recovers.
	g := ring6()
	n := NewNetwork(g)
	tree, _ := n.InstallDestTree(0, treeToward(g, 0))
	e10, _ := g.FindEdge(1, 0)
	n.FailEdge(e10)
	if _, err := n.SendMerged(1, tree); err == nil {
		t.Fatal("packet crossed dead link")
	}
	// Patch: at router 1, swap to router 2's label and head the other way
	// around the ring.
	l1, _ := tree.LabelAt(1)
	l2, _ := tree.LabelAt(2)
	e12, _ := g.FindEdge(1, 2)
	if _, err := n.ReplaceILM(1, l1, ILMEntry{Out: []Label{l2}, OutEdge: e12}); err != nil {
		t.Fatal(err)
	}
	// Wait: 2's row routes *toward 0 via 1* (shortest), which loops back
	// into the patch... this is precisely the loop hazard of local
	// patching on merged trees. The TTL must catch it.
	if _, err := n.SendMerged(1, tree); err == nil {
		t.Fatal("expected a loop or drop after naive merged patch")
	}
	// The correct patch rewrites 2's row as well (2 now forwards to 3).
	l3, _ := tree.LabelAt(3)
	e23, _ := g.FindEdge(2, 3)
	if _, err := n.ReplaceILM(2, l2, ILMEntry{Out: []Label{l3}, OutEdge: e23}); err != nil {
		t.Fatal(err)
	}
	// And 3 must not route back through 2..0? On a 6-ring the tree toward
	// 0: 3's parent is 2 or 4 (tie). If 3 forwards to 2, extend the patch
	// one more hop; handle both.
	if p3, _ := tree.LabelAt(3); true {
		entry, _ := n.Router(3).ILMEntryFor(p3)
		e32, _ := g.FindEdge(3, 2)
		if entry.OutEdge == e32 {
			l4, _ := tree.LabelAt(4)
			e34, _ := g.FindEdge(3, 4)
			if _, err := n.ReplaceILM(3, p3, ILMEntry{Out: []Label{l4}, OutEdge: e34}); err != nil {
				t.Fatal(err)
			}
		}
	}
	pkt, err := n.SendMerged(1, tree)
	if err != nil {
		t.Fatalf("after full patch: %v", err)
	}
	if pkt.At != 0 {
		t.Errorf("delivered at %d", pkt.At)
	}
}
