package mpls

import "slices"

// Clone returns a copy-on-write copy of the network: both networks keep
// working views of the forwarding state at the moment of the call, and
// table writes on either side copy only the written router's table (and
// only the first time it is written after the clone). Cloning is O(routers
// + links), independent of the number of installed ILM/FEC rows — this is
// what makes per-epoch forwarding-state snapshots affordable for the
// online restoration engine: an epoch that rewrites k routers' tables
// pays for those k tables, not for the whole network.
//
// Semantics:
//
//   - ILM maps and FEC slices are shared until written; the first write to
//     a router's table (on either lineage) copies that table.
//   - The LSP registry is likewise shared until written. *LSP values
//     themselves are immutable after establishment and stay shared.
//   - Link up/down state, label allocators, and statistics are copied
//     eagerly (they are O(routers + links)).
//
// Concurrency: Clone must not run concurrently with writes to n, but it
// may run concurrently with reads (table lookups, packet forwarding) —
// the shared maps are never mutated in place once marked shared, and all
// counters are atomic. After the clone, the two networks are independent:
// writes to one are never visible to the other.
func (n *Network) Clone() *Network {
	c := &Network{
		g:          n.g,
		routers:    make([]*Router, len(n.routers)),
		lsps:       n.lsps,
		sharedLSPs: true,
		nextLSP:    n.nextLSP,
		edgeUp:     slices.Clone(n.edgeUp),
	}
	n.sharedLSPs = true
	c.stats.copyFrom(&n.stats)
	for i, r := range n.routers {
		r.sharedILM, r.sharedFEC = true, true
		c.routers[i] = &Router{
			ID:        r.ID,
			ilm:       r.ilm,
			fec:       r.fec,
			fecCount:  r.fecCount,
			sharedILM: true,
			sharedFEC: true,
			nextLabel: r.nextLabel,
			// The free list is deep-copied: sharing its backing array
			// would let one lineage's append clobber a label the other
			// still considers free. It is almost always empty (teardowns
			// are rare), so this costs nothing in practice.
			freeList: slices.Clone(r.freeList),
		}
	}
	return c
}
