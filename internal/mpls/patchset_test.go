package mpls

import (
	"testing"

	"rbpc/internal/graph"
)

// TestPatchSetApplyRevert: Apply replaces a live ILM row and records the
// displaced entry; RevertAll restores it (on a later COW clone, matching
// the engine's linear net lineage) and clears the set.
func TestPatchSetApplyRevert(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, err := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	inLabel, ok := lsp.HopLabel(0) // label under which traffic is processed at router 1
	if !ok {
		t.Fatal("no hop label into router 1")
	}
	orig, ok := n.Router(1).ILMEntryFor(inLabel)
	if !ok {
		t.Fatal("router 1 has no row for the hop label")
	}

	var ps PatchSet
	patched := ILMEntry{Out: nil, OutEdge: LocalProcess}
	if err := ps.Apply(n, 1, inLabel, patched); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ps.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ps.Len())
	}
	if got, _ := n.Router(1).ILMEntryFor(inLabel); got.OutEdge != LocalProcess || len(got.Out) != 0 {
		t.Fatalf("patched row = %+v", got)
	}

	// Revert on a clone: the patch was applied on n, the restore lands on
	// the next epoch's copy — exactly the engine's lifecycle.
	n2 := n.Clone()
	ps.RevertAll(n2)
	if ps.Len() != 0 {
		t.Fatalf("Len after revert = %d", ps.Len())
	}
	got, ok := n2.Router(1).ILMEntryFor(inLabel)
	if !ok || got.OutEdge != orig.OutEdge || len(got.Out) != len(orig.Out) {
		t.Fatalf("reverted row = %+v, want %+v", got, orig)
	}
	// The patched network is untouched by the revert (COW isolation).
	if still, _ := n.Router(1).ILMEntryFor(inLabel); still.OutEdge != LocalProcess {
		t.Fatalf("revert leaked into the patched clone: %+v", still)
	}
}

// TestPatchSetApplyMissingRow: patching a label with no live row fails and
// records nothing.
func TestPatchSetApplyMissingRow(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	var ps PatchSet
	if err := ps.Apply(n, 1, Label(9999), ILMEntry{OutEdge: LocalProcess}); err == nil {
		t.Fatal("Apply of a missing row succeeded")
	}
	if ps.Len() != 0 {
		t.Fatalf("failed Apply recorded a patch: Len = %d", ps.Len())
	}
}

// TestPatchSetRevertOrder: multiple patches revert most-recent-first, so
// every recorded row comes back even across routers.
func TestPatchSetRevertOrder(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, err := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	var ps PatchSet
	for hop, router := range []graph.NodeID{1, 2} {
		l, ok := lsp.HopLabel(hop)
		if !ok {
			t.Fatalf("no hop label %d", hop)
		}
		if err := ps.Apply(n, router, l, ILMEntry{OutEdge: LocalProcess}); err != nil {
			t.Fatalf("Apply at %d: %v", router, err)
		}
	}
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ps.Len())
	}
	ps.RevertAll(n)
	// Both rows must forward again: a packet over the LSP delivers.
	pkt, err := n.SendOnLSPs(3, []*LSP{lsp})
	if err != nil || pkt.At != 3 {
		t.Fatalf("post-revert forwarding broken: pkt=%+v err=%v", pkt, err)
	}
}
