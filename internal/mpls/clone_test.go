package mpls

import (
	"fmt"
	"reflect"
	"testing"

	"rbpc/internal/graph"
)

// lineNet builds a line graph of n routers with one LSP spanning each
// adjacent pair and a full-span LSP, plus a FEC row at every router for
// the far end.
func lineNet(tb testing.TB, n int) (*graph.Graph, *Network) {
	tb.Helper()
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	net := NewNetwork(g)
	var nodes []graph.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.NodeID(i))
	}
	full, err := net.EstablishLSP(pathOf(g, nodes...))
	if err != nil {
		tb.Fatalf("EstablishLSP: %v", err)
	}
	for i := 0; i < n-1; i++ {
		if _, err := net.EstablishLSP(pathOf(g, nodes[i], nodes[i+1])); err != nil {
			tb.Fatalf("EstablishLSP: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		net.SetFEC(graph.NodeID(i), graph.NodeID(n-1), FECEntry{
			Stack:   []Label{full.SelfLabel()},
			OutEdge: LocalProcess,
		})
	}
	return g, net
}

func mapPtr(v any) uintptr { return reflect.ValueOf(v).Pointer() }

func TestCloneSharesUntouchedTables(t *testing.T) {
	_, net := lineNet(t, 8)
	c := net.Clone()

	for i := range net.routers {
		if mapPtr(c.routers[i].ilm) != mapPtr(net.routers[i].ilm) {
			t.Fatalf("router %d: ILM not shared after clone", i)
		}
		if mapPtr(c.routers[i].fec) != mapPtr(net.routers[i].fec) {
			t.Fatalf("router %d: FEC not shared after clone", i)
		}
	}
	if mapPtr(c.lsps) != mapPtr(net.lsps) {
		t.Fatal("LSP registry not shared after clone")
	}

	// One FEC write on the clone un-shares exactly that router's FEC map.
	c.SetFEC(3, 0, FECEntry{OutEdge: LocalProcess})
	if mapPtr(c.routers[3].fec) == mapPtr(net.routers[3].fec) {
		t.Fatal("written FEC map still shared")
	}
	if mapPtr(c.routers[3].ilm) != mapPtr(net.routers[3].ilm) {
		t.Fatal("ILM map of written router should remain shared")
	}
	for i := range net.routers {
		if i == 3 {
			continue
		}
		if mapPtr(c.routers[i].fec) != mapPtr(net.routers[i].fec) {
			t.Fatalf("untouched router %d un-shared by a write to router 3", i)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	g, net := lineNet(t, 6)
	c := net.Clone()

	// Writes to the clone are invisible to the original, and vice versa.
	c.SetFEC(0, 5, FECEntry{Stack: []Label{99}, OutEdge: LocalProcess})
	if e, _ := net.Router(0).FECEntryFor(5); len(e.Stack) == 1 && e.Stack[0] == 99 {
		t.Fatal("clone FEC write leaked into original")
	}
	net.ClearFEC(1, 5)
	if _, ok := c.Router(1).FECEntryFor(5); !ok {
		t.Fatal("original ClearFEC leaked into clone")
	}

	// ILM writes are isolated too.
	var lbl Label
	for l := range net.routers[2].ilm {
		lbl = l
		break
	}
	if _, err := net.ReplaceILM(2, lbl, ILMEntry{Out: nil, OutEdge: LocalProcess}); err != nil {
		t.Fatalf("ReplaceILM: %v", err)
	}
	orig, _ := net.Router(2).ILMEntryFor(lbl)
	cl, _ := c.Router(2).ILMEntryFor(lbl)
	if orig.OutEdge == cl.OutEdge && len(orig.Out) == len(cl.Out) {
		t.Fatal("original ILM replacement leaked into clone")
	}

	// LSP establishment on the clone does not grow the original registry.
	before := net.NumLSPs()
	if _, err := c.EstablishLSP(pathOf(g, 2, 3, 4)); err != nil {
		t.Fatalf("EstablishLSP on clone: %v", err)
	}
	if net.NumLSPs() != before {
		t.Fatalf("clone establishment grew original registry: %d -> %d", before, net.NumLSPs())
	}

	// Link state is independent.
	c.FailEdge(0)
	if !net.EdgeUp(0) {
		t.Fatal("clone FailEdge leaked into original")
	}
}

func TestCloneForwardingMatchesOriginal(t *testing.T) {
	_, net := lineNet(t, 6)
	c := net.Clone()
	p1, err1 := net.SendIP(0, 5)
	p2, err2 := c.SendIP(0, 5)
	if err1 != nil || err2 != nil {
		t.Fatalf("forward: %v / %v", err1, err2)
	}
	if p1.At != 5 || p2.At != 5 || p1.Hops != p2.Hops {
		t.Fatalf("forwarding diverged: %v vs %v", p1, p2)
	}
}

func TestCloneLabelSpacesIndependent(t *testing.T) {
	g, net := lineNet(t, 6)
	c := net.Clone()
	// Establish distinct LSPs on both lineages; each network's tables must
	// stay internally consistent (forwarding still delivers on both).
	if _, err := net.EstablishLSP(pathOf(g, 1, 2, 3)); err != nil {
		t.Fatalf("EstablishLSP original: %v", err)
	}
	if _, err := c.EstablishLSP(pathOf(g, 3, 4, 5)); err != nil {
		t.Fatalf("EstablishLSP clone: %v", err)
	}
	for _, n := range []*Network{net, c} {
		pkt, err := n.SendIP(0, 5)
		if err != nil || pkt.At != 5 {
			t.Fatalf("post-establish forwarding broken: %v (%v)", pkt, err)
		}
	}
}

// tableImage deep-copies every router's ILM and FEC table plus the link
// state, so a later comparison detects any in-place mutation of the maps a
// clone shares with its parent.
type tableImage struct {
	ilm    []map[Label]ILMEntry
	fec    []map[graph.NodeID]FECEntry
	edgeUp []bool
	lsps   int
}

func imageOf(n *Network) tableImage {
	img := tableImage{
		ilm:    make([]map[Label]ILMEntry, len(n.routers)),
		fec:    make([]map[graph.NodeID]FECEntry, len(n.routers)),
		edgeUp: append([]bool(nil), n.edgeUp...),
		lsps:   n.NumLSPs(),
	}
	for i, r := range n.routers {
		img.ilm[i] = make(map[Label]ILMEntry, len(r.ilm))
		for l, e := range r.ilm {
			img.ilm[i][l] = ILMEntry{Out: append([]Label(nil), e.Out...), OutEdge: e.OutEdge, LSP: e.LSP}
		}
		img.fec[i] = make(map[graph.NodeID]FECEntry, r.fecCount)
		for _, d := range r.FECDests() {
			e, _ := r.FECEntryFor(d)
			img.fec[i][d] = FECEntry{Stack: append([]Label(nil), e.Stack...), OutEdge: e.OutEdge}
		}
	}
	return img
}

// TestCloneParentTablesBitIdentical is the aliasing regression test for the
// copy-on-write snapshot: after aggressive mutation of a clone — FEC
// rewrites and clears at every router, an ILM replacement, LSP
// establishment and teardown, and link failures — the parent's ILM and FEC
// tables, link state, and LSP registry must compare deep-equal to a
// pre-clone image. Any shared map mutated in place (a missed un-share in
// writableILM/writableFEC/writableLSPs) shows up as a diff here.
func TestCloneParentTablesBitIdentical(t *testing.T) {
	g, net := lineNet(t, 8)
	before := imageOf(net)

	c := net.Clone()
	for i := 0; i < 8; i++ {
		c.SetFEC(graph.NodeID(i), 0, FECEntry{Stack: []Label{42}, OutEdge: LocalProcess})
		c.ClearFEC(graph.NodeID(i), 7)
	}
	var lbl Label
	for l := range c.routers[4].ilm {
		lbl = l
		break
	}
	if _, err := c.ReplaceILM(4, lbl, ILMEntry{Out: []Label{7, 8, 9}, OutEdge: LocalProcess}); err != nil {
		t.Fatalf("ReplaceILM on clone: %v", err)
	}
	lsp, err := c.EstablishLSP(pathOf(g, 1, 2, 3, 4))
	if err != nil {
		t.Fatalf("EstablishLSP on clone: %v", err)
	}
	if err := c.TeardownLSP(lsp.ID); err != nil {
		t.Fatalf("TeardownLSP on clone: %v", err)
	}
	c.FailEdge(2)
	c.FailEdge(5)

	after := imageOf(net)
	if !reflect.DeepEqual(before.ilm, after.ilm) {
		t.Error("parent ILM tables changed after clone mutation")
	}
	if !reflect.DeepEqual(before.fec, after.fec) {
		t.Error("parent FEC tables changed after clone mutation")
	}
	if !reflect.DeepEqual(before.edgeUp, after.edgeUp) {
		t.Error("parent link state changed after clone mutation")
	}
	if before.lsps != after.lsps {
		t.Errorf("parent LSP registry size changed: %d -> %d", before.lsps, after.lsps)
	}
}

// BenchmarkNetworkClone measures the snapshot cost alone: it must scale
// with router/link count only, not with installed table rows.
func BenchmarkNetworkClone(b *testing.B) {
	_, net := lineNet(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net = net.Clone()
	}
}

// BenchmarkClonePatch proves the copy-on-write claim: clone the network
// and rewrite FEC rows at k routers. Cost grows with k (the changed
// tables), not with the ~2n untouched tables.
func BenchmarkClonePatch(b *testing.B) {
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("patched=%d", k), func(b *testing.B) {
			_, net := lineNet(b, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := net.Clone()
				for r := 0; r < k; r++ {
					c.SetFEC(graph.NodeID(r), 0, FECEntry{OutEdge: LocalProcess})
				}
			}
		})
	}
}
