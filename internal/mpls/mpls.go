// Package mpls simulates the MPLS forwarding plane the paper's restoration
// schemes run on: label-switching routers with ILM (incoming label map) and
// FEC (forwarding equivalence class) tables, label stacks with push/swap/
// pop, LSP establishment and teardown with signaling accounting, and a
// packet forwarder with TTL-based loop detection.
//
// The model follows Section 2 of the paper:
//
//   - Each router owns a private label space and an ILM mapping incoming
//     labels to (replacement labels, outgoing interface).
//   - The FEC table is consulted only at the ingress: it maps a
//     destination to the label stack pushed onto packets entering the MPLS
//     cloud. Restoration by path concatenation rewrites only FEC entries
//     (source-router RBPC) or a single ILM entry at the router adjacent to
//     a failure (local RBPC) — never the interior of the network.
//   - Every LSP also installs a self-entry at its ingress so that a popped
//     stack can continue onto a following LSP: this is the stack mechanism
//     that makes concatenation work.
package mpls

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync/atomic"

	"rbpc/internal/graph"
)

// Label is an MPLS label. Labels are meaningful per router: the same value
// names different LSPs at different routers.
type Label int32

// LSPID identifies an established LSP within a Network.
type LSPID int32

// LocalProcess marks an ILM entry that is processed locally rather than
// forwarded: after the label operation the router re-examines the packet
// (re-looking up the new top label, or delivering if the stack is empty).
const LocalProcess graph.EdgeID = -1

// ILMEntry is one row of a router's incoming label map. Processing a
// packet whose top label matches the row: the top label is removed and
// Out (bottom-first) is pushed in its place; then the packet is forwarded
// on OutEdge, or re-processed locally when OutEdge == LocalProcess.
//
//   - swap:       Out = [next], OutEdge = link
//   - pop (egress): Out = nil, OutEdge = LocalProcess
//   - local RBPC:  Out = [replacement sequence], OutEdge = link or LocalProcess
type ILMEntry struct {
	Out     []Label
	OutEdge graph.EdgeID
	// LSP records which LSP installed the entry, for teardown accounting.
	LSP LSPID
}

// FECEntry is one row of a router's FEC table: the label stack (bottom
// first) pushed on packets for a destination, and the first outgoing link.
type FECEntry struct {
	Stack   []Label
	OutEdge graph.EdgeID
}

// Router is one LSR.
type Router struct {
	ID graph.NodeID

	ilm map[Label]ILMEntry
	// fec is the dense FEC table, indexed by destination node ID (the FEC
	// key domain is exactly the node space); nil marks an absent row. A
	// flat slice of pointers instead of a map makes the copy-on-write
	// un-share after a Clone one pointer-array memmove instead of a rehash
	// of every row, and keeping 8-byte slots (the entries themselves are
	// immutable once installed and stay shared across lineages) keeps that
	// memmove small — the difference between an epoch assembly that
	// touches hundreds of routers paying microseconds versus milliseconds
	// per router. The slice grows on demand when the topology gains nodes.
	fec      []*FECEntry
	fecCount int

	// sharedILM/sharedFEC mark the tables as shared with a Clone of the
	// network: the next write copies the table first (copy-on-write at
	// router granularity), so the other lineage keeps its view.
	sharedILM bool
	sharedFEC bool

	nextLabel Label
	freeList  []Label
}

func newRouter(id graph.NodeID, order int) *Router {
	return &Router{
		ID:        id,
		ilm:       make(map[Label]ILMEntry),
		fec:       make([]*FECEntry, order),
		nextLabel: 16, // labels 0-15 are reserved in real MPLS
	}
}

// allocLabel returns a fresh label from the router's space.
func (r *Router) allocLabel() Label {
	if n := len(r.freeList); n > 0 {
		l := r.freeList[n-1]
		r.freeList = r.freeList[:n-1]
		return l
	}
	l := r.nextLabel
	r.nextLabel++
	return l
}

func (r *Router) freeLabel(l Label) {
	delete(r.writableILM(), l)
	r.freeList = append(r.freeList, l)
}

// writableILM returns the ILM map, un-sharing it first if a Clone holds a
// reference. All ILM writes must go through it.
func (r *Router) writableILM() map[Label]ILMEntry {
	if r.sharedILM {
		r.ilm = maps.Clone(r.ilm)
		r.sharedILM = false
	}
	return r.ilm
}

// writableFEC un-shares the FEC table if a Clone holds a reference and
// ensures it spans at least dst+1 slots. All FEC writes must go through it.
func (r *Router) writableFEC(dst graph.NodeID) []*FECEntry {
	if r.sharedFEC {
		r.fec = slices.Clone(r.fec)
		r.sharedFEC = false
	}
	if int(dst) >= len(r.fec) {
		r.fec = append(r.fec, make([]*FECEntry, int(dst)+1-len(r.fec))...)
	}
	return r.fec
}

// ILMSize returns the number of installed ILM entries — the hardware table
// footprint the paper's ILM stretch factor measures.
//
//rbpc:hotpath
func (r *Router) ILMSize() int { return len(r.ilm) }

// ILMEntryFor returns the entry for an incoming label.
//
//rbpc:hotpath
func (r *Router) ILMEntryFor(l Label) (ILMEntry, bool) {
	e, ok := r.ilm[l]
	return e, ok
}

// FECEntryFor returns the FEC row for a destination.
//
//rbpc:hotpath
func (r *Router) FECEntryFor(dst graph.NodeID) (FECEntry, bool) {
	if int(dst) >= len(r.fec) || r.fec[dst] == nil {
		return FECEntry{}, false
	}
	return *r.fec[dst], true
}

// FECSize returns the number of installed FEC rows.
//
//rbpc:hotpath
func (r *Router) FECSize() int { return r.fecCount }

// FECDests returns the destinations the router has FEC rows for, in
// ascending order.
func (r *Router) FECDests() []graph.NodeID {
	out := make([]graph.NodeID, 0, r.fecCount)
	for d, p := range r.fec {
		if p != nil {
			out = append(out, graph.NodeID(d))
		}
	}
	return out
}

// Stats counts control-plane work. Establishing an LSP of h hops costs h
// label-mapping messages (ordered downstream assignment); tearing one down
// costs h release messages. FEC and ILM rewrites are local operations —
// the zero-message property is exactly RBPC's selling point.
type Stats struct {
	LSPsEstablished  int
	LSPsTornDown     int
	SignalingMsgs    int
	FECUpdates       int
	ILMReplacements  int
	PacketsForwarded int
	PacketsDropped   int
}

// netStats is the live, atomically updated form of Stats. Data-plane
// counters (packets forwarded/dropped) are bumped by concurrent readers
// forwarding on a shared immutable network snapshot, so every counter is
// atomic.
type netStats struct {
	lspsEstablished  atomic.Int64
	lspsTornDown     atomic.Int64
	signalingMsgs    atomic.Int64
	fecUpdates       atomic.Int64
	ilmReplacements  atomic.Int64
	packetsForwarded atomic.Int64
	packetsDropped   atomic.Int64
}

func (s *netStats) snapshot() Stats {
	return Stats{
		LSPsEstablished:  int(s.lspsEstablished.Load()),
		LSPsTornDown:     int(s.lspsTornDown.Load()),
		SignalingMsgs:    int(s.signalingMsgs.Load()),
		FECUpdates:       int(s.fecUpdates.Load()),
		ILMReplacements:  int(s.ilmReplacements.Load()),
		PacketsForwarded: int(s.packetsForwarded.Load()),
		PacketsDropped:   int(s.packetsDropped.Load()),
	}
}

func (s *netStats) copyFrom(o *netStats) {
	s.lspsEstablished.Store(o.lspsEstablished.Load())
	s.lspsTornDown.Store(o.lspsTornDown.Load())
	s.signalingMsgs.Store(o.signalingMsgs.Load())
	s.fecUpdates.Store(o.fecUpdates.Load())
	s.ilmReplacements.Store(o.ilmReplacements.Load())
	s.packetsForwarded.Store(o.packetsForwarded.Load())
	s.packetsDropped.Store(o.packetsDropped.Load())
}

// Network is a set of LSRs over a topology, plus link up/down state for
// the data plane.
type Network struct {
	g       *graph.Graph
	routers []*Router
	lsps    map[LSPID]*LSP
	// sharedLSPs marks the lsps map as shared with a Clone; the next
	// write copies it first.
	sharedLSPs bool
	nextLSP    LSPID
	edgeUp     []bool
	stats      netStats
}

// NewNetwork builds an MPLS network over topology g with all links up.
func NewNetwork(g *graph.Graph) *Network {
	n := &Network{
		g:       g,
		routers: make([]*Router, g.Order()),
		lsps:    make(map[LSPID]*LSP),
		edgeUp:  make([]bool, g.Size()),
		nextLSP: 1,
	}
	for i := range n.routers {
		n.routers[i] = newRouter(graph.NodeID(i), g.Order())
	}
	for i := range n.edgeUp {
		n.edgeUp[i] = true
	}
	return n
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Router returns the LSR with the given ID.
//
//rbpc:hotpath
func (n *Network) Router(id graph.NodeID) *Router { return n.routers[id] }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// writableLSPs returns the LSP registry, un-sharing it first if a Clone
// holds a reference.
func (n *Network) writableLSPs() map[LSPID]*LSP {
	if n.sharedLSPs {
		n.lsps = maps.Clone(n.lsps)
		n.sharedLSPs = false
	}
	return n.lsps
}

// EdgeUp reports whether the link is currently up.
//
//rbpc:hotpath
func (n *Network) EdgeUp(e graph.EdgeID) bool { return n.edgeUp[e] }

// FailEdge marks a link down. Established LSPs keep their table entries
// (the control plane has not reacted yet); packets crossing the link are
// dropped until restoration rewrites tables.
func (n *Network) FailEdge(e graph.EdgeID) { n.edgeUp[e] = false }

// SyncNewEdges registers links added to the topology after the network
// was built (the graph is append-only, so existing edge IDs are stable).
// New links come up immediately.
func (n *Network) SyncNewEdges() {
	for len(n.edgeUp) < n.g.Size() {
		n.edgeUp = append(n.edgeUp, true)
	}
}

// RepairEdge marks a link up again.
func (n *Network) RepairEdge(e graph.EdgeID) { n.edgeUp[e] = true }

// SetFEC installs (or replaces) the FEC row for dst at router id. This is
// the entirety of source-router RBPC's data-plane action.
func (n *Network) SetFEC(id, dst graph.NodeID, e FECEntry) {
	r := n.routers[id]
	slots := r.writableFEC(dst)
	if slots[dst] == nil {
		r.fecCount++
	}
	slots[dst] = &e
	n.stats.fecUpdates.Add(1)
}

// ClearFEC removes the FEC row for dst at router id, if any; subsequent
// traffic for dst entering at id is dropped (no route).
func (n *Network) ClearFEC(id, dst graph.NodeID) {
	r := n.routers[id]
	if int(dst) >= len(r.fec) || r.fec[dst] == nil {
		return
	}
	slots := r.writableFEC(dst)
	slots[dst] = nil
	r.fecCount--
	n.stats.fecUpdates.Add(1)
}

// ReplaceILM replaces the ILM row for label l at router id — local RBPC's
// single-table-entry action at the router adjacent to a failure. The
// previous entry is returned so the caller can undo the patch when the
// link recovers.
func (n *Network) ReplaceILM(id graph.NodeID, l Label, e ILMEntry) (ILMEntry, error) {
	r := n.routers[id]
	prev, ok := r.ilm[l]
	if !ok {
		return ILMEntry{}, fmt.Errorf("mpls: router %d has no ILM entry for label %d", id, l)
	}
	r.writableILM()[l] = e
	n.stats.ilmReplacements.Add(1)
	return prev, nil
}

// errInvalidPath reports an LSP establishment over a broken or malformed
// path.
var errInvalidPath = errors.New("mpls: invalid LSP path")
