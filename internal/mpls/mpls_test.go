package mpls

import (
	"errors"
	"testing"

	"rbpc/internal/graph"
)

// line5 builds 0-1-2-3-4 with unit weights.
func line5() *graph.Graph {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return g
}

func pathOf(g *graph.Graph, nodes ...graph.NodeID) graph.Path {
	p := graph.Path{Nodes: nodes}
	for i := 0; i < len(nodes)-1; i++ {
		id, ok := g.FindEdge(nodes[i], nodes[i+1])
		if !ok {
			panic("pathOf: no edge")
		}
		p.Edges = append(p.Edges, id)
	}
	return p
}

func TestEstablishAndForward(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, err := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if err != nil {
		t.Fatalf("EstablishLSP: %v", err)
	}
	if lsp.Ingress() != 0 || lsp.Egress() != 3 {
		t.Errorf("endpoints %d,%d", lsp.Ingress(), lsp.Egress())
	}
	pkt, err := n.SendOnLSPs(3, []*LSP{lsp})
	if err != nil {
		t.Fatalf("SendOnLSPs: %v", err)
	}
	if pkt.At != 3 || len(pkt.Stack) != 0 {
		t.Errorf("packet ended at %d with %d labels", pkt.At, len(pkt.Stack))
	}
	if pkt.Hops != 3 {
		t.Errorf("hops = %d, want 3", pkt.Hops)
	}
	want := []graph.NodeID{0, 1, 2, 3}
	if len(pkt.Trace) != len(want) {
		t.Fatalf("trace %v", pkt.Trace)
	}
	for i := range want {
		if pkt.Trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", pkt.Trace, want)
		}
	}
}

func TestILMFootprint(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	if _, err := n.EstablishLSP(pathOf(g, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// Rows: self at 0, swap at 1, swap at 2, pop at 3.
	for r, want := range map[graph.NodeID]int{0: 1, 1: 1, 2: 1, 3: 1, 4: 0} {
		if got := n.Router(r).ILMSize(); got != want {
			t.Errorf("ILM size at %d = %d, want %d", r, got, want)
		}
	}
	total, max := n.TotalILM()
	if total != 4 || max != 1 {
		t.Errorf("TotalILM = %d/%d", total, max)
	}
}

func TestConcatenationTwoLSPs(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	p1, err := n.EstablishLSP(pathOf(g, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n.EstablishLSP(pathOf(g, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := n.SendOnLSPs(4, []*LSP{p1, p2})
	if err != nil {
		t.Fatalf("concatenated forward: %v", err)
	}
	if pkt.At != 4 || pkt.Hops != 4 {
		t.Errorf("ended at %d after %d hops", pkt.At, pkt.Hops)
	}
}

func TestConcatenationThreeLSPs(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	var lsps []*LSP
	for _, seg := range [][]graph.NodeID{{0, 1}, {1, 2, 3}, {3, 4}} {
		l, err := n.EstablishLSP(pathOf(g, seg...))
		if err != nil {
			t.Fatal(err)
		}
		lsps = append(lsps, l)
	}
	pkt, err := n.SendOnLSPs(4, lsps)
	if err != nil {
		t.Fatalf("3-way concatenation: %v", err)
	}
	if pkt.At != 4 {
		t.Errorf("ended at %d", pkt.At)
	}
}

func TestConcatStackErrors(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	p1, _ := n.EstablishLSP(pathOf(g, 0, 1))
	p2, _ := n.EstablishLSP(pathOf(g, 2, 3))
	if _, _, err := ConcatStack(nil); err == nil {
		t.Error("empty concat accepted")
	}
	if _, _, err := ConcatStack([]*LSP{p1, p2}); err == nil {
		t.Error("non-chaining concat accepted")
	}
	php, err := n.EstablishLSPPHP(pathOf(g, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	p3, _ := n.EstablishLSP(pathOf(g, 2, 3))
	if _, _, err := ConcatStack([]*LSP{php, p3}); err == nil {
		t.Error("PHP LSP accepted as non-final concat component")
	}
}

func TestPHP(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, err := n.EstablishLSPPHP(pathOf(g, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Egress must hold no row.
	if n.Router(2).ILMSize() != 0 {
		t.Errorf("egress ILM size = %d under PHP, want 0", n.Router(2).ILMSize())
	}
	pkt, err := n.SendOnLSPs(2, []*LSP{lsp})
	if err != nil {
		t.Fatalf("PHP forward: %v", err)
	}
	if pkt.At != 2 {
		t.Errorf("ended at %d", pkt.At)
	}
	if _, err := n.EstablishLSPPHP(pathOf(g, 0, 1)); err == nil {
		t.Error("1-hop PHP accepted")
	}
}

func TestEstablishErrors(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	if _, err := n.EstablishLSP(graph.Trivial(0)); err == nil {
		t.Error("trivial path accepted")
	}
	bad := graph.Path{Nodes: []graph.NodeID{0, 2}, Edges: []graph.EdgeID{0}}
	if _, err := n.EstablishLSP(bad); err == nil {
		t.Error("invalid path accepted")
	}
	n.FailEdge(1)
	if _, err := n.EstablishLSP(pathOf(g, 0, 1, 2)); err == nil {
		t.Error("path over failed link accepted")
	}
}

func TestTeardownFreesLabels(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if n.NumLSPs() != 1 {
		t.Fatal("NumLSPs != 1")
	}
	if err := n.TeardownLSP(lsp.ID); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	if n.NumLSPs() != 0 {
		t.Error("LSP still present")
	}
	total, _ := n.TotalILM()
	if total != 0 {
		t.Errorf("ILM rows remain after teardown: %d", total)
	}
	if err := n.TeardownLSP(lsp.ID); err == nil {
		t.Error("double teardown accepted")
	}
	// Labels are recycled.
	lsp2, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if lsp2.FirstHopLabel() != lsp.FirstHopLabel() {
		t.Errorf("label not recycled: %d vs %d", lsp2.FirstHopLabel(), lsp.FirstHopLabel())
	}
}

func TestLinkFailureDropsPacket(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	n.FailEdge(g.Edges()[1].ID) // link 1-2
	_, err := n.SendOnLSPs(3, []*LSP{lsp})
	if !errors.Is(err, ErrLinkDown) {
		t.Errorf("err = %v, want ErrLinkDown", err)
	}
	n.RepairEdge(g.Edges()[1].ID)
	if _, err := n.SendOnLSPs(3, []*LSP{lsp}); err != nil {
		t.Errorf("after repair: %v", err)
	}
	st := n.Stats()
	if st.PacketsDropped != 1 || st.PacketsForwarded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendIPUsesFEC(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	n.SetFEC(0, 3, FECEntry{Stack: []Label{lsp.FirstHopLabel()}, OutEdge: lsp.FirstEdge()})
	pkt, err := n.SendIP(0, 3)
	if err != nil {
		t.Fatalf("SendIP: %v", err)
	}
	if pkt.At != 3 {
		t.Errorf("delivered at %d", pkt.At)
	}
	if _, err := n.SendIP(0, 4); !errors.Is(err, ErrNoRoute) {
		t.Errorf("missing FEC: err = %v", err)
	}
	if n.Router(0).FECSize() != 1 {
		t.Error("FECSize")
	}
	if _, ok := n.Router(0).FECEntryFor(3); !ok {
		t.Error("FECEntryFor")
	}
}

func TestSendIPConcatenatedStack(t *testing.T) {
	// Source-router RBPC in miniature: FEC pushes two labels so the packet
	// rides LSP A then LSP B without any ILM change.
	g := line5()
	n := NewNetwork(g)
	a, _ := n.EstablishLSP(pathOf(g, 0, 1, 2))
	b, _ := n.EstablishLSP(pathOf(g, 2, 3, 4))
	stack, first, err := ConcatStack([]*LSP{a, b})
	if err != nil {
		t.Fatal(err)
	}
	n.SetFEC(0, 4, FECEntry{Stack: stack, OutEdge: first})
	pkt, err := n.SendIP(0, 4)
	if err != nil {
		t.Fatalf("SendIP: %v", err)
	}
	if pkt.At != 4 || pkt.Hops != 4 {
		t.Errorf("at %d after %d hops", pkt.At, pkt.Hops)
	}
}

func TestReplaceILM(t *testing.T) {
	// Local end-route RBPC in miniature on a square: LSP 0->1 via edge
	// (0,1); after the edge fails, router 0... the adjacent router is the
	// ingress here, so instead test a transit patch: LSP 0-1-2; fail link
	// 1-2; router 1 replaces its row to send via an alternate LSP 1-3-2...
	// line5 has no alternate, so build a diamond.
	g := graph.New(4)
	g.AddEdge(0, 1, 1) // e0
	g.AddEdge(1, 2, 1) // e1
	g.AddEdge(1, 3, 1) // e2
	g.AddEdge(3, 2, 1) // e3
	n := NewNetwork(g)
	main, _ := n.EstablishLSP(pathOf(g, 0, 1, 2))
	alt, _ := n.EstablishLSP(pathOf(g, 1, 3, 2))

	n.FailEdge(1)
	inLabel, ok := main.IncomingLabelAt(1)
	if !ok {
		t.Fatal("no incoming label at router 1")
	}
	prev, err := n.ReplaceILM(1, inLabel, ILMEntry{
		Out:     []Label{alt.FirstHopLabel()},
		OutEdge: alt.FirstEdge(),
	})
	if err != nil {
		t.Fatalf("ReplaceILM: %v", err)
	}
	pkt, err := n.SendOnLSPs(2, []*LSP{main})
	if err != nil {
		t.Fatalf("patched forward: %v", err)
	}
	if pkt.At != 2 {
		t.Errorf("delivered at %d", pkt.At)
	}
	wantTrace := []graph.NodeID{0, 1, 3, 2}
	for i, w := range wantTrace {
		if pkt.Trace[i] != w {
			t.Fatalf("trace %v, want %v", pkt.Trace, wantTrace)
		}
	}
	// Undo on recovery.
	n.RepairEdge(1)
	if _, err := n.ReplaceILM(1, inLabel, prev); err != nil {
		t.Fatal(err)
	}
	pkt, err = n.SendOnLSPs(2, []*LSP{main})
	if err != nil || pkt.Hops != 2 {
		t.Errorf("after undo: err=%v hops=%d", err, pkt.Hops)
	}
	if _, err := n.ReplaceILM(1, 9999, ILMEntry{}); err == nil {
		t.Error("ReplaceILM of unknown label accepted")
	}
}

func TestForwardingLoopDetected(t *testing.T) {
	// Misconfigure a 2-router ping-pong and check TTL catches it.
	g := graph.New(2)
	e := g.AddEdge(0, 1, 1)
	n := NewNetwork(g)
	l0 := n.Router(0).allocLabel()
	l1 := n.Router(1).allocLabel()
	n.Router(0).ilm[l0] = ILMEntry{Out: []Label{l1}, OutEdge: e}
	n.Router(1).ilm[l1] = ILMEntry{Out: []Label{l0}, OutEdge: e}
	pkt := &Packet{Src: 0, Dst: 1, Stack: []Label{l0}, At: 0, TTL: DefaultTTL, Trace: []graph.NodeID{0}}
	err := n.Forward(pkt)
	if !errors.Is(err, ErrTTLExpired) {
		t.Errorf("err = %v, want ErrTTLExpired", err)
	}
}

func TestLocalLabelLoopDetected(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	n := NewNetwork(g)
	l := n.Router(0).allocLabel()
	// Row that replaces the label with itself locally, forever.
	n.Router(0).ilm[l] = ILMEntry{Out: []Label{l}, OutEdge: LocalProcess}
	pkt := &Packet{Src: 0, Dst: 0, Stack: []Label{l}, At: 0, TTL: DefaultTTL, Trace: []graph.NodeID{0}}
	if err := n.Forward(pkt); !errors.Is(err, ErrLabelLoop) {
		t.Errorf("err = %v, want ErrLabelLoop", err)
	}
}

func TestMisdeliveryDetected(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2))
	// Claim destination 4 but the LSP ends at 2.
	_, err := n.SendOnLSPs(4, []*LSP{lsp})
	if !errors.Is(err, ErrNotDelivered) {
		t.Errorf("err = %v, want ErrNotDelivered", err)
	}
}

func TestNoRouteOnUnknownLabel(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	pkt := &Packet{Src: 0, Dst: 1, Stack: []Label{999}, At: 0, TTL: DefaultTTL, Trace: []graph.NodeID{0}}
	if err := n.Forward(pkt); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestSignalingAccounting(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3)) // 3 hops: 4 msgs
	n.TeardownLSP(lsp.ID)                           // 3 msgs
	st := n.Stats()
	if st.SignalingMsgs != 7 {
		t.Errorf("SignalingMsgs = %d, want 7", st.SignalingMsgs)
	}
	if st.LSPsEstablished != 1 || st.LSPsTornDown != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIncomingLabelAt(t *testing.T) {
	g := line5()
	n := NewNetwork(g)
	lsp, _ := n.EstablishLSP(pathOf(g, 0, 1, 2, 3))
	if _, ok := lsp.IncomingLabelAt(0); ok {
		t.Error("ingress has no incoming label")
	}
	for _, v := range []graph.NodeID{1, 2, 3} {
		l, ok := lsp.IncomingLabelAt(v)
		if !ok {
			t.Fatalf("no incoming label at %d", v)
		}
		if _, ok := n.Router(v).ILMEntryFor(l); !ok {
			t.Errorf("router %d has no row for its incoming label", v)
		}
	}
}
