package mpls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// TestQuickLSPFollowsItsPath: establish random LSPs on random graphs and
// check that a packet sent on each traverses exactly the provisioned
// node sequence, consuming exactly Hops links.
func TestQuickLSPFollowsItsPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(3)))
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(3)))
			}
		}
		net := NewNetwork(g)
		o := spath.NewOracle(g)
		for trial := 0; trial < 10; trial++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			if s == d {
				continue
			}
			p, ok := o.Path(s, d)
			if !ok || p.Hops() == 0 {
				continue
			}
			lsp, err := net.EstablishLSP(p)
			if err != nil {
				return false
			}
			pkt, err := net.SendOnLSPs(d, []*LSP{lsp})
			if err != nil {
				return false
			}
			if pkt.Hops != p.Hops() || len(pkt.Trace) != len(p.Nodes) {
				return false
			}
			for i, node := range p.Nodes {
				if pkt.Trace[i] != node {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickConcatenationChains: random chains of 2-4 LSPs splice
// correctly: the packet visits every splice point in order and lands at
// the final egress.
func TestQuickConcatenationChains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		g := graph.New(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), 1)
		}
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		net := NewNetwork(g)
		o := spath.NewOracle(g)
		for trial := 0; trial < 5; trial++ {
			// Random waypoint chain.
			k := 2 + rng.Intn(3)
			waypoints := []graph.NodeID{graph.NodeID(rng.Intn(n))}
			for len(waypoints) < k+1 {
				next := graph.NodeID(rng.Intn(n))
				if next != waypoints[len(waypoints)-1] {
					waypoints = append(waypoints, next)
				}
			}
			var lsps []*LSP
			ok := true
			for i := 0; i+1 < len(waypoints); i++ {
				p, found := o.Path(waypoints[i], waypoints[i+1])
				if !found || p.Hops() == 0 {
					ok = false
					break
				}
				lsp, err := net.EstablishLSP(p)
				if err != nil {
					return false
				}
				lsps = append(lsps, lsp)
			}
			if !ok {
				continue
			}
			dst := waypoints[len(waypoints)-1]
			pkt, err := net.SendOnLSPs(dst, lsps)
			if err != nil {
				return false
			}
			if pkt.At != dst {
				return false
			}
			// Splice points appear in order along the trace.
			ti := 0
			for _, w := range waypoints {
				found := false
				for ; ti < len(pkt.Trace); ti++ {
					if pkt.Trace[ti] == w {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickLabelSpacesIndependent: labels allocated at different routers
// may collide numerically; forwarding must still be correct because each
// ILM is per router.
func TestQuickLabelSpacesIndependent(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	net := NewNetwork(g)
	o := spath.NewOracle(g)
	// Several LSPs whose hop labels at distinct routers will share
	// numeric values (every router starts allocating at 16).
	var lsps []*LSP
	for _, pair := range [][2]graph.NodeID{{0, 3}, {3, 0}, {1, 3}, {2, 0}} {
		p, _ := o.Path(pair[0], pair[1])
		lsp, err := net.EstablishLSP(p)
		if err != nil {
			t.Fatal(err)
		}
		lsps = append(lsps, lsp)
	}
	// Numeric collision must exist across routers.
	if lsps[0].FirstHopLabel() != lsps[1].FirstHopLabel() {
		t.Log("expected numeric label collision across label spaces; continuing anyway")
	}
	for i, lsp := range lsps {
		pkt, err := net.SendOnLSPs(lsp.Egress(), []*LSP{lsp})
		if err != nil || pkt.At != lsp.Egress() {
			t.Fatalf("LSP %d misrouted: %v", i, err)
		}
	}
}
