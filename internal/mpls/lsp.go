package mpls

import (
	"fmt"

	"rbpc/internal/graph"
)

// LSP is an established label-switched path.
//
// Label layout for a path v_0 e_0 v_1 e_1 ... e_{m-1} v_m:
//
//	selfLabel          — allocated by v_0; ILM row at v_0 swaps it to
//	                     hopLabels[0] and forwards on e_0. It exists so the
//	                     LSP can be the *second or later* component of a
//	                     concatenation: a pop at the previous LSP's egress
//	                     exposes selfLabel, which v_0 then resolves.
//	hopLabels[i]       — allocated by v_{i+1}: the label carried on link
//	                     e_i. Transit routers swap hopLabels[i] ->
//	                     hopLabels[i+1]; the egress v_m pops hopLabels[m-1].
//
// With penultimate-hop popping (PHP) the router v_{m-1} pops instead of
// swapping and the egress installs no entry; the paper uses this for
// two-hop bypass paths ("no label overhead").
type LSP struct {
	ID   LSPID
	Path graph.Path
	PHP  bool

	selfLabel Label
	hopLabels []Label
}

// Ingress returns the LSP's first router.
func (l *LSP) Ingress() graph.NodeID { return l.Path.Src() }

// Egress returns the LSP's last router.
func (l *LSP) Egress() graph.NodeID { return l.Path.Dst() }

// SelfLabel returns the label that names this LSP at its own ingress —
// what a concatenating router pushes beneath the current stack so the
// packet continues onto this LSP.
func (l *LSP) SelfLabel() Label { return l.selfLabel }

// FirstHopLabel returns the label the ingress sends on the first link.
func (l *LSP) FirstHopLabel() Label { return l.hopLabels[0] }

// FirstEdge returns the LSP's first link.
func (l *LSP) FirstEdge() graph.EdgeID { return l.Path.Edges[0] }

// HopLabel returns the label carried on the LSP's i-th link (the label
// with which the packet arrives at Path.Nodes[i+1]). Under PHP the last
// hop carries the inner stack and has no label of its own.
func (l *LSP) HopLabel(i int) (Label, bool) {
	if i < 0 || i >= len(l.hopLabels) || (l.PHP && i == len(l.hopLabels)-1) {
		return 0, false
	}
	return l.hopLabels[i], true
}

// IncomingLabelAt returns the label with which packets on this LSP arrive
// at router v (which must be a non-ingress node of the path).
func (l *LSP) IncomingLabelAt(v graph.NodeID) (Label, bool) {
	for i := 1; i < len(l.Path.Nodes); i++ {
		if l.Path.Nodes[i] == v {
			return l.hopLabels[i-1], true
		}
	}
	return 0, false
}

// EstablishLSP provisions an LSP along path, allocating labels downstream
// and installing ILM rows at every router. It costs Hops() signaling
// messages (one label mapping per hop) plus one for the ingress self-row.
// The path must be nontrivial and usable (all links up).
func (n *Network) EstablishLSP(path graph.Path) (*LSP, error) {
	return n.establish(path, false)
}

// EstablishLSPPHP provisions an LSP with penultimate-hop popping: the
// egress holds no ILM row for it, so a 2-hop bypass adds no label state at
// the resumption router.
func (n *Network) EstablishLSPPHP(path graph.Path) (*LSP, error) {
	return n.establish(path, true)
}

func (n *Network) establish(path graph.Path, php bool) (*LSP, error) {
	if path.Hops() == 0 {
		return nil, fmt.Errorf("%w: trivial path", errInvalidPath)
	}
	if err := path.Validate(n.g); err != nil {
		return nil, fmt.Errorf("%w: %v", errInvalidPath, err)
	}
	for _, e := range path.Edges {
		if !n.edgeUp[e] {
			return nil, fmt.Errorf("%w: link %d is down", errInvalidPath, e)
		}
	}
	if php && path.Hops() == 1 {
		return nil, fmt.Errorf("%w: PHP needs at least 2 hops", errInvalidPath)
	}

	lsp := &LSP{ID: n.nextLSP, Path: path.Clone(), PHP: php}
	n.nextLSP++

	m := path.Hops()
	lsp.hopLabels = make([]Label, m)
	// Downstream assignment: v_{i+1} assigns the label for link e_i.
	// With PHP the egress assigns none; the final swap at v_{m-1} becomes
	// a pop.
	last := m
	if php {
		last = m - 1
	}
	for i := 0; i < last; i++ {
		lsp.hopLabels[i] = n.routers[path.Nodes[i+1]].allocLabel()
	}

	// Ingress self-row.
	ingress := n.routers[path.Src()]
	lsp.selfLabel = ingress.allocLabel()
	ingress.writableILM()[lsp.selfLabel] = ILMEntry{
		Out:     []Label{lsp.hopLabels[0]},
		OutEdge: path.Edges[0],
		LSP:     lsp.ID,
	}

	// Transit and egress rows.
	for i := 1; i <= m; i++ {
		r := n.routers[path.Nodes[i]]
		in := lsp.hopLabels[i-1]
		switch {
		case i == m:
			if php {
				continue // egress holds no row under PHP
			}
			r.writableILM()[in] = ILMEntry{Out: nil, OutEdge: LocalProcess, LSP: lsp.ID}
		case php && i == m-1:
			// Penultimate pop: forward the inner stack on the last link.
			r.writableILM()[in] = ILMEntry{Out: nil, OutEdge: path.Edges[i], LSP: lsp.ID}
		default:
			r.writableILM()[in] = ILMEntry{Out: []Label{lsp.hopLabels[i]}, OutEdge: path.Edges[i], LSP: lsp.ID}
		}
	}

	n.writableLSPs()[lsp.ID] = lsp
	n.stats.lspsEstablished.Add(1)
	n.stats.signalingMsgs.Add(int64(m) + 1) // one mapping per hop + ingress row
	return lsp, nil
}

// TeardownLSP removes the LSP's rows everywhere and releases its labels,
// costing one release message per hop.
func (n *Network) TeardownLSP(id LSPID) error {
	lsp, ok := n.lsps[id]
	if !ok {
		return fmt.Errorf("mpls: teardown of unknown LSP %d", id)
	}
	m := lsp.Path.Hops()
	n.routers[lsp.Path.Src()].freeLabel(lsp.selfLabel)
	last := m
	if lsp.PHP {
		last = m - 1
	}
	for i := 0; i < last; i++ {
		n.routers[lsp.Path.Nodes[i+1]].freeLabel(lsp.hopLabels[i])
	}
	delete(n.writableLSPs(), id)
	n.stats.lspsTornDown.Add(1)
	n.stats.signalingMsgs.Add(int64(m))
	return nil
}

// LSPByID returns an established LSP.
func (n *Network) LSPByID(id LSPID) (*LSP, bool) {
	l, ok := n.lsps[id]
	return l, ok
}

// NumLSPs returns the number of currently established LSPs.
func (n *Network) NumLSPs() int { return len(n.lsps) }

// TotalILM returns the summed ILM sizes over all routers, and the largest
// single table.
func (n *Network) TotalILM() (total, max int) {
	for _, r := range n.routers {
		s := r.ILMSize()
		total += s
		if s > max {
			max = s
		}
	}
	return total, max
}

// ConcatStack builds the label stack (bottom-first) that sends a packet
// along the concatenation of the given LSPs: the first hop label of the
// first LSP on top, then the self-labels of the remaining LSPs beneath it.
// It errors unless consecutive LSPs chain (egress of one is ingress of the
// next).
func ConcatStack(lsps []*LSP) ([]Label, graph.EdgeID, error) {
	if len(lsps) == 0 {
		return nil, 0, fmt.Errorf("mpls: empty concatenation")
	}
	for i := 1; i < len(lsps); i++ {
		if lsps[i-1].Egress() != lsps[i].Ingress() {
			return nil, 0, fmt.Errorf("mpls: LSP %d ends at %d but LSP %d starts at %d",
				lsps[i-1].ID, lsps[i-1].Egress(), lsps[i].ID, lsps[i].Ingress())
		}
		if lsps[i-1].PHP {
			// Under PHP the inner label is exposed one hop early, at the
			// penultimate router of the previous LSP — which is only
			// correct if that router equals the next LSP's ingress.
			// Reject the general case.
			return nil, 0, fmt.Errorf("mpls: LSP %d uses PHP and cannot be concatenated before another LSP", lsps[i-1].ID)
		}
	}
	// Bottom-first: deepest label continues the last LSP.
	stack := make([]Label, 0, len(lsps))
	for i := len(lsps) - 1; i >= 1; i-- {
		stack = append(stack, lsps[i].SelfLabel())
	}
	stack = append(stack, lsps[0].FirstHopLabel())
	return stack, lsps[0].FirstEdge(), nil
}

// SelfStack builds the label stack (bottom-first) of the concatenation's
// self-labels, for use with LocalProcess: the holding router resolves the
// top self-label through its own ILM. The first LSP must therefore start
// at the router that will process the stack. Chaining is validated as in
// ConcatStack.
func SelfStack(lsps []*LSP) ([]Label, error) {
	if len(lsps) == 0 {
		return nil, fmt.Errorf("mpls: empty concatenation")
	}
	for i := 1; i < len(lsps); i++ {
		if lsps[i-1].Egress() != lsps[i].Ingress() {
			return nil, fmt.Errorf("mpls: LSP %d ends at %d but LSP %d starts at %d",
				lsps[i-1].ID, lsps[i-1].Egress(), lsps[i].ID, lsps[i].Ingress())
		}
		if lsps[i-1].PHP {
			return nil, fmt.Errorf("mpls: LSP %d uses PHP and cannot be concatenated before another LSP", lsps[i-1].ID)
		}
	}
	stack := make([]Label, 0, len(lsps))
	for i := len(lsps) - 1; i >= 0; i-- {
		stack = append(stack, lsps[i].SelfLabel())
	}
	return stack, nil
}
