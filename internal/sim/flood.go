package sim

import (
	"math"

	"rbpc/internal/graph"
)

// FloodHops models link-state flood propagation after the failure of one
// link: the two failure-adjacent routers originate the LSA at hop 0, and
// every router that hears it re-floods to its neighbours over the
// surviving links (the failed link itself carries no announcement, and
// neither does any other link the view marks down). hops[r] is the number
// of link transmissions before router r first hears the announcement;
// -1 means the failure left r partitioned from both endpoints, so r never
// learns of it.
//
// v must be the failure view of the topology with the failed link (and
// any other concurrently-down links) removed; e is the failed link's edge
// record in the underlying graph. The BFS visits arcs in adjacency order,
// so the result is a pure function of (v, e).
//
//rbpc:deterministic
func FloodHops(v graph.View, e graph.Edge) []int {
	n := v.Order()
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	reach := func(u graph.NodeID, d int) {
		if int(u) < n && hops[u] == -1 {
			hops[u] = d
			queue = append(queue, u)
		}
	}
	reach(e.U, 0)
	reach(e.V, 0)
	for i := 0; i < len(queue); i++ {
		u := queue[i]
		v.VisitArcs(u, func(a graph.Arc) bool {
			reach(a.To, hops[u]+1)
			return true
		})
	}
	return hops
}

// FloodDelays converts a flood front into per-router announcement times:
// detect is the failure-detection delay at the adjacent routers (hop 0)
// and perHop the per-link LSA propagation-plus-processing delay. Routers
// the flood never reaches get +Inf — they keep whatever restoration state
// they had.
//
//rbpc:deterministic
func FloodDelays(hops []int, detect, perHop Time) []Time {
	out := make([]Time, len(hops))
	for i, h := range hops {
		if h < 0 {
			out[i] = Time(math.Inf(1))
			continue
		}
		out[i] = detect + perHop*Time(h)
	}
	return out
}
