package sim

import "testing"

func TestOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events", n)
	}
	for i, w := range []int{1, 2, 3} {
		if got[i] != w {
			t.Fatalf("order %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	var e Engine
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.At(10, func() { fired++ })
	if n := e.RunUntil(5); n != 2 || fired != 2 {
		t.Errorf("RunUntil(5): n=%d fired=%d", n, fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Errorf("fired = %d", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("Now = %v, want 42", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("no panic scheduling into the past")
		}
	}()
	e.At(5, func() {})
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}
