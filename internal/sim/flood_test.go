package sim

import (
	"math"
	"reflect"
	"testing"

	"rbpc/internal/graph"
)

// line builds the path graph 0-1-2-...-(n-1) and returns it with its edge
// IDs in order.
func line(n int) (*graph.Graph, []graph.EdgeID) {
	g := &graph.Graph{}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	edges := make([]graph.EdgeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1))
	}
	return g, edges
}

// TestFloodHopsLine: on a line, the flood front for a middle link spreads
// one hop per link outward from the two adjacent routers.
func TestFloodHopsLine(t *testing.T) {
	g, edges := line(6) // 0-1-2-3-4-5, fail 2-3
	e := edges[2]
	fv := graph.FailEdges(g, e)
	hops := FloodHops(fv, g.Edge(e))
	want := []int{2, 1, 0, 0, 1, 2}
	if !reflect.DeepEqual(hops, want) {
		t.Fatalf("FloodHops = %v, want %v", hops, want)
	}
}

// TestFloodHopsPartition: failing the only link of a 2-node graph leaves
// each endpoint at hop 0 (it detects locally) but the flood cannot cross;
// on a line, failing an end link still reaches everyone through the
// surviving side.
func TestFloodHopsPartition(t *testing.T) {
	g := &graph.Graph{}
	g.AddNode()
	g.AddNode()
	g.AddNode() // isolated third router
	e := g.AddEdge(0, 1, 1)
	fv := graph.FailEdges(g, e)
	hops := FloodHops(fv, g.Edge(e))
	want := []int{0, 0, -1}
	if !reflect.DeepEqual(hops, want) {
		t.Fatalf("FloodHops = %v, want %v", hops, want)
	}
}

// TestFloodHopsRoutesAroundOtherFailures: with a second link also down,
// the flood must detour around it — the announcement travels over
// surviving links only.
func TestFloodHopsRoutesAroundOtherFailures(t *testing.T) {
	// Square 0-1-2-3-0; fail 0-1 and also 1-2: router 1 only hears the
	// 0-1 LSA directly (hop 0); router 2 hears it via 3 (0->3->2).
	g := &graph.Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode()
	}
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	fv := graph.FailEdges(g, e01, e12)
	hops := FloodHops(fv, g.Edge(e01))
	want := []int{0, 0, 2, 1}
	if !reflect.DeepEqual(hops, want) {
		t.Fatalf("FloodHops = %v, want %v", hops, want)
	}
}

// TestFloodDelays: detect + perHop*hops, with unreachable routers at +Inf.
func TestFloodDelays(t *testing.T) {
	d := FloodDelays([]int{0, 2, -1}, 5, 10)
	if d[0] != 5 || d[1] != 25 {
		t.Fatalf("FloodDelays = %v", d)
	}
	if !math.IsInf(float64(d[2]), 1) {
		t.Fatalf("unreachable router delay = %v, want +Inf", d[2])
	}
}

// TestFloodHopsDeterministic: same inputs, same front.
func TestFloodHopsDeterministic(t *testing.T) {
	g, edges := line(9)
	fv := graph.FailEdges(g, edges[4])
	h1 := FloodHops(fv, g.Edge(edges[4]))
	h2 := FloodHops(fv, g.Edge(edges[4]))
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("FloodHops is not deterministic")
	}
}
