// Package sim is a minimal deterministic discrete-event engine. It drives
// the timing experiments of the reproduction: link-state flooding after a
// failure, LDP signaling latency, and the local-vs-source restoration race
// that motivates the paper's hybrid scheme.
package sim

import "container/heap"

// Time is simulated time in milliseconds.
type Time float64

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Events at equal times fire in scheduling order, so runs are
// deterministic.
type Engine struct {
	now   Time
	seq   int64
	pq    eventHeap
	trace TraceFunc
}

// TraceFunc observes every fired event: the time it fired at and the
// engine-assigned scheduling sequence number. Because the engine is
// deterministic, two runs of the same schedule must produce identical
// trace sequences — the chaos harness (internal/chaos) records traces and
// compares them across replays to certify determinism.
type TraceFunc func(t Time, seq int64)

// SetTrace installs fn as the event trace hook (nil disables tracing).
// The hook fires immediately before each event's callback runs, with the
// clock already advanced to the event's time.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules f at absolute time t. Scheduling in the past panics: the
// engine never rewinds.
func (e *Engine) At(t Time, f func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, do: f})
}

// After schedules f at Now() + d.
func (e *Engine) After(d Time, f func()) { e.At(e.now+d, f) }

// Step fires the next event. It reports false if none are pending.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	if e.trace != nil {
		e.trace(ev.at, ev.seq)
	}
	ev.do()
	return true
}

// Run fires events until none remain, returning how many fired.
func (e *Engine) Run() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with time <= t, advances the clock to t, and
// returns how many fired.
func (e *Engine) RunUntil(t Time) int {
	n := 0
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
		n++
	}
	if t > e.now {
		e.now = t
	}
	return n
}

type event struct {
	at  Time
	seq int64
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
