package sim

import "testing"

// TestTraceDeterministicReplay: the trace hook sees the identical (time,
// seq) sequence across two runs of the same schedule — the property the
// chaos harness's replay check is built on.
func TestTraceDeterministicReplay(t *testing.T) {
	type entry struct {
		at  Time
		seq int64
	}
	run := func() []entry {
		var e Engine
		var got []entry
		e.SetTrace(func(at Time, seq int64) { got = append(got, entry{at, seq}) })
		e.At(5, func() {})
		e.At(1, func() { e.After(2, func() {}) })
		e.At(1, func() {}) // same time: fires in scheduling order
		e.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("trace has %d entries, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Equal-time events fired in scheduling order.
	if !(a[0].at == 1 && a[1].at == 1 && a[0].seq < a[1].seq) {
		t.Fatalf("equal-time ordering wrong: %+v", a[:2])
	}
	if a[2].at != 3 || a[3].at != 5 {
		t.Fatalf("trace times wrong: %+v", a)
	}
}

// TestTraceNilHookIsNoop: tracing defaults off and can be disabled again.
func TestTraceNilHookIsNoop(t *testing.T) {
	var e Engine
	n := 0
	e.SetTrace(func(Time, int64) { n++ })
	e.At(1, func() {})
	e.SetTrace(nil)
	e.Run()
	if n != 0 {
		t.Fatalf("disabled trace fired %d times", n)
	}
}
