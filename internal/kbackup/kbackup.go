// Package kbackup implements the restoration baseline the paper argues
// against: pre-provision a small number of alternate paths per pair and,
// on failure, switch to the first surviving one.
//
//	"Previous work proposed to address this costly establishment by
//	compromising the 'quality' of the backup paths (e.g., use
//	non-shortest paths); for the simpler aim of maintaining
//	connectivity, it is sufficient to use a small number of
//	pre-established paths. Our approach enables fast restoration
//	without compromising the quality of backup paths."
//
// The alternates are the k shortest loopless paths (Yen), so this is the
// strongest reasonable version of the baseline. Its two structural
// weaknesses, which the comparison in internal/eval quantifies:
//
//   - Coverage: if every pre-established alternate crosses the failed
//     element(s), the pair blackholes even though the network is still
//     connected. RBPC restores whenever a path exists.
//   - Quality: the surviving alternate is generally not a post-failure
//     shortest path; RBPC's concatenation always is.
package kbackup

import (
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Scheme is a k-backup deployment over a fixed topology.
type Scheme struct {
	g *graph.Graph
	k int

	cache map[[2]graph.NodeID][]graph.Path
}

// New returns a k-backup scheme over g with k pre-established paths per
// pair (computed lazily per pair, memoized).
func New(g *graph.Graph, k int) *Scheme {
	if k < 1 {
		k = 1
	}
	return &Scheme{g: g, k: k, cache: make(map[[2]graph.NodeID][]graph.Path)}
}

// K returns the number of alternates per pair.
func (s *Scheme) K() int { return s.k }

// Paths returns the pair's pre-established paths, primary first.
func (s *Scheme) Paths(src, dst graph.NodeID) []graph.Path {
	key := [2]graph.NodeID{src, dst}
	if ps, ok := s.cache[key]; ok {
		return ps
	}
	ps := spath.KShortest(s.g, src, dst, s.k)
	s.cache[key] = ps
	return ps
}

// Primary returns the pair's working path (the shortest).
func (s *Scheme) Primary(src, dst graph.NodeID) (graph.Path, bool) {
	ps := s.Paths(src, dst)
	if len(ps) == 0 {
		return graph.Path{}, false
	}
	return ps[0], true
}

// Restore returns the first pre-established alternate that survives the
// failures, or false if none does — the scheme has no other recourse
// without falling back to online signaling.
func (s *Scheme) Restore(fv *graph.FailureView, src, dst graph.NodeID) (graph.Path, bool) {
	for _, p := range s.Paths(src, dst) {
		if paths.Survives(p, fv) {
			return p, true
		}
	}
	return graph.Path{}, false
}

// ILMEntries returns the ILM rows needed to pre-establish the pair's k
// paths (one row per downstream router per path).
func (s *Scheme) ILMEntries(src, dst graph.NodeID) int {
	total := 0
	for _, p := range s.Paths(src, dst) {
		total += p.Hops()
	}
	return total
}
