package kbackup

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestPrimaryAndAlternates(t *testing.T) {
	g := topology.Ring(6)
	s := New(g, 2)
	if s.K() != 2 {
		t.Fatalf("K = %d", s.K())
	}
	ps := s.Paths(0, 3)
	if len(ps) != 2 {
		t.Fatalf("paths = %d, want 2 (both ways around)", len(ps))
	}
	primary, ok := s.Primary(0, 3)
	if !ok || primary.Hops() != 3 {
		t.Errorf("primary = %v", primary)
	}
	// Memoized.
	again := s.Paths(0, 3)
	if &again[0].Nodes[0] != &ps[0].Nodes[0] {
		t.Error("paths not memoized")
	}
}

func TestRestoreSwitchesToSurvivor(t *testing.T) {
	g := topology.Ring(6)
	s := New(g, 2)
	primary, _ := s.Primary(0, 3)
	fv := graph.FailEdges(g, primary.Edges[0])
	alt, ok := s.Restore(fv, 0, 3)
	if !ok {
		t.Fatal("no surviving alternate on a ring")
	}
	if alt.HasEdge(primary.Edges[0]) {
		t.Error("alternate uses failed edge")
	}
	if alt.Hops() != 3 {
		t.Errorf("alternate hops = %d, want 3 (other way around)", alt.Hops())
	}
}

func TestRestoreCoverageGap(t *testing.T) {
	// The structural weakness: a "theta" graph with THREE disjoint routes
	// but k=2 pre-established paths. Failing a link on each of the two
	// stored paths leaves the third route alive — yet k-backup cannot
	// use it.
	g := graph.New(8)
	// Route A: 0-1-7 (cost 2). Route B: 0-2-3-7 (cost 3). Route C:
	// 0-4-5-6-7 (cost 4).
	g.AddEdge(0, 1, 1)
	a2 := g.AddEdge(1, 7, 1)
	g.AddEdge(0, 2, 1)
	b2 := g.AddEdge(2, 3, 1)
	g.AddEdge(3, 7, 1)
	g.AddEdge(0, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 6, 1)
	g.AddEdge(6, 7, 1)

	s := New(g, 2)
	ps := s.Paths(0, 7)
	if len(ps) != 2 || ps[0].CostIn(g) != 2 || ps[1].CostIn(g) != 3 {
		t.Fatalf("stored paths = %v", ps)
	}
	fv := graph.FailEdges(g, a2, b2)
	if _, ok := s.Restore(fv, 0, 7); ok {
		t.Fatal("k=2 backup restored though both stored paths are broken")
	}
	// The network is still connected: RBPC-style restoration would
	// succeed via route C.
	if !graph.Connected(fv) {
		t.Fatal("test setup: network should remain connected")
	}
	// k=3 closes the gap.
	s3 := New(g, 3)
	if alt, ok := s3.Restore(fv, 0, 7); !ok || alt.CostIn(g) != 4 {
		t.Errorf("k=3 restore = %v, %v", alt, ok)
	}
}

func TestILMEntries(t *testing.T) {
	g := topology.Ring(6)
	s := New(g, 2)
	// Paths 0->3: 3 hops each way = 6 rows.
	if got := s.ILMEntries(0, 3); got != 6 {
		t.Errorf("ILMEntries = %d, want 6", got)
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	s := New(g, 2)
	if _, ok := s.Primary(0, 2); ok {
		t.Error("primary to unreachable node")
	}
	if _, ok := s.Restore(graph.FailEdges(g), 0, 2); ok {
		t.Error("restore to unreachable node")
	}
	if New(g, 0).K() != 1 {
		t.Error("k floor not applied")
	}
}
