// Package ospf simulates the link-state substrate RBPC runs alongside: a
// simplified OSPF whose job in the reproduction is to (a) give every
// router a topology database, and (b) propagate failure/recovery
// notifications with realistic timing, so the gap between *local*
// restoration (at the router adjacent to a failure) and *source-router*
// restoration (after the flood reaches the source) can be measured — the
// motivation for the paper's hybrid scheme.
//
// The protocol floods link-state advertisements (LSAs) carrying link
// up/down transitions with per-link propagation delays and per-router
// processing delays, with sequence numbers suppressing re-floods, over the
// surviving topology.
package ospf

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/sim"
)

// Config sets the protocol timing.
type Config struct {
	// DetectDelay is how long an endpoint takes to notice its incident
	// link changed state (loss-of-signal / hello timeout).
	DetectDelay sim.Time
	// LinkDelay returns the propagation delay of a link.
	LinkDelay func(graph.Edge) sim.Time
	// ProcDelay is the per-router LSA processing delay.
	ProcDelay sim.Time
}

// DefaultConfig uses a 10ms detection delay, 1ms per link, and 0.1ms
// processing.
func DefaultConfig() Config {
	return Config{
		DetectDelay: 10,
		LinkDelay:   func(graph.Edge) sim.Time { return 1 },
		ProcDelay:   0.1,
	}
}

// LSA is a link-state advertisement: link Edge transitioned to state Up at
// the origin, with a per-(origin, edge) sequence number.
type LSA struct {
	Origin graph.NodeID
	Edge   graph.EdgeID
	Up     bool
	Seq    int64
}

// Listener observes topology changes as a particular router learns of
// them. at is the simulated time the router processed the LSA.
type Listener func(router graph.NodeID, lsa LSA, at sim.Time)

// Protocol is the flooding state machine over a topology.
type Protocol struct {
	g   *graph.Graph
	eng *sim.Engine
	cfg Config

	// linkUp is ground truth (what failures have actually happened).
	linkUp []bool
	// view[r][e] is router r's belief about link e.
	view [][]bool
	// seen[r] maps (origin,edge) to the highest sequence processed.
	seen []map[lsaKey]int64
	// nextSeq numbers LSAs per (origin, edge).
	nextSeq map[lsaKey]int64

	listeners []Listener
}

type lsaKey struct {
	origin graph.NodeID
	edge   graph.EdgeID
}

// New builds the protocol with every link up and every router's view
// synchronized.
func New(g *graph.Graph, eng *sim.Engine, cfg Config) *Protocol {
	if cfg.LinkDelay == nil {
		cfg.LinkDelay = func(graph.Edge) sim.Time { return 1 }
	}
	p := &Protocol{
		g:       g,
		eng:     eng,
		cfg:     cfg,
		linkUp:  make([]bool, g.Size()),
		view:    make([][]bool, g.Order()),
		seen:    make([]map[lsaKey]int64, g.Order()),
		nextSeq: make(map[lsaKey]int64),
	}
	for e := range p.linkUp {
		p.linkUp[e] = true
	}
	for r := range p.view {
		p.view[r] = make([]bool, g.Size())
		for e := range p.view[r] {
			p.view[r][e] = true
		}
		p.seen[r] = make(map[lsaKey]int64)
	}
	return p
}

// Subscribe registers a listener invoked whenever any router processes a
// new LSA. Typical use: the RBPC controller watches for the moment a
// path's source learns of a failure.
func (p *Protocol) Subscribe(l Listener) { p.listeners = append(p.listeners, l) }

// LinkUp reports ground truth for a link.
func (p *Protocol) LinkUp(e graph.EdgeID) bool { return p.linkUp[e] }

// RouterBelieves reports router r's current view of link e.
func (p *Protocol) RouterBelieves(r graph.NodeID, e graph.EdgeID) bool {
	return p.view[r][e]
}

// View returns a failure view of the topology as router r currently
// believes it: every link r thinks is down is removed.
func (p *Protocol) View(r graph.NodeID) *graph.FailureView {
	var down []graph.EdgeID
	for e, up := range p.view[r] {
		if !up {
			down = append(down, graph.EdgeID(e))
		}
	}
	return graph.FailEdges(p.g, down...)
}

// Converged reports whether every router's view matches ground truth.
func (p *Protocol) Converged() bool { return p.ConvergedExcept() }

// ConvergedExcept is Converged ignoring the given routers — use it after
// a router failure: the dead router has no live links, hears no floods,
// and can never learn of its own demise.
func (p *Protocol) ConvergedExcept(except ...graph.NodeID) bool {
	skip := make(map[graph.NodeID]bool, len(except))
	for _, r := range except {
		skip[r] = true
	}
	for r := range p.view {
		if skip[graph.NodeID(r)] {
			continue
		}
		for e := range p.view[r] {
			if p.view[r][e] != p.linkUp[e] {
				return false
			}
		}
	}
	return true
}

// FailLink marks a link down now; each surviving endpoint detects it after
// DetectDelay and originates an LSA flood.
func (p *Protocol) FailLink(e graph.EdgeID) error {
	return p.setLink(e, false)
}

// RepairLink marks a link up again and floods the recovery.
func (p *Protocol) RepairLink(e graph.EdgeID) error {
	return p.setLink(e, true)
}

func (p *Protocol) setLink(e graph.EdgeID, up bool) error {
	if e < 0 || int(e) >= len(p.linkUp) {
		return fmt.Errorf("ospf: unknown link %d", e)
	}
	edge := p.g.Edge(e)
	return p.setLinkFrom(e, up, []graph.NodeID{edge.U, edge.V})
}

// setLinkFrom transitions a link with only the given endpoints acting as
// LSA originators — a failed router cannot announce its own death.
func (p *Protocol) setLinkFrom(e graph.EdgeID, up bool, originators []graph.NodeID) error {
	if int(e) >= len(p.linkUp) {
		return fmt.Errorf("ospf: unknown link %d", e)
	}
	if p.linkUp[e] == up {
		return fmt.Errorf("ospf: link %d already in state up=%v", e, up)
	}
	p.linkUp[e] = up
	for _, end := range originators {
		end := end
		p.eng.After(p.cfg.DetectDelay, func() {
			key := lsaKey{origin: end, edge: e}
			p.nextSeq[key]++
			lsa := LSA{Origin: end, Edge: e, Up: up, Seq: p.nextSeq[key]}
			p.process(end, lsa)
		})
	}
	return nil
}

// FailRouter marks every link incident to r down. Only the surviving far
// endpoints originate LSAs: a dead router is silent. The downed links are
// returned for RepairRouter.
func (p *Protocol) FailRouter(r graph.NodeID) ([]graph.EdgeID, error) {
	var links []graph.EdgeID
	p.g.VisitArcs(r, func(a graph.Arc) bool {
		links = append(links, a.Edge)
		return true
	})
	for _, e := range links {
		if !p.linkUp[e] {
			continue // already down (e.g. an earlier link failure)
		}
		far := p.g.Edge(e).Other(r)
		if err := p.setLinkFrom(e, false, []graph.NodeID{far}); err != nil {
			return links, err
		}
	}
	return links, nil
}

// RepairRouter brings the given links back up, flooding from both
// endpoints (the router is alive again).
func (p *Protocol) RepairRouter(links []graph.EdgeID) error {
	for _, e := range links {
		if p.linkUp[e] {
			continue
		}
		if err := p.setLink(e, true); err != nil {
			return err
		}
	}
	return nil
}

// process installs an LSA at router r (if new) and schedules the re-flood.
func (p *Protocol) process(r graph.NodeID, lsa LSA) {
	key := lsaKey{origin: lsa.Origin, edge: lsa.Edge}
	if p.seen[r][key] >= lsa.Seq {
		return // duplicate
	}
	p.seen[r][key] = lsa.Seq
	p.view[r][lsa.Edge] = lsa.Up
	for _, l := range p.listeners {
		l(r, lsa, p.eng.Now())
	}
	// Re-flood to all neighbors over links r believes usable (never over
	// the failed link itself while it is down).
	p.g.VisitArcs(r, func(a graph.Arc) bool {
		if !p.view[r][a.Edge] || (a.Edge == lsa.Edge && !lsa.Up) {
			return true
		}
		// Only flood over links that are actually up: a physically dead
		// link carries nothing even if r has not noticed yet.
		if !p.linkUp[a.Edge] {
			return true
		}
		to := a.To
		delay := p.cfg.LinkDelay(p.g.Edge(a.Edge)) + p.cfg.ProcDelay
		p.eng.After(delay, func() { p.process(to, lsa) })
		return true
	})
}
