package ospf

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

func TestFloodConvergence(t *testing.T) {
	g := topology.Ring(8)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	if !p.Converged() {
		t.Fatal("fresh protocol not converged")
	}
	if err := p.FailLink(0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !p.Converged() {
		t.Error("views did not converge after flood")
	}
	for r := 0; r < g.Order(); r++ {
		if p.RouterBelieves(graph.NodeID(r), 0) {
			t.Errorf("router %d still believes link 0 up", r)
		}
	}
	if p.LinkUp(0) {
		t.Error("ground truth wrong")
	}
}

func TestRepairFloods(t *testing.T) {
	g := topology.Ring(5)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	p.FailLink(2)
	eng.Run()
	if err := p.RepairLink(2); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !p.Converged() {
		t.Error("not converged after repair")
	}
	if !p.RouterBelieves(0, 2) {
		t.Error("router 0 missed the recovery")
	}
}

func TestSetLinkErrors(t *testing.T) {
	g := topology.Ring(4)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	if err := p.FailLink(99); err == nil {
		t.Error("unknown link accepted")
	}
	if err := p.RepairLink(0); err == nil {
		t.Error("repair of healthy link accepted")
	}
	p.FailLink(0)
	if err := p.FailLink(0); err == nil {
		t.Error("double failure accepted")
	}
}

func TestNotificationTiming(t *testing.T) {
	// On a line, the failure notification reaches nearer routers first,
	// and the adjacent router detects at DetectDelay exactly.
	g := topology.Line(6)
	var eng sim.Engine
	cfg := Config{DetectDelay: 10, LinkDelay: func(graph.Edge) sim.Time { return 2 }, ProcDelay: 0}
	p := New(g, &eng, cfg)

	arrival := make(map[graph.NodeID]sim.Time)
	p.Subscribe(func(r graph.NodeID, lsa LSA, at sim.Time) {
		if !lsa.Up {
			if _, seen := arrival[r]; !seen {
				arrival[r] = at
			}
		}
	})
	// Fail link 2-3 (edge index 2).
	p.FailLink(2)
	eng.Run()

	if arrival[2] != 10 || arrival[3] != 10 {
		t.Errorf("adjacent detection at %v/%v, want 10", arrival[2], arrival[3])
	}
	if arrival[1] != 12 || arrival[0] != 14 {
		t.Errorf("upstream arrivals %v/%v, want 12/14", arrival[1], arrival[0])
	}
	if arrival[4] != 12 || arrival[5] != 14 {
		t.Errorf("downstream arrivals %v/%v, want 12/14", arrival[4], arrival[5])
	}
}

func TestFloodDoesNotCrossDeadLink(t *testing.T) {
	// Two nodes, one link: after the only link dies, each side knows only
	// via its own detection, and the network still converges (both
	// endpoints detect locally).
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	p.FailLink(0)
	eng.Run()
	if !p.Converged() {
		t.Error("endpoints should both detect their incident link")
	}
}

func TestViewFailureView(t *testing.T) {
	g := topology.Ring(5)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	p.FailLink(1)
	eng.Run()
	fv := p.View(0)
	if fv.EdgeUsable(1) {
		t.Error("View(0) still has the failed link")
	}
	if !fv.EdgeUsable(0) {
		t.Error("View(0) lost a healthy link")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Count listener invocations: each router should process each LSA
	// exactly once despite the ring offering two flood directions.
	g := topology.Ring(6)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	count := make(map[graph.NodeID]map[graph.NodeID]int) // router -> origin -> times
	p.Subscribe(func(r graph.NodeID, lsa LSA, at sim.Time) {
		if count[r] == nil {
			count[r] = make(map[graph.NodeID]int)
		}
		count[r][lsa.Origin]++
	})
	p.FailLink(3)
	eng.Run()
	for r, per := range count {
		for origin, c := range per {
			if c != 1 {
				t.Errorf("router %d processed LSA from %d %d times", r, origin, c)
			}
		}
	}
}
