package ospf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
	"rbpc/internal/sim"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// TestQuickConvergenceBound: on random connected graphs with uniform
// delays, every live router learns of a failure no later than
// DetectDelay + eccentricity(endpoint) * (LinkDelay + ProcDelay), and
// the network always converges.
func TestQuickConvergenceBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := topology.Waxman(n, 0.6, 0.4, seed)
		var eng sim.Engine
		cfg := Config{
			DetectDelay: 10,
			LinkDelay:   func(graph.Edge) sim.Time { return 2 },
			ProcDelay:   0.5,
		}
		p := New(g, &eng, cfg)

		e := graph.EdgeID(rng.Intn(g.Size()))
		arrivals := make(map[graph.NodeID]sim.Time)
		p.Subscribe(func(r graph.NodeID, lsa LSA, at sim.Time) {
			if !lsa.Up {
				if _, seen := arrivals[r]; !seen {
					arrivals[r] = at
				}
			}
		})
		if err := p.FailLink(e); err != nil {
			return false
		}
		eng.Run()
		if !p.Converged() {
			return false
		}
		// Hop distances measured on the surviving topology (the flood
		// cannot cross the dead link); Waxman weights are 1, so weighted
		// distance equals hop count.
		fv := graph.FailEdges(g, e)
		edge := g.Edge(e)
		tU := spath.Compute(fv, edge.U)
		tV := spath.Compute(fv, edge.V)
		perHop := cfg.LinkDelay(edge) + cfg.ProcDelay
		for r := 0; r < n; r++ {
			rr := graph.NodeID(r)
			at, heard := arrivals[rr]
			du, dv := tU.Dist(rr), tV.Dist(rr)
			reachable := du != spath.Unreachable || dv != spath.Unreachable
			if !reachable {
				// Isolated from both originators: must never hear.
				if heard {
					return false
				}
				continue
			}
			if !heard {
				return false
			}
			hops := du
			if dv < hops {
				hops = dv
			}
			bound := cfg.DetectDelay + sim.Time(hops)*perHop
			if at > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
