package ospf

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

func TestFailRouterFloodsFromSurvivors(t *testing.T) {
	g := topology.Ring(6)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())

	// No down-LSA may ever be originated by the dead router (after
	// repair the router is alive again and rightly announces recovery).
	p.Subscribe(func(r graph.NodeID, lsa LSA, at sim.Time) {
		if lsa.Origin == 2 && !lsa.Up {
			t.Errorf("dead router 2 originated a down-LSA: %+v", lsa)
		}
	})
	links, err := p.FailRouter(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("ring router has %d incident links, want 2", len(links))
	}
	eng.Run()
	if !p.ConvergedExcept(2) {
		t.Error("live routers not converged after router failure")
	}
	if p.Converged() {
		t.Error("the dead router cannot have learned of its own death")
	}
	for _, e := range links {
		if p.RouterBelieves(0, e) {
			t.Errorf("router 0 still believes link %d up", e)
		}
	}
	if err := p.RepairRouter(links); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !p.Converged() {
		t.Error("not converged after repair")
	}
	for _, e := range links {
		if !p.LinkUp(e) {
			t.Errorf("link %d still down", e)
		}
	}
}

func TestFailRouterIdempotentOnDownLinks(t *testing.T) {
	g := topology.Ring(5)
	var eng sim.Engine
	p := New(g, &eng, DefaultConfig())
	// One incident link already failed; FailRouter must skip it quietly.
	p.FailLink(0) // link 0-1
	eng.Run()
	if _, err := p.FailRouter(0); err != nil {
		t.Fatalf("FailRouter after partial failure: %v", err)
	}
	eng.Run()
	if !p.ConvergedExcept(0) {
		t.Error("live routers not converged")
	}
}
