// Package eval reproduces the paper's evaluation: Table 1 (topology
// statistics), Table 2 (restoration quality and ILM stretch across four
// failure classes), Table 3 (edge-bypass lengths) and Figure 10 (local
// RBPC stretch histograms), on synthetic stand-ins for the paper's three
// measured networks.
package eval

import (
	"os"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// Network is a named evaluation topology with its sampling budget.
type Network struct {
	Name string
	G    *graph.Graph
	// Trials is the number of sampled source-destination pairs, following
	// the paper: 200 for the ISP topologies, 40 for the large ones.
	Trials int
}

// Scale configures the synthetic stand-ins. The paper's full sizes are
// expensive for routine test runs, so the big graphs default to scaled
// versions; set RBPC_FULL=1 (or FullScale) to reproduce at paper scale.
type Scale struct {
	Seed          int64
	ASScale       float64
	InternetScale float64
}

// DefaultScale keeps the big graphs small enough for CI (AS ~470 nodes,
// Internet ~810 nodes) while preserving their degree statistics.
func DefaultScale() Scale {
	return Scale{Seed: 1, ASScale: 0.1, InternetScale: 0.02}
}

// FullScale reproduces the paper's Table 1 sizes exactly.
func FullScale() Scale {
	return Scale{Seed: 1, ASScale: 1, InternetScale: 1}
}

// ScaleFromEnv returns FullScale when RBPC_FULL=1, else DefaultScale.
func ScaleFromEnv() Scale {
	if os.Getenv("RBPC_FULL") == "1" {
		return FullScale()
	}
	return DefaultScale()
}

// PaperNetworks builds the four evaluation rows of the paper's tables:
// weighted ISP, unweighted ISP (same topology, hop-count routing),
// Internet, and AS graph.
func PaperNetworks(sc Scale) []Network {
	isp := topology.PaperISP(sc.Seed)
	return []Network{
		{Name: "ISP, Weighted", G: isp, Trials: 200},
		{Name: "ISP, Unweighted", G: topology.UnitWeightCopy(isp), Trials: 200},
		{Name: "Internet", G: topology.PaperInternet(sc.Seed, sc.InternetScale), Trials: 40},
		{Name: "AS Graph", G: topology.PaperAS(sc.Seed, sc.ASScale), Trials: 40},
	}
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Name      string
	Nodes     int
	Links     int
	AvgDegree float64
}

// Table1 summarizes the evaluation topologies (ISP appears once, as in
// the paper: the unweighted variant shares its topology).
func Table1(nets []Network) []Table1Row {
	var rows []Table1Row
	seen := make(map[*graph.Graph]bool)
	for _, n := range nets {
		if n.Name == "ISP, Unweighted" {
			continue
		}
		if seen[n.G] {
			continue
		}
		seen[n.G] = true
		s := graph.Summarize(n.G)
		rows = append(rows, Table1Row{Name: n.Name, Nodes: s.Nodes, Links: s.Links, AvgDegree: s.AvgDegree})
	}
	return rows
}
