package eval

import (
	"math/rand"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/kbackup"
	"rbpc/internal/spath"
)

// KBackupComparison quantifies the paper's positioning against the
// pre-established-alternates baseline: restoration coverage and path
// quality of k-backup vs RBPC on the same sampled failures.
type KBackupComparison struct {
	Network string
	K       int
	Kind    failure.Kind

	Scenarios int // restorable instances (a surviving path exists)

	// KBackupCovered counts instances the k-backup scheme restored;
	// RBPC covers all Scenarios by construction.
	KBackupCovered int

	// Stretch sums are over instances BOTH schemes restored, relative to
	// the post-failure optimum (RBPC's restoration is the optimum).
	KBackupAvgStretch float64

	// ILM rows per sampled pair: k pre-established paths vs RBPC's one
	// basic LSP (concatenation components come from the shared base set).
	KBackupILM int
	RBPCILM    int
}

// CoveragePct returns the k-backup restoration coverage in percent.
func (c KBackupComparison) CoveragePct() float64 {
	if c.Scenarios == 0 {
		return 0
	}
	return 100 * float64(c.KBackupCovered) / float64(c.Scenarios)
}

// CompareKBackup runs the comparison on one network and failure class.
func CompareKBackup(net Network, k int, kind failure.Kind, seed int64) KBackupComparison {
	g := net.G
	oracle := spath.NewOracle(g)
	oracle.SetCap(512)
	scheme := kbackup.New(g, k)
	rng := rand.New(rand.NewSource(seed))
	scens := failure.Sample(g, oracle, kind, net.Trials, rng)

	res := KBackupComparison{Network: net.Name, K: k, Kind: kind}
	var stretchSum float64
	var stretchN int
	pairsSeen := make(map[[2]graph.NodeID]bool)

	for _, sc := range scens {
		fv := sc.View(g)
		opt, ok := spath.Compute(fv, sc.Src).PathTo(sc.Dst)
		if !ok {
			continue // genuinely partitioned: neither scheme can help
		}
		res.Scenarios++

		if alt, ok := scheme.Restore(fv, sc.Src, sc.Dst); ok {
			res.KBackupCovered++
			stretchSum += alt.CostIn(g) / opt.CostIn(g)
			stretchN++
		}

		key := [2]graph.NodeID{sc.Src, sc.Dst}
		if !pairsSeen[key] {
			pairsSeen[key] = true
			res.KBackupILM += scheme.ILMEntries(sc.Src, sc.Dst)
			res.RBPCILM += sc.Primary.Hops()
		}
	}
	if stretchN > 0 {
		res.KBackupAvgStretch = stretchSum / float64(stretchN)
	}
	return res
}
