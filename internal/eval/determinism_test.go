package eval

import (
	"reflect"
	"strings"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/topology"
)

// TestTable2Deterministic: the whole pipeline (generation, sampling,
// restoration, aggregation) must be bit-for-bit reproducible for a given
// seed — the property that makes EXPERIMENTS.md numbers checkable.
func TestTable2Deterministic(t *testing.T) {
	mk := func() Table2Row {
		net := Network{Name: "isp", G: topology.PaperISP(6), Trials: 25}
		return Table2(net, failure.SingleLink, 9)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Table2 not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestTable3Deterministic(t *testing.T) {
	mk := func() Table3Result {
		net := Network{Name: "isp", G: topology.PaperISP(6), Trials: 0}
		return Table3(net, 50, 4)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Table3 not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestFigure10Deterministic(t *testing.T) {
	mk := func() Figure10Result {
		net := Network{Name: "isp", G: topology.PaperISP(6), Trials: 15}
		return Figure10(net, 2)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Figure10 not deterministic")
	}
}

func TestCompareKBackupDeterministic(t *testing.T) {
	mk := func() KBackupComparison {
		net := Network{Name: "isp", G: topology.PaperISP(6), Trials: 15}
		return CompareKBackup(net, 2, failure.SingleLink, 3)
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatal("CompareKBackup not deterministic")
	}
}

func TestAsymmetryDeterministic(t *testing.T) {
	mk := func() AsymmetryResult {
		net := Network{Name: "isp", G: topology.PaperISP(6), Trials: 10}
		return Asymmetry(net, 2, 8)
	}
	if a, b := mk(), mk(); !reflect.DeepEqual(a, b) {
		t.Fatal("Asymmetry not deterministic")
	}
}

func TestRenderKBackup(t *testing.T) {
	rows := []KBackupComparison{{
		Network: "x", K: 2, Kind: failure.SingleLink,
		Scenarios: 10, KBackupCovered: 5, KBackupAvgStretch: 1.2,
		KBackupILM: 20, RBPCILM: 10,
	}}
	var sb strings.Builder
	RenderKBackup(&sb, rows)
	out := sb.String()
	for _, want := range []string{"coverage", "50.0%", "2.00x", "1.200"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
