package eval

import (
	"math"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/topology"
)

func TestTable2ExactRingIsAnalytic(t *testing.T) {
	// On an unweighted n-ring every single-link failure of a pair's
	// primary leaves exactly one backup (the long way around), which
	// decomposes into exactly 2 basic paths for every scenario.
	net := Network{Name: "ring", G: topology.Ring(8), Trials: 0}
	row := Table2Exact(net)
	if row.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if row.Disconnected != 0 {
		t.Errorf("disconnected = %d on a ring", row.Disconnected)
	}
	// Almost every scenario needs exactly 2 components. A few hit the
	// C4-remark phenomenon: when a backup segment spans an antipodal
	// pair, the padded-unique base may have chosen the *other* equal-cost
	// route, forcing a third component. (With the all-shortest-paths
	// base the count would be exactly 2; one path per pair pays this
	// occasional extra piece — that is Theorem 3's trade.)
	if row.AvgPC < 2 || row.AvgPC > 2.1 {
		t.Errorf("exact AvgPC = %v, want in [2, 2.1] on a ring", row.AvgPC)
	}
	// No equal-cost alternatives on an even ring? Opposite pairs have
	// two equal-cost 4-hop paths, so redundancy is the share of
	// scenarios whose endpoints are antipodal: 8 ordered antipodal pairs
	// x 4 on-path links = 32 of the total.
	if row.Redundancy <= 0 || row.Redundancy >= 1 {
		t.Errorf("redundancy = %v", row.Redundancy)
	}
}

func TestSampledConvergesToExact(t *testing.T) {
	// A generously sampled Table2 must approximate the exhaustive one on
	// a mid-sized graph: AvgPC within 0.15 and redundancy within 10pp.
	g := topology.Grid(5, 5)
	exact := Table2Exact(Network{Name: "grid", G: g, Trials: 0})
	sampled := Table2(Network{Name: "grid", G: g, Trials: 120}, failure.SingleLink, 3)
	if exact.Scenarios == 0 || sampled.Scenarios == 0 {
		t.Fatal("empty experiment")
	}
	if d := math.Abs(exact.AvgPC - sampled.AvgPC); d > 0.15 {
		t.Errorf("AvgPC gap %.3f (exact %.3f sampled %.3f)", d, exact.AvgPC, sampled.AvgPC)
	}
	if d := math.Abs(exact.Redundancy - sampled.Redundancy); d > 0.10 {
		t.Errorf("redundancy gap %.3f (exact %.3f sampled %.3f)", d, exact.Redundancy, sampled.Redundancy)
	}
	if exact.Scenarios <= sampled.Scenarios {
		t.Errorf("exact covered %d <= sampled %d", exact.Scenarios, sampled.Scenarios)
	}
}
