package eval

import (
	"strings"
	"testing"
)

func TestRenderAsymmetry(t *testing.T) {
	var sb strings.Builder
	RenderAsymmetry(&sb, []AsymmetryResult{{
		Network: "x", Jitter: 2, K: 1,
		Scenarios: 100, WithinBound: 95, MaxComponents: 4, AvgComponents: 2.1,
	}})
	out := sb.String()
	for _, want := range []string{"bound held", "95.0%", "2.10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTiming(t *testing.T) {
	var sb strings.Builder
	RenderTiming(&sb, TimingResult{
		Network: "x", Failures: 9,
		LocalMean: 10, LocalP95: 10,
		SourceMean: 11.5, SourceP95: 13,
		BaselineMean: 17, BaselineP95: 21,
	})
	out := sb.String()
	for _, want := range []string{"local RBPC", "teardown + LDP", "11.50", "21.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTradeoff(t *testing.T) {
	var sb strings.Builder
	RenderTradeoff(&sb, []TradeoffRow{{Tech: "MPLS", ConcatCost: 2, ReestablishCost: 2000}})
	out := sb.String()
	if !strings.Contains(out, "MPLS") || !strings.Contains(out, "1000x") {
		t.Errorf("render:\n%s", out)
	}
}
