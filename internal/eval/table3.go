package eval

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// Table3Row is one row of the paper's Table 3: the share of edges whose
// min-cost bypass (endpoint to endpoint, with the edge removed) has the
// given hop count.
type Table3Row struct {
	Hopcount int
	Percent  float64
}

// Table3Result is the bypass-length distribution for one network.
type Table3Result struct {
	Network string
	Rows    []Table3Row
	// Unbypassable counts edges with no bypass at all (bridges); the
	// paper's topologies are 2-edge-connected backbones so it reports
	// none, but synthetic access links can be single-homed.
	Unbypassable int
	EdgesChecked int
}

// Table3 computes the bypass hop-count distribution. If maxEdges > 0 and
// the network has more edges, a deterministic random sample of maxEdges
// edges is measured instead (the full 101k-edge Internet graph would need
// one search per edge).
func Table3(net Network, maxEdges int, seed int64) Table3Result {
	g := net.G
	edges := make([]graph.EdgeID, g.Size())
	for i := range edges {
		edges[i] = graph.EdgeID(i)
	}
	if maxEdges > 0 && len(edges) > maxEdges {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		edges = edges[:maxEdges]
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	}

	// One bounded search per edge, independent of every other edge: fan
	// out across cores. Each worker holds its own counts and the results
	// merge after the join, so no lock sits on the hot path; the merged
	// histogram is deterministic regardless of scheduling. The searches
	// themselves run on pooled spath Solvers, so the whole sweep allocates
	// one FailureView per edge and nothing else.
	res := Table3Result{Network: net.Name, EdgesChecked: len(edges)}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers < 1 {
		workers = 1
	}
	type shard struct {
		counts       map[int]int
		unbypassable int
	}
	shards := make([]shard, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := shard{counts: make(map[int]int)}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(edges) {
					break
				}
				id := edges[i]
				e := g.Edge(id)
				fv := graph.FailEdges(g, id)
				_, hops, ok := spath.DistTo(fv, e.U, e.V)
				if !ok {
					local.unbypassable++
					continue
				}
				local.counts[hops]++
			}
			shards[w] = local
		}(w)
	}
	wg.Wait()
	counts := make(map[int]int)
	for _, s := range shards {
		res.Unbypassable += s.unbypassable
		for h, c := range s.counts {
			counts[h] += c
		}
	}
	bypassable := len(edges) - res.Unbypassable
	if bypassable == 0 {
		return res
	}
	hopcounts := make([]int, 0, len(counts))
	for h := range counts {
		hopcounts = append(hopcounts, h)
	}
	sort.Ints(hopcounts)
	for _, h := range hopcounts {
		res.Rows = append(res.Rows, Table3Row{
			Hopcount: h,
			Percent:  100 * float64(counts[h]) / float64(bypassable),
		})
	}
	return res
}
