package eval

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestAsymmetryZeroJitterHoldsBound(t *testing.T) {
	// With symmetric weights, directed shortest paths mirror undirected
	// ones and the k+1 bound should hold essentially always.
	net := Network{Name: "isp", G: topology.PaperISP(1), Trials: 30}
	res := Asymmetry(net, 0, 3)
	if res.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if res.BoundHeldPct() < 99 {
		t.Errorf("symmetric directed bound held only %.1f%%", res.BoundHeldPct())
	}
	if res.AvgComponents <= 0 || res.AvgComponents > 3 {
		t.Errorf("avg components %.2f", res.AvgComponents)
	}
}

func TestAsymmetryJitterDegradesGracefully(t *testing.T) {
	net := Network{Name: "isp", G: topology.PaperISP(2), Trials: 30}
	sym := Asymmetry(net, 0, 5)
	asym := Asymmetry(net, 3, 5)
	if asym.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	// Asymmetry can only hurt (or match) the bound.
	if asym.BoundHeldPct() > sym.BoundHeldPct()+1e-9 {
		t.Errorf("jitter improved the bound: %.1f%% > %.1f%%", asym.BoundHeldPct(), sym.BoundHeldPct())
	}
	// It should remain mostly fine in practice — the paper's pathologies
	// are constructions, not typical topologies.
	if asym.BoundHeldPct() < 50 {
		t.Errorf("bound collapsed under mild jitter: %.1f%%", asym.BoundHeldPct())
	}
}

func TestAsymmetricCopyShape(t *testing.T) {
	g := topology.Ring(5)
	dg := topology.AsymmetricCopy(g, 1, 2)
	if !dg.Directed() {
		t.Fatal("copy not directed")
	}
	if dg.Size() != 2*g.Size() || dg.Order() != g.Order() {
		t.Fatalf("copy shape %d/%d", dg.Order(), dg.Size())
	}
	for i, e := range g.Edges() {
		fwd := dg.Edge(graph.EdgeID(2 * i))
		rev := dg.Edge(graph.EdgeID(2*i + 1))
		if fwd.U != e.U || fwd.V != e.V || rev.U != e.V || rev.V != e.U {
			t.Fatalf("arc orientation wrong at %d", i)
		}
		if fwd.W < e.W || fwd.W > e.W+2 || rev.W < e.W || rev.W > e.W+2 {
			t.Fatalf("jitter out of range at %d: %v/%v from %v", i, fwd.W, rev.W, e.W)
		}
	}
	// Zero jitter reproduces weights exactly.
	dg0 := topology.AsymmetricCopy(g, 1, 0)
	for i, e := range g.Edges() {
		if dg0.Edge(graph.EdgeID(2*i)).W != e.W {
			t.Fatal("zero jitter changed weights")
		}
	}
}
