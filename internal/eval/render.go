package eval

import (
	"fmt"
	"io"

	"rbpc/internal/failure"
)

// RenderTable1 writes Table 1 in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-12s %8s %9s %9s\n", "name", "nodes", "links", "avg.deg.")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %9d %9.3f\n", r.Name, r.Nodes, r.Links, r.AvgDegree)
	}
}

// RenderTable2 writes Table 2 grouped by failure class, in the paper's
// column order.
func RenderTable2(w io.Writer, rows []Table2Row) {
	var last failure.Kind
	for _, r := range rows {
		if r.Kind != last {
			fmt.Fprintf(w, "\nAfter %s.\n", r.Kind)
			fmt.Fprintf(w, "%-16s %10s %10s %8s %8s %12s %6s\n",
				"Network", "min ILM sf", "avg ILM sf", "avg PC", "len sf", "redundancy", "(max)")
			last = r.Kind
		}
		fmt.Fprintf(w, "%-16s %9.1f%% %9.1f%% %8.2f %8.2f %11.1f%% %6d\n",
			r.Network, 100*r.MinILMSF, 100*r.AvgILMSF, r.AvgPC, r.LengthSF,
			100*r.Redundancy, r.MaxMultiplicity)
	}
}

// RenderTable3 writes the bypass-length distributions side by side-ish
// (one block per network).
func RenderTable3(w io.Writer, results []Table3Result) {
	for _, res := range results {
		fmt.Fprintf(w, "\n%s (%d edges checked, %d unbypassable)\n",
			res.Network, res.EdgesChecked, res.Unbypassable)
		fmt.Fprintf(w, "%-16s %8s\n", "bypass hopcount", "share")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%-16d %7.2f%%\n", row.Hopcount, row.Percent)
		}
	}
}

// RenderFigure10 writes the four stretch histograms.
func RenderFigure10(w io.Writer, res Figure10Result) {
	fmt.Fprintf(w, "Local RBPC stretch on %s (%d scenarios, %d locally unrestorable)\n",
		res.Network, res.Scenarios, res.LocallyUnrestorable)
	blocks := []struct {
		name string
		h    *Histogram
	}{
		{"cost stretch, end-route", res.CostEndRoute},
		{"cost stretch, edge-bypass", res.CostEdgeBypass},
		{"hopcount stretch, end-route", res.HopsEndRoute},
		{"hopcount stretch, edge-bypass", res.HopsEdgeBypass},
	}
	for _, b := range blocks {
		fmt.Fprintf(w, "\n  %s:\n", b.name)
		for i, label := range b.h.Labels {
			if b.h.Counts[i] == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-11s %6.1f%%  %s\n", label, b.h.Percent(i), bar(b.h.Percent(i)))
		}
	}
}

// RenderKBackup writes the k-backup-vs-RBPC comparison rows.
func RenderKBackup(w io.Writer, rows []KBackupComparison) {
	fmt.Fprintf(w, "%-16s %-18s %3s %10s %10s %9s %8s\n",
		"Network", "failure class", "k", "coverage", "(RBPC)", "stretch", "ILM vs RBPC")
	for _, r := range rows {
		ilmx := 0.0
		if r.RBPCILM > 0 {
			ilmx = float64(r.KBackupILM) / float64(r.RBPCILM)
		}
		fmt.Fprintf(w, "%-16s %-18s %3d %9.1f%% %10s %9.3f %7.2fx\n",
			r.Network, r.Kind.String(), r.K, r.CoveragePct(), "100%", r.KBackupAvgStretch, ilmx)
	}
}

// RenderAsymmetry writes the asymmetric-weights experiment rows.
func RenderAsymmetry(w io.Writer, rows []AsymmetryResult) {
	fmt.Fprintf(w, "%-16s %7s %10s %12s %10s %10s\n",
		"Network", "jitter", "scenarios", "bound held", "avg comps", "max comps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %7d %10d %11.1f%% %10.2f %10d\n",
			r.Network, r.Jitter, r.Scenarios, r.BoundHeldPct(), r.AvgComponents, r.MaxComponents)
	}
}

// RenderTiming writes the restoration-latency comparison.
func RenderTiming(w io.Writer, res TimingResult) {
	fmt.Fprintf(w, "restoration latency on %s over %d failures (ms):\n", res.Network, res.Failures)
	fmt.Fprintf(w, "  %-28s %8s %8s\n", "scheme", "mean", "p95")
	fmt.Fprintf(w, "  %-28s %8.2f %8.2f\n", "local RBPC (edge-bypass)", res.LocalMean, res.LocalP95)
	fmt.Fprintf(w, "  %-28s %8.2f %8.2f\n", "source RBPC (last source)", res.SourceMean, res.SourceP95)
	fmt.Fprintf(w, "  %-28s %8.2f %8.2f\n", "teardown + LDP re-signal", res.BaselineMean, res.BaselineP95)
}

// RenderTradeoff writes the technology trade-off rows.
func RenderTradeoff(w io.Writer, rows []TradeoffRow) {
	fmt.Fprintf(w, "%-8s %16s %18s %12s\n", "tech", "concat cost", "re-establish cost", "advantage")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %16.1f %18.1f %11.0fx\n", r.Tech, r.ConcatCost, r.ReestablishCost, r.Advantage())
	}
}

// bar renders a proportional ASCII bar.
func bar(pct float64) string {
	n := int(pct / 2)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
