package eval

import (
	"math/rand"

	"rbpc/internal/core"
	"rbpc/internal/failure"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Technology trade-off (the paper's Section 1): "In considering the
// application of our restoration schemes to other technologies such as
// WDM and ATM, the trade-off between the cost of setting up and tearing
// down virtual circuits versus the cost of path concatenation has to be
// evaluated. The higher the former cost and the lower the latter, the
// more attractive our scheme."
//
// TechCost parameterizes a transport technology in arbitrary per-
// operation units; Tradeoff turns the paper's qualitative argument into
// a measured ratio on sampled failures.

// TechCost models one technology's control-plane costs.
type TechCost struct {
	Name string
	// Setup and Teardown are per-hop circuit establishment/removal costs
	// (signaling, cross-connect programming, wavelength assignment...).
	Setup, Teardown float64
	// Splice is the per-junction cost of concatenating two provisioned
	// paths: ~0 for the MPLS stack (one extra label push at the source),
	// an O-E-O conversion plus layer-3 lookup in WDM, a VC/VP lookup in
	// ATM.
	Splice float64
}

// DefaultTechnologies returns the three technologies the paper
// discusses, with cost ratios reflecting its qualitative ordering.
func DefaultTechnologies() []TechCost {
	return []TechCost{
		{Name: "MPLS", Setup: 1, Teardown: 1, Splice: 0.01},
		{Name: "WDM", Setup: 50, Teardown: 50, Splice: 5},
		{Name: "ATM", Setup: 2, Teardown: 2, Splice: 1},
	}
}

// TradeoffRow reports, for one technology, the total control-plane cost
// of restoring the sampled failures by path concatenation vs by
// conventional teardown-and-re-establishment.
type TradeoffRow struct {
	Tech string
	// ConcatCost: splices performed (components - 1 per restoration).
	ConcatCost float64
	// ReestablishCost: tear down the broken primary, set up the backup,
	// both per hop.
	ReestablishCost float64
}

// Advantage returns how many times cheaper concatenation is.
func (r TradeoffRow) Advantage() float64 {
	if r.ConcatCost == 0 {
		return 0
	}
	return r.ReestablishCost / r.ConcatCost
}

// Tradeoff samples single-link failures and accumulates both schemes'
// control-plane costs under each technology's prices.
func Tradeoff(net Network, techs []TechCost, seed int64) []TradeoffRow {
	g := net.G
	base := paths.NewUniqueShortest(g)
	oracle := base.PaddedOracle()
	oracle.SetCap(512)
	eps := spath.PaddingFor(g)
	rng := rand.New(rand.NewSource(seed))
	scens := failure.Sample(g, oracle, failure.SingleLink, net.Trials, rng)

	var splices, setupHops, teardownHops float64
	for _, sc := range scens {
		fv := sc.View(g)
		backup, ok := spath.Compute(spath.Padded(fv, eps), sc.Src).PathTo(sc.Dst)
		if !ok {
			continue
		}
		dec := core.DecomposeGreedy(base, backup)
		if dec.Len() > 1 {
			splices += float64(dec.Len() - 1)
		}
		setupHops += float64(backup.Hops())
		teardownHops += float64(sc.Primary.Hops())
	}

	rows := make([]TradeoffRow, 0, len(techs))
	for _, tc := range techs {
		rows = append(rows, TradeoffRow{
			Tech:            tc.Name,
			ConcatCost:      splices * tc.Splice,
			ReestablishCost: setupHops*tc.Setup + teardownHops*tc.Teardown,
		})
	}
	return rows
}
