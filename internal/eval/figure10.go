package eval

import (
	"math/rand"

	"rbpc/internal/failure"
	"rbpc/internal/spath"
)

// Histogram buckets stretch factors the way the paper's Figure 10 plots
// them. Bucket i covers (Edges[i-1], Edges[i]]; bucket 0 covers values
// strictly below 1 (possible for hop-count stretch); the "=1" bucket holds
// exact optimum.
type Histogram struct {
	// Labels and Counts are parallel.
	Labels []string
	Counts []int
	Total  int
}

var histEdges = []float64{1.0, 1.1, 1.25, 1.5, 2.0}

func newHistogram() *Histogram {
	return &Histogram{
		Labels: []string{"<1", "=1", "(1,1.1]", "(1.1,1.25]", "(1.25,1.5]", "(1.5,2]", ">2"},
		Counts: make([]int, 7),
	}
}

func (h *Histogram) add(v float64) {
	h.Total++
	switch {
	case v < 1:
		h.Counts[0]++
	case v == 1:
		h.Counts[1]++
	case v <= histEdges[1]:
		h.Counts[2]++
	case v <= histEdges[2]:
		h.Counts[3]++
	case v <= histEdges[3]:
		h.Counts[4]++
	case v <= histEdges[4]:
		h.Counts[5]++
	default:
		h.Counts[6]++
	}
}

// Percent returns the share of samples in bucket i.
func (h *Histogram) Percent(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Counts[i]) / float64(h.Total)
}

// Figure10Result carries the four histograms of the paper's Figure 10:
// cost stretch and hop-count stretch of the two local-RBPC variants,
// each relative to the source-routed min-cost restoration path.
type Figure10Result struct {
	Network string

	CostEndRoute   *Histogram
	CostEdgeBypass *Histogram
	HopsEndRoute   *Histogram
	HopsEdgeBypass *Histogram

	// LocallyUnrestorable counts scenarios where the adjacent router had
	// no bypass (edge-bypass) or no route to the destination (end-route).
	LocallyUnrestorable int
	Scenarios           int
}

// Figure10 measures local-RBPC overhead on single-link failures: for each
// sampled scenario, compare the end-route and edge-bypass restoration
// paths against the source-routed minimum-cost restoration.
func Figure10(net Network, seed int64) Figure10Result {
	g := net.G
	oracle := spath.NewOracle(g)
	oracle.SetCap(512)
	rng := rand.New(rand.NewSource(seed))
	scens := failure.Sample(g, oracle, failure.SingleLink, net.Trials, rng)

	res := Figure10Result{
		Network:        net.Name,
		CostEndRoute:   newHistogram(),
		CostEdgeBypass: newHistogram(),
		HopsEndRoute:   newHistogram(),
		HopsEdgeBypass: newHistogram(),
	}

	for _, sc := range scens {
		fv := sc.View(g)
		// Source-routed optimum after the failure.
		opt, ok := spath.Compute(fv, sc.Src).PathTo(sc.Dst)
		if !ok {
			continue // partitioned: nobody can restore
		}
		res.Scenarios++

		i := sc.PathIndex
		r1 := sc.Primary.Nodes[i]
		r2 := sc.Primary.Nodes[i+1]
		prefix := sc.Primary.SubPath(0, i)
		suffix := sc.Primary.SubPath(i+1, sc.Primary.Hops())

		// One search from R1 in the failed view serves both variants.
		r1Tree := spath.Compute(fv, r1)

		endTail, endOK := r1Tree.PathTo(sc.Dst)
		bypass, bypOK := r1Tree.PathTo(r2)
		if !endOK || !bypOK {
			// On an undirected graph end-route and edge-bypass fail
			// together exactly when R1 was cut off from the rest.
			res.LocallyUnrestorable++
			continue
		}

		optCost, optHops := opt.CostIn(g), float64(opt.Hops())

		endCost := prefix.CostIn(g) + endTail.CostIn(g)
		endHops := float64(prefix.Hops() + endTail.Hops())
		res.CostEndRoute.add(endCost / optCost)
		res.HopsEndRoute.add(endHops / optHops)

		bypCost := prefix.CostIn(g) + bypass.CostIn(g) + suffix.CostIn(g)
		bypHops := float64(prefix.Hops() + bypass.Hops() + suffix.Hops())
		res.CostEdgeBypass.add(bypCost / optCost)
		res.HopsEdgeBypass.add(bypHops / optHops)
	}
	return res
}
