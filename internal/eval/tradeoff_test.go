package eval

import (
	"testing"

	"rbpc/internal/topology"
)

func TestTradeoffOrdering(t *testing.T) {
	net := Network{Name: "isp", G: topology.PaperISP(1), Trials: 40}
	rows := Tradeoff(net, DefaultTechnologies(), 7)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]TradeoffRow)
	for _, r := range rows {
		byName[r.Tech] = r
		if r.ConcatCost <= 0 || r.ReestablishCost <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Advantage() <= 1 {
			t.Errorf("%s: concatenation not advantageous (%.2fx)", r.Tech, r.Advantage())
		}
	}
	// The paper's ordering: MPLS benefits most (near-free splices), WDM
	// still clearly wins (setup/teardown dwarfs splicing), ATM least.
	if !(byName["MPLS"].Advantage() > byName["WDM"].Advantage()) {
		t.Errorf("MPLS %.1fx not above WDM %.1fx",
			byName["MPLS"].Advantage(), byName["WDM"].Advantage())
	}
	if !(byName["WDM"].Advantage() > byName["ATM"].Advantage()) {
		t.Errorf("WDM %.1fx not above ATM %.1fx",
			byName["WDM"].Advantage(), byName["ATM"].Advantage())
	}
}

func TestTradeoffZeroSplice(t *testing.T) {
	net := Network{Name: "ring", G: topology.Ring(6), Trials: 10}
	rows := Tradeoff(net, []TechCost{{Name: "free", Setup: 1, Teardown: 1, Splice: 0}}, 1)
	if rows[0].Advantage() != 0 {
		t.Errorf("zero-splice advantage sentinel = %v", rows[0].Advantage())
	}
}
