package eval

import (
	"math/rand"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// AsymmetryResult measures how the Theorem-1/2 bound behaves when link
// weights become asymmetric (directed) — the regime the paper's theorems
// explicitly do not cover, and which it flags as emerging practice under
// traffic-engineering weight optimization.
type AsymmetryResult struct {
	Network string
	Jitter  int
	K       int

	Scenarios int
	// WithinBound counts restorations decomposable into <= k+1 base
	// paths and <= k bare edges even on the directed graph.
	WithinBound int
	// MaxComponents is the worst minimum-decomposition seen.
	MaxComponents int
	// AvgComponents is the mean over scenarios (minimum decompositions).
	AvgComponents float64
}

// BoundHeldPct returns the share of scenarios within the undirected
// bound.
func (r AsymmetryResult) BoundHeldPct() float64 {
	if r.Scenarios == 0 {
		return 0
	}
	return 100 * float64(r.WithinBound) / float64(r.Scenarios)
}

// Asymmetry converts the network to a directed graph with per-direction
// weight jitter, samples single-arc failures on sampled pairs' primary
// paths, and checks the k+1 decomposition bound with the exact DP.
//
// With jitter 0 the directed graph is weight-symmetric and the
// undirected theorems effectively apply (expect ~100%); growing jitter
// lets Figure-5-style effects appear.
func Asymmetry(net Network, jitter int, seed int64) AsymmetryResult {
	dg := topology.AsymmetricCopy(net.G, seed, jitter)
	oracle := spath.NewOracle(dg)
	oracle.SetCap(512)
	base := paths.NewAllShortestOracle(oracle)
	rng := rand.New(rand.NewSource(seed + 1))

	res := AsymmetryResult{Network: net.Name, Jitter: jitter, K: 1}
	n := dg.Order()
	var sumComps int
	for trial := 0; trial < net.Trials; trial++ {
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		primary, ok := oracle.Path(src, dst)
		if !ok || primary.Hops() == 0 {
			continue
		}
		for _, e := range primary.Edges {
			fv := graph.FailEdges(dg, e)
			backup, ok := spath.Compute(fv, src).PathTo(dst)
			if !ok {
				continue
			}
			// Minimum base-path components with at most k=1 bare edges.
			minPaths := core.MinPathComponents(base, backup, 1)
			if minPaths < 0 {
				// Not coverable even with the edge allowance; count as a
				// violation with the hop count as the trivial cover.
				res.Scenarios++
				res.MaxComponents = max(res.MaxComponents, backup.Hops())
				sumComps += backup.Hops()
				continue
			}
			res.Scenarios++
			sumComps += minPaths
			if minPaths > res.MaxComponents {
				res.MaxComponents = minPaths
			}
			if minPaths <= 2 { // k+1 with k=1
				res.WithinBound++
			}
		}
	}
	if res.Scenarios > 0 {
		res.AvgComponents = float64(sumComps) / float64(res.Scenarios)
	}
	return res
}
