package eval

import (
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/topology"
)

func TestCompareKBackupSingleLink(t *testing.T) {
	net := Network{Name: "isp", G: topology.PaperISP(1), Trials: 40}
	res := CompareKBackup(net, 2, failure.SingleLink, 5)
	if res.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if res.KBackupCovered > res.Scenarios {
		t.Fatalf("coverage overflow: %d/%d", res.KBackupCovered, res.Scenarios)
	}
	// With 2 alternates, single-link coverage is high but path quality
	// costs something (stretch >= 1).
	if res.CoveragePct() < 50 {
		t.Errorf("k=2 single-link coverage only %.1f%%", res.CoveragePct())
	}
	if res.KBackupAvgStretch < 1 {
		t.Errorf("avg stretch %.3f < 1 (optimum is minimal)", res.KBackupAvgStretch)
	}
	// Pre-established state: k paths per pair vs RBPC's one.
	if res.KBackupILM <= res.RBPCILM {
		t.Errorf("k-backup ILM %d not larger than RBPC's %d", res.KBackupILM, res.RBPCILM)
	}
}

func TestCompareKBackupDoubleWorseThanSingle(t *testing.T) {
	// The scheme's coverage degrades with more simultaneous failures;
	// RBPC's does not (it always restores connected pairs).
	net := Network{Name: "isp", G: topology.PaperISP(2), Trials: 40}
	single := CompareKBackup(net, 2, failure.SingleLink, 7)
	double := CompareKBackup(net, 2, failure.DoubleLink, 7)
	if single.Scenarios == 0 || double.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if double.CoveragePct() > single.CoveragePct()+1e-9 {
		t.Errorf("double-failure coverage %.1f%% exceeds single %.1f%%",
			double.CoveragePct(), single.CoveragePct())
	}
}

func TestCompareKBackupMoreAlternatesHelp(t *testing.T) {
	net := Network{Name: "grid", G: topology.Grid(5, 5), Trials: 25}
	k1 := CompareKBackup(net, 1, failure.SingleLink, 3)
	k3 := CompareKBackup(net, 3, failure.SingleLink, 3)
	if k3.CoveragePct() < k1.CoveragePct() {
		t.Errorf("k=3 coverage %.1f%% below k=1 %.1f%%", k3.CoveragePct(), k1.CoveragePct())
	}
	// k=1 is pure primary: it never survives a failure on itself, and
	// the sampler only fails on-path elements, so coverage must be 0.
	if k1.KBackupCovered != 0 {
		t.Errorf("k=1 covered %d scenarios; sampler fails the primary itself", k1.KBackupCovered)
	}
}
