package eval

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"rbpc/internal/core"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Table2Row reports the paper's Table 2 statistics for one network under
// one failure class.
type Table2Row struct {
	Network string
	Kind    failure.Kind

	Scenarios    int // restorable failure instances measured
	Disconnected int // instances where the failure partitioned the pair

	// MinILMSF and AvgILMSF are the ILM stretch factors: per router, the
	// ILM entries needed by the basic LSPs used in the experiment as a
	// fraction of the entries needed to pre-provision every backup path
	// as its own LSP. Small is good (RBPC needs far less ILM space).
	MinILMSF float64
	AvgILMSF float64

	// AvgPC is the average number of components (basic LSPs, plus bare
	// edges in the weighted case) concatenated to cover a backup path.
	AvgPC float64

	// LengthSF is the hop count of the average backup path divided by the
	// hop count of the average original path.
	LengthSF float64

	// Redundancy is the fraction of backup paths whose cost equals the
	// original shortest path's (an equal-cost alternative existed).
	Redundancy float64

	// MaxMultiplicity is the largest number of distinct shortest paths
	// between any sampled source and any destination.
	MaxMultiplicity uint64

	// BasicLSPsUsed counts the distinct basic LSPs (primaries plus
	// concatenation components) touched by the experiment; BackupLSPs the
	// distinct backup paths the alternative scheme would pre-provision.
	BasicLSPsUsed int
	BackupLSPs    int
}

// Table2 runs the paper's restoration experiment: sample pairs, fail each
// element along their basic LSPs, restore by concatenation of basic LSPs,
// and aggregate the table's statistics.
//
// Following the paper's methodology, the basic set holds ONE shortest
// path per pair ("one shortest path was chosen arbitrarily if several
// existed") plus its subpaths; we realize the arbitrary-but-consistent
// choice with the padded-unique base set (Theorem 3), which is
// automatically subpath-closed, and compute backup paths under the same
// padding so "the" new shortest path is well defined.
func Table2(net Network, kind failure.Kind, seed int64) Table2Row {
	g := net.G
	base := paths.NewUniqueShortest(g)
	oracle := base.PaddedOracle()
	oracle.SetCap(512)
	rng := rand.New(rand.NewSource(seed))

	// Double-failure kinds enumerate every pair of on-path elements: the
	// pre-provisioning alternative must cover each such case with its own
	// backup LSP, which is what makes its ILM footprint balloon for
	// multi-failure protection.
	scens := failure.Sample(g, oracle, kind, net.Trials, rng)
	return table2From(net, kind, base, scens)
}

// Table2Exact is Table2 for single-link failures with the sampling
// replaced by exhaustive enumeration over every connected pair — the
// exact statistic the sampled run estimates. Quadratic; for small
// networks and convergence checks.
func Table2Exact(net Network) Table2Row {
	base := paths.NewUniqueShortest(net.G)
	oracle := base.PaddedOracle()
	oracle.SetCap(1024)
	// The enumeration reads every source's tree in sequence; warm them in
	// parallel first (bounded by the oracle's cap).
	all := make([]graph.NodeID, net.G.Order())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	oracle.Precompute(all, 0)
	scens := failure.EnumerateSingleLink(net.G, oracle)
	return table2From(net, failure.SingleLink, base, scens)
}

// table2From aggregates the Table-2 statistics over the given scenarios.
func table2From(net Network, kind failure.Kind, base *paths.UniqueShortest, scens []failure.Scenario) Table2Row {
	g := net.G
	eps := spath.PaddingFor(g)

	row := Table2Row{Network: net.Name, Kind: kind}
	usedBase := make(map[string]graph.Path)  // basic LSPs used: primaries + components
	primaries := make(map[string]graph.Path) // the sampled pairs' basic LSPs
	backups := make(map[string]graph.Path)   // distinct backup paths
	var backupCases []graph.Path             // one backup LSP per failure case (no dedup)
	srcSet := make(map[graph.NodeID]bool)

	// Scenarios are independent (the shared oracle is thread-safe), so
	// fan out across cores: the full-scale Internet graph runs hundreds
	// of Dijkstras here. Every aggregate is either an integer sum, a
	// counting map, or sorted before use, so the result is deterministic
	// regardless of scheduling.
	var sumPC, sumBackupHops, sumPrimaryHops, equalCost int
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(scens) {
		workers = len(scens)
	}

	// Warm the shared padded oracle with every scenario source before the
	// fan-out, so workers decompose against cached trees instead of racing
	// to compute the same ones.
	sources := make([]graph.NodeID, 0, len(scens))
	for _, sc := range scens {
		if !srcSet[sc.Src] {
			srcSet[sc.Src] = true
			sources = append(sources, sc.Src)
		}
	}
	base.PaddedOracle().Precompute(sources, workers)

	work := make(chan failure.Scenario)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sc := range work {
				fv := sc.View(g)
				backup, ok := spath.Compute(spath.Padded(fv, eps), sc.Src).PathTo(sc.Dst)
				if !ok {
					mu.Lock()
					row.Disconnected++
					mu.Unlock()
					continue
				}
				dec := core.DecomposeGreedy(base, backup)
				// Everything that walks a path — cost sums, hop counts,
				// string keys — happens outside the mutex so workers don't
				// serialize on it.
				equal := backup.CostIn(g) == sc.Primary.CostIn(g)
				backupKey := backup.Key()
				primaryKey := sc.Primary.Key()
				compKeys := make([]string, len(dec.Components))
				for i, c := range dec.Components {
					compKeys[i] = c.Path.Key()
				}
				backupHops, primaryHops := backup.Hops(), sc.Primary.Hops()
				decLen := dec.Len()

				mu.Lock()
				row.Scenarios++
				sumPC += decLen
				sumBackupHops += backupHops
				sumPrimaryHops += primaryHops
				if equal {
					equalCost++
				}
				backups[backupKey] = backup
				backupCases = append(backupCases, backup)
				primaries[primaryKey] = sc.Primary
				usedBase[primaryKey] = sc.Primary // the pair's basic LSP itself
				for i, c := range dec.Components {
					usedBase[compKeys[i]] = c.Path
				}
				mu.Unlock()
			}
		}()
	}
	for _, sc := range scens {
		work <- sc
	}
	close(work)
	wg.Wait()
	if row.Scenarios == 0 {
		return row
	}

	row.AvgPC = float64(sumPC) / float64(row.Scenarios)
	if sumPrimaryHops > 0 {
		row.LengthSF = float64(sumBackupHops) / float64(sumPrimaryHops)
	}
	row.Redundancy = float64(equalCost) / float64(row.Scenarios)

	row.MinILMSF, row.AvgILMSF = ilmStretch(primaries, backupCases)
	row.BasicLSPsUsed = len(usedBase)
	row.BackupLSPs = len(backups)

	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	row.MaxMultiplicity = spath.MaxShortestPathMultiplicity(g, sources)
	return row
}

// ilmStretch compares the two schemes' ILM footprints per router on the
// sampled-pair slice of each scheme's table:
//
//	RBPC:             one basic LSP per sampled pair. Restoration reuses
//	                  LSPs that the all-pairs base set holds anyway: a
//	                  suffix component enters an existing LSP midstream
//	                  (free — it uses that LSP's label at the splice
//	                  router), and every other component is itself the
//	                  basic LSP of its endpoint pair.
//	pre-provisioning: the same primary plus one dedicated backup LSP per
//	                  failure case of the studied kind — per CASE, not per
//	                  distinct path: an automated pre-provisioning system
//	                  installs each case's backup without noticing that
//	                  two cases happen to share a route.
//
// A path of h hops consumes one ILM entry at each of its h downstream
// routers. The stretch factor at a router is RBPC entries / backup-scheme
// entries; the min and mean are taken over routers carrying any
// backup-scheme state.
func ilmStretch(primaries map[string]graph.Path, backupCases []graph.Path) (minSF, avgSF float64) {
	addEntries := func(entries map[graph.NodeID]int, p graph.Path) {
		for _, n := range p.Nodes[1:] {
			entries[n]++
		}
	}
	rbpcEntries := make(map[graph.NodeID]int)
	for _, p := range primaries {
		addEntries(rbpcEntries, p)
	}
	// The pre-provisioning scheme also carries the primaries (they are
	// the working paths); its restoration state is one LSP per case.
	preEntries := make(map[graph.NodeID]int)
	for _, p := range primaries {
		addEntries(preEntries, p)
	}
	for _, p := range backupCases {
		addEntries(preEntries, p)
	}
	// Iterate routers in ID order: float accumulation must not depend on
	// map iteration order, or repeated runs differ in the last bit.
	routers := make([]graph.NodeID, 0, len(preEntries))
	for n := range preEntries {
		routers = append(routers, n)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	minSF = -1
	var sum float64
	var count int
	for _, n := range routers {
		if rbpcEntries[n] == 0 {
			// Routers touched only by backup detours hold no RBPC state
			// at all; a 0% ratio there is vacuous, so they are excluded
			// from the min/avg like the paper's per-table comparison.
			continue
		}
		sf := float64(rbpcEntries[n]) / float64(preEntries[n])
		if minSF < 0 || sf < minSF {
			minSF = sf
		}
		sum += sf
		count++
	}
	if count == 0 {
		return 0, 0
	}
	return minSF, sum / float64(count)
}

// Table2All runs every failure class on every network.
func Table2All(nets []Network, seed int64) []Table2Row {
	kinds := []failure.Kind{failure.SingleLink, failure.DoubleLink, failure.SingleRouter, failure.DoubleRouter}
	var rows []Table2Row
	for _, k := range kinds {
		for _, n := range nets {
			rows = append(rows, Table2(n, k, seed))
		}
	}
	return rows
}
