package eval

import (
	"bytes"
	"encoding/json"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/topology"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	net := Network{Name: "ring", G: topology.Ring(8), Trials: 10}
	row := Table2(net, failure.SingleLink, 1)
	t3 := Table3(net, 0, 1)
	res := Results{
		Table1: Table1([]Network{net}),
		Table2: []Table2Row{row},
		Table3: []Table3Result{t3},
		Seed:   1,
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(back.Table2) != 1 || back.Table2[0].AvgPC != row.AvgPC {
		t.Errorf("round trip lost Table2: %+v", back.Table2)
	}
	if back.Seed != 1 || back.FullScale {
		t.Error("metadata lost")
	}
	if back.Figure10 != nil || len(back.KBackup) != 0 {
		t.Error("omitted sections materialized")
	}
	// The kind enum must serialize as its integer (stable across runs).
	if back.Table2[0].Kind != failure.SingleLink {
		t.Errorf("kind = %v", back.Table2[0].Kind)
	}
}
