package eval

import (
	"testing"

	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

func TestTimingOrdering(t *testing.T) {
	// Local restoration beats source restoration beats the LDP baseline,
	// on every aggregate.
	net := Network{Name: "waxman", G: topology.Waxman(14, 0.7, 0.4, 11), Trials: 0}
	res, err := Timing(net, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no usable failures sampled")
	}
	// Local patching happens at detection: exactly 10ms.
	if res.LocalMean != 10 {
		t.Errorf("local mean = %v, want the 10ms detection delay", res.LocalMean)
	}
	if !(res.LocalMean <= res.SourceMean) {
		t.Errorf("local %v not <= source %v", res.LocalMean, res.SourceMean)
	}
	if !(res.SourceMean < res.BaselineMean) {
		t.Errorf("source %v not < baseline %v", res.SourceMean, res.BaselineMean)
	}
	if res.LocalP95 < res.LocalMean || res.SourceP95 < res.SourceMean || res.BaselineP95 < res.BaselineMean {
		t.Error("p95 below mean")
	}
}

func TestTimingDeterministic(t *testing.T) {
	net := Network{Name: "ring", G: topology.Ring(8), Trials: 0}
	a, err := Timing(net, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Timing(net, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Timing not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestMeanP95(t *testing.T) {
	if m, p := meanP95(nil); m != 0 || p != 0 {
		t.Error("empty meanP95")
	}
	m, p := meanP95([]sim.Time{1, 2, 3, 4})
	if m != 2.5 || p != 4 {
		t.Errorf("meanP95 = %v, %v", m, p)
	}
}
