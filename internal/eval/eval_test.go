package eval

import (
	"math"
	"strings"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// tinyNetworks returns fast evaluation networks for tests.
func tinyNetworks() []Network {
	isp := topology.ISP(topology.ISPConfig{
		Core: 6, Agg: 12, Access: 22,
		CoreOffsets: []int{1, 2}, AggLateral: 3, DualAccess: 14,
		WCore: 1, WAgg: 3, WAccess: 10,
	}, 1)
	return []Network{
		{Name: "ISP, Weighted", G: isp, Trials: 30},
		{Name: "ISP, Unweighted", G: topology.UnitWeightCopy(isp), Trials: 30},
		{Name: "Internet", G: topology.PaperInternet(1, 0.003), Trials: 10},
		{Name: "AS Graph", G: topology.PaperAS(1, 0.02), Trials: 10},
	}
}

func TestTable1(t *testing.T) {
	nets := tinyNetworks()
	rows := Table1(nets)
	if len(rows) != 3 {
		t.Fatalf("Table1 rows = %d, want 3 (ISP listed once)", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Links == 0 || r.AvgDegree <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	if !strings.Contains(sb.String(), "ISP") {
		t.Error("render missing ISP row")
	}
}

func TestTable2SingleLink(t *testing.T) {
	for _, net := range tinyNetworks() {
		row := Table2(net, failure.SingleLink, 7)
		if row.Scenarios == 0 {
			t.Fatalf("%s: no scenarios", net.Name)
		}
		// Paper shapes: PC length close to 2, never below 1.
		if row.AvgPC < 1 || row.AvgPC > 4 {
			t.Errorf("%s: AvgPC = %.2f out of plausible range", net.Name, row.AvgPC)
		}
		// Backup paths are never shorter than originals on average.
		if row.LengthSF < 1 {
			t.Errorf("%s: length stretch %.2f < 1", net.Name, row.LengthSF)
		}
		// ILM stretch must be a real saving: strictly below 1 means the
		// basic LSPs cost less table space than per-backup provisioning.
		if row.AvgILMSF <= 0 || row.AvgILMSF >= 1.5 {
			t.Errorf("%s: AvgILMSF = %.3f implausible", net.Name, row.AvgILMSF)
		}
		if row.MinILMSF > row.AvgILMSF {
			t.Errorf("%s: min ILM sf %.3f > avg %.3f", net.Name, row.MinILMSF, row.AvgILMSF)
		}
		if row.Redundancy < 0 || row.Redundancy > 1 {
			t.Errorf("%s: redundancy %.3f", net.Name, row.Redundancy)
		}
		if row.MaxMultiplicity < 1 {
			t.Errorf("%s: max multiplicity %d", net.Name, row.MaxMultiplicity)
		}
	}
}

func TestTable2TheoremBound(t *testing.T) {
	// Unweighted single-link: Theorem 1 caps every decomposition at 2
	// components, so the average cannot exceed 2.
	net := Network{Name: "ring", G: topology.Ring(12), Trials: 20}
	row := Table2(net, failure.SingleLink, 3)
	if row.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	if row.AvgPC > 2.0001 {
		t.Errorf("unweighted single-link AvgPC = %.3f > 2 violates Theorem 1", row.AvgPC)
	}
}

func TestTable2AllKinds(t *testing.T) {
	net := Network{Name: "grid", G: topology.Grid(5, 5), Trials: 15}
	rows := Table2All([]Network{net}, 5)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Kind == failure.SingleRouter || r.Kind == failure.DoubleRouter {
			if r.Scenarios == 0 {
				t.Errorf("%v: no scenarios", r.Kind)
			}
		}
	}
	var sb strings.Builder
	RenderTable2(&sb, rows)
	out := sb.String()
	for _, want := range []string{"one link failure", "two link failures", "one router failure", "two router failures"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing block %q", want)
		}
	}
}

func TestTable2DisconnectionCounted(t *testing.T) {
	net := Network{Name: "line", G: topology.Line(6), Trials: 10}
	row := Table2(net, failure.SingleLink, 1)
	if row.Disconnected == 0 {
		t.Error("line failures always partition; Disconnected should be > 0")
	}
	if row.Scenarios != 0 {
		t.Error("no restorable scenario exists on a line")
	}
}

func TestTable3(t *testing.T) {
	net := Network{Name: "ring", G: topology.Ring(10), Trials: 0}
	res := Table3(net, 0, 1)
	// On a 10-ring every edge's bypass is the other way around: 9 hops.
	if len(res.Rows) != 1 || res.Rows[0].Hopcount != 9 {
		t.Fatalf("ring bypass rows = %+v", res.Rows)
	}
	if math.Abs(res.Rows[0].Percent-100) > 1e-9 {
		t.Errorf("ring bypass percent = %v", res.Rows[0].Percent)
	}
	if res.Unbypassable != 0 || res.EdgesChecked != 10 {
		t.Errorf("res = %+v", res)
	}
}

func TestTable3Bridges(t *testing.T) {
	net := Network{Name: "line", G: topology.Line(5), Trials: 0}
	res := Table3(net, 0, 1)
	if res.Unbypassable != 4 {
		t.Errorf("line: unbypassable = %d, want 4", res.Unbypassable)
	}
	if len(res.Rows) != 0 {
		t.Errorf("line: rows = %+v", res.Rows)
	}
}

func TestTable3Sampling(t *testing.T) {
	net := Network{Name: "grid", G: topology.Grid(6, 6), Trials: 0}
	full := Table3(net, 0, 1)
	sampled := Table3(net, 10, 1)
	if sampled.EdgesChecked != 10 {
		t.Errorf("sampled %d edges, want 10", sampled.EdgesChecked)
	}
	if full.EdgesChecked != net.G.Size() {
		t.Errorf("full check covered %d edges", full.EdgesChecked)
	}
	var sb strings.Builder
	RenderTable3(&sb, []Table3Result{full})
	if !strings.Contains(sb.String(), "bypass hopcount") {
		t.Error("render broken")
	}
}

func TestTable3MostISPBypassesShort(t *testing.T) {
	// Paper shape: in every topology, >90% of links have bypass length 2
	// or 3 is claimed for ISP/AS; our hierarchical stand-in should at
	// least put the bulk of bypasses at small hop counts.
	net := Network{Name: "isp", G: topology.PaperISP(1), Trials: 0}
	res := Table3(net, 0, 1)
	var shortShare float64
	for _, r := range res.Rows {
		if r.Hopcount <= 3 {
			shortShare += r.Percent
		}
	}
	if shortShare < 50 {
		t.Errorf("only %.1f%% of ISP bypasses are <= 3 hops", shortShare)
	}
}

func TestFigure10(t *testing.T) {
	isp := topology.PaperISP(1)
	net := Network{Name: "ISP, Weighted", G: isp, Trials: 40}
	res := Figure10(net, 11)
	if res.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	for name, h := range map[string]*Histogram{
		"cost end-route": res.CostEndRoute, "cost edge-bypass": res.CostEdgeBypass,
		"hops end-route": res.HopsEndRoute, "hops edge-bypass": res.HopsEdgeBypass,
	} {
		if h.Total != res.Scenarios {
			t.Errorf("%s: total %d != scenarios %d", name, h.Total, res.Scenarios)
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Total {
			t.Errorf("%s: counts sum %d != total %d", name, sum, h.Total)
		}
	}
	// Cost stretch can never be below 1 (the optimum is minimal).
	if res.CostEndRoute.Counts[0] != 0 || res.CostEdgeBypass.Counts[0] != 0 {
		t.Error("cost stretch below 1 recorded")
	}
	// Paper shape: the vast majority of local restorations cost about the
	// same as the optimum.
	nearOptimal := res.CostEndRoute.Percent(1) + res.CostEndRoute.Percent(2)
	if nearOptimal < 50 {
		t.Errorf("only %.1f%% of end-route restorations near-optimal", nearOptimal)
	}
	// End-route never costs more than edge-bypass on the same scenario in
	// aggregate: its tail is free to take the best route to the
	// destination. Compare means via bucket midpoints loosely: skip —
	// instead check edge-bypass has at least as much mass above 1.
	var sb strings.Builder
	RenderFigure10(&sb, res)
	if !strings.Contains(sb.String(), "edge-bypass") {
		t.Error("render broken")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	for _, v := range []float64{0.9, 1.0, 1.05, 1.2, 1.4, 1.8, 3.0} {
		h.add(v)
	}
	for i, want := range []int{1, 1, 1, 1, 1, 1, 1} {
		if h.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Percent(0) != 100.0/7 {
		t.Errorf("Percent = %v", h.Percent(0))
	}
	empty := newHistogram()
	if empty.Percent(0) != 0 {
		t.Error("empty histogram percent")
	}
}

func TestScalesAndNetworks(t *testing.T) {
	if s := DefaultScale(); s.ASScale >= 1 || s.InternetScale >= 1 {
		t.Error("default scale not scaled down")
	}
	if s := FullScale(); s.ASScale != 1 || s.InternetScale != 1 {
		t.Error("full scale wrong")
	}
	t.Setenv("RBPC_FULL", "")
	if s := ScaleFromEnv(); s != DefaultScale() {
		t.Error("env default wrong")
	}
	t.Setenv("RBPC_FULL", "1")
	if s := ScaleFromEnv(); s != FullScale() {
		t.Error("env full wrong")
	}
	nets := PaperNetworks(DefaultScale())
	if len(nets) != 4 {
		t.Fatalf("networks = %d", len(nets))
	}
	if nets[0].Trials != 200 || nets[2].Trials != 40 {
		t.Error("trial budgets wrong")
	}
	// Weighted and unweighted ISP share the topology but not the graph.
	if nets[0].G == nets[1].G {
		t.Error("ISP variants share a graph object")
	}
	if !graph.Connected(nets[2].G) || !graph.Connected(nets[3].G) {
		t.Error("stand-ins disconnected")
	}
}
