package eval

import (
	"encoding/json"
	"io"
)

// Results bundles a full evaluation run for machine-readable export:
// checking a reproduction into CI, plotting, or diffing across seeds
// should not require scraping the text tables.
type Results struct {
	Table1   []Table1Row         `json:"table1,omitempty"`
	Table2   []Table2Row         `json:"table2,omitempty"`
	Table3   []Table3Result      `json:"table3,omitempty"`
	Figure10 *Figure10Result     `json:"figure10,omitempty"`
	KBackup  []KBackupComparison `json:"kbackup,omitempty"`
	Asym     []AsymmetryResult   `json:"asymmetry,omitempty"`
	Timing   *TimingResult       `json:"timing,omitempty"`
	Tradeoff []TradeoffRow       `json:"tradeoff,omitempty"`

	// Seed and FullScale record how to regenerate the numbers.
	Seed      int64 `json:"seed"`
	FullScale bool  `json:"fullScale"`
}

// WriteJSON writes the bundle with stable, indented formatting.
func (r Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
