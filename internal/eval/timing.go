package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"rbpc/internal/graph"
	"rbpc/internal/ldp"
	"rbpc/internal/ospf"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/sim"
)

// TimingResult quantifies the restoration race the paper argues
// qualitatively: how long traffic is down under each scheme, over
// sampled single-link failures with realistic detection/flooding/
// signaling delays.
//
//	local RBPC     traffic resumes when the adjacent router patches
//	source RBPC    every affected pair is on its optimal route once the
//	               last affected source has heard the flood
//	baseline       every affected pair restored once its LDP re-signaling
//	               round-trip completes (teardown + establishment)
type TimingResult struct {
	Network  string
	Failures int

	LocalMean, LocalP95       sim.Time
	SourceMean, SourceP95     sim.Time
	BaselineMean, BaselineP95 sim.Time
}

// Timing runs the latency experiment: sample non-partitioning links,
// fail each on a fresh timeline, and record when each scheme restores.
// The deployment is built once and repaired between failures.
func Timing(net Network, trials int, seed int64) (TimingResult, error) {
	g := net.G
	res := TimingResult{Network: net.Name}

	sys, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		return res, fmt.Errorf("eval: timing: %w", err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	hyb := rbpcint.NewHybrid(sys, proto, eng, rbpcint.EdgeBypass)

	rng := rand.New(rand.NewSource(seed))
	var local, source, baseline []sim.Time

	for trial := 0; trial < trials; trial++ {
		e := graph.EdgeID(rng.Intn(g.Size()))
		if !graph.Connected(graph.FailEdges(g, e)) {
			continue // a bridge: nothing restores it, skip per methodology
		}
		// Fresh per-failure bookkeeping.
		hyb.LocalPatchedAt = make(map[graph.EdgeID]sim.Time)
		hyb.SourceUpdatedAt = make(map[rbpcint.Pair]sim.Time)
		t0 := eng.Now()
		if err := hyb.FailLink(e); err != nil {
			return res, err
		}
		eng.Run()
		if at, ok := hyb.LocalPatchedAt[e]; ok {
			local = append(local, at-t0)
		}
		var lastSource sim.Time
		for _, at := range hyb.SourceUpdatedAt {
			if at-t0 > lastSource {
				lastSource = at - t0
			}
		}
		if len(hyb.SourceUpdatedAt) > 0 {
			source = append(source, lastSource)
		}

		// Baseline on its own fresh deployment and timeline.
		balEng := &sim.Engine{}
		bal, err := rbpcint.NewBaseline(g, balEng, ldp.DefaultConfig())
		if err != nil {
			return res, err
		}
		bal.NotifyDelay = ospf.DefaultConfig().DetectDelay
		bal.FailLink(e)
		balEng.Run()
		var lastBal sim.Time
		for _, at := range bal.RestoredAt {
			if at > lastBal {
				lastBal = at
			}
		}
		if len(bal.RestoredAt) > 0 {
			baseline = append(baseline, lastBal)
		}

		// Heal before the next trial.
		if err := hyb.RepairLink(e); err != nil {
			return res, err
		}
		eng.Run()
		res.Failures++
	}

	res.LocalMean, res.LocalP95 = meanP95(local)
	res.SourceMean, res.SourceP95 = meanP95(source)
	res.BaselineMean, res.BaselineP95 = meanP95(baseline)
	return res, nil
}

func meanP95(xs []sim.Time) (mean, p95 sim.Time) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]sim.Time(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Time
	for _, x := range sorted {
		sum += x
	}
	idx := (len(sorted) * 95) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sum / sim.Time(len(sorted)), sorted[idx]
}
