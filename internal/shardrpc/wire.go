package shardrpc

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Frame header layout (little-endian, 20 bytes):
//
//	offset 0  u32 magic "RBPC"
//	offset 4  u32 payload length
//	offset 8  u32 sequence number (echoed by replies)
//	offset 12 u8  frame type
//	offset 13 u8  flags (frame-type specific)
//	offset 14 u16 reserved (zero)
//	offset 16 u32 FNV-1a checksum of the payload
const (
	headerSize = 20
	wireMagic  = 0x43504252 // "RBPC"
	// maxFrame bounds one payload; a full-mesh overlay snapshot of the
	// largest deployment fits in a fraction of this.
	maxFrame = 64 << 20
)

// Frame types. Direction is fixed per type; replies echo the request's
// sequence number.
const (
	ftAttach      byte = 1  // coord→worker: flags = connection role
	ftHello       byte = 2  // worker→coord: ring/topology contract
	ftBurst       byte = 3  // coord→worker: fail/repair events
	ftBurstAck    byte = 4  // worker→coord: events absorbed
	ftSnapshot    byte = 5  // worker→coord: epoch overlay (unsolicited)
	ftFlush       byte = 6  // coord→worker: barrier
	ftFlushAck    byte = 7  // worker→coord: epoch after barrier
	ftDrain       byte = 8  // coord→worker: settle queues
	ftDrainAck    byte = 9  // worker→coord
	ftQueryBatch  byte = 10 // coord→worker: src/dst pairs
	ftAnswerBatch byte = 11 // worker→coord: per-pair verdicts
	ftQuery       byte = 12 // coord→worker: one pair + optional probe edge
	ftAnswer      byte = 13 // worker→coord: full route + epoch + probe verdict
	ftStats       byte = 14 // coord→worker
	ftStatsAck    byte = 15 // worker→coord: engine.Stats
	ftPing        byte = 16 // coord→worker: health check
	ftPong        byte = 17 // worker→coord
)

// Connection roles carried in the ftAttach flags byte.
const (
	roleControl byte = 0 // bursts, flush, stats, snapshots back
	roleQuery   byte = 1 // query/answer traffic only
)

// Answer flag bits (ftAnswerBatch entries, ftAnswer).
const (
	ansRoutable       byte = 1 << 0
	ansDelivered      byte = 1 << 1
	ansFailedContains byte = 1 << 2
)

// Frame-level flag bits.
const (
	flagShed byte = 1 << 0 // ftAnswerBatch: whole batch refused at admission
)

// Conn frames one transport connection. Reads are single-goroutine
// (payloads are valid only until the next ReadFrame — the read buffer is
// reused); writes are internally locked so the worker's snapshot tap and
// ack writes can share the control connection without interleaving
// frames. A checksum mismatch drops the frame (the length prefix keeps
// the stream framed), counts it, and reads on — exactly the torn-frame
// behavior the chaos fault proves is caught downstream.
type Conn struct {
	nc   net.Conn
	rbuf []byte
	hdr  [headerSize]byte

	wmu  sync.Mutex
	wbuf []byte
	// corrupt, when non-nil, may mutate the payload of a frame after its
	// checksum is computed — the write-side fault-injection hook.
	corrupt func(typ byte, payload []byte)

	torn atomic.Int64
}

// NewConn frames a transport connection.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc}
}

// Close closes the underlying connection (unblocking any reader).
func (c *Conn) Close() error { return c.nc.Close() }

// Torn reports how many checksum-failed frames this end has dropped.
func (c *Conn) Torn() int64 { return c.torn.Load() }

// ReadFrame returns the next intact frame. The payload slice aliases the
// connection's reusable buffer: it is valid only until the next
// ReadFrame. Torn frames (checksum mismatch) are counted and skipped.
func (c *Conn) ReadFrame() (typ byte, flags byte, seq uint32, payload []byte, err error) {
	for {
		if _, err = io.ReadFull(c.nc, c.hdr[:]); err != nil {
			return 0, 0, 0, nil, err
		}
		if getU32(c.hdr[:], 0) != wireMagic {
			return 0, 0, 0, nil, fmt.Errorf("shardrpc: bad frame magic %#x", getU32(c.hdr[:], 0))
		}
		n := int(getU32(c.hdr[:], 4))
		if n > maxFrame {
			return 0, 0, 0, nil, fmt.Errorf("shardrpc: frame length %d exceeds limit", n)
		}
		if cap(c.rbuf) < n {
			c.rbuf = make([]byte, n)
		}
		payload = c.rbuf[:n]
		if _, err = io.ReadFull(c.nc, payload); err != nil {
			return 0, 0, 0, nil, err
		}
		if fnv1a(payload) != getU32(c.hdr[:], 16) {
			c.torn.Add(1)
			continue // torn frame: drop, stream stays framed
		}
		return c.hdr[12], c.hdr[13], getU32(c.hdr[:], 8), payload, nil
	}
}

// WriteFrame sends one frame; payload may be nil. The header and payload
// are coalesced into one reused buffer and written with a single call.
func (c *Conn) WriteFrame(typ, flags byte, seq uint32, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	n := headerSize + len(payload)
	if cap(c.wbuf) < n {
		c.wbuf = make([]byte, n)
	}
	b := c.wbuf[:n]
	putU32(b, 0, wireMagic)
	putU32(b, 4, uint32(len(payload)))
	putU32(b, 8, seq)
	b[12] = typ
	b[13] = flags
	b[14], b[15] = 0, 0
	putU32(b, 16, fnv1a(payload))
	copy(b[headerSize:], payload)
	if c.corrupt != nil {
		c.corrupt(typ, b[headerSize:])
	}
	_, err := c.nc.Write(b)
	return err
}

// fnv1a is the payload checksum: FNV-1a 32-bit, hand-rolled so the frame
// read/write path stays allocation-free.
//
//rbpc:hotpath
func fnv1a(p []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(p); i++ {
		h ^= uint32(p[i])
		h *= 16777619
	}
	return h
}

// Fixed-offset little-endian primitives: the hot codec functions below
// write into buffers their callers have already grown, so the steady
// state query path never allocates.

//rbpc:hotpath
func putU32(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

//rbpc:hotpath
func putU64(b []byte, off int, v uint64) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
	b[off+4] = byte(v >> 32)
	b[off+5] = byte(v >> 40)
	b[off+6] = byte(v >> 48)
	b[off+7] = byte(v >> 56)
}

//rbpc:hotpath
func getU32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

//rbpc:hotpath
func getU64(b []byte, off int) uint64 {
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 | uint64(b[off+3])<<24 |
		uint64(b[off+4])<<32 | uint64(b[off+5])<<40 | uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}

// grow returns buf resized to n bytes, reallocating only when capacity
// demands — the cold half of the reused-buffer discipline (hot fillers
// then index into the result).
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}
