package shardrpc

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

// WorkerOpts is the complete description of one worker process's world:
// enough to rebuild the coordinator's exact provision from scratch
// (topology kind, scale, seed, closure, hot set), the ring contract
// (shards, index), the engine tuning, and the socket to listen on.
// Workers receive it as a single flag value — the spec is the whole
// inter-process configuration channel, so a worker never reads state the
// coordinator didn't spell out.
type WorkerOpts struct {
	Topology   string
	Scale      float64
	Seed       int64
	Closure    bool
	HotSources int

	Shards int
	Index  int
	Socket string

	MaxProcs     int // GOMAXPROCS inside the worker (0 = inherit)
	Workers      int // engine query workers
	Queue        int
	Coalesce     time.Duration
	PlanCacheMax int
}

// Encode renders the spec as a comma-separated k=v string — the value of
// the serving binaries' -worker flag. Socket paths live in a fleet temp
// directory and never contain commas.
func (o WorkerOpts) Encode() string {
	return strings.Join([]string{
		"topo=" + o.Topology,
		"scale=" + strconv.FormatFloat(o.Scale, 'g', -1, 64),
		"seed=" + strconv.FormatInt(o.Seed, 10),
		"closure=" + b2s(o.Closure),
		"hot=" + strconv.Itoa(o.HotSources),
		"shards=" + strconv.Itoa(o.Shards),
		"index=" + strconv.Itoa(o.Index),
		"socket=" + o.Socket,
		"maxprocs=" + strconv.Itoa(o.MaxProcs),
		"workers=" + strconv.Itoa(o.Workers),
		"queue=" + strconv.Itoa(o.Queue),
		"coalesce-us=" + strconv.FormatInt(o.Coalesce.Microseconds(), 10),
		"plan-cache=" + strconv.Itoa(o.PlanCacheMax),
	}, ",")
}

func b2s(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ParseWorkerOpts inverts Encode.
func ParseWorkerOpts(spec string) (WorkerOpts, error) {
	var o WorkerOpts
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return WorkerOpts{}, fmt.Errorf("shardrpc: worker spec field %q is not k=v", field)
		}
		var err error
		switch k {
		case "topo":
			o.Topology = v
		case "socket":
			o.Socket = v
		case "scale":
			o.Scale, err = strconv.ParseFloat(v, 64)
		case "seed":
			o.Seed, err = strconv.ParseInt(v, 10, 64)
		case "closure":
			o.Closure = v == "1"
		case "hot":
			o.HotSources, err = strconv.Atoi(v)
		case "shards":
			o.Shards, err = strconv.Atoi(v)
		case "index":
			o.Index, err = strconv.Atoi(v)
		case "maxprocs":
			o.MaxProcs, err = strconv.Atoi(v)
		case "workers":
			o.Workers, err = strconv.Atoi(v)
		case "queue":
			o.Queue, err = strconv.Atoi(v)
		case "coalesce-us":
			var us int64
			us, err = strconv.ParseInt(v, 10, 64)
			o.Coalesce = time.Duration(us) * time.Microsecond
		case "plan-cache":
			o.PlanCacheMax, err = strconv.Atoi(v)
		default:
			return WorkerOpts{}, fmt.Errorf("shardrpc: worker spec has unknown key %q", k)
		}
		if err != nil {
			return WorkerOpts{}, fmt.Errorf("shardrpc: worker spec %s: %v", k, err)
		}
	}
	if o.Topology == "" || o.Socket == "" || o.Shards < 1 {
		return WorkerOpts{}, fmt.Errorf("shardrpc: worker spec %q missing topo/socket/shards", spec)
	}
	return o, nil
}

// RunWorker is the worker process's whole life: rebuild the provision the
// coordinator described (bit-identical — same topology generator, same
// seed, same hot set), slice it onto this index's shard engine, and serve
// the socket until the process is killed. It never returns nil: the
// supervisor kills workers, workers don't exit.
func RunWorker(o WorkerOpts) error {
	if o.MaxProcs > 0 {
		runtime.GOMAXPROCS(o.MaxProcs)
	}
	g, err := topology.Build(o.Topology, o.Scale, o.Seed)
	if err != nil {
		return err
	}
	rcfg := rbpc.Config{SubpathClosure: o.Closure, EdgeLSPs: true}
	if o.HotSources > 0 && o.HotSources < g.Order() {
		srcs := make([]graph.NodeID, o.HotSources)
		for i := range srcs {
			srcs[i] = graph.NodeID(i)
		}
		rcfg.Sources = srcs
	}
	sys, err := rbpc.NewSystem(g, rcfg)
	if err != nil {
		return fmt.Errorf("shardrpc: worker %d provision: %w", o.Index, err)
	}
	cfg := Config{
		Shards: o.Shards,
		Engine: engine.Config{
			Workers:        o.Workers,
			QueueDepth:     o.Queue,
			CoalesceWindow: o.Coalesce,
			PlanCacheCap:   o.PlanCacheMax,
			WarmOracle:     false,
		},
	}
	w, err := NewWorker(sys.Export(), o.Index, cfg)
	if err != nil {
		return err
	}
	defer w.Close()
	// A leftover socket from a previous worker generation would make
	// Listen fail; the path is ours by construction.
	os.Remove(o.Socket)
	l, err := net.Listen("unix", o.Socket)
	if err != nil {
		return err
	}
	return w.Serve(l)
}

// Fleet forks and supervises the worker processes of one deployment: the
// same binary re-exec'd in -worker mode, one Unix socket per worker in a
// private temp directory. A worker that dies while the fleet is open is
// respawned and reported through onUp, so the coordinator can Reattach
// and resync it; until then its sources divert to the cold tier.
type Fleet struct {
	opts WorkerOpts // template; Index and Socket filled per worker
	dir  string
	onUp func(worker int)

	mu    sync.Mutex
	procs []*exec.Cmd //rbpc:guardedby mu

	restarts atomic.Int64
	closing  atomic.Bool
}

// NewFleet spawns Shards worker processes from the template spec. onUp
// (optional) is called from the watcher goroutine each time a crashed
// worker has been respawned — the caller reattaches there. The listeners
// come up asynchronously; the coordinator's dial retry loop absorbs the
// startup window.
func NewFleet(o WorkerOpts, onUp func(worker int)) (*Fleet, error) {
	// Unix socket paths are capped at ~108 bytes; the system temp dir
	// plus "rbpc-w*/w<N>.sock" stays well under it.
	dir, err := os.MkdirTemp("", "rbpc-w")
	if err != nil {
		return nil, err
	}
	f := &Fleet{opts: o, dir: dir, onUp: onUp, procs: make([]*exec.Cmd, o.Shards)}
	for i := 0; i < o.Shards; i++ {
		if err := f.spawn(i); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Socket returns worker i's socket path.
func (f *Fleet) Socket(i int) string {
	return filepath.Join(f.dir, fmt.Sprintf("w%d.sock", i))
}

// Dial is the coordinator-facing Dialer over the fleet's sockets. One
// attempt is bounded here; the coordinator's attach loop retries inside
// its dial budget while a freshly-spawned worker provisions.
func (f *Fleet) Dial(i int) (net.Conn, error) {
	return net.DialTimeout("unix", f.Socket(i), 2*time.Second)
}

// Restarts counts workers respawned after a crash.
func (f *Fleet) Restarts() int64 { return f.restarts.Load() }

// Kill terminates worker i's process (the crash-recovery demo); the
// watcher respawns it and fires onUp.
func (f *Fleet) Kill(i int) error {
	f.mu.Lock()
	cmd := f.procs[i]
	f.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("shardrpc: fleet worker %d not running", i)
	}
	return cmd.Process.Kill()
}

// spawn forks worker i and installs its crash watcher.
func (f *Fleet) spawn(i int) error {
	wo := f.opts
	wo.Index = i
	wo.Socket = f.Socket(i)
	cmd := exec.Command(os.Args[0], "-worker", wo.Encode())
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	f.mu.Lock()
	f.procs[i] = cmd
	f.mu.Unlock()
	go f.watch(i, cmd)
	return nil
}

// watch reaps worker i and respawns it unless the fleet is closing.
func (f *Fleet) watch(i int, cmd *exec.Cmd) {
	cmd.Wait()
	if f.closing.Load() {
		return
	}
	f.restarts.Add(1)
	if err := f.spawn(i); err != nil {
		fmt.Fprintf(os.Stderr, "shardrpc: fleet: respawn worker %d: %v\n", i, err)
		return
	}
	if f.onUp != nil {
		f.onUp(i)
	}
}

// Close kills every worker and removes the socket directory. Idempotent.
func (f *Fleet) Close() {
	if f.closing.Swap(true) {
		return
	}
	f.mu.Lock()
	procs := append([]*exec.Cmd(nil), f.procs...)
	f.mu.Unlock()
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range procs {
		if cmd != nil {
			cmd.Wait()
		}
	}
	os.RemoveAll(f.dir)
}
