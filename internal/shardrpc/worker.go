package shardrpc

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"rbpc/internal/engine"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
)

// Worker serves one shard of the pair space out of its own process: the
// same delta-row engine over the same shard.SliceProvision slice the
// in-process coordinator would build, fronted by the wire protocol. One
// control connection carries bursts, barriers, and stats, and returns
// every published epoch as an overlay snapshot frame; query connections
// serve batches straight off the engine's current snapshot, each on its
// own goroutine (the pool the coordinator dials is the worker's
// parallelism).
type Worker struct {
	idx int
	g   *graph.Graph
	eng *engine.Engine

	// control is the connection the epoch tap pushes snapshot frames to;
	// replaced on (re)attach.
	control atomic.Pointer[Conn]
	// snapMu serializes snapshot encoding: the tap runs on the engine's
	// writer goroutine, the attach handshake on a connection goroutine,
	// and both share snapBuf.
	snapMu  sync.Mutex
	snapBuf []byte //rbpc:guardedby snapMu

	ringContract hello
}

// NewWorker builds the worker for shard idx of the deployment described
// by cfg, slicing the full provision exactly the way shard.New does —
// bit-identical engines are the whole point. The provision must be the
// full export; the worker slices it itself so every process partitions
// with the same ring.
func NewWorker(p rbpc.Provision, idx int, cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if idx < 0 || idx >= cfg.Shards {
		return nil, fmt.Errorf("shardrpc: worker index %d outside %d shards", idx, cfg.Shards)
	}
	ring, err := shard.NewRing(cfg.Shards, cfg.VNodes, cfg.RingSeed)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		idx: idx,
		g:   p.Graph,
		ringContract: hello{
			shard:    uint32(idx),
			shards:   uint32(cfg.Shards),
			vnodes:   uint32(cfg.VNodes),
			ringSeed: cfg.RingSeed,
			nodes:    uint32(p.Graph.Order()),
			links:    uint32(p.Graph.Size()),
		},
	}

	ecfg := cfg.Engine
	ecfg.DeltaRows = true
	userTap := cfg.Engine.OnEpoch
	ecfg.OnEpoch = func(s *engine.Snapshot) {
		w.pushSnapshot(s)
		if userTap != nil {
			userTap(s)
		}
	}
	eng, err := engine.New(shard.SliceProvision(p, ring, idx), ecfg)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: worker %d engine: %w", idx, err)
	}
	w.eng = eng
	return w, nil
}

// Engine exposes the worker's shard engine (tests and the chaos harness
// inspect it).
func (w *Worker) Engine() *engine.Engine { return w.eng }

// Close stops the shard engine.
func (w *Worker) Close() { w.eng.Close() }

// pushSnapshot ships one published epoch to the coordinator as an
// overlay frame. It runs synchronously on the engine's writer goroutine,
// so on any one control connection snapshot frames precede the flush ack
// of the barrier that observed them — the ordering View() leans on. A
// write failure just drops the connection reference; the coordinator's
// reader notices the death independently.
func (w *Worker) pushSnapshot(s *engine.Snapshot) {
	c := w.control.Load()
	if c == nil {
		return
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	buf, err := s.AppendWire(w.snapBuf[:0])
	if err != nil {
		return // dense-mode snapshots cannot happen here (DeltaRows forced)
	}
	w.snapBuf = buf
	if err := c.WriteFrame(ftSnapshot, 0, 0, buf); err != nil {
		w.control.CompareAndSwap(c, nil)
	}
}

// Serve accepts connections until the listener closes. Each connection
// self-identifies with an attach frame and is served on its own
// goroutine.
func (w *Worker) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			return err
		}
		go w.ServeConn(nc)
	}
}

// ServeConn serves one coordinator connection to completion (its role is
// declared by the first frame). The chaos harness calls this directly
// with pipe ends.
func (w *Worker) ServeConn(nc net.Conn) error {
	c := NewConn(nc)
	defer c.Close()
	typ, role, _, _, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if typ != ftAttach {
		return fmt.Errorf("shardrpc: worker %d: first frame %d is not attach", w.idx, typ)
	}
	h := w.ringContract
	h.epoch = w.eng.Snapshot().Epoch()
	if err := c.WriteFrame(ftHello, 0, 0, appendHello(nil, h)); err != nil {
		return err
	}
	switch role {
	case roleControl:
		w.control.Store(c)
		// Prime the coordinator's replica so its view is whole before the
		// first churn event.
		w.pushSnapshot(w.eng.Snapshot())
		return w.serveControl(c)
	case roleQuery:
		return w.serveQuery(c)
	}
	return fmt.Errorf("shardrpc: worker %d: unknown attach role %d", w.idx, role)
}

// serveControl handles bursts, barriers, stats, and health checks. All
// replies echo the request sequence number.
func (w *Worker) serveControl(c *Conn) error {
	var (
		evs      []failure.Event
		ackBuf   []byte
		statsBuf []byte
	)
	for {
		typ, _, seq, payload, err := c.ReadFrame()
		if err != nil {
			return err
		}
		switch typ {
		case ftBurst:
			evs = evs[:0]
			if evs, err = decodeBurst(payload, evs); err != nil {
				return err
			}
			w.eng.ApplyEvents(evs)
			err = c.WriteFrame(ftBurstAck, 0, seq, nil)
		case ftFlush:
			w.eng.Flush()
			ackBuf = grow(ackBuf, 8)
			putU64(ackBuf, 0, w.eng.Snapshot().Epoch())
			err = c.WriteFrame(ftFlushAck, 0, seq, ackBuf)
		case ftDrain:
			w.eng.Drain()
			err = c.WriteFrame(ftDrainAck, 0, seq, nil)
		case ftStats:
			statsBuf = appendStats(statsBuf[:0], w.eng.Stats())
			err = c.WriteFrame(ftStatsAck, 0, seq, statsBuf)
		case ftPing:
			err = c.WriteFrame(ftPong, 0, seq, nil)
		default:
			return fmt.Errorf("shardrpc: worker %d: frame %d on control connection", w.idx, typ)
		}
		if err != nil {
			return err
		}
	}
}

// serveQuery answers query traffic on one pool connection: batches are
// served inline off a single snapshot load (the pool's width, not a
// queue, is the concurrency), single queries return the full route plus
// the worker's own data-plane probe verdict.
func (w *Worker) serveQuery(c *Conn) error {
	var ansBuf []byte
	order := w.g.Order()
	for {
		typ, _, seq, payload, err := c.ReadFrame()
		if err != nil {
			return err
		}
		switch typ {
		case ftQueryBatch:
			n, ok := queryBatchCount(payload)
			if !ok {
				return fmt.Errorf("shardrpc: worker %d: malformed query batch", w.idx)
			}
			ansBuf = grow(ansBuf, answerBatchSize(n))
			w.serveBatch(payload, ansBuf, n, order)
			err = c.WriteFrame(ftAnswerBatch, 0, seq, ansBuf)
		case ftQuery:
			src, dst, probe, hasProbe, derr := decodeQuery(payload)
			if derr != nil {
				return derr
			}
			ansBuf = w.answerQuery(ansBuf[:0], src, dst, probe, hasProbe)
			err = c.WriteFrame(ftAnswer, 0, seq, ansBuf)
		case ftPing:
			err = c.WriteFrame(ftPong, 0, seq, nil)
		default:
			return fmt.Errorf("shardrpc: worker %d: frame %d on query connection", w.idx, typ)
		}
		if err != nil {
			return err
		}
	}
}

// serveBatch fills the pre-grown answer buffer for one query batch from
// one snapshot load: per pair a row lookup, a flags byte, and the raw
// cost bits — the steady-state serving path, allocation-free end to end.
//
//rbpc:hotpath
func (w *Worker) serveBatch(payload, ansBuf []byte, n, order int) {
	snap := w.eng.Snapshot()
	fillAnswerCount(ansBuf, n)
	for i := 0; i < n; i++ {
		src, dst := queryAt(payload, i)
		var flags byte
		var bits uint64
		if int(src) < order && int(dst) < order && src != dst {
			if rt := snap.Route(graph.NodeID(src), graph.NodeID(dst)); rt != nil {
				flags = ansRoutable
				bits = math.Float64bits(rt.Cost)
			}
		}
		fillAnswerAt(ansBuf, i, flags, bits)
	}
}

// answerQuery builds the full answer for a synchronous single query,
// including the data-plane walk when a probe edge rides along — only the
// worker owns the shard's real forwarding plane, so the delivery verdict
// must be computed here, not at the coordinator.
func (w *Worker) answerQuery(buf []byte, src, dst graph.NodeID, probe graph.EdgeID, hasProbe bool) []byte {
	snap := w.eng.Snapshot()
	a := Answer{Epoch: snap.Epoch(), Failed: snap.Failed()}
	order := w.g.Order()
	if int(src) < order && int(dst) < order && src != dst {
		res := w.eng.Query(src, dst)
		a.Route = res.Route
		a.Routable = res.Route != nil
	}
	if hasProbe {
		for _, f := range a.Failed {
			if f == probe {
				a.FailedContains = true
				break
			}
		}
		if a.Route != nil {
			if pkt, err := snap.DataPlane(src).SendIP(src, dst); err == nil && pkt.At == dst {
				a.Delivered = true
			}
		}
	}
	return appendAnswer(buf, a)
}
