package shardrpc

import (
	"sync"
	"testing"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

// fuzzDecoder is the shared canonical decoder the fuzzers resolve frames
// against — built once from a fixed topology so every input exercises
// real bounds (node/edge ranges, registry lookups).
var fuzzDecoder = sync.OnceValue(func() *engine.SnapDecoder {
	g := topology.Waxman(12, 0.8, 0.5, 99)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		panic(err)
	}
	dec, err := engine.NewSnapDecoder(sys.Export())
	if err != nil {
		panic(err)
	}
	return dec
})

// Selector bytes routing a fuzz input to one decoder.
const (
	fuzzSnapshot byte = iota
	fuzzAnswer
	fuzzBurst
	fuzzStats
	fuzzHello
	fuzzKinds
)

// FuzzFrameDecode throws arbitrary payloads at every frame decoder on
// this wire. The invariant under test is total robustness: a decoder
// handed hostile bytes may reject, never panic — and when it accepts, a
// re-encode must decode to the same bytes (round-trip stability), so a
// malicious or torn-but-checksum-colliding frame cannot smuggle
// inconsistent state past the decode layer.
func FuzzFrameDecode(f *testing.F) {
	f.Add(seedSnapshotFrame(fuzzSnapshot))
	f.Add(seedAnswerFrame())
	f.Add(seedBurstFrame())
	f.Add(seedStatsFrame())
	f.Add(seedHelloFrame())
	f.Add([]byte{})
	f.Add([]byte{fuzzSnapshot})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		dec := fuzzDecoder()
		kind, payload := data[0]%fuzzKinds, data[1:]
		switch kind {
		case fuzzSnapshot:
			snap, err := dec.Decode(payload)
			if err != nil {
				return
			}
			re, err := snap.AppendWire(nil)
			if err != nil {
				t.Fatalf("accepted snapshot refuses to re-encode: %v", err)
			}
			if string(re) != string(payload) {
				t.Fatalf("snapshot round trip unstable:\nin  %x\nout %x", payload, re)
			}
		case fuzzAnswer:
			a, err := decodeAnswer(payload, dec)
			if err != nil {
				return
			}
			if string(appendAnswer(nil, a)) != string(payload) {
				t.Fatal("answer round trip unstable")
			}
		case fuzzBurst:
			evs, err := decodeBurst(payload, nil)
			if err != nil {
				return
			}
			if string(appendBurst(nil, evs)) != string(payload) {
				t.Fatal("burst round trip unstable")
			}
		case fuzzStats:
			st, err := decodeStats(payload)
			if err != nil {
				return
			}
			if string(appendStats(nil, st)) != string(payload) {
				t.Fatal("stats round trip unstable")
			}
		case fuzzHello:
			h, err := decodeHello(payload)
			if err != nil {
				return
			}
			if string(appendHello(nil, h)) != string(payload) {
				t.Fatal("hello round trip unstable")
			}
		}
	})
}

// seedSnapshotFrame builds a real churned snapshot frame so the fuzzer
// starts from deep coverage, not from "short frame" rejections.
func seedSnapshotFrame(selector byte) []byte {
	g := topology.Waxman(12, 0.8, 0.5, 99)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		panic(err)
	}
	eng, err := engine.New(sys.Export(), engine.Config{DeltaRows: true})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	eng.Fail(2)
	eng.Fail(7)
	eng.Flush()
	buf, err := eng.Snapshot().AppendWire([]byte{selector})
	if err != nil {
		panic(err)
	}
	return buf
}

func seedAnswerFrame() []byte {
	return appendAnswer([]byte{fuzzAnswer}, Answer{
		Epoch:          5,
		Failed:         []graph.EdgeID{1, 4},
		Routable:       false,
		FailedContains: true,
	})
}

func seedBurstFrame() []byte {
	return appendBurst([]byte{fuzzBurst}, []failure.Event{
		{Edge: 3}, {Repair: true, Edge: 3}, {Edge: 9},
	})
}

func seedStatsFrame() []byte {
	return appendStats([]byte{fuzzStats}, engine.Stats{
		Epoch: 3, Queries: 10, RowBytes: 1 << 12,
		Stretch: metrics.AccSummary{Count: 2, Mean: 1000.5, Max: 1100},
	})
}

func seedHelloFrame() []byte {
	return appendHello([]byte{fuzzHello}, hello{
		shard: 1, shards: 4, vnodes: 1024,
		ringSeed: 0x9e3779b97f4a7c15, nodes: 12, links: 40, epoch: 2,
	})
}
