package shardrpc

import (
	"fmt"
	"math"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
)

// noEdge is the on-wire spelling of "no probe edge" in ftQuery frames.
const noEdge = ^uint32(0)

// --- hello -----------------------------------------------------------------

// hello is the worker's side of the attach handshake: the ring contract
// (shards/vnodes/seed) plus the topology fingerprint (orders must match
// or decoded node/edge IDs would mean different things) and the worker's
// current epoch.
type hello struct {
	shard    uint32
	shards   uint32
	vnodes   uint32
	ringSeed uint64
	nodes    uint32
	links    uint32
	epoch    uint64
}

const helloSize = 4 + 4 + 4 + 8 + 4 + 4 + 8

func appendHello(buf []byte, h hello) []byte {
	off := len(buf)
	buf = grow0(buf, off+helloSize)
	putU32(buf, off, h.shard)
	putU32(buf, off+4, h.shards)
	putU32(buf, off+8, h.vnodes)
	putU64(buf, off+12, h.ringSeed)
	putU32(buf, off+20, h.nodes)
	putU32(buf, off+24, h.links)
	putU64(buf, off+28, h.epoch)
	return buf
}

func decodeHello(p []byte) (hello, error) {
	if len(p) != helloSize {
		return hello{}, fmt.Errorf("shardrpc: hello frame is %d bytes, want %d", len(p), helloSize)
	}
	return hello{
		shard:    getU32(p, 0),
		shards:   getU32(p, 4),
		vnodes:   getU32(p, 8),
		ringSeed: getU64(p, 12),
		nodes:    getU32(p, 20),
		links:    getU32(p, 24),
		epoch:    getU64(p, 28),
	}, nil
}

// --- bursts ----------------------------------------------------------------

// appendBurst encodes a fail/repair event burst: count, then one
// (repair, edge) record per event.
func appendBurst(buf []byte, evs []failure.Event) []byte {
	off := len(buf)
	buf = grow0(buf, off+4+5*len(evs))
	putU32(buf, off, uint32(len(evs)))
	off += 4
	for _, ev := range evs {
		if ev.Repair {
			buf[off] = 1
		} else {
			buf[off] = 0
		}
		putU32(buf, off+1, uint32(ev.Edge))
		off += 5
	}
	return buf
}

// decodeBurst appends the frame's events onto evs (reused across frames).
func decodeBurst(p []byte, evs []failure.Event) ([]failure.Event, error) {
	if len(p) < 4 {
		return evs, fmt.Errorf("shardrpc: short burst frame")
	}
	n := int(getU32(p, 0))
	if n < 0 || len(p) != 4+5*n {
		return evs, fmt.Errorf("shardrpc: burst frame length %d does not hold %d events", len(p), n)
	}
	for i := 0; i < n; i++ {
		off := 4 + 5*i
		if p[off] > 1 {
			return evs, fmt.Errorf("shardrpc: burst event %d has bad repair byte", i)
		}
		evs = append(evs, failure.Event{
			Repair: p[off] == 1,
			Edge:   graph.EdgeID(getU32(p, off+1)),
		})
	}
	return evs, nil
}

// --- query batches (hot) ---------------------------------------------------

// queryBatchSize is the frame size for n pairs; callers grow the buffer
// cold and fill it hot.
func queryBatchSize(n int) int { return 4 + 8*n }

// fillQueryBatch writes a query batch into a pre-grown buffer of exactly
// queryBatchSize(len(pairs)) bytes — the steady-state encode path: no
// allocation, no bounds growth, one putU32 pair per query.
//
//rbpc:hotpath
func fillQueryBatch(b []byte, pairs []rbpc.Pair) {
	putU32(b, 0, uint32(len(pairs)))
	off := 4
	for i := 0; i < len(pairs); i++ {
		putU32(b, off, uint32(pairs[i].Src))
		putU32(b, off+4, uint32(pairs[i].Dst))
		off += 8
	}
}

// queryBatchCount validates a query-batch frame's framing and returns the
// pair count — the steady-state decode entry.
//
//rbpc:hotpath
func queryBatchCount(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	n := int(getU32(p, 0))
	if n < 0 || len(p) != 4+8*n {
		return 0, false
	}
	return n, true
}

// queryAt reads pair i of a validated query batch.
//
//rbpc:hotpath
func queryAt(p []byte, i int) (src, dst uint32) {
	off := 4 + 8*i
	return getU32(p, off), getU32(p, off+4)
}

// --- answer batches (hot) --------------------------------------------------

// answerEntrySize: flags byte plus raw cost bits per answer.
const answerEntrySize = 9

func answerBatchSize(n int) int { return 4 + answerEntrySize*n }

// fillAnswerCount / fillAnswerAt write an answer batch into a pre-grown
// buffer of answerBatchSize(n) bytes.
//
//rbpc:hotpath
func fillAnswerCount(b []byte, n int) {
	putU32(b, 0, uint32(n))
}

//rbpc:hotpath
func fillAnswerAt(b []byte, i int, flags byte, costBits uint64) {
	off := 4 + answerEntrySize*i
	b[off] = flags
	putU64(b, off+1, costBits)
}

//rbpc:hotpath
func answerBatchCount(p []byte) (int, bool) {
	if len(p) < 4 {
		return 0, false
	}
	n := int(getU32(p, 0))
	if n < 0 || len(p) != 4+answerEntrySize*n {
		return 0, false
	}
	return n, true
}

//rbpc:hotpath
func answerAt(p []byte, i int) (flags byte, costBits uint64) {
	off := 4 + answerEntrySize*i
	return p[off], getU64(p, off+1)
}

// --- single query / full answer -------------------------------------------

// appendQuery encodes a synchronous single-pair query, optionally
// carrying the probe edge the worker should walk its data plane against.
func appendQuery(buf []byte, src, dst graph.NodeID, probe graph.EdgeID, hasProbe bool) []byte {
	off := len(buf)
	buf = grow0(buf, off+12)
	putU32(buf, off, uint32(src))
	putU32(buf, off+4, uint32(dst))
	if hasProbe {
		putU32(buf, off+8, uint32(probe))
	} else {
		putU32(buf, off+8, noEdge)
	}
	return buf
}

func decodeQuery(p []byte) (src, dst graph.NodeID, probe graph.EdgeID, hasProbe bool, err error) {
	if len(p) != 12 {
		return 0, 0, 0, false, fmt.Errorf("shardrpc: query frame is %d bytes, want 12", len(p))
	}
	pe := getU32(p, 8)
	return graph.NodeID(getU32(p, 0)), graph.NodeID(getU32(p, 4)),
		graph.EdgeID(pe), pe != noEdge, nil
}

// Answer is a worker's full reply to a synchronous query: the serving
// epoch and failed-set it answered under, the route (nil when
// unroutable), and — when the query carried a probe edge — the worker's
// own data-plane verdict (the only process that can walk the shard's
// real MPLS network is the worker holding it).
type Answer struct {
	Epoch  uint64
	Failed []graph.EdgeID
	Route  *engine.Route
	// Routable mirrors Route != nil on the wire; Delivered is the
	// data-plane walk verdict; FailedContains reports whether the probe
	// edge was in the answering epoch's failed-set.
	Routable       bool
	Delivered      bool
	FailedContains bool
}

func appendAnswer(buf []byte, a Answer) []byte {
	off := len(buf)
	buf = grow0(buf, off+13)
	putU64(buf, off, a.Epoch)
	var fl byte
	if a.Route != nil {
		fl |= ansRoutable
	}
	if a.Delivered {
		fl |= ansDelivered
	}
	if a.FailedContains {
		fl |= ansFailedContains
	}
	buf[off+8] = fl
	putU32(buf, off+9, uint32(len(a.Failed)))
	for _, e := range a.Failed {
		buf = appendU32(buf, uint32(e))
	}
	return engine.AppendRouteWire(buf, a.Route)
}

// decodeAnswer rebuilds an Answer, resolving the embedded route against
// the decoder's canonical registry (same LSP identities as a decoded
// snapshot).
func decodeAnswer(p []byte, dec *engine.SnapDecoder) (Answer, error) {
	if len(p) < 13 {
		return Answer{}, fmt.Errorf("shardrpc: short answer frame")
	}
	var a Answer
	a.Epoch = getU64(p, 0)
	fl := p[8]
	if fl&^(ansRoutable|ansDelivered|ansFailedContains) != 0 {
		return Answer{}, fmt.Errorf("shardrpc: answer carries unknown flag bits %#x", fl)
	}
	a.Routable = fl&ansRoutable != 0
	a.Delivered = fl&ansDelivered != 0
	a.FailedContains = fl&ansFailedContains != 0
	n := int(getU32(p, 9))
	off := 13
	if n < 0 || off+4*n > len(p) {
		return Answer{}, fmt.Errorf("shardrpc: answer failed-set length %d implausible", n)
	}
	if n > 0 {
		a.Failed = make([]graph.EdgeID, n)
		for i := 0; i < n; i++ {
			e := graph.EdgeID(getU32(p, off))
			if i > 0 && e <= a.Failed[i-1] {
				return Answer{}, fmt.Errorf("shardrpc: answer failed-set not strictly sorted")
			}
			a.Failed[i] = e
			off += 4
		}
	}
	rt, used, err := dec.DecodeRouteWire(p[off:])
	if err != nil {
		return Answer{}, err
	}
	if off+used != len(p) {
		return Answer{}, fmt.Errorf("shardrpc: %d trailing bytes after answer", len(p)-off-used)
	}
	if (rt != nil) != a.Routable {
		return Answer{}, fmt.Errorf("shardrpc: answer routable flag disagrees with route presence")
	}
	a.Route = rt
	return a, nil
}

// --- stats -----------------------------------------------------------------

// appendStats encodes engine.Stats field by field in declaration order —
// hand-rolled like everything else on this wire, so adding an engine
// stat is a compile-visible two-line change here.
func appendStats(buf []byte, st engine.Stats) []byte {
	buf = appendU64(buf, st.Epoch)
	buf = appendI64(buf, int64(st.SnapshotAge))
	buf = appendI64(buf, st.Queries)
	buf = appendI64(buf, st.Unroutable)
	buf = appendI64(buf, st.Submitted)
	buf = appendI64(buf, st.Dropped)
	buf = appendI64(buf, int64(st.QueueDepth))
	buf = appendI64(buf, st.Epochs)
	buf = appendI64(buf, st.PlanCacheHits)
	buf = appendI64(buf, st.PlanCacheMiss)
	buf = appendI64(buf, st.OnDemandLSPs)
	buf = appendI64(buf, st.RowBytes)
	buf = appendI64(buf, st.DenseRowBytes)
	buf = appendSummary(buf, st.QueryLatency)
	buf = appendSummary(buf, st.EpochBuild)
	buf = appendIncremental(buf, st.Incremental)
	buf = append(buf, byte(st.Scheme))
	buf = appendSummary(buf, st.Restore)
	buf = appendSummary(buf, st.LocalBuild)
	buf = appendAcc(buf, st.Stretch)
	buf = appendAcc(buf, st.DetourHops)
	buf = appendI64(buf, st.LocalPairs)
	buf = appendI64(buf, st.LocalUnrestorable)
	buf = appendI64(buf, st.Converged)
	buf = appendI64(buf, int64(st.PendingTimers))
	return buf
}

func decodeStats(p []byte) (engine.Stats, error) {
	c := cursor{data: p}
	var st engine.Stats
	st.Epoch = c.u64()
	st.SnapshotAge = time.Duration(c.i64())
	st.Queries = c.i64()
	st.Unroutable = c.i64()
	st.Submitted = c.i64()
	st.Dropped = c.i64()
	st.QueueDepth = int(c.i64())
	st.Epochs = c.i64()
	st.PlanCacheHits = c.i64()
	st.PlanCacheMiss = c.i64()
	st.OnDemandLSPs = c.i64()
	st.RowBytes = c.i64()
	st.DenseRowBytes = c.i64()
	st.QueryLatency = c.summary()
	st.EpochBuild = c.summary()
	st.Incremental = c.incremental()
	st.Scheme = engine.Scheme(c.u8())
	st.Restore = c.summary()
	st.LocalBuild = c.summary()
	st.Stretch = c.acc()
	st.DetourHops = c.acc()
	st.LocalPairs = c.i64()
	st.LocalUnrestorable = c.i64()
	st.Converged = c.i64()
	st.PendingTimers = int(c.i64())
	if c.err || c.off != len(p) {
		return engine.Stats{}, fmt.Errorf("shardrpc: malformed stats frame")
	}
	return st, nil
}

func appendSummary(buf []byte, s metrics.Summary) []byte {
	buf = appendI64(buf, s.Count)
	buf = appendI64(buf, int64(s.P50))
	buf = appendI64(buf, int64(s.P90))
	buf = appendI64(buf, int64(s.P99))
	buf = appendI64(buf, int64(s.Max))
	return buf
}

func appendAcc(buf []byte, a metrics.AccSummary) []byte {
	buf = appendI64(buf, a.Count)
	buf = appendU64(buf, math.Float64bits(a.Mean))
	buf = appendI64(buf, a.Max)
	return buf
}

func appendIncremental(buf []byte, in engine.IncrementalStats) []byte {
	buf = appendI64(buf, in.PairsReused)
	buf = appendI64(buf, in.PairsRecomputed)
	buf = appendI64(buf, in.Entering)
	buf = appendI64(buf, in.Leaving)
	buf = appendI64(buf, in.StaleRoutes)
	buf = appendI64(buf, in.RepairImproved)
	buf = appendI64(buf, in.TreesAdopted)
	buf = appendI64(buf, in.FullRebuilds)
	buf = appendI64(buf, in.AffectedNanos)
	buf = appendI64(buf, in.SolveNanos)
	buf = appendI64(buf, in.ResolveNanos)
	buf = appendI64(buf, in.AssembleNanos)
	return buf
}

// cursor is the bounds-checked reader for cold decode paths.
type cursor struct {
	data []byte
	off  int
	err  bool
}

func (c *cursor) u8() byte {
	if c.off+1 > len(c.data) {
		c.err = true
		return 0
	}
	v := c.data[c.off]
	c.off++
	return v
}

func (c *cursor) u64() uint64 {
	if c.off+8 > len(c.data) {
		c.err = true
		return 0
	}
	v := getU64(c.data, c.off)
	c.off += 8
	return v
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) summary() metrics.Summary {
	return metrics.Summary{
		Count: c.i64(),
		P50:   time.Duration(c.i64()),
		P90:   time.Duration(c.i64()),
		P99:   time.Duration(c.i64()),
		Max:   time.Duration(c.i64()),
	}
}

func (c *cursor) acc() metrics.AccSummary {
	return metrics.AccSummary{
		Count: c.i64(),
		Mean:  math.Float64frombits(c.u64()),
		Max:   c.i64(),
	}
}

func (c *cursor) incremental() engine.IncrementalStats {
	return engine.IncrementalStats{
		PairsReused:     c.i64(),
		PairsRecomputed: c.i64(),
		Entering:        c.i64(),
		Leaving:         c.i64(),
		StaleRoutes:     c.i64(),
		RepairImproved:  c.i64(),
		TreesAdopted:    c.i64(),
		FullRebuilds:    c.i64(),
		AffectedNanos:   c.i64(),
		SolveNanos:      c.i64(),
		ResolveNanos:    c.i64(),
		AssembleNanos:   c.i64(),
	}
}

// grow0 extends buf to n bytes preserving contents (append-style, cold).
func grow0(buf []byte, n int) []byte {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	return buf[:n]
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(buf []byte, v int64) []byte { return appendU64(buf, uint64(v)) }
