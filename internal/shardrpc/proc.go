package shardrpc

import (
	"fmt"
	"maps"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
)

// Coordinator is the process-mode front: the same serving surface as
// shard.Coordinator (queries, batches, bursts, flush, views, stats),
// served by remote workers over the wire instead of in-process engines.
// It holds the full provision's canonical matrix (SnapDecoder) — so it
// can route cold pairs and answer for crashed workers without any worker
// round trip — plus the failed-set model it replays to replacement
// workers on reattach.
type Coordinator struct {
	g    *graph.Graph
	ring *shard.Ring
	cfg  Config
	dec  *engine.SnapDecoder
	w    []*client
	cold *shard.ColdTier
	met  queryMetrics
	// restore is the coordinator-side time-to-restore histogram (the
	// prober records here; workers never see restoration samples).
	restore metrics.Histogram
	// pairIndex answers AffectedPairs from the full provision — the same
	// index every engine builds for its slice, built once over the union.
	pairIndex *graph.PairIndex

	mu sync.Mutex
	// model is the coordinator's own failed-set bookkeeping: the source
	// of truth for resyncing replacement workers and for detached
	// snapshots while a worker is down.
	model map[graph.EdgeID]bool //rbpc:guardedby mu
	// burstBuf is the reused burst encode buffer.
	burstBuf []byte          //rbpc:guardedby mu
	evsBuf   []failure.Event //rbpc:guardedby mu
	// detached caches the canonical-only snapshot for the current model
	// failed-set, rebuilt on churn — crash diversion and cold queries hit
	// this instead of recomputing a failure view per query.
	detached atomic.Pointer[engine.Snapshot]
	epoch    atomic.Uint64 // coordinator's model epoch (bursts applied)

	// buckets is the reused SubmitBatch partition.
	buckets [][]rbpc.Pair //rbpc:guardedby bmu
	bmu     sync.Mutex

	closed atomic.Bool
	health chan struct{}
}

// NewCoordinator builds the process-mode coordinator and attaches every
// worker through cfg.Dial. The workers must already be listening; a
// worker that cannot be attached within the dial budget fails
// construction (post-construction crashes are survived, construction
// requires a whole deployment).
func NewCoordinator(p rbpc.Provision, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shardrpc: config needs Shards >= 1, got %d", cfg.Shards)
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("shardrpc: config needs a Dialer")
	}
	ring, err := shard.NewRing(cfg.Shards, cfg.VNodes, cfg.RingSeed)
	if err != nil {
		return nil, err
	}
	dec, err := engine.NewSnapDecoder(p)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		g:       p.Graph,
		ring:    ring,
		cfg:     cfg,
		dec:     dec,
		w:       make([]*client, cfg.Shards),
		model:   make(map[graph.EdgeID]bool),
		buckets: make([][]rbpc.Pair, cfg.Shards),
		health:  make(chan struct{}),
	}
	c.pairIndex = buildPairIndex(p)
	c.detached.Store(dec.Detached(nil, 0))
	c.cold = shard.NewColdTier(p.Graph, p.Base, maps.Clone(p.LSPs), cfg.Cold, cfg.Engine.OnResult)

	for i := 0; i < cfg.Shards; i++ {
		c.w[i] = newClient(i, cfg, dec, &c.met, c.replicaTap)
		if err := c.attachWithin(i, cfg.DialBudget); err != nil {
			c.Close()
			return nil, err
		}
	}
	if cfg.HealthEvery > 0 {
		go c.healthLoop()
	}
	return c, nil
}

// buildPairIndex replicates the engine's static failed-link → affected
// pairs index over the full provision (each worker only indexes its own
// slice; the deployment view needs the union).
func buildPairIndex(p rbpc.Provision) *graph.PairIndex {
	lists := make(map[graph.EdgeID][]graph.NodePair)
	for pr, lsp := range p.Primaries {
		for _, ed := range lsp.Path.Edges {
			lists[ed] = append(lists[ed], graph.NodePair{Src: pr.Src, Dst: pr.Dst})
		}
	}
	for _, prs := range lists {
		sort.Slice(prs, func(i, j int) bool {
			if prs[i].Src != prs[j].Src {
				return prs[i].Src < prs[j].Src
			}
			return prs[i].Dst < prs[j].Dst
		})
	}
	return graph.BuildPairIndex(p.Graph.Size(), lists)
}

// replicaTap feeds decoded replica snapshots to the configured observer.
func (c *Coordinator) replicaTap(worker int, snap *engine.Snapshot) {
	if c.cfg.OnEpoch != nil {
		c.cfg.OnEpoch(worker, snap)
	}
}

// attachWithin dials and attaches worker i, retrying inside the budget.
func (c *Coordinator) attachWithin(i int, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		err := c.w[i].attach(c.cfg.Shards, c.cfg.VNodes, c.cfg.RingSeed, c.g.Order(), c.g.Size())
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shardrpc: worker %d: attach budget exhausted: %w", i, err)
		}
		time.Sleep(c.cfg.DialTimeout / 4)
	}
}

// healthLoop pings every worker on the configured cadence; a failed ping
// runs the full timeout/retry ladder inside rpc and marks the worker
// dead, which is what diverts its sources to the cold tier.
func (c *Coordinator) healthLoop() {
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.health:
			return
		case <-t.C:
			for _, cl := range c.w {
				if cl.alive.Load() {
					go cl.ping()
				}
			}
		}
	}
}

// Ring returns the routing ring.
func (c *Coordinator) Ring() *shard.Ring { return c.ring }

// Shards returns the worker count.
func (c *Coordinator) Shards() int { return len(c.w) }

// Owner returns the index of the worker owning src's row.
func (c *Coordinator) Owner(src graph.NodeID) int { return c.ring.Owner(src) }

// Alive reports whether worker i currently has a live transport.
func (c *Coordinator) Alive(i int) bool { return c.w[i].alive.Load() }

// LinksDown reports how many links the coordinator model currently holds
// failed (the serving loop's churn-balance observable).
func (c *Coordinator) LinksDown() int { return len(c.detached.Load().Failed()) }

// Replica returns worker i's latest decoded snapshot (nil before first
// attach).
func (c *Coordinator) Replica(i int) *engine.Snapshot { return c.w[i].replica.Load() }

// Torn sums the torn frames every live connection has dropped — the
// observable the torn-frame chaos fault asserts on.
func (c *Coordinator) Torn() int64 {
	var n int64
	for _, cl := range c.w {
		n += cl.torn.Load()
	}
	return n
}

// Fail broadcasts a link failure to every live worker and folds it into
// the coordinator model.
func (c *Coordinator) Fail(ed graph.EdgeID) { c.apply(failure.Event{Edge: ed}) }

// Repair broadcasts a link repair.
func (c *Coordinator) Repair(ed graph.EdgeID) { c.apply(failure.Event{Repair: true, Edge: ed}) }

func (c *Coordinator) apply(ev failure.Event) {
	c.mu.Lock()
	c.evsBuf = append(c.evsBuf[:0], ev)
	c.broadcastLocked(c.evsBuf)
	c.mu.Unlock()
}

// ApplyEvents broadcasts a whole churn burst in one frame per worker.
func (c *Coordinator) ApplyEvents(evs []failure.Event) {
	if len(evs) == 0 {
		return
	}
	c.mu.Lock()
	c.broadcastLocked(evs)
	c.mu.Unlock()
}

// broadcastLocked updates the model, refreshes the detached snapshot,
// and ships the burst. Callers hold c.mu.
//
//rbpc:locked
func (c *Coordinator) broadcastLocked(evs []failure.Event) {
	for _, ev := range evs {
		if ev.Repair {
			delete(c.model, ev.Edge)
		} else {
			c.model[ev.Edge] = true
		}
	}
	ep := c.epoch.Add(1)
	c.detached.Store(c.dec.Detached(c.modelFailedLocked(), ep))
	c.burstBuf = appendBurst(c.burstBuf[:0], evs)
	for _, cl := range c.w {
		if cl.alive.Load() {
			cl.burst(c.burstBuf)
		}
	}
}

// modelFailedLocked snapshots the model failed-set, sorted ascending.
// Callers hold c.mu.
//
//rbpc:locked
func (c *Coordinator) modelFailedLocked() []graph.EdgeID {
	if len(c.model) == 0 {
		return nil
	}
	out := make([]graph.EdgeID, 0, len(c.model))
	for e := range c.model {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Flush is the cross-process barrier: every live worker runs its engine
// flush and acks with its post-barrier epoch; because each worker's
// snapshot frames precede its flush ack on the same connection, returning
// from Flush means every live replica reflects every event sent before
// the call.
func (c *Coordinator) Flush() {
	for _, cl := range c.w {
		if cl.alive.Load() {
			cl.flush()
		}
	}
}

// Query answers synchronously. Materialized sources of live workers take
// a batch-free single-query round trip; cold sources and crashed
// workers' sources go through the admission-controlled cold tier against
// the coordinator's detached snapshot of the current failed-set.
func (c *Coordinator) Query(src, dst graph.NodeID) engine.Result {
	owner := c.ring.Owner(src)
	cl := c.w[owner]
	if !c.dec.Materialized(src) || !cl.alive.Load() {
		return c.cold.Query(src, dst, c.detached.Load())
	}
	t0 := time.Now()
	ans, err := cl.remoteQuery(uint32(src), uint32(dst), 0, false)
	key := uint64(owner)
	if err != nil {
		// The worker died mid-query: divert this one to the cold tier.
		return c.cold.Query(src, dst, c.detached.Load())
	}
	c.met.queries.Add(key, 1)
	c.met.latency.Record(key, time.Since(t0))
	if ans.Route == nil {
		c.met.unroutable.Add(key, 1)
		return engine.Result{Src: src, Dst: dst, Snap: c.snapFor(owner, ans)}
	}
	return engine.Result{Src: src, Dst: dst, Route: ans.Route, Snap: c.snapFor(owner, ans)}
}

// snapFor resolves the snapshot to attach to a query result: the decoded
// replica when it matches the answering epoch, else a detached snapshot
// of the answer's failed-set (the replica frame may still be in flight).
func (c *Coordinator) snapFor(owner int, ans Answer) *engine.Snapshot {
	if rep := c.w[owner].replica.Load(); rep != nil && rep.Epoch() == ans.Epoch {
		return rep
	}
	return c.dec.Detached(ans.Failed, ans.Epoch)
}

// ProbeQuery asks the owning worker for the full restoration verdict of
// one pair under one probe edge: whether the answering epoch knew the
// failure, whether the pair is routable, and whether the worker's own
// data-plane walk delivered. While the owner is down the cold tier
// answers, and delivery equals routability — the control-plane answer is
// restoration; the data plane died with the worker process.
func (c *Coordinator) ProbeQuery(src, dst graph.NodeID, ed graph.EdgeID) ProbeVerdict {
	owner := c.ring.Owner(src)
	cl := c.w[owner]
	if !c.dec.Materialized(src) || !cl.alive.Load() {
		snap := c.detached.Load()
		res := c.cold.Query(src, dst, snap)
		contains := false
		for _, f := range snap.Failed() {
			if f == ed {
				contains = true
				break
			}
		}
		return ProbeVerdict{
			FailedContains: contains,
			Routable:       res.Route != nil,
			Delivered:      res.Route != nil,
		}
	}
	ans, err := cl.remoteQuery(uint32(src), uint32(dst), uint32(ed), true)
	if err != nil {
		return ProbeVerdict{}
	}
	return ProbeVerdict{
		FailedContains: ans.FailedContains,
		Routable:       ans.Routable,
		Delivered:      ans.Delivered,
	}
}

// ProbeVerdict is the prober-facing answer of ProbeQuery (see
// probe.RestoreVia).
type ProbeVerdict struct {
	FailedContains bool
	Routable       bool
	Delivered      bool
}

// RemoteQuery exposes the raw single-query RPC — the chaos lockstep
// oracle checks the full wire answer (epoch, failed-set, route) rather
// than the Result wrapper.
func (c *Coordinator) RemoteQuery(src, dst graph.NodeID) (Answer, error) {
	return c.w[c.ring.Owner(src)].remoteQuery(uint32(src), uint32(dst), 0, false)
}

// SubmitBatch partitions the batch by ring ownership and ships one frame
// per owning worker; cold pairs and dead workers' pairs divert to the
// cold tier per pair. Returns the number of queries accepted (a worker's
// sub-batch is accepted or shed as a unit by the in-flight budget).
func (c *Coordinator) SubmitBatch(pairs []rbpc.Pair) int {
	if len(pairs) == 0 {
		return 0
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
	accepted := 0
	detached := c.detached.Load()
	for _, pr := range pairs {
		w := c.ring.Owner(pr.Src)
		if !c.dec.Materialized(pr.Src) || !c.w[w].alive.Load() {
			if c.cold.Submit(pr.Src, pr.Dst, detached) {
				accepted++
			}
			continue
		}
		c.buckets[w] = append(c.buckets[w], pr)
	}
	for i, b := range c.buckets {
		if len(b) == 0 {
			continue
		}
		if c.w[i].sendBatch(b) {
			accepted += len(b)
		} else {
			c.met.dropped.Add(uint64(i), int64(len(b)))
		}
	}
	return accepted
}

// Submit enqueues one async query (the single-pair convenience over
// SubmitBatch's machinery).
func (c *Coordinator) Submit(src, dst graph.NodeID) bool {
	w := c.ring.Owner(src)
	if !c.dec.Materialized(src) || !c.w[w].alive.Load() {
		return c.cold.Submit(src, dst, c.detached.Load())
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	c.buckets[w] = append(c.buckets[w][:0], rbpc.Pair{Src: src, Dst: dst})
	if c.w[w].sendBatch(c.buckets[w]) {
		return true
	}
	c.met.dropped.Add(uint64(w), 1)
	return false
}

// AffectedPairs answers from the coordinator's full-provision index.
func (c *Coordinator) AffectedPairs(ed graph.EdgeID) []graph.NodePair {
	return c.pairIndex.Pairs(ed)
}

// RecordRestore records one observed time-to-restore coordinator-side.
func (c *Coordinator) RecordRestore(src graph.NodeID, d time.Duration) {
	c.restore.Record(uint64(c.ring.Owner(src)), d)
}

// Watermark returns the low epoch watermark across live replicas.
func (c *Coordinator) Watermark() uint64 {
	var low uint64
	set := false
	for _, cl := range c.w {
		rep := cl.replica.Load()
		if rep == nil {
			return 0
		}
		if !set || rep.Epoch() < low {
			low, set = rep.Epoch(), true
		}
	}
	return low
}

// View assembles a consistent cross-shard view from the decoded
// replicas, with the same un-torn discipline as the in-process
// coordinator: all replicas must agree on the failed-set, retried while
// snapshot frames land, ok=false if agreement never arrives (a dead
// worker, or the torn-frame fault's silently-diverged replica).
func (c *Coordinator) View() (shard.View, bool) {
	const retries = 128
	snaps := make([]*engine.Snapshot, len(c.w))
	for attempt := 0; attempt < retries; attempt++ {
		ok := true
		for i, cl := range c.w {
			snaps[i] = cl.replica.Load()
			ok = ok && snaps[i] != nil && cl.alive.Load()
		}
		if ok && replicasAgree(snaps) {
			return shard.NewView(c.ring, snaps), true
		}
		runtime.Gosched()
	}
	return shard.NewView(c.ring, snaps), false
}

func replicasAgree(snaps []*engine.Snapshot) bool {
	first := snaps[0].Failed()
	for _, s := range snaps[1:] {
		f := s.Failed()
		if len(f) != len(first) {
			return false
		}
		for i := range f {
			if f[i] != first[i] {
				return false
			}
		}
	}
	return true
}

// Reattach dials a replacement for worker i (the supervisor calls this
// after respawning the process) and resyncs it: a fresh worker is
// pristine, so the coordinator replays its entire model failed-set as
// one burst and flushes, after which the worker serves current epochs
// and its sources leave the cold tier.
func (c *Coordinator) Reattach(i int) error {
	if err := c.attachWithin(i, c.cfg.DialBudget); err != nil {
		return err
	}
	c.mu.Lock()
	failed := c.modelFailedLocked()
	c.mu.Unlock()
	if len(failed) > 0 {
		evs := make([]failure.Event, len(failed))
		for j, ed := range failed {
			evs[j] = failure.Event{Edge: ed}
		}
		buf := appendBurst(nil, evs)
		if err := c.w[i].burst(buf); err != nil {
			return err
		}
	}
	if _, err := c.w[i].flush(); err != nil {
		return err
	}
	return nil
}

// Drain blocks until every query submitted before the call has been
// answered or the submitting worker has died (its pending batches are
// accounted dropped by the death path).
func (c *Coordinator) Drain() {
	for _, cl := range c.w {
		if cl.alive.Load() {
			cl.drain()
		}
	}
	c.drainAnswers()
	c.cold.Drain()
}

// drainAnswers waits for in-flight answer batches to settle (the worker
// has served them — drain acked — but the frames may still be crossing).
func (c *Coordinator) drainAnswers() {
	deadline := time.Now().Add(c.cfg.AckTimeout)
	for time.Now().Before(deadline) {
		busy := false
		for _, cl := range c.w {
			cl.mu.Lock()
			busy = busy || cl.inflight > 0
			cl.mu.Unlock()
		}
		if !busy {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close tears down every worker connection and the cold tier. Worker
// processes are owned by the supervisor (the serve command), not the
// coordinator.
func (c *Coordinator) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.health)
	for _, cl := range c.w {
		if cl != nil {
			cl.close()
		}
	}
	if c.cold != nil {
		c.cold.Close()
	}
}

// Stats scrapes every live worker's engine stats over the wire, merges
// them exactly like the in-process coordinator, then overlays the
// coordinator-side serving counters (queries are counted where answers
// land, and latency includes the transport — the honest process-mode
// number). Dead workers contribute zeros.
func (c *Coordinator) Stats() shard.Stats {
	perShard := make([]engine.Stats, len(c.w))
	for i, cl := range c.w {
		if !cl.alive.Load() {
			continue
		}
		if st, err := cl.stats(); err == nil {
			perShard[i] = st
		}
	}
	st := shard.MergeStats(perShard, c.Watermark(), c.cold.Stats())
	st.Queries += c.met.queries.Load()
	st.Unroutable += c.met.unroutable.Load()
	st.Dropped += c.met.dropped.Load()
	if s := c.met.latency.Summarize(); s.Count > 0 {
		st.QueryLatency = s
	}
	if s := c.restore.Summarize(); s.Count > 0 {
		st.Restore = s
	}
	return st
}
