package shardrpc

import (
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
)

// TestFrameRoundTrip drives random frames through a pipe-backed Conn and
// asserts type, flags, sequence, and payload survive byte-for-byte.
func TestFrameRoundTrip(t *testing.T) {
	cc, wc := net.Pipe()
	a, b := NewConn(cc), NewConn(wc)
	defer a.Close()
	defer b.Close()
	rng := rand.New(rand.NewSource(1))
	go func() {
		for i := 0; i < 64; i++ {
			payload := make([]byte, rng.Intn(512))
			rng.Read(payload)
			if err := a.WriteFrame(byte(i%17+1), byte(i%3), uint32(i), payload); err != nil {
				return
			}
		}
	}()
	rng2 := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		want := make([]byte, rng2.Intn(512))
		rng2.Read(want)
		typ, flags, seq, payload, err := b.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i%17+1) || flags != byte(i%3) || seq != uint32(i) {
			t.Fatalf("frame %d header diverged: type %d flags %d seq %d", i, typ, flags, seq)
		}
		if string(payload) != string(want) {
			t.Fatalf("frame %d payload diverged", i)
		}
	}
}

// TestTornFrameDropped corrupts a frame in transit and proves the reader
// skips it, counts it, and keeps framing the stream.
func TestTornFrameDropped(t *testing.T) {
	cc, wc := net.Pipe()
	a, b := NewConn(cc), NewConn(wc)
	defer a.Close()
	defer b.Close()
	armTornFrame(a)
	go func() {
		a.WriteFrame(ftBurst, 0, 1, appendBurst(nil, []failure.Event{{Edge: 3}}))
		a.WriteFrame(ftFlush, 0, 2, nil)
	}()
	typ, _, seq, _, err := b.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != ftFlush || seq != 2 {
		t.Fatalf("reader delivered frame %d seq %d, want the flush after the torn burst", typ, seq)
	}
	if b.Torn() != 1 {
		t.Fatalf("torn counter %d, want 1", b.Torn())
	}
}

// TestBurstCodecRoundTrip: property test over random event bursts.
func TestBurstCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		evs := make([]failure.Event, n)
		for i := range evs {
			evs[i] = failure.Event{Repair: rng.Intn(2) == 1, Edge: graph.EdgeID(rng.Intn(1 << 20))}
		}
		got, err := decodeBurst(appendBurst(nil, evs), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(evs) {
			t.Fatalf("trial %d: %d events decoded as %d", trial, len(evs), len(got))
		}
		for i := range evs {
			if got[i] != evs[i] {
				t.Fatalf("trial %d: event %d %+v decoded as %+v", trial, i, evs[i], got[i])
			}
		}
	}
}

// TestQueryAnswerBatchRoundTrip: property test over the hot frames —
// query batches and answer batches — including Float64bits identity for
// awkward costs (negative zero, subnormals, NaN payloads, infinities).
func TestQueryAnswerBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	awkward := []uint64{
		0, math.Float64bits(math.Copysign(0, -1)), math.Float64bits(math.Inf(1)),
		math.Float64bits(math.Inf(-1)), math.Float64bits(math.NaN()), 1, // subnormal
		math.Float64bits(0.1), math.MaxUint64,
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		pairs := make([]rbpc.Pair, n)
		for i := range pairs {
			pairs[i] = rbpc.Pair{Src: graph.NodeID(rng.Intn(1 << 16)), Dst: graph.NodeID(rng.Intn(1 << 16))}
		}
		qb := grow(nil, queryBatchSize(n))
		fillQueryBatch(qb, pairs)
		gotN, ok := queryBatchCount(qb)
		if !ok || gotN != n {
			t.Fatalf("trial %d: query batch count %d ok=%v, want %d", trial, gotN, ok, n)
		}
		for i := range pairs {
			src, dst := queryAt(qb, i)
			if graph.NodeID(src) != pairs[i].Src || graph.NodeID(dst) != pairs[i].Dst {
				t.Fatalf("trial %d: pair %d diverged", trial, i)
			}
		}

		flags := make([]byte, n)
		bits := make([]uint64, n)
		ab := grow(nil, answerBatchSize(n))
		fillAnswerCount(ab, n)
		for i := 0; i < n; i++ {
			flags[i] = byte(rng.Intn(8))
			bits[i] = awkward[rng.Intn(len(awkward))]
			fillAnswerAt(ab, i, flags[i], bits[i])
		}
		gotN, ok = answerBatchCount(ab)
		if !ok || gotN != n {
			t.Fatalf("trial %d: answer batch count %d ok=%v, want %d", trial, gotN, ok, n)
		}
		for i := 0; i < n; i++ {
			f, bs := answerAt(ab, i)
			if f != flags[i] || bs != bits[i] {
				t.Fatalf("trial %d: answer %d flags %d bits %x, want %d %x", trial, i, f, bs, flags[i], bits[i])
			}
		}
	}
}

// TestHelloCodecRoundTrip covers the handshake frame.
func TestHelloCodecRoundTrip(t *testing.T) {
	h := hello{shard: 3, shards: 8, vnodes: 1024, ringSeed: 0x9e3779b97f4a7c15, nodes: 4096, links: 16384, epoch: 77}
	got, err := decodeHello(appendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello %+v decoded as %+v", h, got)
	}
}

// TestStatsCodecRoundTrip fills every engine.Stats field with a distinct
// value and proves the hand-rolled codec carries all of them — a new
// engine stat that is not added to the codec fails this test by
// construction (reflect covers the struct).
func TestStatsCodecRoundTrip(t *testing.T) {
	st := engine.Stats{
		Epoch: 9, SnapshotAge: 8 * time.Millisecond,
		Queries: 100, Unroutable: 3, Submitted: 50, Dropped: 2, QueueDepth: 7,
		Epochs: 11, PlanCacheHits: 13, PlanCacheMiss: 17, OnDemandLSPs: 19,
		RowBytes: 1 << 20, DenseRowBytes: 1 << 24,
		QueryLatency: metrics.Summary{Count: 5, P50: 1, P90: 2, P99: 3, Max: 4},
		EpochBuild:   metrics.Summary{Count: 6, P50: 5, P90: 6, P99: 7, Max: 8},
		Incremental: engine.IncrementalStats{
			PairsReused: 1, PairsRecomputed: 2, Entering: 3, Leaving: 4,
			StaleRoutes: 5, RepairImproved: 6, TreesAdopted: 7, FullRebuilds: 8,
			AffectedNanos: 9, SolveNanos: 10, ResolveNanos: 11, AssembleNanos: 12,
		},
		Scheme:  engine.SchemeHybrid,
		Restore: metrics.Summary{Count: 2, P50: 9, P90: 10, P99: 11, Max: 12},
		LocalBuild: metrics.Summary{
			Count: 3, P50: 13, P90: 14, P99: 15, Max: 16,
		},
		Stretch:    metrics.AccSummary{Count: 4, Mean: 1001.5, Max: 1100},
		DetourHops: metrics.AccSummary{Count: 5, Mean: 2.5, Max: 6},
		LocalPairs: 21, LocalUnrestorable: 22, Converged: 23, PendingTimers: 24,
	}
	got, err := decodeStats(appendStats(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("stats diverged:\nwant %+v\ngot  %+v", st, got)
	}
	// Every exported field must be non-zero above, or this test cannot
	// prove the codec carries it.
	v := reflect.ValueOf(st)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("field %s left zero — give it a distinct value", v.Type().Field(i).Name)
		}
	}
}

// TestAnswerCodecRoundTrip covers the full single-query answer,
// including route resolution against the decoder registry and cost bit
// identity.
func TestAnswerCodecRoundTrip(t *testing.T) {
	p := buildProvision(t, 12, 33)
	dec, err := engine.NewSnapDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	// Borrow a real provisioned route so path resolution exercises the
	// registry hit path.
	var rt *engine.Route
	for pr := range p.Routes {
		eng, err := engine.New(p, engine.Config{DeltaRows: true})
		if err != nil {
			t.Fatal(err)
		}
		rt = eng.Query(pr.Src, pr.Dst).Route
		eng.Close()
		break
	}
	if rt == nil {
		t.Fatal("no provisioned route to round-trip")
	}
	cases := []Answer{
		{Epoch: 3, Failed: []graph.EdgeID{1, 5, 9}, Route: rt, Routable: true, Delivered: true, FailedContains: true},
		{Epoch: 0, Routable: false},
		{Epoch: 1 << 40, Failed: []graph.EdgeID{0}, Routable: false, FailedContains: true},
	}
	for i, want := range cases {
		got, err := decodeAnswer(appendAnswer(nil, want), dec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Epoch != want.Epoch || got.Routable != want.Routable ||
			got.Delivered != want.Delivered || got.FailedContains != want.FailedContains {
			t.Fatalf("case %d: scalar fields diverged: %+v vs %+v", i, want, got)
		}
		if !reflect.DeepEqual(got.Failed, want.Failed) {
			t.Fatalf("case %d: failed-set %v decoded as %v", i, want.Failed, got.Failed)
		}
		if (got.Route == nil) != (want.Route == nil) {
			t.Fatalf("case %d: route presence diverged", i)
		}
		if want.Route != nil {
			if math.Float64bits(got.Route.Cost) != math.Float64bits(want.Route.Cost) {
				t.Fatalf("case %d: route cost bits diverged", i)
			}
			if len(got.Route.LSPs) != len(want.Route.LSPs) {
				t.Fatalf("case %d: component count diverged", i)
			}
			for j := range want.Route.LSPs {
				if got.Route.LSPs[j] != want.Route.LSPs[j] {
					t.Fatalf("case %d: component %d did not resolve to the registry LSP", i, j)
				}
			}
		}
	}
}
