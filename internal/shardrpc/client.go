package shardrpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/rbpc"
)

// callKind distinguishes pending-table entries: RPCs park a waiter on a
// channel; query batches are fire-and-forget at submit time and resolved
// by the reader as answers stream back.
type callKind int

const (
	callRPC callKind = iota
	callBatch
)

type call struct {
	kind callKind
	// RPC fields.
	done    chan struct{}
	want    byte
	payload []byte // copied reply payload
	flags   byte
	err     error
	// Batch fields.
	t0 time.Time
	n  int
}

// queryMetrics are the coordinator-side serving counters: queries are
// counted where the answers land (the reader goroutines), and latency is
// batch submit to answer arrival — transport included, which is the
// honest number for a cross-process deployment.
type queryMetrics struct {
	queries    metrics.Counter
	unroutable metrics.Counter
	dropped    metrics.Counter
	latency    metrics.Histogram
}

// client drives one worker: a control connection (bursts, barriers,
// stats; snapshot frames back) plus a pool of query connections, a
// pending table demultiplexing replies by sequence number, and the
// decoded replica snapshot the coordinator's View() merges.
type client struct {
	idx int
	cfg Config
	dec *engine.SnapDecoder
	met *queryMetrics
	// onEpoch observes every replica update (coordinator watermark, then
	// the user tap).
	onEpoch func(worker int, snap *engine.Snapshot)

	mu       sync.Mutex
	control  *Conn
	query    []*Conn
	pend     map[uint32]*call //rbpc:guardedby mu
	inflight int              //rbpc:guardedby mu
	gen      int              //rbpc:guardedby mu

	seq     atomic.Uint32
	next    atomic.Uint32
	alive   atomic.Bool
	replica atomic.Pointer[engine.Snapshot]
	torn    atomic.Int64
	// batchBuf is the reused query-batch encode buffer.
	bmu      sync.Mutex
	batchBuf []byte //rbpc:guardedby bmu
}

func newClient(idx int, cfg Config, dec *engine.SnapDecoder, met *queryMetrics,
	onEpoch func(int, *engine.Snapshot)) *client {
	return &client{
		idx:     idx,
		cfg:     cfg,
		dec:     dec,
		met:     met,
		onEpoch: onEpoch,
		pend:    make(map[uint32]*call),
	}
}

// attach dials the worker's control and query connections, validates the
// ring/topology contract from the hello, and waits for the priming
// snapshot before declaring the worker alive — so a caller returning
// from attach can immediately build whole views.
func (c *client) attach(wantShards, wantVNodes int, wantSeed uint64, nodes, links int) error {
	control, h, err := c.dialOne(roleControl)
	if err != nil {
		return err
	}
	if int(h.shards) != wantShards || int(h.vnodes) != wantVNodes || h.ringSeed != wantSeed {
		control.Close()
		return fmt.Errorf("shardrpc: worker %d ring contract (%d shards, %d vnodes, seed %#x) differs from coordinator (%d, %d, %#x)",
			c.idx, h.shards, h.vnodes, h.ringSeed, wantShards, wantVNodes, wantSeed)
	}
	if int(h.shard) != c.idx || int(h.nodes) != nodes || int(h.links) != links {
		control.Close()
		return fmt.Errorf("shardrpc: worker %d hello claims shard %d of a %d-node/%d-link topology, want %d of %d/%d",
			c.idx, h.shard, h.nodes, h.links, c.idx, nodes, links)
	}
	// The worker primes the replica right after the hello; read it
	// synchronously so the attach postcondition is a current replica.
	typ, _, _, payload, err := control.ReadFrame()
	if err != nil {
		control.Close()
		return err
	}
	if typ != ftSnapshot {
		control.Close()
		return fmt.Errorf("shardrpc: worker %d sent frame %d before priming snapshot", c.idx, typ)
	}
	snap, err := c.dec.Decode(payload)
	if err != nil {
		control.Close()
		return fmt.Errorf("shardrpc: worker %d priming snapshot: %w", c.idx, err)
	}

	pool := make([]*Conn, c.cfg.Conns)
	for i := range pool {
		qc, _, err := c.dialOne(roleQuery)
		if err != nil {
			control.Close()
			for _, p := range pool[:i] {
				p.Close()
			}
			return err
		}
		pool[i] = qc
	}

	c.mu.Lock()
	c.control = control
	c.query = pool
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	c.storeReplica(snap)
	c.alive.Store(true)

	go c.reader(control, gen)
	for _, qc := range pool {
		go c.reader(qc, gen)
	}
	return nil
}

// dialOne opens and attaches one connection, returning the worker hello.
func (c *client) dialOne(role byte) (*Conn, hello, error) {
	nc, err := c.cfg.Dial(c.idx)
	if err != nil {
		return nil, hello{}, fmt.Errorf("shardrpc: dial worker %d: %w", c.idx, err)
	}
	conn := NewConn(nc)
	if role == roleControl && c.idx == 0 && c.cfg.Fault == FaultTornFrame {
		armTornFrame(conn)
	}
	if err := conn.WriteFrame(ftAttach, role, 0, nil); err != nil {
		conn.Close()
		return nil, hello{}, err
	}
	typ, _, _, payload, err := conn.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, hello{}, err
	}
	if typ != ftHello {
		conn.Close()
		return nil, hello{}, fmt.Errorf("shardrpc: worker %d replied frame %d to attach", c.idx, typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		conn.Close()
		return nil, hello{}, err
	}
	return conn, h, nil
}

// armTornFrame installs the write-side chaos fault: the next burst frame
// leaving this connection is corrupted after its checksum is computed, so
// the worker's Conn drops it as torn and silently misses the churn — the
// divergence the conformance oracle must catch at the next flush.
func armTornFrame(conn *Conn) {
	fired := false
	conn.corrupt = func(typ byte, payload []byte) {
		if fired || typ != ftBurst || len(payload) == 0 {
			return
		}
		fired = true
		payload[len(payload)-1] ^= 0xff
	}
}

// storeReplica publishes a decoded snapshot, refusing epoch regressions
// (a tap frame can race the attach priming frame; newest wins).
func (c *client) storeReplica(snap *engine.Snapshot) {
	for {
		cur := c.replica.Load()
		if cur != nil && cur.Epoch() > snap.Epoch() {
			return
		}
		if c.replica.CompareAndSwap(cur, snap) {
			break
		}
	}
	if c.onEpoch != nil {
		c.onEpoch(c.idx, snap)
	}
}

// reader drains one connection, demultiplexing by sequence number:
// snapshot frames update the replica, answer batches settle into the
// serving metrics, everything else resolves a parked RPC.
func (c *client) reader(conn *Conn, gen int) {
	key := uint64(c.idx)
	for {
		typ, flags, seq, payload, err := conn.ReadFrame()
		if err != nil {
			c.die(gen, err)
			return
		}
		switch typ {
		case ftSnapshot:
			snap, derr := c.dec.Decode(payload)
			if derr != nil {
				c.die(gen, fmt.Errorf("shardrpc: worker %d snapshot: %w", c.idx, derr))
				return
			}
			c.storeReplica(snap)
		case ftAnswerBatch:
			n, ok := answerBatchCount(payload)
			if !ok {
				c.die(gen, fmt.Errorf("shardrpc: worker %d sent malformed answer batch", c.idx))
				return
			}
			ca := c.take(seq)
			if ca == nil || ca.kind != callBatch {
				continue // late answer after a timeout/death; already accounted
			}
			c.settleBatch(key, ca, payload, n)
		default:
			ca := c.take(seq)
			if ca == nil || ca.kind != callRPC {
				continue
			}
			if typ != ca.want {
				ca.err = fmt.Errorf("shardrpc: worker %d replied frame %d, want %d", c.idx, typ, ca.want)
			} else {
				ca.payload = append(ca.payload[:0], payload...)
				ca.flags = flags
			}
			close(ca.done)
		}
	}
}

// settleBatch folds one answer batch into the coordinator metrics: the
// whole batch records one arrival latency (RecordN) and the per-answer
// scan is a hot fixed-offset walk.
func (c *client) settleBatch(key uint64, ca *call, payload []byte, n int) {
	if n > ca.n {
		n = ca.n // defensive: never credit more answers than were asked
	}
	unroutable := scanUnroutable(payload, n)
	c.met.queries.Add(key, int64(n))
	c.met.unroutable.Add(key, unroutable)
	if d := time.Since(ca.t0); n > 0 {
		c.met.latency.RecordN(key, d, int64(n))
	}
	if short := int64(ca.n - n); short > 0 {
		c.met.dropped.Add(key, short)
	}
}

// scanUnroutable counts the batch's unroutable answers — the hot half of
// answer decoding (one flags byte per query, no allocation).
//
//rbpc:hotpath
func scanUnroutable(payload []byte, n int) int64 {
	var u int64
	for i := 0; i < n; i++ {
		flags, _ := answerAt(payload, i)
		if flags&ansRoutable == 0 {
			u++
		}
	}
	return u
}

// take removes and returns the pending entry for seq (nil if unknown),
// decrementing the in-flight budget for batch entries.
func (c *client) take(seq uint32) *call {
	c.mu.Lock()
	defer c.mu.Unlock()
	ca := c.pend[seq]
	if ca != nil {
		delete(c.pend, seq)
		if ca.kind == callBatch {
			c.inflight--
		}
	}
	return ca
}

// die marks the worker dead and fails everything pending. The generation
// guard keeps a stale reader (from before a reattach) from killing the
// fresh connections.
func (c *client) die(gen int, cause error) {
	c.mu.Lock()
	if gen != c.gen {
		c.mu.Unlock()
		return
	}
	c.alive.Store(false)
	control, pool := c.control, c.query
	c.control, c.query = nil, nil
	pend := c.pend
	c.pend = make(map[uint32]*call)
	c.inflight = 0
	c.mu.Unlock()

	if control != nil {
		control.Close()
	}
	for _, qc := range pool {
		qc.Close()
	}
	key := uint64(c.idx)
	for _, ca := range pend {
		switch ca.kind {
		case callRPC:
			ca.err = fmt.Errorf("shardrpc: worker %d died: %w", c.idx, cause)
			close(ca.done)
		case callBatch:
			c.met.dropped.Add(key, int64(ca.n))
		}
	}
}

// controlConn returns the live control connection (nil when dead).
func (c *client) controlConn() *Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.control
}

// queryConn picks the next pool connection round-robin.
func (c *client) queryConn() *Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.query) == 0 {
		return nil
	}
	return c.query[int(c.next.Add(1))%len(c.query)]
}

// rpc performs one round trip on conn with AckTimeout and bounded retry;
// exhausting the budget declares the worker dead. Retries are safe for
// every frame on this wire: bursts are idempotent at the engine (failing
// a failed edge and repairing a repaired one are no-ops) and the rest are
// reads or barriers.
func (c *client) rpc(conn *Conn, typ, flags byte, payload []byte, want byte) (*call, error) {
	if conn == nil {
		return nil, fmt.Errorf("shardrpc: worker %d is down", c.idx)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		seq := c.seq.Add(1)
		ca := &call{kind: callRPC, done: make(chan struct{}), want: want}
		c.mu.Lock()
		c.pend[seq] = ca
		c.mu.Unlock()
		if err := conn.WriteFrame(typ, flags, seq, payload); err != nil {
			c.take(seq)
			c.die(c.generation(), err)
			return nil, err
		}
		select {
		case <-ca.done:
			if ca.err != nil {
				return nil, ca.err
			}
			return ca, nil
		case <-time.After(c.cfg.AckTimeout):
			c.take(seq)
			lastErr = fmt.Errorf("shardrpc: worker %d: frame %d timed out after %v", c.idx, typ, c.cfg.AckTimeout)
		}
	}
	c.die(c.generation(), lastErr)
	return nil, lastErr
}

func (c *client) generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// sendBatch encodes and writes one batch frame (hot fill into the reused
// buffer) and registers its pending entry; answers settle asynchronously
// in the reader. Returns false when the worker is dead, the in-flight
// budget is exhausted, or the write fails — the caller accounts the
// batch as dropped.
func (c *client) sendBatch(pairs []rbpc.Pair) bool {
	conn := c.queryConn()
	if conn == nil {
		return false
	}
	seq := c.seq.Add(1)
	ca := &call{kind: callBatch, t0: time.Now(), n: len(pairs)}
	c.mu.Lock()
	if c.inflight >= c.cfg.Inflight {
		c.mu.Unlock()
		return false
	}
	c.inflight++
	c.pend[seq] = ca
	c.mu.Unlock()

	c.bmu.Lock()
	c.batchBuf = grow(c.batchBuf, queryBatchSize(len(pairs)))
	fillQueryBatch(c.batchBuf, pairs)
	err := conn.WriteFrame(ftQueryBatch, 0, seq, c.batchBuf)
	c.bmu.Unlock()
	if err != nil {
		c.take(seq) // remove before die so the batch is not also counted there
		c.die(c.generation(), err)
		return false
	}
	return true
}

// remoteQuery performs one synchronous single-pair query (optionally with
// a probe edge) and decodes the full answer.
func (c *client) remoteQuery(src, dst uint32, probe uint32, hasProbe bool) (Answer, error) {
	c.bmu.Lock()
	c.batchBuf = grow(c.batchBuf, 12)
	putU32(c.batchBuf, 0, src)
	putU32(c.batchBuf, 4, dst)
	if hasProbe {
		putU32(c.batchBuf, 8, probe)
	} else {
		putU32(c.batchBuf, 8, noEdge)
	}
	payload := append([]byte(nil), c.batchBuf[:12]...)
	c.bmu.Unlock()
	ca, err := c.rpc(c.queryConn(), ftQuery, 0, payload, ftAnswer)
	if err != nil {
		return Answer{}, err
	}
	return decodeAnswer(ca.payload, c.dec)
}

// burst broadcasts churn events. The ack is awaited asynchronously — the
// pending entry resolves when the worker confirms, and only a write
// failure (dead transport) surfaces here; ordering against the following
// flush is the control connection's FIFO.
func (c *client) burst(payload []byte) error {
	conn := c.controlConn()
	if conn == nil {
		return fmt.Errorf("shardrpc: worker %d is down", c.idx)
	}
	seq := c.seq.Add(1)
	ca := &call{kind: callRPC, done: make(chan struct{}), want: ftBurstAck}
	c.mu.Lock()
	c.pend[seq] = ca
	c.mu.Unlock()
	go func() {
		select {
		case <-ca.done:
		case <-time.After(c.cfg.AckTimeout * time.Duration(c.cfg.Retries+1)):
			if c.take(seq) != nil {
				c.die(c.generation(), fmt.Errorf("shardrpc: worker %d never acked burst", c.idx))
			}
		}
	}()
	if err := conn.WriteFrame(ftBurst, 0, seq, payload); err != nil {
		c.die(c.generation(), err)
		return err
	}
	return nil
}

// flush runs the barrier RPC and returns the worker's post-barrier epoch.
func (c *client) flush() (uint64, error) {
	ca, err := c.rpc(c.controlConn(), ftFlush, 0, nil, ftFlushAck)
	if err != nil {
		return 0, err
	}
	if len(ca.payload) != 8 {
		return 0, fmt.Errorf("shardrpc: worker %d flush ack is %d bytes", c.idx, len(ca.payload))
	}
	return getU64(ca.payload, 0), nil
}

func (c *client) drain() error {
	_, err := c.rpc(c.controlConn(), ftDrain, 0, nil, ftDrainAck)
	return err
}

func (c *client) stats() (engine.Stats, error) {
	ca, err := c.rpc(c.controlConn(), ftStats, 0, nil, ftStatsAck)
	if err != nil {
		return engine.Stats{}, err
	}
	return decodeStats(ca.payload)
}

func (c *client) ping() error {
	_, err := c.rpc(c.controlConn(), ftPing, 0, nil, ftPong)
	return err
}

// close tears the client down (used at coordinator shutdown; not a
// worker death).
func (c *client) close() {
	c.die(c.generation(), fmt.Errorf("shardrpc: coordinator closed"))
}
