package shardrpc

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
	"rbpc/internal/topology"
)

// pipeFarm runs a full worker fleet in-process over net.Pipe — the same
// transport the chaos harness drives. Dial hands the coordinator one end
// and serves the other on a fresh goroutine, exactly like a socket
// accept loop would.
type pipeFarm struct {
	workers []*Worker
	mu      sync.Mutex
	dead    map[int]bool
}

func newPipeFarm(t testing.TB, p rbpc.Provision, cfg Config) *pipeFarm {
	t.Helper()
	f := &pipeFarm{workers: make([]*Worker, cfg.Shards), dead: make(map[int]bool)}
	for i := 0; i < cfg.Shards; i++ {
		w, err := NewWorker(p, i, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.workers[i] = w
		t.Cleanup(w.Close)
	}
	return f
}

func (f *pipeFarm) dial(i int) (net.Conn, error) {
	f.mu.Lock()
	dead := f.dead[i]
	w := f.workers[i]
	f.mu.Unlock()
	if dead {
		return nil, net.ErrClosed
	}
	cc, wc := net.Pipe()
	go w.ServeConn(wc)
	return cc, nil
}

// kill simulates a worker-process crash: new dials are refused and the
// live control pipe is severed, which the coordinator's reader observes
// as an immediate connection death.
func (f *pipeFarm) kill(i int) {
	f.mu.Lock()
	f.dead[i] = true
	w := f.workers[i]
	f.mu.Unlock()
	if c := w.control.Load(); c != nil {
		c.Close()
	}
}

func (f *pipeFarm) revive(i int) {
	f.mu.Lock()
	f.dead[i] = false
	f.mu.Unlock()
}

func testConfig(f *pipeFarm, shards int) Config {
	return Config{
		Shards:      shards,
		Dial:        f.dial,
		AckTimeout:  2 * time.Second,
		DialTimeout: 100 * time.Millisecond,
		DialBudget:  2 * time.Second,
		HealthEvery: -1, // deterministic tests drive liveness themselves
	}
}

func buildProvision(t testing.TB, n int, seed int64) rbpc.Provision {
	t.Helper()
	g := topology.Waxman(n, 0.8, 0.5, seed)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys.Export()
}

// TestProcMatchesInProcess drives the process-mode coordinator and an
// in-process shard.Coordinator through identical churn and asserts
// bit-identical serving: every pair's routability, cost bits, and
// component paths agree after every flush, and the merged views agree on
// the failed-set.
func TestProcMatchesInProcess(t *testing.T) {
	const shards = 3
	p := buildProvision(t, 16, 11)
	farm := newPipeFarm(t, p, Config{Shards: shards})
	cfg := testConfig(farm, shards)
	proc, err := NewCoordinator(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()
	ref, err := shard.New(p, shard.Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	n := p.Graph.Order()
	check := func(tag string) {
		t.Helper()
		pv, ok := proc.View()
		if !ok {
			t.Fatalf("%s: process view torn", tag)
		}
		rv, ok := ref.View()
		if !ok {
			t.Fatalf("%s: reference view torn", tag)
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				w, g := rv.Route(src, dst), pv.Route(src, dst)
				if (w == nil) != (g == nil) {
					t.Fatalf("%s: pair %d->%d routable %v, process %v", tag, s, d, w != nil, g != nil)
				}
				if w == nil {
					continue
				}
				if math.Float64bits(w.Cost) != math.Float64bits(g.Cost) {
					t.Fatalf("%s: pair %d->%d cost bits diverge", tag, s, d)
				}
				if len(w.LSPs) != len(g.LSPs) {
					t.Fatalf("%s: pair %d->%d component count %d vs %d", tag, s, d, len(w.LSPs), len(g.LSPs))
				}
				for i := range w.LSPs {
					if !w.LSPs[i].Path.Equal(g.LSPs[i].Path) {
						t.Fatalf("%s: pair %d->%d component %d diverges", tag, s, d, i)
					}
				}
			}
		}
	}

	check("pristine")
	churn := []struct {
		repair bool
		edge   graph.EdgeID
	}{
		{false, 2}, {false, 7}, {true, 2}, {false, 11}, {false, 3}, {true, 7}, {true, 11},
	}
	for _, ev := range churn {
		if ev.repair {
			proc.Repair(ev.edge)
			ref.Repair(ev.edge)
		} else {
			proc.Fail(ev.edge)
			ref.Fail(ev.edge)
		}
		proc.Flush()
		ref.Flush()
		check("churn")
	}

	// Synchronous single queries agree with the view too (and carry the
	// answering epoch + failed-set on the wire).
	for s := 0; s < n; s++ {
		src := graph.NodeID(s)
		if !proc.dec.Materialized(src) {
			continue
		}
		dst := graph.NodeID((s + 1) % n)
		if src == dst {
			continue
		}
		ans, err := proc.RemoteQuery(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Query(src, dst)
		if (want.Route == nil) != (ans.Route == nil) {
			t.Fatalf("remote query %d->%d routable mismatch", src, dst)
		}
		if want.Route != nil &&
			math.Float64bits(want.Route.Cost) != math.Float64bits(ans.Route.Cost) {
			t.Fatalf("remote query %d->%d cost bits mismatch", src, dst)
		}
	}
}

// TestProcSubmitBatchAndStats pushes async batches through the wire and
// checks the merged stats account them: accepted queries settle into
// Queries (+ Unroutable consistency) after Drain.
func TestProcSubmitBatchAndStats(t *testing.T) {
	const shards = 2
	p := buildProvision(t, 12, 3)
	farm := newPipeFarm(t, p, Config{Shards: shards})
	proc, err := NewCoordinator(p, testConfig(farm, shards))
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()

	n := p.Graph.Order()
	var pairs []rbpc.Pair
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				pairs = append(pairs, rbpc.Pair{Src: graph.NodeID(s), Dst: graph.NodeID(d)})
			}
		}
	}
	accepted := proc.SubmitBatch(pairs)
	if accepted == 0 {
		t.Fatal("no queries accepted")
	}
	proc.Drain()
	st := proc.Stats()
	if st.Queries < int64(accepted) {
		t.Fatalf("stats count %d queries, %d were accepted", st.Queries, accepted)
	}
	if st.Shards != shards {
		t.Fatalf("stats report %d shards", st.Shards)
	}
	if st.QueryLatency.Count < int64(accepted) {
		t.Fatalf("latency histogram holds %d samples, %d queries were accepted", st.QueryLatency.Count, accepted)
	}
}

// TestProcWorkerCrashDivertsAndReattaches kills one worker, proves its
// sources keep answering through the cold tier (routable pairs stay
// routable, with the current failed-set honored), then reattaches a
// replacement and proves full bit-identical service resumes, including
// the replayed failed-set.
func TestProcWorkerCrashDivertsAndReattaches(t *testing.T) {
	const shards = 2
	p := buildProvision(t, 14, 21)
	farm := newPipeFarm(t, p, Config{Shards: shards})
	cfg := testConfig(farm, shards)
	cfg.AckTimeout = 200 * time.Millisecond
	cfg.Retries = 1
	proc, err := NewCoordinator(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()

	ed := graph.EdgeID(5)
	proc.Fail(ed)
	proc.Flush()

	const victim = 0
	farm.kill(victim)
	// The severed control pipe kills the reader immediately.
	deadline := time.Now().Add(2 * time.Second)
	for proc.Alive(victim) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if proc.Alive(victim) {
		t.Fatal("worker never marked dead after its control connection died")
	}
	if _, ok := proc.View(); ok {
		t.Fatal("view claims consistency with a dead worker")
	}

	// Victim-owned sources divert to the cold tier and still answer under
	// the current failed-set.
	n := p.Graph.Order()
	served := 0
	for s := 0; s < n && served < 4; s++ {
		src := graph.NodeID(s)
		if proc.ring.Owner(src) != victim || !proc.dec.Materialized(src) {
			continue
		}
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			res := proc.Query(src, graph.NodeID(d))
			if res.Route != nil {
				served++
				if len(res.Snap.Failed()) != 1 || res.Snap.Failed()[0] != ed {
					t.Fatalf("cold answer served under failed-set %v, want [%d]", res.Snap.Failed(), ed)
				}
				break
			}
		}
	}
	if served == 0 {
		t.Fatal("no victim-owned pair answered through the cold tier")
	}
	if st := proc.Stats(); st.Cold.Queries == 0 {
		t.Fatal("cold tier shows no diverted queries")
	}

	// Replacement attaches: fresh worker, failed-set replayed, full
	// service resumes bit-identically to an in-process reference.
	farm.revive(victim)
	if err := proc.Reattach(victim); err != nil {
		t.Fatal(err)
	}
	if !proc.Alive(victim) {
		t.Fatal("worker not alive after reattach")
	}
	pv, ok := proc.View()
	if !ok {
		t.Fatal("view torn after reattach")
	}
	if f := pv.Shard(victim).Failed(); len(f) != 1 || f[0] != ed {
		t.Fatalf("reattached worker serves failed-set %v, want [%d]", f, ed)
	}
	ref, err := shard.New(p, shard.Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.Fail(ed)
	ref.Flush()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := graph.NodeID(s), graph.NodeID(d)
			w, g := ref.Query(src, dst).Route, pv.Route(src, dst)
			if w == nil && g == nil {
				continue
			}
			// Cold-tier reference answers have no view entry; compare only
			// materialized rows.
			if !proc.dec.Materialized(src) {
				continue
			}
			if (w == nil) != (g == nil) ||
				(w != nil && math.Float64bits(w.Cost) != math.Float64bits(g.Cost)) {
				t.Fatalf("pair %d->%d diverges after reattach", s, d)
			}
		}
	}
}

// TestProcTornFrameCaught arms the torn-frame fault and proves the
// transport detects and drops the corrupted burst (torn counter), the
// victim worker silently misses the event, and the coordinator's view
// refuses to merge the diverged replicas.
func TestProcTornFrameCaught(t *testing.T) {
	const shards = 2
	p := buildProvision(t, 12, 9)
	farm := newPipeFarm(t, p, Config{Shards: shards})
	cfg := testConfig(farm, shards)
	cfg.Fault = FaultTornFrame
	proc, err := NewCoordinator(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()

	proc.Fail(3)
	proc.Flush()

	if _, ok := proc.View(); ok {
		t.Fatal("view merged despite a torn burst frame")
	}
	rep := proc.Replica(0)
	if len(rep.Failed()) != 0 {
		t.Fatalf("worker 0 replica knows failed-set %v despite torn burst", rep.Failed())
	}
	if rep := proc.Replica(1); len(rep.Failed()) != 1 {
		t.Fatalf("worker 1 replica failed-set %v, want one edge", rep.Failed())
	}
	tornTotal := int64(0)
	for _, w := range farm.workers {
		if c := w.control.Load(); c != nil {
			tornTotal += c.Torn()
		}
	}
	if tornTotal != 1 {
		t.Fatalf("worker side dropped %d torn frames, want exactly 1", tornTotal)
	}
}

// TestProcContractMismatchRejected proves the hello handshake refuses a
// worker built against a different ring.
func TestProcContractMismatchRejected(t *testing.T) {
	p := buildProvision(t, 10, 4)
	wrong, err := NewWorker(p, 0, Config{Shards: 2, VNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	dial := func(int) (net.Conn, error) {
		cc, wc := net.Pipe()
		go wrong.ServeConn(wc)
		return cc, nil
	}
	_, err = NewCoordinator(p, Config{
		Shards: 2, Dial: dial,
		DialTimeout: 50 * time.Millisecond, DialBudget: 200 * time.Millisecond,
		HealthEvery: -1,
	})
	if err == nil {
		t.Fatal("coordinator accepted a worker with a different vnode count")
	}
}

// TestProcFlushBarrierOrdersReplicas hammers the burst→flush→view cycle:
// after every flush the merged view must reflect exactly the events sent
// before it (snapshot frames precede flush acks on the control
// connection).
func TestProcFlushBarrierOrdersReplicas(t *testing.T) {
	const shards = 3
	p := buildProvision(t, 12, 6)
	farm := newPipeFarm(t, p, Config{Shards: shards})
	proc, err := NewCoordinator(p, testConfig(farm, shards))
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Close()

	model := map[graph.EdgeID]bool{}
	edges := []graph.EdgeID{1, 4, 9, 4, 1, 2, 9, 2}
	for _, ed := range edges {
		if model[ed] {
			proc.Repair(ed)
			delete(model, ed)
		} else {
			proc.Fail(ed)
			model[ed] = true
		}
		proc.Flush()
		v, ok := proc.View()
		if !ok {
			t.Fatal("torn view immediately after flush")
		}
		got := v.Shard(0).Failed()
		if len(got) != len(model) {
			t.Fatalf("view failed-set %v, model has %d edges", got, len(model))
		}
		for _, e := range got {
			if !model[e] {
				t.Fatalf("view failed-set %v contains %d not in model", got, e)
			}
		}
	}
}
