// Package shardrpc moves the shard coordinator's workers out of process:
// the same consistent-hash partition internal/shard serves from one
// address space, served by N worker processes over a length-prefixed
// binary protocol on Unix domain sockets. The ring, the slice each worker
// owns (shard.SliceProvision), and the delta-row engines are byte-for-byte
// the ones the in-process coordinator builds — the transport only carries
// the traffic between them, so a process-mode deployment answers
// bit-identically to `-shards N` (the chaos lockstep oracle proves it over
// a pipe transport).
//
// Wire shape. Every frame is a fixed 20-byte header (magic, payload
// length, sequence, type, flags, FNV-1a payload checksum) followed by the
// payload, all little-endian, hand-rolled — no reflection, no JSON, and
// reused buffers on both ends. The hot frames (query batches out, answer
// batches back) encode and decode through fixed-offset //rbpc:hotpath
// functions: zero allocations per query in the steady state, verified by
// allocprove. Cold frames (bursts, snapshots, stats) take the ordinary
// append path.
//
// Traffic. Fail/repair bursts broadcast to every worker on its control
// connection; workers push each published epoch back as an overlay-only
// snapshot frame (engine.Snapshot.AppendWire — the canonical forest is
// rebuilt once per process from the topology and never shipped), so the
// coordinator's View() merges decoded replicas exactly the way the
// in-process coordinator merges atomic snapshot pointers, still refusing
// torn (disagreeing) epochs. Flush is an explicit barrier frame: the
// worker's engine taps OnEpoch on its writer goroutine, writing the
// snapshot frame on the control connection before the flush ack, so a
// flush ack guarantees the coordinator's replica is current. Query
// batches fan out one frame per owning worker per batch and answers
// demultiplex by sequence number over per-worker connection pools.
//
// Failure. Per-worker health checks, a configurable dial/ack timeout
// with bounded retry, and crash diversion: while a worker is down its
// sources are re-solved through the Corollary-4 cold tier against a
// detached snapshot of the coordinator's failed-set model, until a
// replacement process attaches and is resynced by replaying the current
// failed-set as a burst.
package shardrpc

import (
	"fmt"
	"net"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/shard"
)

// Fault selects a deliberate transport defect for the chaos harness.
// Production uses FaultNone.
type Fault int

const (
	// FaultNone is the correct transport.
	FaultNone Fault = iota
	// FaultTornFrame corrupts one burst frame on worker 0's control
	// connection after the checksum is computed — the torn frame is
	// dropped by the receiver, the worker silently misses churn, and its
	// replica's failed-set disagrees at the next flush. The conformance
	// oracle must catch the divergence.
	FaultTornFrame
)

// String names the fault the way the chaos corpus spells it.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTornFrame:
		return "torn-frame"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Faults lists the injectable transport faults.
func Faults() []Fault { return []Fault{FaultTornFrame} }

// ParseFault resolves a fault name (as written by String).
func ParseFault(name string) (Fault, error) {
	switch name {
	case "none", "":
		return FaultNone, nil
	case "torn-frame":
		return FaultTornFrame, nil
	}
	return FaultNone, fmt.Errorf("shardrpc: unknown fault %q", name)
}

// Dialer opens a transport connection to one worker. The serve command
// dials the worker's Unix socket; the chaos harness hands back one end of
// a net.Pipe.
type Dialer func(worker int) (net.Conn, error)

// Config tunes the process-mode coordinator and its workers. Shards,
// VNodes, and RingSeed are the routing contract — every process of a
// deployment must agree, and the hello handshake rejects a worker built
// against different parameters.
type Config struct {
	// Shards is the worker count (required, >= 1).
	Shards int
	// VNodes / RingSeed parameterize the consistent-hash ring (defaults
	// shard.DefaultVNodes / shard.DefaultRingSeed).
	VNodes   int
	RingSeed uint64
	// Engine is the per-worker engine template; DeltaRows is forced on
	// (the snapshot wire format only ships overlays).
	Engine engine.Config
	// Cold tunes the coordinator-side on-demand tier, which answers both
	// never-materialized sources and the sources of a crashed worker.
	Cold shard.ColdConfig
	// Dial opens a connection to a worker (required on the coordinator).
	Dial Dialer
	// DialTimeout bounds one dial attempt; DialBudget bounds the whole
	// reattach loop for a replacement worker. Defaults 2s / 30s.
	DialTimeout time.Duration
	DialBudget  time.Duration
	// AckTimeout bounds one RPC round trip; an RPC is retried up to
	// Retries times before the worker is declared dead. Defaults 5s / 2.
	AckTimeout time.Duration
	Retries    int
	// Conns is the query-connection pool size per worker, in addition to
	// the control connection (default 2).
	Conns int
	// HealthEvery is the ping cadence per worker (default 1s; <0
	// disables, which the deterministic chaos harness does).
	HealthEvery time.Duration
	// Inflight bounds un-acked query batches per worker; batches beyond
	// it are shed at submit (counted dropped). Default 256.
	Inflight int
	// OnEpoch, when non-nil, observes every decoded replica snapshot in
	// arrival order (the chaos flush oracle taps it).
	OnEpoch func(worker int, snap *engine.Snapshot)
	// Fault injects a transport defect (chaos harness only).
	Fault Fault
}

func (cfg Config) withDefaults() Config {
	if cfg.VNodes == 0 {
		cfg.VNodes = shard.DefaultVNodes
	}
	if cfg.RingSeed == 0 {
		cfg.RingSeed = shard.DefaultRingSeed
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.DialBudget <= 0 {
		cfg.DialBudget = 30 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 256
	}
	return cfg
}
