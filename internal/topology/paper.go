package topology

import (
	"fmt"
	"math"
	"math/rand"

	"rbpc/internal/graph"
)

// The paper evaluates on three topologies (its Table 1):
//
//	ISP       ~200 nodes   ~400 links   avg degree 3.56   OSPF weights
//	Internet  40,377 nodes 101,659 links avg degree 5.035  hop count
//	AS Graph  4,746 nodes  9,878 links   avg degree 4.16   hop count
//
// The originals are proprietary (ISP) or built from 2000-era measurement
// archives (NLANR AS graph, Govindan-Tangmunarunkit router map) that are no
// longer distributable, so this package generates synthetic stand-ins that
// match the published statistics: node and link counts, average degree,
// the heavy-tailed degree law of the measured graphs, and — for the ISP —
// a capacity-derived symmetric integral weight assignment.

// ISPConfig parameterizes the hierarchical ISP generator.
type ISPConfig struct {
	Core        int   // routers in the backbone mesh
	Agg         int   // aggregation routers, dual-homed to adjacent core routers
	Access      int   // access routers, single- or dual-homed to aggregation
	CoreOffsets []int // circulant offsets of the core mesh (e.g. {1,2})
	AggLateral  int   // lateral agg-agg links
	DualAccess  int   // how many access routers get a second uplink
	WCore       float64
	WAgg        float64
	WAccess     float64
	// WJitter adds a uniform integral jitter in [0, WJitter] to every
	// link weight. Real OSPF weight assignments are capacity-derived but
	// not perfectly uniform (mixed link speeds within a tier), which
	// keeps equal-cost ties rare; the paper's weighted ISP shows only
	// 16.5% of failures leaving an equal-cost alternative.
	WJitter int
}

// DefaultISP matches the paper's ISP row: 200 nodes, 356 links, average
// degree 3.56.
func DefaultISP() ISPConfig {
	return ISPConfig{
		Core: 12, Agg: 48, Access: 140,
		CoreOffsets: []int{1, 2}, AggLateral: 0, DualAccess: 72,
		WCore: 1, WAgg: 3, WAccess: 10, WJitter: 2,
	}
}

// ISP generates a three-tier hierarchical ISP backbone with the
// survivability structure production networks use (and that the paper's
// Table 3 measures: ~90% of links bypassable in 2 hops):
//
//   - The core is a circulant mesh (ring plus skip chords), so every core
//     link has a 2-hop bypass.
//   - Aggregation routers come in pairs: both members dual-home to the
//     same adjacent core routers and a lateral link joins them, so every
//     uplink and every lateral has a 2-hop bypass.
//   - Dual-homed access routers attach to the two members of one
//     aggregation pair, so their uplinks bypass in 2 hops over the
//     lateral; the remainder are single-homed (their uplink is a bridge,
//     as real stub links are).
//
// Link weights follow the common OSPF practice the paper describes
// (weight proportional to inverse capacity, symmetric): core links are
// cheapest, access links dearest. The graph is connected by construction.
func ISP(cfg ISPConfig, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Core + cfg.Agg + cfg.Access
	g := graph.New(n)
	jitter := func(w float64) float64 {
		if cfg.WJitter <= 0 {
			return w
		}
		return w + float64(rng.Intn(cfg.WJitter+1))
	}
	coreID := func(i int) graph.NodeID { return graph.NodeID(i) }
	aggID := func(i int) graph.NodeID { return graph.NodeID(cfg.Core + i) }
	accessID := func(i int) graph.NodeID { return graph.NodeID(cfg.Core + cfg.Agg + i) }

	for i := 0; i < cfg.Core; i++ {
		g.SetName(coreID(i), "core")
	}

	// Core circulant mesh.
	offsets := cfg.CoreOffsets
	if len(offsets) == 0 {
		offsets = []int{1}
	}
	for _, off := range offsets {
		for i := 0; i < cfg.Core; i++ {
			j := (i + off) % cfg.Core
			if _, dup := g.FindEdge(coreID(i), coreID(j)); !dup && i != j {
				g.AddEdge(coreID(i), coreID(j), jitter(cfg.WCore))
			}
		}
	}

	// Aggregation routers in pairs: shared adjacent core parents plus a
	// lateral link. An odd trailing router is homed without a partner.
	pairs := cfg.Agg / 2
	for p := 0; p < pairs; p++ {
		c := rng.Intn(cfg.Core)
		for _, i := range []int{2 * p, 2*p + 1} {
			g.SetName(aggID(i), "agg")
			g.AddEdge(aggID(i), coreID(c), jitter(cfg.WAgg))
			g.AddEdge(aggID(i), coreID((c+1)%cfg.Core), jitter(cfg.WAgg))
		}
		g.AddEdge(aggID(2*p), aggID(2*p+1), jitter(cfg.WAgg))
	}
	if cfg.Agg%2 == 1 {
		i := cfg.Agg - 1
		c := rng.Intn(cfg.Core)
		g.SetName(aggID(i), "agg")
		g.AddEdge(aggID(i), coreID(c), jitter(cfg.WAgg))
		g.AddEdge(aggID(i), coreID((c+1)%cfg.Core), jitter(cfg.WAgg))
	}

	// Extra lateral agg-agg links beyond the pair laterals.
	added := 0
	for added < cfg.AggLateral && cfg.Agg >= 3 {
		u, v := rng.Intn(cfg.Agg), rng.Intn(cfg.Agg)
		if u == v {
			continue
		}
		if _, dup := g.FindEdge(aggID(u), aggID(v)); dup {
			continue
		}
		g.AddEdge(aggID(u), aggID(v), jitter(cfg.WAgg))
		added++
	}

	// Access routers: one uplink each; the dual-homed ones attach to both
	// members of one aggregation pair.
	dual := make([]bool, cfg.Access)
	for i, p := range rng.Perm(cfg.Access) {
		if i < cfg.DualAccess {
			dual[p] = true
		}
	}
	for i := 0; i < cfg.Access; i++ {
		g.SetName(accessID(i), "access")
		if dual[i] && pairs > 0 {
			p := rng.Intn(pairs)
			g.AddEdge(accessID(i), aggID(2*p), jitter(cfg.WAccess))
			g.AddEdge(accessID(i), aggID(2*p+1), jitter(cfg.WAccess))
			continue
		}
		g.AddEdge(accessID(i), aggID(rng.Intn(cfg.Agg)), jitter(cfg.WAccess))
	}
	return g
}

// PaperISP returns the weighted ISP stand-in at full paper scale.
func PaperISP(seed int64) *graph.Graph { return ISP(DefaultISP(), seed) }

// UnitWeightCopy returns a copy of g with every edge weight replaced by 1
// (the paper's "ISP Unweighted" row: same topology, hop-count routing).
func UnitWeightCopy(g *graph.Graph) *graph.Graph {
	out := graph.New(g.Order())
	for _, e := range g.Edges() {
		out.AddEdge(e.U, e.V, 1)
	}
	return out
}

// AsymmetricCopy converts an undirected graph into a directed one with
// independently jittered per-direction weights: each undirected edge
// becomes two arcs whose weights are the original plus independent
// integral jitter in [0, jitter].
//
// This models the paper's closing remark: traffic-engineering techniques
// (Fortz-Thorup weight optimization) "can generally assign asymmetric
// link weights", and the restoration theorems do not survive the
// transition to directed graphs. eval.Asymmetry measures how often the
// k+1 bound still holds empirically.
//
// Arc 2i is the forward direction of undirected edge i, arc 2i+1 the
// reverse.
func AsymmetricCopy(g *graph.Graph, seed int64, jitter int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := graph.NewDirected(g.Order())
	for _, e := range g.Edges() {
		j1, j2 := 0, 0
		if jitter > 0 {
			j1, j2 = rng.Intn(jitter+1), rng.Intn(jitter+1)
		}
		out.AddEdge(e.U, e.V, e.W+float64(j1))
		out.AddEdge(e.V, e.U, e.W+float64(j2))
	}
	return out
}

// scaled returns round(full * scale) with a floor.
func scaled(full int, scale float64, floor int) int {
	v := int(math.Round(float64(full) * scale))
	if v < floor {
		return floor
	}
	return v
}

// PaperAS returns the AS-graph stand-in: a power-law graph with the
// paper's node/link counts scaled by scale (1.0 = full 4,746 nodes and
// 9,878 links). Weights are 1: inter-AS routing is hop-count.
func PaperAS(seed int64, scale float64) *graph.Graph {
	n := scaled(4746, scale, 60)
	m := scaled(9878, scale, 2*60)
	return PowerLawExtra(n, 2, m, seed)
}

// PaperInternet returns the Internet router-graph stand-in at the paper's
// counts scaled by scale (1.0 = full 40,377 nodes and 101,659 links).
// Weights are 1.
func PaperInternet(seed int64, scale float64) *graph.Graph {
	n := scaled(40377, scale, 80)
	m := scaled(101659, scale, 2*80)
	return PowerLawExtra(n, 2, m, seed)
}

// Build resolves a stand-in topology by name — the one spelling shared by
// the serving commands and the shardrpc worker processes, which must
// rebuild the coordinator's exact graph from (kind, scale, seed) alone.
// isp ignores scale; waxman maps scale 1.0 to 400 nodes.
func Build(kind string, scale float64, seed int64) (*graph.Graph, error) {
	switch kind {
	case "as":
		return PaperAS(seed, scale), nil
	case "isp":
		return PaperISP(seed), nil
	case "internet":
		return PaperInternet(seed, scale), nil
	case "waxman":
		n := int(400 * scale)
		if n < 16 {
			n = 16
		}
		return Waxman(n, 0.8, 0.5, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want as, isp, internet, or waxman)", kind)
	}
}
