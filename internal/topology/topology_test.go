package topology

import (
	"math"
	"testing"

	"rbpc/internal/graph"
)

func TestLineRingGrid(t *testing.T) {
	if g := Line(5); g.Order() != 5 || g.Size() != 4 {
		t.Errorf("Line(5): %d/%d", g.Order(), g.Size())
	}
	if g := Ring(6); g.Order() != 6 || g.Size() != 6 || !graph.Connected(g) {
		t.Errorf("Ring(6) wrong")
	}
	g := Grid(3, 4)
	if g.Order() != 12 || g.Size() != 3*3+2*4 || !graph.Connected(g) {
		t.Errorf("Grid(3,4): %d nodes %d edges", g.Order(), g.Size())
	}
	if g := Complete(5); g.Size() != 10 {
		t.Errorf("Complete(5): %d edges", g.Size())
	}
}

func TestRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) did not panic")
		}
	}()
	Ring(2)
}

func TestRandomTreeConnected(t *testing.T) {
	g := RandomTree(50, 1)
	if g.Size() != 49 || !graph.Connected(g) {
		t.Errorf("RandomTree: %d edges connected=%v", g.Size(), graph.Connected(g))
	}
}

func TestWaxmanConnectedAndDeterministic(t *testing.T) {
	a := Waxman(80, 0.4, 0.3, 42)
	b := Waxman(80, 0.4, 0.3, 42)
	if a.Size() != b.Size() {
		t.Fatalf("Waxman not deterministic: %d vs %d edges", a.Size(), b.Size())
	}
	if !graph.Connected(a) {
		t.Error("Waxman graph disconnected")
	}
	if a.Size() < 79 {
		t.Errorf("Waxman suspiciously sparse: %d edges", a.Size())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(300, 2, 7)
	if g.Order() != 300 {
		t.Fatalf("order %d", g.Order())
	}
	if !graph.Connected(g) {
		t.Error("BA graph disconnected")
	}
	// Edges: clique(3) + 2 per remaining node = 3 + 2*297 = 597.
	if g.Size() != 597 {
		t.Errorf("BA edges = %d, want 597", g.Size())
	}
	// Heavy tail: max degree far above average.
	s := graph.Summarize(g)
	if s.MaxDegree < 3*int(s.AvgDegree) {
		t.Errorf("degree distribution not heavy-tailed: max %d avg %.1f", s.MaxDegree, s.AvgDegree)
	}
	// Determinism.
	h := BarabasiAlbert(300, 2, 7)
	for i, e := range g.Edges() {
		he := h.Edge(graph.EdgeID(i))
		if he.U != e.U || he.V != e.V {
			t.Fatal("BA not deterministic")
		}
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for _, f := range []func(){func() { BarabasiAlbert(5, 0, 1) }, func() { BarabasiAlbert(2, 2, 1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestPowerLawExtraHitsTarget(t *testing.T) {
	g := PowerLawExtra(200, 2, 500, 3)
	if g.Size() != 500 {
		t.Errorf("PowerLawExtra edges = %d, want 500", g.Size())
	}
	if !graph.Connected(g) {
		t.Error("disconnected")
	}
}

func TestPaperISPMatchesTable1(t *testing.T) {
	g := PaperISP(1)
	s := graph.Summarize(g)
	if s.Nodes != 200 {
		t.Errorf("ISP nodes = %d, want 200", s.Nodes)
	}
	if s.Links < 340 || s.Links > 420 {
		t.Errorf("ISP links = %d, want ~356-400", s.Links)
	}
	if math.Abs(s.AvgDegree-3.56) > 0.5 {
		t.Errorf("ISP avg degree = %.2f, want ~3.56", s.AvgDegree)
	}
	if !graph.Connected(g) {
		t.Error("ISP disconnected")
	}
	if g.UnitWeights() {
		t.Error("ISP should carry OSPF-style weights")
	}
	// Weights must be integral for exact cost arithmetic.
	for _, e := range g.Edges() {
		if e.W != math.Trunc(e.W) {
			t.Fatalf("non-integral weight %v", e.W)
		}
	}
}

func TestUnitWeightCopy(t *testing.T) {
	g := PaperISP(2)
	u := UnitWeightCopy(g)
	if !u.UnitWeights() || u.Size() != g.Size() || u.Order() != g.Order() {
		t.Error("UnitWeightCopy wrong")
	}
	for i, e := range g.Edges() {
		ue := u.Edge(graph.EdgeID(i))
		if ue.U != e.U || ue.V != e.V || ue.W != 1 {
			t.Fatal("copy mismatch")
		}
	}
}

func TestPaperASScaled(t *testing.T) {
	g := PaperAS(5, 0.05) // ~237 nodes, ~494 links
	s := graph.Summarize(g)
	if s.Nodes < 200 || s.Nodes > 280 {
		t.Errorf("scaled AS nodes = %d", s.Nodes)
	}
	if math.Abs(s.AvgDegree-4.16) > 0.8 {
		t.Errorf("AS avg degree = %.2f, want ~4.16", s.AvgDegree)
	}
	if !graph.Connected(g) {
		t.Error("AS stand-in disconnected")
	}
}

func TestPaperInternetScaled(t *testing.T) {
	g := PaperInternet(5, 0.01) // ~404 nodes
	s := graph.Summarize(g)
	if s.Nodes < 350 || s.Nodes > 450 {
		t.Errorf("scaled Internet nodes = %d", s.Nodes)
	}
	if math.Abs(s.AvgDegree-5.03) > 1.0 {
		t.Errorf("Internet avg degree = %.2f, want ~5.03", s.AvgDegree)
	}
	if !graph.Connected(g) {
		t.Error("Internet stand-in disconnected")
	}
}

func TestPaperScaleFloors(t *testing.T) {
	g := PaperAS(1, 0.0001)
	if g.Order() < 60 {
		t.Errorf("scale floor not applied: %d nodes", g.Order())
	}
}

func TestCombStructure(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		gd := Comb(k)
		if len(gd.FailedEdges) != k {
			t.Fatalf("Comb(%d): %d failed edges", k, len(gd.FailedEdges))
		}
		if gd.G.Order() != (2*k+1)+k {
			t.Errorf("Comb(%d): %d nodes", k, gd.G.Order())
		}
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		if !graph.Connected(fv) {
			t.Errorf("Comb(%d) disconnected after designed failures", k)
		}
		if !gd.G.UnitWeights() {
			t.Errorf("Comb must be unweighted")
		}
	}
}

func TestWeightedTightStructure(t *testing.T) {
	for _, k := range []int{1, 3} {
		gd := WeightedTight(k)
		if len(gd.FailedEdges) != k {
			t.Fatalf("WeightedTight(%d): %d failed edges", k, len(gd.FailedEdges))
		}
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		if !graph.Connected(fv) {
			t.Errorf("WeightedTight(%d) disconnected after failures", k)
		}
	}
}

func TestStarOfPairsStructure(t *testing.T) {
	gd, hub := StarOfPairs(6)
	if gd.G.Degree(hub) != 7 {
		t.Errorf("hub degree = %d, want 7", gd.G.Degree(hub))
	}
	fv := graph.FailNodes(gd.G, hub)
	if !graph.Connected(fv) {
		t.Error("line should survive hub failure")
	}
}

func TestDirectedCounterexampleStructure(t *testing.T) {
	gd := DirectedCounterexample(6)
	if !gd.G.Directed() {
		t.Fatal("gadget must be directed")
	}
	fv := graph.Fail(gd.G, gd.FailedEdges, nil)
	reach := graph.ReachableFrom(fv, gd.S)
	found := false
	for _, v := range reach {
		if v == gd.T {
			found = true
		}
	}
	if !found {
		t.Error("t unreachable after highway failure")
	}
}

func TestParallelChain(t *testing.T) {
	g := ParallelChain(2)
	if g.Order() != 6 || g.Size() != 10 {
		t.Errorf("ParallelChain(2): %d/%d", g.Order(), g.Size())
	}
}

func TestFourCycle(t *testing.T) {
	if g := FourCycle(); g.Order() != 4 || g.Size() != 4 {
		t.Error("FourCycle wrong")
	}
}

func TestGadgetPanics(t *testing.T) {
	cases := []func(){
		func() { Comb(0) },
		func() { WeightedTight(0) },
		func() { StarOfPairs(2) },
		func() { DirectedCounterexample(2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestISPDeterministic(t *testing.T) {
	a, b := PaperISP(9), PaperISP(9)
	if a.Size() != b.Size() {
		t.Fatal("ISP generator not deterministic")
	}
	for i, e := range a.Edges() {
		be := b.Edge(graph.EdgeID(i))
		if be.U != e.U || be.V != e.V || be.W != e.W {
			t.Fatal("ISP generator not deterministic")
		}
	}
}
