package topology

// Tightness tests: the paper's figure constructions, checked against the
// exact decomposition machinery in internal/core. These are the executable
// versions of Figures 2, 3, 4 and 5.

import (
	"testing"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// TestTheorem1Tight: on the Comb gadget, after k failures the unique
// restoration path needs exactly k+1 shortest-path components — matching
// both Theorem 1's upper bound and Figure 2's lower bound.
func TestTheorem1Tight(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		gd := Comb(k)
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		rep, err := core.CheckTheorem1(gd.G, fv, gd.S, gd.T)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rep.Reachable {
			t.Fatalf("k=%d: pair disconnected", k)
		}
		if !rep.WithinBound {
			t.Errorf("k=%d: Theorem 1 bound violated: %+v", k, rep)
		}
		if rep.PathComps != k+1 {
			t.Errorf("k=%d: min components = %d, want exactly %d (tight)", k, rep.PathComps, k+1)
		}
	}
}

// TestTheorem2Tight: on the WeightedTight gadget, the restoration needs
// exactly k+1 shortest paths interleaved with exactly k bare edges, and
// fewer edges do not suffice — Figure 3.
func TestTheorem2Tight(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		gd := WeightedTight(k)
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		rep, err := core.CheckTheorem2(gd.G, fv, gd.S, gd.T)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !rep.Reachable || !rep.WithinBound {
			t.Fatalf("k=%d: %+v", k, rep)
		}
		if rep.PathComps != k+1 {
			t.Errorf("k=%d: path components = %d, want exactly %d", k, rep.PathComps, k+1)
		}
		// With only k-1 bare edges allowed, no decomposition exists.
		base := paths.NewAllShortest(gd.G)
		backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
		if !ok {
			t.Fatal("no backup path")
		}
		if got := core.MinPathComponents(base, backup, k-1); got != -1 {
			t.Errorf("k=%d: decomposition with %d edges exists (%d paths), want impossible", k, k-1, got)
		}
	}
}

// TestNodeFailureLowerBound: on the StarOfPairs gadget, a single router
// failure forces ~(n-2)/2 components — Figure 4's pathology.
func TestNodeFailureLowerBound(t *testing.T) {
	const m = 10
	gd, hub := StarOfPairs(m)
	fv := graph.FailNodes(gd.G, hub)
	backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
	if !ok {
		t.Fatal("line should survive")
	}
	if backup.Hops() != m {
		t.Fatalf("backup = %d hops, want the full line %d", backup.Hops(), m)
	}
	base := paths.NewAllShortest(gd.G)
	minComps := core.MinPathComponents(base, backup, 0)
	want := (m + 1) / 2 // pieces of <= 2 hops
	if minComps < want {
		t.Errorf("min components = %d, want >= %d", minComps, want)
	}
	// And the greedy decomposer achieves it exactly.
	dec := core.DecomposeGreedy(base, backup)
	if dec.Len() != minComps {
		t.Errorf("greedy = %d components, DP minimum = %d", dec.Len(), minComps)
	}
}

// TestDirectedCounterexample: on the directed gadget, a single failure
// needs far more than k+1 = 2 original shortest paths — Theorem 1 does not
// extend to directed graphs (Figure 5).
func TestDirectedCounterexample(t *testing.T) {
	const m = 9
	gd := DirectedCounterexample(m)
	fv := graph.Fail(gd.G, gd.FailedEdges, nil)
	backup, ok := spath.Compute(fv, gd.S).PathTo(gd.T)
	if !ok {
		t.Fatal("chain should survive highway failure")
	}
	if backup.Hops() != m {
		t.Fatalf("backup = %d hops, want %d (the chain)", backup.Hops(), m)
	}
	base := paths.NewAllShortest(gd.G)
	minComps := core.MinPathComponents(base, backup, 0)
	want := (m + 2) / 3 // pieces of <= 3 hops
	if minComps != want {
		t.Errorf("min components = %d, want %d", minComps, want)
	}
	if minComps <= 2 {
		t.Errorf("directed gadget did not violate the k+1 bound: %d components", minComps)
	}
}

// TestParallelChainBaseSetChoice reproduces the Theorem-3 discussion: on
// the parallel chain, the padded base set can be forced into 2k+1
// components, while a handcrafted base set restores any single failure
// with at most 2 components.
func TestParallelChainBaseSetChoice(t *testing.T) {
	const k = 3
	g := ParallelChain(k)
	// Pairs of parallel edges: between node i and i+1, edges 2i and 2i+1.
	// The padded-unique base set picks one edge per pair; fail the chosen
	// edge of every second pair (pairs 1, 3, 5 in the paper's indexing).
	unique := paths.NewUniqueShortest(g)
	n := g.Order()
	var failed []graph.EdgeID
	for pair := 1; pair < n-1; pair += 2 {
		chosen, ok := unique.Between(graph.NodeID(pair), graph.NodeID(pair+1))
		if !ok || chosen.Hops() != 1 {
			t.Fatalf("no 1-hop canonical path for pair %d", pair)
		}
		failed = append(failed, chosen.Edges[0])
	}
	if len(failed) != k {
		t.Fatalf("failed %d edges, want %d", len(failed), k)
	}
	fv := graph.Fail(g, failed, nil)

	pfv := spath.Padded(fv, spath.PaddingFor(g))
	backup, ok := spath.Compute(pfv, 0).PathTo(graph.NodeID(n - 1))
	if !ok {
		t.Fatal("chain disconnected")
	}
	dec := core.DecomposeGreedy(unique, backup)
	if dec.Len() != 2*k+1 {
		t.Errorf("padded base set: %d components, the discussion predicts exactly %d", dec.Len(), 2*k+1)
	}

	// Handcrafted alternative: for every pair of nodes (i, j), j > i+1,
	// a base path that uses the *second* edge out of i and the *first*
	// edge into j... here simply: include both parallel edges as base
	// paths plus, per pair of nodes, both "mixed" two-edge choices at the
	// ends. We emulate the paper's observation with an explicit set
	// containing every single edge: then any restoration is at most
	// backup.Hops() components, and for a single failure the sparse
	// decomposer finds at most 2 components when given paths that cross
	// the failure point using the surviving twin.
	handcrafted := paths.NewExplicit(g)
	for _, e := range g.Edges() {
		handcrafted.Add(paths.EdgePath(g, e.ID, e.U))
		handcrafted.Add(paths.EdgePath(g, e.ID, e.V))
	}
	// Long base paths: from node 0 rightwards always prefer the higher
	// edge ID (the twin the padded set did not choose for failed pairs).
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			p := graph.Path{Nodes: []graph.NodeID{graph.NodeID(i)}}
			for x := i; x < j; x++ {
				// Edges between x and x+1 are 2x and 2x+1; prefer 2x+1
				// except at the start where we prefer 2x.
				id := graph.EdgeID(2*x + 1)
				if x == i {
					id = graph.EdgeID(2 * x)
				}
				p.Nodes = append(p.Nodes, graph.NodeID(x+1))
				p.Edges = append(p.Edges, id)
			}
			handcrafted.Add(p)
		}
	}
	// Single failure of the first chosen edge: restoration needs at most
	// 2 components with the handcrafted set.
	single := graph.Fail(g, failed[:1], nil)
	dec2, ok := core.DecomposeSparse(handcrafted, single, 0, graph.NodeID(n-1))
	if !ok {
		t.Fatal("sparse failed")
	}
	if dec2.Len() > 2 {
		t.Errorf("handcrafted base set: %d components for single failure, want <= 2 (%v)", dec2.Len(), dec2)
	}
}
