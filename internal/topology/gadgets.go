package topology

import (
	"fmt"

	"rbpc/internal/graph"
)

// Gadget is a deterministic construction from one of the paper's figures:
// a graph together with the failure set and the (s, t) pair that exhibit
// the claimed behaviour.
type Gadget struct {
	G           *graph.Graph
	FailedEdges []graph.EdgeID
	S, T        graph.NodeID
}

// Comb builds the Figure-2 construction showing Theorem 1 is tight: an
// unweighted graph where, after the k returned edge failures, the unique
// surviving s-t path cannot be partitioned into fewer than k+1 original
// shortest paths.
//
// Layout: a spine x_0..x_{2k}; over each spine edge (x_{2i}, x_{2i+1})
// sits a tooth node T_i joined to both endpoints. The failures are exactly
// the k spine edges under teeth. A tooth top cannot be interior to any
// shortest path (the 2-hop detour over it competes with the direct spine
// edge), so the restored path must break at every tooth top: k interior
// break points, hence k+1 pieces.
func Comb(k int) Gadget {
	if k < 1 {
		panic(fmt.Sprintf("topology: Comb(%d) needs k >= 1", k))
	}
	spine := 2*k + 1
	g := graph.New(spine + k)
	tooth := func(i int) graph.NodeID { return graph.NodeID(spine + i) }
	var failed []graph.EdgeID
	for i := 0; i < spine-1; i++ {
		id := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
		if i%2 == 0 && i/2 < k {
			failed = append(failed, id)
		}
	}
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(2*i), tooth(i), 1)
		g.AddEdge(tooth(i), graph.NodeID(2*i+1), 1)
	}
	return Gadget{G: g, FailedEdges: failed, S: 0, T: graph.NodeID(spine - 1)}
}

// WeightedTight builds the Figure-3 construction showing Theorem 2 is
// tight: a weighted graph where, after the k returned failures, the new
// shortest path necessarily interleaves k+1 original shortest paths with k
// bare edges.
//
// Layout: a chain of k+1 unit edges separated by k parallel-edge pairs. In
// each pair the cheap edge (weight 2) fails and the dear edge (weight 3)
// survives. A dear edge participates in no original shortest path (its
// cheap twin is strictly shorter), so it can only be covered as a bare
// edge; the k+1 unit edges are the k+1 shortest-path components.
func WeightedTight(k int) Gadget {
	if k < 1 {
		panic(fmt.Sprintf("topology: WeightedTight(%d) needs k >= 1", k))
	}
	// Nodes: v_0 .. v_{2k+1}; unit edges (v_{2i}, v_{2i+1}); pairs between
	// (v_{2i+1}, v_{2i+2}).
	n := 2*k + 2
	g := graph.New(n)
	var failed []graph.EdgeID
	for i := 0; i <= k; i++ {
		g.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1), 1)
		if i < k {
			cheap := g.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2), 2)
			g.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2), 3) // dear twin
			failed = append(failed, cheap)
		}
	}
	return Gadget{G: g, FailedEdges: failed, S: 0, T: graph.NodeID(n - 1)}
}

// StarOfPairs builds the Figure-4 construction: a hub v adjacent to every
// node of a line w_0..w_{m}. Every non-adjacent pair is at distance 2 (via
// the hub), so when the hub fails, the unique surviving s-t path is the
// line, and any partition into original shortest paths needs at least
// ceil(m/2) ~ (n-2)/2 pieces. The failure here is the hub node, returned
// as Hub; FailedEdges is empty.
func StarOfPairs(m int) (Gadget, graph.NodeID) {
	if m < 3 {
		panic(fmt.Sprintf("topology: StarOfPairs(%d) needs m >= 3", m))
	}
	g := graph.New(m + 2)
	hub := graph.NodeID(m + 1)
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 0; i <= m; i++ {
		g.AddEdge(graph.NodeID(i), hub, 1)
	}
	return Gadget{G: g, S: 0, T: graph.NodeID(m)}, hub
}

// DirectedCounterexample builds a Figure-5-style directed gadget showing
// Theorem 1 fails on directed graphs: after the single returned edge
// failure, the new shortest s-t path needs Omega(m) original shortest
// paths, not 2.
//
// Layout: a directed chain s=c_0 -> c_1 -> ... -> c_m = t of unit edges,
// plus a "highway" a -> b with c_i -> a and b -> c_j arcs from and to every
// chain node (all unit). Any chain subpath of 4 or more hops is beaten by
// the 3-hop highway route, so original shortest paths along the chain have
// at most 3 hops; when the highway edge (a, b) fails, the chain is the
// unique s-t route and needs at least ceil(m/3) ~ (n-2)/3 pieces — the
// paper's Figure-5 bound.
func DirectedCounterexample(m int) Gadget {
	if m < 3 {
		panic(fmt.Sprintf("topology: DirectedCounterexample(%d) needs m >= 3", m))
	}
	// Nodes: chain 0..m, a = m+1, b = m+2.
	g := graph.NewDirected(m + 3)
	a := graph.NodeID(m + 1)
	b := graph.NodeID(m + 2)
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	highway := g.AddEdge(a, b, 1)
	for i := 0; i <= m; i++ {
		g.AddEdge(graph.NodeID(i), a, 1)
		g.AddEdge(b, graph.NodeID(i), 1)
	}
	return Gadget{G: g, FailedEdges: []graph.EdgeID{highway}, S: 0, T: graph.NodeID(m)}
}

// ParallelChain builds the Theorem-3 discussion example: 2k+2 nodes in a
// line with two parallel unit edges between each consecutive pair. With a
// padded base set, failing the chosen edge of every second pair forces
// restoration paths of 2k+1 components, while a cleverer base set gets by
// with 2.
func ParallelChain(k int) *graph.Graph {
	n := 2*k + 2
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return g
}

// FourCycle returns C4, the paper's minimal example showing that with one
// shortest path per pair, some single failure needs three components.
func FourCycle() *graph.Graph { return Ring(4) }
