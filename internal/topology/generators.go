// Package topology builds the networks the RBPC reproduction runs on:
// deterministic gadgets from the paper's figures (tightness constructions),
// classic random families (Waxman, Barabási–Albert), and synthetic
// stand-ins for the paper's three measured topologies (a large ISP, the AS
// graph, the Internet router graph), whose originals are proprietary or no
// longer available.
//
// All generators are deterministic given their seed, and all emit integral
// edge weights so exact float comparison of path costs is sound.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"rbpc/internal/graph"
)

// Line returns the path graph 0-1-...-n-1 with unit weights.
func Line(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return g
}

// Ring returns the n-cycle with unit weights. It panics for n < 3.
func Ring(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("topology: Ring(%d) needs n >= 3", n))
	}
	g := Line(n)
	g.AddEdge(graph.NodeID(n-1), 0, 1)
	return g
}

// Grid returns the rows x cols grid graph with unit weights. Node (r, c)
// has ID r*cols + c.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled spanning tree on n nodes
// (random attachment), unit weights.
func RandomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)), 1)
	}
	return g
}

// Waxman returns a Waxman random geometric graph: n nodes placed uniformly
// in the unit square; each pair (u,v) is connected with probability
// alpha * exp(-dist(u,v) / (beta * sqrt(2))). A random spanning tree over
// the placement is added first so the result is always connected. Weights
// are 1.
func Waxman(n int, alpha, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return math.Sqrt(dx*dx + dy*dy)
	}
	// Connectivity backbone: attach each node to a random earlier node.
	type pair struct{ u, v int }
	present := make(map[pair]bool)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || present[pair{u, v}] {
			return
		}
		present[pair{u, v}] = true
		g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
	}
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i))
	}
	maxD := math.Sqrt2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < alpha*math.Exp(-dist(i, j)/(beta*maxD)) {
				addEdge(i, j)
			}
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique, each new node attaches to m distinct existing nodes chosen
// proportionally to degree. The resulting degree distribution follows a
// power law, the property measured for the AS graph by Faloutsos et al.
// (the paper's reference [8]). Weights are 1.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		panic(fmt.Sprintf("topology: BarabasiAlbert m=%d < 1", m))
	}
	if n < m+1 {
		panic(fmt.Sprintf("topology: BarabasiAlbert n=%d too small for m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// Repeated-node list for proportional sampling.
	var targets []graph.NodeID
	// Seed clique on m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
			targets = append(targets, graph.NodeID(i), graph.NodeID(j))
		}
	}
	chosen := make(map[graph.NodeID]bool, m)
	order := make([]graph.NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		order = order[:0]
		for len(order) < m {
			t := targets[rng.Intn(len(targets))]
			if !chosen[t] {
				chosen[t] = true
				order = append(order, t) // keep draw order: maps iterate randomly
			}
		}
		for _, t := range order {
			g.AddEdge(graph.NodeID(v), t, 1)
			targets = append(targets, graph.NodeID(v), t)
		}
	}
	return g
}

// PowerLawExtra is BarabasiAlbert with additional random preferential
// edges appended until the graph has approximately targetEdges edges,
// letting generated graphs hit a measured node/link ratio that is not an
// integer multiple of n (the AS graph has avg degree 4.16, the Internet
// graph 5.03).
func PowerLawExtra(n, m, targetEdges int, seed int64) *graph.Graph {
	g := BarabasiAlbert(n, m, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	var targets []graph.NodeID
	for _, e := range g.Edges() {
		targets = append(targets, e.U, e.V)
	}
	guard := 0
	for g.Size() < targetEdges && guard < 20*targetEdges {
		guard++
		u := targets[rng.Intn(len(targets))]
		v := targets[rng.Intn(len(targets))]
		if u == v {
			continue
		}
		if _, dup := g.FindEdge(u, v); dup {
			continue
		}
		g.AddEdge(u, v, 1)
		targets = append(targets, u, v)
	}
	return g
}
