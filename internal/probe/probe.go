// Package probe measures wall-clock time-to-restore — the headline
// metric of the restoration-scheme comparison. After a failure is
// injected, the prober samples pairs whose primary LSP crossed the failed
// link and polls the serving surface until an epoch that has reacted to
// the failure returns an answer whose data-plane walk actually delivers;
// the elapsed wall clock since injection is that pair's restoration
// latency.
//
// The same prober drives every scheme, so the recorded distributions are
// directly comparable: the source scheme pays the full recompute+publish
// pipeline, the local flavors pay detection plus the local plan build,
// and hybrid pays whichever of its two phases answers first.
package probe

import (
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/graph"
)

// Backend is the serving surface the prober reads: synchronous snapshot
// queries, the static affected-pair index, and the sink for observed
// restoration samples. Both the single engine and the multi-shard
// coordinator satisfy it (the serving commands adapt them).
type Backend interface {
	Query(src, dst graph.NodeID) engine.Result
	AffectedPairs(e graph.EdgeID) []graph.NodePair
	RecordRestore(src graph.NodeID, d time.Duration)
}

// Prober tuning: affected pairs sampled per failure, the polling cadence,
// and the give-up deadline per failure.
const (
	maxPairs = 4
	step     = 100 * time.Microsecond
	timeout  = 250 * time.Millisecond
)

// snapFailed reports whether the epoch's failed-set contains the edge —
// the prober only times answers from epochs that have reacted to the
// injected failure (the pre-failure epoch still serves the old rows, and
// its data plane would happily forward across the dead link).
func snapFailed(s *engine.Snapshot, ed graph.EdgeID) bool {
	for _, f := range s.Failed() {
		if f == ed {
			return true
		}
	}
	return false
}

// ProbeResult is one poll's restoration verdict for a pair, as computed
// by whoever owns the serving state: whether the answering epoch's
// failed-set contained the probed edge, whether the pair was routable,
// and whether the data-plane walk delivered.
type ProbeResult struct {
	FailedContains bool
	Routable       bool
	Delivered      bool
}

// ProbeBackend is the serving surface for backends whose data plane
// lives elsewhere — the process-mode coordinator cannot walk a remote
// worker's MPLS network, so the whole verdict is computed at the owner
// and shipped back, rather than read off a local snapshot.
type ProbeBackend interface {
	ProbeQuery(src, dst graph.NodeID, ed graph.EdgeID) ProbeResult
	AffectedPairs(e graph.EdgeID) []graph.NodePair
	RecordRestore(src graph.NodeID, d time.Duration)
}

// RestoreVia is Restore for ProbeBackends: the same sampling, polling,
// and gating discipline, with the delivery verdict computed remotely.
func RestoreVia(b ProbeBackend, scheme engine.Scheme, ed graph.EdgeID, t0 time.Time) {
	pairs := b.AffectedPairs(ed)
	if len(pairs) == 0 {
		return
	}
	stride := len(pairs) / maxPairs
	if stride < 1 {
		stride = 1
	}
	deadline := t0.Add(timeout)
	for i := 0; i < len(pairs) && i/stride < maxPairs; i += stride {
		pr := pairs[i]
		for {
			res := b.ProbeQuery(pr.Src, pr.Dst, ed)
			if res.FailedContains {
				if res.Delivered {
					b.RecordRestore(pr.Src, time.Since(t0))
					break
				}
				if !res.Routable && scheme != engine.SchemeHybrid {
					break // unrestorable this epoch: disconnected or bypass-blocked
				}
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(step)
		}
	}
}

// Restore measures one injected failure's time-to-restore: it samples up
// to maxPairs affected pairs and, for each, polls the backend until an
// epoch reflecting the failure returns an answer whose data-plane walk
// delivers — the wall clock since t0 (the injection instant) is that
// pair's restoration latency, recorded into the backend's Restore
// histogram. A nil answer in a failure-aware epoch is final for every
// scheme except hybrid (whose source-routed answer can still arrive once
// the flood horizon passes), so those pairs are skipped rather than
// timed out.
func Restore(b Backend, scheme engine.Scheme, ed graph.EdgeID, t0 time.Time) {
	pairs := b.AffectedPairs(ed)
	if len(pairs) == 0 {
		return
	}
	stride := len(pairs) / maxPairs
	if stride < 1 {
		stride = 1
	}
	deadline := t0.Add(timeout)
	for i := 0; i < len(pairs) && i/stride < maxPairs; i += stride {
		pr := pairs[i]
		for {
			res := b.Query(pr.Src, pr.Dst)
			if snapFailed(res.Snap, ed) {
				if res.Route != nil {
					pkt, err := res.Snap.DataPlane(pr.Src).SendIP(pr.Src, pr.Dst)
					if err == nil && pkt.At == pr.Dst {
						b.RecordRestore(pr.Src, time.Since(t0))
						break
					}
				} else if scheme != engine.SchemeHybrid {
					break // unrestorable this epoch: disconnected or bypass-blocked
				}
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(step)
		}
	}
}
