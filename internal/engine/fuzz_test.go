package engine

import (
	"math"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// FuzzBypassPlanValidity drives the ILM bypass-plan builder with random
// topologies and single-link failures and checks the structural contract
// of every plan it emits: each affected pair's answer is a loop-bounded
// walk over surviving links from source to destination whose data-plane
// replay (canonical FEC stack through the patched ILM rows) terminates at
// the egress in exactly the advertised number of hops; and a nil answer is
// only ever given when the failed link's endpoints really are partitioned
// (for a single failure, Section 4's bridge argument makes edge-bypass
// complete: an affected pair is locally restorable iff it is connected).
func FuzzBypassPlanValidity(f *testing.F) {
	f.Add(int64(1), uint(0))
	f.Add(int64(3), uint(7))
	f.Add(int64(42), uint(13))
	f.Add(int64(7), uint(2))
	f.Fuzz(func(t *testing.T, topoSeed int64, edgePick uint) {
		nodes := 8 + int(uint(topoSeed)%9) // 8..16
		g := topology.Waxman(nodes, 0.8, 0.5, topoSeed)
		if g.Size() == 0 {
			t.Skip("degenerate topology")
		}
		ed := graph.EdgeID(edgePick % uint(g.Size()))

		sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
		if err != nil {
			t.Skip("unprovisionable topology")
		}
		e, err := New(sys.Export(), Config{Scheme: SchemeBypass})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		e.Fail(ed)
		e.Flush()
		snap := e.Snapshot()
		fe := g.Edge(ed)
		bridged := snap.Oracle().Dist(fe.U, fe.V) != spath.Unreachable

		for pr, rt := range snap.LocalRoutes() {
			if rt == nil {
				if bridged {
					t.Fatalf("pair %v unrestorable but failed link %d-%d is not a bridge", pr, fe.U, fe.V)
				}
				if snap.Oracle().Dist(pr.Src, pr.Dst) != spath.Unreachable {
					t.Fatalf("pair %v unrestorable but still connected", pr)
				}
				continue
			}
			if rt.Via != SchemeBypass {
				t.Fatalf("pair %v Via = %v", pr, rt.Via)
			}
			if err := rt.Path.Validate(snap.View()); err != nil {
				t.Fatalf("pair %v bypass path invalid: %v", pr, err)
			}
			if rt.Path.Src() != pr.Src || rt.Path.Dst() != pr.Dst {
				t.Fatalf("pair %v path runs %d->%d", pr, rt.Path.Src(), rt.Path.Dst())
			}
			if got := rt.Path.CostIn(g); math.Abs(got-rt.Cost) > 1e-9 {
				t.Fatalf("pair %v cost %v, path costs %v", pr, rt.Cost, got)
			}
			// Loop bound: a valid bypass walk revisits no link twice in the
			// same epoch (the primary is simple and each splice is simple),
			// so its length is bounded by twice the link count.
			if rt.Path.Hops() > 2*g.Size() {
				t.Fatalf("pair %v bypass walk of %d hops looks like a loop", pr, rt.Path.Hops())
			}
			pkt, err := snap.DataPlane(pr.Src).SendIP(pr.Src, pr.Dst)
			if err != nil {
				t.Fatalf("pair %v probe: %v", pr, err)
			}
			if pkt.At != pr.Dst {
				t.Fatalf("pair %v probe stranded at %d (label-stack rewrite broken)", pr, pkt.At)
			}
			if pkt.Hops != rt.Path.Hops() {
				t.Fatalf("pair %v probe walked %d hops, plan advertises %d", pr, pkt.Hops, rt.Path.Hops())
			}
		}
	})
}
