// Package metrics provides the allocation-free instrumentation the online
// restoration engine hangs off its hot paths: sharded counters that absorb
// concurrent increments without cache-line ping-pong, and log-bucketed
// latency histograms cheap enough to record every query.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// nShards is the number of independent counter cells. A power of two so
// shard selection is a mask. More shards than typical GOMAXPROCS so that
// even a fully loaded machine rarely collides two hot goroutines on one
// cell.
const nShards = 32

// cell is one cache-line-padded counter shard. 64-byte alignment keeps a
// busy shard's invalidations away from its neighbours.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded monotonic counter. Add is wait-free and touches a
// single cache line; Load sums all shards and is intended for scrape-time
// use, not hot paths.
type Counter struct {
	cells [nShards]cell
}

// Add increments the counter by d on the shard chosen by key. Callers pass
// any cheap per-goroutine-ish value (a worker index, a hashed pair); the
// spread only affects contention, never correctness.
//
//rbpc:hotpath
func (c *Counter) Add(key uint64, d int64) {
	c.cells[key&(nShards-1)].v.Add(d)
}

// Load returns the counter's total.
func (c *Counter) Load() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// histBuckets covers 1ns..~4.3s in power-of-two buckets, with a final
// overflow bucket.
const histBuckets = 33

// Histogram is a concurrent log-bucketed latency histogram: bucket i holds
// observations in [2^(i-1), 2^i) nanoseconds (bucket 0 holds <1ns). Record
// is a single sharded atomic add; quantiles are reconstructed at scrape
// time with one power-of-two of resolution, which is plenty for p50/p99
// over many decades of latency.
type Histogram struct {
	buckets [histBuckets]Counter
}

// bucketOf maps a duration to its bucket index.
//
//rbpc:hotpath
func bucketOf(d time.Duration) int {
	n := uint64(d)
	if d < 0 {
		n = 0
	}
	b := bits.Len64(n)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one observation. key picks the counter shard (see
// Counter.Add).
//
//rbpc:hotpath
func (h *Histogram) Record(key uint64, d time.Duration) {
	h.buckets[bucketOf(d)].Add(key, 1)
}

// RecordN adds n observations of the same duration with a single bucket
// increment — the batched-query path records one amortized latency for a
// whole burst without paying one atomic per query.
//
//rbpc:hotpath
func (h *Histogram) RecordN(key uint64, d time.Duration, n int64) {
	h.buckets[bucketOf(d)].Add(key, n)
}

// Summary is a scrape-time digest of a Histogram. Quantile values are
// interpolated within the containing power-of-two bucket (each of the
// bucket's observations gets an equal slice, and the ranked observation
// is placed at its slice midpoint), so reported percentiles move smoothly
// with the data instead of snapping to bucket bounds. Max remains the
// upper bound of the highest non-empty bucket.
type Summary struct {
	Count int64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// upperBound returns the top of bucket i in nanoseconds.
func upperBound(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// lowerBound returns the bottom of bucket i in nanoseconds (bucket 0
// starts at zero).
func lowerBound(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(uint64(1) << uint(i-1))
}

// Summarize digests the histogram's current contents. Concurrent Records
// during a Summarize are attributed to either side of the scrape, never
// lost.
func (h *Histogram) Summarize() Summary {
	var counts [histBuckets]int64
	var s Summary
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
		if counts[i] > 0 {
			s.Max = upperBound(i)
		}
	}
	if s.Count == 0 {
		return s
	}
	s.P50 = quantile(counts[:], s.Count, 0.50)
	s.P90 = quantile(counts[:], s.Count, 0.90)
	s.P99 = quantile(counts[:], s.Count, 0.99)
	return s
}

func quantile(counts []int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		if seen+c > rank {
			// The ranked observation is the (rank-seen)'th of this
			// bucket's c observations. Give each an equal slice of the
			// bucket's span and report the slice midpoint — a one-bucket
			// histogram then reports its center instead of its top, and
			// quantiles move with the within-bucket population rather
			// than snapping to power-of-two bounds.
			lo, hi := float64(lowerBound(i)), float64(upperBound(i))
			frac := (float64(rank-seen) + 0.5) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		seen += c
	}
	return upperBound(len(counts) - 1)
}
