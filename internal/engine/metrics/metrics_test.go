package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(uint64(w), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{-5, 0}, // negative clamps to the zero bucket
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	// 100 observations at ~1µs, 10 at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.Record(uint64(i), time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(uint64(i), time.Millisecond)
	}
	h.Record(0, time.Second)

	s := h.Summarize()
	if s.Count != 111 {
		t.Fatalf("Count = %d, want 111", s.Count)
	}
	// Interpolated quantiles land inside the power-of-two bucket containing
	// the ranked observation, so they are within 2x of the true value on
	// either side.
	if s.P50 < time.Microsecond/2 || s.P50 > 2*time.Microsecond {
		t.Errorf("P50 = %v, want within 2x of 1µs", s.P50)
	}
	if s.P99 < time.Millisecond/2 || s.P99 > 2*time.Millisecond {
		t.Errorf("P99 = %v, want within 2x of 1ms", s.P99)
	}
	if s.Max < time.Second || s.Max > 2*time.Second {
		t.Errorf("Max = %v, want ~1s", s.Max)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summarize()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(w), time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Summarize(); s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		var key uint64
		for pb.Next() {
			key++
			c.Add(key, 1)
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var key uint64
		for pb.Next() {
			key++
			h.Record(key, time.Duration(key)*17)
		}
	})
}
