package metrics

import "sync/atomic"

// Acc is a concurrent integer accumulator for small non-latency
// quantities — path-stretch per-mille, detour hop counts — where exact
// means and maxima matter more than quantiles (the log-bucketed Histogram
// cannot tell stretch 1.0x from 1.4x). Add is a few atomics; Summarize is
// scrape-time only.
type Acc struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Add records one observation. Observations must be non-negative (Max
// starts at zero).
func (a *Acc) Add(v int64) {
	a.count.Add(1)
	a.sum.Add(v)
	for {
		cur := a.max.Load()
		if v <= cur || a.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AccSummary is a scrape-time digest of an Acc.
type AccSummary struct {
	Count int64
	Mean  float64
	Max   int64
}

// Summarize digests the accumulator's current contents.
func (a *Acc) Summarize() AccSummary {
	s := AccSummary{Count: a.count.Load(), Max: a.max.Load()}
	if s.Count > 0 {
		s.Mean = float64(a.sum.Load()) / float64(s.Count)
	}
	return s
}
