package engine

import (
	"math"
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// snapsEqualBitwise asserts every pair of two snapshots answers
// identically: routability, Float64bits of cost, and component path
// sequences — the same identity the chaos shard-equivalence oracle
// demands of process-mode replicas.
func snapsEqualBitwise(t *testing.T, want, got *Snapshot, n int, tag string) {
	t.Helper()
	if want.Epoch() != got.Epoch() {
		t.Fatalf("%s: epoch %d decoded as %d", tag, want.Epoch(), got.Epoch())
	}
	wf, gf := want.Failed(), got.Failed()
	if len(wf) != len(gf) {
		t.Fatalf("%s: failed-set %v decoded as %v", tag, wf, gf)
	}
	for i := range wf {
		if wf[i] != gf[i] {
			t.Fatalf("%s: failed-set %v decoded as %v", tag, wf, gf)
		}
	}
	for s := 0; s < n; s++ {
		src := graph.NodeID(s)
		if want.Materialized(src) != got.Materialized(src) {
			t.Fatalf("%s: source %d materialized mismatch", tag, s)
		}
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dst := graph.NodeID(d)
			w, g := want.Route(src, dst), got.Route(src, dst)
			if (w == nil) != (g == nil) {
				t.Fatalf("%s: pair %d->%d routable %v decoded as %v", tag, s, d, w != nil, g != nil)
			}
			if w == nil {
				continue
			}
			if math.Float64bits(w.Cost) != math.Float64bits(g.Cost) {
				t.Fatalf("%s: pair %d->%d cost bits %x decoded as %x",
					tag, s, d, math.Float64bits(w.Cost), math.Float64bits(g.Cost))
			}
			if len(w.LSPs) != len(g.LSPs) {
				t.Fatalf("%s: pair %d->%d %d components decoded as %d", tag, s, d, len(w.LSPs), len(g.LSPs))
			}
			for i := range w.LSPs {
				if !w.LSPs[i].Path.Equal(g.LSPs[i].Path) {
					t.Fatalf("%s: pair %d->%d component %d path mismatch", tag, s, d, i)
				}
			}
		}
	}
}

// TestSnapshotWireRoundTrip drives a delta-row engine through churn and
// proves every published snapshot survives AppendWire/Decode bit-for-bit,
// including the oracle distances a decoded replica recomputes locally.
func TestSnapshotWireRoundTrip(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 41)
	eng, sys := newEngine(t, g, Config{DeltaRows: true})
	dec, err := NewSnapDecoder(sys.Export())
	if err != nil {
		t.Fatal(err)
	}
	n := g.Order()

	var buf []byte
	check := func(tag string) {
		t.Helper()
		snap := eng.Snapshot()
		buf = buf[:0]
		buf, err = snap.AppendWire(buf)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		got, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", tag, err)
		}
		snapsEqualBitwise(t, snap, got, n, tag)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				w := snap.Oracle().Dist(graph.NodeID(s), graph.NodeID(d))
				r := got.Oracle().Dist(graph.NodeID(s), graph.NodeID(d))
				if math.Float64bits(w) != math.Float64bits(r) {
					t.Fatalf("%s: oracle dist %d->%d bits %x decoded as %x",
						tag, s, d, math.Float64bits(w), math.Float64bits(r))
				}
			}
		}
	}

	check("pristine")
	rng := rand.New(rand.NewSource(7))
	down := make([]graph.EdgeID, 0, 4)
	for round := 0; round < 6; round++ {
		if len(down) > 2 {
			i := rng.Intn(len(down))
			eng.Repair(down[i])
			down = append(down[:i], down[i+1:]...)
		} else {
			ed := graph.EdgeID(rng.Intn(g.Size()))
			eng.Fail(ed)
			seen := false
			for _, e := range down {
				seen = seen || e == ed
			}
			if !seen {
				down = append(down, ed)
			}
		}
		eng.Flush()
		check("round")
	}
}

// TestSnapDecoderDetached exercises the crash-recovery path: a detached
// snapshot for an arbitrary failed-set answers canonical rows only, knows
// the failure view, and reports the same materialization as the live
// engine's provision.
func TestSnapDecoderDetached(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 5)
	eng, sys := newEngine(t, g, Config{DeltaRows: true})
	dec, err := NewSnapDecoder(sys.Export())
	if err != nil {
		t.Fatal(err)
	}
	ed := graph.EdgeID(3)
	snap := dec.Detached([]graph.EdgeID{ed}, 9)
	if snap.Epoch() != 9 {
		t.Fatalf("detached epoch %d", snap.Epoch())
	}
	if f := snap.Failed(); len(f) != 1 || f[0] != ed {
		t.Fatalf("detached failed-set %v", f)
	}
	live := eng.Snapshot()
	for s := 0; s < g.Order(); s++ {
		src := graph.NodeID(s)
		if dec.Materialized(src) != live.Materialized(src) {
			t.Fatalf("source %d: decoder materialized %v, engine %v",
				s, dec.Materialized(src), live.Materialized(src))
		}
		if !dec.Materialized(src) {
			continue
		}
		for d := 0; d < g.Order(); d++ {
			if s == d {
				continue
			}
			dst := graph.NodeID(d)
			w, got := live.Route(src, dst), snap.Route(src, dst)
			if (w == nil) != (got == nil) {
				t.Fatalf("pair %d->%d: canonical routable %v, detached %v", s, d, w != nil, got != nil)
			}
			if w != nil && math.Float64bits(w.Cost) != math.Float64bits(got.Cost) {
				t.Fatalf("pair %d->%d: canonical cost bits differ", s, d)
			}
		}
	}
}

// TestSnapshotWireDenseRefuses: dense snapshots have no overlay and must
// refuse to serialize rather than silently ship an empty frame.
func TestSnapshotWireDenseRefuses(t *testing.T) {
	g := topology.Waxman(10, 0.8, 0.5, 2)
	eng, _ := newEngine(t, g, Config{})
	if _, err := eng.Snapshot().AppendWire(nil); err == nil {
		t.Fatal("dense snapshot serialized")
	}
}

// TestSnapDecoderRejectsCorrupt flips every byte of a valid frame and
// feeds truncations of it; the decoder must error or succeed but never
// panic, and the pristine frame must still decode after the abuse.
func TestSnapDecoderRejectsCorrupt(t *testing.T) {
	g := topology.Waxman(10, 0.8, 0.5, 8)
	eng, sys := newEngine(t, g, Config{DeltaRows: true})
	dec, err := NewSnapDecoder(sys.Export())
	if err != nil {
		t.Fatal(err)
	}
	eng.Fail(1)
	eng.Fail(4)
	eng.Flush()
	frame, err := eng.Snapshot().AppendWire(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := dec.Decode(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	mut := make([]byte, len(frame))
	for i := range frame {
		copy(mut, frame)
		mut[i] ^= 0xff
		dec.Decode(mut) // must not panic; errors are fine
	}
	if _, err := dec.Decode(frame); err != nil {
		t.Fatalf("pristine frame stopped decoding: %v", err)
	}
}
