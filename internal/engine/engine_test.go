package engine

import (
	"math/rand"
	"testing"
	"time"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

func newEngine(t testing.TB, g *graph.Graph, cfg Config) (*Engine, *rbpc.System) {
	t.Helper()
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys.Export(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, sys
}

// agreeWithSystem compares every pair's engine answer against a reference
// System holding the same failed-set: same routability, same cost.
func agreeWithSystem(t *testing.T, e *Engine, ref *rbpc.System, tag string) {
	t.Helper()
	g := ref.Graph()
	for s := 0; s < g.Order(); s++ {
		for d := 0; d < g.Order(); d++ {
			if s == d {
				continue
			}
			src, dst := graph.NodeID(s), graph.NodeID(d)
			got := e.Query(src, dst).Route
			want := ref.RouteOf(src, dst)
			if (got == nil) != (want == nil) {
				t.Fatalf("%s: pair %d->%d routable mismatch: engine %v, system %v",
					tag, s, d, got != nil, want != nil)
			}
			if got == nil {
				continue
			}
			var wantCost float64
			for _, l := range want {
				wantCost += l.Path.CostIn(g)
			}
			if got.Cost != wantCost {
				t.Fatalf("%s: pair %d->%d cost %v, system %v", tag, s, d, got.Cost, wantCost)
			}
		}
	}
}

func TestEngineMatchesSystemUnderChurn(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 3)
	e, _ := newEngine(t, g, Config{})
	ref, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	agreeWithSystem(t, e, ref, "pristine")

	events := failure.ChurnSchedule(g, 40, 3, rand.New(rand.NewSource(5)))
	for i, ev := range events {
		if ev.Repair {
			e.Repair(ev.Edge)
			ref.RepairLink(ev.Edge)
		} else {
			e.Fail(ev.Edge)
			ref.FailLink(ev.Edge)
		}
		e.Flush()
		snap := e.Snapshot()
		if len(snap.Failed()) != len(ref.KnownFailed()) {
			t.Fatalf("event %d: engine sees %v failed, system %v", i, snap.Failed(), ref.KnownFailed())
		}
		agreeWithSystem(t, e, ref, "after event")
	}
	// Full schedule drains to pristine.
	if got := e.Snapshot().Failed(); len(got) != 0 {
		t.Fatalf("failures survive full schedule: %v", got)
	}
}

func TestPlanCacheHitsOnRevisitedFailedSet(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	e, _ := newEngine(t, g, Config{})
	ed := graph.EdgeID(0)

	for i := 0; i < 3; i++ {
		e.Fail(ed)
		e.Flush()
		e.Repair(ed)
		e.Flush()
	}
	st := e.Stats()
	// First fail misses; the two re-fails hit. Every repair hits the
	// pre-seeded pristine plan.
	if st.PlanCacheMiss != 1 {
		t.Fatalf("plan cache misses = %d, want 1", st.PlanCacheMiss)
	}
	if st.PlanCacheHits != 5 {
		t.Fatalf("plan cache hits = %d, want 5", st.PlanCacheHits)
	}
	if st.Epochs != 6 {
		t.Fatalf("epochs = %d, want 6", st.Epochs)
	}
}

func TestCoalescedBurstCancelsOut(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 2)
	e, _ := newEngine(t, g, Config{CoalesceWindow: 100 * time.Millisecond})
	ed := graph.EdgeID(1)

	// Fail+repair inside one coalesce window: the failed-set is unchanged,
	// so no epoch may be published.
	e.ApplyEvents([]failure.Event{{Edge: ed}, {Repair: true, Edge: ed}})
	e.Flush()
	if st := e.Stats(); st.Epochs != 0 || st.Epoch != 0 {
		t.Fatalf("cancelled burst published an epoch: %+v", st)
	}
}

func TestUnroutablePair(t *testing.T) {
	// A line graph: failing any edge cuts the pairs across it.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	e, _ := newEngine(t, g, Config{})

	e.Fail(1) // cut 1-2
	e.Flush()
	res := e.Query(0, 3)
	if res.Route != nil {
		t.Fatalf("pair 0->3 routable across a cut: %+v", res.Route)
	}
	if d := e.Dist(0, 3); d != spath.Unreachable {
		t.Fatalf("Dist across cut = %v", d)
	}
	if st := e.Stats(); st.Unroutable == 0 {
		t.Fatal("unroutable counter not incremented")
	}

	e.Repair(1)
	e.Flush()
	if res := e.Query(0, 3); res.Route == nil {
		t.Fatal("pair 0->3 still unroutable after repair")
	}
}

func TestSubmitDrainsToCallback(t *testing.T) {
	g := topology.Waxman(10, 0.8, 0.5, 4)
	got := make(chan Result, 64)
	e, _ := newEngine(t, g, Config{Workers: 2, OnResult: func(r Result) { got <- r }})

	const want = 20
	sent := 0
	for d := 1; d <= want; d++ {
		if e.Submit(0, graph.NodeID(d%g.Order())) {
			sent++
		}
	}
	for i := 0; i < sent; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d results arrived", i, sent)
		}
	}
	st := e.Stats()
	if st.Submitted != int64(want) || st.Dropped != int64(want-sent) {
		t.Fatalf("submitted=%d dropped=%d, want %d/%d", st.Submitted, st.Dropped, want, want-sent)
	}
	if st.QueryLatency.Count != int64(sent) {
		t.Fatalf("latency samples = %d, want %d", st.QueryLatency.Count, sent)
	}
}

func TestSnapshotImmutableAcrossEpochs(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 6)
	e, _ := newEngine(t, g, Config{})
	old := e.Snapshot()
	oldRoute := old.Route(0, graph.NodeID(g.Order()-1))

	events := failure.ChurnSchedule(g, 20, 2, rand.New(rand.NewSource(3)))
	e.ApplyEvents(events)
	e.Flush()

	// The pristine snapshot still answers exactly as before.
	if got := old.Route(0, graph.NodeID(g.Order()-1)); got != oldRoute {
		t.Fatal("held snapshot changed under churn")
	}
	if old.Epoch() != 0 || len(old.Failed()) != 0 {
		t.Fatal("held snapshot's identity changed")
	}
}

func TestQueryZeroAllocs(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 8)
	e, _ := newEngine(t, g, Config{})
	e.Fail(0)
	e.Flush()

	n := int(testing.AllocsPerRun(1000, func() {
		e.Query(2, 9)
	}))
	if n != 0 {
		t.Fatalf("Query allocates %d times per op, want 0", n)
	}
}

func TestNewRejectsFailedProvision(t *testing.T) {
	g := topology.Waxman(10, 0.8, 0.5, 1)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.FailLink(0)
	if _, err := New(sys.Export(), Config{}); err == nil {
		t.Fatal("New accepted a provision with live failures")
	}
}
