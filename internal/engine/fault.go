package engine

import "fmt"

// Fault selects a deliberately injected writer defect. The chaos
// conformance harness (internal/chaos) runs the engine with each fault to
// prove its runtime oracles catch the corresponding class of real bug —
// a conformance suite that cannot detect its own target defects proves
// nothing. Production configurations leave it at FaultNone; the fault
// only ever perturbs the writer goroutine, so a faulty engine is still
// race-free, just wrong.
type Fault int

const (
	// FaultNone is the correct engine.
	FaultNone Fault = iota
	// FaultStalePlanOnRepair reuses the previous epoch's plan whenever a
	// repair shrinks the failed-set, skipping the plan-cache lookup the
	// transition needs. Pairs keep riding restoration detours after their
	// primaries come back, so served costs exceed the true post-failure
	// shortest distance (optimality-oracle violation).
	FaultStalePlanOnRepair
	// FaultSkipFECRewrite skips rewriting the forwarding entries of pairs
	// that leave the plan on an epoch transition: the routing matrix
	// returns to canonical but the data plane keeps the old label stack
	// (forwarding-oracle violation).
	FaultSkipFECRewrite
	// FaultDropEpoch silently skips publishing epochs whose failed-set
	// shrank: repairs are absorbed but never surface, so after a flush
	// the snapshot disagrees with the event stream (snapshot-agreement
	// oracle violation).
	FaultDropEpoch
	// FaultSkipRepairRescan makes the incremental builder skip the
	// repair-improvement rescan: surviving restoration routes are reused
	// even when a repaired link offers a shorter path, so served costs
	// exceed the true post-failure shortest distance (optimality- and
	// equivalence-oracle violation). The from-scratch reference path is
	// unaffected, which is exactly what the incremental-vs-full
	// equivalence oracle exists to catch.
	FaultSkipRepairRescan
	// FaultStaleBypass skips the local-plan rebuild on epoch transitions
	// under the local restoration schemes (Config.Scheme != SchemeSource):
	// the previous failed-set's ILM patches stay applied and its local
	// routes keep being served. Newly affected pairs fall through to
	// canonical rows crossing a dead link (dead-edge oracle violation) and
	// repaired pairs keep detouring (optimality violation). Meaningless
	// under SchemeSource, where no local plan exists to go stale.
	FaultStaleBypass
)

// String implements fmt.Stringer; the names double as the CLI vocabulary
// of cmd/rbpc-chaos -fault and the corpus file encoding.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultStalePlanOnRepair:
		return "stale-plan-on-repair"
	case FaultSkipFECRewrite:
		return "skip-fec-rewrite"
	case FaultDropEpoch:
		return "drop-epoch"
	case FaultSkipRepairRescan:
		return "skip-repair-rescan"
	case FaultStaleBypass:
		return "stale-bypass"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Faults lists every injectable defect (FaultNone excluded).
func Faults() []Fault {
	return []Fault{FaultStalePlanOnRepair, FaultSkipFECRewrite, FaultDropEpoch, FaultSkipRepairRescan, FaultStaleBypass}
}

// ParseFault maps a Fault name back to its value.
func ParseFault(name string) (Fault, error) {
	for _, f := range append(Faults(), FaultNone) {
		if f.String() == name {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("engine: unknown fault %q", name)
}
