package engine

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// sameRoute is bit-level route equality: routability, cost bits, and the
// concrete node/edge sequence of every component LSP. Label stacks are
// deliberately not compared — label numbers depend on signaling order,
// which the equivalence contract does not cover.
func sameRoute(a, b *Route) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) || len(a.LSPs) != len(b.LSPs) {
		return false
	}
	for i := range a.LSPs {
		if !a.LSPs[i].Path.Equal(b.LSPs[i].Path) {
			return false
		}
	}
	return true
}

// TestIncrementalBitIdenticalToFullRebuild drives the same random churn —
// single events and multi-event bursts — through an incremental engine and
// a FullRebuild reference engine, and demands bit-identical serving state
// after every flush: same failed-set, same per-pair routability, cost
// bits, and LSP path sequences, same post-failure distances. This is the
// tentpole claim of the incremental epoch builder: reuse is only legal
// when a from-scratch build would reproduce the plan exactly.
func TestIncrementalBitIdenticalToFullRebuild(t *testing.T) {
	g := topology.Waxman(18, 0.8, 0.5, 21)
	inc, _ := newEngine(t, g, Config{})
	ref, _ := newEngine(t, g, Config{FullRebuild: true})

	events := failure.ChurnSchedule(g, 60, 4, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(9))
	step := 0
	for i := 0; i < len(events); step++ {
		n := 1 + rng.Intn(3)
		if i+n > len(events) {
			n = len(events) - i
		}
		burst := events[i : i+n]
		i += n
		inc.ApplyEvents(burst)
		ref.ApplyEvents(burst)
		inc.Flush()
		ref.Flush()

		si, sr := inc.Snapshot(), ref.Snapshot()
		if failedKey(si.Failed()) != failedKey(sr.Failed()) {
			t.Fatalf("step %d: failed-sets diverged: %v vs %v", step, si.Failed(), sr.Failed())
		}
		for s := 0; s < g.Order(); s++ {
			for d := 0; d < g.Order(); d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				a, b := si.Route(src, dst), sr.Route(src, dst)
				if !sameRoute(a, b) {
					t.Fatalf("step %d pair %d->%d: incremental %+v vs full %+v", step, s, d, a, b)
				}
			}
		}
		for k := 0; k < 12; k++ {
			src := graph.NodeID(rng.Intn(g.Order()))
			dst := graph.NodeID(rng.Intn(g.Order()))
			da, db := si.Oracle().Dist(src, dst), sr.Oracle().Dist(src, dst)
			if math.Float64bits(da) != math.Float64bits(db) {
				t.Fatalf("step %d dist %d->%d: %v vs %v", step, src, dst, da, db)
			}
		}
	}

	// The comparison is only meaningful if both engines took the paths they
	// claim: the incremental engine must have reused work, the reference
	// must have rebuilt every plan from scratch.
	ist := inc.Stats().Incremental
	if ist.FullRebuilds != 0 {
		t.Fatalf("incremental engine fell back to full rebuilds %d times", ist.FullRebuilds)
	}
	if ist.PairsReused == 0 {
		t.Fatal("incremental engine never reused a plan entry: comparison is vacuous")
	}
	if ist.TreesAdopted == 0 {
		t.Fatal("incremental engine never adopted an oracle tree")
	}
	if rst := ref.Stats().Incremental; rst.FullRebuilds == 0 || rst.PairsReused != 0 {
		t.Fatalf("reference engine did not run in full-rebuild mode: %+v", rst)
	}
}

// TestPlanCacheHitsUnderChurnWriterPath is the regression test for the
// zero-hit-rate finding: replaying an identical churn schedule through the
// full writer path (absorb → coalesce → publish) must hit the plan cache
// on every epoch of the second pass — every failed-set was already built
// and the incremental builder must store its plans under the same keys a
// from-scratch build would.
func TestPlanCacheHitsUnderChurnWriterPath(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	e, _ := newEngine(t, g, Config{})
	events := failure.ChurnSchedule(g, 30, 3, rand.New(rand.NewSource(4)))
	run := func() {
		for _, ev := range events {
			if ev.Repair {
				e.Repair(ev.Edge)
			} else {
				e.Fail(ev.Edge)
			}
			e.Flush()
		}
	}
	run()
	st1 := e.Stats()
	if st1.PlanCacheMiss == 0 {
		t.Fatal("first pass never missed: schedule exercises nothing")
	}
	run()
	st2 := e.Stats()
	if extra := st2.PlanCacheMiss - st1.PlanCacheMiss; extra != 0 {
		t.Fatalf("replaying an identical schedule missed the plan cache %d times, want 0", extra)
	}
	if st2.PlanCacheHits <= st1.PlanCacheHits {
		t.Fatal("no plan-cache hits on revisited failed-sets")
	}
}

// TestFaultSkipRepairRescan pins the repair-rescan classification with a
// hand-built topology: pair (0,1) rides primary 0-1; failing it moves the
// pair to detour 0-2-1 (cost 2); additionally failing (0,2) forces the
// expensive detour 0-3-1 (cost 10). Repairing (0,2) — while the primary
// stays down — must re-solve the pair back to cost 2. The injected fault
// skips exactly that rescan and keeps serving the stale cost-10 detour.
func TestFaultSkipRepairRescan(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New(4)
		g.AddEdge(0, 1, 1) // A: primary
		g.AddEdge(0, 2, 1) // B
		g.AddEdge(2, 1, 1) // C
		g.AddEdge(0, 3, 5) // D
		g.AddEdge(3, 1, 5) // E
		return g
	}
	const a, b = graph.EdgeID(0), graph.EdgeID(1)

	for _, tc := range []struct {
		fault Fault
		want  float64
	}{
		{FaultNone, 2},
		{FaultSkipRepairRescan, 10},
	} {
		g := build()
		// Coalesce both failures into one epoch so the intermediate set {A}
		// is never built or cached — the later repair must go through the
		// incremental path, not a cache hit.
		e, _ := newEngine(t, g, Config{CoalesceWindow: 50 * time.Millisecond, Fault: tc.fault})
		e.ApplyEvents([]failure.Event{{Edge: a}, {Edge: b}})
		e.Flush()
		if rt := e.Query(0, 1).Route; rt == nil || rt.Cost != 10 {
			t.Fatalf("fault %v: after double failure route = %+v, want cost 10", tc.fault, rt)
		}
		e.Repair(b)
		e.Flush()
		rt := e.Query(0, 1).Route
		if rt == nil || rt.Cost != tc.want {
			t.Fatalf("fault %v: after repair route = %+v, want cost %v", tc.fault, rt, tc.want)
		}
		if tc.fault == FaultNone && e.Stats().Incremental.RepairImproved == 0 {
			t.Fatal("correct engine never classified the pair as repair-improved")
		}
		e.Close()
	}
}
