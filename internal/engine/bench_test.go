package engine

import (
	"math/rand"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

// BenchmarkEngineQuery measures the steady-state lock-free read path under
// parallel load, with a failure in place so answers cross the COW rows.
func BenchmarkEngineQuery(b *testing.B) {
	g := topology.Waxman(64, 0.8, 0.5, 13)
	e, _ := newEngine(b, g, Config{})
	e.Fail(0)
	e.Fail(3)
	e.Flush()

	n := uint64(g.Order())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			src := graph.NodeID(i % n)
			dst := graph.NodeID((i*7 + 3) % n)
			e.Query(src, dst)
		}
	})
}

// BenchmarkEpochBuild measures writer-side epoch publication: cold (every
// failed-set new) vs hot (plans cached from a prior pass over the same
// schedule).
func BenchmarkEpochBuild(b *testing.B) {
	g := topology.Waxman(64, 0.8, 0.5, 29)
	events := failure.ChurnSchedule(g, 64, 3, rand.New(rand.NewSource(11)))

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, _ := newEngine(b, g, Config{})
			b.StartTimer()
			for _, ev := range events {
				if ev.Repair {
					e.Repair(ev.Edge)
				} else {
					e.Fail(ev.Edge)
				}
				e.Flush()
			}
			b.StopTimer()
			e.Close()
			b.StartTimer()
		}
	})
	b.Run("hot", func(b *testing.B) {
		e, _ := newEngine(b, g, Config{})
		// Prime the plan cache with one full pass.
		for _, ev := range events {
			if ev.Repair {
				e.Repair(ev.Edge)
			} else {
				e.Fail(ev.Edge)
			}
		}
		e.Flush()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ev := range events {
				if ev.Repair {
					e.Repair(ev.Edge)
				} else {
					e.Fail(ev.Edge)
				}
				e.Flush()
			}
		}
	})
}
