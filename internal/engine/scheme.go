package engine

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/rbpc"
	"rbpc/internal/sim"
	"rbpc/internal/spath"
)

// Scheme selects which of the paper's Section-4 restoration schemes the
// engine serves online.
//
// The source-router scheme recomputes a concatenation at the ingress and
// rewrites its FEC entry — optimal routes, but only after the failure has
// flooded back to the source. The two local schemes act at the router
// adjacent to the failure, which detects it immediately: end-route patches
// the ILM row to carry traffic to the LSP's egress over surviving base
// paths, edge-bypass detours around the failed link and resumes the
// original LSP at its far endpoint. Hybrid composes them in time: every
// source serves the bypass answer the instant the adjacent router patches,
// then switches to the optimal source answer once the modeled link-state
// flood (Config.Flood) has reached it.
type Scheme int

const (
	// SchemeSource is the source-router scheme (Section 4.1) — the zero
	// value, and the engine's historical behavior.
	SchemeSource Scheme = iota
	// SchemeLocal is local end-route restoration (Section 4.2).
	SchemeLocal
	// SchemeBypass is local edge-bypass restoration (Section 4.2).
	SchemeBypass
	// SchemeHybrid serves edge-bypass immediately and switches each source
	// to the source-router answer after its flood horizon passes.
	SchemeHybrid
)

// String implements fmt.Stringer; the names double as the CLI vocabulary
// of rbpc-serve -scheme and the chaos corpus encoding.
func (s Scheme) String() string {
	switch s {
	case SchemeSource:
		return "source"
	case SchemeLocal:
		return "local"
	case SchemeBypass:
		return "bypass"
	case SchemeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists every serving scheme.
func Schemes() []Scheme {
	return []Scheme{SchemeSource, SchemeLocal, SchemeBypass, SchemeHybrid}
}

// ParseScheme maps a scheme name back to its value.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if s.String() == name {
			return s, nil
		}
	}
	return SchemeSource, fmt.Errorf("engine: unknown scheme %q", name)
}

// FloodConfig models link-state flood propagation: after a topology
// change, the adjacent routers learn of it after Detect, and every further
// router one LSA transmission later per surviving-graph hop (sim.FloodHops).
// The zero value floods instantly — hybrid converges at publish, which is
// the deterministic mode the conformance tests run in.
type FloodConfig struct {
	Detect time.Duration
	PerHop time.Duration
}

// neverHorizon marks a router the flood cannot reach (partitioned from
// every changed link): it never learns of the transition and keeps serving
// its local answers indefinitely.
const neverHorizon = time.Duration(math.MaxInt64)

// localPlan is one epoch's local-restoration serving state: the affected
// pairs (canonical primary crosses a down link) mapped to the answer the
// patched data plane actually delivers. A nil route means the pair is
// locally unrestorable — the failure disconnected the patch point from its
// detour target — and is served as unroutable even if a source-router
// concatenation exists; that gap is exactly the paper's trade-off between
// restoration speed and coverage.
//
//rbpc:immutable
type localPlan struct {
	routes map[rbpc.Pair]*Route
}

// emptyLocal is the shared pristine local plan (no failures, no patches).
var emptyLocal = &localPlan{}

// localFlavor maps the serving scheme to the ILM-patch flavor it installs.
func (e *Engine) localFlavor() (rbpc.LocalScheme, Scheme) {
	if e.cfg.Scheme == SchemeLocal {
		return rbpc.EndRoute, SchemeLocal
	}
	return rbpc.EdgeBypass, SchemeBypass
}

// labelInto returns the label under which the LSP's traffic is processed
// at Path.Nodes[i]: the ingress self-label for i == 0, the upstream hop
// label otherwise.
func labelInto(lsp *mpls.LSP, i int) (mpls.Label, bool) {
	if i == 0 {
		return lsp.SelfLabel(), true
	}
	return lsp.HopLabel(i - 1)
}

// decPath flattens a decomposition into the concrete hop-by-hop path its
// components traverse.
func decPath(dec core.Decomposition) graph.Path {
	p := dec.Components[0].Path
	for _, c := range dec.Components[1:] {
		p = p.Concat(c.Path)
	}
	return p
}

// detourKey identifies one decomposition request (patch point -> target).
type detourKey struct {
	s, d graph.NodeID
}

// buildLocalPlan computes the epoch's local restoration state for the
// full failed-set: it patches the ILM row of every provisioned LSP
// crossing of every down link on the epoch's net (recording the patches in
// e.ilmPatches for the next transition's revert) and derives the answer
// each affected pair's patched forwarding now delivers. Writer-only.
//
// The build batches all detour solves: crossings and affected primaries
// are scanned first to collect the (patch point, target) set, then one
// sparse solver answers each patch point's targets in a single Dijkstra
// run over the base-path graph — the same O(1)-ish solve count per failed
// link that makes the local schemes fast to install in the paper.
func (e *Engine) buildLocalPlan(failed []graph.EdgeID, fv *graph.FailureView, oracle *spath.Oracle, nh *netHandle) *localPlan {
	if len(failed) == 0 {
		return emptyLocal
	}
	flavor, via := e.localFlavor()

	downIn := make(map[graph.EdgeID]bool, len(failed))
	for _, ed := range failed {
		downIn[ed] = true
	}

	// Pass 1: collect every detour endpoint the build needs — one request
	// per patched crossing, plus the per-crossing requests of each affected
	// pair's primary (the same requests when primaries are base paths, but
	// collected explicitly so the route construction below never misses).
	want := make(map[detourKey]bool)
	targets := make(map[graph.NodeID][]graph.NodeID)
	need := func(s, d graph.NodeID) {
		k := detourKey{s, d}
		if !want[k] {
			want[k] = true
			targets[s] = append(targets[s], d)
		}
	}

	type rowKey struct {
		router graph.NodeID
		label  mpls.Label
	}
	type crossing struct {
		lsp    *mpls.LSP
		i      int
		r1, r2 graph.NodeID
		label  mpls.Label
	}
	var crossings []crossing
	seen := make(map[rowKey]bool)
	for _, ed := range failed {
		for _, p := range e.xbase.ThroughEdge(ed) {
			lsp, ok := e.lspOf[p.Key()]
			if !ok {
				continue
			}
			for i, edge := range lsp.Path.Edges {
				if edge != ed {
					continue
				}
				r1, r2 := lsp.Path.Nodes[i], lsp.Path.Nodes[i+1]
				label, ok := labelInto(lsp, i)
				if !ok {
					continue
				}
				k := rowKey{router: r1, label: label}
				if seen[k] {
					continue
				}
				seen[k] = true
				crossings = append(crossings, crossing{lsp: lsp, i: i, r1: r1, r2: r2, label: label})
				if flavor == rbpc.EndRoute {
					need(r1, lsp.Egress())
				} else {
					need(r1, r2)
				}
			}
		}
	}

	affected := make([]rbpc.Pair, 0, len(e.downCount))
	for pr := range e.downCount {
		affected = append(affected, pr)
	}
	sort.Slice(affected, func(i, j int) bool {
		if affected[i].Src != affected[j].Src {
			return affected[i].Src < affected[j].Src
		}
		return affected[i].Dst < affected[j].Dst
	})
	for _, pr := range affected {
		lsp := e.primaries[pr]
		if lsp == nil {
			continue
		}
		for i, edge := range lsp.Path.Edges {
			if !downIn[edge] {
				continue
			}
			if flavor == rbpc.EndRoute {
				need(lsp.Path.Nodes[i], pr.Dst)
				break // end-route acts at the first down crossing only
			}
			need(lsp.Path.Nodes[i], lsp.Path.Nodes[i+1])
		}
	}

	// Pass 2: one batched solve per patch point, in sorted order so label
	// allocation for on-demand LSPs stays deterministic.
	srcs := make([]graph.NodeID, 0, len(targets))
	for s := range targets {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	ss := core.NewSparseSolver(e.base, fv)
	solved := make(map[detourKey]core.Decomposition, len(want))
	okd := make(map[detourKey]bool, len(want))
	for _, s := range srcs {
		dsts := targets[s]
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		decs, oks := ss.From(s, dsts)
		for j, d := range dsts {
			solved[detourKey{s, d}] = decs[j]
			okd[detourKey{s, d}] = oks[j]
		}
	}
	sol := func(s, d graph.NodeID) (core.Decomposition, bool) {
		k := detourKey{s, d}
		return solved[k], okd[k]
	}

	// Pass 3: install the ILM patches on the epoch's net.
	for _, c := range crossings {
		target := c.r2
		if flavor == rbpc.EndRoute {
			target = c.lsp.Egress()
		}
		dec, ok := sol(c.r1, target)
		if !ok || len(dec.Components) == 0 {
			e.mLocalUnrestorable.Add(0, 1)
			continue
		}
		row, ok := e.localILMRow(c.lsp, c.i, dec, nh, flavor)
		if !ok {
			e.mLocalUnrestorable.Add(0, 1)
			continue
		}
		if err := e.ilmPatches.Apply(nh.net, c.r1, c.label, row); err != nil {
			// The row vanished from under us — a provisioning bug, not a
			// runtime condition; surface it like PatchSet.RevertAll would.
			panic("engine: applying ILM patch: " + err.Error())
		}
		e.mDetourHops.Add(int64(decPath(dec).Hops()))
	}

	// Pass 4: derive the answer each affected pair's patched data plane
	// now delivers, plus the stretch it pays over the true post-failure
	// shortest distance.
	routes := make(map[rbpc.Pair]*Route, len(affected))
	for _, pr := range affected {
		var rt *Route
		if lsp := e.primaries[pr]; lsp != nil {
			rt = e.localRoute(pr, lsp, downIn, sol, flavor, via)
		}
		routes[pr] = rt
		e.mLocalPairs.Add(0, 1)
		if rt == nil {
			e.mLocalUnrestorable.Add(0, 1)
			continue
		}
		if dist := oracle.Dist(pr.Src, pr.Dst); dist > 0 && dist != spath.Unreachable {
			e.mStretch.Add(int64(math.Round(1000 * rt.Cost / dist)))
		}
	}
	return &localPlan{routes: routes}
}

// localILMRow builds the replacement ILM row for the LSP's i-th crossing,
// resolving the detour decomposition to LSPs on the epoch's net. Mirrors
// rbpc.System.localRow, phrased against engine state.
func (e *Engine) localILMRow(lsp *mpls.LSP, i int, dec core.Decomposition, nh *netHandle, flavor rbpc.LocalScheme) (mpls.ILMEntry, bool) {
	r := rbpc.Resolver{Net: nh.net, LSPs: e.lspOf}
	lsps, err := r.Resolve(dec)
	if err != nil {
		return mpls.ILMEntry{}, false
	}
	atomic.AddInt64(&e.onDemand, int64(r.OnDemand))
	stack, err := mpls.SelfStack(lsps)
	if err != nil {
		return mpls.ILMEntry{}, false
	}
	if flavor == rbpc.EndRoute {
		return mpls.ILMEntry{Out: stack, OutEdge: mpls.LocalProcess}, true
	}
	resume, ok := lsp.HopLabel(i)
	if !ok {
		return mpls.ILMEntry{}, false
	}
	// Bottom-first: the resume label sits beneath the bypass stack,
	// exposed when the bypass's egress pops.
	out := make([]mpls.Label, 0, len(stack)+1)
	out = append(out, resume)
	out = append(out, stack...)
	return mpls.ILMEntry{Out: out, OutEdge: mpls.LocalProcess}, true
}

// localRoute derives the path an affected pair's traffic takes through the
// patched data plane: the primary up to the first down crossing followed by
// the end-route detour to the destination, or (edge-bypass) the primary
// with every down link spliced out for its detour. Returns nil when any
// required detour does not exist — the pair is locally unrestorable.
func (e *Engine) localRoute(pr rbpc.Pair, lsp *mpls.LSP, downIn map[graph.EdgeID]bool, sol func(s, d graph.NodeID) (core.Decomposition, bool), flavor rbpc.LocalScheme, via Scheme) *Route {
	if flavor == rbpc.EndRoute {
		for i, edge := range lsp.Path.Edges {
			if !downIn[edge] {
				continue
			}
			r1 := lsp.Path.Nodes[i]
			dec, ok := sol(r1, pr.Dst)
			if !ok || len(dec.Components) == 0 {
				return nil
			}
			prefix := lsp.Path.SubPath(0, i)
			return &Route{
				Via:  via,
				Path: prefix.Concat(decPath(dec)),
				Cost: prefix.CostIn(e.g) + dec.Cost(e.g),
			}
		}
		return nil // unreachable: downCount said a crossing exists
	}
	nodes := make([]graph.NodeID, 1, len(lsp.Path.Nodes))
	nodes[0] = lsp.Path.Src()
	edges := make([]graph.EdgeID, 0, len(lsp.Path.Edges))
	var cost float64
	for i, edge := range lsp.Path.Edges {
		if !downIn[edge] {
			nodes = append(nodes, lsp.Path.Nodes[i+1])
			edges = append(edges, edge)
			cost += e.g.Edge(edge).W
			continue
		}
		dec, ok := sol(lsp.Path.Nodes[i], lsp.Path.Nodes[i+1])
		if !ok || len(dec.Components) == 0 {
			return nil
		}
		dp := decPath(dec)
		nodes = append(nodes, dp.Nodes[1:]...)
		edges = append(edges, dp.Edges...)
		cost += dec.Cost(e.g)
	}
	return &Route{Via: via, Path: graph.Path{Nodes: nodes, Edges: edges}, Cost: cost}
}

// floodHorizons computes, per router, when the modeled link-state flood of
// this transition's changed links (failures and repairs alike) has reached
// it — the earliest moment it may switch from the local answer to the
// source-router answer. The horizon for the full transition is the max
// over the changed links: a source acts only on complete knowledge of the
// new failed-set. Routers the flood cannot reach get neverHorizon.
func (e *Engine) floodHorizons(delta []graph.EdgeID, fv *graph.FailureView) (horizon []time.Duration, maxFinite time.Duration) {
	if len(delta) == 0 {
		return nil, 0
	}
	horizon = make([]time.Duration, e.g.Order())
	for i, ed := range delta {
		hops := sim.FloodHops(fv, e.g.Edge(ed))
		for r, h := range hops {
			d := neverHorizon
			if h >= 0 {
				d = e.cfg.Flood.Detect + time.Duration(h)*e.cfg.Flood.PerHop
			}
			if i == 0 || d > horizon[r] {
				horizon[r] = d
			}
		}
	}
	for _, d := range horizon {
		if d != neverHorizon && d > maxFinite {
			maxFinite = d
		}
	}
	return horizon, maxFinite
}

// scheduleConvergence arms the hybrid switchover timer: it fires once the
// last reachable router's flood horizon has passed and counts the epoch as
// converged (serving-side switchover needs no timer — Snapshot.Route gates
// on the clock — so the timer exists for observability and is safe to
// cancel). Drain and Close stop all pending timers so no callback
// outlives the engine.
func (e *Engine) scheduleConvergence(d time.Duration) {
	if d <= 0 {
		e.mConverged.Add(0, 1)
		return
	}
	e.timerMu.Lock()
	defer e.timerMu.Unlock()
	if e.timers == nil {
		e.timers = make(map[*time.Timer]struct{})
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		e.timerMu.Lock()
		_, live := e.timers[t]
		delete(e.timers, t)
		e.timerMu.Unlock()
		if live {
			e.mConverged.Add(0, 1)
		}
	})
	e.timers[t] = struct{}{}
}

// stopTimers cancels every pending switchover timer.
func (e *Engine) stopTimers() {
	e.timerMu.Lock()
	defer e.timerMu.Unlock()
	for t := range e.timers {
		t.Stop()
	}
	clear(e.timers)
}

// pendingTimers reports the number of armed switchover timers.
func (e *Engine) pendingTimers() int {
	e.timerMu.Lock()
	defer e.timerMu.Unlock()
	return len(e.timers)
}

// publishLocal builds and publishes the local-restoration epoch for the
// new failed-set. Under SchemeLocal/SchemeBypass this is the transition's
// only epoch — unaffected pairs serve canonical rows, affected pairs the
// local plan — and publishLocal returns done=true. Under SchemeHybrid it
// is phase one of two: the previous epoch's rows are carried (sources have
// not heard of the transition yet, so their precomputed answers are
// honestly stale) beneath the fresh local plan, and the caller continues
// into the source-plan build, which publishes phase two on a fresh net
// clone with srcReady set.
//
// FaultStaleBypass short-circuits the revert+rebuild: the previous plan's
// patches stay applied and its routes keep being served.
func (e *Engine) publishLocal(prev *Snapshot, start time.Time, failed []graph.EdgeID, key string, fv *graph.FailureView, oracle *spath.Oracle, net *mpls.Network, nh *netHandle, newlyDown, repairedIDs []graph.EdgeID) (snap1 *Snapshot, done bool) {
	buildStart := time.Now()
	var lp *localPlan
	if e.cfg.Fault == FaultStaleBypass {
		lp = e.prevLocal
		if lp == nil {
			lp = emptyLocal
		}
	} else {
		e.ilmPatches.RevertAll(net)
		lp = e.buildLocalPlan(failed, fv, oracle, nh)
	}
	e.mLocalBuild.Record(0, time.Since(buildStart))
	e.prevLocal = lp

	hybrid := e.cfg.Scheme == SchemeHybrid
	var horizon []time.Duration
	var maxH time.Duration
	if hybrid {
		delta := make([]graph.EdgeID, 0, len(newlyDown)+len(repairedIDs))
		delta = append(delta, newlyDown...)
		delta = append(delta, repairedIDs...)
		horizon, maxH = e.floodHorizons(delta, fv)
	}
	detected := time.Now()
	if e.cfg.Clock != nil {
		detected = e.cfg.Clock()
	}
	var rows, canon [][]*Route
	var over []*planRow
	switch {
	case hybrid:
		rows, canon, over = prev.rows, prev.canon, prev.over
	case e.cfg.DeltaRows:
		canon, over = e.canonical, e.emptyOver
	default:
		rows = e.canonical
	}
	resident, dense := e.accountRows(rows, over)
	next := &Snapshot{
		epoch:      prev.epoch + 1,
		failed:     failed,
		key:        key,
		fv:         fv,
		net:        net,
		oracle:     oracle,
		created:    time.Now(),
		rows:       rows,
		canon:      canon,
		over:       over,
		rowBytes:   resident,
		denseBytes: dense,
		scheme:     e.cfg.Scheme,
		local:      lp,
		horizon:    horizon,
		maxHorizon: maxH,
		detected:   detected,
		clock:      e.cfg.Clock,
	}
	e.snap.Store(next)
	e.mEpochs.Add(0, 1)
	if !hybrid {
		e.mBuild.Record(0, time.Since(start))
	}
	if e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(next)
	}
	return next, !hybrid
}
