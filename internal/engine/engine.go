package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/core"
	"rbpc/internal/engine/metrics"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
)

// Config tunes the engine. The zero value is usable; New fills defaults.
type Config struct {
	// Workers is the number of goroutines draining the async query queue
	// (Submit). Default GOMAXPROCS-ish small constant.
	Workers int
	// QueueDepth bounds the async query queue; Submit drops (returns
	// false) when it is full. Default 4096.
	QueueDepth int
	// CoalesceWindow is how long the writer keeps absorbing further
	// failure events after the first of a burst before building the epoch.
	// Zero coalesces only events already queued (no added latency).
	CoalesceWindow time.Duration
	// PlanCacheCap bounds the failed-set plan cache (0 = unbounded). Under
	// churn that revisits failed-sets — repairs walking back to pristine —
	// cached plans make epoch builds O(FEC writes).
	PlanCacheCap int
	// WarmOracle precomputes post-failure shortest-path trees for every
	// affected source at epoch build, so reader Dist calls never take the
	// Dijkstra hit.
	WarmOracle bool
	// OracleCap caps each epoch oracle's resident trees (0 = unbounded).
	OracleCap int
	// BuildWorkers parallelizes per-source decomposition during plan
	// computation. Default GOMAXPROCS.
	BuildWorkers int
	// DeltaRows selects the delta-encoded snapshot representation: every
	// epoch shares one canonical matrix and carries per-source overlay
	// rows holding only the destinations whose route diverges from it
	// (the splice points), reconstructed on read by Snapshot.Route. In
	// this mode sources absent from the provision's Routes are never
	// materialized at all — Snapshot.Materialized reports false and a
	// query returns nil — which is what lets a shard hold only its source
	// slice (and a hot-set provision skip cold sources entirely). Dense
	// mode (false, the default) keeps the flat [src][dst] matrix.
	DeltaRows bool
	// FullRebuild forces every epoch's plan to be computed from scratch,
	// bypassing both the plan cache and the incremental affected-pair
	// builder. It is the reference mode of the equivalence oracle: a
	// correct incremental engine publishes snapshots bit-identical to a
	// FullRebuild engine fed the same event sequence. Production leaves
	// it false.
	FullRebuild bool
	// OnResult receives async query answers from the worker pool. Must be
	// safe for concurrent calls. Nil discards answers (the queue still
	// exercises the serving path and metrics).
	OnResult func(Result)
	// OnEpoch, when non-nil, is invoked synchronously by the writer
	// immediately after each epoch publish, with the snapshot just made
	// current. It is the conformance harness's oracle tap: every published
	// epoch can be observed exactly once, in publish order. It runs on the
	// writer goroutine — keep it brief or epoch build latency suffers.
	OnEpoch func(*Snapshot)
	// Fault injects a deliberate writer defect (see Fault). Only the
	// chaos conformance harness sets this; leave FaultNone in production.
	Fault Fault
	// Scheme selects the restoration scheme served online (see Scheme).
	// The zero value is the source-router scheme, the engine's historical
	// behavior.
	Scheme Scheme
	// Flood models link-state flood propagation delay; it only matters
	// under SchemeHybrid, where it sets each source's switchover horizon.
	// The zero value floods instantly (hybrid converges at publish).
	Flood FloodConfig
	// Clock, when non-nil, replaces the wall clock for hybrid switchover
	// gating — deterministic switchover tests inject a fake clock here.
	// Nil uses time.Now.
	Clock func() time.Time
}

// Result is one answered query. It carries its answering Snapshot, so it
// is epoch-scoped like the snapshot itself: consume it, don't store it.
//
//rbpc:epochscoped
type Result struct {
	Src, Dst graph.NodeID
	// Route is nil when the pair was unroutable in the answering epoch.
	Route *Route
	// Snap is the epoch the answer was read from; the route is guaranteed
	// consistent with exactly this epoch's failed-set.
	Snap *Snapshot
}

// Stats is a point-in-time scrape of the engine's counters.
type Stats struct {
	Epoch         uint64
	SnapshotAge   time.Duration
	Queries       int64
	Unroutable    int64
	Submitted     int64
	Dropped       int64
	QueueDepth    int
	Epochs        int64
	PlanCacheHits int64
	PlanCacheMiss int64
	OnDemandLSPs  int64
	// RowBytes/DenseRowBytes are the current snapshot's resident routing
	// matrix bytes and the dense all-pairs equivalent (Snapshot.RowBytes).
	RowBytes      int64
	DenseRowBytes int64
	QueryLatency  metrics.Summary
	EpochBuild    metrics.Summary
	Incremental   IncrementalStats
	// Scheme is the configured restoration scheme; the fields below it are
	// only populated when it is not SchemeSource.
	Scheme Scheme
	// Restore is the distribution of observed time-to-restore: wall-clock
	// from failure injection to a delivering restored answer, as recorded
	// by the serving layer's prober via RecordRestore.
	Restore metrics.Summary
	// LocalBuild is the distribution of local-plan build+patch latency per
	// transition — the time from epoch start until affected pairs have a
	// serving local answer.
	LocalBuild metrics.Summary
	// Stretch accumulates served-cost / shortest-distance per affected
	// pair, in permille (1000 = optimal).
	Stretch metrics.AccSummary
	// DetourHops accumulates the hop length of each installed ILM detour.
	DetourHops metrics.AccSummary
	// LocalPairs / LocalUnrestorable count affected pairs seen by local
	// plan builds and the crossings/pairs no surviving detour could cover.
	LocalPairs        int64
	LocalUnrestorable int64
	// Converged counts hybrid transitions whose switchover horizon has
	// fully passed; PendingTimers is the number of still-armed switchover
	// timers (0 after Drain or Close).
	Converged     int64
	PendingTimers int
}

// Engine serves restoration queries from immutable epoch snapshots while
// a single writer goroutine applies failure churn. See the package comment
// for the concurrency model.
type Engine struct {
	g    *graph.Graph
	base paths.Base
	cfg  Config

	snap atomic.Pointer[Snapshot]

	// Writer-owned state (only the writer goroutine touches these after New).
	lspOf     map[string]*mpls.LSP
	primaries map[rbpc.Pair]*mpls.LSP // canonical primary per provisioned pair
	xbase     *paths.Explicit         // concrete base set (ThroughEdge scans)
	pairIndex *graph.PairIndex        // failed link -> pairs whose primary crosses it
	costIndex *paths.CostIndex        // cost-sorted candidate order for bounded solves
	// live is the persistent filtered form of costIndex: per-source column
	// segments holding only currently-surviving candidates, carried across
	// epochs and refiltered only for sources the failure delta touched.
	// Updated once per published transition; read-only during solve fan-out.
	live      *paths.LiveIndex
	canonical [][]*Route
	planCache *planCache
	prevPlan  *plan
	// downCount tracks, per pair, how many edges of its canonical primary
	// are currently down in the published snapshot. It is the membership
	// side of the affected-pair delta: a pair enters the plan when its
	// count leaves zero and falls back to canonical when it returns there.
	downCount map[rbpc.Pair]int
	// solvers is the writer's pool of warm sparse solvers, one per build
	// worker; Rebind reuses their Dijkstra scratch and dead-path masks
	// across epochs instead of reallocating per plan.
	solvers  []*core.SparseSolver
	onDemand int64
	inc      incCounters
	// Local-restoration writer state (Config.Scheme != SchemeSource):
	// the ILM patches applied on the current epoch's net, the local plan
	// serving it, and the shared empty overlay local epochs publish in
	// delta-row mode.
	ilmPatches mpls.PatchSet
	prevLocal  *localPlan
	emptyOver  []*planRow

	// timers holds the armed hybrid switchover timers.
	//
	//rbpc:guardedby timerMu
	timers  map[*time.Timer]struct{}
	timerMu sync.Mutex

	// canonBytes is the resident cost of the canonical matrix (top-level
	// slice + every materialized row), fixed after New.
	canonBytes int64
	// rowBytes/denseBytes mirror the latest snapshot's accounting for
	// lock-free scraping (written by the writer, read by Stats).
	rowBytes   atomic.Int64
	denseBytes atomic.Int64

	events chan writerMsg
	// queries is sharded one channel per worker so concurrent submitters
	// never serialize on a single channel lock: each Submit/SubmitBatch
	// lands on exactly one shard and each worker drains exactly one.
	queries   []chan queryReq
	submitSeq atomic.Uint64
	done      chan struct{}
	wg        sync.WaitGroup
	closed    sync.Once

	mQueries    metrics.Counter
	mUnroutable metrics.Counter
	mSubmitted  metrics.Counter
	mDropped    metrics.Counter
	mEpochs     metrics.Counter
	mCacheHits  metrics.Counter
	mCacheMiss  metrics.Counter
	mLatency    metrics.Histogram
	mBuild      metrics.Histogram

	mRestore           metrics.Histogram
	mLocalBuild        metrics.Histogram
	mStretch           metrics.Acc
	mDetourHops        metrics.Acc
	mConverged         metrics.Counter
	mLocalPairs        metrics.Counter
	mLocalUnrestorable metrics.Counter
}

type writerMsg struct {
	ev    failure.Event
	flush chan struct{} // non-nil: barrier marker, no event
}

type queryReq struct {
	src, dst graph.NodeID
	at       time.Time
	// batch, when non-nil, carries a whole burst of pairs stamped with one
	// timestamp and served from one snapshot load; src/dst are unused.
	batch []rbpc.Pair
	// drain, when non-nil, is a Drain barrier: the worker closes it after
	// serving everything queued ahead of it. No query is attached.
	drain chan struct{}
}

// netHandle wraps the epoch's writable network clone for plan resolution.
type netHandle struct {
	net *mpls.Network
}

// New builds an engine over a pristine provisioned export (p.Failed must
// be empty: the engine owns all failure state from here on) and starts its
// writer and query workers.
func New(p rbpc.Provision, cfg Config) (*Engine, error) {
	if len(p.Failed) != 0 {
		return nil, fmt.Errorf("engine: provision has %d pre-existing failures; export a pristine system", len(p.Failed))
	}
	if cfg.Scheme < SchemeSource || cfg.Scheme > SchemeHybrid {
		return nil, fmt.Errorf("engine: unknown scheme %d", int(cfg.Scheme))
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4096
	}
	if cfg.BuildWorkers < 1 {
		cfg.BuildWorkers = runtime.GOMAXPROCS(0)
	}

	n := p.Graph.Order()
	costIndex := paths.NewCostIndex(p.Base)
	e := &Engine{
		g:         p.Graph,
		base:      p.Base,
		cfg:       cfg,
		lspOf:     p.LSPs,
		primaries: p.Primaries,
		xbase:     p.Base,
		costIndex: costIndex,
		live:      paths.NewLiveIndex(p.Base, costIndex),
		canonical: make([][]*Route, n),
		planCache: newPlanCache(cfg.PlanCacheCap),
		prevPlan:  emptyPlan,
		downCount: make(map[rbpc.Pair]int),
		events:    make(chan writerMsg, 256),
		queries:   make([]chan queryReq, cfg.Workers),
		done:      make(chan struct{}),
	}

	// Static index: failed link -> pairs whose primary crosses it, packed
	// flat (CSR) so the hot affected-pair scan is one contiguous slice per
	// edge. Primaries never change, so the index is built once; per-edge
	// lists are (src, dst)-sorted for deterministic plan construction.
	lists := make(map[graph.EdgeID][]graph.NodePair)
	for pr, lsp := range p.Primaries {
		for _, ed := range lsp.Path.Edges {
			lists[ed] = append(lists[ed], graph.NodePair{Src: pr.Src, Dst: pr.Dst})
		}
	}
	for _, prs := range lists {
		sort.Slice(prs, func(i, j int) bool {
			if prs[i].Src != prs[j].Src {
				return prs[i].Src < prs[j].Src
			}
			return prs[i].Dst < prs[j].Dst
		})
	}
	e.pairIndex = graph.BuildPairIndex(p.Graph.Size(), lists)

	// Canonical routing matrix from the provisioned routes. Dense mode
	// allocates every row up front; delta mode allocates rows lazily from
	// the routes actually provisioned, so sources outside a hot-set
	// provision stay nil (non-materialized) and cost nothing.
	if !cfg.DeltaRows {
		for i := range e.canonical {
			e.canonical[i] = make([]*Route, n)
		}
	}
	for pr, lsps := range p.Routes {
		stack, err := mpls.SelfStack(lsps)
		if err != nil {
			return nil, fmt.Errorf("engine: provision route %v: %w", pr, err)
		}
		var cost float64
		for _, l := range lsps {
			cost += l.Path.CostIn(p.Graph)
		}
		row := e.canonical[pr.Src]
		if row == nil {
			row = make([]*Route, n)
			e.canonical[pr.Src] = row
		}
		row[pr.Dst] = &Route{LSPs: lsps, Stack: stack, Cost: cost}
	}

	e.canonBytes = int64(n) * 8
	for _, row := range e.canonical {
		if row != nil {
			e.canonBytes += int64(len(row)) * 8
		}
	}

	// Epoch 0: the pristine snapshot. The provision's network is cloned
	// (copy-on-write) so the exporting System and the engine part ways.
	s0 := &Snapshot{
		epoch:   0,
		failed:  nil,
		key:     "",
		fv:      graph.FailEdges(p.Graph),
		net:     p.Net.Clone(),
		oracle:  spath.NewOracle(graph.FailEdges(p.Graph)),
		created: time.Now(),
		scheme:  cfg.Scheme,
		clock:   cfg.Clock,
	}
	e.emptyOver = make([]*planRow, n)
	if cfg.Scheme != SchemeSource {
		// Pristine local state: no failures, no patches, and (hybrid)
		// nothing to converge to — the epoch is trivially converged.
		s0.local = emptyLocal
		s0.srcReady = true
		e.prevLocal = emptyLocal
	}
	if cfg.DeltaRows {
		s0.canon = e.canonical
		s0.over = e.emptyOver
	} else {
		s0.rows = e.canonical
	}
	s0.rowBytes, s0.denseBytes = e.accountRows(s0.rows, s0.over)
	if cfg.OracleCap > 0 {
		s0.oracle.SetCap(cfg.OracleCap)
	}
	e.snap.Store(s0)

	e.wg.Add(1)
	go e.writer()
	// Each worker owns one shard; per-shard depth splits QueueDepth so the
	// configured bound stays the total in-flight budget.
	depth := cfg.QueueDepth / cfg.Workers
	if depth < 1 {
		depth = 1
	}
	for w := 0; w < cfg.Workers; w++ {
		e.queries[w] = make(chan queryReq, depth)
		e.wg.Add(1)
		go e.queryWorker(uint64(w))
	}
	return e, nil
}

// Snapshot returns the current serving epoch. The returned snapshot stays
// valid (immutable) even after later epochs are published.
//
//rbpc:hotpath
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Query answers synchronously from the current epoch: lock-free and
// allocation-free. The result's Route is nil for unroutable pairs.
//
//rbpc:hotpath
func (e *Engine) Query(src, dst graph.NodeID) Result {
	s := e.snap.Load()
	r := s.Route(src, dst)
	key := uint64(src)*0x9e3779b1 + uint64(dst)
	e.mQueries.Add(key, 1)
	if r == nil && src != dst {
		e.mUnroutable.Add(key, 1)
	}
	return Result{Src: src, Dst: dst, Route: r, Snap: s}
}

// Dist returns the post-failure shortest distance for the pair in the
// current epoch (+Inf if disconnected), via the epoch's oracle.
func (e *Engine) Dist(src, dst graph.NodeID) float64 {
	return e.snap.Load().oracle.Dist(src, dst)
}

// Submit enqueues an async query for the worker pool. It reports false —
// without blocking — when the target shard is full (the open-loop load
// shed). Shards are chosen round-robin so steady load spreads across all
// workers.
//
//rbpc:hotpath
func (e *Engine) Submit(src, dst graph.NodeID) bool {
	key := uint64(src)*0x9e3779b1 + uint64(dst)
	e.mSubmitted.Add(key, 1)
	shard := e.submitSeq.Add(1) % uint64(len(e.queries))
	select {
	case e.queries[shard] <- queryReq{src: src, dst: dst, at: time.Now()}:
		return true
	default:
		e.mDropped.Add(key, 1)
		return false
	}
}

// SubmitBatch enqueues a whole burst of queries with one timestamp and one
// channel operation; the receiving worker serves the entire burst from a
// single snapshot load. The engine takes ownership of pairs — the caller
// must not reuse the slice. Returns the number of queries accepted: the
// burst is admitted or shed as a unit, so the result is len(pairs) or 0.
//
//rbpc:hotpath
func (e *Engine) SubmitBatch(pairs []rbpc.Pair) int {
	if len(pairs) == 0 {
		return 0
	}
	key := e.submitSeq.Add(1)
	e.mSubmitted.Add(key, int64(len(pairs)))
	shard := key % uint64(len(e.queries))
	select {
	case e.queries[shard] <- queryReq{at: time.Now(), batch: pairs}:
		return len(pairs)
	default:
		e.mDropped.Add(key, int64(len(pairs)))
		return 0
	}
}

func (e *Engine) queryWorker(id uint64) {
	defer e.wg.Done()
	ch := e.queries[id]
	for {
		select {
		case <-e.done:
			return
		case q := <-ch:
			if q.drain != nil {
				close(q.drain)
				continue
			}
			if q.batch != nil {
				e.serveBatch(id, q)
				continue
			}
			res := e.Query(q.src, q.dst)
			e.mLatency.Record(id, time.Since(q.at))
			if e.cfg.OnResult != nil {
				e.cfg.OnResult(res)
			}
		}
	}
}

// serveBatch answers a submitted burst: one snapshot load and one latency
// record cover every pair, so the per-query cost is a row lookup plus an
// amortized share of the channel and clock overhead. (Not hotpath-annotated:
// the optional OnResult callback is a dynamic call the checker cannot
// verify; the per-candidate work is all in annotated callees.)
func (e *Engine) serveBatch(id uint64, q queryReq) {
	s := e.snap.Load()
	var unroutable int64
	for _, pr := range q.batch {
		r := s.Route(pr.Src, pr.Dst)
		if r == nil && pr.Src != pr.Dst {
			unroutable++
		}
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(Result{Src: pr.Src, Dst: pr.Dst, Route: r, Snap: s})
		}
	}
	e.mQueries.Add(id, int64(len(q.batch)))
	if unroutable != 0 {
		e.mUnroutable.Add(id, unroutable)
	}
	e.mLatency.RecordN(id, time.Since(q.at), int64(len(q.batch)))
}

// Fail injects a link failure. The epoch including it is published
// asynchronously; use Flush to wait.
func (e *Engine) Fail(ed graph.EdgeID) { e.send(failure.Event{Edge: ed}) }

// Repair injects a link repair.
func (e *Engine) Repair(ed graph.EdgeID) { e.send(failure.Event{Repair: true, Edge: ed}) }

// ApplyEvents injects a burst of churn events; the writer coalesces them
// into as few epochs as its timing allows (often one).
func (e *Engine) ApplyEvents(evs []failure.Event) {
	for _, ev := range evs {
		e.send(ev)
	}
}

func (e *Engine) send(ev failure.Event) {
	select {
	case e.events <- writerMsg{ev: ev}:
	case <-e.done:
	}
}

// Flush blocks until every event sent before the call is reflected in the
// published snapshot.
func (e *Engine) Flush() {
	ch := make(chan struct{})
	select {
	case e.events <- writerMsg{flush: ch}:
	case <-e.done:
		return
	}
	select {
	case <-ch:
	case <-e.done:
	}
}

// Drain blocks until every query submitted before the call has been
// served: it enqueues a barrier on each worker shard (blocking if the
// shard is full — drains never shed) and waits for all workers to pass
// it. Queries submitted concurrently with Drain may or may not be
// covered. Call before scraping final metrics so tail latencies of the
// residual queue are recorded; returns immediately if the engine is
// closed.
func (e *Engine) Drain() {
	// Cancel pending hybrid switchover timers: a drain precedes metric
	// scrapes and shutdown, and a timer firing after either is a stray
	// goroutine touching engine state (the serving-side switchover needs
	// no timer, so cancelling never changes an answer).
	e.stopTimers()
	barriers := make([]chan struct{}, len(e.queries))
	for i, ch := range e.queries {
		b := make(chan struct{})
		select {
		case ch <- queryReq{drain: b}:
			barriers[i] = b
		case <-e.done:
			return
		}
	}
	for _, b := range barriers {
		select {
		case <-b:
		case <-e.done:
			return
		}
	}
}

// Close stops the writer and workers. Queries against already-obtained
// snapshots remain valid; Engine methods must not be called after Close.
func (e *Engine) Close() {
	e.stopTimers()
	e.closed.Do(func() { close(e.done) })
	e.wg.Wait()
}

// queueLen sums the in-flight queue entries across all worker shards.
// Batched entries count once — it measures backlog pressure, not queries.
func (e *Engine) queueLen() int {
	n := 0
	for _, ch := range e.queries {
		n += len(ch)
	}
	return n
}

// Stats scrapes the engine's counters.
func (e *Engine) Stats() Stats {
	s := e.snap.Load()
	return Stats{
		Epoch:         s.epoch,
		SnapshotAge:   s.Age(),
		Queries:       e.mQueries.Load(),
		Unroutable:    e.mUnroutable.Load(),
		Submitted:     e.mSubmitted.Load(),
		Dropped:       e.mDropped.Load(),
		QueueDepth:    e.queueLen(),
		Epochs:        e.mEpochs.Load(),
		PlanCacheHits: e.mCacheHits.Load(),
		PlanCacheMiss: e.mCacheMiss.Load(),
		OnDemandLSPs:  atomic.LoadInt64(&e.onDemand),
		RowBytes:      e.rowBytes.Load(),
		DenseRowBytes: e.denseBytes.Load(),
		QueryLatency:  e.mLatency.Summarize(),
		EpochBuild:    e.mBuild.Summarize(),
		Incremental:   e.inc.snapshot(),

		Scheme:            e.cfg.Scheme,
		Restore:           e.mRestore.Summarize(),
		LocalBuild:        e.mLocalBuild.Summarize(),
		Stretch:           e.mStretch.Summarize(),
		DetourHops:        e.mDetourHops.Summarize(),
		LocalPairs:        e.mLocalPairs.Load(),
		LocalUnrestorable: e.mLocalUnrestorable.Load(),
		Converged:         e.mConverged.Load(),
		PendingTimers:     e.pendingTimers(),
	}
}

// AffectedPairs returns the provisioned pairs whose canonical primary
// crosses the link — the pairs whose service a failure of ed interrupts.
// The index is static after New, so this is safe to call concurrently;
// the serving layer's time-to-restore prober uses it to pick the pairs to
// probe after injecting a failure. Callers must not modify the result.
func (e *Engine) AffectedPairs(ed graph.EdgeID) []graph.NodePair {
	return e.pairIndex.Pairs(ed)
}

// RecordRestore records one observed time-to-restore: the wall-clock from
// failure injection until an affected pair's query returned a delivering
// restored answer (Stats.Restore).
func (e *Engine) RecordRestore(d time.Duration) {
	e.mRestore.Record(0, d)
}

// writer is the single mutator: it drains failure events, coalesces
// bursts, and publishes epochs.
func (e *Engine) writer() {
	defer e.wg.Done()
	downSet := make(map[graph.EdgeID]bool)
	for {
		var first writerMsg
		select {
		case <-e.done:
			return
		case first = <-e.events:
		}
		flushes, changed := e.absorb(first, downSet)
		if changed {
			e.publish(downSet)
		}
		for _, ch := range flushes {
			close(ch)
		}
	}
}

// absorb applies msg and then keeps absorbing queued events — plus, if
// configured, events arriving within the coalesce window — into downSet.
// It returns the flush barriers seen and whether the failed-set changed.
func (e *Engine) absorb(msg writerMsg, downSet map[graph.EdgeID]bool) (flushes []chan struct{}, changed bool) {
	apply := func(m writerMsg) {
		if m.flush != nil {
			flushes = append(flushes, m.flush)
			return
		}
		if m.ev.Repair {
			if downSet[m.ev.Edge] {
				delete(downSet, m.ev.Edge)
				changed = true
			}
		} else if !downSet[m.ev.Edge] {
			downSet[m.ev.Edge] = true
			changed = true
		}
	}
	apply(msg)

	var window <-chan time.Time
	if e.cfg.CoalesceWindow > 0 {
		window = time.After(e.cfg.CoalesceWindow)
	}
	for {
		select {
		case m := <-e.events:
			apply(m)
		case <-window:
			return flushes, changed
		case <-e.done:
			return flushes, changed
		default:
			if window == nil {
				return flushes, changed
			}
			// Window still open: block for more events (or the deadline).
			select {
			case m := <-e.events:
				apply(m)
			case <-window:
				return flushes, changed
			case <-e.done:
				return flushes, changed
			}
		}
	}
}

// publish builds and swaps in the epoch for the given failed-set.
func (e *Engine) publish(downSet map[graph.EdgeID]bool) {
	start := time.Now()
	prev := e.snap.Load()

	failed := make([]graph.EdgeID, 0, len(downSet))
	for ed := range downSet {
		failed = append(failed, ed)
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	key := failedKey(failed)
	if key == prev.key {
		return // coalesced burst cancelled out
	}
	shrunk := len(failed) < len(prev.failed)
	if e.cfg.Fault == FaultDropEpoch && shrunk {
		return // injected defect: repairs absorbed but never surfaced
	}

	// Transition delta against the published snapshot: the edges that just
	// went down and the ones that just came back. Everything incremental
	// below is phrased in terms of this delta, never the full failed-set.
	prevDown := make(map[graph.EdgeID]bool, len(prev.failed))
	for _, ed := range prev.failed {
		prevDown[ed] = true
	}
	var newlyDown []graph.EdgeID
	for _, ed := range failed {
		if !prevDown[ed] {
			newlyDown = append(newlyDown, ed)
		}
	}
	var repairedIDs []graph.EdgeID
	var repaired []graph.Edge
	for _, ed := range prev.failed {
		if !downSet[ed] {
			repairedIDs = append(repairedIDs, ed)
			repaired = append(repaired, e.g.Edge(ed))
		}
	}

	// Affected-pair membership: bump downCount for newly-failed primary
	// edges before decrementing repaired ones, so "entering" (count leaves
	// zero) and "leaving" (count returns to zero) are unambiguous — a pair
	// crossing both a new failure and a repair keeps a positive count
	// throughout and is classified as staying. This bookkeeping runs on
	// every published transition, cache hits and fault paths included, so
	// it always mirrors the serving snapshot's failed-set.
	var entering, leaving []rbpc.Pair
	for _, ed := range newlyDown {
		for _, np := range e.pairIndex.Pairs(ed) {
			pr := rbpc.Pair{Src: np.Src, Dst: np.Dst}
			if e.downCount[pr] == 0 {
				entering = append(entering, pr)
			}
			e.downCount[pr]++
		}
	}
	for _, ed := range repairedIDs {
		for _, np := range e.pairIndex.Pairs(ed) {
			pr := rbpc.Pair{Src: np.Src, Dst: np.Dst}
			e.downCount[pr]--
			if e.downCount[pr] == 0 {
				delete(e.downCount, pr)
				leaving = append(leaving, pr)
			}
		}
	}
	e.inc.entering.Add(int64(len(entering)))
	e.inc.leaving.Add(int64(len(leaving)))

	// Carry the persistent live candidate index across the transition. Like
	// the downCount bookkeeping above, this runs on every published epoch —
	// cache hits and fault paths included — so the index always mirrors the
	// serving snapshot's failed-set when the next solve fan-out reads it.
	e.live.Update(newlyDown, repairedIDs)

	// The net lineage is linear: always clone the latest snapshot's net,
	// so ILM rows of LSPs signaled on demand in any earlier epoch persist
	// (cached plans rely on this).
	net := prev.net.Clone()
	for _, ed := range repairedIDs {
		net.RepairEdge(ed)
	}
	for _, ed := range failed {
		net.FailEdge(ed)
	}

	fv := graph.FailEdges(e.g, failed...)
	oracle := spath.NewOracle(fv)
	if e.cfg.OracleCap > 0 {
		oracle.SetCap(e.cfg.OracleCap)
	}
	if !e.cfg.FullRebuild {
		// Seed the epoch's oracle with every previous-epoch tree that
		// provably survives the transition; adopted trees double as the
		// pruning bounds of the incremental plan build below.
		e.inc.treesAdopted.Add(int64(oracle.AdoptFrom(prev.oracle, newlyDown, repaired)))
	}

	nh := &netHandle{net: net}

	// Local restoration schemes: publish the local epoch. For SchemeLocal
	// and SchemeBypass that is the whole transition; for SchemeHybrid it is
	// phase one, and the source-plan build below publishes phase two on a
	// fresh net clone (the phase-one snapshot owns net from here on — its
	// ILM patches ride along in the copy-on-write lineage).
	var snap1 *Snapshot
	if e.cfg.Scheme != SchemeSource {
		var done bool
		snap1, done = e.publishLocal(prev, start, failed, key, fv, oracle, net, nh, newlyDown, repairedIDs)
		if done {
			return
		}
		net = net.Clone()
		nh = &netHandle{net: net}
	}

	var pl *plan
	var changed []rbpc.Pair
	delta := false
	hit := false
	switch {
	case e.cfg.Fault == FaultStalePlanOnRepair && shrunk:
		// Injected defect: keep serving the previous failed-set's plan.
		pl, hit = e.prevPlan, true
	case e.cfg.FullRebuild:
		// Reference mode: from-scratch plan, no cache, no reuse.
		pl = e.computePlan(failed, nh)
		e.inc.fullRebuilds.Add(1)
	default:
		if p, ok := e.lookupPlan(key); ok {
			pl, hit = p, true
		} else {
			var aliased bool
			pl, changed, aliased = e.incrementalPlan(key, fv, oracle, newlyDown, entering, leaving, repaired, nh)
			e.storePlan(pl)
			delta = true
			// A repair-only burst canonicalized to the previous plan counts
			// as a cache hit: the lookup was answered from existing state
			// with no solve.
			hit = aliased
		}
	}
	if hit {
		e.mCacheHits.Add(0, 1)
	} else {
		e.mCacheMiss.Add(0, 1)
	}

	assembleStart := time.Now()
	var rows [][]*Route
	var over []*planRow
	var warmSrcs []graph.NodeID
	if e.cfg.DeltaRows {
		over, warmSrcs = e.assembleOverlay(prev, pl, changed, delta, net)
	} else {
		rows, warmSrcs = e.assembleDense(prev, pl, changed, delta, net)
	}
	e.inc.assembleNs.Add(time.Since(assembleStart).Nanoseconds())

	if e.cfg.WarmOracle {
		oracle.Precompute(warmSrcs, e.cfg.BuildWorkers)
	}

	var canon [][]*Route
	if e.cfg.DeltaRows {
		canon = e.canonical
	}
	resident, dense := e.accountRows(rows, over)
	epoch := prev.epoch + 1
	// Hybrid phase two carries the phase-one snapshot's local serving
	// state with srcReady set: source rows are ready, and each source
	// switches to them as its flood horizon passes (Snapshot.Route gates
	// per read).
	var scheme Scheme
	var local *localPlan
	var horizon []time.Duration
	var maxHorizon time.Duration
	var detected time.Time
	var clock func() time.Time
	var localNet *mpls.Network
	if snap1 != nil {
		epoch = snap1.epoch + 1
		scheme = SchemeHybrid
		local = snap1.local
		horizon = snap1.horizon
		maxHorizon = snap1.maxHorizon
		detected = snap1.detected
		clock = snap1.clock
		localNet = snap1.net
	}
	next := &Snapshot{
		epoch:      epoch,
		failed:     failed,
		key:        key,
		fv:         fv,
		net:        net,
		oracle:     oracle,
		created:    time.Now(),
		canon:      canon,
		over:       over,
		rows:       rows,
		rowBytes:   resident,
		denseBytes: dense,
		scheme:     scheme,
		local:      local,
		horizon:    horizon,
		maxHorizon: maxHorizon,
		detected:   detected,
		clock:      clock,
		srcReady:   snap1 != nil,
		localNet:   localNet,
	}
	e.prevPlan = pl
	e.snap.Store(next)
	e.mEpochs.Add(0, 1)
	e.mBuild.Record(0, time.Since(start))
	if snap1 != nil {
		e.scheduleConvergence(snap1.maxHorizon)
	}
	if e.cfg.OnEpoch != nil {
		e.cfg.OnEpoch(next)
	}
}

// assembleDense builds the dense serving matrix for the next epoch. The
// delta path shares every untouched row of the previous snapshot
// (copy-on-write) and rewrites only the changed pairs; the full path
// (cache hits, reference mode, fault paths) starts from canonical rows
// and applies the whole plan. Both rewrite the FEC entries of the pairs
// they touch on the epoch's cloned net.
func (e *Engine) assembleDense(prev *Snapshot, pl *plan, changed []rbpc.Pair, delta bool, net *mpls.Network) ([][]*Route, []graph.NodeID) {
	var rows [][]*Route
	var warmSrcs []graph.NodeID
	if delta {
		// Delta apply: share every untouched row of the previous snapshot
		// (copy-on-write), rewriting only the pairs whose route changed —
		// recomputed plan entries and pairs leaving the plan. Reused plan
		// entries are already in the previous rows by construction.
		//
		// The rewrite fans out by source, lock-free: changed is
		// (src, dst)-sorted, so contiguous spans partition it by source,
		// and a worker owning a span writes only rows[src] (one disjoint
		// top-level slot) and router src's FEC table (router-granular
		// copy-on-write; counters are atomic). The WaitGroup below is the
		// single publication barrier — every slot write happens before the
		// snapshot pointer store, and no reader sees a partial epoch
		// because readers only ever traverse the published pointer.
		rows = make([][]*Route, len(prev.rows))
		copy(rows, prev.rows)
		type srcSpan struct {
			src    graph.NodeID
			lo, hi int
		}
		var spans []srcSpan
		for lo := 0; lo < len(changed); {
			hi := lo + 1
			for hi < len(changed) && changed[hi].Src == changed[lo].Src {
				hi++
			}
			spans = append(spans, srcSpan{src: changed[lo].Src, lo: lo, hi: hi})
			lo = hi
		}
		applySpan := func(sp srcSpan) {
			row := make([]*Route, len(prev.rows[sp.src]))
			copy(row, prev.rows[sp.src])
			for _, pr := range changed[sp.lo:sp.hi] {
				if rt, covered := pl.routes[pr]; covered {
					row[pr.Dst] = rt
				} else {
					row[pr.Dst] = e.canonical[pr.Src][pr.Dst]
				}
			}
			rows[sp.src] = row
			// Forwarding plane: only changed pairs need their FEC
			// rewritten; reused routes kept their entries in the cloned net.
			for _, pr := range changed[sp.lo:sp.hi] {
				if _, covered := pl.routes[pr]; !covered && e.cfg.Fault == FaultSkipFECRewrite {
					continue // injected defect: leaving pairs keep stale labels
				}
				if rt := row[pr.Dst]; rt == nil {
					net.ClearFEC(pr.Src, pr.Dst)
				} else {
					net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{Stack: rt.Stack, OutEdge: mpls.LocalProcess})
				}
			}
		}
		if workers := min(e.cfg.BuildWorkers, len(spans)); workers > 1 {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(spans) {
							return
						}
						applySpan(spans[i])
					}
				}()
			}
			wg.Wait() // publication barrier: all slot writes precede the snap.Store below
		} else {
			for _, sp := range spans {
				applySpan(sp)
			}
		}
		for _, sp := range spans {
			warmSrcs = append(warmSrcs, sp.src)
		}
	} else {
		// Full apply (cache hits, reference mode, fault paths): fresh
		// top-level slice over shared canonical rows, deep-copying only
		// the rows this transition touches.
		rows = make([][]*Route, len(e.canonical))
		copy(rows, e.canonical)
		touched := make(map[graph.NodeID][]*Route)
		row := func(src graph.NodeID) []*Route {
			r, ok := touched[src]
			if !ok {
				r = make([]*Route, len(e.canonical[src]))
				copy(r, e.canonical[src])
				touched[src] = r
				rows[src] = r
			}
			return r
		}

		// Apply the new plan; pairs in the previous plan but not this one
		// fall back to canonical simply by starting from canonical rows —
		// their FEC entries are rewritten below.
		for pr, rt := range pl.routes {
			row(pr.Src)[pr.Dst] = rt
		}

		// Forwarding plane: rewrite the FEC entry of every pair in either
		// plan to match the new matrix.
		writeFEC := func(pr rbpc.Pair) {
			rt := rows[pr.Src][pr.Dst]
			if rt == nil {
				net.ClearFEC(pr.Src, pr.Dst)
				return
			}
			net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{Stack: rt.Stack, OutEdge: mpls.LocalProcess})
		}
		for pr := range pl.routes {
			writeFEC(pr)
		}
		if e.cfg.Fault != FaultSkipFECRewrite {
			for pr := range e.prevPlan.routes {
				if _, covered := pl.routes[pr]; !covered {
					writeFEC(pr)
				}
			}
		}
		for s := range touched {
			warmSrcs = append(warmSrcs, s)
		}
	}
	return rows, warmSrcs
}

// accountRows computes the resident routing-matrix bytes of a snapshot
// holding the given dense rows / overlay and the dense all-pairs
// equivalent, mirroring both into the engine's scrape counters. Dense
// mode holds the full matrix by construction; delta mode pays for
// materialized canonical rows plus the overlay.
func (e *Engine) accountRows(rows [][]*Route, over []*planRow) (resident, dense int64) {
	n := int64(len(e.canonical))
	dense = n*8 + n*n*8
	resident = dense
	if rows == nil {
		resident = e.canonBytes + overlayBytes(over)
	}
	e.rowBytes.Store(resident)
	e.denseBytes.Store(dense)
	return resident, dense
}

// resolveRoute maps a decomposition onto LSPs via the shared resolver,
// establishing missing components on the epoch's net.
func (e *Engine) resolveRoute(dec core.Decomposition, nh *netHandle) (*Route, error) {
	r := rbpc.Resolver{Net: nh.net, LSPs: e.lspOf}
	lsps, err := r.Resolve(dec)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&e.onDemand, int64(r.OnDemand))
	stack, err := mpls.SelfStack(lsps)
	if err != nil {
		return nil, err
	}
	return &Route{LSPs: lsps, Stack: stack, Cost: dec.Cost(e.g)}, nil
}
