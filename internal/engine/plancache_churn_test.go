package engine

import (
	"math/rand"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

// TestPlanCacheHitRateUnderChurn pins the plan-cache hit rate on the seeded
// churn schedule the rbpc-bench -engine benchmark drives (AS stand-in,
// seed 1, 40 events, max 4 down). Hits come from two sources: failed-sets
// the schedule genuinely revisits (answered by the canonical sorted-key
// lookup), and repair-only bursts whose classification proves nothing
// needs re-solving — those canonicalize to the previous plan's entries
// (minus pairs leaving) without running a solver, and count as hits
// because the key was answered from cached state. Natural revisits alone
// give ~0.10 on this schedule; the repair-only canonicalization is what
// holds the rate above the asserted floor, so a regression in it trips
// this test.
func TestPlanCacheHitRateUnderChurn(t *testing.T) {
	const seed = 1
	g := topology.PaperAS(seed, 0.06)
	sys, err := rbpc.NewSystem(g, rbpc.Config{EdgeLSPs: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys.Export(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	events := failure.ChurnSchedule(g, 40, 4, rand.New(rand.NewSource(seed)))
	for _, ev := range events {
		if ev.Repair {
			e.Repair(ev.Edge)
		} else {
			e.Fail(ev.Edge)
		}
		e.Flush()
	}

	st := e.Stats()
	total := st.PlanCacheHits + st.PlanCacheMiss
	if total == 0 {
		t.Fatal("no plan lookups recorded under churn")
	}
	rate := float64(st.PlanCacheHits) / float64(total)
	t.Logf("plan cache: %d hits / %d misses (rate %.3f) over %d epochs",
		st.PlanCacheHits, st.PlanCacheMiss, rate, st.Epochs)
	if rate <= 0.15 {
		t.Fatalf("plan cache hit rate %.3f, want > 0.15 on the seeded churn schedule", rate)
	}
}
