package engine

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

// TestDeltaRowsMatchDense churns a delta-row engine and a dense engine in
// lockstep and demands bit-identical answers at every quiescent point,
// plus the memory accounting that justifies the mode.
func TestDeltaRowsMatchDense(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 3)
	dense, _ := newEngine(t, g, Config{})
	delta, _ := newEngine(t, g, Config{DeltaRows: true})

	rng := rand.New(rand.NewSource(11))
	edges := g.Edges()
	down := map[graph.EdgeID]bool{}
	compare := func(tag string) {
		t.Helper()
		dense.Flush()
		delta.Flush()
		for s := 0; s < g.Order(); s++ {
			for d := 0; d < g.Order(); d++ {
				if s == d {
					continue
				}
				src, dst := graph.NodeID(s), graph.NodeID(d)
				want := dense.Query(src, dst).Route
				got := delta.Query(src, dst).Route
				if (got == nil) != (want == nil) {
					t.Fatalf("%s: %d->%d routable mismatch: delta %v, dense %v",
						tag, s, d, got != nil, want != nil)
				}
				if got == nil {
					continue
				}
				if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
					t.Fatalf("%s: %d->%d cost %v != %v", tag, s, d, got.Cost, want.Cost)
				}
				for i := range got.LSPs {
					if !got.LSPs[i].Path.Equal(want.LSPs[i].Path) {
						t.Fatalf("%s: %d->%d component %d path mismatch", tag, s, d, i)
					}
				}
			}
		}
	}

	compare("initial")
	for step := 0; step < 30; step++ {
		e := edges[rng.Intn(len(edges))].ID
		if down[e] {
			delete(down, e)
			dense.Repair(e)
			delta.Repair(e)
		} else if len(down) < 3 {
			down[e] = true
			dense.Fail(e)
			delta.Fail(e)
		}
		if step%6 == 5 {
			compare("churn")
		}
	}
	compare("final")

	// With every source hot the canonical matrix is fully materialized, so
	// delta mode carries a small overlay overhead over dense — the memory
	// win needs a hot set (TestDeltaRowsColdSource). Just check accounting.
	resident, denseBytes := delta.Snapshot().RowBytes()
	if resident == 0 || denseBytes == 0 {
		t.Fatalf("row accounting missing: resident %d, dense %d", resident, denseBytes)
	}
	st := delta.Stats()
	if st.RowBytes != resident || st.DenseRowBytes != denseBytes {
		t.Fatalf("stats row bytes %d/%d disagree with snapshot %d/%d",
			st.RowBytes, st.DenseRowBytes, resident, denseBytes)
	}
}

// TestDeltaRowsColdSource checks that a source outside the provisioned
// hot set is reported non-materialized and answers nil.
func TestDeltaRowsColdSource(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 2)
	sys, err := rbpc.NewSystem(g, rbpc.Config{
		SubpathClosure: true, EdgeLSPs: true,
		Sources: []graph.NodeID{0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sys.Export(), Config{DeltaRows: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	s := e.Snapshot()
	if !s.Materialized(0) {
		t.Fatal("hot source 0 not materialized")
	}
	if s.Materialized(9) {
		t.Fatal("cold source 9 claims materialization")
	}
	if rt := e.Query(9, 3).Route; rt != nil {
		t.Fatal("cold source answered from rows")
	}
	if rt := e.Query(0, 9).Route; rt == nil {
		t.Fatal("hot source unroutable")
	}
	// 3 of 12 sources materialized: resident bytes must undercut the
	// dense all-pairs matrix by a wide margin.
	resident, dense := s.RowBytes()
	if resident*2 >= dense {
		t.Fatalf("hot-set resident %d bytes, dense %d — expected under half", resident, dense)
	}
}

// TestPlanCacheClock unit-tests the bounded CLOCK cache: capacity is
// enforced, the pristine plan survives eviction, recently-referenced
// entries survive one hand pass.
func TestPlanCacheClock(t *testing.T) {
	pc := newPlanCache(2)
	mk := func(key string) *plan { return &plan{key: key} }

	if _, ok := pc.get(""); !ok {
		t.Fatal("pristine plan missing")
	}
	pc.put(mk("1"))
	pc.put(mk("2"))
	if pc.size() != 3 { // pristine + 2
		t.Fatalf("size %d, want 3", pc.size())
	}

	// Insert "3" at capacity: both residents carry reference bits, so the
	// hand's first lap clears them and the second lap reclaims slot 0 —
	// "1" goes, "2" survives with its bit cleared.
	pc.put(mk("3"))
	if pc.size() != 3 {
		t.Fatalf("size %d after eviction, want 3", pc.size())
	}
	if _, ok := pc.get(""); !ok {
		t.Fatal("pristine plan evicted")
	}
	if _, ok := pc.get("1"); ok {
		t.Fatal("slot-0 entry 1 survived a full clearing lap")
	}
	if _, ok := pc.get("3"); !ok {
		t.Fatal("fresh entry 3 missing")
	}
	// "3" holds a reference bit (set on insert and the get above); "2"'s
	// was cleared by the sweep. The next insert must evict "2" and keep "3".
	pc.put(mk("4"))
	if _, ok := pc.get("3"); !ok {
		t.Fatal("referenced entry 3 evicted before unreferenced 2")
	}
	if _, ok := pc.get("2"); ok {
		t.Fatal("unreferenced entry 2 survived over referenced 3")
	}
	if _, ok := pc.get("4"); !ok {
		t.Fatal("fresh entry 4 missing")
	}

	// Re-putting an existing key must not grow the ring.
	pc.put(mk("3"))
	if pc.size() != 3 {
		t.Fatalf("size %d after duplicate put, want 3", pc.size())
	}

	// Unbounded cache never evicts.
	un := newPlanCache(0)
	for i := 0; i < 64; i++ {
		un.put(mk(string(rune('a' + i))))
	}
	if un.size() != 65 {
		t.Fatalf("unbounded cache size %d, want 65", un.size())
	}
}

// TestPlanCacheBoundedChurn checks a bounded cache under real churn still
// yields correct answers (evicted plans are just recomputed).
func TestPlanCacheBoundedChurn(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	bounded, _ := newEngine(t, g, Config{PlanCacheCap: 2})
	ref, _ := newEngine(t, g, Config{})

	edges := g.Edges()
	rng := rand.New(rand.NewSource(5))
	down := map[graph.EdgeID]bool{}
	for step := 0; step < 40; step++ {
		e := edges[rng.Intn(len(edges))].ID
		if down[e] {
			delete(down, e)
			bounded.Repair(e)
			ref.Repair(e)
		} else if len(down) < 3 {
			down[e] = true
			bounded.Fail(e)
			ref.Fail(e)
		}
	}
	bounded.Flush()
	ref.Flush()
	for s := 0; s < g.Order(); s++ {
		for d := 0; d < g.Order(); d++ {
			if s == d {
				continue
			}
			a := bounded.Query(graph.NodeID(s), graph.NodeID(d)).Route
			b := ref.Query(graph.NodeID(s), graph.NodeID(d)).Route
			if (a == nil) != (b == nil) {
				t.Fatalf("%d->%d routable mismatch under bounded cache", s, d)
			}
			if a != nil && math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
				t.Fatalf("%d->%d cost %v != %v under bounded cache", s, d, a.Cost, b.Cost)
			}
		}
	}
}

// TestDrainWaitsForSubmitted checks Drain blocks until every accepted
// async query has been answered.
func TestDrainWaitsForSubmitted(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	var answered atomic.Int64
	e, _ := newEngine(t, g, Config{OnResult: func(Result) { answered.Add(1) }})

	var pairs []rbpc.Pair
	for s := 0; s < g.Order(); s++ {
		for d := 0; d < g.Order(); d++ {
			if s != d {
				pairs = append(pairs, rbpc.Pair{Src: graph.NodeID(s), Dst: graph.NodeID(d)})
			}
		}
	}
	accepted := 0
	for i := 0; i < 5; i++ {
		accepted += e.SubmitBatch(pairs)
	}
	e.Drain()
	if got := answered.Load(); got != int64(accepted) {
		t.Fatalf("accepted %d but only %d answered when Drain returned", accepted, got)
	}
}
