package engine

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

func TestParseScheme(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("teleport"); err == nil {
		t.Fatal("ParseScheme accepted garbage")
	}
	if got := Scheme(99).String(); got != "Scheme(99)" {
		t.Fatalf("Scheme(99).String() = %q", got)
	}
}

func TestNewRejectsUnknownScheme(t *testing.T) {
	g := topology.Waxman(8, 0.8, 0.5, 1)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys.Export(), Config{Scheme: Scheme(7)}); err == nil {
		t.Fatal("New accepted an out-of-range scheme")
	}
}

// checkLocalAnswer validates one served local answer against the epoch it
// came from: the path is a real walk over surviving links from src to dst,
// the cost is the path's cost, it is at least the true post-failure
// shortest distance, and — the part no bookkeeping can fake — a data-plane
// probe through the patched ILM rows walks exactly that path's length and
// delivers.
func checkLocalAnswer(t *testing.T, e *Engine, src, dst graph.NodeID, rt *Route, wantVia Scheme, tag string) {
	t.Helper()
	snap := e.Snapshot()
	if rt.Via != wantVia {
		t.Fatalf("%s: pair %d->%d Via = %v, want %v", tag, src, dst, rt.Via, wantVia)
	}
	if len(rt.LSPs) != 0 || len(rt.Stack) != 0 {
		t.Fatalf("%s: local answer carries source-plan LSPs/Stack", tag)
	}
	if err := rt.Path.Validate(snap.View()); err != nil {
		t.Fatalf("%s: pair %d->%d path invalid: %v", tag, src, dst, err)
	}
	if rt.Path.Src() != src || rt.Path.Dst() != dst {
		t.Fatalf("%s: pair %d->%d path runs %d->%d", tag, src, dst, rt.Path.Src(), rt.Path.Dst())
	}
	if got := rt.Path.CostIn(e.g); math.Abs(got-rt.Cost) > 1e-9 {
		t.Fatalf("%s: pair %d->%d cost %v but path costs %v", tag, src, dst, rt.Cost, got)
	}
	if dist := e.Dist(src, dst); rt.Cost < dist-1e-9 {
		t.Fatalf("%s: pair %d->%d served cost %v beats shortest distance %v", tag, src, dst, rt.Cost, dist)
	}
	pkt, err := snap.DataPlane(src).SendIP(src, dst)
	if err != nil {
		t.Fatalf("%s: pair %d->%d probe: %v", tag, src, dst, err)
	}
	if pkt.At != dst {
		t.Fatalf("%s: pair %d->%d probe stranded at %d", tag, src, dst, pkt.At)
	}
	if pkt.Hops != rt.Path.Hops() {
		t.Fatalf("%s: pair %d->%d probe walked %d hops, served path has %d",
			tag, src, dst, pkt.Hops, rt.Path.Hops())
	}
}

// TestLocalSchemesServeAffectedPairs: under SchemeLocal and SchemeBypass,
// every affected pair is answered by a validated local route (or honestly
// unroutable), unaffected pairs keep their canonical answers bit-for-bit,
// and repairs revert the ILM patches back to canonical forwarding.
func TestLocalSchemesServeAffectedPairs(t *testing.T) {
	for _, tc := range []struct {
		scheme Scheme
		via    Scheme
	}{{SchemeLocal, SchemeLocal}, {SchemeBypass, SchemeBypass}} {
		t.Run(tc.scheme.String(), func(t *testing.T) {
			g := topology.Waxman(16, 0.8, 0.5, 3)
			e, _ := newEngine(t, g, Config{Scheme: tc.scheme})
			pristine := e.Snapshot()

			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 25; step++ {
				ed := graph.EdgeID(rng.Intn(g.Size()))
				if len(e.Snapshot().Failed()) >= 3 || rng.Intn(4) == 0 {
					e.Repair(ed)
				} else {
					e.Fail(ed)
				}
				e.Flush()
				snap := e.Snapshot()
				if snap.Scheme() != tc.scheme {
					t.Fatalf("snapshot scheme %v", snap.Scheme())
				}
				localPairs := snap.LocalRoutes()
				for pr, rt := range localPairs {
					if rt == nil {
						if res := e.Query(pr.Src, pr.Dst); res.Route != nil {
							t.Fatalf("unrestorable pair %v served %+v", pr, res.Route)
						}
						continue
					}
					got := e.Query(pr.Src, pr.Dst).Route
					if got != rt {
						t.Fatalf("Query(%v) = %p, local plan holds %p", pr, got, rt)
					}
					checkLocalAnswer(t, e, pr.Src, pr.Dst, rt, tc.via, tc.scheme.String())
				}
				// Unaffected pairs serve the canonical route object itself.
				for s := 0; s < g.Order(); s++ {
					for d := 0; d < g.Order(); d++ {
						pr := rbpc.Pair{Src: graph.NodeID(s), Dst: graph.NodeID(d)}
						if _, affected := localPairs[pr]; affected || s == d {
							continue
						}
						if got, want := snap.Route(pr.Src, pr.Dst), pristine.Route(pr.Src, pr.Dst); got != want {
							t.Fatalf("unaffected pair %v: route %p, canonical %p", pr, got, want)
						}
					}
				}
			}

			// Repair everything: local state must drain to pristine and the
			// data plane must forward canonically again.
			for _, ed := range e.Snapshot().Failed() {
				e.Repair(ed)
			}
			e.Flush()
			snap := e.Snapshot()
			if got := snap.LocalRoutes(); len(got) != 0 {
				t.Fatalf("pristine epoch still holds %d local routes", len(got))
			}
			if e.ilmPatches.Len() != 0 {
				t.Fatalf("pristine epoch still holds %d ILM patches", e.ilmPatches.Len())
			}
			for s := 0; s < g.Order(); s++ {
				for d := 0; d < g.Order(); d++ {
					if s == d {
						continue
					}
					src, dst := graph.NodeID(s), graph.NodeID(d)
					if got, want := snap.Route(src, dst), pristine.Route(src, dst); got != want {
						t.Fatalf("post-repair pair %d->%d not canonical", s, d)
					}
					if want := pristine.Route(src, dst); want != nil {
						pkt, err := snap.DataPlane(src).SendIP(src, dst)
						if err != nil || pkt.At != dst {
							t.Fatalf("post-repair probe %d->%d: pkt=%+v err=%v", s, d, pkt, err)
						}
					}
				}
			}
		})
	}
}

// fakeClock is an injectable, concurrency-safe test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestHybridSwitchover: with a modeled flood delay and an injected clock,
// a hybrid engine serves the bypass answer the moment the epoch publishes
// and switches each affected pair to the bit-exact source answer once the
// clock passes the source's flood horizon — with no new epoch in between.
func TestHybridSwitchover(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 3)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	e, _ := newEngine(t, g, Config{
		Scheme: SchemeHybrid,
		Flood:  FloodConfig{Detect: 10 * time.Millisecond, PerHop: 10 * time.Millisecond},
		Clock:  clk.Now,
	})
	ref, _ := newEngine(t, g, Config{})

	ed := graph.EdgeID(0)
	e.Fail(ed)
	ref.Fail(ed)
	e.Flush()
	ref.Flush()

	snap := e.Snapshot()
	if snap.Scheme() != SchemeHybrid || snap.Converged() {
		t.Fatalf("post-failure snapshot: scheme %v converged %v", snap.Scheme(), snap.Converged())
	}
	if snap.MaxHorizon() < 10*time.Millisecond {
		t.Fatalf("MaxHorizon = %v, want at least the detect delay", snap.MaxHorizon())
	}
	local := snap.LocalRoutes()
	if len(local) == 0 {
		t.Skip("seed produced no affected pairs for edge 0")
	}
	// Pre-horizon: every affected pair serves the bypass answer.
	for pr, rt := range local {
		got := snap.Route(pr.Src, pr.Dst)
		if got != rt {
			t.Fatalf("pre-horizon pair %v: got %p, want local %p", pr, got, rt)
		}
		if rt != nil {
			checkLocalAnswer(t, e, pr.Src, pr.Dst, rt, SchemeBypass, "pre-horizon")
		}
	}

	// Post-horizon: the same snapshot object now answers with the source
	// plan, bit-identical to a pure source-scheme engine.
	clk.Advance(snap.MaxHorizon() + time.Millisecond)
	if !snap.Converged() {
		t.Fatal("snapshot did not converge after the clock passed MaxHorizon")
	}
	for pr := range local {
		if !snap.HorizonPassed(pr.Src) {
			continue // partitioned source: keeps its local answer, honestly
		}
		got := snap.Route(pr.Src, pr.Dst)
		want := ref.Query(pr.Src, pr.Dst).Route
		if (got == nil) != (want == nil) {
			t.Fatalf("post-horizon pair %v: routable %v, source engine %v", pr, got != nil, want != nil)
		}
		if got == nil {
			continue
		}
		if got.Via != SchemeSource {
			t.Fatalf("post-horizon pair %v: Via = %v", pr, got.Via)
		}
		if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
			t.Fatalf("post-horizon pair %v: cost %v, source engine %v", pr, got.Cost, want.Cost)
		}
	}
}

// TestHybridConvergenceProperty pins the cross-scheme agreement facts on
// seeded churn schedules, all four schemes fed the identical event stream
// and flushed in lockstep. With instant flood the hybrid engine is
// converged at every flush, so (refined from "all four agree"):
//
//   - hybrid-converged answers are Float64bits-identical to the source
//     engine's for every pair whose source the flood reached;
//   - end-route routability equals source routability for every failed-set
//     (the primary's prefix survives to the patch point, and the graph is
//     undirected, so patch-point-to-destination connectivity is exactly
//     source-to-destination connectivity);
//   - edge-bypass routability implies source routability, with equality on
//     single-failure sets (src~u and v~dst survive along the primary, so
//     src~dst connectivity transfers to u~v);
//   - local answers never beat the source answer's cost (source is
//     optimal); unaffected pairs are identical everywhere.
func TestHybridConvergenceProperty(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		g := topology.Waxman(14, 0.8, 0.5, seed)
		engines := make(map[Scheme]*Engine, 4)
		for _, s := range Schemes() {
			e, _ := newEngine(t, g, Config{Scheme: s})
			engines[s] = e
		}
		events := failure.ChurnSchedule(g, 30, 3, rand.New(rand.NewSource(seed)))
		for step, ev := range events {
			for _, e := range engines {
				if ev.Repair {
					e.Repair(ev.Edge)
				} else {
					e.Fail(ev.Edge)
				}
				e.Flush()
			}
			src := engines[SchemeSource]
			hyb := engines[SchemeHybrid].Snapshot()
			if !hyb.Converged() {
				t.Fatalf("seed %d step %d: zero-flood hybrid not converged", seed, step)
			}
			single := len(src.Snapshot().Failed()) == 1
			for s := 0; s < g.Order(); s++ {
				for d := 0; d < g.Order(); d++ {
					if s == d {
						continue
					}
					sN, dN := graph.NodeID(s), graph.NodeID(d)
					want := src.Query(sN, dN).Route
					// Hybrid: bit-exact with source wherever the flood reached.
					if hyb.HorizonPassed(sN) {
						got := hyb.Route(sN, dN)
						if (got == nil) != (want == nil) {
							t.Fatalf("seed %d step %d pair %d->%d: hybrid routable %v, source %v",
								seed, step, s, d, got != nil, want != nil)
						}
						if got != nil && math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
							t.Fatalf("seed %d step %d pair %d->%d: hybrid cost %v, source %v",
								seed, step, s, d, got.Cost, want.Cost)
						}
					}
					local := engines[SchemeLocal].Query(sN, dN).Route
					byp := engines[SchemeBypass].Query(sN, dN).Route
					if (local == nil) != (want == nil) {
						t.Fatalf("seed %d step %d pair %d->%d: end-route routable %v, source %v",
							seed, step, s, d, local != nil, want != nil)
					}
					if byp != nil && want == nil {
						t.Fatalf("seed %d step %d pair %d->%d: bypass routes an unroutable pair",
							seed, step, s, d)
					}
					if single && (byp == nil) != (want == nil) {
						t.Fatalf("seed %d step %d pair %d->%d: single-failure bypass routable %v, source %v",
							seed, step, s, d, byp != nil, want != nil)
					}
					if local != nil && want != nil && local.Cost < want.Cost-1e-9 {
						t.Fatalf("seed %d step %d pair %d->%d: end-route cost %v beats optimal %v",
							seed, step, s, d, local.Cost, want.Cost)
					}
					if byp != nil && want != nil && byp.Cost < want.Cost-1e-9 {
						t.Fatalf("seed %d step %d pair %d->%d: bypass cost %v beats optimal %v",
							seed, step, s, d, byp.Cost, want.Cost)
					}
				}
			}
		}
	}
}

// TestDrainCancelsSwitchoverTimers: a hybrid engine with a long flood
// horizon arms a switchover timer per transition; Drain must cancel them
// all so no timer callback outlives a drained engine (the -race smoke
// regression for the shutdown gap).
func TestDrainCancelsSwitchoverTimers(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 2)
	e, _ := newEngine(t, g, Config{
		Scheme: SchemeHybrid,
		Flood:  FloodConfig{Detect: time.Hour, PerHop: time.Hour},
	})
	e.Fail(0)
	e.Flush()
	e.Fail(1)
	e.Flush()
	if got := e.Stats().PendingTimers; got == 0 {
		t.Fatal("no switchover timers armed after hybrid transitions")
	}
	e.Drain()
	if got := e.Stats().PendingTimers; got != 0 {
		t.Fatalf("%d switchover timers still armed after Drain", got)
	}
	// Further transitions may arm new timers; Close must also cancel them.
	e.Fail(2)
	e.Flush()
	e.Close()
	if got := e.pendingTimers(); got != 0 {
		t.Fatalf("%d switchover timers still armed after Close", got)
	}
}

// TestLocalStatsPopulated: the per-scheme observability surface carries
// real observations after churn.
func TestLocalStatsPopulated(t *testing.T) {
	g := topology.Waxman(16, 0.8, 0.5, 3)
	e, _ := newEngine(t, g, Config{Scheme: SchemeBypass})
	e.Fail(0)
	e.Fail(1)
	e.Flush()
	e.RecordRestore(42 * time.Microsecond)
	st := e.Stats()
	if st.Scheme != SchemeBypass {
		t.Fatalf("Stats.Scheme = %v", st.Scheme)
	}
	if st.LocalBuild.Count == 0 {
		t.Fatal("no local build latency recorded")
	}
	if st.LocalPairs == 0 {
		t.Skip("seed produced no affected pairs")
	}
	if st.Stretch.Count == 0 || st.Stretch.Mean < 1000 {
		t.Fatalf("stretch summary %+v, want mean >= 1000 permille", st.Stretch)
	}
	if st.Restore.Count != 1 {
		t.Fatalf("Restore.Count = %d", st.Restore.Count)
	}
	if len(e.AffectedPairs(0)) == 0 && len(e.AffectedPairs(1)) == 0 && st.LocalPairs > 0 {
		t.Fatal("AffectedPairs disagrees with LocalPairs")
	}
}
