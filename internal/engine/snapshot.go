// Package engine is the online serving layer over the RBPC machinery: a
// long-running process that owns a provisioned System export and answers
// path/restoration queries at high rate while link failures and repairs
// churn underneath it.
//
// The concurrency model is single-writer, many-readers. All mutation goes
// through one writer goroutine that coalesces bursts of failure events
// into an epoch, builds an immutable Snapshot for the new failed-set, and
// publishes it with one atomic pointer swap. Readers load the pointer and
// serve entirely from the snapshot — no locks, no allocation, and no torn
// state: every answer is consistent with exactly one epoch.
package engine

import (
	"time"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/spath"
)

// Route is one served answer: the LSP concatenation currently restoring
// the pair, its label stack as pushed by the source router, and its cost
// in the original graph (which, by construction, is the true post-failure
// shortest distance).
type Route struct {
	LSPs  []*mpls.LSP
	Stack []mpls.Label
	Cost  float64
}

// Snapshot is one epoch's immutable serving state. Everything reachable
// from a Snapshot is frozen: readers may use it concurrently and hold it
// across epochs (the writer never mutates a published snapshot, it builds
// a successor and swaps the pointer).
//
//rbpc:immutable
type Snapshot struct {
	epoch  uint64
	failed []graph.EdgeID // sorted
	key    string         // canonical cache key of failed
	fv     *graph.FailureView
	net    *mpls.Network
	oracle *spath.Oracle // shortest paths in fv (post-failure distances)

	// rows is the routing matrix, [src][dst]. The top-level slice is fresh
	// per epoch; inner rows are shared with the canonical matrix except for
	// sources the epoch's plan touched (copy-on-write at row granularity).
	// A nil entry is an unroutable (or self) pair.
	rows [][]*Route

	created time.Time
}

// Epoch returns the snapshot's sequence number (0 = pristine).
//
//rbpc:hotpath
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Failed returns the links down in this epoch, sorted. Callers must not
// modify the returned slice.
func (s *Snapshot) Failed() []graph.EdgeID { return s.failed }

// View returns the epoch's failure view of the topology.
func (s *Snapshot) View() *graph.FailureView { return s.fv }

// Net returns the epoch's forwarding plane. It is safe for concurrent
// packet forwarding (reads); it must not be mutated.
func (s *Snapshot) Net() *mpls.Network { return s.net }

// Oracle returns shortest-path distances in the epoch's failure view,
// computed lazily per source and memoized. Safe for concurrent use.
func (s *Snapshot) Oracle() *spath.Oracle { return s.oracle }

// Route returns the pair's current concatenation, or nil if the pair is
// unroutable in this epoch. The returned Route is immutable.
//
//rbpc:hotpath
func (s *Snapshot) Route(src, dst graph.NodeID) *Route {
	return s.rows[src][dst]
}

// Age reports how long this snapshot has been the serving epoch (time
// since it was published).
func (s *Snapshot) Age() time.Duration { return time.Since(s.created) }
