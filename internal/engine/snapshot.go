// Package engine is the online serving layer over the RBPC machinery: a
// long-running process that owns a provisioned System export and answers
// path/restoration queries at high rate while link failures and repairs
// churn underneath it.
//
// The concurrency model is single-writer, many-readers. All mutation goes
// through one writer goroutine that coalesces bursts of failure events
// into an epoch, builds an immutable Snapshot for the new failed-set, and
// publishes it with one atomic pointer swap. Readers load the pointer and
// serve entirely from the snapshot — no locks, no allocation, and no torn
// state: every answer is consistent with exactly one epoch.
package engine

import (
	"time"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
)

// Route is one served answer. For source-scheme answers (Via ==
// SchemeSource) it is the LSP concatenation currently restoring the pair,
// its label stack as pushed by the source router, and its cost in the
// original graph (which, by construction, is the true post-failure
// shortest distance). For local-scheme answers (Via == SchemeLocal /
// SchemeBypass) the source keeps pushing its canonical stack and the
// restoration happens mid-path at patched ILM rows: LSPs and Stack are nil,
// Path is the concrete walk the patched data plane delivers, and Cost is
// that walk's cost — at least, and under the local schemes usually above,
// the post-failure shortest distance.
type Route struct {
	LSPs  []*mpls.LSP
	Stack []mpls.Label
	Cost  float64
	Via   Scheme
	Path  graph.Path
}

// Snapshot is one epoch's immutable serving state. Everything reachable
// from a Snapshot is frozen: readers may use it concurrently and hold it
// across epochs (the writer never mutates a published snapshot, it builds
// a successor and swaps the pointer). It is also epoch-scoped: a reader
// may hold one across a query, but parking it in a long-lived structure
// serves stale routes forever — the only sanctioned long-lived holder is
// the engine's atomic.Pointer (snapshotescape enforces this).
//
//rbpc:immutable
//rbpc:epochscoped
type Snapshot struct {
	epoch  uint64
	failed []graph.EdgeID // sorted
	key    string         // canonical cache key of failed
	fv     *graph.FailureView
	net    *mpls.Network
	oracle *spath.Oracle // shortest paths in fv (post-failure distances)

	// rows is the dense routing matrix, [src][dst]. The top-level slice is
	// fresh per epoch; inner rows are shared with the canonical matrix
	// except for sources the epoch's plan touched (copy-on-write at row
	// granularity). A nil entry is an unroutable (or self) pair. Nil when
	// the engine runs in delta-row mode (Config.DeltaRows), where canon
	// and over below carry the matrix instead.
	rows [][]*Route

	// canon and over are the delta-encoded matrix (Config.DeltaRows):
	// canon is the engine's shared canonical matrix — identical across
	// every epoch, with nil rows for sources the provision did not
	// materialize — and over holds one divergence row per source the
	// current failed-set touches (nil = the source serves pure canonical).
	// A read consults the overlay first and falls back to canonical.
	canon [][]*Route
	over  []*planRow

	// rowBytes/denseBytes are the resident-byte accounting of this
	// epoch's matrix and of the dense all-pairs equivalent (see RowBytes).
	rowBytes   int64
	denseBytes int64

	created time.Time

	// Local-restoration serving state (Config.Scheme != SchemeSource).
	// local maps each affected pair to its locally restored answer and is
	// consulted before the row matrices; under SchemeLocal/SchemeBypass it
	// wins unconditionally, under SchemeHybrid only until the querying
	// source's flood horizon passes (and only once srcReady marks the
	// phase-two snapshot whose rows actually hold the source plan).
	// horizon[src] is that source's switchover delay after detected, on
	// the snapshot's clock (nil = wall clock); maxHorizon is the largest
	// finite entry.
	scheme     Scheme
	local      *localPlan
	horizon    []time.Duration
	maxHorizon time.Duration
	detected   time.Time
	clock      func() time.Time
	srcReady   bool
	// localNet is the hybrid phase-one forwarding plane: canonical FEC
	// entries over the patched ILM rows. Pre-horizon sources forward
	// through it (they have not heard of the transition, so they still
	// push canonical stacks); net above carries the phase-two source-plan
	// FEC rewrites. Nil outside hybrid phase two.
	localNet *mpls.Network
}

// Epoch returns the snapshot's sequence number (0 = pristine).
//
//rbpc:hotpath
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Failed returns the links down in this epoch, sorted. Callers must not
// modify the returned slice.
func (s *Snapshot) Failed() []graph.EdgeID { return s.failed }

// View returns the epoch's failure view of the topology.
func (s *Snapshot) View() *graph.FailureView { return s.fv }

// Net returns the epoch's forwarding plane. It is safe for concurrent
// packet forwarding (reads); it must not be mutated.
func (s *Snapshot) Net() *mpls.Network { return s.net }

// DataPlane returns the forwarding plane src's traffic actually traverses
// in this epoch. It differs from Net only in hybrid phase two for a
// source whose flood horizon has not passed: that source still pushes its
// canonical stack through the patched phase-one net — it has not heard of
// the transition, so the source-plan FEC rewrites in Net haven't reached
// it. Probes of a served answer should forward through DataPlane(src).
func (s *Snapshot) DataPlane(src graph.NodeID) *mpls.Network {
	if s.localNet != nil && !s.pastHorizon(src) {
		return s.localNet
	}
	return s.net
}

// Oracle returns shortest-path distances in the epoch's failure view,
// computed lazily per source and memoized. Safe for concurrent use.
func (s *Snapshot) Oracle() *spath.Oracle { return s.oracle }

// Route returns the pair's current concatenation, or nil if the pair is
// unroutable in this epoch. The returned Route is immutable. In delta-row
// mode a nil answer for a non-materialized source (see Materialized)
// means "no precomputed row", not "disconnected" — the sharded serving
// layer answers those pairs on demand.
//
//rbpc:hotpath
func (s *Snapshot) Route(src, dst graph.NodeID) *Route {
	if s.local != nil {
		if rt, ok := s.local.routes[rbpc.Pair{Src: src, Dst: dst}]; ok {
			// Affected pair: the local answer wins until the source has
			// both heard of the failure (its flood horizon passed) and a
			// source plan to switch to (srcReady). A nil rt is a locally
			// unrestorable pair — served as unroutable, faithfully.
			if !s.srcReady || !s.pastHorizon(src) {
				return rt
			}
		}
	}
	if s.rows != nil {
		return s.rows[src][dst]
	}
	if pr := s.over[src]; pr != nil {
		if rt, ok := pr.get(dst); ok {
			return rt
		}
	}
	if row := s.canon[src]; row != nil {
		return row[dst]
	}
	return nil
}

// Materialized reports whether the source has a precomputed serving row
// in this epoch. Always true in dense mode; in delta-row mode it is false
// for sources outside the provisioned hot set, whose pairs must be
// answered by an on-demand base-set solve (Corollary 4 guarantees one
// exists whenever the pair is connected).
//
//rbpc:hotpath
func (s *Snapshot) Materialized(src graph.NodeID) bool {
	return s.rows != nil || s.canon[src] != nil
}

// RowBytes reports the resident bytes this snapshot's routing matrix
// keeps alive and the bytes a dense all-pairs matrix over the same
// topology would hold (top-level slice plus n route pointers per source).
// The ratio is the delta-encoding + cold-pair saving.
func (s *Snapshot) RowBytes() (resident, dense int64) {
	return s.rowBytes, s.denseBytes
}

// Age reports how long this snapshot has been the serving epoch (time
// since it was published).
func (s *Snapshot) Age() time.Duration { return time.Since(s.created) }

// pastHorizon reports whether src's flood horizon has passed: the modeled
// link-state flood of this epoch's transition reached src, so it may act
// on the full failed-set.
//
//rbpc:hotpath
func (s *Snapshot) pastHorizon(src graph.NodeID) bool {
	if int(src) >= len(s.horizon) {
		return true
	}
	h := s.horizon[src]
	if s.clock == nil {
		return time.Since(s.detected) >= h
	}
	return s.clock().Sub(s.detected) >= h //rbpc:allow hotpath -- injectable test clock, production path is the time.Since branch above
}

// Scheme returns the restoration scheme this snapshot serves.
func (s *Snapshot) Scheme() Scheme { return s.scheme }

// HorizonPassed reports whether src's flood horizon for this epoch's
// transition has passed — under SchemeHybrid, whether src serves the
// source-router answer (given srcReady) rather than the local one. Always
// true outside SchemeHybrid's two-phase window (horizon is nil).
func (s *Snapshot) HorizonPassed(src graph.NodeID) bool { return s.pastHorizon(src) }

// MaxHorizon returns the largest finite flood horizon of this epoch's
// transition — when the last reachable router learns of it.
func (s *Snapshot) MaxHorizon() time.Duration { return s.maxHorizon }

// Converged reports whether this snapshot's answers are time-invariant
// from here on. Source, local, and bypass epochs always are; a hybrid
// epoch converges once its source rows are ready (phase two) and every
// reachable router's flood horizon has passed. A converged hybrid
// snapshot answers exactly like a source-scheme engine for every pair
// whose source the flood reached.
func (s *Snapshot) Converged() bool {
	if s.scheme != SchemeHybrid {
		return true
	}
	if !s.srcReady {
		return false
	}
	if s.clock == nil {
		return time.Since(s.detected) >= s.maxHorizon
	}
	return s.clock().Sub(s.detected) >= s.maxHorizon
}

// LocalRoutes returns the affected-pair local answers of this epoch (nil
// outside the local schemes; a nil map value is a locally unrestorable
// pair). Callers must not modify the map.
func (s *Snapshot) LocalRoutes() map[rbpc.Pair]*Route {
	if s.local == nil {
		return nil
	}
	return s.local.routes
}
