// Package engine is the online serving layer over the RBPC machinery: a
// long-running process that owns a provisioned System export and answers
// path/restoration queries at high rate while link failures and repairs
// churn underneath it.
//
// The concurrency model is single-writer, many-readers. All mutation goes
// through one writer goroutine that coalesces bursts of failure events
// into an epoch, builds an immutable Snapshot for the new failed-set, and
// publishes it with one atomic pointer swap. Readers load the pointer and
// serve entirely from the snapshot — no locks, no allocation, and no torn
// state: every answer is consistent with exactly one epoch.
package engine

import (
	"time"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/spath"
)

// Route is one served answer: the LSP concatenation currently restoring
// the pair, its label stack as pushed by the source router, and its cost
// in the original graph (which, by construction, is the true post-failure
// shortest distance).
type Route struct {
	LSPs  []*mpls.LSP
	Stack []mpls.Label
	Cost  float64
}

// Snapshot is one epoch's immutable serving state. Everything reachable
// from a Snapshot is frozen: readers may use it concurrently and hold it
// across epochs (the writer never mutates a published snapshot, it builds
// a successor and swaps the pointer). It is also epoch-scoped: a reader
// may hold one across a query, but parking it in a long-lived structure
// serves stale routes forever — the only sanctioned long-lived holder is
// the engine's atomic.Pointer (snapshotescape enforces this).
//
//rbpc:immutable
//rbpc:epochscoped
type Snapshot struct {
	epoch  uint64
	failed []graph.EdgeID // sorted
	key    string         // canonical cache key of failed
	fv     *graph.FailureView
	net    *mpls.Network
	oracle *spath.Oracle // shortest paths in fv (post-failure distances)

	// rows is the dense routing matrix, [src][dst]. The top-level slice is
	// fresh per epoch; inner rows are shared with the canonical matrix
	// except for sources the epoch's plan touched (copy-on-write at row
	// granularity). A nil entry is an unroutable (or self) pair. Nil when
	// the engine runs in delta-row mode (Config.DeltaRows), where canon
	// and over below carry the matrix instead.
	rows [][]*Route

	// canon and over are the delta-encoded matrix (Config.DeltaRows):
	// canon is the engine's shared canonical matrix — identical across
	// every epoch, with nil rows for sources the provision did not
	// materialize — and over holds one divergence row per source the
	// current failed-set touches (nil = the source serves pure canonical).
	// A read consults the overlay first and falls back to canonical.
	canon [][]*Route
	over  []*planRow

	// rowBytes/denseBytes are the resident-byte accounting of this
	// epoch's matrix and of the dense all-pairs equivalent (see RowBytes).
	rowBytes   int64
	denseBytes int64

	created time.Time
}

// Epoch returns the snapshot's sequence number (0 = pristine).
//
//rbpc:hotpath
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Failed returns the links down in this epoch, sorted. Callers must not
// modify the returned slice.
func (s *Snapshot) Failed() []graph.EdgeID { return s.failed }

// View returns the epoch's failure view of the topology.
func (s *Snapshot) View() *graph.FailureView { return s.fv }

// Net returns the epoch's forwarding plane. It is safe for concurrent
// packet forwarding (reads); it must not be mutated.
func (s *Snapshot) Net() *mpls.Network { return s.net }

// Oracle returns shortest-path distances in the epoch's failure view,
// computed lazily per source and memoized. Safe for concurrent use.
func (s *Snapshot) Oracle() *spath.Oracle { return s.oracle }

// Route returns the pair's current concatenation, or nil if the pair is
// unroutable in this epoch. The returned Route is immutable. In delta-row
// mode a nil answer for a non-materialized source (see Materialized)
// means "no precomputed row", not "disconnected" — the sharded serving
// layer answers those pairs on demand.
//
//rbpc:hotpath
func (s *Snapshot) Route(src, dst graph.NodeID) *Route {
	if s.rows != nil {
		return s.rows[src][dst]
	}
	if pr := s.over[src]; pr != nil {
		if rt, ok := pr.get(dst); ok {
			return rt
		}
	}
	if row := s.canon[src]; row != nil {
		return row[dst]
	}
	return nil
}

// Materialized reports whether the source has a precomputed serving row
// in this epoch. Always true in dense mode; in delta-row mode it is false
// for sources outside the provisioned hot set, whose pairs must be
// answered by an on-demand base-set solve (Corollary 4 guarantees one
// exists whenever the pair is connected).
//
//rbpc:hotpath
func (s *Snapshot) Materialized(src graph.NodeID) bool {
	return s.rows != nil || s.canon[src] != nil
}

// RowBytes reports the resident bytes this snapshot's routing matrix
// keeps alive and the bytes a dense all-pairs matrix over the same
// topology would hold (top-level slice plus n route pointers per source).
// The ratio is the delta-encoding + cold-pair saving.
func (s *Snapshot) RowBytes() (resident, dense int64) {
	return s.rowBytes, s.denseBytes
}

// Age reports how long this snapshot has been the serving epoch (time
// since it was published).
func (s *Snapshot) Age() time.Duration { return time.Since(s.created) }
