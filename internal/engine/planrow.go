package engine

import (
	"sort"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/rbpc"
)

// planRow is the delta-encoded serving row of one source: the sorted set
// of destinations whose route currently diverges from the canonical
// matrix, parallel-arrayed with the overriding routes (nil = the pair is
// unroutable in this epoch even though canonical has a row). Destinations
// absent from the row ride their canonical entries untouched, so a row
// costs memory proportional to its divergence — the splice points — not
// to the topology order. Rows are immutable once built and shared across
// epochs for sources a transition does not touch.
//
//rbpc:immutable
type planRow struct {
	dsts   []graph.NodeID
	routes []*Route
}

// get returns the override for d and whether one exists. Hand-rolled
// binary search: sort.Search takes a closure, and this runs on the query
// path where the row is typically a handful of entries.
//
//rbpc:hotpath
func (r *planRow) get(d graph.NodeID) (*Route, bool) {
	lo, hi := 0, len(r.dsts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.dsts[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.dsts) && r.dsts[lo] == d {
		return r.routes[lo], true
	}
	return nil, false
}

// planRowEntryBytes is the accounting cost of one overlay entry: the
// NodeID plus the route pointer (padding included).
const planRowEntryBytes = 16

// newPlanRow wraps pre-sorted parallel slices; nil when empty (the
// overlay convention for "no divergence").
//
//rbpc:ctor
func newPlanRow(dsts []graph.NodeID, routes []*Route) *planRow {
	if len(dsts) == 0 {
		return nil
	}
	return &planRow{dsts: dsts, routes: routes}
}

// mergePlanRow produces the successor overlay row for one source from the
// previous epoch's row and the transition's changed span (same source,
// dst-sorted): changed pairs covered by the plan take the plan's route,
// changed pairs the plan dropped revert to canonical (removed from the
// overlay), and unchanged overlay entries carry over. A two-pointer merge
// over two sorted sequences; the inputs are never mutated.
func mergePlanRow(prev *planRow, span []rbpc.Pair, pl *plan) *planRow {
	var pd []graph.NodeID
	var prt []*Route
	if prev != nil {
		pd, prt = prev.dsts, prev.routes
	}
	dsts := make([]graph.NodeID, 0, len(pd)+len(span))
	routes := make([]*Route, 0, len(pd)+len(span))
	i, j := 0, 0
	for i < len(pd) || j < len(span) {
		var takeChanged bool
		switch {
		case i >= len(pd):
			takeChanged = true
		case j >= len(span):
			takeChanged = false
		case span[j].Dst < pd[i]:
			takeChanged = true
		case span[j].Dst > pd[i]:
			takeChanged = false
		default: // same destination: the change supersedes the old entry
			i++
			takeChanged = true
		}
		if takeChanged {
			pr := span[j]
			j++
			if rt, covered := pl.routes[pr]; covered {
				dsts = append(dsts, pr.Dst)
				routes = append(routes, rt)
			}
			// Not covered: the pair reverts to canonical — no entry.
		} else {
			dsts = append(dsts, pd[i])
			routes = append(routes, prt[i])
			i++
		}
	}
	return newPlanRow(dsts, routes)
}

// buildOverlayRows materializes a full overlay from a plan: one row per
// source holding every plan entry, sorted by destination. Used on the
// full-apply path (cache hits, fault paths), where the plan is the
// complete divergence from canonical by construction.
func buildOverlayRows(n int, pl *plan) ([]*planRow, []graph.NodeID) {
	byDst := make(map[graph.NodeID][]rbpc.Pair)
	for pr := range pl.routes {
		byDst[pr.Src] = append(byDst[pr.Src], pr)
	}
	over := make([]*planRow, n)
	srcs := make([]graph.NodeID, 0, len(byDst))
	for s, prs := range byDst {
		sort.Slice(prs, func(i, j int) bool { return prs[i].Dst < prs[j].Dst })
		dsts := make([]graph.NodeID, len(prs))
		routes := make([]*Route, len(prs))
		for i, pr := range prs {
			dsts[i] = pr.Dst
			routes[i] = pl.routes[pr]
		}
		over[s] = newPlanRow(dsts, routes)
		srcs = append(srcs, s)
	}
	return over, srcs
}

// assembleOverlay builds the next epoch's overlay rows in delta-row mode,
// mirroring assembleDense's two arms. The delta path carries the previous
// epoch's rows forward and merges only the sources the transition's
// changed span touches; the full path (cache hits, reference mode, fault
// paths) rebuilds the overlay wholesale from the plan, which is the
// complete divergence from canonical by construction. Both rewrite the
// FEC entries of the pairs they touch on the epoch's cloned net —
// identically to the dense paths, so the data plane cannot tell the
// representations apart.
func (e *Engine) assembleOverlay(prev *Snapshot, pl *plan, changed []rbpc.Pair, delta bool, net *mpls.Network) ([]*planRow, []graph.NodeID) {
	if delta {
		over := make([]*planRow, len(prev.over))
		copy(over, prev.over)
		var warm []graph.NodeID
		for lo := 0; lo < len(changed); {
			hi := lo + 1
			for hi < len(changed) && changed[hi].Src == changed[lo].Src {
				hi++
			}
			src := changed[lo].Src
			over[src] = mergePlanRow(prev.over[src], changed[lo:hi], pl)
			warm = append(warm, src)
			for _, pr := range changed[lo:hi] {
				if _, covered := pl.routes[pr]; !covered && e.cfg.Fault == FaultSkipFECRewrite {
					continue // injected defect: leaving pairs keep stale labels
				}
				e.writeOverlayFEC(net, over, pr)
			}
			lo = hi
		}
		return over, warm
	}
	over, warm := buildOverlayRows(len(e.canonical), pl)
	for pr := range pl.routes {
		e.writeOverlayFEC(net, over, pr)
	}
	if e.cfg.Fault != FaultSkipFECRewrite {
		for pr := range e.prevPlan.routes {
			if _, covered := pl.routes[pr]; !covered {
				e.writeOverlayFEC(net, over, pr)
			}
		}
	}
	return over, warm
}

// overlayRoute reads a pair's route through a not-yet-published overlay:
// overlay first, canonical fallback — the writer-side twin of
// Snapshot.Route.
func (e *Engine) overlayRoute(over []*planRow, src, dst graph.NodeID) *Route {
	if row := over[src]; row != nil {
		if rt, ok := row.get(dst); ok {
			return rt
		}
	}
	if c := e.canonical[src]; c != nil {
		return c[dst]
	}
	return nil
}

// writeOverlayFEC syncs one pair's forwarding entry with the overlay.
func (e *Engine) writeOverlayFEC(net *mpls.Network, over []*planRow, pr rbpc.Pair) {
	if rt := e.overlayRoute(over, pr.Src, pr.Dst); rt != nil {
		net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{Stack: rt.Stack, OutEdge: mpls.LocalProcess})
	} else {
		net.ClearFEC(pr.Src, pr.Dst)
	}
}

// overlayBytes is the resident-byte accounting of one snapshot's overlay:
// the top-level slice plus every entry of every row. Rows shared with
// previous epochs are charged in full — the figure answers "what does
// holding this snapshot keep alive", the quantity the dense-vs-delta
// comparison needs.
func overlayBytes(over []*planRow) int64 {
	b := int64(len(over)) * 8
	for _, r := range over {
		if r != nil {
			b += int64(len(r.dsts)) * planRowEntryBytes
		}
	}
	return b
}
