package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
)

// repairSlack scales the float-noise margin of the repair-improvement
// rescan: a repaired edge whose best s–x–e–y–t bound lands within slack of
// the served cost is conservatively treated as an improvement and the pair
// recomputed — an exact tie could change the deterministic route choice,
// so only strictly-worse detours may be reused.
const repairSlack = 1e-9

// incCounters is the writer's incremental-build telemetry. Fields are
// atomic because Stats() scrapes them from arbitrary goroutines while the
// writer publishes.
type incCounters struct {
	pairsReused     atomic.Int64
	pairsRecomputed atomic.Int64
	entering        atomic.Int64
	leaving         atomic.Int64
	stale           atomic.Int64
	improved        atomic.Int64
	treesAdopted    atomic.Int64
	fullRebuilds    atomic.Int64
	affectedNs      atomic.Int64
	solveNs         atomic.Int64
	resolveNs       atomic.Int64
	assembleNs      atomic.Int64
}

// IncrementalStats is a point-in-time scrape of the incremental epoch
// builder's counters, cumulative since engine start.
type IncrementalStats struct {
	// PairsReused counts plan entries carried verbatim from the previous
	// epoch's plan; PairsRecomputed counts entries re-solved (entering,
	// stale, or repair-improvable pairs).
	PairsReused     int64
	PairsRecomputed int64
	// Entering/Leaving count pairs whose primary crossed into / out of
	// the failed-set across all published transitions.
	Entering int64
	Leaving  int64
	// StaleRoutes counts reuses rejected because the served route crossed
	// a newly-failed edge; RepairImproved counts reuses rejected because a
	// repaired edge offered a route at least as good.
	StaleRoutes    int64
	RepairImproved int64
	// TreesAdopted counts distance-oracle trees carried across epochs
	// without recomputation; FullRebuilds counts reference-mode plans.
	TreesAdopted int64
	FullRebuilds int64
	// Per-stage cumulative build time: affected-pair classification,
	// bounded decomposition solves, LSP resolution, and snapshot assembly
	// (row copy-on-write plus FEC rewrite).
	AffectedNanos int64
	SolveNanos    int64
	ResolveNanos  int64
	AssembleNanos int64
}

func (c *incCounters) snapshot() IncrementalStats {
	return IncrementalStats{
		PairsReused:     c.pairsReused.Load(),
		PairsRecomputed: c.pairsRecomputed.Load(),
		Entering:        c.entering.Load(),
		Leaving:         c.leaving.Load(),
		StaleRoutes:     c.stale.Load(),
		RepairImproved:  c.improved.Load(),
		TreesAdopted:    c.treesAdopted.Load(),
		FullRebuilds:    c.fullRebuilds.Load(),
		AffectedNanos:   c.affectedNs.Load(),
		SolveNanos:      c.solveNs.Load(),
		ResolveNanos:    c.resolveNs.Load(),
		AssembleNanos:   c.assembleNs.Load(),
	}
}

// routeUses reports whether the route's concrete paths cross any edge of
// the set — the staleness test of the incremental builder. The route is
// the actual label chain the previous epoch's search settled, so a route
// avoiding every newly-failed edge has its entire winning offer chain
// intact: failing other edges only deletes losing candidates.
//
//rbpc:hotpath
func routeUses(rt *Route, down map[graph.EdgeID]bool) bool {
	if len(down) == 0 {
		return false
	}
	for _, l := range rt.LSPs {
		for _, ed := range l.Path.Edges {
			if down[ed] {
				return true
			}
		}
	}
	return false
}

// revBound assembles the reverse-distance row for one source's batched
// solve: rev[v] = min over the source's live destinations d (d ≠ s,
// reachable per bound) of the post-failure distance from v to d. The
// graph is undirected, so that distance is Tree(d).Dist(v), and the
// destination trees are memoized in the epoch oracle alongside the source
// trees (destinations recur across sources, and repair pricing roots
// trees at edge endpoints anyway). A single live destination aliases its
// tree's distance row outright — no copy; several min-combine into the
// worker-owned scratch. Returns nil when no destination needs a search.
func revBound(oracle *spath.Oracle, s graph.NodeID, dsts []graph.NodeID, bound []float64, scratch *[]float64) []float64 {
	var rev []float64
	owned := false // rev points into the scratch, safe to mutate
	for _, d := range dsts {
		if d == s || bound[d] >= spath.Unreachable {
			continue
		}
		td := oracle.Tree(d).Dists()
		if rev == nil {
			rev = td
			continue
		}
		if !owned {
			// Second live destination: move the aliased first row into
			// the scratch before combining.
			if len(*scratch) < len(rev) {
				*scratch = make([]float64, len(rev))
			}
			copy((*scratch)[:len(rev)], rev)
			rev = (*scratch)[:len(rev)]
			owned = true
		}
		for v, dv := range td[:len(rev)] {
			if dv < rev[v] {
				rev[v] = dv
			}
		}
	}
	return rev
}

// repairImproves reports whether some repaired edge could hand pr a
// restoration route at least as good as rt (or, for an unroutable pair,
// any route at all). The bound d(s,x)+w+d(y,t) over both orientations of
// a repaired edge (x,y,w) is the shortest new-view s–t distance through
// that edge; distances come from the epoch oracle's trees rooted at the
// edge endpoints (the graph is undirected, so d(s,x) = Tree(x).Dist(s)),
// which means a burst repairing R edges prices every surviving pair with
// only 2|R| tree builds. Comparisons are ≤ cost+slack: ties count as
// improvements, because an equal-cost path through a repaired edge could
// win the deterministic tie-break and change the canonical decomposition.
func repairImproves(oracle *spath.Oracle, pr rbpc.Pair, rt *Route, repaired []graph.Edge) bool {
	for _, ed := range repaired {
		du := oracle.Tree(ed.U).Dists()
		dv := oracle.Tree(ed.V).Dists()
		dsu, dvt := du[pr.Src], dv[pr.Dst]
		dsv, dut := dv[pr.Src], du[pr.Dst]
		if rt == nil {
			// Any new s–t connection must traverse a repaired edge, so the
			// pair became routable iff both legs of some orientation exist.
			if (dsu != spath.Unreachable && dvt != spath.Unreachable) ||
				(dsv != spath.Unreachable && dut != spath.Unreachable) {
				return true
			}
			continue
		}
		slack := repairSlack * (rt.Cost + 1)
		if dsu != spath.Unreachable && dvt != spath.Unreachable && dsu+ed.W+dvt <= rt.Cost+slack {
			return true
		}
		if dsv != spath.Unreachable && dut != spath.Unreachable && dsv+ed.W+dut <= rt.Cost+slack {
			return true
		}
	}
	return false
}

// ensureSolvers grows the writer's pooled solver set to n and rebinds each
// to the epoch's view. Pooled solvers keep their Dijkstra scratch, labels,
// and dead-path masks across epochs; Rebind refreshes only what the view
// change invalidates instead of reallocating per plan.
func (e *Engine) ensureSolvers(n int, fv *graph.FailureView) {
	for len(e.solvers) < n {
		s := core.NewSparseSolver(e.base, fv)
		s.SetCostIndex(e.costIndex)
		// The writer keeps e.live in sync with every published failed-set,
		// so pooled solvers can skip the per-epoch dead-mask rebuild and the
		// per-candidate liveness test entirely.
		s.SetLiveIndex(e.live)
		e.solvers = append(e.solvers, s)
	}
	for _, s := range e.solvers[:n] {
		s.Rebind(fv)
	}
}

// incrementalPlan builds plan(key) from the previous epoch's plan instead
// of from scratch. Classification walks the surviving plan once:
//
//   - pairs whose primary left the failed-set (downCount hit zero) drop
//     out and fall back to canonical;
//   - pairs whose served route crosses a newly-failed edge are stale and
//     re-solved;
//   - pairs a repaired edge could improve (or tie) are re-solved — unless
//     FaultSkipRepairRescan injects exactly that omission;
//   - every other surviving entry is reused verbatim: its winning offer
//     chain is intact and no repaired edge can beat it, so a from-scratch
//     solve would reproduce it bit-for-bit.
//
// Entering pairs plus the re-solve set then go through a work-stealing
// fan-out of pooled bounded solvers: each source's true post-failure
// distance row (the epoch oracle's tree, often adopted rather than
// recomputed) prunes the decomposition search, and results land in
// pre-sized slots — no locks on the assembly path. It returns the plan and
// the changed pairs (re-solved ∪ leaving), which is exactly the set whose
// rows and FEC entries the caller must rewrite.
//
// A repair-only burst that classification proves changes nothing — no pair
// entering, leaving, stale, or repair-improvable — canonicalizes to the
// previous plan verbatim: the new plan is the previous routes map aliased
// under the new failed-set key, reported as aliased=true so the caller can
// account it a plan-cache hit (the lookup was satisfied without a solve).
func (e *Engine) incrementalPlan(key string, fv *graph.FailureView, oracle *spath.Oracle, newlyDown []graph.EdgeID, entering, leaving []rbpc.Pair, repaired []graph.Edge, nh *netHandle) (_ *plan, changedPairs []rbpc.Pair, aliased bool) {
	t0 := time.Now()
	downNew := make(map[graph.EdgeID]bool, len(newlyDown))
	for _, ed := range newlyDown {
		downNew[ed] = true
	}
	recompute := make(map[rbpc.Pair]bool, len(entering))
	for _, pr := range entering {
		recompute[pr] = true
	}
	routes := make(map[rbpc.Pair]*Route, len(e.prevPlan.routes)+len(entering))
	reused := 0
	for pr, rt := range e.prevPlan.routes {
		if e.downCount[pr] == 0 || recompute[pr] {
			continue // leaving (canonical fallback) or already queued
		}
		if rt != nil && routeUses(rt, downNew) {
			e.inc.stale.Add(1)
			recompute[pr] = true
			continue
		}
		if e.cfg.Fault != FaultSkipRepairRescan && repairImproves(oracle, pr, rt, repaired) {
			e.inc.improved.Add(1)
			recompute[pr] = true
			continue
		}
		routes[pr] = rt
		reused++
	}
	e.inc.pairsReused.Add(int64(reused))
	e.inc.pairsRecomputed.Add(int64(len(recompute)))
	e.inc.affectedNs.Add(time.Since(t0).Nanoseconds())

	// Repair-only burst with nothing to re-solve: the new plan is derived
	// entirely from cached state — surviving entries reused verbatim,
	// leaving pairs dropped to canonical — and no solver runs, so the
	// lookup is accounted a plan-cache hit (the canonical failed-set key
	// was answered without a solve). When nothing left the plan either,
	// the previous routes map itself is aliased under the new key instead
	// of keeping the copy.
	if len(newlyDown) == 0 && len(entering) == 0 && len(recompute) == 0 {
		if len(leaving) == 0 {
			return &plan{key: key, routes: e.prevPlan.routes}, nil, true
		}
		changed := append([]rbpc.Pair(nil), leaving...)
		sort.Slice(changed, func(i, j int) bool {
			if changed[i].Src != changed[j].Src {
				return changed[i].Src < changed[j].Src
			}
			return changed[i].Dst < changed[j].Dst
		})
		return &plan{key: key, routes: routes}, changed, true
	}

	if len(recompute) > 0 {
		t1 := time.Now()
		bySrc := make(map[graph.NodeID][]graph.NodeID)
		for pr := range recompute {
			bySrc[pr.Src] = append(bySrc[pr.Src], pr.Dst)
		}
		srcs := make([]graph.NodeID, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, s := range srcs {
			d := bySrc[s]
			sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		}

		type srcDecs struct {
			decs []core.Decomposition
			oks  []bool
		}
		out := make([]srcDecs, len(srcs))
		workers := e.cfg.BuildWorkers
		if workers > len(srcs) {
			workers = len(srcs)
		}
		if workers < 1 {
			workers = 1
		}
		e.ensureSolvers(workers, fv)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(solver *core.SparseSolver) {
				defer wg.Done()
				var revScratch []float64
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(srcs) {
						return
					}
					s := srcs[i]
					// The oracle tree is the true post-failure distance
					// row from s; it bounds the decomposition search and
					// skips provably unreachable destinations outright.
					// The targets' own trees (memoized in the same epoch
					// oracle, shared across sources) give the reverse
					// distances that confine the search to the
					// optimal-path ellipse instead of the whole forward
					// ball of the farthest target.
					bound := oracle.Tree(s).Dists()
					rev := revBound(oracle, s, bySrc[s], bound, &revScratch)
					var decs []core.Decomposition
					var oks []bool
					if rev != nil {
						decs, oks = solver.FromBoundedEllipse(s, bySrc[s], bound, rev, spath.Unreachable)
					} else {
						decs, oks = solver.FromBounded(s, bySrc[s], bound, spath.Unreachable)
					}
					out[i] = srcDecs{decs, oks}
				}
			}(e.solvers[w])
		}
		wg.Wait()
		e.inc.solveNs.Add(time.Since(t1).Nanoseconds())

		// Serial resolution into LSPs, in sorted (src, dst) order so
		// on-demand signaling on the epoch's net stays deterministic.
		t2 := time.Now()
		for i, s := range srcs {
			for j, d := range bySrc[s] {
				pr := rbpc.Pair{Src: s, Dst: d}
				if !out[i].oks[j] {
					routes[pr] = nil
					continue
				}
				r, err := e.resolveRoute(out[i].decs[j], nh)
				if err != nil {
					routes[pr] = nil
					continue
				}
				routes[pr] = r
			}
		}
		e.inc.resolveNs.Add(time.Since(t2).Nanoseconds())
	}

	changed := make([]rbpc.Pair, 0, len(recompute)+len(leaving))
	for pr := range recompute {
		changed = append(changed, pr)
	}
	changed = append(changed, leaving...)
	sort.Slice(changed, func(i, j int) bool {
		if changed[i].Src != changed[j].Src {
			return changed[i].Src < changed[j].Src
		}
		return changed[i].Dst < changed[j].Dst
	})
	return &plan{key: key, routes: routes}, changed, false
}
