package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

// TestChurnStress is the torn-snapshot hunt: reader goroutines hammer
// Query while the writer walks a churn schedule, and every answer is
// validated against the exact epoch it was served from — the route must
// survive that epoch's failed-set, chain src to dst, cost the true
// post-failure shortest distance, and (sampled) actually deliver a packet
// on that epoch's forwarding plane. Any cross-epoch tearing (a route read
// against a different epoch's failure state) fails one of these checks.
// Run it under -race; scripts/verify.sh does.
func TestChurnStress(t *testing.T) {
	g := topology.Waxman(24, 0.8, 0.5, 17)
	e, _ := newEngine(t, g, Config{WarmOracle: true})

	events := failure.ChurnSchedule(g, 120, 3, rand.New(rand.NewSource(23)))

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		validate = func(t *testing.T, res Result, rng *rand.Rand) {
			snap := res.Snap
			fv := snap.View()
			if res.Route == nil {
				if res.Src != res.Dst && snap.Oracle().Dist(res.Src, res.Dst) != spath.Unreachable {
					t.Errorf("epoch %d: %d->%d reported unroutable but connected",
						snap.Epoch(), res.Src, res.Dst)
				}
				return
			}
			at := res.Src
			for _, l := range res.Route.LSPs {
				if l.Path.Nodes[0] != at {
					t.Errorf("epoch %d: %d->%d concatenation breaks at %d", snap.Epoch(), res.Src, res.Dst, at)
					return
				}
				if !paths.Survives(l.Path, fv) {
					t.Errorf("epoch %d: %d->%d rides a dead link (failed %v)",
						snap.Epoch(), res.Src, res.Dst, snap.Failed())
					return
				}
				at = l.Path.Nodes[len(l.Path.Nodes)-1]
			}
			if at != res.Dst {
				t.Errorf("epoch %d: %d->%d concatenation ends at %d", snap.Epoch(), res.Src, res.Dst, at)
				return
			}
			if want := snap.Oracle().Dist(res.Src, res.Dst); res.Route.Cost != want {
				t.Errorf("epoch %d: %d->%d cost %v, post-failure shortest %v",
					snap.Epoch(), res.Src, res.Dst, res.Route.Cost, want)
				return
			}
			// Sampled end-to-end forwarding on the epoch's own data plane.
			if rng.Intn(16) == 0 {
				pkt, err := snap.Net().SendIP(res.Src, res.Dst)
				if err != nil || pkt.At != res.Dst {
					t.Errorf("epoch %d: %d->%d forwarding failed: %v (%v)",
						snap.Epoch(), res.Src, res.Dst, pkt, err)
				}
			}
		}
	)

	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				src := graph.NodeID(rng.Intn(g.Order()))
				dst := graph.NodeID(rng.Intn(g.Order()))
				if src == dst {
					continue
				}
				validate(t, e.Query(src, dst), rng)
				queries.Add(1)
			}
		}(int64(r) + 100)
	}

	// Writer: walk the schedule, flushing every few events so readers see
	// many distinct epochs.
	for i, ev := range events {
		if ev.Repair {
			e.Repair(ev.Edge)
		} else {
			e.Fail(ev.Edge)
		}
		if i%4 == 3 {
			e.Flush()
		}
	}
	e.Flush()
	stop.Store(true)
	wg.Wait()

	if queries.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	st := e.Stats()
	if st.Epochs == 0 {
		t.Fatal("no epochs published under churn")
	}
	t.Logf("served %d validated queries over %d epochs (cache: %d hits / %d misses)",
		queries.Load(), st.Epochs, st.PlanCacheHits, st.PlanCacheMiss)
}
