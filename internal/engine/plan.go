package engine

import (
	"sort"
	"strconv"
	"sync"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/rbpc"
)

// plan is the canonical-relative restoration plan for one failed-set: for
// every pair whose primary crosses a failed link, the route replacing it
// (nil = unroutable under this failed-set). Pairs absent from the plan
// ride their canonical primaries untouched.
//
// Keying plans by failed-set makes arbitrary churn transitions correct by
// construction: moving from failed-set A to failed-set S applies plan(S)
// and restores the canonical route for every pair in plan(A) that plan(S)
// does not cover. Plans are immutable once built and safe to cache — they
// hold routes only, never forwarding state.
//
//rbpc:immutable
type plan struct {
	key    string
	routes map[rbpc.Pair]*Route
}

// emptyPlan is plan("") — the pristine network needs no overrides. Having
// it pre-cached makes "repair everything" transitions free.
var emptyPlan = &plan{key: "", routes: nil}

// failedKey canonicalizes a sorted failed-set into a cache key.
func failedKey(failed []graph.EdgeID) string {
	if len(failed) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*len(failed))
	for i, e := range failed {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(e), 10)
	}
	return string(b)
}

// affectedPairs returns the pairs whose primary crosses any failed link,
// grouped by source, using the static CSR primary->edge index (primaries
// never change, so the index is built once).
func (e *Engine) affectedPairs(failed []graph.EdgeID) map[graph.NodeID][]graph.NodeID {
	seen := make(map[rbpc.Pair]bool)
	bySrc := make(map[graph.NodeID][]graph.NodeID)
	for _, ed := range failed {
		for _, np := range e.pairIndex.Pairs(ed) {
			pr := rbpc.Pair{Src: np.Src, Dst: np.Dst}
			if !seen[pr] {
				seen[pr] = true
				bySrc[pr.Src] = append(bySrc[pr.Src], pr.Dst)
			}
		}
	}
	return bySrc
}

// computePlan builds plan(failed) from scratch: batched sparse
// decomposition per affected source (parallel, pure), then serial
// resolution of components into LSPs on net (which receives any on-demand
// establishment — the engine's net lineage is linear, so rows signaled
// here persist into every later epoch).
func (e *Engine) computePlan(failed []graph.EdgeID, net *netHandle) *plan {
	bySrc := e.affectedPairs(failed)
	if len(bySrc) == 0 {
		return &plan{key: failedKey(failed), routes: nil}
	}
	fv := graph.FailEdges(e.g, failed...)

	srcs := make([]graph.NodeID, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	// Phase 1 — decomposition fan-out. Each source's affected destinations
	// are covered by one multi-destination Dijkstra on the base-path graph.
	type srcDecs struct {
		decs []core.Decomposition
		oks  []bool
	}
	out := make([]srcDecs, len(srcs))
	workers := e.cfg.BuildWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One solver per worker: the dead-path mask and Dijkstra
			// scratch are computed once and reused across this worker's
			// share of the affected sources.
			solver := core.NewSparseSolver(e.base, fv)
			for i := range next {
				s := srcs[i]
				decs, oks := solver.From(s, bySrc[s])
				out[i] = srcDecs{decs, oks}
			}
		}()
	}
	for i := range srcs {
		next <- i
	}
	close(next)
	wg.Wait()

	// Phase 2 — serial resolution into LSPs. On-demand components are
	// signaled into the epoch's writable net and recorded in the shared
	// registry so later plans find them provisioned.
	routes := make(map[rbpc.Pair]*Route)
	for i, s := range srcs {
		for j, d := range bySrc[s] {
			pr := rbpc.Pair{Src: s, Dst: d}
			if !out[i].oks[j] {
				routes[pr] = nil
				continue
			}
			r, err := e.resolveRoute(out[i].decs[j], net)
			if err != nil {
				routes[pr] = nil
				continue
			}
			routes[pr] = r
		}
	}
	return &plan{key: failedKey(failed), routes: routes}
}

// lookupPlan consults the failed-set plan cache.
func (e *Engine) lookupPlan(key string) (*plan, bool) {
	return e.planCache.get(key)
}

// storePlan caches a freshly built plan, evicting by CLOCK when the cache
// is at capacity.
func (e *Engine) storePlan(p *plan) {
	e.planCache.put(p)
}

// planCache is the bounded failed-set plan cache, owned by the writer
// goroutine (no locking). Eviction is CLOCK: entries sit on a ring with a
// reference bit set on every hit; the hand sweeps past recently-used
// entries (clearing their bits) and reclaims the first un-referenced
// slot, approximating LRU without per-access list surgery. The pristine
// plan ("") lives outside the ring and is never evicted — "repair
// everything" transitions must stay free at any capacity. cap <= 0 means
// unbounded (the pre-existing default; small topologies and tests rely
// on it).
type planCache struct {
	cap     int
	entries map[string]*planEntry
	ring    []*planEntry
	hand    int
}

type planEntry struct {
	p   *plan
	ref bool
}

// newPlanCache builds the cache pre-seeded with the pristine plan.
func newPlanCache(cap int) *planCache {
	return &planCache{
		cap:     cap,
		entries: map[string]*planEntry{"": {p: emptyPlan}},
	}
}

func (c *planCache) get(key string) (*plan, bool) {
	ent, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent.ref = true
	return ent.p, true
}

func (c *planCache) put(p *plan) {
	if ent, ok := c.entries[p.key]; ok {
		ent.p = p
		ent.ref = true
		return
	}
	ent := &planEntry{p: p, ref: true}
	c.entries[p.key] = ent
	if c.cap <= 0 || len(c.ring) < c.cap {
		c.ring = append(c.ring, ent)
		return
	}
	// At capacity: sweep the hand to the first entry whose reference bit
	// is clear, evict it, and reuse its slot. Terminates within two laps —
	// the first lap clears every bit. The new entry keeps its ref bit, so
	// it survives the hand's next pass.
	for {
		victim := c.ring[c.hand]
		if victim.ref {
			victim.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, victim.p.key)
		c.ring[c.hand] = ent
		c.hand = (c.hand + 1) % len(c.ring)
		return
	}
}

// size reports resident plans, the pristine entry included.
func (c *planCache) size() int { return len(c.entries) }
