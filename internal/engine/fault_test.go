package engine

import (
	"sync/atomic"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestParseFaultRoundTrip(t *testing.T) {
	for _, f := range append(Faults(), FaultNone) {
		got, err := ParseFault(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFault(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFault("torn-everything"); err == nil {
		t.Fatal("ParseFault accepted an unknown name")
	}
}

// TestOnEpochTapSeesEveryPublish: the oracle tap fires once per published
// epoch, in order, with the snapshot just made current.
func TestOnEpochTapSeesEveryPublish(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 6)
	var last atomic.Uint64
	var taps atomic.Int64
	e, _ := newEngine(t, g, Config{OnEpoch: func(s *Snapshot) {
		if prev := last.Load(); s.Epoch() != prev+1 {
			t.Errorf("tap saw epoch %d after %d", s.Epoch(), prev)
		}
		last.Store(s.Epoch())
		taps.Add(1)
	}})
	for _, ed := range []graph.EdgeID{0, 1, 2} {
		e.Fail(ed)
		e.Flush()
	}
	for _, ed := range []graph.EdgeID{2, 1, 0} {
		e.Repair(ed)
		e.Flush()
	}
	if got := taps.Load(); got != 6 {
		t.Fatalf("tap fired %d times, want 6", got)
	}
}

// TestFaultDropEpochSuppressesRepairs: the injected defect is visible as
// a snapshot that disagrees with the event stream after a flush — the
// exact symptom the chaos harness's flush-agreement oracle keys on.
func TestFaultDropEpochSuppressesRepairs(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 6)
	e, _ := newEngine(t, g, Config{Fault: FaultDropEpoch})
	e.Fail(0)
	e.Flush()
	e.Repair(0)
	e.Flush()
	if got := e.Snapshot().Failed(); len(got) != 1 {
		t.Fatalf("faulty engine surfaced the repair: failed = %v", got)
	}
}

// TestFaultStalePlanKeepsDetours: after fail+repair of one link, the
// faulty engine still serves the restoration-era plan.
func TestFaultStalePlanKeepsDetours(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 9)
	good, _ := newEngine(t, g, Config{})
	bad, _ := newEngine(t, g, Config{Fault: FaultStalePlanOnRepair})

	for _, e := range []*Engine{good, bad} {
		e.Fail(0)
		e.Flush()
		e.Repair(0)
		e.Flush()
	}
	// The correct engine returns to canonical everywhere; the faulty one
	// must disagree on at least one pair that the failure had detoured.
	diverged := false
	for s := 0; s < g.Order() && !diverged; s++ {
		for d := 0; d < g.Order(); d++ {
			if s == d {
				continue
			}
			gr := good.Query(graph.NodeID(s), graph.NodeID(d)).Route
			br := bad.Query(graph.NodeID(s), graph.NodeID(d)).Route
			if (gr == nil) != (br == nil) || (gr != nil && br != nil && gr.Cost != br.Cost) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("stale-plan fault produced no observable divergence on this topology")
	}
}
