// Snapshot wire codec: the engine-side serialization hooks of the
// process-mode shard transport (internal/shardrpc). A delta-row snapshot
// travels as its overlay only — epoch, failed-set, and the per-source
// divergence rows. The canonical matrix is never shipped: it is a pure
// function of the provision, so every process rebuilds it once from the
// topology (SnapDecoder) and the wire carries just the splice points,
// exactly the delta-row memory argument applied to the network.
//
// Costs cross the wire as raw Float64bits, so a decoded replica answers
// with the same bits the worker served — the bit-identity the chaos
// equivalence oracle demands. Label stacks do not cross: a replica is a
// control-plane view (routability, costs, component paths); forwarding
// state lives only in the worker that owns the shard's data plane.
package engine

import (
	"fmt"
	"math"
	"time"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/rbpc"
	"rbpc/internal/spath"
)

// AppendWire serializes the snapshot's delta-row serving state — epoch,
// failed-set, and overlay rows — appending to buf (which may be nil) and
// returning the extended slice. Only delta-row snapshots serialize; a
// dense-mode snapshot has no overlay to ship and reports an error.
func (s *Snapshot) AppendWire(buf []byte) ([]byte, error) {
	if s.over == nil {
		return nil, fmt.Errorf("engine: only delta-row snapshots serialize (dense matrix is not wire state)")
	}
	buf = wireU64(buf, s.epoch)
	buf = wireU32(buf, uint32(len(s.failed)))
	for _, e := range s.failed {
		buf = wireU32(buf, uint32(e))
	}
	rows := 0
	for _, pr := range s.over {
		if pr != nil {
			rows++
		}
	}
	buf = wireU32(buf, uint32(rows))
	for src, pr := range s.over {
		if pr == nil {
			continue
		}
		buf = wireU32(buf, uint32(src))
		buf = wireU32(buf, uint32(len(pr.dsts)))
		for i, d := range pr.dsts {
			buf = wireU32(buf, uint32(d))
			buf = AppendRouteWire(buf, pr.routes[i])
		}
	}
	return buf, nil
}

// AppendRouteWire serializes one served route (nil encodes an unroutable
// override): presence byte, cost bits, and the component path sequence.
func AppendRouteWire(buf []byte, rt *Route) []byte {
	if rt == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = wireU64(buf, math.Float64bits(rt.Cost))
	buf = wireU32(buf, uint32(len(rt.LSPs)))
	for _, l := range rt.LSPs {
		buf = wirePath(buf, l.Path)
	}
	return buf
}

// SnapDecoder rebuilds engine snapshots from their wire overlay. It holds
// the shared canonical matrix — reconstructed once from the provision by
// the same code path engine.New uses, so canonical rows (and their cost
// bits) are identical to the worker's — plus the LSP registry that
// resolves decoded component paths back to provisioned LSP identities.
type SnapDecoder struct {
	g         *graph.Graph
	canon     [][]*Route
	lspOf     map[string]*mpls.LSP
	emptyOver []*planRow
}

// NewSnapDecoder builds the decoder for a provision. The provision must
// be the full (unsliced) export of the deployment, so the decoder can
// answer for any shard's sources.
func NewSnapDecoder(p rbpc.Provision) (*SnapDecoder, error) {
	n := p.Graph.Order()
	d := &SnapDecoder{
		g:         p.Graph,
		canon:     make([][]*Route, n),
		lspOf:     p.LSPs,
		emptyOver: make([]*planRow, n),
	}
	for pr, lsps := range p.Routes {
		stack, err := mpls.SelfStack(lsps)
		if err != nil {
			return nil, fmt.Errorf("engine: decoder route %v: %w", pr, err)
		}
		var cost float64
		for _, l := range lsps {
			cost += l.Path.CostIn(p.Graph)
		}
		row := d.canon[pr.Src]
		if row == nil {
			row = make([]*Route, n)
			d.canon[pr.Src] = row
		}
		row[pr.Dst] = &Route{LSPs: lsps, Stack: stack, Cost: cost}
	}
	return d, nil
}

// Materialized reports whether the source has a canonical serving row.
// In delta-row mode materialization is static — the overlay only ever
// diverges provisioned rows — so this answers for every epoch, which is
// what lets the process-mode coordinator divert cold pairs without
// consulting any worker.
func (d *SnapDecoder) Materialized(src graph.NodeID) bool {
	return int(src) < len(d.canon) && d.canon[src] != nil
}

// Decode rebuilds a snapshot from AppendWire output: the shared canonical
// matrix plus the decoded overlay, with a locally recomputed failure view
// and distance oracle (deterministic, hence bit-identical to the
// worker's). The input is untrusted — a truncated or corrupt frame
// returns an error, never a panic — so the decoder is fuzzable.
//
//rbpc:ctor
func (d *SnapDecoder) Decode(data []byte) (*Snapshot, error) {
	c := wireCursor{data: data}
	epoch := c.u64()
	failed, err := d.decodeFailed(&c)
	if err != nil {
		return nil, err
	}
	n := d.g.Order()
	rows := int(c.u32())
	if rows < 0 || rows > n {
		return nil, fmt.Errorf("engine: decode: %d overlay rows on a %d-node graph", rows, n)
	}
	over := make([]*planRow, n)
	for r := 0; r < rows; r++ {
		src := int(c.u32())
		if c.err || src < 0 || src >= n {
			return nil, fmt.Errorf("engine: decode: overlay row source out of range")
		}
		if over[src] != nil {
			return nil, fmt.Errorf("engine: decode: duplicate overlay row for source %d", src)
		}
		cnt := int(c.u32())
		if cnt < 1 || cnt > n || cnt*5 > c.remaining() {
			return nil, fmt.Errorf("engine: decode: overlay row length %d implausible", cnt)
		}
		dsts := make([]graph.NodeID, cnt)
		routes := make([]*Route, cnt)
		for i := 0; i < cnt; i++ {
			dst := int(c.u32())
			if c.err || dst < 0 || dst >= n {
				return nil, fmt.Errorf("engine: decode: overlay destination out of range")
			}
			if i > 0 && graph.NodeID(dst) <= dsts[i-1] {
				return nil, fmt.Errorf("engine: decode: overlay destinations not strictly sorted")
			}
			dsts[i] = graph.NodeID(dst)
			rt, err := d.decodeRoute(&c)
			if err != nil {
				return nil, err
			}
			routes[i] = rt
		}
		over[src] = newPlanRow(dsts, routes)
	}
	if c.err {
		return nil, fmt.Errorf("engine: decode: truncated snapshot frame")
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("engine: decode: %d trailing bytes after snapshot", c.remaining())
	}
	snap := d.detached(failed, epoch)
	snap.over = over
	return snap, nil
}

// DecodeRouteWire decodes one AppendRouteWire route from the front of
// data, returning the route and the number of bytes consumed — the entry
// point the shardrpc answer codec uses for routes embedded in answer
// frames.
func (d *SnapDecoder) DecodeRouteWire(data []byte) (*Route, int, error) {
	c := wireCursor{data: data}
	rt, err := d.decodeRoute(&c)
	if err != nil {
		return nil, 0, err
	}
	return rt, c.off, nil
}

// decodeRoute decodes one AppendRouteWire route against the decoder's
// registry: provisioned components resolve to their registry LSPs (so
// path identity — and the oracle's Path.Equal — is preserved), missing
// ones ride as un-signaled LSP values, the same convention the cold tier
// uses for on-demand answers.
func (d *SnapDecoder) decodeRoute(c *wireCursor) (*Route, error) {
	p := c.u8()
	if c.err {
		return nil, fmt.Errorf("engine: decode: truncated route")
	}
	switch p {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("engine: decode: bad route presence byte")
	}
	cost := math.Float64frombits(c.u64())
	ncomp := int(c.u32())
	if ncomp < 0 || ncomp*5 > c.remaining() {
		return nil, fmt.Errorf("engine: decode: route component count %d implausible", ncomp)
	}
	lsps := make([]*mpls.LSP, ncomp)
	for i := 0; i < ncomp; i++ {
		p, err := d.decodePath(c)
		if err != nil {
			return nil, err
		}
		if l, ok := d.lspOf[p.Key()]; ok {
			lsps[i] = l
		} else {
			lsps[i] = &mpls.LSP{Path: p}
		}
	}
	if c.err {
		return nil, fmt.Errorf("engine: decode: truncated route")
	}
	return &Route{LSPs: lsps, Cost: cost}, nil
}

// Detached builds a canonical-only snapshot for an arbitrary failed-set:
// shared canonical rows, empty overlay, locally computed failure view and
// oracle. The process-mode coordinator solves cold-tier queries against
// one when the owning worker is down — Corollary 4 answers any source
// from the base set, which is exactly what crash recovery leans on. The
// failed slice must be sorted ascending; it is retained.
func (d *SnapDecoder) Detached(failed []graph.EdgeID, epoch uint64) *Snapshot {
	return d.detached(failed, epoch)
}

func (d *SnapDecoder) detached(failed []graph.EdgeID, epoch uint64) *Snapshot {
	fv := graph.FailEdges(d.g, failed...)
	return &Snapshot{
		epoch:   epoch,
		failed:  failed,
		fv:      fv,
		oracle:  spath.NewOracle(fv),
		canon:   d.canon,
		over:    d.emptyOver,
		created: time.Now(),
		scheme:  SchemeSource,
	}
}

func (d *SnapDecoder) decodeFailed(c *wireCursor) ([]graph.EdgeID, error) {
	cnt := int(c.u32())
	if cnt < 0 || cnt > d.g.Size() || cnt*4 > c.remaining() {
		return nil, fmt.Errorf("engine: decode: failed-set length %d implausible", cnt)
	}
	failed := make([]graph.EdgeID, cnt)
	for i := 0; i < cnt; i++ {
		e := int(c.u32())
		if c.err || e < 0 || e >= d.g.Size() {
			return nil, fmt.Errorf("engine: decode: failed edge out of range")
		}
		if i > 0 && graph.EdgeID(e) <= failed[i-1] {
			return nil, fmt.Errorf("engine: decode: failed-set not strictly sorted")
		}
		failed[i] = graph.EdgeID(e)
	}
	if cnt == 0 {
		failed = nil
	}
	return failed, nil
}

func (d *SnapDecoder) decodePath(c *wireCursor) (graph.Path, error) {
	nn := int(c.u32())
	if nn < 1 || (nn-1)*8+4 > c.remaining()+4 || nn > c.remaining()/4+1 {
		return graph.Path{}, fmt.Errorf("engine: decode: path length %d implausible", nn)
	}
	nodes := make([]graph.NodeID, nn)
	for i := range nodes {
		v := int(c.u32())
		if c.err || v < 0 || v >= d.g.Order() {
			return graph.Path{}, fmt.Errorf("engine: decode: path node out of range")
		}
		nodes[i] = graph.NodeID(v)
	}
	edges := make([]graph.EdgeID, nn-1)
	for i := range edges {
		e := int(c.u32())
		if c.err || e < 0 || e >= d.g.Size() {
			return graph.Path{}, fmt.Errorf("engine: decode: path edge out of range")
		}
		edges[i] = graph.EdgeID(e)
	}
	return graph.Path{Nodes: nodes, Edges: edges}, nil
}

// wireCursor is a bounds-checked little-endian reader over one frame.
// Reads past the end set err and return zero; callers check err once per
// structure instead of per field.
type wireCursor struct {
	data []byte
	off  int
	err  bool
}

func (c *wireCursor) remaining() int { return len(c.data) - c.off }

func (c *wireCursor) u8() byte {
	if c.off+1 > len(c.data) {
		c.err = true
		return 0
	}
	v := c.data[c.off]
	c.off++
	return v
}

func (c *wireCursor) u32() uint32 {
	if c.off+4 > len(c.data) {
		c.err = true
		return 0
	}
	b := c.data[c.off:]
	c.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (c *wireCursor) u64() uint64 {
	if c.off+8 > len(c.data) {
		c.err = true
		return 0
	}
	b := c.data[c.off:]
	c.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func wireU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func wireU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func wirePath(buf []byte, p graph.Path) []byte {
	buf = wireU32(buf, uint32(len(p.Nodes)))
	for _, u := range p.Nodes {
		buf = wireU32(buf, uint32(u))
	}
	for _, e := range p.Edges {
		buf = wireU32(buf, uint32(e))
	}
	return buf
}
