package rbpc

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
	"rbpc/internal/verify"
)

func TestAddLinkImprovesRoutes(t *testing.T) {
	// A line 0-1-2-3-4: 0->4 takes 4 hops. Add a shortcut 0-4.
	s, err := NewSystem(topology.Line(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pkt := mustDeliver(t, s, 0, 4); pkt.Hops != 4 {
		t.Fatalf("pre-growth hops = %d", pkt.Hops)
	}
	id, err := s.AddLink(0, 4, 1)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	pkt := mustDeliver(t, s, 0, 4)
	if pkt.Hops != 1 {
		t.Errorf("post-growth hops = %d, want 1", pkt.Hops)
	}
	// Unimproved pairs keep their routes.
	if pkt := mustDeliver(t, s, 1, 2); pkt.Hops != 1 {
		t.Errorf("1->2 disturbed: %d hops", pkt.Hops)
	}
	// The new link participates in restoration like any other.
	mid, _ := s.Graph().FindEdge(1, 2)
	s.FailLink(mid)
	pkt = mustDeliver(t, s, 1, 2)
	usedNew := false
	for i := 1; i < len(pkt.Trace); i++ {
		e, _ := s.Graph().FindEdge(pkt.Trace[i-1], pkt.Trace[i])
		if e == id {
			usedNew = true
		}
	}
	if !usedNew {
		t.Errorf("restoration 1->2 did not use the new shortcut: %v", pkt.Trace)
	}
	// Tables stay sound throughout.
	if rep := verify.CheckAll(s.Net()); !rep.Clean() {
		t.Errorf("tables dirty after growth+failure: %v", rep)
	}
}

func TestAddLinkDuringFailure(t *testing.T) {
	// A partitioned line is healed by a new link: unroutable pairs come
	// back automatically.
	s, err := NewSystem(topology.Line(4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := s.Graph().FindEdge(1, 2)
	s.FailLink(mid)
	if _, err := s.Net().SendIP(0, 3); err == nil {
		t.Fatal("partition not effective")
	}
	if _, err := s.AddLink(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	pkt := mustDeliver(t, s, 0, 3)
	if pkt.Hops != 1 {
		t.Errorf("healed route hops = %d", pkt.Hops)
	}
	// 1 -> 2 must also be routable again: 1-0-3-2.
	mustDeliver(t, s, 1, 2)
}

func TestAddLinkInvalidatesPlans(t *testing.T) {
	g := topology.Ring(5)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.PrecomputeFailoverPlans()
	if s.PlannedUpdates(0) == 0 {
		t.Fatal("no plan before growth")
	}
	if _, err := s.AddLink(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if s.PlannedUpdates(0) != 0 {
		t.Error("stale plans survived topology growth")
	}
	// Precomputed failover works again after recomputation.
	s.PrecomputeFailoverPlans()
	e, _ := g.FindEdge(0, 1)
	if !s.FailLinkPrecomputed(e) {
		t.Error("replanned failover missing")
	}
	mustDeliver(t, s, 0, 1)
}

func TestAddLinkNoSignalingForUnaffectedPairs(t *testing.T) {
	// Growth provisions only the improved paths: a link that shortcuts
	// nothing adds exactly the edge LSPs.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := s.Net().NumLSPs()
	// A parallel twin of an existing link improves no pair.
	if _, err := s.AddLink(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	after := s.Net().NumLSPs()
	if after-before != 2 {
		t.Errorf("added %d LSPs, want 2 (the edge pair)", after-before)
	}
}
