package rbpc

// Repair-direction coverage: failure *removal* must be as correct as
// failure addition. The online engine drives both directions under churn,
// so every repair entry point is exercised here: RepairLink,
// RepairRouter, UndoLocalPatches, and partial repair of a multi-failure.

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/topology"
	"rbpc/internal/verify"
)

// routeCost sums the original-graph cost of a concatenation.
func routeCost(g *graph.Graph, lsps []*mpls.LSP) float64 {
	var c float64
	for _, l := range lsps {
		c += l.Path.CostIn(g)
	}
	return c
}

// assertPristine checks that every pair rides its primary again and that
// the forwarding tables audit clean.
func assertPristine(t *testing.T, s *System) {
	t.Helper()
	for pr, primary := range s.primaries {
		cur := s.RouteOf(pr.Src, pr.Dst)
		if len(cur) != 1 || cur[0] != primary {
			t.Fatalf("pair %v not back on its primary: %d components", pr, len(cur))
		}
	}
	if rep := verify.CheckAll(s.Net()); !rep.LoopFree() {
		t.Fatalf("table audit after repair: %v", rep)
	}
}

func TestRepairLinkRestoresPrimaries(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 3)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fail every link once, repairing after each: the system must return
	// to the pristine primary routing every time.
	for e := 0; e < g.Size(); e++ {
		s.FailLink(graph.EdgeID(e))
		s.RepairLink(graph.EdgeID(e))
		if len(s.KnownFailed()) != 0 {
			t.Fatalf("edge %d: failures survive repair: %v", e, s.KnownFailed())
		}
		assertPristine(t, s)
	}
}

func TestPartialRepairReroutesOptimally(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.5, 5)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := graph.EdgeID(0), graph.EdgeID(g.Size()/2)
	s.FailLink(e1)
	s.FailLink(e2)
	s.RepairLink(e1)

	// A reference system that only ever saw e2 fail must agree with the
	// partially repaired one on every pair: same routability, same cost.
	ref, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref.FailLink(e2)

	for pr := range s.primaries {
		got := s.RouteOf(pr.Src, pr.Dst)
		want := ref.RouteOf(pr.Src, pr.Dst)
		if (got == nil) != (want == nil) {
			t.Fatalf("pair %v: routable mismatch after partial repair (got %v, want %v)", pr, got != nil, want != nil)
		}
		if got != nil && routeCost(g, got) != routeCost(g, want) {
			t.Fatalf("pair %v: cost %v after partial repair, reference %v",
				pr, routeCost(g, got), routeCost(g, want))
		}
	}
}

func TestRepairRouterRestoresRoutes(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 7)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pick the highest-degree router so the failure actually reroutes.
	var r graph.NodeID
	best := -1
	for v := 0; v < g.Order(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > best {
			best, r = d, graph.NodeID(v)
		}
	}
	links := s.FailRouter(r)
	if len(links) != best {
		t.Fatalf("FailRouter downed %d links, degree %d", len(links), best)
	}
	if len(s.KnownFailed()) != len(links) {
		t.Fatalf("control plane knows %d failures, want %d", len(s.KnownFailed()), len(links))
	}
	s.RepairRouter(links)
	if len(s.KnownFailed()) != 0 {
		t.Fatalf("failures survive router repair: %v", s.KnownFailed())
	}
	assertPristine(t, s)
}

func TestUndoLocalPatchesRestoresILMRows(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 9)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find a link carried by at least one multi-hop primary so a local
	// patch has a row to replace.
	for e := 0; e < g.Size(); e++ {
		id := graph.EdgeID(e)
		if len(s.PairsThrough(id)) == 0 {
			continue
		}
		// Record the upstream ILM rows the patch will touch.
		type row struct {
			router graph.NodeID
			label  mpls.Label
		}
		before := make(map[row]mpls.ILMEntry)
		s.FailDataPlane(id)
		patched, _, err := s.LocalPatch(id, EndRoute)
		if err != nil {
			t.Fatalf("LocalPatch(%d): %v", id, err)
		}
		if patched == 0 {
			// Nothing replaced (all LSPs through e were unrestorable);
			// undo must still clear the record.
			s.UndoLocalPatches(id)
			s.net.RepairEdge(id)
			continue
		}
		for _, p := range s.patches[id] {
			before[row{p.router, p.label}] = p.prev
		}
		if !s.LocallyPatched(id) {
			t.Fatalf("link %d not marked patched", id)
		}
		undone := s.UndoLocalPatches(id)
		if undone != patched {
			t.Fatalf("undid %d rows, patched %d", undone, patched)
		}
		if s.LocallyPatched(id) {
			t.Fatalf("link %d still marked patched after undo", id)
		}
		for k, want := range before {
			got, ok := s.Net().Router(k.router).ILMEntryFor(k.label)
			if !ok {
				t.Fatalf("router %d label %d: row vanished after undo", k.router, k.label)
			}
			if got.OutEdge != want.OutEdge || len(got.Out) != len(want.Out) {
				t.Fatalf("router %d label %d: row not restored (got %+v want %+v)", k.router, k.label, got, want)
			}
			for i := range got.Out {
				if got.Out[i] != want.Out[i] {
					t.Fatalf("router %d label %d: stack not restored", k.router, k.label)
				}
			}
		}
		s.net.RepairEdge(id)
		return
	}
	t.Skip("no patchable link found")
}

func TestRepeatedFailRepairIsIdempotent(t *testing.T) {
	g := topology.Waxman(12, 0.8, 0.5, 11)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := graph.EdgeID(1)
	for i := 0; i < 5; i++ {
		s.FailLink(e)
		s.RepairLink(e)
	}
	assertPristine(t, s)
	// Fail/repair must not leak on-demand LSPs when the base set is
	// closed: restoration under one failure always finds provisioned
	// components.
	if got := s.OnDemandLSPs(); got != 0 {
		t.Fatalf("on-demand LSPs leaked under closed base set: %d", got)
	}
}
