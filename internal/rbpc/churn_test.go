package rbpc

// Churn/soak test: a long random sequence of failures and repairs with
// continuous invariant checks — the kind of sustained abuse a deployed
// restoration system sees.

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/topology"
	"rbpc/internal/verify"
)

func TestChurnSoak(t *testing.T) {
	g := topology.Waxman(16, 0.7, 0.4, 99)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	down := make(map[graph.EdgeID]bool)

	steps := 200
	if testing.Short() {
		steps = 50
	}
	for step := 0; step < steps; step++ {
		// Random action: fail a live link, or repair a dead one.
		if len(down) == 0 || (rng.Intn(2) == 0 && len(down) < 3) {
			e := graph.EdgeID(rng.Intn(g.Size()))
			if down[e] {
				continue
			}
			down[e] = true
			s.FailLink(e)
		} else {
			// Repair a random dead link.
			var es []graph.EdgeID
			for e := range down {
				es = append(es, e)
			}
			e := es[rng.Intn(len(es))]
			delete(down, e)
			s.RepairLink(e)
		}

		// Invariant 1: control knowledge matches our ledger.
		if len(s.KnownFailed()) != len(down) {
			t.Fatalf("step %d: known %v vs ledger %d", step, s.KnownFailed(), len(down))
		}

		// Invariant 2a: the static table audit finds no loops, ever (and
		// periodically, because a full audit is O(pairs * pathlen)).
		if step%20 == 0 {
			if rep := verify.CheckAll(s.Net()); !rep.LoopFree() {
				t.Fatalf("step %d: table audit found loops: %v", step, rep)
			}
		}

		// Invariant 2: random pairs deliver iff reachable; no loops.
		var downList []graph.EdgeID
		for e := range down {
			downList = append(downList, e)
		}
		fv := graph.FailEdges(g, downList...)
		for probe := 0; probe < 6; probe++ {
			src := graph.NodeID(rng.Intn(g.Order()))
			dst := graph.NodeID(rng.Intn(g.Order()))
			if src == dst {
				continue
			}
			reachable := false
			for _, v := range graph.ReachableFrom(fv, src) {
				if v == dst {
					reachable = true
				}
			}
			pkt, err := s.Net().SendIP(src, dst)
			if reachable && err != nil {
				t.Fatalf("step %d: %d->%d dropped though reachable: %v (down %v)", step, src, dst, err, downList)
			}
			if !reachable && err == nil {
				t.Fatalf("step %d: %d->%d delivered across partition", step, src, dst)
			}
			if err == nil && pkt.Hops >= mpls.DefaultTTL {
				t.Fatalf("step %d: TTL consumed", step)
			}
		}
	}

	// Repair everything; the system must return to pristine routing.
	for e := range down {
		s.RepairLink(e)
	}
	if len(s.KnownFailed()) != 0 {
		t.Fatalf("failures remain after full repair: %v", s.KnownFailed())
	}
	o := s.oracle
	for probe := 0; probe < 40; probe++ {
		src := graph.NodeID(rng.Intn(g.Order()))
		dst := graph.NodeID(rng.Intn(g.Order()))
		if src == dst {
			continue
		}
		pkt, err := s.Net().SendIP(src, dst)
		if err != nil {
			t.Fatalf("post-churn %d->%d: %v", src, dst, err)
		}
		// Back on a shortest path.
		wantHops := o.Tree(src).Hops(dst)
		var cost float64
		for i := 1; i < len(pkt.Trace); i++ {
			id, ok := g.FindEdge(pkt.Trace[i-1], pkt.Trace[i])
			if !ok {
				t.Fatalf("trace uses nonexistent link")
			}
			cost += g.Edge(id).W
		}
		if cost != o.Dist(src, dst) {
			t.Fatalf("post-churn %d->%d cost %v, want shortest %v (hops %d vs %d)",
				src, dst, cost, o.Dist(src, dst), pkt.Hops, wantHops)
		}
	}

	// No signaling ever happened (full pre-provisioning).
	if s.OnDemandLSPs() != 0 {
		t.Errorf("churn forced %d on-demand LSPs", s.OnDemandLSPs())
	}
	// Final audit: every table route delivers.
	if rep := verify.CheckAll(s.Net()); !rep.Clean() {
		t.Errorf("post-churn audit: %v\n%+v", rep, rep.Findings)
	}
}
