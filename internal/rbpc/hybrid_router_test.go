package rbpc

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/ospf"
	"rbpc/internal/sim"
)

func TestHybridRouterFailure(t *testing.T) {
	// Wheel: hub 0 plus 5-cycle rim. The hub dies; the hybrid must
	// restore all rim traffic around the rim as floods propagate, with a
	// dead-silent hub.
	g := graph.New(6)
	for i := 1; i <= 5; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	for i := 1; i <= 5; i++ {
		j := i + 1
		if j > 5 {
			j = 1
		}
		g.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
	}
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	h := NewHybrid(sys, proto, eng, EndRoute)

	links, err := h.FailRouter(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 5 {
		t.Fatalf("downed %d links", len(links))
	}
	// Mid-failure: rim traffic that crossed the hub drops until patches.
	if _, err := sys.Net().SendIP(1, 3); err == nil {
		t.Fatal("delivered through dead hub before any reaction")
	}
	eng.Run()
	for src := 1; src <= 5; src++ {
		for dst := 1; dst <= 5; dst++ {
			if src == dst {
				continue
			}
			pkt := mustDeliver(t, sys, graph.NodeID(src), graph.NodeID(dst))
			for _, r := range pkt.Trace {
				if r == 0 {
					t.Fatalf("%d->%d crossed the dead hub", src, dst)
				}
			}
		}
	}
	// Repair: hub routing returns.
	if err := h.RepairRouter(links); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	pkt := mustDeliver(t, sys, 1, 3)
	if pkt.Hops != 2 {
		t.Errorf("post-repair 1->3 = %d hops, want 2", pkt.Hops)
	}
	mustDeliver(t, sys, 1, 0)
}
