package rbpc

import (
	"maps"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
)

// Provision is a point-in-time export of a System's provisioned state —
// everything an external serving layer (internal/engine) needs to take
// over restoration: the topology, the forwarding plane, the base set and
// LSP registry, the per-pair primaries and current routes, and the
// control plane's failure knowledge.
//
// Maps are copied so later System mutations do not disturb the export;
// the pointed-to values (graph, network, LSPs, base set) are shared. A
// consumer that intends to keep serving from the export while the System
// keeps mutating should Clone the Network (copy-on-write) — *LSP values
// and the base set are immutable after provisioning and safe to share.
type Provision struct {
	Graph     *graph.Graph
	Net       *mpls.Network
	Config    Config
	Base      *paths.Explicit
	LSPs      map[string]*mpls.LSP
	Primaries map[Pair]*mpls.LSP
	Routes    map[Pair][]*mpls.LSP
	Failed    []graph.EdgeID
	OnDemand  int
}

// Export snapshots the system's provisioned state. See Provision for the
// sharing contract.
func (s *System) Export() Provision {
	return Provision{
		Graph:     s.g,
		Net:       s.net,
		Config:    s.cfg,
		Base:      s.base,
		LSPs:      maps.Clone(s.lspOf),
		Primaries: maps.Clone(s.primaries),
		Routes:    maps.Clone(s.routes),
		Failed:    s.KnownFailed(),
		OnDemand:  s.onDemandLSPs,
	}
}
