package rbpc

// The paper's warning (Section 4.2): "local re-routing alone will not
// allow loop-free restoration in the face of multiple link failures.
// Hence, routers must monitor the dynamic topology via the link-state
// protocol." These tests demonstrate the hazard and its two mitigations:
// TTL containment in the data plane, and shared failure knowledge in the
// control plane.

import (
	"errors"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/ospf"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

// TestLocalOnlyDoubleFailureNeverLoopsForever: patch two failures with
// deliberately isolated knowledge (each patch knows only its own link).
// Packets may drop or bounce, but the TTL must always terminate them.
func TestLocalOnlyDoubleFailureIsolatedKnowledge(t *testing.T) {
	g := topology.Ring(4)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e12, _ := g.FindEdge(1, 2)
	e32, _ := g.FindEdge(3, 2)

	// Both links die. Each adjacent router patches knowing ONLY its own
	// failure (NoteFailure is never called): router 1's detour to 2 runs
	// via 0-3-2 (through the other dead link), and router 3's via 0-1-2.
	s.FailDataPlane(e12)
	s.FailDataPlane(e32)
	if _, _, err := s.LocalPatch(e12, EndRoute); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LocalPatch(e32, EndRoute); err != nil {
		t.Fatal(err)
	}

	// 2 is genuinely unreachable (both its links are down), so no packet
	// for 2 can be delivered — but none may circulate forever either.
	for src := 0; src < 4; src++ {
		if src == 2 {
			continue
		}
		pkt, err := s.Net().SendIP(graph.NodeID(src), 2)
		if err == nil {
			t.Fatalf("delivered %d->2 across a double partition (trace %v)", src, pkt.Trace)
		}
		// The error must be a clean drop: dead link, TTL, or label-op
		// bound — never a hang (returning at all proves termination) and
		// never a silent misdelivery.
		if !errors.Is(err, mpls.ErrLinkDown) && !errors.Is(err, mpls.ErrTTLExpired) && !errors.Is(err, mpls.ErrLabelLoop) {
			t.Fatalf("unexpected drop reason for %d->2: %v", src, err)
		}
	}
}

// TestLocalPatchWithSharedKnowledgeAvoidsDeadDetours: the same double
// failure, but the second patch knows about the first (NoteFailure) —
// the paper's "routers must monitor the dynamic topology". On a richer
// graph the detours then avoid both dead links and deliver.
func TestLocalPatchWithSharedKnowledgeAvoidsDeadDetours(t *testing.T) {
	g := topology.Complete(5)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e01, _ := g.FindEdge(0, 1)
	e21, _ := g.FindEdge(2, 1)

	s.FailDataPlane(e01)
	s.NoteFailure(e01)
	if _, _, err := s.LocalPatch(e01, EndRoute); err != nil {
		t.Fatal(err)
	}
	s.FailDataPlane(e21)
	s.NoteFailure(e21)
	if _, _, err := s.LocalPatch(e21, EndRoute); err != nil {
		t.Fatal(err)
	}

	// Every source still reaches 1 (K5 minus two edges at node 1 leaves
	// degree 2), and no packet may loop.
	for src := 0; src < 5; src++ {
		if src == 1 {
			continue
		}
		pkt, err := s.Net().SendIP(graph.NodeID(src), 1)
		if err != nil {
			t.Fatalf("%d->1 dropped with shared knowledge: %v", src, err)
		}
		if pkt.Hops >= mpls.DefaultTTL {
			t.Fatalf("%d->1 consumed its TTL", src)
		}
	}
}

// TestHybridIsLoopFreeUnderDoubleFailure: the full machinery (link-state
// flood + local patches + source updates) under two failures close in
// time: every packet either delivers or is cleanly dropped, never loops
// past the TTL, throughout the convergence window.
func TestHybridIsLoopFreeUnderDoubleFailure(t *testing.T) {
	g := topology.Waxman(14, 0.8, 0.4, 77)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	h := NewHybrid(s, proto, eng, EdgeBypass)

	if err := h.FailLink(0); err != nil {
		t.Fatal(err)
	}
	// Second failure mid-flood of the first.
	eng.RunUntil(10.5)
	if err := h.FailLink(1); err != nil {
		t.Fatal(err)
	}

	// Probe at several instants during convergence.
	for _, checkpoint := range []float64{11, 13, 15, 1000} {
		eng.RunUntil(sim.Time(checkpoint))
		for src := 0; src < g.Order(); src++ {
			for dst := 0; dst < g.Order(); dst++ {
				if src == dst {
					continue
				}
				pkt, err := s.Net().SendIP(graph.NodeID(src), graph.NodeID(dst))
				if err != nil {
					continue // transient drop during convergence is allowed
				}
				if pkt.Hops >= mpls.DefaultTTL {
					t.Fatalf("t=%v: %d->%d consumed TTL", checkpoint, src, dst)
				}
				if pkt.At != graph.NodeID(dst) {
					t.Fatalf("t=%v: misdelivery %d->%d at %d", checkpoint, src, dst, pkt.At)
				}
			}
		}
	}
	// After convergence, everything reachable must deliver.
	eng.Run()
	fv := graph.FailEdges(g, 0, 1)
	for src := 0; src < g.Order(); src++ {
		reach := make(map[graph.NodeID]bool)
		for _, v := range graph.ReachableFrom(fv, graph.NodeID(src)) {
			reach[v] = true
		}
		for dst := 0; dst < g.Order(); dst++ {
			if src == dst {
				continue
			}
			_, err := s.Net().SendIP(graph.NodeID(src), graph.NodeID(dst))
			if reach[graph.NodeID(dst)] && err != nil {
				t.Fatalf("converged: %d->%d dropped: %v", src, dst, err)
			}
		}
	}
}
