package rbpc

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/ldp"
	"rbpc/internal/mpls"
	"rbpc/internal/sim"
	"rbpc/internal/spath"
)

// Baseline is conventional topology-driven MPLS restoration — the costly
// process RBPC replaces: each link failure tears down every affected LSP
// and signals a brand-new shortest-path LSP end to end via LDP. It exists
// to measure what RBPC saves (signaling messages and blackhole time); the
// routes it produces are the same post-failure shortest paths.
type Baseline struct {
	g      *graph.Graph
	net    *mpls.Network
	eng    *sim.Engine
	sig    *ldp.Signaler
	oracle *spath.Oracle

	routes map[Pair]*mpls.LSP
	failed map[graph.EdgeID]bool

	// NotifyDelay is how long after the physical failure the control
	// plane reacts (detection plus notification); it puts the baseline on
	// the same footing as the hybrid's detection delay. Default 0 is
	// maximally generous to the baseline.
	NotifyDelay sim.Time

	// RestoredAt records, per pair, when its replacement LSP went live.
	RestoredAt map[Pair]sim.Time
}

// NewBaseline provisions one shortest-path LSP per ordered pair with
// direct FEC entries.
func NewBaseline(g *graph.Graph, eng *sim.Engine, cfg ldp.Config) (*Baseline, error) {
	b := &Baseline{
		g:      g,
		net:    mpls.NewNetwork(g),
		eng:    eng,
		oracle: spath.NewOracle(g),
		routes: make(map[Pair]*mpls.LSP),
		failed: make(map[graph.EdgeID]bool),

		RestoredAt: make(map[Pair]sim.Time),
	}
	b.sig = ldp.NewSignaler(b.net, eng, cfg)
	n := g.Order()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			pr := Pair{graph.NodeID(s), graph.NodeID(d)}
			p, ok := b.oracle.Path(pr.Src, pr.Dst)
			if !ok {
				continue
			}
			lsp, err := b.net.EstablishLSP(p)
			if err != nil {
				return nil, fmt.Errorf("rbpc: baseline provisioning: %w", err)
			}
			b.routes[pr] = lsp
			b.net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{
				Stack:   []mpls.Label{lsp.FirstHopLabel()},
				OutEdge: lsp.FirstEdge(),
			})
		}
	}
	return b, nil
}

// Net returns the baseline's MPLS network.
func (b *Baseline) Net() *mpls.Network { return b.net }

// Signaling returns the LDP message counters.
func (b *Baseline) Signaling() ldp.Stats { return b.sig.Stats() }

// RouteOf returns the pair's current LSP (nil while re-signaling or if
// unroutable).
func (b *Baseline) RouteOf(src, dst graph.NodeID) *mpls.LSP {
	return b.routes[Pair{src, dst}]
}

// FailLink takes the link down and schedules teardown + re-establishment
// of every affected LSP. Traffic for those pairs blackholes until each
// replacement completes (watch RestoredAt). Run the engine to completion.
func (b *Baseline) FailLink(e graph.EdgeID) {
	b.net.FailEdge(e)
	b.failed[e] = true
	b.eng.After(b.NotifyDelay, func() { b.react(e) })
}

// react runs the control-plane reaction once the failure is known.
func (b *Baseline) react(e graph.EdgeID) {
	fv := graph.FailEdges(b.g, b.knownFailed()...)
	newOracle := spath.NewOracle(fv)

	for pr, lsp := range b.routes {
		if lsp == nil || !lsp.Path.HasEdge(e) {
			continue
		}
		pr, lsp := pr, lsp
		// The source learns instantly in this model (generous to the
		// baseline); it still pays full teardown + establishment.
		b.routes[pr] = nil
		b.net.ClearFEC(pr.Src, pr.Dst)
		b.sig.Teardown(lsp, func(error) {})
		newPath, ok := newOracle.Path(pr.Src, pr.Dst)
		if !ok {
			continue // disconnected
		}
		b.sig.Establish(newPath, func(nl *mpls.LSP, err error) {
			if err != nil {
				return
			}
			b.routes[pr] = nl
			b.net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{
				Stack:   []mpls.Label{nl.FirstHopLabel()},
				OutEdge: nl.FirstEdge(),
			})
			b.RestoredAt[pr] = b.eng.Now()
		})
	}
}

func (b *Baseline) knownFailed() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(b.failed))
	for e := range b.failed {
		out = append(out, e)
	}
	return out
}
