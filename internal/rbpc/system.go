// Package rbpc implements the paper's restoration schemes end to end on
// the simulated MPLS forwarding plane:
//
//   - Source-router RBPC (Section 4.1): a static base set of LSPs is
//     provisioned once; a link failure triggers only FEC-table rewrites at
//     source routers, swapping each broken route for a concatenation of
//     surviving base LSPs via the label stack. No ILM table changes, no
//     signaling.
//   - Local RBPC (Section 4.2), in both variants: end-route (the router
//     adjacent to the failure redirects the LSP's remainder to its
//     destination) and edge-bypass (it routes around the failed link and
//     the original LSP resumes). Each is a single ILM-row replacement at
//     the adjacent router.
//   - The hybrid scheme: edge-bypass the moment an endpoint detects the
//     failure, superseded by optimal source-router restoration as the
//     link-state flood reaches each source.
package rbpc

import (
	"fmt"
	"sort"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Pair is an ordered source-destination pair.
type Pair struct {
	Src, Dst graph.NodeID
}

// Config controls what gets pre-provisioned.
type Config struct {
	// SubpathClosure provisions every contiguous subpath of every
	// canonical base path as its own LSP, per Section 4.1 ("all subpaths
	// of this shortest path"). Quadratic in path length; intended for
	// ISP-scale networks.
	SubpathClosure bool
	// EdgeLSPs provisions a 1-hop LSP over every link in both directions,
	// so that the "k edges" of Theorem 2 are themselves pre-provisioned
	// and multi-failure restoration stays signaling-free.
	EdgeLSPs bool
	// Sources, when non-nil, restricts per-pair provisioning to the hot
	// set: base paths, primaries, routes, and FEC entries are installed
	// only for pairs whose source is listed, turning the O(n²) all-pairs
	// sweep into O(|Sources|·n). Pairs from unlisted sources have no
	// precomputed state — Corollary 4 guarantees they can still be
	// answered on demand from the base set (with EdgeLSPs the base stays
	// edge-complete, so optimal-cost answers always exist). This is what
	// makes full-scale topologies provisionable; the sharded serving
	// layer's cold-pair path consumes it. Nil provisions every source.
	Sources []graph.NodeID
}

// DefaultConfig enables both closures: full pre-provisioning, zero
// signaling at failure time.
func DefaultConfig() Config {
	return Config{SubpathClosure: true, EdgeLSPs: true}
}

// System is a running RBPC deployment: the MPLS network, the provisioned
// base set, the current route (LSP concatenation) per ordered pair, and
// the control-plane failure knowledge.
type System struct {
	g      *graph.Graph
	net    *mpls.Network
	cfg    Config
	oracle *spath.Oracle
	base   *paths.Explicit

	lspOf     map[string]*mpls.LSP // base-path key -> provisioned LSP
	primaries map[Pair]*mpls.LSP
	routes    map[Pair][]*mpls.LSP

	failed map[graph.EdgeID]bool

	patches map[graph.EdgeID][]patch

	// failoverPlans holds precomputed single-link FEC update sets (see
	// PrecomputeFailoverPlans); nil until precomputed.
	failoverPlans map[graph.EdgeID]*FailoverPlan

	// onDemandLSPs counts LSPs that had to be signaled at restoration
	// time because the needed component was not pre-provisioned.
	onDemandLSPs int
}

type patch struct {
	router graph.NodeID
	label  mpls.Label
	prev   mpls.ILMEntry
}

// NewSystem provisions a full RBPC deployment over g: canonical per-pair
// shortest-path LSPs (plus configured closures) and initial FEC entries at
// every router for every destination.
func NewSystem(g *graph.Graph, cfg Config) (*System, error) {
	s := &System{
		g:         g,
		net:       mpls.NewNetwork(g),
		cfg:       cfg,
		oracle:    spath.NewOracle(g),
		lspOf:     make(map[string]*mpls.LSP),
		primaries: make(map[Pair]*mpls.LSP),
		routes:    make(map[Pair][]*mpls.LSP),
		failed:    make(map[graph.EdgeID]bool),
		patches:   make(map[graph.EdgeID][]patch),
	}

	all := paths.NewAllShortest(g)
	n := g.Order()
	sources := cfg.Sources
	if sources == nil {
		sources = make([]graph.NodeID, n)
		for i := range sources {
			sources[i] = graph.NodeID(i)
		}
	}
	base := paths.FromSources(all, sources)
	if cfg.SubpathClosure {
		base = paths.SubpathClosure(base)
	}
	if cfg.EdgeLSPs {
		for _, e := range g.Edges() {
			base.Add(paths.EdgePath(g, e.ID, e.U))
			base.Add(paths.EdgePath(g, e.ID, e.V))
		}
	}
	s.base = base

	for _, p := range base.All() {
		lsp, err := s.net.EstablishLSP(p)
		if err != nil {
			return nil, fmt.Errorf("rbpc: provisioning base LSP %v: %w", p, err)
		}
		s.lspOf[p.Key()] = lsp
	}

	// Primary routes and FEC entries, hot sources only.
	for _, src := range sources {
		for di := 0; di < n; di++ {
			if graph.NodeID(di) == src {
				continue
			}
			pr := Pair{src, graph.NodeID(di)}
			p, ok := base.Between(pr.Src, pr.Dst)
			if !ok {
				continue // disconnected pair
			}
			lsp := s.lspOf[p.Key()]
			s.primaries[pr] = lsp
			s.installRoute(pr, []*mpls.LSP{lsp})
		}
	}
	return s, nil
}

// Net returns the underlying MPLS network.
func (s *System) Net() *mpls.Network { return s.net }

// Graph returns the topology.
func (s *System) Graph() *graph.Graph { return s.g }

// Base returns the provisioned base set.
func (s *System) Base() *paths.Explicit { return s.base }

// OnDemandLSPs reports how many LSPs had to be signaled at restoration
// time (zero when the configuration pre-provisions enough).
func (s *System) OnDemandLSPs() int { return s.onDemandLSPs }

// KnownFailed returns the links the control plane currently believes are
// down, sorted.
func (s *System) KnownFailed() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(s.failed))
	for e := range s.failed {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RouteOf returns the current LSP concatenation serving the pair, or nil
// if the pair is currently unroutable.
func (s *System) RouteOf(src, dst graph.NodeID) []*mpls.LSP {
	return s.routes[Pair{src, dst}]
}

// PairsThrough returns the ordered pairs whose current route traverses e,
// sorted for determinism.
func (s *System) PairsThrough(e graph.EdgeID) []Pair {
	var out []Pair
	for pr, lsps := range s.routes {
		for _, l := range lsps {
			if l.Path.HasEdge(e) {
				out = append(out, pr)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// installRoute records the concatenation and writes the source's FEC row.
func (s *System) installRoute(pr Pair, lsps []*mpls.LSP) {
	stack, err := mpls.SelfStack(lsps)
	if err != nil {
		// Cannot happen: routes are built from chained components.
		panic(fmt.Sprintf("rbpc: broken concatenation for %v: %v", pr, err))
	}
	s.routes[pr] = lsps
	s.net.SetFEC(pr.Src, pr.Dst, mpls.FECEntry{Stack: stack, OutEdge: mpls.LocalProcess})
}

// FailLink is the instant-knowledge convenience: the link goes down in the
// data plane and every source reacts immediately. The hybrid controller
// separates these steps to model propagation timing.
func (s *System) FailLink(e graph.EdgeID) {
	s.FailDataPlane(e)
	s.NoteFailure(e)
	s.UpdateAllSources(e)
}

// RepairLink reverses FailLink.
func (s *System) RepairLink(e graph.EdgeID) {
	s.net.RepairEdge(e)
	s.NoteRepair(e)
	s.revertAllSources()
	s.UndoLocalPatches(e)
}

// FailRouter models a whole-router failure as the failure of all its
// incident links (the equivalence the paper uses: "a node failure is
// equivalent to a failure of all incident edges"). All of them go down in
// the data plane, the control plane notes them, and every source whose
// route crossed any of them re-routes. The downed links are returned for
// RepairRouter.
func (s *System) FailRouter(r graph.NodeID) []graph.EdgeID {
	var links []graph.EdgeID
	s.g.VisitArcs(r, func(a graph.Arc) bool {
		links = append(links, a.Edge)
		return true
	})
	for _, e := range links {
		s.FailDataPlane(e)
		s.NoteFailure(e)
	}
	for _, e := range links {
		s.UpdateAllSources(e)
	}
	return links
}

// RepairRouter reverses FailRouter given the links it returned.
func (s *System) RepairRouter(links []graph.EdgeID) {
	for _, e := range links {
		s.net.RepairEdge(e)
		s.NoteRepair(e)
	}
	s.revertAllSources()
}

// FailDataPlane takes the link down physically, before any router reacts.
func (s *System) FailDataPlane(e graph.EdgeID) { s.net.FailEdge(e) }

// NoteFailure records control-plane knowledge that e is down, without
// updating any tables yet.
func (s *System) NoteFailure(e graph.EdgeID) { s.failed[e] = true }

// NoteRepair records control-plane knowledge that e is back up.
func (s *System) NoteRepair(e graph.EdgeID) { delete(s.failed, e) }

// UpdateAllSources recomputes the FEC entry of every pair whose current
// route crosses e. It returns the number of pairs rewritten and the number
// left unroutable (disconnected by the failures).
func (s *System) UpdateAllSources(e graph.EdgeID) (updated, unroutable int) {
	for _, pr := range s.PairsThrough(e) {
		if s.UpdatePair(pr.Src, pr.Dst) {
			updated++
		} else {
			unroutable++
		}
	}
	return updated, unroutable
}

// UpdatePair recomputes the route for one ordered pair against the
// currently known failures — the per-source action of source-router RBPC.
// It reports whether the pair is routable.
func (s *System) UpdatePair(src, dst graph.NodeID) bool {
	pr := Pair{src, dst}
	fv := graph.FailEdges(s.g, s.KnownFailed()...)

	// Prefer the primary whenever it survives.
	if primary, ok := s.primaries[pr]; ok && paths.Survives(primary.Path, fv) {
		s.installRoute(pr, []*mpls.LSP{primary})
		return true
	}
	dec, ok := core.DecomposeSparse(s.base, fv, src, dst)
	if !ok || len(dec.Components) == 0 {
		delete(s.routes, pr)
		s.net.ClearFEC(src, dst)
		return false
	}
	lsps, err := s.lspsFor(dec)
	if err != nil {
		delete(s.routes, pr)
		s.net.ClearFEC(src, dst)
		return false
	}
	s.installRoute(pr, lsps)
	return true
}

// revertAllSources re-evaluates every non-primary route (after a repair,
// primaries may be usable again) and every unroutable pair.
func (s *System) revertAllSources() {
	for pr, primary := range s.primaries {
		cur, routed := s.routes[pr]
		onPrimary := routed && len(cur) == 1 && cur[0] == primary
		if !onPrimary {
			s.UpdatePair(pr.Src, pr.Dst)
		}
	}
}

// lspsFor maps decomposition components to provisioned LSPs via a
// Resolver over the system's own network and registry.
func (s *System) lspsFor(dec core.Decomposition) ([]*mpls.LSP, error) {
	r := Resolver{Net: s.net, LSPs: s.lspOf}
	lsps, err := r.Resolve(dec)
	s.onDemandLSPs += r.OnDemand
	return lsps, err
}
