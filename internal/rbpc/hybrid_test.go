package rbpc

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/ldp"
	"rbpc/internal/ospf"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

// hexRing builds a 6-ring hybrid setup with 10ms detection and 1ms links.
func hexRing(t *testing.T) (*Hybrid, *sim.Engine) {
	t.Helper()
	g := topology.Ring(6)
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	return NewHybrid(sys, proto, eng, EdgeBypass), eng
}

func TestHybridTimeline(t *testing.T) {
	h, eng := hexRing(t)
	s := h.System()
	e, _ := s.Graph().FindEdge(0, 1)

	if err := h.FailLink(e); err != nil {
		t.Fatal(err)
	}

	// t=0+: physically down, nothing has reacted; traffic drops.
	if _, err := s.Net().SendIP(0, 1); err == nil {
		t.Fatal("packet crossed dead link before any reaction")
	}

	// Run to just past detection (10ms): local patch applied, sources far
	// away not yet updated.
	eng.RunUntil(10.5)
	if _, ok := h.LocalPatchedAt[e]; !ok {
		t.Fatal("local patch missing after detection delay")
	}
	if got := h.LocalPatchedAt[e]; got != 10 {
		t.Errorf("local patch at %v, want 10", got)
	}
	// Traffic flows again via the bypass — before the flood converges.
	pkt := mustDeliver(t, s, 0, 1)
	if pkt.Hops != 5 {
		t.Errorf("bypassed route = %d hops, want 5 on a 6-ring", pkt.Hops)
	}
	// A distant source (node 3, routing to 0 via... its primary may cross
	// e) has not been told yet; its FEC is still the primary.
	if len(h.SourceUpdatedAt) != 0 {
		// Sources 0 and 1 are also adjacent, they may have updated at
		// detection time; only distant sources must lag.
		for pr, at := range h.SourceUpdatedAt {
			if pr.Src != 0 && pr.Src != 1 {
				t.Errorf("distant source %d updated at %v before flood reached it", pr.Src, at)
			}
		}
	}

	// Run to convergence: all sources updated, routes optimal.
	eng.Run()
	for pr, at := range h.SourceUpdatedAt {
		if at < 10 {
			t.Errorf("pair %v updated before detection: %v", pr, at)
		}
	}
	pkt = mustDeliver(t, s, 0, 1)
	if pkt.Hops != 5 {
		t.Errorf("final route = %d hops", pkt.Hops)
	}
	// The adjacent sources updated strictly earlier than the farthest.
	var minAt, maxAt sim.Time
	first := true
	for _, at := range h.SourceUpdatedAt {
		if first {
			minAt, maxAt = at, at
			first = false
		}
		if at < minAt {
			minAt = at
		}
		if at > maxAt {
			maxAt = at
		}
	}
	if !(maxAt > minAt) {
		t.Errorf("no propagation spread: min %v max %v", minAt, maxAt)
	}
}

func TestHybridRecovery(t *testing.T) {
	h, eng := hexRing(t)
	s := h.System()
	e, _ := s.Graph().FindEdge(0, 1)
	h.FailLink(e)
	eng.Run()
	if err := h.RepairLink(e); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if s.LocallyPatched(e) {
		t.Error("patches not undone after recovery")
	}
	pkt := mustDeliver(t, s, 0, 1)
	if pkt.Hops != 1 {
		t.Errorf("post-recovery hops = %d, want 1", pkt.Hops)
	}
	if len(s.KnownFailed()) != 0 {
		t.Errorf("stale failure knowledge: %v", s.KnownFailed())
	}
}

func TestHybridBlackholeWindowShorterThanBaseline(t *testing.T) {
	// The punchline experiment: RBPC's blackhole window is the detection
	// delay; the baseline's is detection + full LDP re-signaling.
	g := topology.Ring(8)
	sysEng := &sim.Engine{}
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	proto := ospf.New(g, sysEng, ospf.DefaultConfig())
	h := NewHybrid(sys, proto, sysEng, EdgeBypass)

	balEng := &sim.Engine{}
	bal, err := NewBaseline(g, balEng, ldp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	e, _ := g.FindEdge(0, 1)
	h.FailLink(e)
	sysEng.Run()
	bal.FailLink(e)
	balEng.Run()

	rbpcRestored := h.LocalPatchedAt[e]
	var balLast sim.Time
	for _, at := range bal.RestoredAt {
		if at > balLast {
			balLast = at
		}
	}
	if len(bal.RestoredAt) == 0 {
		t.Fatal("baseline restored nothing")
	}
	if !(rbpcRestored < balLast) {
		t.Errorf("RBPC local restoration at %v not faster than baseline completion at %v", rbpcRestored, balLast)
	}
	// Baseline pays signaling; RBPC pays none after provisioning.
	if bal.Signaling().Total() == 0 {
		t.Error("baseline sent no LDP messages")
	}
}

func TestBaselineDeliversAfterResignaling(t *testing.T) {
	g := topology.Ring(6)
	eng := &sim.Engine{}
	bal, err := NewBaseline(g, eng, ldp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pre-failure delivery.
	pkt, err := bal.Net().SendIP(0, 3)
	if err != nil || pkt.At != 3 {
		t.Fatalf("pre-failure: %v", err)
	}
	e, _ := g.FindEdge(0, 1)
	bal.FailLink(e)
	// Mid-signaling: the broken pairs blackhole.
	if _, err := bal.Net().SendIP(0, 1); err == nil {
		t.Error("delivered during re-signaling window")
	}
	eng.Run()
	pkt, err = bal.Net().SendIP(0, 1)
	if err != nil || pkt.At != 1 {
		t.Fatalf("post-signaling: %v", err)
	}
	if pkt.Hops != 5 {
		t.Errorf("baseline detour = %d hops, want 5", pkt.Hops)
	}
	if bal.RouteOf(0, 1) == nil {
		t.Error("RouteOf nil after restoration")
	}
}

func TestBaselineDisconnectedPair(t *testing.T) {
	g := topology.Line(3)
	eng := &sim.Engine{}
	bal, err := NewBaseline(g, eng, ldp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	bal.FailLink(e)
	eng.Run()
	if _, err := bal.Net().SendIP(0, 1); err == nil {
		t.Error("delivered across partition")
	}
	if bal.RouteOf(0, 1) != nil {
		t.Error("route exists across partition")
	}
}

func TestHybridMultipleFailures(t *testing.T) {
	// Dense graph, two sequential failures with floods in between: the
	// system must converge to working routes.
	g := topology.Complete(6)
	sys, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	proto := ospf.New(g, eng, ospf.DefaultConfig())
	h := NewHybrid(sys, proto, eng, EndRoute)

	e1, _ := g.FindEdge(0, 1)
	e2, _ := g.FindEdge(0, 2)
	h.FailLink(e1)
	eng.Run()
	h.FailLink(e2)
	eng.Run()

	for src := 0; src < g.Order(); src++ {
		for dst := 0; dst < g.Order(); dst++ {
			if src != dst {
				mustDeliver(t, sys, graph.NodeID(src), graph.NodeID(dst))
			}
		}
	}
}
