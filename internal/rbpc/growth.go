package rbpc

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Topology growth. The paper frames RBPC as making rigid MPLS "a
// flexible and fault-tolerant set of routes that can withstand
// topological changes and failures" — failures are handled by
// restoration; this file handles the other direction: a new link coming
// into service. The base set is extended (never rebuilt: established
// LSPs and their labels are untouched), primaries that the new link
// improves are re-provisioned, and affected FEC entries move over.

// AddLink brings a new link into service: it is added to the topology
// and the data plane, provisioned per the configuration (1-hop LSPs,
// improved canonical paths plus their subpaths), and every pair whose
// shortest path improves is switched to a new primary.
//
// Precomputed failover plans are invalidated (they reference the old
// topology); call PrecomputeFailoverPlans again if needed.
func (s *System) AddLink(u, v graph.NodeID, w float64) (graph.EdgeID, error) {
	id := s.g.AddEdge(u, v, w)
	s.net.SyncNewEdges()
	s.failoverPlans = nil

	// The memoized oracle predates the mutation.
	s.oracle = spath.NewOracle(s.g)

	if s.cfg.EdgeLSPs {
		for _, ep := range []graph.Path{paths.EdgePath(s.g, id, u), paths.EdgePath(s.g, id, v)} {
			if err := s.provisionBasePath(ep); err != nil {
				return id, err
			}
		}
	}

	// Re-derive canonical paths; switch improved primaries.
	all := paths.NewAllShortestOracle(s.oracle)
	n := s.g.Order()
	for si := 0; si < n; si++ {
		for di := 0; di < n; di++ {
			if si == di {
				continue
			}
			pr := Pair{graph.NodeID(si), graph.NodeID(di)}
			newPath, ok := all.Between(pr.Src, pr.Dst)
			if !ok || newPath.Hops() == 0 {
				continue
			}
			old, had := s.primaries[pr]
			if had && old.Path.CostIn(s.g) <= newPath.CostIn(s.g) {
				continue // the new link does not improve this pair
			}
			if err := s.provisionBasePath(newPath); err != nil {
				return id, err
			}
			if s.cfg.SubpathClosure {
				h := newPath.Hops()
				for i := 0; i < h; i++ {
					for j := i + 1; j <= h; j++ {
						if err := s.provisionBasePath(newPath.SubPath(i, j)); err != nil {
							return id, err
						}
					}
				}
			}
			s.primaries[pr] = s.lspOf[newPath.Key()]
			// Move the pair over unless failures currently divert it.
			s.UpdatePair(pr.Src, pr.Dst)
		}
	}
	// Pairs currently off their primaries (detoured or unroutable under
	// active failures) may also benefit from the new link: re-evaluate
	// them against the updated topology.
	s.revertAllSources()
	return id, nil
}

// provisionBasePath adds p to the base set and establishes its LSP if it
// is not already provisioned.
func (s *System) provisionBasePath(p graph.Path) error {
	key := p.Key()
	if _, have := s.lspOf[key]; have {
		return nil
	}
	s.base.Add(p)
	lsp, err := s.net.EstablishLSP(p)
	if err != nil {
		return fmt.Errorf("rbpc: provisioning %v: %w", p, err)
	}
	s.lspOf[key] = lsp
	return nil
}
