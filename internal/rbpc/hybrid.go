package rbpc

import (
	"fmt"

	"rbpc/internal/graph"
	"rbpc/internal/ospf"
	"rbpc/internal/sim"
)

// Hybrid couples a System to the link-state substrate so restoration
// happens with realistic distributed timing, implementing the paper's
// combined scheme: "the adjacent router immediately re-routes affected
// LSPs, though not always along shortest paths, and the source router
// eventually redirects along a shortest path."
//
// Timeline per failure:
//
//	t=0                the link physically fails; packets crossing it drop
//	t=DetectDelay      an endpoint detects, applies local RBPC (one ILM
//	                   row per broken LSP) — traffic flows again
//	t=flood arrival    each affected source learns and rewrites its FEC —
//	                   traffic returns to optimal (post-failure shortest)
//	                   paths
type Hybrid struct {
	sys    *System
	proto  *ospf.Protocol
	eng    *sim.Engine
	scheme LocalScheme

	// LocalPatchedAt records when local restoration kicked in per link.
	LocalPatchedAt map[graph.EdgeID]sim.Time
	// SourceUpdatedAt records when each pair's source rewrote its FEC for
	// a failure.
	SourceUpdatedAt map[Pair]sim.Time
}

// NewHybrid wires a System to an OSPF instance on the same topology.
func NewHybrid(sys *System, proto *ospf.Protocol, eng *sim.Engine, scheme LocalScheme) *Hybrid {
	h := &Hybrid{
		sys:    sys,
		proto:  proto,
		eng:    eng,
		scheme: scheme,

		LocalPatchedAt:  make(map[graph.EdgeID]sim.Time),
		SourceUpdatedAt: make(map[Pair]sim.Time),
	}
	proto.Subscribe(h.onLSA)
	return h
}

// System returns the underlying RBPC system.
func (h *Hybrid) System() *System { return h.sys }

// FailLink takes the link down in the data plane now and starts the
// control-plane reaction (detection, flooding, restoration) on the
// simulation engine. Run the engine to let restoration unfold.
func (h *Hybrid) FailLink(e graph.EdgeID) error {
	if e < 0 || int(e) >= h.sys.g.Size() {
		return fmt.Errorf("rbpc: unknown link %d", e)
	}
	h.sys.FailDataPlane(e)
	return h.proto.FailLink(e)
}

// RepairLink brings the link back and floods the recovery; patches and
// FEC entries revert as routers learn.
func (h *Hybrid) RepairLink(e graph.EdgeID) error {
	if e < 0 || int(e) >= h.sys.g.Size() {
		return fmt.Errorf("rbpc: unknown link %d", e)
	}
	h.sys.net.RepairEdge(e)
	return h.proto.RepairLink(e)
}

// FailRouter takes a whole router down: all incident links die in the
// data plane now, and only the surviving far endpoints detect and flood.
// Restoration (local patches at neighbors, source re-routes) unfolds on
// the engine. The downed links are returned for RepairRouter.
func (h *Hybrid) FailRouter(r graph.NodeID) ([]graph.EdgeID, error) {
	h.sys.g.VisitArcs(r, func(a graph.Arc) bool {
		h.sys.FailDataPlane(a.Edge)
		return true
	})
	return h.proto.FailRouter(r)
}

// RepairRouter reverses FailRouter.
func (h *Hybrid) RepairRouter(links []graph.EdgeID) error {
	for _, e := range links {
		h.sys.net.RepairEdge(e)
	}
	return h.proto.RepairRouter(links)
}

// onLSA reacts to every router's processing of a topology change.
func (h *Hybrid) onLSA(r graph.NodeID, lsa ospf.LSA, at sim.Time) {
	e := lsa.Edge
	edge := h.sys.g.Edge(e)
	adjacent := r == edge.U || r == edge.V

	if !lsa.Up {
		// Control-plane knowledge is recorded the first time anyone
		// learns; per-source FEC reactions still wait for each source's
		// own LSA arrival below.
		h.sys.NoteFailure(e)
		if adjacent {
			if _, done := h.LocalPatchedAt[e]; !done {
				if _, _, err := h.sys.LocalPatch(e, h.scheme); err == nil {
					h.LocalPatchedAt[e] = at
				}
			}
		}
		// Source-router RBPC at r for every pair r originates whose
		// current route crosses the dead link.
		for _, pr := range h.sys.PairsThrough(e) {
			if pr.Src != r {
				continue
			}
			h.sys.UpdatePair(pr.Src, pr.Dst)
			if _, seen := h.SourceUpdatedAt[pr]; !seen {
				h.SourceUpdatedAt[pr] = at
			}
		}
		return
	}

	// Recovery.
	h.sys.NoteRepair(e)
	if adjacent && h.sys.LocallyPatched(e) {
		h.sys.UndoLocalPatches(e)
	}
	// Each source re-optimizes the pairs it originates as it learns.
	for pr, primary := range h.sys.primaries {
		if pr.Src != r {
			continue
		}
		cur, routed := h.sys.routes[pr]
		onPrimary := routed && len(cur) == 1 && cur[0] == primary
		if !onPrimary {
			h.sys.UpdatePair(pr.Src, pr.Dst)
		}
	}
}
