package rbpc

import (
	"fmt"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
)

// LocalScheme selects the local-RBPC variant of Section 4.2.
type LocalScheme int

const (
	// EndRoute: the router adjacent to the failure rewrites the ILM row
	// to carry the packet to the LSP's destination over a concatenation
	// of surviving base paths.
	EndRoute LocalScheme = iota + 1
	// EdgeBypass: the adjacent router routes around the failed link and
	// the packet resumes the original LSP at the far endpoint.
	EdgeBypass
)

// String implements fmt.Stringer.
func (s LocalScheme) String() string {
	switch s {
	case EndRoute:
		return "end-route"
	case EdgeBypass:
		return "edge-bypass"
	default:
		return fmt.Sprintf("LocalScheme(%d)", int(s))
	}
}

// LocalPatch applies local RBPC for the failure of link e: for every
// provisioned LSP traversing e, the router immediately upstream of the
// failed link replaces its single ILM row for that LSP. The data plane
// must already mark e down (FailDataPlane).
//
// The adjacent router acts on global topology knowledge but only the
// locally detected failure (plus whatever the control plane already
// knows), per the paper. Patches are recorded and reversed by
// UndoLocalPatches when the link recovers.
//
// It returns the number of ILM rows replaced. LSPs whose remainder cannot
// be restored (the failure disconnected them) are left broken and counted
// in the second return.
func (s *System) LocalPatch(e graph.EdgeID, scheme LocalScheme) (patched, unrestorable int, err error) {
	if _, dup := s.patches[e]; dup {
		return 0, 0, fmt.Errorf("rbpc: link %d already locally patched", e)
	}
	known := append(s.KnownFailed(), e)
	fv := graph.FailEdges(s.g, known...)

	type rowKey struct {
		router graph.NodeID
		label  mpls.Label
	}
	var applied []patch
	seen := make(map[rowKey]bool)
	for _, p := range s.base.ThroughEdge(e) {
		lsp, ok := s.lspOf[p.Key()]
		if !ok {
			continue
		}
		for i, edge := range lsp.Path.Edges {
			if edge != e {
				continue
			}
			r1 := lsp.Path.Nodes[i]
			r2 := lsp.Path.Nodes[i+1]
			inLabel, ok := s.labelInto(lsp, i)
			if !ok {
				continue
			}
			key := rowKey{router: r1, label: inLabel}
			if seen[key] {
				continue
			}
			row, ok := s.localRow(lsp, i, r1, r2, fv, scheme)
			if !ok {
				unrestorable++
				continue
			}
			prev, rerr := s.net.ReplaceILM(r1, inLabel, row)
			if rerr != nil {
				return patched, unrestorable, fmt.Errorf("rbpc: patching LSP %d at router %d: %w", lsp.ID, r1, rerr)
			}
			seen[key] = true
			applied = append(applied, patch{router: r1, label: inLabel, prev: prev})
			patched++
		}
	}
	s.patches[e] = applied
	return patched, unrestorable, nil
}

// labelInto returns the label under which the LSP's traffic is processed
// at Path.Nodes[i]: the ingress self-label for i == 0, the upstream hop
// label otherwise.
func (s *System) labelInto(lsp *mpls.LSP, i int) (mpls.Label, bool) {
	if i == 0 {
		return lsp.SelfLabel(), true
	}
	return lsp.HopLabel(i - 1)
}

// localRow builds the replacement ILM row at r1 for an LSP whose i-th link
// (r1 -> r2) failed.
func (s *System) localRow(lsp *mpls.LSP, i int, r1, r2 graph.NodeID, fv *graph.FailureView, scheme LocalScheme) (mpls.ILMEntry, bool) {
	switch scheme {
	case EndRoute:
		dec, ok := core.DecomposeSparse(s.base, fv, r1, lsp.Egress())
		if !ok || len(dec.Components) == 0 {
			return mpls.ILMEntry{}, false
		}
		lsps, err := s.lspsFor(dec)
		if err != nil {
			return mpls.ILMEntry{}, false
		}
		stack, err := mpls.SelfStack(lsps)
		if err != nil {
			return mpls.ILMEntry{}, false
		}
		return mpls.ILMEntry{Out: stack, OutEdge: mpls.LocalProcess}, true
	case EdgeBypass:
		resume, ok := lsp.HopLabel(i)
		if !ok {
			return mpls.ILMEntry{}, false
		}
		dec, ok := core.DecomposeSparse(s.base, fv, r1, r2)
		if !ok || len(dec.Components) == 0 {
			return mpls.ILMEntry{}, false
		}
		lsps, err := s.lspsFor(dec)
		if err != nil {
			return mpls.ILMEntry{}, false
		}
		bypass, err := mpls.SelfStack(lsps)
		if err != nil {
			return mpls.ILMEntry{}, false
		}
		// Bottom-first: the resume label sits beneath the bypass stack,
		// exposed when the bypass's egress (r2) pops.
		out := make([]mpls.Label, 0, len(bypass)+1)
		out = append(out, resume)
		out = append(out, bypass...)
		return mpls.ILMEntry{Out: out, OutEdge: mpls.LocalProcess}, true
	default:
		return mpls.ILMEntry{}, false
	}
}

// UndoLocalPatches restores the ILM rows replaced by LocalPatch(e).
func (s *System) UndoLocalPatches(e graph.EdgeID) int {
	applied := s.patches[e]
	for _, p := range applied {
		// The row must still exist; restore the original entry.
		if _, err := s.net.ReplaceILM(p.router, p.label, p.prev); err != nil {
			panic(fmt.Sprintf("rbpc: undo patch at router %d label %d: %v", p.router, p.label, err))
		}
	}
	delete(s.patches, e)
	return len(applied)
}

// LocallyPatched reports whether link e currently has local patches
// applied.
func (s *System) LocallyPatched(e graph.EdgeID) bool {
	_, ok := s.patches[e]
	return ok
}
