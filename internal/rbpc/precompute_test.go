package rbpc

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
	"rbpc/internal/verify"
)

func TestPrecomputedPlansMatchOnline(t *testing.T) {
	// For every single-link failure, the precomputed reaction must leave
	// the network in exactly the state the online reaction produces.
	g := topology.Waxman(12, 0.7, 0.4, 31)
	mk := func() *System {
		s, err := NewSystem(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pre := mk()
	pre.PrecomputeFailoverPlans()

	for _, e := range g.Edges() {
		online := mk()
		online.FailLink(e.ID)

		if !pre.FailLinkPrecomputed(e.ID) {
			// No plan means the link carried no primaries; online must
			// agree that nothing changed.
			if n := len(online.PairsThrough(e.ID)); n != 0 {
				t.Fatalf("link %d: no plan but %d online pairs", e.ID, n)
			}
		}
		for src := 0; src < g.Order(); src++ {
			for dst := 0; dst < g.Order(); dst++ {
				if src == dst {
					continue
				}
				a := pre.RouteOf(graph.NodeID(src), graph.NodeID(dst))
				b := online.RouteOf(graph.NodeID(src), graph.NodeID(dst))
				if (a == nil) != (b == nil) {
					t.Fatalf("link %d, %d->%d: precomputed routable=%v online=%v",
						e.ID, src, dst, a != nil, b != nil)
				}
				if a == nil {
					continue
				}
				// Same concatenation cost (the decompositions are
				// deterministic, so they should match exactly).
				var costA, costB float64
				for _, l := range a {
					costA += l.Path.CostIn(g)
				}
				for _, l := range b {
					costB += l.Path.CostIn(g)
				}
				if costA != costB {
					t.Fatalf("link %d, %d->%d: cost %v vs %v", e.ID, src, dst, costA, costB)
				}
			}
		}
		// The table audit must be clean after the precomputed swap.
		if rep := verify.CheckAll(pre.Net()); !rep.Clean() {
			t.Fatalf("link %d: precomputed tables dirty: %v", e.ID, rep)
		}
		pre.RepairLink(e.ID)
	}
}

func TestPrecomputedFallsBackUnderMultipleFailures(t *testing.T) {
	g := topology.Complete(5)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.PrecomputeFailoverPlans()
	e1, _ := g.FindEdge(0, 1)
	e2, _ := g.FindEdge(0, 2)
	if !s.FailLinkPrecomputed(e1) {
		t.Fatal("first failure should use the plan")
	}
	if s.FailLinkPrecomputed(e2) {
		t.Fatal("second simultaneous failure must fall back to online")
	}
	// Still fully routable either way.
	for src := 0; src < 5; src++ {
		for dst := 0; dst < 5; dst++ {
			if src != dst {
				mustDeliver(t, s, graph.NodeID(src), graph.NodeID(dst))
			}
		}
	}
}

func TestPlannedUpdatesAccounting(t *testing.T) {
	g := topology.Ring(6)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.PlannedUpdates(0) != 0 {
		t.Error("plans exist before precomputation")
	}
	plans := s.PrecomputeFailoverPlans()
	if len(plans) != g.Size() {
		t.Errorf("plans for %d links, want %d (every ring link carries primaries)", len(plans), g.Size())
	}
	for _, e := range g.Edges() {
		if s.PlannedUpdates(e.ID) == 0 {
			t.Errorf("no planned updates for link %d", e.ID)
		}
	}
}
