package rbpc

import (
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func TestFailRouterRestoresAround(t *testing.T) {
	// 5-wheel: hub 0 connected to a 4-cycle 1-2-3-4. Failing the hub
	// leaves the cycle; every rim pair must restore around the rim.
	g := graph.New(5)
	for i := 1; i <= 4; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 1, 1)

	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	links := s.FailRouter(0)
	if len(links) != 4 {
		t.Fatalf("FailRouter downed %d links, want 4", len(links))
	}
	// Rim pairs deliver without crossing the hub.
	for src := 1; src <= 4; src++ {
		for dst := 1; dst <= 4; dst++ {
			if src == dst {
				continue
			}
			pkt := mustDeliver(t, s, graph.NodeID(src), graph.NodeID(dst))
			for _, n := range pkt.Trace {
				if n == 0 {
					t.Fatalf("%d->%d routed through failed router: %v", src, dst, pkt.Trace)
				}
			}
		}
	}
	// Traffic to the failed router drops.
	if _, err := s.Net().SendIP(1, 0); err == nil {
		t.Error("delivered to a failed router")
	}
	// Repair restores hub routing.
	s.RepairRouter(links)
	pkt := mustDeliver(t, s, 1, 3)
	if pkt.Hops != 2 {
		t.Errorf("post-repair 1->3 hops = %d, want 2 (via hub or rim)", pkt.Hops)
	}
	mustDeliver(t, s, 1, 0)
	if len(s.KnownFailed()) != 0 {
		t.Errorf("stale failures: %v", s.KnownFailed())
	}
}

func TestFailRouterPCBound(t *testing.T) {
	// The paper: node-failure concatenations are bounded by the failed
	// router's degree (deg+1 paths via the edge-failure theorems, modulo
	// the Figure-4 pathology). Check routes stay short on a mesh.
	g := topology.Complete(6)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.FailRouter(2)
	for src := 0; src < 6; src++ {
		for dst := 0; dst < 6; dst++ {
			if src == dst || src == 2 || dst == 2 {
				continue
			}
			if r := s.RouteOf(graph.NodeID(src), graph.NodeID(dst)); len(r) > 2 {
				t.Errorf("%d->%d concatenates %d LSPs on K6 minus a node", src, dst, len(r))
			}
		}
	}
}

func TestFailRouterArticulationPartition(t *testing.T) {
	// Failing an articulation router genuinely partitions: the system
	// must clear routes rather than misroute.
	g := graph.New(5) // bowtie: 0-1-2(cut)-3-4, triangles 0-1-2 and 2-3-4
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 2, 1)
	cuts := graph.ArticulationPoints(g)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("setup: cuts = %v", cuts)
	}
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.FailRouter(2)
	if _, err := s.Net().SendIP(0, 3); err == nil {
		t.Error("delivered across the cut")
	}
	mustDeliver(t, s, 0, 1)
	mustDeliver(t, s, 3, 4)
}
