package rbpc

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/topology"
)

// newSquareSystem builds a System over C4 with full provisioning.
func newSquareSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(topology.Ring(4), DefaultConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func mustDeliver(t *testing.T, s *System, src, dst graph.NodeID) *mpls.Packet {
	t.Helper()
	pkt, err := s.Net().SendIP(src, dst)
	if err != nil {
		t.Fatalf("SendIP(%d,%d): %v (trace %v)", src, dst, err, pkt)
	}
	if pkt.At != dst {
		t.Fatalf("packet for %d delivered at %d", dst, pkt.At)
	}
	return pkt
}

func TestProvisioningAndPrimaries(t *testing.T) {
	s := newSquareSystem(t)
	// Every ordered pair must be routable out of the box.
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			pkt := mustDeliver(t, s, graph.NodeID(src), graph.NodeID(dst))
			if pkt.Hops > 2 {
				t.Errorf("%d->%d took %d hops on C4", src, dst, pkt.Hops)
			}
		}
	}
	if s.OnDemandLSPs() != 0 {
		t.Errorf("on-demand LSPs at provisioning time: %d", s.OnDemandLSPs())
	}
}

func TestSourceRBPCSingleFailure(t *testing.T) {
	s := newSquareSystem(t)
	e, _ := s.Graph().FindEdge(0, 1)

	// Physical failure, before any reaction: traffic crossing e drops.
	s.FailDataPlane(e)
	if _, err := s.Net().SendIP(0, 1); err == nil {
		t.Fatal("packet crossed a dead link")
	}

	// Source-router reaction: FEC rewrites only.
	ilmBefore, _ := s.Net().TotalILM()
	sigBefore := s.Net().Stats().SignalingMsgs
	s.NoteFailure(e)
	updated, unroutable := s.UpdateAllSources(e)
	if updated == 0 || unroutable != 0 {
		t.Fatalf("updated=%d unroutable=%d", updated, unroutable)
	}
	ilmAfter, _ := s.Net().TotalILM()
	if ilmAfter != ilmBefore {
		t.Errorf("source RBPC changed ILM tables: %d -> %d", ilmBefore, ilmAfter)
	}
	if got := s.Net().Stats().SignalingMsgs; got != sigBefore {
		t.Errorf("source RBPC signaled: %d -> %d messages", sigBefore, got)
	}

	// Traffic flows again on the 3-hop detour.
	pkt := mustDeliver(t, s, 0, 1)
	if pkt.Hops != 3 {
		t.Errorf("restored route = %d hops, want 3", pkt.Hops)
	}
	// With one base path per pair, C4 is the paper's remark: some single
	// failure forces 3 components (two trivial paths and an edge). The
	// concatenation must never exceed that.
	if r := s.RouteOf(0, 1); len(r) > 3 {
		t.Errorf("concatenation of %d LSPs, want <= 3 on C4", len(r))
	}
}

func TestSourceRBPCRecovery(t *testing.T) {
	s := newSquareSystem(t)
	e, _ := s.Graph().FindEdge(0, 1)
	s.FailLink(e)
	if pkt := mustDeliver(t, s, 0, 1); pkt.Hops != 3 {
		t.Fatalf("detour hops = %d", pkt.Hops)
	}
	s.RepairLink(e)
	if pkt := mustDeliver(t, s, 0, 1); pkt.Hops != 1 {
		t.Errorf("after recovery hops = %d, want 1", pkt.Hops)
	}
	if len(s.KnownFailed()) != 0 {
		t.Errorf("failures still known after repair: %v", s.KnownFailed())
	}
}

func TestSourceRBPCDoubleFailure(t *testing.T) {
	// K5 is 4-edge-connected: after two link failures every pair stays
	// routable, with zero signaling (closure provisioning).
	s, err := NewSystem(topology.Complete(5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := s.Graph().FindEdge(0, 1)
	e2, _ := s.Graph().FindEdge(2, 3)
	sigBefore := s.Net().Stats().SignalingMsgs
	s.FailLink(e1)
	s.FailLink(e2)
	for src := 0; src < 5; src++ {
		for dst := 0; dst < 5; dst++ {
			if src != dst {
				mustDeliver(t, s, graph.NodeID(src), graph.NodeID(dst))
			}
		}
	}
	if got := s.Net().Stats().SignalingMsgs; got != sigBefore {
		t.Errorf("double failure signaled %d messages", got-sigBefore)
	}
	if s.OnDemandLSPs() != 0 {
		t.Errorf("on-demand LSPs = %d, want 0 with full closure", s.OnDemandLSPs())
	}
}

func TestDisconnectionHandled(t *testing.T) {
	// A line: failing the middle link separates the halves.
	s, err := NewSystem(topology.Line(4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Graph().FindEdge(1, 2)
	s.FailLink(e)
	if _, err := s.Net().SendIP(0, 3); err == nil {
		t.Error("packet delivered across a partition")
	}
	// Unaffected pairs still work.
	mustDeliver(t, s, 0, 1)
	mustDeliver(t, s, 2, 3)
	// Repair restores everything.
	s.RepairLink(e)
	mustDeliver(t, s, 0, 3)
}

func TestOnDemandWithoutClosure(t *testing.T) {
	// Without subpath closure or edge LSPs, restoration may need to
	// signal components on demand — the System must still deliver.
	s, err := NewSystem(topology.Ring(6), Config{SubpathClosure: false, EdgeLSPs: false})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Graph().FindEdge(0, 1)
	s.FailLink(e)
	mustDeliver(t, s, 0, 1)
}

func TestLocalEndRoute(t *testing.T) {
	// Diamond + tail: LSP 0-1-2; link 1-2 fails; router 1 patches.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(3, 2, 1)
	s, err := NewSystem(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.FailDataPlane(e12)
	patched, unrestorable, err := s.LocalPatch(e12, EndRoute)
	if err != nil {
		t.Fatalf("LocalPatch: %v", err)
	}
	if patched == 0 || unrestorable != 0 {
		t.Fatalf("patched=%d unrestorable=%d", patched, unrestorable)
	}
	// Source 0 has NOT updated its FEC; the patch alone must carry the
	// packet: 0 -> 1 -> 3 -> 2.
	pkt := mustDeliver(t, s, 0, 2)
	want := []graph.NodeID{0, 1, 3, 2}
	if len(pkt.Trace) != len(want) {
		t.Fatalf("trace %v, want %v", pkt.Trace, want)
	}
	for i := range want {
		if pkt.Trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", pkt.Trace, want)
		}
	}
	// Undo and repair: original 2-hop route again.
	s.Net().RepairEdge(e12)
	s.UndoLocalPatches(e12)
	pkt = mustDeliver(t, s, 0, 2)
	if pkt.Hops != 2 {
		t.Errorf("after undo: %d hops", pkt.Hops)
	}
}

func TestLocalEdgeBypass(t *testing.T) {
	// Square + pendant: LSP 0-1-2 over the ring; bypass 1-0-3-2? Use C4:
	// LSP 0-1 fails at its only link; R1=0 is the ingress; bypass 0-3-2-1
	// resumes at 1 (the egress pop).
	s := newSquareSystem(t)
	e, _ := s.Graph().FindEdge(0, 1)
	s.FailDataPlane(e)
	patched, unrestorable, err := s.LocalPatch(e, EdgeBypass)
	if err != nil {
		t.Fatalf("LocalPatch: %v", err)
	}
	if patched == 0 || unrestorable != 0 {
		t.Fatalf("patched=%d unrestorable=%d", patched, unrestorable)
	}
	pkt := mustDeliver(t, s, 0, 1)
	if pkt.Hops != 3 {
		t.Errorf("bypassed route = %d hops, want 3", pkt.Hops)
	}
	// Longer LSPs resume correctly too: 3 -> 1 originally 3-0-1.
	mustDeliver(t, s, 3, 1)
}

func TestLocalPatchDuplicate(t *testing.T) {
	s := newSquareSystem(t)
	e, _ := s.Graph().FindEdge(0, 1)
	s.FailDataPlane(e)
	if _, _, err := s.LocalPatch(e, EdgeBypass); err != nil {
		t.Fatal(err)
	}
	if !s.LocallyPatched(e) {
		t.Error("LocallyPatched = false")
	}
	if _, _, err := s.LocalPatch(e, EdgeBypass); err == nil {
		t.Error("double patch accepted")
	}
}

func TestLocalPatchUnrestorable(t *testing.T) {
	// Line: failing the middle link cannot be bypassed.
	s, err := NewSystem(topology.Line(4), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Graph().FindEdge(1, 2)
	s.FailDataPlane(e)
	patched, unrestorable, err := s.LocalPatch(e, EdgeBypass)
	if err != nil {
		t.Fatal(err)
	}
	if patched != 0 || unrestorable == 0 {
		t.Errorf("patched=%d unrestorable=%d on a bridge", patched, unrestorable)
	}
}

func TestLocalSchemeString(t *testing.T) {
	if EndRoute.String() != "end-route" || EdgeBypass.String() != "edge-bypass" || LocalScheme(9).String() == "" {
		t.Error("LocalScheme.String wrong")
	}
}

func TestPairsThrough(t *testing.T) {
	s := newSquareSystem(t)
	e, _ := s.Graph().FindEdge(0, 1)
	prs := s.PairsThrough(e)
	if len(prs) == 0 {
		t.Fatal("no pairs through a used link")
	}
	// Must at least include (0,1) and (1,0).
	has := func(p Pair) bool {
		for _, q := range prs {
			if q == p {
				return true
			}
		}
		return false
	}
	if !has(Pair{0, 1}) || !has(Pair{1, 0}) {
		t.Errorf("pairs through edge: %v", prs)
	}
}

// TestRandomFailuresAlwaysDeliverOrPartition: property-style integration
// test over random topologies: after arbitrary single and double failures
// and source RBPC, every pair either delivers or is genuinely partitioned.
func TestRandomFailuresAlwaysDeliverOrPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := topology.Waxman(14, 0.7, 0.4, int64(trial))
		s, err := NewSystem(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			e := graph.EdgeID(rng.Intn(g.Size()))
			if _, known := s.failed[e]; known {
				continue
			}
			s.FailLink(e)
		}
		fv := graph.FailEdges(g, s.KnownFailed()...)
		for src := 0; src < g.Order(); src++ {
			for dst := 0; dst < g.Order(); dst++ {
				if src == dst {
					continue
				}
				_, err := s.Net().SendIP(graph.NodeID(src), graph.NodeID(dst))
				reachable := false
				for _, v := range graph.ReachableFrom(fv, graph.NodeID(src)) {
					if v == graph.NodeID(dst) {
						reachable = true
					}
				}
				if reachable && err != nil {
					t.Fatalf("trial %d: %d->%d undeliverable despite connectivity: %v", trial, src, dst, err)
				}
				if !reachable && err == nil {
					t.Fatalf("trial %d: %d->%d delivered across a partition", trial, src, dst)
				}
			}
		}
	}
}

// TestNoLoopsUnderLocalPatching: local patches must never loop a packet
// (TTL would catch it); single failures on random graphs.
func TestNoLoopsUnderLocalPatching(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := topology.Waxman(12, 0.8, 0.4, int64(100+trial))
		s, err := NewSystem(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		e := graph.EdgeID(trial % g.Size())
		s.FailDataPlane(e)
		if _, _, err := s.LocalPatch(e, EdgeBypass); err != nil {
			t.Fatal(err)
		}
		for src := 0; src < g.Order(); src++ {
			for dst := 0; dst < g.Order(); dst++ {
				if src == dst {
					continue
				}
				pkt, err := s.Net().SendIP(graph.NodeID(src), graph.NodeID(dst))
				if err != nil {
					// Allowed only if truly cut off.
					fv := graph.FailEdges(g, e)
					for _, v := range graph.ReachableFrom(fv, graph.NodeID(src)) {
						if v == graph.NodeID(dst) {
							t.Fatalf("trial %d: %d->%d dropped (%v) though reachable", trial, src, dst, err)
						}
					}
					continue
				}
				if pkt.Hops >= mpls.DefaultTTL {
					t.Fatalf("trial %d: packet consumed its TTL", trial)
				}
			}
		}
	}
}
