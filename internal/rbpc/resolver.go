package rbpc

import (
	"fmt"

	"rbpc/internal/core"
	"rbpc/internal/mpls"
)

// Resolver maps decomposition components to provisioned LSPs, signaling
// missing components on demand (paper, Section 4.1: multiple failures may
// force an online computation). It is the shared mechanism behind both
// the System's online restoration path and the engine's epoch builds: the
// two differ only in which Network the on-demand LSPs are signaled into
// and which registry they are recorded in.
//
// A Resolver is not safe for concurrent use; it mutates both Net and
// LSPs.
type Resolver struct {
	// Net receives on-demand LSP establishment.
	Net *mpls.Network
	// LSPs is the provisioned registry, keyed by path key. On-demand
	// LSPs are added to it.
	LSPs map[string]*mpls.LSP
	// OnDemand counts LSPs this resolver had to signal because the
	// needed component was not pre-provisioned.
	OnDemand int
}

// Resolve maps every component of dec to an LSP, establishing missing
// ones on demand.
func (r *Resolver) Resolve(dec core.Decomposition) ([]*mpls.LSP, error) {
	lsps := make([]*mpls.LSP, 0, len(dec.Components))
	for _, c := range dec.Components {
		key := c.Path.Key()
		lsp, ok := r.LSPs[key]
		if !ok {
			var err error
			lsp, err = r.Net.EstablishLSP(c.Path)
			if err != nil {
				return nil, fmt.Errorf("rbpc: on-demand LSP %v: %w", c.Path, err)
			}
			r.LSPs[key] = lsp
			r.OnDemand++
		}
		lsps = append(lsps, lsp)
	}
	return lsps, nil
}
