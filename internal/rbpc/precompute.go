package rbpc

import (
	"sort"

	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
)

// Precomputed failover plans, per the paper (Section 4.1): "for each link
// in the network the router has a set of changes to its FEC table ...
// This process could be computed online but will be fastest if
// pre-computed and indexed by the specific link failure."
//
// A FailoverPlan holds, for one link, the FEC rewrites every source
// applies the instant it learns of that link's failure — no shortest-path
// computation on the critical path. Plans cover single-link failures;
// multiple simultaneous failures fall back to the online path
// (UpdatePair), exactly as the paper prescribes.

// FECUpdate is one planned rewrite: the source's new label stack for a
// destination (nil Stack = the pair becomes unroutable).
type FECUpdate struct {
	Src, Dst graph.NodeID
	LSPs     []*mpls.LSP
}

// FailoverPlan is the precomputed reaction to one link's failure.
type FailoverPlan struct {
	Edge    graph.EdgeID
	Updates []FECUpdate
}

// PrecomputeFailoverPlans builds the per-link FEC update sets for every
// link whose failure breaks at least one primary route. Cost: one
// restoration computation per (link, affected pair), paid once at
// provisioning time.
func (s *System) PrecomputeFailoverPlans() map[graph.EdgeID]*FailoverPlan {
	plans := make(map[graph.EdgeID]*FailoverPlan)
	// Affected pairs per link, from the primaries' edge usage.
	for pr, primary := range s.primaries {
		for _, e := range primary.Path.Edges {
			p := plans[e]
			if p == nil {
				p = &FailoverPlan{Edge: e}
				plans[e] = p
			}
			p.Updates = append(p.Updates, FECUpdate{Src: pr.Src, Dst: pr.Dst})
		}
	}
	for e, plan := range plans {
		fv := graph.FailEdges(s.g, e)
		for i := range plan.Updates {
			u := &plan.Updates[i]
			dec, ok := core.DecomposeSparse(s.base, fv, u.Src, u.Dst)
			if !ok || len(dec.Components) == 0 {
				continue // unroutable under this failure: nil LSPs
			}
			lsps, err := s.lspsFor(dec)
			if err != nil {
				continue
			}
			u.LSPs = lsps
		}
		// Deterministic order for application and inspection.
		sort.Slice(plan.Updates, func(i, j int) bool {
			a, b := plan.Updates[i], plan.Updates[j]
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.Dst < b.Dst
		})
	}
	s.failoverPlans = plans
	return plans
}

// FailLinkPrecomputed reacts to a single-link failure using the
// precomputed plan: the data plane goes down and every affected source
// swaps in its pre-built label stack — zero shortest-path work at
// failure time. It reports whether a plan existed (false = the link
// carried no primaries, or plans were never precomputed, or other
// failures are already active, in which case it falls back to the online
// path).
func (s *System) FailLinkPrecomputed(e graph.EdgeID) bool {
	s.FailDataPlane(e)
	s.NoteFailure(e)
	// Precomputed plans assume a single failure; with other failures
	// active the plan's stacks may cross dead links, so recompute online.
	if len(s.failed) != 1 {
		s.UpdateAllSources(e)
		return false
	}
	plan, ok := s.failoverPlans[e]
	if !ok {
		s.UpdateAllSources(e)
		return false
	}
	for _, u := range plan.Updates {
		pr := Pair{u.Src, u.Dst}
		if u.LSPs == nil {
			delete(s.routes, pr)
			s.net.ClearFEC(u.Src, u.Dst)
			continue
		}
		s.installRoute(pr, u.LSPs)
	}
	return true
}

// PlannedUpdates returns how many FEC rewrites the plan for e holds
// (0 if none precomputed).
func (s *System) PlannedUpdates(e graph.EdgeID) int {
	if p, ok := s.failoverPlans[e]; ok {
		return len(p.Updates)
	}
	return 0
}
