package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath checks that functions annotated //rbpc:hotpath — the snapshot
// query path, the SSSP kernel inner loops, the forwarding-table lookups —
// contain no allocating constructs and only call other hotpath or
// allowlisted functions. This is the machine-checked form of the engine's
// "0 allocs/op" benchmark claim: the benchmark proves it for one workload,
// the analyzer proves the property can't silently leak back in on any
// path.
//
// Flagged constructs:
//
//   - make, new, and heap composite literals (&T{...}, []T{...}, map lits)
//   - append (may grow; suppress with //rbpc:allow hotpath where capacity
//     is preallocated and growth is amortized away)
//   - map index writes
//   - string concatenation and string<->[]byte/[]rune conversions
//   - closures that capture variables (the capture forces a heap context)
//   - go statements
//   - calls that are not to a //rbpc:hotpath function, an allowlisted
//     stdlib function, or a builtin from the free list; dynamic calls
//     (interface methods, function values) are always flagged because the
//     callee cannot be verified
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//rbpc:hotpath functions must not allocate and may only call hotpath or allowlisted functions",
	Run:  runHotpath,
}

// hotpathStdlibPkgs are stdlib packages every function of which is
// allocation-free and callable from a hot path.
var hotpathStdlibPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// hotpathStdlibFuncs are individually allowlisted stdlib functions.
var hotpathStdlibFuncs = map[string]bool{
	"time.Now":   true, // nanotime, no allocation
	"time.Since": true,
}

// hotpathBuiltins are builtins that never allocate.
var hotpathBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "real": true, "imag": true,
	"panic": true, // cold failure path by definition
	"print": true, "println": true, "recover": true, "close": true,
}

func runHotpath(pass *Pass) {
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, fd *ast.FuncDecl) {
		if !pass.Index.Hotpath[FuncKey(fn)] {
			return
		}
		checkHotpathBody(pass, fd.Body)
	})
}

func checkHotpathBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if capturesVariables(pass.Info, e) {
				pass.Reportf(e.Pos(), "closure captures variables (allocates its context)")
			}
			return false // the literal's body runs outside this audit
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement spawns a goroutine on a hot path")
		case *ast.CallExpr:
			checkHotpathCall(pass, e)
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(e)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(e.Pos(), "%s composite literal allocates", kindName(t))
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := pass.Info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(lhs.Pos(), "map write may allocate")
						}
					}
				}
			}
			if e.Tok == token.ADD_ASSIGN && isString(pass.Info.TypeOf(e.Lhs[0])) {
				pass.Reportf(e.Pos(), "string concatenation allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass.Info.TypeOf(e)) {
				pass.Reportf(e.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array")
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates", b.Name())
			default:
				if !hotpathBuiltins[b.Name()] {
					pass.Reportf(call.Pos(), "builtin %s is not hotpath-safe", b.Name())
				}
			}
			return
		}
	}

	// Conversions: only string<->byte/rune-slice conversions allocate.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			from, to := pass.Info.TypeOf(call.Args[0]), tv.Type
			if (isString(from) && isSlice(to)) || (isSlice(from) && isString(to)) {
				pass.Reportf(call.Pos(), "string/slice conversion allocates")
			}
		}
		return
	}

	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "dynamic call through a function value cannot be verified hotpath-safe")
		return
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			pass.Reportf(call.Pos(), "interface method call %s cannot be verified hotpath-safe", fn.Name())
			return
		}
		// Methods of the typed atomics are the sanctioned lock-free reads.
		if named := namedOf(recv.Type()); named != nil &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic" {
			return
		}
	}
	if fn.Pkg() == nil {
		return // error.Error and friends from the universe scope
	}
	key := FuncKey(fn)
	if sameModule(pass.Pkg.Path(), fn.Pkg().Path()) {
		if !pass.Index.Hotpath[key] {
			pass.Reportf(call.Pos(), "call to non-hotpath function %s", key)
		}
		return
	}
	if hotpathStdlibPkgs[fn.Pkg().Path()] || hotpathStdlibFuncs[key] {
		return
	}
	pass.Reportf(call.Pos(), "call to non-allowlisted function %s", key)
}

// capturesVariables reports whether the literal references any variable
// declared outside itself (excluding package-level variables, which need
// no closure context).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// sameModule reports whether two import paths share a root path segment —
// the "is this our code or the standard library" test for a repository
// with no external dependencies.
func sameModule(a, b string) bool {
	root := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return root(a) == root(b)
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
