package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lock-fact extraction for the lockorder analyzer (DESIGN.md §15).
//
// ScanPackage walks every function body once in source order, simulating
// the held-lock set: sync Lock/RLock/TryLock/TryRLock push a guard,
// Unlock/RUnlock pop it, and deferred releases keep the guard held to the
// end of the body (the idiomatic `mu.Lock(); defer mu.Unlock()`). From the
// simulation it records four kinds of raw facts into the Index:
//
//   - Acquires:  every acquisition site a function (closures included) may
//     execute, keyed by the guard's lock class.
//   - LockEdges: guard B acquired while guard A was still held — a direct
//     A→B ordering commitment.
//   - HeldCalls: module-local calls made while a guard was held; the
//     analyzer expands these against the callees' transitive Acquires.
//   - LockCalls: all module-local call edges, so acquisition sets can be
//     closed over call chains that themselves hold nothing.
//
// Guards are keyed by lock *class*, not instance: a mutex struct field is
// "pkg.Type.field" (every instance of the type shares an ordering
// discipline), a type with an embedded mutex is "pkg.Type", a package-level
// mutex is "pkg.name", and a function-local mutex is "func-key.name". The
// linear simulation over-approximates across exclusive branches, which can
// only lose edges (an early-branch release empties the held set), never
// invent a held guard that no execution holds at that point.

// lockAcquireMethods and lockReleaseMethods are the sync method names that
// move a guard in or out of the held set. TryLock/TryRLock are treated as
// successful acquisitions: for ordering purposes the attempt is the fact.
var lockAcquireMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

var lockReleaseMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
}

type heldLock struct {
	guard string
	pos   string
}

type lockScanner struct {
	fset *token.FileSet
	info *types.Info
	idx  *Index
	fn   *types.Func // enclosing declared function; closures attribute here
	key  string      // FuncKey(fn)
}

func scanLockFacts(fset *token.FileSet, f *ast.File, info *types.Info, idx *Index) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, _ := info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		s := &lockScanner{fset: fset, info: info, idx: idx, fn: fn, key: FuncKey(fn)}
		var held []heldLock
		s.scan(fd.Body, &held)
	}
}

// scan walks n in source order threading the held-lock set through.
func (s *lockScanner) scan(n ast.Node, held *[]heldLock) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure body runs with its own (unknown) held set; give it
			// a fresh one. Its acquisitions still attribute to s.fn — the
			// declared function "may acquire" whatever its closures do.
			var fresh []heldLock
			s.scan(n.Body, &fresh)
			return false
		case *ast.DeferStmt:
			s.deferredCall(n.Call, held)
			return false
		case *ast.GoStmt:
			s.spawnedCall(n.Call, held)
			return false
		case *ast.CallExpr:
			s.call(n, held)
			return true // descend: arguments may contain calls of their own
		}
		return true
	})
}

// call processes one immediate (non-defer, non-go) call against the
// current held set.
func (s *lockScanner) call(call *ast.CallExpr, held *[]heldLock) {
	fn := calleeFunc(s.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "sync" {
		switch {
		case lockAcquireMethods[fn.Name()]:
			guard, ok := s.guardOf(call)
			if !ok {
				return
			}
			pos := s.fset.Position(call.Pos()).String()
			s.idx.Acquires[s.key] = mergeLockSites(s.idx.Acquires[s.key], []LockSite{{Guard: guard, Pos: pos}})
			for _, h := range *held {
				e := LockEdge{Outer: h.guard, OuterPos: h.pos, Inner: guard, InnerPos: pos}
				if !containsLockEdge(s.idx.LockEdges, e) {
					s.idx.LockEdges = append(s.idx.LockEdges, e)
				}
			}
			*held = append(*held, heldLock{guard: guard, pos: pos})
		case lockReleaseMethods[fn.Name()]:
			guard, ok := s.guardOf(call)
			if !ok {
				return
			}
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].guard == guard {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	if !sameModule(s.modulePath(), fn.Pkg().Path()) {
		return
	}
	ckey := FuncKey(fn)
	s.idx.LockCalls[s.key] = mergeStrings(s.idx.LockCalls[s.key], []string{ckey})
	pos := s.fset.Position(call.Pos()).String()
	for _, h := range *held {
		hc := HeldCall{Guard: h.guard, GuardPos: h.pos, Callee: ckey, CallPos: pos}
		if !containsHeldCall(s.idx.HeldCalls, hc) {
			s.idx.HeldCalls = append(s.idx.HeldCalls, hc)
		}
	}
}

// deferredCall processes `defer f(...)`. A deferred release keeps the
// guard held to the end of the body (so nothing pops). Deferred
// module-local calls run at return time, outside the body's critical
// sections, so they contribute a call edge but no held-call fact.
func (s *lockScanner) deferredCall(call *ast.CallExpr, held *[]heldLock) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		var fresh []heldLock
		s.scan(lit.Body, &fresh)
	} else if fn := calleeFunc(s.info, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() != "sync" && sameModule(s.modulePath(), fn.Pkg().Path()) {
			s.idx.LockCalls[s.key] = mergeStrings(s.idx.LockCalls[s.key], []string{FuncKey(fn)})
		}
	}
	for _, arg := range call.Args { // arguments evaluate at the defer site
		s.scan(arg, held)
	}
}

// spawnedCall processes `go f(...)`. The new goroutine holds nothing, so
// the callee contributes a call edge only; arguments evaluate at the spawn
// site under the current held set.
func (s *lockScanner) spawnedCall(call *ast.CallExpr, held *[]heldLock) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		var fresh []heldLock
		s.scan(lit.Body, &fresh)
	} else if fn := calleeFunc(s.info, call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() != "sync" && sameModule(s.modulePath(), fn.Pkg().Path()) {
			s.idx.LockCalls[s.key] = mergeStrings(s.idx.LockCalls[s.key], []string{FuncKey(fn)})
		}
	}
	for _, arg := range call.Args {
		s.scan(arg, held)
	}
}

func (s *lockScanner) modulePath() string {
	if s.fn.Pkg() == nil {
		return ""
	}
	return s.fn.Pkg().Path()
}

// guardOf resolves the lock-class key of the mutex a sync method call
// targets. The receiver expression is call.Fun's qualifier:
//
//   - a value of a module-local named type (embedded mutex): pkg.Type
//   - a struct-field selection (x.mu):                       pkg.Type.field
//   - a package-level variable:                              pkg.name
//   - a function-local variable:                             func-key.name
func (s *lockScanner) guardOf(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv := ast.Unparen(sel.X)
	if named := namedOf(s.info.TypeOf(recv)); named != nil {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() != "sync" {
			return TypeKey(obj), true
		}
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if key, ok := fieldKey(s.info, r); ok {
			return key, true
		}
		if v, ok := s.info.Uses[r.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		v, ok := s.info.Uses[r].(*types.Var)
		if !ok {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		return s.key + "." + v.Name(), true
	}
	return "", false
}

// filePackage resolves the import path of the package a file belongs to
// through any top-level object the file declares.
func filePackage(f *ast.File, info *types.Info) string {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if obj := info.Defs[d.Name]; obj != nil && obj.Pkg() != nil {
				return obj.Pkg().Path()
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if obj := info.Defs[sp.Name]; obj != nil && obj.Pkg() != nil {
						return obj.Pkg().Path()
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						if obj := info.Defs[name]; obj != nil && obj.Pkg() != nil {
							return obj.Pkg().Path()
						}
					}
				}
			}
		}
	}
	return ""
}
