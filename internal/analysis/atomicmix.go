package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix checks that a struct field accessed through sync/atomic
// anywhere in the module is never accessed non-atomically elsewhere — the
// mixed-access bug class the race detector only catches when a test
// happens to interleave the two sides. The atomic side is collected during
// the annotation scan (ScanPackage) and travels across packages in the
// index, so a plain read added in a different package from the atomic
// writes is still caught.
//
// One additional rule covers the typed atomics: a field whose type is
// atomic.Int64/atomic.Pointer[T]/... must not be assigned directly (its
// method set is the only sound access), except inside constructor/build
// functions where the value is not yet shared.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Selector nodes that ARE the atomic access (&x.f passed to a
	// sync/atomic call) are exempt from the plain-access rule.
	atomicSites := collectAtomicSites(pass)

	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, fd *ast.FuncDecl) {
		if pass.Index.IsCtor(fn) {
			return // initialization before the value is shared
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if atomicSites[e] {
					return true
				}
				key, ok := fieldKey(pass.Info, e)
				if !ok {
					return true
				}
				if at, mixed := pass.Index.Atomic[key]; mixed {
					pass.Reportf(e.Sel.Pos(),
						"non-atomic access to %s, which is accessed atomically at %s", key, at)
				}
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						if isTypedAtomicField(pass.Info, sel) {
							pass.Reportf(sel.Sel.Pos(),
								"assignment to atomic-typed field %s bypasses its method set", sel.Sel.Name)
						}
					}
				}
			}
			return true
		})
	})
}

// collectAtomicSites returns the selector expressions in this package that
// appear as &x.f arguments to sync/atomic calls.
func collectAtomicSites(pass *Pass) map[*ast.SelectorExpr]bool {
	sites := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
						sites[sel] = true
					}
				}
			}
			return true
		})
	}
	return sites
}

// isTypedAtomicField reports whether sel selects a struct field whose type
// is one of sync/atomic's typed atomics.
func isTypedAtomicField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	named := namedOf(s.Obj().Type())
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}
