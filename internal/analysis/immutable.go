package analysis

import (
	"go/ast"
	"go/types"
)

// Immutable checks that fields of types annotated //rbpc:immutable are
// never written outside constructor/build functions. The engine's epoch
// snapshots, the materialized base-set indexes, and the compiled CSR views
// are all published to concurrent readers with no synchronization beyond
// an atomic pointer; their safety argument is exactly "nobody writes after
// publish", which this analyzer machine-checks.
//
// A write is an assignment (including op= and ++/--) whose left-hand side
// reaches a field selection of an annotated type — directly (s.f = x),
// through indexing (s.rows[i] = x), or through a deeper selection
// (s.sub.f = x) — and a builtin copy/clear/delete whose first argument is
// such a field. Writes inside constructor/build functions (//rbpc:ctor or
// a new*/build*/make*/compile* name) are the sanctioned build phase.
var Immutable = &Analyzer{
	Name: "immutable",
	Doc:  "fields of //rbpc:immutable types must not be written outside constructors",
	Run:  runImmutable,
}

func runImmutable(pass *Pass) {
	if len(pass.Index.Immutable) == 0 {
		return
	}
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, fd *ast.FuncDecl) {
		if pass.Index.IsCtor(fn) {
			return // build phase: writes are how the value comes to exist
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkImmutableWrite(pass, lhs, "write to")
				}
			case *ast.IncDecStmt:
				checkImmutableWrite(pass, stmt.X, "write to")
			case *ast.CallExpr:
				if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && len(stmt.Args) > 0 {
						switch b.Name() {
						case "copy", "clear", "delete":
							checkImmutableWrite(pass, stmt.Args[0], b.Name()+" on")
						}
					}
				}
			}
			return true
		})
	})
}

// checkImmutableWrite walks the written expression down to the field
// selections it mutates through and reports the first one owned by an
// immutable type.
func checkImmutableWrite(pass *Pass, expr ast.Expr, action string) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if named := namedOf(sel.Recv()); named != nil {
					key := TypeKey(named.Obj())
					if pass.Index.Immutable[key] {
						pass.Reportf(e.Sel.Pos(),
							"%s field %s.%s of immutable type %s outside a constructor",
							action, named.Obj().Name(), e.Sel.Name, key)
						return
					}
				}
			}
			expr = e.X // keep looking: s.sub.f mutates state reachable from s
		default:
			return
		}
	}
}
