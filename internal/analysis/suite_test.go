package analysis

import (
	"path/filepath"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestImmutableFixture(t *testing.T) {
	RunFixture(t, fixture("immutable"), Immutable)
}

func TestHotpathFixture(t *testing.T) {
	RunFixture(t, fixture("hotpath"), Hotpath)
}

func TestGuardedByFixture(t *testing.T) {
	RunFixture(t, fixture("guardedby"), GuardedBy)
}

func TestAtomicMixFixture(t *testing.T) {
	RunFixture(t, fixture("atomicmix"), AtomicMix)
}

func TestLockOrderFixture(t *testing.T) {
	RunFixture(t, fixture("lockorder"), LockOrder)
}

func TestSnapshotEscapeFixture(t *testing.T) {
	RunFixture(t, fixture("snapshotescape"), SnapshotEscape)
}

func TestDeterministicFixture(t *testing.T) {
	RunFixture(t, fixture("deterministic"), Deterministic)
}

func TestDeterministicPkgFixture(t *testing.T) {
	RunFixture(t, fixture("deterministicpkg"), Deterministic)
}

func TestAllocProveFixture(t *testing.T) {
	RunFixture(t, fixture("allocprove"), AllocProve)
}

// TestSuiteNames pins the analyzer names: they are part of the
// //rbpc:allow vocabulary, so renaming one silently disables suppressions.
func TestSuiteNames(t *testing.T) {
	want := map[string]bool{
		"immutable": true, "hotpath": true, "guardedby": true, "atomicmix": true,
		"lockorder": true, "snapshotescape": true, "deterministic": true, "allocprove": true,
	}
	if len(All) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(All), len(want))
	}
	for _, a := range All {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer name %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}

func TestFactsRoundTrip(t *testing.T) {
	idx := NewIndex()
	idx.Immutable["p.T"] = true
	idx.Hotpath["p.T.Get"] = true
	idx.Ctor["p.NewT"] = true
	idx.Locked["p.T.evictLocked"] = true
	idx.Guard["p.T.trees"] = "mu"
	idx.Atomic["p.T.n"] = "a.go:10:5"
	idx.EpochScoped["p.Snap"] = true
	idx.Deterministic["p.Shuffle"] = true
	idx.DeterministicPkg["p/q"] = true
	idx.Acquires["p.T.Get"] = []LockSite{{Guard: "p.T.mu", Pos: "a.go:20:2"}}
	idx.LockCalls["p.T.Get"] = []string{"p.T.evictLocked"}
	idx.LockEdges = []LockEdge{{Outer: "p.T.mu", OuterPos: "a.go:20:2", Inner: "p.U.mu", InnerPos: "a.go:21:2"}}
	idx.HeldCalls = []HeldCall{{Guard: "p.T.mu", GuardPos: "a.go:20:2", Callee: "p.lockU", CallPos: "a.go:22:2"}}

	data, err := idx.MarshalFacts()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalFacts(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !got.Immutable["p.T"] || !got.Hotpath["p.T.Get"] || !got.Ctor["p.NewT"] ||
		!got.Locked["p.T.evictLocked"] || got.Guard["p.T.trees"] != "mu" ||
		got.Atomic["p.T.n"] != "a.go:10:5" {
		t.Errorf("facts did not survive the round trip: %+v", got)
	}
	if !got.EpochScoped["p.Snap"] || !got.Deterministic["p.Shuffle"] || !got.DeterministicPkg["p/q"] {
		t.Errorf("scope/determinism facts did not survive the round trip: %+v", got)
	}
	if len(got.Acquires["p.T.Get"]) != 1 || got.Acquires["p.T.Get"][0].Guard != "p.T.mu" ||
		len(got.LockCalls["p.T.Get"]) != 1 ||
		len(got.LockEdges) != 1 || got.LockEdges[0].Inner != "p.U.mu" ||
		len(got.HeldCalls) != 1 || got.HeldCalls[0].Callee != "p.lockU" {
		t.Errorf("lock facts did not survive the round trip: %+v", got)
	}

	// Merging into an empty index preserves everything and stays usable.
	merged := NewIndex()
	merged.Merge(got)
	if !merged.Immutable["p.T"] || merged.Guard["p.T.trees"] != "mu" {
		t.Errorf("merge lost facts: %+v", merged)
	}
	// Merging twice must not duplicate slice-valued lock facts.
	merged.Merge(got)
	if len(merged.Acquires["p.T.Get"]) != 1 || len(merged.LockEdges) != 1 || len(merged.HeldCalls) != 1 {
		t.Errorf("re-merge duplicated lock facts: %+v", merged)
	}

	// An empty facts file is valid (a package with no annotations).
	if _, err := UnmarshalFacts(nil); err != nil {
		t.Errorf("empty facts: %v", err)
	}
}
