package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AllocProve cross-checks every //rbpc:hotpath claim against the
// compiler's own escape analysis. The hotpath analyzer pattern-matches
// allocating *constructs* (make, new, append, closures); this analyzer
// consumes the ground truth instead — `go tool compile -m=2` verdicts
// ("escapes to heap", "moved to heap") parsed by the driver — so a value
// the compiler decides to heap-allocate inside a hotpath function is
// reported even when no syntactic allocation appears, and a make() the
// compiler proves stack-bound is not a finding (hotpath still flags it as
// a construct; the two checkers are deliberately complementary).
//
// Crash paths are exempt: an escape that only feeds a panic (the
// argument of a panic call, or anything inside an unconditional panic
// wrapper like pqueue.panicf) does not violate the no-alloc promise —
// the promise is about the success path, and the benchmarks that pin
// 0 allocs/op never take the crash path either.
//
// When the driver did not run the compiler (Unit.Escapes == nil, e.g. a
// fixture loaded without escape collection), the analyzer is silent
// rather than wrong.
var AllocProve = &Analyzer{
	Name: "allocprove",
	Doc:  "//rbpc:hotpath functions must be free of compiler-proven heap allocations",
	Run:  runAllocProve,
}

func runAllocProve(pass *Pass) {
	if pass.Escapes == nil || len(pass.Index.Hotpath) == 0 {
		return
	}
	wrappers := panicWrappers(pass)
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, decl *ast.FuncDecl) {
		if !pass.Index.Hotpath[FuncKey(fn)] || decl.Body == nil || wrappers[FuncKey(fn)] {
			return
		}
		file, from, to := funcBodySpan(pass.Fset, decl)
		exempt := panicSpans(pass, decl, wrappers)
		for _, e := range pass.Escapes {
			if e.Line < from || e.Line > to || !escapeFileMatches(e.File, file) {
				continue
			}
			if exempt[e.Line] {
				continue // the allocation only feeds a panic
			}
			// Anchor the report on the FileSet's own path so //rbpc:allow
			// suppression sites (keyed by parsed filename) line up.
			pass.ReportPosf(token.Position{Filename: file, Line: e.Line, Column: e.Col},
				"compiler-proven allocation in hotpath %s: %s", FuncKey(fn), e.Msg)
		}
	})
}

// panicWrappers finds this package's unconditional panic helpers: a
// function with no results whose body's final statement is a panic call
// (e.g. a panicf that formats and dies). Their allocations, and their
// call sites' argument allocations, are crash-path only.
func panicWrappers(pass *Pass) map[string]bool {
	wrappers := map[string]bool{}
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, decl *ast.FuncDecl) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() > 0 || len(decl.Body.List) == 0 {
			return
		}
		last, ok := decl.Body.List[len(decl.Body.List)-1].(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := last.X.(*ast.CallExpr); ok && isPanicCall(pass, call, nil) {
			wrappers[FuncKey(fn)] = true
		}
	})
	return wrappers
}

// panicSpans returns the set of source lines inside decl that belong to a
// panic call (the call and its arguments), including calls to this
// package's panic wrappers.
func panicSpans(pass *Pass, decl *ast.FuncDecl, wrappers map[string]bool) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPanicCall(pass, call, wrappers) {
			return true
		}
		from := pass.Fset.Position(call.Pos()).Line
		to := pass.Fset.Position(call.End()).Line
		for l := from; l <= to; l++ {
			lines[l] = true
		}
		return true
	})
	return lines
}

// isPanicCall reports whether call is the builtin panic or (when wrappers
// is non-nil) a call to a known panic wrapper.
func isPanicCall(pass *Pass, call *ast.CallExpr, wrappers map[string]bool) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	if wrappers == nil {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	return fn != nil && wrappers[FuncKey(fn)]
}

// escapeFileMatches compares a compiler-reported filename with a
// FileSet filename, tolerating ./-relative vs. absolute spellings.
func escapeFileMatches(escFile, fsetFile string) bool {
	return escFile == fsetFile || filepath.Base(escFile) == filepath.Base(fsetFile)
}
